package obs

import "fmt"

// Fork returns a deep copy of the registry reading time from now (the forked
// simulator's clock). Metric creation order, the finished-span ring, hop
// aggregates, crosstalk flags, the audit log and the attribution accounts are
// all copied exactly, so exports from the fork are byte-identical to exports
// the parent would have produced.
//
// Pointer identity between the maps is preserved: spanStats caches the very
// *Histogram values hists/hopHists index, so the copy goes through an
// identity map. The span free list is not copied — it is a transparent
// allocation cache; a fork that records spans simply allocates fresh ones.
//
// Preconditions: no fault span may be open (an open span is referenced by a
// live fault in flight, which contradicts a quiesced fork point). Crosstalk
// monitors are not forked — their sample closures capture the parent world —
// so callers start any monitor after forking; a monitor timer pending at the
// fork point makes the snapshot's event accounting fail loudly.
func (r *Registry) Fork(now Clock) (*Registry, error) {
	if r == nil {
		return nil, nil
	}
	nr := &Registry{
		now:        now,
		counters:   make(map[Key]*Counter, len(r.counters)),
		gauges:     make(map[Key]*Gauge, len(r.gauges)),
		hists:      make(map[Key]*Histogram, len(r.hists)),
		corder:     append([]Key(nil), r.corder...),
		gorder:     append([]Key(nil), r.gorder...),
		horder:     append([]Key(nil), r.horder...),
		hopHists:   make(map[hopKey]*Histogram, len(r.hopHists)),
		hopOrder:   append([]hopKey(nil), r.hopOrder...),
		spanStats:  make(map[spanKey]*spanStats, len(r.spanStats)),
		spanCap:    r.spanCap,
		spanHead:   r.spanHead,
		spanTotal:  r.spanTotal,
		flowBase:   r.flowBase,
		flowSeq:    r.flowSeq,
		flags:      append([]Flag(nil), r.flags...),
		audit:      append([]AuditEvent(nil), r.audit...),
		auditCap:   r.auditCap,
		auditHead:  r.auditHead,
		auditTotal: r.auditTotal,
	}
	for k, c := range r.counters {
		nr.counters[k] = &Counter{r: nr, v: c.v, at: c.at}
	}
	for k, g := range r.gauges {
		nr.gauges[k] = &Gauge{r: nr, v: g.v, at: g.at}
	}
	hm := make(map[*Histogram]*Histogram, len(r.hists)+len(r.hopHists))
	cloneHist := func(h *Histogram) *Histogram {
		if h == nil {
			return nil
		}
		if nh, ok := hm[h]; ok {
			return nh
		}
		nh := &Histogram{
			r:      nr,
			counts: append([]int64(nil), h.counts...),
			count:  h.count,
			sum:    h.sum,
			min:    h.min,
			max:    h.max,
			at:     h.at,
		}
		hm[h] = nh
		return nh
	}
	for k, h := range r.hists {
		nr.hists[k] = cloneHist(h)
	}
	for k, h := range r.hopHists {
		nr.hopHists[k] = cloneHist(h)
	}
	for k, ss := range r.spanStats {
		nss := &spanStats{e2e: cloneHist(ss.e2e), hops: make([]hopSlot, len(ss.hops))}
		for i, hs := range ss.hops {
			nss.hops[i] = hopSlot{name: hs.name, h: cloneHist(hs.h)}
		}
		nr.spanStats[k] = nss
	}
	if r.cEvicted != nil {
		nr.cEvicted = nr.counters[Key{"obs", "spans_evicted", ""}]
	}
	if r.cAuditEvicted != nil {
		nr.cAuditEvicted = nr.counters[Key{"obs", "audit_evicted", ""}]
	}
	nr.spans = make([]*Span, len(r.spans))
	for i, s := range r.spans {
		ns := &Span{
			reg:     nr,
			Domain:  s.Domain,
			Class:   s.Class,
			Thread:  s.Thread,
			Outcome: s.Outcome,
			Flow:    s.Flow,
			Start:   s.Start,
			End:     s.End,
			hops:    append([]Hop(nil), s.hops...),
			done:    s.done,
		}
		nr.spans[i] = ns
	}
	if r.attr != nil {
		na, err := r.attr.fork(now)
		if err != nil {
			return nil, err
		}
		nr.attr = na
	}
	return nr, nil
}

// fork deep-copies the attribution state machine. Every domain must be at
// rest: open fault spans belong to faults in flight and cannot be carried
// across a fork. CPU run/wait counters are copied as-is — the CPU scheduler's
// own fork preconditions guarantee they are zero at a valid fork point.
func (a *Attribution) fork(now Clock) (*Attribution, error) {
	na := &Attribution{
		now:     now,
		domains: make(map[string]*DomainAttr, len(a.domains)),
		order:   append([]string(nil), a.order...),
	}
	for name, d := range a.domains {
		if len(d.open) != 0 {
			return nil, fmt.Errorf("obs: cannot fork attribution: domain %q has %d open fault spans", name, len(d.open))
		}
		na.domains[name] = &DomainAttr{
			a:        na,
			name:     d.name,
			start:    d.start,
			since:    d.since,
			curState: d.curState,
			curHop:   d.curHop,
			running:  d.running,
			waiting:  d.waiting,
			killed:   d.killed,
			accounts: append([]AttrAccount(nil), d.accounts...),
		}
	}
	return na, nil
}
