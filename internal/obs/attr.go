package obs

import (
	"fmt"
	"io"
	"time"

	"nemesis/internal/sim"
)

// AttrState is the coarse classification of one simulated instant of one
// domain's existence. Because the simulator is deterministic and every state
// transition is an exact event (a fault span hop, a CPU grant, a kill), the
// attribution is exact, not sampled: the per-state accounts of a domain sum
// to its elapsed simulated lifetime to the nanosecond, an invariant
// CheckConservation asserts.
type AttrState uint8

const (
	// AttrIdle: no thread runnable, no fault in flight.
	AttrIdle AttrState = iota
	// AttrRunnable: a thread wants the CPU but another domain holds it.
	AttrRunnable
	// AttrRunning: a thread is consuming its CPU quantum.
	AttrRunning
	// AttrFault: blocked on the domain's own fault path; the Hop field of
	// the account names where along the path (mmentry, driver, usd.queue,
	// usd.read, net.out, remote.store, ...) the time went.
	AttrFault
)

// AttrStates lists the states in export order.
var AttrStates = [...]AttrState{AttrRunning, AttrRunnable, AttrFault, AttrIdle}

func (s AttrState) String() string {
	switch s {
	case AttrIdle:
		return "idle"
	case AttrRunnable:
		return "runnable-waiting-cpu"
	case AttrRunning:
		return "running"
	case AttrFault:
		return "blocked-fault"
	}
	return fmt.Sprintf("state%d", int(s))
}

// AttrAccount is one (state, hop) bucket of a domain's time. Hop is empty
// except for AttrFault, where it names the fault-path hop the domain was
// blocked under.
type AttrAccount struct {
	State AttrState     `json:"state"`
	Hop   string        `json:"hop,omitempty"`
	Total time.Duration `json:"total_ns"`
}

// Attribution is the per-domain sim-time accounting state machine. It is
// driven by the registry's fault spans (StartSpan/BeginHop/SplitHop/Finish)
// and by the CPU scheduler's grant/release events, so instrumented code
// needs no extra call sites. All methods are safe on a nil receiver.
type Attribution struct {
	now     Clock
	domains map[string]*DomainAttr
	order   []string
}

func newAttribution(now Clock) *Attribution {
	return &Attribution{now: now, domains: make(map[string]*DomainAttr)}
}

// Track returns (creating at the current instant if needed) the accounting
// state for a domain. Conservation is measured from the instant of first
// tracking, which the system facade arranges to be domain admission.
func (a *Attribution) Track(domain string) *DomainAttr {
	if a == nil {
		return nil
	}
	d, ok := a.domains[domain]
	if !ok {
		now := a.now()
		d = &DomainAttr{a: a, name: domain, start: now, since: now}
		a.domains[domain] = d
		a.order = append(a.order, domain)
	}
	return d
}

// Domains returns the tracked domain names in first-tracked order.
func (a *Attribution) Domains() []string {
	if a == nil {
		return nil
	}
	return a.order
}

// DomainAttr accounts one domain's simulated time. Exactly one (state, hop)
// bucket is accruing at any instant; every event closes the open interval
// into its bucket and reclassifies.
type DomainAttr struct {
	a     *Attribution
	name  string
	start sim.Time // tracking began
	since sim.Time // current interval began

	curState AttrState
	curHop   string

	running int     // threads holding the CPU
	waiting int     // threads waiting for the CPU
	open    []*Span // open fault spans, oldest first
	killed  bool

	// accounts is a small linear-scan table (a domain visits ~a dozen
	// distinct buckets), kept in first-seen order for deterministic export.
	accounts []AttrAccount
}

// Name returns the domain name.
func (d *DomainAttr) Name() string {
	if d == nil {
		return ""
	}
	return d.name
}

// add accrues dt into the (state, hop) bucket.
func (d *DomainAttr) add(state AttrState, hop string, dt time.Duration) {
	for i := range d.accounts {
		if d.accounts[i].State == state && d.accounts[i].Hop == hop {
			d.accounts[i].Total += dt
			return
		}
	}
	d.accounts = append(d.accounts, AttrAccount{State: state, Hop: hop, Total: dt})
}

// classify derives the current state from the counters. A fault in flight
// dominates (the paper's accounting: the domain is paying for its own
// fault), then running, then runnable, then idle.
func (d *DomainAttr) classify() (AttrState, string) {
	if d.killed {
		return AttrIdle, ""
	}
	if len(d.open) > 0 {
		s := d.open[0]
		if n := len(s.hops); n > 0 {
			return AttrFault, s.hops[n-1].Name
		}
		return AttrFault, "dispatch"
	}
	if d.running > 0 {
		return AttrRunning, ""
	}
	if d.waiting > 0 {
		return AttrRunnable, ""
	}
	return AttrIdle, ""
}

// retarget closes the open interval at instant at (clamped so accounting
// never runs backwards; at may lie in the past for retroactively recorded
// hop splits such as USD service times) and switches to the freshly
// classified bucket. A no-op when the classification is unchanged: the open
// interval simply keeps accruing.
func (d *DomainAttr) retarget(at sim.Time) {
	state, hop := d.classify()
	if state == d.curState && hop == d.curHop {
		return
	}
	if at < d.since {
		at = d.since
	}
	if dt := at.Sub(d.since); dt > 0 {
		d.add(d.curState, d.curHop, dt)
	}
	d.since = at
	d.curState, d.curHop = state, hop
}

// CPUWait records a thread joining the CPU queue. Safe on nil.
func (d *DomainAttr) CPUWait() {
	if d == nil {
		return
	}
	d.waiting++
	d.retarget(d.a.now())
}

// CPURun records the scheduler granting the CPU to a waiting thread.
func (d *DomainAttr) CPURun() {
	if d == nil {
		return
	}
	d.waiting--
	d.running++
	d.retarget(d.a.now())
}

// CPUYield records the thread releasing the CPU at the end of a quantum.
func (d *DomainAttr) CPUYield() {
	if d == nil {
		return
	}
	d.running--
	d.retarget(d.a.now())
}

// spanStarted registers a newly opened fault span.
func (a *Attribution) spanStarted(s *Span) {
	if a == nil {
		return
	}
	d := a.Track(s.Domain)
	d.open = append(d.open, s)
	d.retarget(a.now())
}

// spanHop reclassifies after a hop change at instant at (which may lie in
// the past when the span recorded a retroactive split).
func (a *Attribution) spanHop(s *Span, at sim.Time) {
	if a == nil {
		return
	}
	if d := a.domains[s.Domain]; d != nil {
		d.retarget(at)
	}
}

// spanFinished removes a finished fault span.
func (a *Attribution) spanFinished(s *Span) {
	if a == nil {
		return
	}
	d := a.domains[s.Domain]
	if d == nil {
		return
	}
	for i, o := range d.open {
		if o == s {
			d.open = append(d.open[:i], d.open[i+1:]...)
			break
		}
	}
	d.retarget(a.now())
}

// DomainKilled finalises a killed domain's accounting: its unwinding
// threads and abandoned fault spans will never report back, so the counters
// are cleared and the domain accrues idle time from the kill instant on.
func (a *Attribution) DomainKilled(domain string) {
	if a == nil {
		return
	}
	d := a.domains[domain]
	if d == nil || d.killed {
		return
	}
	d.retarget(a.now()) // close the pre-kill interval under the old state
	d.killed = true
	d.running, d.waiting, d.open = 0, 0, nil
	d.retarget(a.now())
}

// StateTotal returns the domain's accrued time in one state (all hops
// summed), including the currently open interval. Safe on nil.
func (d *DomainAttr) StateTotal(state AttrState) time.Duration {
	if d == nil {
		return 0
	}
	var sum time.Duration
	for _, acc := range d.accounts {
		if acc.State == state {
			sum += acc.Total
		}
	}
	if d.curState == state {
		sum += d.a.now().Sub(d.since)
	}
	return sum
}

// DomainProfile is a snapshot of one domain's attribution, with the open
// interval folded in: the account totals sum exactly to End-Start.
type DomainProfile struct {
	Domain   string        `json:"domain"`
	Start    sim.Time      `json:"start_ns"`
	End      sim.Time      `json:"end_ns"`
	Accounts []AttrAccount `json:"accounts"`
}

// Elapsed returns the profiled lifetime.
func (p *DomainProfile) Elapsed() time.Duration { return p.End.Sub(p.Start) }

// Total sums the accounts of one state across hops.
func (p *DomainProfile) Total(state AttrState) time.Duration {
	var sum time.Duration
	for _, acc := range p.Accounts {
		if acc.State == state {
			sum += acc.Total
		}
	}
	return sum
}

// Share returns the fraction of the lifetime spent in one state.
func (p *DomainProfile) Share(state AttrState) float64 {
	el := p.Elapsed()
	if el <= 0 {
		return 0
	}
	return float64(p.Total(state)) / float64(el)
}

// profile snapshots one domain at the current instant.
func (d *DomainAttr) profile(now sim.Time) DomainProfile {
	p := DomainProfile{Domain: d.name, Start: d.start, End: now}
	p.Accounts = make([]AttrAccount, len(d.accounts))
	copy(p.Accounts, d.accounts)
	if dt := now.Sub(d.since); dt > 0 {
		found := false
		for i := range p.Accounts {
			if p.Accounts[i].State == d.curState && p.Accounts[i].Hop == d.curHop {
				p.Accounts[i].Total += dt
				found = true
				break
			}
		}
		if !found {
			p.Accounts = append(p.Accounts, AttrAccount{State: d.curState, Hop: d.curHop, Total: dt})
		}
	}
	return p
}

// Profiles snapshots every tracked domain in first-tracked order.
func (a *Attribution) Profiles() []DomainProfile {
	if a == nil {
		return nil
	}
	now := a.now()
	out := make([]DomainProfile, 0, len(a.order))
	for _, name := range a.order {
		out = append(out, a.domains[name].profile(now))
	}
	return out
}

// Profile snapshots one domain, or returns false if it is not tracked.
func (a *Attribution) Profile(domain string) (DomainProfile, bool) {
	if a == nil {
		return DomainProfile{}, false
	}
	d, ok := a.domains[domain]
	if !ok {
		return DomainProfile{}, false
	}
	return d.profile(a.now()), true
}

// CheckConservation asserts the invariant that makes the attribution exact:
// for every domain, closed accounts plus the open interval equal the elapsed
// simulated time since tracking began, to the nanosecond. It returns the
// first violation found, or nil.
func (a *Attribution) CheckConservation() error {
	if a == nil {
		return nil
	}
	now := a.now()
	for _, name := range a.order {
		d := a.domains[name]
		var sum time.Duration
		for _, acc := range d.accounts {
			if acc.Total < 0 {
				return fmt.Errorf("obs: attribution for %q: negative account %s/%s = %v", name, acc.State, acc.Hop, acc.Total)
			}
			sum += acc.Total
		}
		sum += now.Sub(d.since)
		if elapsed := now.Sub(d.start); sum != elapsed {
			return fmt.Errorf("obs: attribution for %q does not conserve time: accounts sum to %v, elapsed %v (diff %v)",
				name, sum, elapsed, elapsed-sum)
		}
	}
	return nil
}

// WriteFolded renders the attribution as folded stacks — one line per
// account, `domain;state[;hop] microseconds` — the input format of standard
// flamegraph and speedscope tools. Domains appear in first-tracked order and
// accounts in first-accrual order, both deterministic for a deterministic
// run, so the output is byte-identical however the run was scheduled.
func (a *Attribution) WriteFolded(w io.Writer) error {
	if a == nil {
		return nil
	}
	for _, p := range a.Profiles() {
		for _, acc := range p.Accounts {
			var err error
			if acc.Hop != "" {
				_, err = fmt.Fprintf(w, "%s;%s;%s %d\n", p.Domain, acc.State, acc.Hop, acc.Total.Microseconds())
			} else {
				_, err = fmt.Fprintf(w, "%s;%s %d\n", p.Domain, acc.State, acc.Total.Microseconds())
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}
