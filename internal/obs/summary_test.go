package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// summarySource builds one machine-shaped rollup: a registry with spans
// across shared hop names and overlapping domains, summarized and prefixed
// the way a cluster machine's rollup is.
func summarySource(t *testing.T, i int) *Summary {
	t.Helper()
	r, fc := newTestRegistry()
	for d := 0; d < 3+i; d++ {
		sp := r.StartSpan(fmt.Sprintf("d%d", (i+d)%5), "page")
		sp.BeginHop("queue")
		fc.advance(time.Duration(1+i+d) * time.Millisecond)
		sp.BeginHop("net.out")
		fc.advance(time.Duration(2+d) * time.Millisecond)
		sp.Finish("ok")
	}
	r.Counter("driver", "pageins", "").Add(int64(10 * (i + 1)))
	r.Counter("driver", "pageouts", "").Add(int64(i))
	r.Audit(AuditRevokeBegin, "d0", "", 4, "warm")
	s := r.Summarize(3)
	s.Prefix(fmt.Sprintf("m%d/", i))
	return s
}

// mergeInOrder folds the given parts in the given order into a fresh
// Summary, applies the final truncation, and returns the canonical JSON.
func mergeInOrder(t *testing.T, parts []*Summary, order []int) []byte {
	t.Helper()
	s := &Summary{}
	for _, i := range order {
		s.Merge(parts[i])
	}
	s.Truncate(3)
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSummaryMergeOrderIndependent pins the rollup's merge algebra: folding
// per-machine summaries in any shuffled order — the orders a parallel sweep's
// completion nondeterminism could produce — yields byte-identical reports,
// the empty Summary is an identity, and pairwise tree folds match the
// left-to-right fold (associativity).
func TestSummaryMergeOrderIndependent(t *testing.T) {
	var parts []*Summary
	for i := 0; i < 5; i++ {
		parts = append(parts, summarySource(t, i))
	}
	want := mergeInOrder(t, parts, []int{0, 1, 2, 3, 4})

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		order := rng.Perm(len(parts))
		if got := mergeInOrder(t, parts, order); !bytes.Equal(got, want) {
			t.Fatalf("merge order %v changed the rollup:\n--- want ---\n%s\n--- got ---\n%s", order, want, got)
		}
	}

	// Identity: merging nil and empty summaries changes nothing.
	s := &Summary{}
	s.Merge(nil)
	s.Merge(&Summary{})
	for _, p := range parts {
		s.Merge(p)
	}
	s.Merge(&Summary{})
	s.Truncate(3)
	if got, err := json.MarshalIndent(s, "", "  "); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("empty-summary merges are not identities (err %v):\n%s", err, got)
	}

	// Associativity: ((0+1) + (2+3+4)) == (0+1+2+3+4).
	left, right, tree := &Summary{}, &Summary{}, &Summary{}
	left.Merge(parts[0])
	left.Merge(parts[1])
	right.Merge(parts[2])
	right.Merge(parts[3])
	right.Merge(parts[4])
	tree.Merge(left)
	tree.Merge(right)
	tree.Truncate(3)
	if got, err := json.MarshalIndent(tree, "", "  "); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("tree fold differs from sequential fold (err %v):\n%s", err, got)
	}
}

// TestSummaryTruncateAfterMerge pins why Merge keeps the domain union: a
// domain that is below every per-source top-K cut can still be cluster-wide
// top when its share is summed across sources, so truncation must happen
// once, after the final merge — truncating between merges loses it.
func TestSummaryTruncateAfterMerge(t *testing.T) {
	mk := func(prefix string, blocked map[string]time.Duration) *Summary {
		r, fc := newTestRegistry()
		for dom, d := range blocked {
			sp := r.StartSpan(dom, "page")
			fc.advance(d)
			sp.Finish("ok")
		}
		s := r.Summarize(1)
		s.Prefix(prefix)
		return s
	}
	// "shared" is rank 2 on both machines; summed it beats both leaders —
	// but each source's top-1 truncation already dropped it, so this also
	// documents that per-source TopK bounds what a merge can recover.
	a := mk("", map[string]time.Duration{"a-big": 10 * time.Millisecond})
	a.Merge(mk("", map[string]time.Duration{"shared": 7 * time.Millisecond}))
	a.Merge(mk("", map[string]time.Duration{"shared": 7 * time.Millisecond}))
	if len(a.TopDomains) != 2 {
		t.Fatalf("merge must keep the union before truncation: %+v", a.TopDomains)
	}
	a.Truncate(1)
	if len(a.TopDomains) != 1 || a.TopDomains[0].Domain != "shared" {
		t.Fatalf("final truncation picked %+v, want the summed 'shared' domain on top", a.TopDomains)
	}
	if a.TopDomains[0].BlockedNs != int64(14*time.Millisecond) {
		t.Fatalf("shared blocked = %d", a.TopDomains[0].BlockedNs)
	}
}
