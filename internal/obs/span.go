package obs

import (
	"fmt"
	"io"
	"time"

	"nemesis/internal/sim"
)

// Hop is one measured segment of a fault span. Hops are contiguous: each
// hop begins exactly where the previous one ended, so the hop durations of
// a finished span sum to the span's end-to-end latency.
type Hop struct {
	Name  string
	Start sim.Time
	End   sim.Time
}

// Duration returns the hop's latency.
func (h Hop) Duration() time.Duration { return h.End.Sub(h.Start) }

// Span is one causal fault record: opened at kernel fault dispatch,
// threaded through the MMEntry, the stretch driver, the USD and the disk,
// and finished when the faulting thread resumes. A nil *Span is a valid
// no-op, so the fault path pays nothing when telemetry is disabled.
type Span struct {
	reg *Registry

	Domain  string
	Class   string // fault class: "page", "protection", "unallocated"
	Thread  string
	Outcome string // "fast", "worker", "handler", "fatal"

	// Flow is the span's cross-machine flow ID (zero until EnsureFlow).
	// Netswap stamps it on every request the span causes, and the remote
	// server echoes it into its own service span, so merged cluster traces
	// can draw an arrow from the client's net.out hop to the server slice.
	Flow uint64

	Start sim.Time
	End   sim.Time

	hops []Hop
	open bool // last hop still open
	done bool
}

// StartSpan opens a fault span for the given domain and fault class at the
// current simulated time. A nil registry returns a nil span. Spans are drawn
// from a free list fed by ring eviction, so a steady-state fault path reuses
// the same handful of spans; holders of Spans() snapshots must therefore
// consume them before recording more spans.
func (r *Registry) StartSpan(domain, class string) *Span {
	if r == nil {
		return nil
	}
	var s *Span
	if n := len(r.freeSpans); n > 0 {
		s = r.freeSpans[n-1]
		r.freeSpans[n-1] = nil
		r.freeSpans = r.freeSpans[:n-1]
		*s = Span{reg: r, Domain: domain, Class: class, Start: r.now(), hops: s.hops[:0]}
	} else {
		s = &Span{reg: r, Domain: domain, Class: class, Start: r.now()}
	}
	r.attr.spanStarted(s)
	return s
}

// SetThread records the faulting thread's name.
func (s *Span) SetThread(name string) {
	if s == nil {
		return
	}
	s.Thread = name
}

// EnsureFlow returns the span's flow ID, assigning the registry's next one
// on first use. Zero (and a no-op) on a nil span, so untraced fault paths
// pay nothing.
func (s *Span) EnsureFlow() uint64 {
	if s == nil {
		return 0
	}
	if s.Flow == 0 {
		s.Flow = s.reg.nextFlowID()
	}
	return s.Flow
}

// SetFlow adopts a flow ID assigned elsewhere (the remote swap server
// correlating its service span with the originating client fault).
func (s *Span) SetFlow(id uint64) {
	if s == nil {
		return
	}
	s.Flow = id
}

// closeOpen closes the currently open hop at instant at (clamped so hops
// never run backwards).
func (s *Span) closeOpen(at sim.Time) {
	if !s.open {
		return
	}
	last := &s.hops[len(s.hops)-1]
	if at < last.Start {
		at = last.Start
	}
	last.End = at
	s.open = false
}

// BeginHop closes any open hop at the current instant and opens a new one
// named name. Safe on a nil receiver.
func (s *Span) BeginHop(name string) {
	if s == nil || s.done {
		return
	}
	now := s.reg.now()
	s.closeOpen(now)
	s.hops = append(s.hops, Hop{Name: name, Start: now})
	s.open = true
	s.reg.attr.spanHop(s, now)
}

// SplitHop closes the open hop at instant at (which may lie in the past —
// e.g. a USD transaction's recorded service start) and opens a new hop
// named name at the same instant, keeping the hop chain contiguous.
func (s *Span) SplitHop(at sim.Time, name string) {
	if s == nil || s.done {
		return
	}
	if !s.open {
		// No open hop to split: behave like BeginHop at the given instant.
		s.hops = append(s.hops, Hop{Name: name, Start: at})
		s.open = true
		s.reg.attr.spanHop(s, at)
		return
	}
	last := &s.hops[len(s.hops)-1]
	if at < last.Start {
		at = last.Start
	}
	last.End = at
	s.hops = append(s.hops, Hop{Name: name, Start: at})
	s.reg.attr.spanHop(s, at)
}

// EndHop closes the open hop at the current instant without opening a new
// one (a gap until the next BeginHop; rarely wanted on the fault path).
func (s *Span) EndHop() {
	if s == nil || s.done {
		return
	}
	s.closeOpen(s.reg.now())
}

// Finish closes the span (and any open hop) at the current instant,
// records the end-to-end latency and every hop latency into the
// registry's aggregates, and retains the span in the ring.
func (s *Span) Finish(outcome string) {
	if s == nil || s.done {
		return
	}
	s.done = true
	s.End = s.reg.now()
	s.closeOpen(s.End)
	s.Outcome = outcome
	// Release the attribution's reference before recordSpan may recycle
	// the span into the free list.
	s.reg.attr.spanFinished(s)
	s.reg.recordSpan(s)
}

// Duration returns the end-to-end latency of a finished span.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Hops returns a copy of the span's hop records.
func (s *Span) Hops() []Hop {
	if s == nil {
		return nil
	}
	out := make([]Hop, len(s.hops))
	copy(out, s.hops)
	return out
}

// HopSum returns the sum of all hop durations; for a finished span this
// equals Duration exactly, which tests assert.
func (s *Span) HopSum() time.Duration {
	if s == nil {
		return 0
	}
	var sum time.Duration
	for _, h := range s.hops {
		sum += h.Duration()
	}
	return sum
}

// hopKey aggregates hop latencies per (domain, fault class, hop name).
type hopKey struct {
	Domain string
	Class  string
	Hop    string
}

// spanKey identifies one (domain, fault class) span population.
type spanKey struct {
	Domain string
	Class  string
}

// spanStats holds the pre-resolved histogram handles for one span
// population: the e2e latency histogram and, per hop name, the shared hop
// histogram (the same one hopHists indexes for HopSummaries). Hop counts per
// class are small, so a linear name scan beats a map lookup.
type spanStats struct {
	e2e  *Histogram
	hops []hopSlot
}

type hopSlot struct {
	name string
	h    *Histogram
}

// statsFor returns (creating on first finish, which preserves the registry's
// first-seen metric ordering) the handles for a span population.
func (r *Registry) statsFor(domain, class string) *spanStats {
	k := spanKey{domain, class}
	ss, ok := r.spanStats[k]
	if !ok {
		ss = &spanStats{e2e: r.Histogram("span", "e2e."+class, domain)}
		r.spanStats[k] = ss
	}
	return ss
}

// recordSpan folds a finished span into the aggregates and the ring.
func (r *Registry) recordSpan(s *Span) {
	ss := r.statsFor(s.Domain, s.Class)
	ss.e2e.Observe(s.Duration())
	for _, h := range s.hops {
		var hist *Histogram
		for i := range ss.hops {
			if ss.hops[i].name == h.Name {
				hist = ss.hops[i].h
				break
			}
		}
		if hist == nil {
			k := hopKey{s.Domain, s.Class, h.Name}
			var ok bool
			hist, ok = r.hopHists[k]
			if !ok {
				hist = newHistogram(r)
				r.hopHists[k] = hist
				r.hopOrder = append(r.hopOrder, k)
			}
			ss.hops = append(ss.hops, hopSlot{h.Name, hist})
		}
		hist.Observe(h.Duration())
	}
	r.spanTotal++
	if len(r.spans) < r.spanCap {
		r.spans = append(r.spans, s)
		return
	}
	old := r.spans[r.spanHead]
	r.spans[r.spanHead] = s
	r.spanHead = (r.spanHead + 1) % r.spanCap
	r.freeSpans = append(r.freeSpans, old)
	if r.cEvicted == nil {
		r.cEvicted = r.Counter("obs", "spans_evicted", "")
	}
	r.cEvicted.Inc()
}

// SpansEvicted returns how many finished spans the ring has recycled out
// from under consumers (zero until the ring first overflows).
func (r *Registry) SpansEvicted() int64 {
	if r == nil {
		return 0
	}
	return r.cEvicted.Value()
}

// Spans returns the retained finished spans, oldest first.
func (r *Registry) Spans() []*Span {
	if r == nil {
		return nil
	}
	out := make([]*Span, 0, len(r.spans))
	out = append(out, r.spans[r.spanHead:]...)
	out = append(out, r.spans[:r.spanHead]...)
	return out
}

// SpanTotal returns the number of spans ever finished (including those the
// ring has dropped).
func (r *Registry) SpanTotal() int64 {
	if r == nil {
		return 0
	}
	return r.spanTotal
}

// HopSummary is the latency distribution of one hop for one (domain, fault
// class) pair.
type HopSummary struct {
	Domain string  `json:"domain"`
	Class  string  `json:"class"`
	Hop    string  `json:"hop"`
	Count  int64   `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// HopSummaries returns per-hop latency breakdowns in first-seen order
// (deterministic for a deterministic run).
func (r *Registry) HopSummaries() []HopSummary {
	if r == nil {
		return nil
	}
	out := make([]HopSummary, 0, len(r.hopOrder))
	for _, k := range r.hopOrder {
		h := r.hopHists[k]
		out = append(out, HopSummary{
			Domain: k.Domain, Class: k.Class, Hop: k.Hop, Count: h.Count(),
			P50Ms: float64(h.Quantile(0.50)) / 1e6,
			P95Ms: float64(h.Quantile(0.95)) / 1e6,
			P99Ms: float64(h.Quantile(0.99)) / 1e6,
			MaxMs: float64(h.Max()) / 1e6,
		})
	}
	return out
}

// WriteSpansTSV renders the per-hop latency summaries as TSV.
func (r *Registry) WriteSpansTSV(w io.Writer) error {
	if r == nil {
		return nil
	}
	if _, err := fmt.Fprintln(w, "domain\tclass\thop\tcount\tp50_ms\tp95_ms\tp99_ms\tmax_ms"); err != nil {
		return err
	}
	for _, hs := range r.HopSummaries() {
		if _, err := fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%.4f\t%.4f\t%.4f\t%.4f\n",
			hs.Domain, hs.Class, hs.Hop, hs.Count, hs.P50Ms, hs.P95Ms, hs.P99Ms, hs.MaxMs); err != nil {
			return err
		}
	}
	return nil
}

// spanExport is the JSON shape of one retained span.
type spanExport struct {
	Domain  string      `json:"domain"`
	Class   string      `json:"class"`
	Thread  string      `json:"thread,omitempty"`
	Outcome string      `json:"outcome"`
	Flow    uint64      `json:"flow,omitempty"`
	StartMs float64     `json:"start_ms"`
	EndMs   float64     `json:"end_ms"`
	Hops    []hopExport `json:"hops"`
}

type hopExport struct {
	Name    string  `json:"name"`
	StartMs float64 `json:"start_ms"`
	EndMs   float64 `json:"end_ms"`
}

func (r *Registry) exportSpans() []spanExport {
	spans := r.Spans()
	out := make([]spanExport, 0, len(spans))
	for _, s := range spans {
		se := spanExport{
			Domain: s.Domain, Class: s.Class, Thread: s.Thread, Outcome: s.Outcome,
			Flow:    s.Flow,
			StartMs: s.Start.Milliseconds(), EndMs: s.End.Milliseconds(),
		}
		for _, h := range s.hops {
			se.Hops = append(se.Hops, hopExport{Name: h.Name, StartMs: h.Start.Milliseconds(), EndMs: h.End.Milliseconds()})
		}
		out = append(out, se)
	}
	return out
}
