package obs

import (
	"strings"
	"testing"
	"time"
)

// driveFault walks one span through dispatch→mmentry→driver→usd.queue and
// finishes it, advancing the clock per hop.
func driveFault(r *Registry, fc *fakeClock, domain string, hop time.Duration) {
	sp := r.StartSpan(domain, "page")
	sp.BeginHop("dispatch")
	fc.advance(hop)
	sp.BeginHop("mmentry")
	fc.advance(hop)
	sp.BeginHop("driver")
	fc.advance(hop)
	sp.BeginHop("usd.queue")
	fc.advance(hop)
	sp.Finish("worker")
}

func TestAttributionExactFaultBreakdown(t *testing.T) {
	r, fc := newTestRegistry()
	a := r.EnableAttribution()
	d := a.Track("d1")

	// 2 ms idle, then a fault with 1 ms per hop, then 3 ms idle.
	fc.advance(2 * time.Millisecond)
	driveFault(r, fc, "d1", time.Millisecond)
	fc.advance(3 * time.Millisecond)

	if err := a.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	p, ok := a.Profile("d1")
	if !ok {
		t.Fatal("d1 not tracked")
	}
	if p.Elapsed() != 9*time.Millisecond {
		t.Fatalf("elapsed = %v", p.Elapsed())
	}
	want := map[string]time.Duration{
		"idle":                    5 * time.Millisecond,
		"blocked-fault;dispatch":  time.Millisecond,
		"blocked-fault;mmentry":   time.Millisecond,
		"blocked-fault;driver":    time.Millisecond,
		"blocked-fault;usd.queue": time.Millisecond,
	}
	got := map[string]time.Duration{}
	for _, acc := range p.Accounts {
		k := acc.State.String()
		if acc.Hop != "" {
			k += ";" + acc.Hop
		}
		got[k] += acc.Total
	}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("account %q = %v, want %v (all: %v)", k, got[k], w, got)
		}
	}
	if d.StateTotal(AttrFault) != 4*time.Millisecond {
		t.Fatalf("fault total = %v", d.StateTotal(AttrFault))
	}
}

func TestAttributionCPUStates(t *testing.T) {
	r, fc := newTestRegistry()
	a := r.EnableAttribution()
	d := a.Track("d1")

	// Wait 2 ms for the CPU, run 5 ms, then idle 1 ms.
	d.CPUWait()
	fc.advance(2 * time.Millisecond)
	d.CPURun()
	fc.advance(5 * time.Millisecond)
	d.CPUYield()
	fc.advance(time.Millisecond)

	if err := a.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if got := d.StateTotal(AttrRunnable); got != 2*time.Millisecond {
		t.Fatalf("runnable = %v", got)
	}
	if got := d.StateTotal(AttrRunning); got != 5*time.Millisecond {
		t.Fatalf("running = %v", got)
	}
	if got := d.StateTotal(AttrIdle); got != time.Millisecond {
		t.Fatalf("idle = %v", got)
	}
}

func TestAttributionFaultDominatesCPU(t *testing.T) {
	// While a fault span is open, CPU consumed servicing it (the MMEntry
	// worker computing on the domain's contract) stays attributed to the
	// fault hop — the paper's "pay with your own resources" story.
	r, fc := newTestRegistry()
	a := r.EnableAttribution()
	d := a.Track("d1")

	sp := r.StartSpan("d1", "page")
	sp.BeginHop("mmentry")
	d.CPUWait()
	fc.advance(time.Millisecond)
	d.CPURun()
	fc.advance(time.Millisecond)
	d.CPUYield()
	sp.Finish("worker")
	fc.advance(time.Millisecond)

	if err := a.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if got := d.StateTotal(AttrFault); got != 2*time.Millisecond {
		t.Fatalf("fault = %v (want the CPU time inside the span)", got)
	}
	if got := d.StateTotal(AttrRunning); got != 0 {
		t.Fatalf("running = %v, want 0", got)
	}
}

func TestAttributionRetroactiveSplitHop(t *testing.T) {
	// The USD records service start/completion retroactively via SplitHop;
	// the attribution must split the blocked time at those past instants.
	r, fc := newTestRegistry()
	a := r.EnableAttribution()

	sp := r.StartSpan("d1", "page")
	sp.BeginHop("usd.queue")
	start := r.Now().Add(2 * time.Millisecond)
	fc.advance(6 * time.Millisecond)
	sp.SplitHop(start, "usd.read")
	sp.SplitHop(start.Add(3*time.Millisecond), "usd.complete")
	fc.advance(time.Millisecond)
	sp.Finish("worker")

	if err := a.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	p, _ := a.Profile("d1")
	want := map[string]time.Duration{
		"usd.queue":    2 * time.Millisecond,
		"usd.read":     3 * time.Millisecond,
		"usd.complete": 2 * time.Millisecond,
	}
	for _, acc := range p.Accounts {
		if acc.State != AttrFault {
			continue
		}
		if w, ok := want[acc.Hop]; ok && acc.Total != w {
			t.Fatalf("hop %q = %v, want %v", acc.Hop, acc.Total, w)
		}
	}
}

func TestAttributionKilledDomainConserves(t *testing.T) {
	r, fc := newTestRegistry()
	a := r.EnableAttribution()
	d := a.Track("victim")

	// A fault is in flight and a thread is waiting when the kill lands.
	sp := r.StartSpan("victim", "page")
	sp.BeginHop("driver")
	d.CPUWait()
	fc.advance(2 * time.Millisecond)
	a.DomainKilled("victim")
	// The span never finishes and the waiter never reports back.
	fc.advance(3 * time.Millisecond)

	if err := a.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if got := d.StateTotal(AttrFault); got != 2*time.Millisecond {
		t.Fatalf("fault = %v", got)
	}
	if got := d.StateTotal(AttrIdle); got != 3*time.Millisecond {
		t.Fatalf("post-kill idle = %v", got)
	}
	// Later events on the corpse are ignored.
	d.CPUWait()
	fc.advance(time.Millisecond)
	if err := a.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestAttributionFoldedOutput(t *testing.T) {
	r, fc := newTestRegistry()
	a := r.EnableAttribution()
	a.Track("d1")

	fc.advance(time.Millisecond)
	driveFault(r, fc, "d1", 500*time.Microsecond)

	var b1, b2 strings.Builder
	if err := a.WriteFolded(&b1); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteFolded(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("folded output not stable across calls")
	}
	want := "d1;idle 1000\nd1;blocked-fault;dispatch 500\nd1;blocked-fault;mmentry 500\nd1;blocked-fault;driver 500\nd1;blocked-fault;usd.queue 500\n"
	if b1.String() != want {
		t.Fatalf("folded:\n%s\nwant:\n%s", b1.String(), want)
	}
}

func TestAttributionNilSafe(t *testing.T) {
	var a *Attribution
	var d *DomainAttr
	a.Track("x")
	a.DomainKilled("x")
	d.CPUWait()
	d.CPURun()
	d.CPUYield()
	if a.Profiles() != nil || a.Domains() != nil {
		t.Fatal("nil attribution should report nothing")
	}
	if err := a.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteFolded(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if d.StateTotal(AttrRunning) != 0 || d.Name() != "" {
		t.Fatal("nil domain attr should be zero")
	}
	// A registry without EnableAttribution records spans without feeding
	// any attribution.
	r, _ := newTestRegistry()
	sp := r.StartSpan("d1", "page")
	sp.BeginHop("dispatch")
	sp.Finish("fast")
	if r.Attr() != nil {
		t.Fatal("attribution should be off by default")
	}
}
