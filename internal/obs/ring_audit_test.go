package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"nemesis/internal/sim"
)

// TestRecorderRingMultipleWraps drives a tiny ring through several full
// wrap-arounds and checks that Times and every track's Values stay aligned,
// oldest-first, after each lap.
func TestRecorderRingMultipleWraps(t *testing.T) {
	s := sim.New(1)
	r := NewRegistry(s.Now)
	const cap = 4
	rc := NewRecorder(r, s, RecorderConfig{Interval: 10 * time.Millisecond, Cap: cap})

	// The gauge reports the sample ordinal, so values must always equal the
	// window index their timestamp implies — any ring misalignment shows.
	tick := int64(0)
	tr := rc.TrackGauge("", "ordinal", "dom", "n", func() int64 { tick++; return tick })
	rc.Start()

	for lap := 1; lap <= 3; lap++ {
		s.RunFor(cap * 10 * time.Millisecond)
		if rc.Samples() != cap || rc.Total() != int64(lap*cap) {
			t.Fatalf("lap %d: samples=%d total=%d", lap, rc.Samples(), rc.Total())
		}
		times := rc.Times()
		vals := rc.Values(tr)
		if len(times) != cap || len(vals) != cap {
			t.Fatalf("lap %d: len(times)=%d len(vals)=%d", lap, len(times), len(vals))
		}
		for i := 0; i < cap; i++ {
			ordinal := int64((lap-1)*cap + i + 1)
			wantT := sim.Time(time.Duration(ordinal) * 10 * time.Millisecond)
			if times[i] != wantT {
				t.Fatalf("lap %d slot %d: time %v, want %v (times %v)", lap, i, times[i], wantT, times)
			}
			if int64(vals[i]) != ordinal {
				t.Fatalf("lap %d slot %d: value %v, want %d (vals %v)", lap, i, vals[i], ordinal, vals)
			}
		}
	}

	// A partial lap keeps oldest-first order straddling the wrap point.
	s.RunFor(10 * time.Millisecond)
	times := rc.Times()
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("times not monotonic after partial lap: %v", times)
		}
	}
	rc.Stop()
}

// TestAuditOrderingSameTimestamp pins the tiebreak for audit events logged
// at one sim instant: append order is preserved, in the log, in per-kind
// views, and in the TSV rendering. The simulator fires same-time events
// FIFO, so this makes audit trails deterministic end to end.
func TestAuditOrderingSameTimestamp(t *testing.T) {
	r, fc := newTestRegistry()
	fc.advance(5 * time.Millisecond)
	r.Audit(AuditRevokeBegin, "hog", "", 8, "first")
	r.Audit(AuditCrosstalk, "victim", "hog", 0, "second")
	r.Audit(AuditRevokeBegin, "hog2", "", 4, "third")
	r.Audit(AuditRevokeComplete, "hog", "", 8, "fourth")

	log := r.AuditLog()
	if len(log) != 4 {
		t.Fatalf("audit log has %d events", len(log))
	}
	wantNotes := []string{"first", "second", "third", "fourth"}
	for i, e := range log {
		if e.At != sim.Time(5*time.Millisecond) {
			t.Fatalf("event %d at %v, want all at 5ms", i, e.At)
		}
		if e.Detail != wantNotes[i] {
			t.Fatalf("event %d detail %q, want %q (append order must be preserved)", i, e.Detail, wantNotes[i])
		}
	}

	// Per-kind view keeps the same relative order.
	begins := r.AuditByKind(AuditRevokeBegin)
	if len(begins) != 2 || begins[0].Detail != "first" || begins[1].Detail != "third" {
		t.Fatalf("AuditByKind order: %+v", begins)
	}

	// And the TSV renders rows in that order.
	var buf bytes.Buffer
	if err := r.WriteAuditTSV(&buf); err != nil {
		t.Fatal(err)
	}
	var rows []int
	for _, n := range wantNotes {
		i := strings.Index(buf.String(), n)
		if i < 0 {
			t.Fatalf("TSV missing %q:\n%s", n, buf.String())
		}
		rows = append(rows, i)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i] < rows[i-1] {
			t.Fatalf("TSV rows out of append order:\n%s", buf.String())
		}
	}
}
