package obs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestAuditRingEviction pins the bounded audit log: with a cap of 3, five
// events keep the newest three in oldest-first order, the total keeps
// counting, and the obs.audit_evicted counter records exactly the overwrites
// — surfaced both by the accessor and in the rollup text WriteTopTable
// embeds.
func TestAuditRingEviction(t *testing.T) {
	r, fc := newTestRegistry()
	r.SetAuditCap(3)
	for i := 1; i <= 5; i++ {
		fc.advance(time.Millisecond)
		r.Audit(AuditRevokeBegin, fmt.Sprintf("d%d", i), "", i, fmt.Sprintf("ev%d", i))
	}

	log := r.AuditLog()
	if len(log) != 3 {
		t.Fatalf("retained %d events, want cap 3", len(log))
	}
	for i, want := range []string{"ev3", "ev4", "ev5"} {
		if log[i].Detail != want {
			t.Fatalf("slot %d = %q, want %q (oldest-first after wrap): %+v", i, log[i].Detail, want, log)
		}
	}
	if got := r.AuditTotal(); got != 5 {
		t.Fatalf("AuditTotal = %d, want 5", got)
	}
	if got := r.AuditEvicted(); got != 2 {
		t.Fatalf("AuditEvicted = %d, want 2", got)
	}
	if got := r.LookupCounter("obs", "audit_evicted", "").Value(); got != 2 {
		t.Fatalf("obs.audit_evicted counter = %d, want 2", got)
	}

	var buf bytes.Buffer
	if err := r.Summarize(5).WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "5 audit events (2 evicted)") {
		t.Fatalf("rollup does not surface the eviction count:\n%s", buf.String())
	}
}

// TestAuditCapMinimumOne keeps a degenerate ring functional: cap 1 retains
// exactly the latest event.
func TestAuditCapMinimumOne(t *testing.T) {
	r, _ := newTestRegistry()
	r.SetAuditCap(1)
	r.Audit(AuditRevokeBegin, "a", "", 0, "first")
	r.Audit(AuditRevokeComplete, "b", "", 0, "second")
	log := r.AuditLog()
	if len(log) != 1 || log[0].Detail != "second" {
		t.Fatalf("cap-1 ring retained %+v", log)
	}
	if r.AuditEvicted() != 1 || r.AuditTotal() != 2 {
		t.Fatalf("evicted=%d total=%d", r.AuditEvicted(), r.AuditTotal())
	}
}

// tsvColumns splits a rendered TSV line; escaped tabs inside fields must not
// count as separators.
func tsvColumns(line string) int { return len(strings.Split(line, "\t")) }

// TestAuditTSVEscaping pins the export escaping: domain and detail strings
// containing tabs, newlines, carriage returns or backslashes — all caller
// data — must come out backslash-escaped so every row keeps its column
// count and row count.
func TestAuditTSVEscaping(t *testing.T) {
	r, _ := newTestRegistry()
	r.Audit(AuditRevokeBegin, "dom\twith\ttabs", "other\nline", 4, "detail \\ with\r\nall of it")
	r.Audit(AuditRevokeComplete, "plain", "", 4, "clean")

	var buf bytes.Buffer
	if err := r.WriteAuditTSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("TSV has %d lines, want header + 2 rows:\n%s", len(lines), out)
	}
	for i, line := range lines {
		if got := tsvColumns(line); got != 6 {
			t.Fatalf("line %d has %d columns, want 6: %q", i, got, line)
		}
	}
	for _, want := range []string{`dom\twith\ttabs`, `other\nline`, `detail \\ with\r\nall of it`} {
		if !strings.Contains(out, want) {
			t.Fatalf("TSV missing escaped form %q:\n%s", want, out)
		}
	}
}

// TestFlagsTSVEscaping does the same for the crosstalk-flag export's victim
// and suspect names.
func TestFlagsTSVEscaping(t *testing.T) {
	r, _ := newTestRegistry()
	r.addFlag(Flag{Victim: "vic\ttim", Suspect: "sus\npect", Window: time.Second})

	var buf bytes.Buffer
	if err := r.WriteFlagsTSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("TSV has %d lines, want header + 1 row:\n%s", len(lines), out)
	}
	wantCols := tsvColumns(lines[0])
	if got := tsvColumns(lines[1]); got != wantCols {
		t.Fatalf("row has %d columns, header has %d: %q", got, wantCols, lines[1])
	}
	for _, want := range []string{`vic\ttim`, `sus\npect`} {
		if !strings.Contains(out, want) {
			t.Fatalf("TSV missing escaped form %q:\n%s", want, out)
		}
	}
}
