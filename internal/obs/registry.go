// Package obs is the simulation-time-aware telemetry subsystem: counters,
// gauges and fixed-bucket latency histograms keyed by (subsystem, name,
// domain), causal fault spans recording per-hop latency along the
// self-paging fault path (dispatch → MMEntry → stretch driver → USD →
// disk → map completion), and a QoS-crosstalk monitor that flags windows
// in which one domain's paging measurably degrades another's progress.
//
// Every timestamp is sim.Time, so instrumented runs stay exactly
// deterministic. A nil *Registry (and every metric or span handle obtained
// from one) is a valid no-op: instrumented code needs neither nil checks
// nor allocations when telemetry is disabled.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"nemesis/internal/sim"
)

// Clock supplies the current simulated instant (normally sim.Simulator.Now).
type Clock func() sim.Time

// Key identifies one metric: the subsystem that owns it, the metric name,
// and the domain (or client) it is attributed to. System-wide metrics use an
// empty Domain.
type Key struct {
	Subsystem string
	Name      string
	Domain    string
}

func (k Key) String() string {
	if k.Domain == "" {
		return k.Subsystem + "." + k.Name
	}
	return k.Subsystem + "." + k.Name + "[" + k.Domain + "]"
}

// DefaultSpanCap bounds the ring of finished spans a registry retains.
const DefaultSpanCap = 512

// DefaultAuditCap bounds the audit-event ring. Generous: a paper-scale run
// records tens of events, and even a 10k-domain cluster machine stays well
// under it — but a pathological run can no longer grow the log without
// bound. Evictions are counted in the obs.audit_evicted counter.
const DefaultAuditCap = 65536

// Registry holds all metrics, finished fault spans and crosstalk flags for
// one simulated system. It must only be touched from simulator context (one
// goroutine at a time), which the process model already guarantees.
type Registry struct {
	now Clock

	counters map[Key]*Counter
	gauges   map[Key]*Gauge
	hists    map[Key]*Histogram
	corder   []Key
	gorder   []Key
	horder   []Key

	hopHists map[hopKey]*Histogram
	hopOrder []hopKey

	// spanStats caches, per (domain, class), the e2e histogram and the hop
	// histograms a finished span observes into, so the per-fault recording
	// path does no string concatenation and at most one map lookup.
	spanStats map[spanKey]*spanStats

	spanCap   int
	spans     []*Span // ring buffer once full
	spanHead  int     // next overwrite position
	spanTotal int64   // spans ever recorded
	freeSpans []*Span // recycled spans evicted from the ring

	// cEvicted counts spans recycled out of the ring; created lazily on
	// the first eviction so short runs export no empty series.
	cEvicted *Counter

	// flowBase offsets span flow IDs so registries of different machines
	// in one merged cluster trace never alias; flowSeq is the last local
	// sequence number handed out.
	flowBase uint64
	flowSeq  uint64

	flags []Flag

	// audit is a ring once auditCap is reached; auditHead is the next
	// overwrite position, auditTotal the events ever recorded, and
	// cAuditEvicted (lazy, like cEvicted) counts overwritten events.
	audit         []AuditEvent
	auditCap      int
	auditHead     int
	auditTotal    int64
	cAuditEvicted *Counter

	// attr is the sim-time attribution state machine, nil until
	// EnableAttribution. When enabled, span lifecycle events drive it.
	attr *Attribution
}

// NewRegistry creates a registry reading time from now.
func NewRegistry(now Clock) *Registry {
	if now == nil {
		now = func() sim.Time { return 0 }
	}
	return &Registry{
		now:       now,
		counters:  make(map[Key]*Counter),
		gauges:    make(map[Key]*Gauge),
		hists:     make(map[Key]*Histogram),
		hopHists:  make(map[hopKey]*Histogram),
		spanStats: make(map[spanKey]*spanStats),
		spanCap:   DefaultSpanCap,
		auditCap:  DefaultAuditCap,
	}
}

// SetSpanCap resizes the finished-span ring (minimum 1). Must be called
// before spans are recorded.
func (r *Registry) SetSpanCap(n int) {
	if r == nil || n < 1 {
		return
	}
	r.spanCap = n
}

// SetAuditCap resizes the audit-event ring (minimum 1). Must be called
// before events are recorded.
func (r *Registry) SetAuditCap(n int) {
	if r == nil || n < 1 {
		return
	}
	r.auditCap = n
}

// SetFlowBase offsets all subsequently assigned span flow IDs by base.
// Cluster runs give each machine a disjoint base (machine index shifted
// past any plausible per-machine span count) so merged traces never alias
// two machines' flows.
func (r *Registry) SetFlowBase(base uint64) {
	if r == nil {
		return
	}
	r.flowBase = base
}

// nextFlowID hands out the next machine-unique flow ID (never zero).
func (r *Registry) nextFlowID() uint64 {
	r.flowSeq++
	return r.flowBase + r.flowSeq
}

// EnableAttribution switches on exact per-domain sim-time attribution
// (idempotent) and returns the state machine. Fault spans recorded on the
// registry feed it automatically; the CPU scheduler feeds it via the handle
// the system facade wires in.
func (r *Registry) EnableAttribution() *Attribution {
	if r == nil {
		return nil
	}
	if r.attr == nil {
		r.attr = newAttribution(r.now)
	}
	return r.attr
}

// Attr returns the attribution state machine, or nil if never enabled.
func (r *Registry) Attr() *Attribution {
	if r == nil {
		return nil
	}
	return r.attr
}

// HopHistogram returns the latency histogram of one fault-path hop for one
// (domain, fault class), or nil if that hop was never observed.
func (r *Registry) HopHistogram(domain, class, hop string) *Histogram {
	if r == nil {
		return nil
	}
	return r.hopHists[hopKey{domain, class, hop}]
}

// Now returns the registry's current simulated time (zero for nil).
func (r *Registry) Now() sim.Time {
	if r == nil {
		return 0
	}
	return r.now()
}

// Counter returns (creating if needed) the counter for key. Nil registries
// return a nil counter, whose methods are no-ops.
func (r *Registry) Counter(subsystem, name, domain string) *Counter {
	if r == nil {
		return nil
	}
	k := Key{subsystem, name, domain}
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{r: r}
		r.counters[k] = c
		r.corder = append(r.corder, k)
	}
	return c
}

// Gauge returns (creating if needed) the gauge for key.
func (r *Registry) Gauge(subsystem, name, domain string) *Gauge {
	if r == nil {
		return nil
	}
	k := Key{subsystem, name, domain}
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{r: r}
		r.gauges[k] = g
		r.gorder = append(r.gorder, k)
	}
	return g
}

// Histogram returns (creating if needed) the latency histogram for key,
// using the default exponential bucket layout.
func (r *Registry) Histogram(subsystem, name, domain string) *Histogram {
	if r == nil {
		return nil
	}
	k := Key{subsystem, name, domain}
	h, ok := r.hists[k]
	if !ok {
		h = newHistogram(r)
		r.hists[k] = h
		r.horder = append(r.horder, k)
	}
	return h
}

// LookupCounter returns the counter for key, or nil if it has never been
// created. Useful for read-only reporting that must not clutter the
// registry with empty series.
func (r *Registry) LookupCounter(subsystem, name, domain string) *Counter {
	if r == nil {
		return nil
	}
	return r.counters[Key{subsystem, name, domain}]
}

// LookupGauge returns the gauge for key, or nil if it has never been
// created.
func (r *Registry) LookupGauge(subsystem, name, domain string) *Gauge {
	if r == nil {
		return nil
	}
	return r.gauges[Key{subsystem, name, domain}]
}

// LookupHistogram returns the histogram for key, or nil if it has never
// been created.
func (r *Registry) LookupHistogram(subsystem, name, domain string) *Histogram {
	if r == nil {
		return nil
	}
	return r.hists[Key{subsystem, name, domain}]
}

// Counter is a monotonically increasing count, stamped with the simulated
// time of its last update.
type Counter struct {
	r  *Registry
	v  int64
	at sim.Time
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Safe on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
	c.at = c.r.now()
}

// Value returns the current count (zero for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Updated returns the simulated time of the last update.
func (c *Counter) Updated() sim.Time {
	if c == nil {
		return 0
	}
	return c.at
}

// Gauge is an instantaneous level (queue depth, free frames, stack depth).
type Gauge struct {
	r  *Registry
	v  int64
	at sim.Time
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
	g.at = g.r.now()
}

// Add adjusts the level by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v += delta
	g.at = g.r.now()
}

// Value returns the current level (zero for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Updated returns the simulated time of the last update.
func (g *Gauge) Updated() sim.Time {
	if g == nil {
		return 0
	}
	return g.at
}

// histBuckets are the fixed upper bounds of the latency histogram:
// exponential from 1 µs, doubling, up to ~67 s, plus an implicit overflow
// bucket. Fault-path latencies (tens of ns to seconds) all land inside.
var histBuckets = func() []time.Duration {
	out := make([]time.Duration, 27)
	b := time.Microsecond
	for i := range out {
		out[i] = b
		b *= 2
	}
	return out
}()

// Histogram is a fixed-bucket latency histogram with exact count, sum, min
// and max, and bucket-interpolated quantiles.
type Histogram struct {
	r      *Registry
	counts []int64 // len(histBuckets)+1; last is overflow
	count  int64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
	at     sim.Time
}

func newHistogram(r *Registry) *Histogram {
	return &Histogram{r: r, counts: make([]int64, len(histBuckets)+1)}
}

// Observe records one latency sample. Safe on a nil receiver.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	i := 0
	for i < len(histBuckets) && d > histBuckets[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.at = h.r.now()
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the total of all samples.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min returns the smallest sample.
func (h *Histogram) Min() time.Duration {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return h.max
}

// Mean returns the mean sample, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Updated returns the simulated time of the last observation.
func (h *Histogram) Updated() sim.Time {
	if h == nil {
		return 0
	}
	return h.at
}

// Quantile returns the q-quantile (0 < q <= 1), linearly interpolated
// within the containing bucket and clamped to the exact min/max.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil || h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := int64(q*float64(h.count) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum < target {
			continue
		}
		var lo, hi time.Duration
		if i == 0 {
			lo = 0
		} else {
			lo = histBuckets[i-1]
		}
		if i < len(histBuckets) {
			hi = histBuckets[i]
		} else {
			hi = h.max // overflow bucket: clamp to observed max
		}
		// Interpolate by rank within the bucket.
		rankInBucket := target - (cum - c)
		est := lo + time.Duration(float64(hi-lo)*float64(rankInBucket)/float64(c))
		if est < h.min {
			est = h.min
		}
		if est > h.max {
			est = h.max
		}
		return est
	}
	return h.max
}

// metricRow is one export line; blank fields render empty in TSV.
type metricRow struct {
	Type      string  `json:"type"`
	Subsystem string  `json:"subsystem"`
	Name      string  `json:"name"`
	Domain    string  `json:"domain,omitempty"`
	Value     *int64  `json:"value,omitempty"`
	Count     *int64  `json:"count,omitempty"`
	SumMs     *string `json:"sum_ms,omitempty"`
	P50Ms     *string `json:"p50_ms,omitempty"`
	P95Ms     *string `json:"p95_ms,omitempty"`
	P99Ms     *string `json:"p99_ms,omitempty"`
	MaxMs     *string `json:"max_ms,omitempty"`
	UpdatedMs float64 `json:"updated_ms"`
}

func msStr(d time.Duration) *string {
	s := fmt.Sprintf("%.4f", float64(d)/1e6)
	return &s
}

func (r *Registry) metricRows() []metricRow {
	var rows []metricRow
	for _, k := range r.corder {
		c := r.counters[k]
		v := c.v
		rows = append(rows, metricRow{Type: "counter", Subsystem: k.Subsystem, Name: k.Name, Domain: k.Domain, Value: &v, UpdatedMs: c.at.Milliseconds()})
	}
	for _, k := range r.gorder {
		g := r.gauges[k]
		v := g.v
		rows = append(rows, metricRow{Type: "gauge", Subsystem: k.Subsystem, Name: k.Name, Domain: k.Domain, Value: &v, UpdatedMs: g.at.Milliseconds()})
	}
	for _, k := range r.horder {
		h := r.hists[k]
		n := h.count
		rows = append(rows, metricRow{
			Type: "histogram", Subsystem: k.Subsystem, Name: k.Name, Domain: k.Domain,
			Count: &n, SumMs: msStr(h.sum),
			P50Ms: msStr(h.Quantile(0.50)), P95Ms: msStr(h.Quantile(0.95)),
			P99Ms: msStr(h.Quantile(0.99)), MaxMs: msStr(h.max),
			UpdatedMs: h.at.Milliseconds(),
		})
	}
	return rows
}

func orEmpty(s *string) string {
	if s == nil {
		return ""
	}
	return *s
}

// WriteMetricsTSV renders every counter, gauge and histogram as TSV, in
// creation order (which is deterministic for a deterministic run).
func (r *Registry) WriteMetricsTSV(w io.Writer) error {
	if r == nil {
		return nil
	}
	if _, err := fmt.Fprintln(w, "type\tsubsystem\tname\tdomain\tvalue\tcount\tsum_ms\tp50_ms\tp95_ms\tp99_ms\tmax_ms\tupdated_ms"); err != nil {
		return err
	}
	for _, row := range r.metricRows() {
		val := ""
		if row.Value != nil {
			val = fmt.Sprintf("%d", *row.Value)
		}
		cnt := ""
		if row.Count != nil {
			cnt = fmt.Sprintf("%d", *row.Count)
		}
		if _, err := fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%.3f\n",
			row.Type, row.Subsystem, row.Name, row.Domain, val, cnt,
			orEmpty(row.SumMs), orEmpty(row.P50Ms), orEmpty(row.P95Ms), orEmpty(row.P99Ms), orEmpty(row.MaxMs),
			row.UpdatedMs); err != nil {
			return err
		}
	}
	return nil
}

// snapshot is the JSON export shape.
type snapshot struct {
	TimeMs    float64      `json:"time_ms"`
	Metrics   []metricRow  `json:"metrics"`
	Hops      []HopSummary `json:"fault_hops"`
	Spans     []spanExport `json:"recent_spans"`
	Crosstalk []Flag       `json:"crosstalk_flags"`
	Audit     []AuditEvent `json:"audit_log"`
}

// WriteJSON renders the full registry state — metrics, per-hop fault
// latency summaries, the retained span ring and crosstalk flags — as one
// JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := snapshot{
		TimeMs:    r.now().Milliseconds(),
		Metrics:   r.metricRows(),
		Hops:      r.HopSummaries(),
		Spans:     r.exportSpans(),
		Crosstalk: r.flags,
		Audit:     r.AuditLog(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}
