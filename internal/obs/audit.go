package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"nemesis/internal/sim"
)

// AuditKind names one class of QoS-relevant state transition. The audit log
// is the structured, sim-timestamped record of every moment the system's
// service contracts were contested: guarantee violations, the phases of the
// frame-revocation protocol, netswap degradation, and crosstalk flags. It is
// what experiments assert on ("zero crosstalk" = no qos.* events) and what
// the timeline export renders as instant events.
type AuditKind string

const (
	// AuditGuaranteeViolation: a within-guarantee allocation found memory
	// exhausted while another domain held frames above its guarantee —
	// Domain is the over-guarantee holder, Other the starved requester.
	AuditGuaranteeViolation AuditKind = "qos.violation"
	// AuditCrosstalk mirrors a crosstalk-monitor flag: Domain is the
	// victim whose progress collapsed, Other the suspect whose fault rate
	// surged in the same window.
	AuditCrosstalk AuditKind = "qos.crosstalk"

	// Revocation-protocol phases (Domain is the victim; Frames is k).
	AuditRevokeBegin       AuditKind = "revoke.begin"
	AuditRevokeTransparent AuditKind = "revoke.transparent"
	AuditRevokeIntrusive   AuditKind = "revoke.intrusive"
	AuditRevokeComplete    AuditKind = "revoke.complete"
	AuditRevokeTimeout     AuditKind = "revoke.timeout"
	AuditRevokeKill        AuditKind = "revoke.kill"

	// Netswap tiered-backing transitions (Domain is the paging domain).
	AuditNetswapDegrade AuditKind = "net.degrade"
	AuditNetswapProbe   AuditKind = "net.probe"
	AuditNetswapRestore AuditKind = "net.restore"
)

// AuditEvent is one entry of the audit log. Machine is empty on a live
// registry; MergeTimelines stamps it when per-machine dumps are folded into
// one cluster trace.
type AuditEvent struct {
	At      sim.Time  `json:"at_ns"`
	Kind    AuditKind `json:"kind"`
	Machine string    `json:"machine,omitempty"`
	Domain  string    `json:"domain,omitempty"` // primary domain
	Other   string    `json:"other,omitempty"`  // counterpart, if any
	Frames  int       `json:"frames,omitempty"` // frame count, if relevant
	Detail  string    `json:"detail,omitempty"`
}

// Audit records an event stamped with the current simulated time. The log is
// a ring of SetAuditCap entries: once full, the oldest event is overwritten
// and the obs.audit_evicted counter (lazy, like spans_evicted) increments.
// Safe on a nil registry (telemetry disabled): the event is discarded.
func (r *Registry) Audit(kind AuditKind, domain, other string, frames int, detail string) {
	if r == nil {
		return
	}
	ev := AuditEvent{
		At:     r.now(),
		Kind:   kind,
		Domain: domain,
		Other:  other,
		Frames: frames,
		Detail: detail,
	}
	r.auditTotal++
	if len(r.audit) < r.auditCap {
		r.audit = append(r.audit, ev)
		return
	}
	r.audit[r.auditHead] = ev
	r.auditHead = (r.auditHead + 1) % r.auditCap
	if r.cAuditEvicted == nil {
		r.cAuditEvicted = r.Counter("obs", "audit_evicted", "")
	}
	r.cAuditEvicted.Inc()
}

// AuditLog returns the retained audit events, oldest first. Until the ring
// first wraps this is every event ever recorded.
func (r *Registry) AuditLog() []AuditEvent {
	if r == nil {
		return nil
	}
	if r.auditHead == 0 {
		return r.audit
	}
	out := make([]AuditEvent, 0, len(r.audit))
	out = append(out, r.audit[r.auditHead:]...)
	out = append(out, r.audit[:r.auditHead]...)
	return out
}

// AuditTotal returns the number of events ever recorded (including any the
// ring has dropped).
func (r *Registry) AuditTotal() int64 {
	if r == nil {
		return 0
	}
	return r.auditTotal
}

// AuditEvicted returns how many audit events the ring has overwritten (zero
// until it first wraps).
func (r *Registry) AuditEvicted() int64 {
	if r == nil {
		return 0
	}
	return r.cAuditEvicted.Value()
}

// AuditByKind returns the retained events of one kind, oldest first.
func (r *Registry) AuditByKind(kind AuditKind) []AuditEvent {
	if r == nil {
		return nil
	}
	var out []AuditEvent
	for _, e := range r.AuditLog() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// WriteAuditTSV renders the audit log as TSV, oldest first.
func (r *Registry) WriteAuditTSV(w io.Writer) error {
	if r == nil {
		return nil
	}
	if _, err := fmt.Fprintln(w, "at_ms\tkind\tdomain\tother\tframes\tdetail"); err != nil {
		return err
	}
	for _, e := range r.AuditLog() {
		if _, err := fmt.Fprintf(w, "%.3f\t%s\t%s\t%s\t%d\t%s\n",
			e.At.Milliseconds(), e.Kind, escapeTSV(e.Domain), escapeTSV(e.Other), e.Frames, escapeTSV(e.Detail)); err != nil {
			return err
		}
	}
	return nil
}

// escapeTSV backslash-escapes the characters that would corrupt a
// tab-separated export: literal tabs, newlines, carriage returns and the
// escape character itself. Domain names and audit detail strings are caller
// data, so exported artifacts must survive any of them.
func escapeTSV(s string) string {
	if !strings.ContainsAny(s, "\t\n\r\\") {
		return s
	}
	return tsvReplacer.Replace(s)
}

var tsvReplacer = strings.NewReplacer("\\", `\\`, "\t", `\t`, "\n", `\n`, "\r", `\r`)

// WriteAuditJSON renders the audit log as an indented JSON array, oldest
// first — the io.Writer form nemesis-serve's /audit endpoint streams. Safe
// on a nil registry (an empty array is written).
func (r *Registry) WriteAuditJSON(w io.Writer) error {
	events := []AuditEvent{}
	if r != nil && r.audit != nil {
		events = r.AuditLog()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(events)
}
