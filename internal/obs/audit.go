package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"nemesis/internal/sim"
)

// AuditKind names one class of QoS-relevant state transition. The audit log
// is the structured, sim-timestamped record of every moment the system's
// service contracts were contested: guarantee violations, the phases of the
// frame-revocation protocol, netswap degradation, and crosstalk flags. It is
// what experiments assert on ("zero crosstalk" = no qos.* events) and what
// the timeline export renders as instant events.
type AuditKind string

const (
	// AuditGuaranteeViolation: a within-guarantee allocation found memory
	// exhausted while another domain held frames above its guarantee —
	// Domain is the over-guarantee holder, Other the starved requester.
	AuditGuaranteeViolation AuditKind = "qos.violation"
	// AuditCrosstalk mirrors a crosstalk-monitor flag: Domain is the
	// victim whose progress collapsed, Other the suspect whose fault rate
	// surged in the same window.
	AuditCrosstalk AuditKind = "qos.crosstalk"

	// Revocation-protocol phases (Domain is the victim; Frames is k).
	AuditRevokeBegin       AuditKind = "revoke.begin"
	AuditRevokeTransparent AuditKind = "revoke.transparent"
	AuditRevokeIntrusive   AuditKind = "revoke.intrusive"
	AuditRevokeComplete    AuditKind = "revoke.complete"
	AuditRevokeTimeout     AuditKind = "revoke.timeout"
	AuditRevokeKill        AuditKind = "revoke.kill"

	// Netswap tiered-backing transitions (Domain is the paging domain).
	AuditNetswapDegrade AuditKind = "net.degrade"
	AuditNetswapProbe   AuditKind = "net.probe"
	AuditNetswapRestore AuditKind = "net.restore"
)

// AuditEvent is one entry of the audit log.
type AuditEvent struct {
	At     sim.Time  `json:"at_ns"`
	Kind   AuditKind `json:"kind"`
	Domain string    `json:"domain,omitempty"` // primary domain
	Other  string    `json:"other,omitempty"`  // counterpart, if any
	Frames int       `json:"frames,omitempty"` // frame count, if relevant
	Detail string    `json:"detail,omitempty"`
}

// Audit appends an event stamped with the current simulated time. Safe on a
// nil registry (telemetry disabled): the event is discarded.
func (r *Registry) Audit(kind AuditKind, domain, other string, frames int, detail string) {
	if r == nil {
		return
	}
	r.audit = append(r.audit, AuditEvent{
		At:     r.now(),
		Kind:   kind,
		Domain: domain,
		Other:  other,
		Frames: frames,
		Detail: detail,
	})
}

// AuditLog returns all audit events recorded so far, oldest first.
func (r *Registry) AuditLog() []AuditEvent {
	if r == nil {
		return nil
	}
	return r.audit
}

// AuditByKind returns the recorded events of one kind, oldest first.
func (r *Registry) AuditByKind(kind AuditKind) []AuditEvent {
	if r == nil {
		return nil
	}
	var out []AuditEvent
	for _, e := range r.audit {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// WriteAuditTSV renders the audit log as TSV, oldest first.
func (r *Registry) WriteAuditTSV(w io.Writer) error {
	if r == nil {
		return nil
	}
	if _, err := fmt.Fprintln(w, "at_ms\tkind\tdomain\tother\tframes\tdetail"); err != nil {
		return err
	}
	for _, e := range r.audit {
		if _, err := fmt.Fprintf(w, "%.3f\t%s\t%s\t%s\t%d\t%s\n",
			e.At.Milliseconds(), e.Kind, e.Domain, e.Other, e.Frames, e.Detail); err != nil {
			return err
		}
	}
	return nil
}

// WriteAuditJSON renders the audit log as an indented JSON array, oldest
// first — the io.Writer form nemesis-serve's /audit endpoint streams. Safe
// on a nil registry (an empty array is written).
func (r *Registry) WriteAuditJSON(w io.Writer) error {
	events := []AuditEvent{}
	if r != nil && r.audit != nil {
		events = r.audit
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(events)
}
