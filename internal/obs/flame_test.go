package obs

import (
	"strings"
	"testing"
)

func TestParseFolded(t *testing.T) {
	in := "app1;running 120\napp1;blocked-fault;usd.read 4500\n\napp2;idle 99\n"
	lines, err := ParseFolded(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 {
		t.Fatalf("parsed %d lines, want 3", len(lines))
	}
	want := FoldedLine{Frames: []string{"app1", "blocked-fault", "usd.read"}, Micros: 4500}
	got := lines[1]
	if got.Micros != want.Micros || strings.Join(got.Frames, ";") != strings.Join(want.Frames, ";") {
		t.Fatalf("line 2 = %+v, want %+v", got, want)
	}
}

func TestParseFoldedRejectsGarbage(t *testing.T) {
	for _, in := range []string{"nocount", "stack -5", "stack notanumber", " 42"} {
		if _, err := ParseFolded(strings.NewReader(in)); err == nil {
			t.Errorf("ParseFolded(%q) accepted", in)
		}
	}
}

func TestFlameSVGDeterministic(t *testing.T) {
	lines := []FoldedLine{
		{Frames: []string{"app1", "running"}, Micros: 300_000},
		{Frames: []string{"app1", "blocked-fault", "usd.read"}, Micros: 500_000},
		{Frames: []string{"app1", "idle"}, Micros: 200_000},
		{Frames: []string{"app2", "running"}, Micros: 1_000_000},
	}
	var a, b strings.Builder
	if err := WriteFlameSVG(&a, lines); err != nil {
		t.Fatal(err)
	}
	if err := WriteFlameSVG(&b, lines); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("SVG output not deterministic")
	}
	svg := a.String()
	if !strings.HasPrefix(svg, "<svg ") || !strings.HasSuffix(svg, "</svg>\n") {
		t.Fatalf("not a standalone SVG document:\n%s", svg)
	}
	for _, frag := range []string{"app1", "app2", "usd.read", "2.000s total"} {
		if !strings.Contains(svg, frag) {
			t.Errorf("SVG missing %q", frag)
		}
	}
	// Same frame name must always hash to the same fill color.
	if flameColor("usd.read") != flameColor("usd.read") {
		t.Fatal("flameColor unstable")
	}
}

func TestFlameSVGRoundTripFromAttribution(t *testing.T) {
	r, fc := newTestRegistry()
	attr := r.EnableAttribution()
	d := attr.Track("d1")
	d.CPUWait()
	d.CPURun()
	fc.t += 2_000_000 // 2ms running
	s := r.StartSpan("d1", "page")
	s.BeginHop("usd.read")
	fc.t += 3_000_000 // 3ms fault
	s.Finish("ok")
	d.CPUYield()

	var folded strings.Builder
	if err := attr.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	lines, err := ParseFolded(strings.NewReader(folded.String()))
	if err != nil {
		t.Fatalf("WriteFolded output unparseable: %v\n%s", err, folded.String())
	}
	var total int64
	for _, l := range lines {
		total += l.Micros
	}
	if total != 5000 {
		t.Fatalf("round-tripped total = %dus, want 5000", total)
	}
	var svg strings.Builder
	if err := WriteFlameSVG(&svg, lines); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg.String(), "blocked-fault") {
		t.Fatal("SVG missing fault frame")
	}
}

func TestFlameSVGEmptyInput(t *testing.T) {
	var sb strings.Builder
	if err := WriteFlameSVG(&sb, nil); err == nil {
		t.Fatal("WriteFlameSVG accepted empty input")
	}
}
