package obs

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"strings"
)

// FoldedLine is one record of a folded-stack profile: a semicolon-separated
// frame stack and the total microseconds attributed to it.
type FoldedLine struct {
	Frames []string
	Micros int64
}

// ParseFolded reads a folded-stack profile (`frame;frame;... count` per
// line, blank and `#`-comment lines ignored) as written by
// Attribution.WriteFolded or any flamegraph-style tool.
func ParseFolded(r io.Reader) ([]FoldedLine, error) {
	var out []FoldedLine
	sc := bufio.NewScanner(r)
	for n := 1; sc.Scan(); n++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("obs: folded line %d: no count: %q", n, line)
		}
		us, err := strconv.ParseInt(line[i+1:], 10, 64)
		if err != nil || us < 0 {
			return nil, fmt.Errorf("obs: folded line %d: bad count %q", n, line[i+1:])
		}
		stack := strings.TrimSpace(line[:i])
		if stack == "" {
			return nil, fmt.Errorf("obs: folded line %d: empty stack", n)
		}
		out = append(out, FoldedLine{Frames: strings.Split(stack, ";"), Micros: us})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// flameNode is one box in the flamegraph: a frame, its own total, and its
// children in first-seen order (which keeps the rendering deterministic for
// a deterministic input).
type flameNode struct {
	name     string
	total    int64
	children []*flameNode
}

func (f *flameNode) child(name string) *flameNode {
	for _, c := range f.children {
		if c.name == name {
			return c
		}
	}
	c := &flameNode{name: name}
	f.children = append(f.children, c)
	return c
}

func (f *flameNode) depth() int {
	d := 0
	for _, c := range f.children {
		if cd := c.depth(); cd > d {
			d = cd
		}
	}
	return d + 1
}

// flameColor derives a stable warm color from the frame name alone, so the
// same hop is the same hue in every rendering, with no randomness.
func flameColor(name string) string {
	h := fnv.New32a()
	io.WriteString(h, name)
	v := h.Sum32()
	r := 205 + int(v%50)
	g := 50 + int((v>>8)%180)
	b := int((v >> 16) % 60)
	return fmt.Sprintf("#%02x%02x%02x", r, g, b)
}

const (
	flameWidth  = 1200.0
	flameRowH   = 18.0
	flameMinPx  = 0.25 // boxes narrower than this are dropped, not smeared
	flameMargin = 10.0
)

// WriteFlameSVG renders a folded-stack profile as a standalone flamegraph
// SVG: width proportional to time, one row per stack depth, colors hashed
// from frame names. The output is byte-deterministic for a given input and
// needs no external tools to produce or view.
func WriteFlameSVG(w io.Writer, lines []FoldedLine) error {
	root := &flameNode{name: "all"}
	for _, l := range lines {
		root.total += l.Micros
		n := root
		for _, f := range l.Frames {
			n = n.child(f)
			n.total += l.Micros
		}
	}
	if root.total <= 0 {
		return fmt.Errorf("obs: flamegraph input has no time")
	}
	depth := root.depth()
	height := flameRowH*float64(depth) + 2*flameMargin + flameRowH // + title row

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" font-family="monospace" font-size="11">`+"\n",
		flameWidth+2*flameMargin, height)
	fmt.Fprintf(bw, `<rect width="100%%" height="100%%" fill="#f8f8f8"/>`+"\n")
	fmt.Fprintf(bw, `<text x="%.1f" y="%.1f">sim-time attribution: %s total</text>`+"\n",
		flameMargin, flameMargin+12, microsLabel(root.total))

	// Icicle layout: root on top, children below, x proportional to time.
	var emit func(n *flameNode, x float64, level int)
	emit = func(n *flameNode, x float64, level int) {
		w := flameWidth * float64(n.total) / float64(root.total)
		if w < flameMinPx {
			return
		}
		y := flameMargin + flameRowH + flameRowH*float64(level)
		fill := "#c0c0c0"
		if level > 0 {
			fill = flameColor(n.name)
		}
		share := 100 * float64(n.total) / float64(root.total)
		fmt.Fprintf(bw, `<g><title>%s: %s (%.2f%%)</title><rect x="%.2f" y="%.2f" width="%.2f" height="%.1f" fill="%s" stroke="#f8f8f8" stroke-width="0.5"/>`,
			xmlEscape(n.name), microsLabel(n.total), share, x, y, w, flameRowH, fill)
		if label := fitLabel(n.name, w); label != "" {
			fmt.Fprintf(bw, `<text x="%.2f" y="%.2f">%s</text>`, x+3, y+13, xmlEscape(label))
		}
		fmt.Fprintf(bw, "</g>\n")
		cx := x
		for _, c := range n.children {
			emit(c, cx, level+1)
			cx += flameWidth * float64(c.total) / float64(root.total)
		}
	}
	emit(root, flameMargin, 0)
	fmt.Fprintf(bw, "</svg>\n")
	return bw.Flush()
}

// fitLabel truncates a frame name to what fits in a box of the given pixel
// width (~6.6 px per glyph at 11px monospace), or returns "" if nothing fits.
func fitLabel(name string, w float64) string {
	max := int((w - 6) / 6.6)
	if max < 2 {
		return ""
	}
	if len(name) <= max {
		return name
	}
	if max < 4 {
		return ""
	}
	return name[:max-2] + ".."
}

func microsLabel(us int64) string {
	switch {
	case us >= 1_000_000:
		return fmt.Sprintf("%.3fs", float64(us)/1e6)
	case us >= 1_000:
		return fmt.Sprintf("%.3fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dus", us)
	}
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
