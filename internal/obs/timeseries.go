package obs

import (
	"time"

	"nemesis/internal/sim"
)

// RecorderConfig sizes a time-series Recorder.
type RecorderConfig struct {
	// Interval is the sampling period (simulated time). Default 100 ms.
	Interval time.Duration
	// Cap bounds how many samples each track retains (ring-buffered;
	// older samples are overwritten). Default 4096.
	Cap int
}

// DefaultRecorderConfig returns the documented defaults.
func DefaultRecorderConfig() RecorderConfig {
	return RecorderConfig{Interval: 100 * time.Millisecond, Cap: 4096}
}

func (c *RecorderConfig) fillDefaults() {
	d := DefaultRecorderConfig()
	if c.Interval <= 0 {
		c.Interval = d.Interval
	}
	if c.Cap < 1 {
		c.Cap = d.Cap
	}
}

// Track is one recorded series: a level (gauge) or a per-second rate derived
// from a cumulative counter, sampled every Recorder interval. Tracks that
// share a Group render as one multi-series counter track in the timeline
// export ("frames" with held/guarantee/optimistic series); ungrouped tracks
// stand alone under Name.
type Track struct {
	Name   string // series name (unique within (Group, Domain))
	Group  string // optional counter-track the series belongs to
	Domain string // owning domain ("" = system)
	Unit   string // display unit ("frames", "per_s", ...)
	Rate   bool   // per-second derivative of a cumulative source

	read    func() int64
	values  []float64 // ring, allocated once at registration
	prevRaw int64
}

// Recorder periodically snapshots its registered tracks on the simulated
// clock. All rings are allocated at registration and every sample is written
// in place, so the per-tick path allocates nothing; and because ticks are
// simulator events, the recorded series of a deterministic run are
// byte-identical however the run is scheduled (serial or inside a parallel
// sweep, each cell owns its simulator).
type Recorder struct {
	reg *Registry
	s   *sim.Simulator
	cfg RecorderConfig

	tracks []*Track
	times  []sim.Time // shared sample-instant ring
	head   int        // next overwrite position once full
	n      int        // samples retained (<= cfg.Cap)
	total  int64      // samples ever taken

	timer   sim.Timer
	running bool
}

// NewRecorder builds a recorder sampling reg's world on simulator s. A nil
// registry yields a nil recorder, whose methods are all no-ops.
func NewRecorder(reg *Registry, s *sim.Simulator, cfg RecorderConfig) *Recorder {
	if reg == nil || s == nil {
		return nil
	}
	cfg.fillDefaults()
	return &Recorder{
		reg:   reg,
		s:     s,
		cfg:   cfg,
		times: make([]sim.Time, 0, cfg.Cap),
	}
}

// Config returns the recorder's (default-filled) configuration.
func (rc *Recorder) Config() RecorderConfig {
	if rc == nil {
		return RecorderConfig{}
	}
	return rc.cfg
}

// track registers a series. Registration after Start is allowed (a domain
// admitted mid-run): samples taken before the track existed read as zero.
func (rc *Recorder) track(group, name, domain, unit string, rate bool, read func() int64) *Track {
	if rc == nil || read == nil {
		return nil
	}
	t := &Track{
		Name:   name,
		Group:  group,
		Domain: domain,
		Unit:   unit,
		Rate:   rate,
		read:   read,
		values: make([]float64, len(rc.times), rc.cfg.Cap),
	}
	if rate && rc.running {
		t.prevRaw = read()
	}
	rc.tracks = append(rc.tracks, t)
	return t
}

// TrackGauge registers a level series read from fn at every sample instant.
// group may be "" for a standalone track. Safe on a nil recorder.
func (rc *Recorder) TrackGauge(group, name, domain, unit string, fn func() int64) *Track {
	return rc.track(group, name, domain, unit, false, fn)
}

// TrackRate registers a per-second rate series derived from the cumulative
// value fn returns (faults/s, bytes/s). The first sample after Start is the
// rate over the first interval.
func (rc *Recorder) TrackRate(group, name, domain, unit string, fn func() int64) *Track {
	return rc.track(group, name, domain, unit, true, fn)
}

// Tracks returns the registered tracks in registration order.
func (rc *Recorder) Tracks() []*Track {
	if rc == nil {
		return nil
	}
	return rc.tracks
}

// Start seeds the rate baselines and schedules the first sample one interval
// from now. Safe on a nil recorder.
func (rc *Recorder) Start() {
	if rc == nil || rc.running {
		return
	}
	rc.running = true
	for _, t := range rc.tracks {
		if t.Rate {
			t.prevRaw = t.read()
		}
	}
	rc.timer = rc.s.After(rc.cfg.Interval, rc.tick)
}

// Stop cancels future sampling. Retained samples stay readable.
func (rc *Recorder) Stop() {
	if rc == nil || !rc.running {
		return
	}
	rc.running = false
	rc.timer.Stop()
}

// Samples returns how many sample instants are currently retained.
func (rc *Recorder) Samples() int {
	if rc == nil {
		return 0
	}
	return rc.n
}

// Total returns how many sample instants were ever taken (including those
// the ring has dropped).
func (rc *Recorder) Total() int64 {
	if rc == nil {
		return 0
	}
	return rc.total
}

// tick takes one sample of every track. The rings are pre-sized, so this
// path performs no allocation.
func (rc *Recorder) tick() {
	if !rc.running {
		return
	}
	now := rc.s.Now()
	secs := rc.cfg.Interval.Seconds()
	if rc.n < rc.cfg.Cap {
		rc.times = append(rc.times, now)
		for _, t := range rc.tracks {
			t.values = append(t.values, t.sample(secs))
		}
		rc.n++
	} else {
		rc.times[rc.head] = now
		for _, t := range rc.tracks {
			t.values[rc.head] = t.sample(secs)
		}
		rc.head = (rc.head + 1) % rc.cfg.Cap
	}
	rc.total++
	rc.timer = rc.s.After(rc.cfg.Interval, rc.tick)
}

// sample reads the track's current value (level, or rate over secs).
func (t *Track) sample(secs float64) float64 {
	raw := t.read()
	if !t.Rate {
		return float64(raw)
	}
	v := float64(raw-t.prevRaw) / secs
	t.prevRaw = raw
	return v
}

// Times returns the retained sample instants, oldest first (a copy).
func (rc *Recorder) Times() []sim.Time {
	if rc == nil {
		return nil
	}
	out := make([]sim.Time, 0, rc.n)
	out = append(out, rc.times[rc.head:rc.n]...)
	out = append(out, rc.times[:rc.head]...)
	return out
}

// Values returns t's retained samples, oldest first (a copy), aligned with
// Times.
func (rc *Recorder) Values(t *Track) []float64 {
	if rc == nil || t == nil {
		return nil
	}
	out := make([]float64, 0, rc.n)
	out = append(out, t.values[rc.head:rc.n]...)
	out = append(out, t.values[:rc.head]...)
	return out
}
