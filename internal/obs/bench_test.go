package obs

import (
	"testing"
	"time"
)

// faultPathObsCalls replicates the exact telemetry call sequence the fault
// fast path makes, against a possibly-nil registry and cached handles.
func faultPathObsCalls(r *Registry, faults, fast *Counter, lat *Histogram) {
	sp := r.StartSpan("d1", "page")
	sp.BeginHop("dispatch")
	faults.Inc()
	sp.BeginHop("driver")
	sp.BeginHop("map")
	fast.Inc()
	lat.Observe(3 * time.Microsecond)
	sp.Finish("fast")
}

// TestDisabledFaultPathZeroAllocs is the acceptance criterion: with
// telemetry disabled (nil registry and nil cached handles) the fault fast
// path's instrumentation performs zero allocations.
func TestDisabledFaultPathZeroAllocs(t *testing.T) {
	var r *Registry
	allocs := testing.AllocsPerRun(1000, func() {
		faultPathObsCalls(r, nil, nil, nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry allocated %.1f allocs/op on the fault path", allocs)
	}
}

func BenchmarkFaultPathTelemetryDisabled(b *testing.B) {
	var r *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		faultPathObsCalls(r, nil, nil, nil)
	}
}

func BenchmarkFaultPathTelemetryEnabled(b *testing.B) {
	fc := &fakeClock{}
	r := NewRegistry(fc.now)
	faults := r.Counter("domain", "faults", "d1")
	fast := r.Counter("domain", "faults_fast", "d1")
	lat := r.Histogram("domain", "fault_latency", "d1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fc.advance(time.Microsecond)
		faultPathObsCalls(r, faults, fast, lat)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	fc := &fakeClock{}
	r := NewRegistry(fc.now)
	h := r.Histogram("usd", "service", "d1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i%1000) * time.Microsecond)
	}
}
