package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// TimelineDump is the neutral, serialisable form of one run's timeline: the
// recorder's sampled series, the retained fault spans with their hop chains,
// and the QoS/revocation audit log. It is what nemesis-paging -timeline-jsonl
// dumps (one JSON object per line) and what cmd/nemesis-timeline converts to
// a Perfetto-loadable trace; WriteTrace renders it directly.
type TimelineDump struct {
	NowNs int64   `json:"now_ns"`
	Times []int64 `json:"times_ns"` // shared sample instants
	// Machines lists the per-machine lanes of a merged cluster dump, in
	// merge order; empty for a single-machine dump. When set, WriteTrace
	// renders one Perfetto process per machine with flow arrows linking
	// client net.out hops to server-side service slices.
	Machines []string     `json:"machines,omitempty"`
	Tracks   []TrackDump  `json:"tracks"`
	Spans    []SpanDump   `json:"spans"`
	Audit    []AuditEvent `json:"audit"`
}

// TrackDump is one recorded series, values aligned with TimelineDump.Times —
// or with the track's own TimesNs when set (merged dumps, where machines
// sample on their own clocks).
type TrackDump struct {
	Group   string    `json:"group,omitempty"`
	Name    string    `json:"name"`
	Machine string    `json:"machine,omitempty"`
	Domain  string    `json:"domain,omitempty"`
	Unit    string    `json:"unit,omitempty"`
	Rate    bool      `json:"rate,omitempty"`
	TimesNs []int64   `json:"track_times_ns,omitempty"`
	Values  []float64 `json:"values"`
}

// SpanDump is one finished fault span. Machine is stamped by MergeTimelines;
// Flow carries the cross-machine flow ID linking a client fault span to the
// remote server's service span.
type SpanDump struct {
	Machine string    `json:"machine,omitempty"`
	Domain  string    `json:"domain"`
	Class   string    `json:"class"`
	Thread  string    `json:"thread,omitempty"`
	Outcome string    `json:"outcome"`
	Flow    uint64    `json:"flow,omitempty"`
	StartNs int64     `json:"start_ns"`
	EndNs   int64     `json:"end_ns"`
	Hops    []HopDump `json:"hops"`
}

// HopDump is one hop of a span.
type HopDump struct {
	Name    string `json:"name"`
	StartNs int64  `json:"start_ns"`
	EndNs   int64  `json:"end_ns"`
}

// Timeline pairs a registry with an (optional) recorder for export.
type Timeline struct {
	Reg *Registry
	Rec *Recorder
}

// Dump snapshots the timeline into its serialisable form. Span and sample
// data are copied, so the dump stays valid however the live system churns
// its rings afterwards.
func (tl Timeline) Dump() *TimelineDump {
	d := &TimelineDump{}
	if tl.Reg == nil {
		return d
	}
	d.NowNs = int64(tl.Reg.Now())
	if tl.Rec != nil {
		for _, at := range tl.Rec.Times() {
			d.Times = append(d.Times, int64(at))
		}
		for _, t := range tl.Rec.Tracks() {
			d.Tracks = append(d.Tracks, TrackDump{
				Group:  t.Group,
				Name:   t.Name,
				Domain: t.Domain,
				Unit:   t.Unit,
				Rate:   t.Rate,
				Values: tl.Rec.Values(t),
			})
		}
	}
	for _, s := range tl.Reg.Spans() {
		sd := SpanDump{
			Domain:  s.Domain,
			Class:   s.Class,
			Thread:  s.Thread,
			Outcome: s.Outcome,
			Flow:    s.Flow,
			StartNs: int64(s.Start),
			EndNs:   int64(s.End),
		}
		for _, h := range s.hops {
			sd.Hops = append(sd.Hops, HopDump{Name: h.Name, StartNs: int64(h.Start), EndNs: int64(h.End)})
		}
		d.Spans = append(d.Spans, sd)
	}
	d.Audit = append(d.Audit, tl.Reg.AuditLog()...)
	return d
}

// usec renders a microsecond timestamp with fixed three-decimal precision
// (exact at nanosecond resolution), keeping trace output byte-deterministic
// across encoders.
type usec int64 // nanoseconds

func (u usec) MarshalJSON() ([]byte, error) {
	b := strconv.AppendFloat(nil, float64(u)/1e3, 'f', 3, 64)
	return b, nil
}

// traceEvent is one Chrome trace-event object. Field order is fixed by the
// struct, map args are key-sorted by encoding/json: output is deterministic.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   usec           `json:"ts"`
	Dur  *usec          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"`
	ID   *uint64        `json:"id,omitempty"` // flow-event binding ID
	Bp   string         `json:"bp,omitempty"` // flow binding point ("e": enclosing slice)
	Args map[string]any `json:"args,omitempty"`
}

// counterKey identifies one rendered counter track.
type counterKey struct {
	domain string
	name   string
}

// WriteTrace renders the dump as Chrome trace-event JSON, loadable in
// ui.perfetto.dev: one process per domain (plus a "system" process), fault
// spans as complete-event slices with nested hop slices on the faulting
// thread's lane, recorder series as counter tracks (grouped tracks share one
// multi-series counter), and audit events as instants.
func (d *TimelineDump) WriteTrace(w io.Writer) error {
	// Merged cluster dumps render machine process lanes with flow arrows.
	if len(d.Machines) > 0 {
		return d.WriteClusterTrace(w)
	}
	// Process ids: "system" is pid 1; domains follow in first-appearance
	// order across tracks, spans and audit events.
	pids := map[string]int{"": 1}
	var order []string
	pidOf := func(domain string) int {
		if pid, ok := pids[domain]; ok {
			return pid
		}
		pid := len(pids) + 1
		pids[domain] = pid
		order = append(order, domain)
		return pid
	}
	for _, t := range d.Tracks {
		pidOf(t.Domain)
	}
	for _, s := range d.Spans {
		pidOf(s.Domain)
	}
	for _, e := range d.Audit {
		pidOf(e.Domain)
	}

	// Thread ids within each process: tid 1 is the events lane; fault
	// threads follow in first-appearance order.
	type threadKey struct {
		pid int
		nm  string
	}
	tids := map[threadKey]int{}
	nextTid := map[int]int{}
	tidOf := func(pid int, name string) int {
		k := threadKey{pid, name}
		if tid, ok := tids[k]; ok {
			return tid
		}
		nextTid[pid]++
		tid := nextTid[pid] + 1 // events lane holds tid 1
		tids[k] = tid
		return tid
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(ev traceEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	// Metadata: process names in pid order.
	meta := func(pid int, name string) error {
		if err := emit(traceEvent{Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name}}); err != nil {
			return err
		}
		return emit(traceEvent{Name: "process_sort_index", Ph: "M", Pid: pid,
			Args: map[string]any{"sort_index": pid}})
	}
	if err := meta(1, "system"); err != nil {
		return err
	}
	for _, dom := range order {
		if err := meta(pids[dom], dom); err != nil {
			return err
		}
	}

	// Counter tracks: grouped series merge into one counter; samples in
	// time order per counter, counters in track-registration order.
	var ckeys []counterKey
	groups := map[counterKey][]TrackDump{}
	for _, t := range d.Tracks {
		name := t.Group
		if name == "" {
			name = t.Name
		}
		k := counterKey{t.Domain, name}
		if _, ok := groups[k]; !ok {
			ckeys = append(ckeys, k)
		}
		groups[k] = append(groups[k], t)
	}
	for _, k := range ckeys {
		tracks := groups[k]
		pid := pids[k.domain]
		for i, at := range d.Times {
			args := make(map[string]any, len(tracks))
			for _, t := range tracks {
				if i < len(t.Values) {
					args[t.Name] = t.Values[i]
				}
			}
			if err := emit(traceEvent{Name: k.name, Ph: "C", Ts: usec(at), Pid: pid, Args: args}); err != nil {
				return err
			}
		}
	}

	// Fault spans: a slice for the whole span, then one nested slice per
	// hop, all on the faulting thread's lane.
	for _, s := range d.Spans {
		pid := pids[s.Domain]
		lane := s.Thread
		if lane == "" {
			lane = "faults"
		}
		tid := tidOf(pid, lane)
		dur := usec(s.EndNs - s.StartNs)
		if err := emit(traceEvent{
			Name: "fault:" + s.Class, Ph: "X", Ts: usec(s.StartNs), Dur: &dur,
			Pid: pid, Tid: tid, Cat: "fault",
			Args: map[string]any{"outcome": s.Outcome, "thread": s.Thread},
		}); err != nil {
			return err
		}
		for _, h := range s.Hops {
			hdur := usec(h.EndNs - h.StartNs)
			if err := emit(traceEvent{
				Name: h.Name, Ph: "X", Ts: usec(h.StartNs), Dur: &hdur,
				Pid: pid, Tid: tid, Cat: "hop",
			}); err != nil {
				return err
			}
		}
	}

	// Audit log: instant events on the owning domain's events lane
	// (process-scoped), system events global.
	for _, e := range d.Audit {
		pid := pids[e.Domain]
		scope := "p"
		if e.Domain == "" {
			scope = "g"
		}
		args := map[string]any{}
		if e.Other != "" {
			args["other"] = e.Other
		}
		if e.Frames != 0 {
			args["frames"] = e.Frames
		}
		if e.Detail != "" {
			args["detail"] = e.Detail
		}
		if err := emit(traceEvent{
			Name: string(e.Kind), Ph: "i", Ts: usec(e.At), Pid: pid, Tid: 1,
			S: scope, Cat: "audit", Args: args,
		}); err != nil {
			return err
		}
	}

	// Thread-name metadata last: tids are known only after span emission.
	if err := emit(traceEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: 1,
		Args: map[string]any{"name": "events"}}); err != nil {
		return err
	}
	for _, dom := range order {
		pid := pids[dom]
		if err := emit(traceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: 1,
			Args: map[string]any{"name": "events"}}); err != nil {
			return err
		}
	}
	// Deterministic order for span lanes: re-walk spans, emitting each
	// (pid, tid) name once.
	named := map[threadKey]bool{}
	for _, s := range d.Spans {
		pid := pids[s.Domain]
		lane := s.Thread
		if lane == "" {
			lane = "faults"
		}
		k := threadKey{pid, lane}
		if named[k] {
			continue
		}
		named[k] = true
		if err := emit(traceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tids[k],
			Args: map[string]any{"name": lane}}); err != nil {
			return err
		}
	}

	if _, err := bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// jsonlLine is the tagged union of the JSONL dump.
type jsonlLine struct {
	Type string `json:"type"`

	// meta
	NowNs    int64    `json:"now_ns,omitempty"`
	Machines []string `json:"machines,omitempty"`
	// samples
	TimesNs []int64 `json:"times_ns,omitempty"`
	// track
	*TrackDump `json:",omitempty"`
	// span
	Span *SpanDump `json:"span,omitempty"`
	// audit
	Audit *AuditEvent `json:"audit,omitempty"`
}

// WriteJSONL renders the dump as the compact line format cmd/nemesis-timeline
// consumes: a meta line, a samples line, then one line per track, span and
// audit event.
func (d *TimelineDump) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonlLine{Type: "meta", NowNs: d.NowNs, Machines: d.Machines}); err != nil {
		return err
	}
	if err := enc.Encode(jsonlLine{Type: "samples", TimesNs: d.Times}); err != nil {
		return err
	}
	for i := range d.Tracks {
		if err := enc.Encode(jsonlLine{Type: "track", TrackDump: &d.Tracks[i]}); err != nil {
			return err
		}
	}
	for i := range d.Spans {
		if err := enc.Encode(jsonlLine{Type: "span", Span: &d.Spans[i]}); err != nil {
			return err
		}
	}
	for i := range d.Audit {
		if err := enc.Encode(jsonlLine{Type: "audit", Audit: &d.Audit[i]}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseTimelineJSONL reads the JSONL dump format back into a TimelineDump.
func ParseTimelineJSONL(r io.Reader) (*TimelineDump, error) {
	d := &TimelineDump{}
	dec := json.NewDecoder(r)
	for lineNo := 1; ; lineNo++ {
		var ln jsonlLine
		if err := dec.Decode(&ln); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("timeline jsonl line %d: %w", lineNo, err)
		}
		switch ln.Type {
		case "meta":
			d.NowNs = ln.NowNs
			d.Machines = ln.Machines
		case "samples":
			d.Times = ln.TimesNs
		case "track":
			if ln.TrackDump == nil {
				return nil, fmt.Errorf("timeline jsonl line %d: track line without track fields", lineNo)
			}
			d.Tracks = append(d.Tracks, *ln.TrackDump)
		case "span":
			if ln.Span == nil {
				return nil, fmt.Errorf("timeline jsonl line %d: span line without span object", lineNo)
			}
			d.Spans = append(d.Spans, *ln.Span)
		case "audit":
			if ln.Audit == nil {
				return nil, fmt.Errorf("timeline jsonl line %d: audit line without audit object", lineNo)
			}
			d.Audit = append(d.Audit, *ln.Audit)
		default:
			return nil, fmt.Errorf("timeline jsonl line %d: unknown type %q", lineNo, ln.Type)
		}
	}
	return d, nil
}

// ValidateTrace checks that r holds minimally well-formed trace-event JSON:
// a traceEvents array whose entries carry name, a known phase, pid, and (for
// non-metadata phases) a numeric ts; complete events must carry dur. This is
// the schema gate CI runs on exported timelines.
func ValidateTrace(r io.Reader) error {
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("trace: traceEvents missing or empty")
	}
	validPh := map[string]bool{"M": true, "X": true, "C": true, "i": true, "I": true, "B": true, "E": true,
		"s": true, "t": true, "f": true}
	for i, ev := range doc.TraceEvents {
		if _, ok := ev["name"].(string); !ok {
			return fmt.Errorf("trace: event %d has no name", i)
		}
		ph, ok := ev["ph"].(string)
		if !ok || !validPh[ph] {
			return fmt.Errorf("trace: event %d has bad phase %v", i, ev["ph"])
		}
		if _, ok := ev["pid"].(float64); !ok {
			return fmt.Errorf("trace: event %d has no pid", i)
		}
		if ph == "M" {
			continue
		}
		if _, ok := ev["ts"].(float64); !ok {
			return fmt.Errorf("trace: event %d (%s) has no ts", i, ph)
		}
		if ph == "X" {
			if _, ok := ev["dur"].(float64); !ok {
				return fmt.Errorf("trace: event %d (X) has no dur", i)
			}
		}
		if ph == "s" || ph == "t" || ph == "f" {
			if _, ok := ev["id"]; !ok {
				return fmt.Errorf("trace: flow event %d (%s) has no id", i, ph)
			}
		}
	}
	return nil
}
