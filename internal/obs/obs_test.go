package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"nemesis/internal/sim"
)

// fakeClock is a manually advanced clock.
type fakeClock struct{ t sim.Time }

func (f *fakeClock) now() sim.Time           { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func newTestRegistry() (*Registry, *fakeClock) {
	fc := &fakeClock{}
	return NewRegistry(fc.now), fc
}

func TestCounterGaugeBasics(t *testing.T) {
	r, fc := newTestRegistry()
	c := r.Counter("domain", "faults", "d1")
	c.Inc()
	fc.advance(time.Millisecond)
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d", c.Value())
	}
	if c.Updated() != sim.Time(time.Millisecond) {
		t.Fatalf("updated = %v", c.Updated())
	}
	// Same key returns the same counter.
	if r.Counter("domain", "faults", "d1") != c {
		t.Fatal("counter not cached")
	}

	g := r.Gauge("mem", "free", "")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d", g.Value())
	}
}

func TestHistogramStatsAndQuantiles(t *testing.T) {
	r, _ := newTestRegistry()
	h := r.Histogram("usd", "service", "d1")
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != time.Millisecond || h.Max() != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if h.Mean() != 50500*time.Microsecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	p50 := h.Quantile(0.50)
	if p50 < 30*time.Millisecond || p50 > 70*time.Millisecond {
		t.Fatalf("p50 = %v", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 64*time.Millisecond || p99 > 100*time.Millisecond {
		t.Fatalf("p99 = %v", p99)
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Fatal("quantile extremes not clamped to min/max")
	}
	// Negative samples are clamped to zero, not dropped.
	h.Observe(-time.Second)
	if h.Count() != 101 || h.Min() != 0 {
		t.Fatalf("negative sample: count=%d min=%v", h.Count(), h.Min())
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	r, _ := newTestRegistry()
	h := r.Histogram("x", "y", "")
	huge := 500 * time.Second // beyond the last bucket bound
	h.Observe(huge)
	if h.Max() != huge || h.Quantile(0.5) != huge {
		t.Fatalf("overflow: max=%v p50=%v", h.Max(), h.Quantile(0.5))
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("a", "b", "c").Inc()
	r.Gauge("a", "b", "c").Set(1)
	r.Histogram("a", "b", "c").Observe(time.Second)
	sp := r.StartSpan("d", "page")
	sp.BeginHop("dispatch")
	sp.SplitHop(0, "x")
	sp.SetThread("t")
	sp.EndHop()
	sp.Finish("fast")
	if sp != nil {
		t.Fatal("nil registry produced a span")
	}
	if r.Spans() != nil || r.HopSummaries() != nil || r.Flags() != nil {
		t.Fatal("nil registry returned data")
	}
	if err := r.WriteMetricsTSV(nil); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteSpansTSV(nil); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(nil); err != nil {
		t.Fatal(err)
	}
	var m *CrosstalkMonitor
	m.Start()
	m.Stop()
	if m.Flags() != nil || m.Ticks() != 0 {
		t.Fatal("nil monitor returned data")
	}
}

func TestSpanHopsAreContiguous(t *testing.T) {
	r, fc := newTestRegistry()
	sp := r.StartSpan("d1", "page")
	sp.SetThread("t0")
	sp.BeginHop("dispatch")
	fc.advance(2 * time.Microsecond)
	sp.BeginHop("mmentry")
	fc.advance(10 * time.Microsecond)
	sp.BeginHop("driver")
	fc.advance(time.Millisecond)
	// Retroactive split: the I/O started 600µs ago.
	sp.SplitHop(fc.t.Add(-600*time.Microsecond), "usd.read")
	sp.BeginHop("map")
	fc.advance(5 * time.Microsecond)
	sp.Finish("worker")

	if sp.Duration() != sp.HopSum() {
		t.Fatalf("hop sum %v != duration %v", sp.HopSum(), sp.Duration())
	}
	hops := sp.Hops()
	if len(hops) != 5 {
		t.Fatalf("hops = %d", len(hops))
	}
	for i := 1; i < len(hops); i++ {
		if hops[i].Start != hops[i-1].End {
			t.Fatalf("gap between hop %d and %d: %v != %v", i-1, i, hops[i-1].End, hops[i].Start)
		}
	}
	if hops[0].Start != sp.Start || hops[len(hops)-1].End != sp.End {
		t.Fatal("hop chain does not cover the span")
	}
	if hops[3].Name != "usd.read" || hops[3].Duration() != 600*time.Microsecond {
		t.Fatalf("split hop = %+v", hops[3])
	}
	// Double finish is ignored.
	end := sp.End
	fc.advance(time.Second)
	sp.Finish("again")
	if sp.End != end || sp.Outcome != "worker" {
		t.Fatal("double Finish mutated span")
	}
}

func TestSpanRecordingAndRing(t *testing.T) {
	r, fc := newTestRegistry()
	r.SetSpanCap(3)
	for i := 0; i < 5; i++ {
		sp := r.StartSpan("d1", "page")
		sp.BeginHop("dispatch")
		fc.advance(time.Duration(i+1) * time.Millisecond)
		sp.Finish("fast")
	}
	if r.SpanTotal() != 5 {
		t.Fatalf("total = %d", r.SpanTotal())
	}
	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("retained = %d", len(spans))
	}
	// Oldest-first: durations 3,4,5 ms.
	for i, want := range []time.Duration{3, 4, 5} {
		if spans[i].Duration() != want*time.Millisecond {
			t.Fatalf("span %d duration = %v", i, spans[i].Duration())
		}
	}
	// Aggregates: e2e histogram and hop histogram.
	if h := r.Histogram("span", "e2e.page", "d1"); h.Count() != 5 {
		t.Fatalf("e2e count = %d", h.Count())
	}
	sums := r.HopSummaries()
	if len(sums) != 1 || sums[0].Hop != "dispatch" || sums[0].Count != 5 {
		t.Fatalf("hop summaries = %+v", sums)
	}
}

func TestExports(t *testing.T) {
	r, fc := newTestRegistry()
	r.Counter("domain", "faults", "d1").Add(7)
	r.Gauge("mem", "free", "").Set(42)
	r.Histogram("usd", "service", "d1").Observe(3 * time.Millisecond)
	sp := r.StartSpan("d1", "page")
	sp.BeginHop("dispatch")
	fc.advance(time.Millisecond)
	sp.Finish("fast")
	r.addFlag(Flag{At: fc.t, Window: time.Second, Victim: "d2", Suspect: "d1"})

	var tsv strings.Builder
	if err := r.WriteMetricsTSV(&tsv); err != nil {
		t.Fatal(err)
	}
	out := tsv.String()
	for _, want := range []string{"counter\tdomain\tfaults\td1\t7", "gauge\tmem\tfree\t\t42", "histogram\tusd\tservice\td1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics TSV missing %q:\n%s", want, out)
		}
	}

	var stsv strings.Builder
	if err := r.WriteSpansTSV(&stsv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stsv.String(), "d1\tpage\tdispatch\t1") {
		t.Fatalf("spans TSV:\n%s", stsv.String())
	}

	var ftsv strings.Builder
	if err := r.WriteFlagsTSV(&ftsv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ftsv.String(), "d2\td1") {
		t.Fatalf("flags TSV:\n%s", ftsv.String())
	}

	var jbuf strings.Builder
	if err := r.WriteJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(jbuf.String()), &snap); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	for _, k := range []string{"metrics", "fault_hops", "recent_spans", "crosstalk_flags"} {
		if snap[k] == nil {
			t.Fatalf("JSON missing %q", k)
		}
	}
}

// crosstalkHarness drives a monitor from a scripted set of per-window rates.
func TestCrosstalkMonitorFlagsDegradedWindow(t *testing.T) {
	s := sim.New(1)
	reg := NewRegistry(s.Now)

	// Cumulative counters for two domains. d1 is steady; in the attack
	// window d2's faults surge while d1's progress collapses.
	var tick int
	var d1 DomainSample = DomainSample{Name: "d1"}
	var d2 DomainSample = DomainSample{Name: "d2"}
	sample := func() ([]DomainSample, Pressure) {
		tick++
		switch {
		case tick <= 6: // warm-up + baseline: both steady
			d1.Progress += 1000
			d1.Faults += 10
			d2.Progress += 500
			d2.Faults += 20
		case tick == 7: // attack window
			d1.Progress += 100 // collapsed to 10% of baseline
			d1.Faults += 10
			d2.Progress += 500
			d2.Faults += 200 // 10× surge
		default: // recovery
			d1.Progress += 1000
			d1.Faults += 10
			d2.Progress += 500
			d2.Faults += 20
		}
		free := 100
		if tick == 7 {
			free = 2
		}
		return []DomainSample{d1, d2}, Pressure{FreeFrames: free}
	}

	m := NewCrosstalkMonitor(reg, s, CrosstalkConfig{Period: time.Second, Baseline: 3}, sample)
	m.Start()
	s.RunFor(10 * time.Second)
	m.Stop()

	flags := m.Flags()
	if len(flags) != 1 {
		t.Fatalf("flags = %d (%+v)", len(flags), flags)
	}
	f := flags[0]
	if f.Victim != "d1" || f.Suspect != "d2" {
		t.Fatalf("flag = %+v", f)
	}
	if f.FreeFrames != 2 {
		t.Fatalf("free frames = %d", f.FreeFrames)
	}
	if f.VictimRate >= f.VictimBaseline || f.SuspectRate <= f.SuspectBaseline {
		t.Fatalf("rates not consistent: %+v", f)
	}
	if m.Ticks() < 9 {
		t.Fatalf("ticks = %d", m.Ticks())
	}
	// Gauges were published.
	if reg.Gauge("crosstalk", "fault_rate", "d2").Value() == 0 {
		t.Fatal("fault_rate gauge never set")
	}
	// Stop really stops.
	n := m.Ticks()
	s.RunFor(5 * time.Second)
	if m.Ticks() != n {
		t.Fatal("monitor ticked after Stop")
	}
}

func TestCrosstalkSteadyStateNoFlags(t *testing.T) {
	s := sim.New(1)
	reg := NewRegistry(s.Now)
	d := DomainSample{Name: "only"}
	sample := func() ([]DomainSample, Pressure) {
		d.Progress += 100
		d.Faults += 5
		return []DomainSample{d}, Pressure{FreeFrames: 50}
	}
	m := NewCrosstalkMonitor(reg, s, CrosstalkConfig{Period: 500 * time.Millisecond}, sample)
	m.Start()
	s.RunFor(8 * time.Second)
	if len(m.Flags()) != 0 {
		t.Fatalf("steady state flagged: %+v", m.Flags())
	}
}

// TestPooledSpansPreserveHopsUnderChurn drives far more spans than the ring
// retains, with varying hop counts, and checks that span recycling (the
// free-list fed by ring eviction) never truncates or leaks hop breakdowns: a
// recycled span that carried five hops must not smuggle them into its next
// one-hop incarnation, and the per-hop aggregates must count every finished
// span exactly once.
func TestPooledSpansPreserveHopsUnderChurn(t *testing.T) {
	r, fc := newTestRegistry()
	hopNames := []string{"dispatch", "mmentry", "driver", "usd.read", "map"}
	const total = 3*DefaultSpanCap + 17
	wantPerHop := make(map[string]int64)
	for i := 0; i < total; i++ {
		nHops := i%len(hopNames) + 1
		sp := r.StartSpan("d1", "page")
		for h := 0; h < nHops; h++ {
			sp.BeginHop(hopNames[h])
			fc.advance(time.Microsecond)
			wantPerHop[hopNames[h]]++
		}
		sp.Finish("worker")
		if got := len(sp.Hops()); got != nHops {
			t.Fatalf("span %d finished with %d hops, want %d (recycled span leaked hops)", i, got, nHops)
		}
	}
	if r.SpanTotal() != total {
		t.Fatalf("SpanTotal = %d, want %d", r.SpanTotal(), total)
	}
	spans := r.Spans()
	if len(spans) != DefaultSpanCap {
		t.Fatalf("retained %d spans, want %d", len(spans), DefaultSpanCap)
	}
	// Oldest retained span is index total-DefaultSpanCap; its hop count and
	// names must match what it was finished with, hop chain contiguous.
	for j, sp := range spans {
		i := total - DefaultSpanCap + j
		nHops := i%len(hopNames) + 1
		hops := sp.Hops()
		if len(hops) != nHops {
			t.Fatalf("retained span %d has %d hops, want %d", i, len(hops), nHops)
		}
		for h, hop := range hops {
			if hop.Name != hopNames[h] {
				t.Fatalf("retained span %d hop %d = %q, want %q", i, h, hop.Name, hopNames[h])
			}
		}
		if sp.HopSum() != sp.Duration() {
			t.Fatalf("retained span %d: hop sum %v != duration %v", i, sp.HopSum(), sp.Duration())
		}
	}
	// Aggregates saw every span, ring eviction notwithstanding.
	sums := r.HopSummaries()
	if len(sums) != len(hopNames) {
		t.Fatalf("hop summaries = %d, want %d", len(sums), len(hopNames))
	}
	for _, hs := range sums {
		if hs.Count != wantPerHop[hs.Hop] {
			t.Fatalf("hop %q count = %d, want %d", hs.Hop, hs.Count, wantPerHop[hs.Hop])
		}
	}
	// The TSV render carries the full breakdown.
	var buf strings.Builder
	if err := r.WriteSpansTSV(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range hopNames {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("WriteSpansTSV missing hop %q:\n%s", name, buf.String())
		}
	}
}
