package obs

import (
	"fmt"
	"io"
	"sort"
	"time"

	"nemesis/internal/sim"
)

// DomainSample is one domain's cumulative activity, read by the crosstalk
// monitor each period. All fields are running totals; the monitor differences
// successive samples to obtain per-window rates.
type DomainSample struct {
	Name        string
	Faults      int64 // cumulative faults dispatched
	Progress    int64 // cumulative useful-work units (e.g. accesses completed)
	Revocations int64 // cumulative frames revoked from the domain
	// Order is the domain's stable processing rank (registration order).
	// Only the incremental monitor uses it — full scans are already
	// ordered — so full-scan sources may leave it zero.
	Order int64
}

// Pressure is the system-wide memory pressure at a sampling instant.
type Pressure struct {
	FreeFrames int
}

// CrosstalkConfig tunes the monitor.
type CrosstalkConfig struct {
	// Period between samples (simulated time).
	Period time.Duration
	// Baseline is how many prior windows form the trailing-mean baseline.
	Baseline int
	// DegradeFrac: a domain is a victim when its progress rate falls below
	// DegradeFrac × its baseline progress rate.
	DegradeFrac float64
	// SurgeFrac: a domain is a suspect when its fault rate exceeds
	// SurgeFrac × its baseline fault rate.
	SurgeFrac float64
}

// DefaultCrosstalkConfig returns the defaults: 1 s windows, a 4-window
// baseline, victim below 70% of baseline, suspect above 150% of baseline.
func DefaultCrosstalkConfig() CrosstalkConfig {
	return CrosstalkConfig{
		Period:      time.Second,
		Baseline:    4,
		DegradeFrac: 0.7,
		SurgeFrac:   1.5,
	}
}

func (c *CrosstalkConfig) fillDefaults() {
	d := DefaultCrosstalkConfig()
	if c.Period <= 0 {
		c.Period = d.Period
	}
	if c.Baseline < 1 {
		c.Baseline = d.Baseline
	}
	if c.DegradeFrac <= 0 {
		c.DegradeFrac = d.DegradeFrac
	}
	if c.SurgeFrac <= 0 {
		c.SurgeFrac = d.SurgeFrac
	}
}

// Flag records one detected crosstalk window: while the suspect domain's
// fault rate surged, the victim domain's progress fell below its baseline.
// In a correctly firewalled self-paging system flags should stay rare even
// under memory pressure; a burst of them is the live counterpart of a
// trace.Log.ValidateGuarantees violation.
type Flag struct {
	At              sim.Time      `json:"at_ns"`
	Window          time.Duration `json:"window_ns"`
	Victim          string        `json:"victim"`
	Suspect         string        `json:"suspect"`
	VictimRate      float64       `json:"victim_progress_per_s"`
	VictimBaseline  float64       `json:"victim_baseline_per_s"`
	SuspectRate     float64       `json:"suspect_faults_per_s"`
	SuspectBaseline float64       `json:"suspect_baseline_per_s"`
	FreeFrames      int           `json:"free_frames"`
}

func (r *Registry) addFlag(f Flag) {
	if r == nil {
		return
	}
	r.flags = append(r.flags, f)
	r.Audit(AuditCrosstalk, f.Victim, f.Suspect, 0,
		fmt.Sprintf("victim %.1f/s (base %.1f/s), suspect faults %.1f/s (base %.1f/s)",
			f.VictimRate, f.VictimBaseline, f.SuspectRate, f.SuspectBaseline))
}

// Flags returns all crosstalk flags recorded so far.
func (r *Registry) Flags() []Flag {
	if r == nil {
		return nil
	}
	return r.flags
}

// WriteFlagsTSV renders the crosstalk flags as TSV.
func (r *Registry) WriteFlagsTSV(w io.Writer) error {
	if r == nil {
		return nil
	}
	if _, err := fmt.Fprintln(w, "at_s\twindow_ms\tvictim\tsuspect\tvictim_per_s\tvictim_base_per_s\tsuspect_faults_per_s\tsuspect_base_per_s\tfree_frames"); err != nil {
		return err
	}
	for _, f := range r.flags {
		if _, err := fmt.Fprintf(w, "%.3f\t%.1f\t%s\t%s\t%.2f\t%.2f\t%.2f\t%.2f\t%d\n",
			f.At.Seconds(), float64(f.Window)/1e6, escapeTSV(f.Victim), escapeTSV(f.Suspect),
			f.VictimRate, f.VictimBaseline, f.SuspectRate, f.SuspectBaseline, f.FreeFrames); err != nil {
			return err
		}
	}
	return nil
}

// domainHistory is the monitor's per-domain trailing state.
type domainHistory struct {
	prev     DomainSample
	havePrev bool
	progress []float64 // recent per-window progress rates (per second)
	faults   []float64 // recent per-window fault rates (per second)
	order    int64     // processing rank (incremental mode)
	lastTick int64     // tick at which this domain was last processed
}

// hot reports whether any baseline window still carries activity; a cold
// (all-zero) history can neither make the domain a victim (zero progress
// baseline) nor a suspect (zero fault rate and baseline), so cold domains
// are safe to skip entirely.
func (h *domainHistory) hot() bool {
	for _, x := range h.progress {
		if x != 0 {
			return true
		}
	}
	for _, x := range h.faults {
		if x != 0 {
			return true
		}
	}
	return false
}

// CrosstalkMonitor periodically samples per-domain activity and global frame
// pressure, publishes the rates as gauges, and flags windows in which one
// domain's fault surge coincides with another's progress collapse. All
// scheduling is on the simulator, so monitored runs stay deterministic.
type CrosstalkMonitor struct {
	reg *Registry
	s   *sim.Simulator
	cfg CrosstalkConfig

	// Sample returns the cumulative per-domain activity (in a stable,
	// deterministic order) and the current memory pressure. In incremental
	// mode it returns only the domains that changed since the last call.
	sample func() ([]DomainSample, Pressure)

	// incremental: sample() reports changed domains only; the monitor keeps
	// recently-active ("cooling") domains in the window itself until their
	// baselines decay to zero, and zero-pads the history of a domain that
	// reappears after idle windows. See NewIncrementalCrosstalkMonitor.
	incremental bool
	cooling     map[string]bool

	hist    map[string]*domainHistory
	timer   sim.Timer
	running bool
	ticks   int64
	lastAt  sim.Time // instant of the last completed sample
}

// NewCrosstalkMonitor builds a monitor; call Start to begin sampling. The
// sample function must return domains in a stable order.
func NewCrosstalkMonitor(reg *Registry, s *sim.Simulator, cfg CrosstalkConfig, sample func() ([]DomainSample, Pressure)) *CrosstalkMonitor {
	cfg.fillDefaults()
	return &CrosstalkMonitor{
		reg:    reg,
		s:      s,
		cfg:    cfg,
		sample: sample,
		hist:   make(map[string]*domainHistory),
	}
}

// NewIncrementalCrosstalkMonitor builds a monitor whose sample function
// returns only the domains whose counters moved since the previous call
// (plus newly registered domains, which seed their baselines). Per window
// the monitor then works proportional to the number of *active* domains,
// not admitted domains — the property that lets monitoring scale to
// thousands of mostly-idle domains.
//
// Detection is equivalent to the full scan: a domain that stops appearing
// keeps being processed with zero rates ("cooling") until its baseline
// windows are all zero, at which point it can no longer be a victim (zero
// progress baseline) or a suspect (zero fault rate and baseline) and is
// dropped; if it reactivates, its history is first zero-padded with the
// windows it missed (capped at the baseline depth), restoring exactly the
// state a full scan would hold. The only observable difference is that
// rate gauges are not created for domains that were never active.
//
// Sample order must be stable: DomainSample.Order carries each domain's
// registration rank, and the monitor processes the union of changed and
// cooling domains sorted by it, preserving the full scan's tie-breaks.
func NewIncrementalCrosstalkMonitor(reg *Registry, s *sim.Simulator, cfg CrosstalkConfig, sample func() ([]DomainSample, Pressure)) *CrosstalkMonitor {
	m := NewCrosstalkMonitor(reg, s, cfg, sample)
	m.incremental = true
	m.cooling = make(map[string]bool)
	return m
}

// Start schedules the first sampling tick one period from now. Safe on a
// nil receiver (telemetry disabled).
func (m *CrosstalkMonitor) Start() {
	if m == nil || m.running || m.reg == nil || m.s == nil || m.sample == nil {
		return
	}
	m.running = true
	m.lastAt = m.s.Now()
	m.timer = m.s.After(m.cfg.Period, m.tick)
}

// Stop cancels future sampling and flushes the trailing partial window, so
// activity between the last full tick and run end is still rated and can
// still raise flags (previously it was silently dropped).
func (m *CrosstalkMonitor) Stop() {
	if m == nil || !m.running {
		return
	}
	m.running = false
	m.timer.Stop()
	m.flush()
}

// flush processes the partial window between the last completed sample and
// now. A zero-length window is skipped (nothing elapsed to rate).
func (m *CrosstalkMonitor) flush() {
	elapsed := m.s.Now().Sub(m.lastAt)
	if elapsed <= 0 {
		return
	}
	m.sampleWindow(elapsed.Seconds())
}

// Ticks returns how many sampling windows have completed.
func (m *CrosstalkMonitor) Ticks() int64 {
	if m == nil {
		return 0
	}
	return m.ticks
}

// Flags returns the flags recorded so far (convenience for tests).
func (m *CrosstalkMonitor) Flags() []Flag {
	if m == nil {
		return nil
	}
	return m.reg.Flags()
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// windowRates holds one domain's rates for the just-closed window.
type windowRates struct {
	name         string
	progressRate float64
	faultRate    float64
	progressBase float64
	faultBase    float64
	baselineOK   bool // enough history to judge
}

func (m *CrosstalkMonitor) tick() {
	if !m.running {
		return
	}
	m.sampleWindow(m.cfg.Period.Seconds())
	if m.running {
		m.timer = m.s.After(m.cfg.Period, m.tick)
	}
}

// withCooling merges the cooling set into the changed set — synthesizing a
// no-change sample from each cooling domain's previous totals — and restores
// the stable processing order.
func (m *CrosstalkMonitor) withCooling(changed []DomainSample) []DomainSample {
	seen := make(map[string]bool, len(changed))
	for i := range changed {
		seen[changed[i].Name] = true
	}
	for name := range m.cooling {
		if seen[name] {
			continue
		}
		h := m.hist[name]
		s := h.prev
		s.Order = h.order
		changed = append(changed, s)
	}
	sort.Slice(changed, func(i, j int) bool { return changed[i].Order < changed[j].Order })
	return changed
}

// sampleWindow closes one sampling window of the given length (normally a
// full period; the trailing flush passes the partial remainder).
func (m *CrosstalkMonitor) sampleWindow(secs float64) {
	samples, pressure := m.sample()
	m.ticks++
	m.lastAt = m.s.Now()
	if m.incremental {
		samples = m.withCooling(samples)
	}

	m.reg.Gauge("crosstalk", "free_frames", "").Set(int64(pressure.FreeFrames))

	rates := make([]windowRates, 0, len(samples))
	for _, s := range samples {
		h, ok := m.hist[s.Name]
		if !ok {
			h = &domainHistory{order: s.Order}
			m.hist[s.Name] = h
		}
		if !h.havePrev {
			h.prev = s
			h.havePrev = true
			h.lastTick = m.ticks
			continue
		}
		// Zero-pad the windows this domain sat out (a full scan would have
		// appended a zero rate for each); more than Baseline of them is
		// indistinguishable from exactly Baseline.
		if missed := m.ticks - 1 - h.lastTick; missed > 0 {
			pad := int(missed)
			if pad > m.cfg.Baseline {
				pad = m.cfg.Baseline
			}
			for i := 0; i < pad; i++ {
				h.progress = append(h.progress, 0)
				h.faults = append(h.faults, 0)
			}
			if len(h.progress) > m.cfg.Baseline {
				h.progress = h.progress[len(h.progress)-m.cfg.Baseline:]
				h.faults = h.faults[len(h.faults)-m.cfg.Baseline:]
			}
		}
		h.lastTick = m.ticks
		pr := float64(s.Progress-h.prev.Progress) / secs
		fr := float64(s.Faults-h.prev.Faults) / secs
		rv := s.Revocations - h.prev.Revocations
		h.prev = s

		m.reg.Gauge("crosstalk", "progress_rate", s.Name).Set(int64(pr))
		m.reg.Gauge("crosstalk", "fault_rate", s.Name).Set(int64(fr))
		if rv > 0 {
			m.reg.Counter("crosstalk", "revocations_seen", s.Name).Add(rv)
		}

		rates = append(rates, windowRates{
			name:         s.Name,
			progressRate: pr,
			faultRate:    fr,
			progressBase: mean(h.progress),
			faultBase:    mean(h.faults),
			baselineOK:   len(h.progress) >= m.cfg.Baseline,
		})

		h.progress = append(h.progress, pr)
		h.faults = append(h.faults, fr)
		if len(h.progress) > m.cfg.Baseline {
			h.progress = h.progress[1:]
			h.faults = h.faults[1:]
		}
		// A domain with any activity left in its baseline must keep being
		// processed next window even if it goes quiet; once the baseline is
		// all zeros it can be dropped until it reactivates.
		if m.incremental {
			if h.hot() {
				m.cooling[s.Name] = true
			} else {
				delete(m.cooling, s.Name)
			}
		}
	}

	// Victims: progress collapsed below DegradeFrac of baseline.
	for _, v := range rates {
		if !v.baselineOK || v.progressBase <= 0 {
			continue
		}
		if v.progressRate >= m.cfg.DegradeFrac*v.progressBase {
			continue
		}
		// Suspect: the other domain with the strongest fault surge.
		best := -1
		bestRatio := 0.0
		for i, s := range rates {
			if s.name == v.name || !s.baselineOK {
				continue
			}
			var ratio float64
			switch {
			case s.faultBase > 0:
				ratio = s.faultRate / s.faultBase
			case s.faultRate > 0:
				ratio = m.cfg.SurgeFrac + 1 // surge from zero baseline
			default:
				continue
			}
			if ratio > m.cfg.SurgeFrac && ratio > bestRatio {
				best = i
				bestRatio = ratio
			}
		}
		if best < 0 {
			continue
		}
		s := rates[best]
		m.reg.addFlag(Flag{
			At:              m.reg.Now(),
			Window:          time.Duration(secs * float64(time.Second)),
			Victim:          v.name,
			Suspect:         s.name,
			VictimRate:      v.progressRate,
			VictimBaseline:  v.progressBase,
			SuspectRate:     s.faultRate,
			SuspectBaseline: s.faultBase,
			FreeFrames:      pressure.FreeFrames,
		})
		m.reg.Counter("crosstalk", "flags", v.name).Inc()
	}
}
