package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// HistSnapshot is a histogram's serialisable, mergeable state: exact count,
// sum, min and max plus the fixed exponential bucket counts (trailing zero
// buckets trimmed for compactness). Two snapshots taken on the shared
// histBuckets layout merge exactly — merging is commutative and associative,
// which is what lets per-machine cluster rollups be folded in any order.
type HistSnapshot struct {
	Count   int64   `json:"count"`
	SumNs   int64   `json:"sum_ns"`
	MinNs   int64   `json:"min_ns"`
	MaxNs   int64   `json:"max_ns"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// Snapshot captures the histogram's current state. Safe on a nil receiver
// (returns the zero snapshot).
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil || h.count == 0 {
		return HistSnapshot{}
	}
	last := 0
	for i, c := range h.counts {
		if c != 0 {
			last = i + 1
		}
	}
	return HistSnapshot{
		Count:   h.count,
		SumNs:   int64(h.sum),
		MinNs:   int64(h.min),
		MaxNs:   int64(h.max),
		Buckets: append([]int64(nil), h.counts[:last]...),
	}
}

// Merge folds b into a. Empty snapshots are identities, so any merge order
// over a set of snapshots yields identical bytes.
func (a *HistSnapshot) Merge(b HistSnapshot) {
	if b.Count == 0 {
		return
	}
	if a.Count == 0 {
		*a = b
		a.Buckets = append([]int64(nil), b.Buckets...)
		return
	}
	if b.MinNs < a.MinNs {
		a.MinNs = b.MinNs
	}
	if b.MaxNs > a.MaxNs {
		a.MaxNs = b.MaxNs
	}
	a.Count += b.Count
	a.SumNs += b.SumNs
	if len(b.Buckets) > len(a.Buckets) {
		grown := make([]int64, len(b.Buckets))
		copy(grown, a.Buckets)
		a.Buckets = grown
	}
	for i, c := range b.Buckets {
		a.Buckets[i] += c
	}
}

// Quantile mirrors Histogram.Quantile on the snapshot: bucket-interpolated,
// clamped to the exact min/max.
func (h HistSnapshot) Quantile(q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	if q <= 0 {
		return time.Duration(h.MinNs)
	}
	if q >= 1 {
		return time.Duration(h.MaxNs)
	}
	target := int64(q*float64(h.Count) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.Buckets {
		cum += c
		if cum < target {
			continue
		}
		var lo, hi time.Duration
		if i == 0 {
			lo = 0
		} else {
			lo = histBuckets[i-1]
		}
		if i < len(histBuckets) {
			hi = histBuckets[i]
		} else {
			hi = time.Duration(h.MaxNs)
		}
		rankInBucket := target - (cum - c)
		est := lo + time.Duration(float64(hi-lo)*float64(rankInBucket)/float64(c))
		if est < time.Duration(h.MinNs) {
			est = time.Duration(h.MinNs)
		}
		if est > time.Duration(h.MaxNs) {
			est = time.Duration(h.MaxNs)
		}
		return est
	}
	return time.Duration(h.MaxNs)
}

// Mean returns the mean sample, or 0 when empty.
func (h HistSnapshot) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return time.Duration(h.SumNs / h.Count)
}

// SummaryCounter is one counter aggregated across all domains.
type SummaryCounter struct {
	Subsystem string `json:"subsystem"`
	Name      string `json:"name"`
	Value     int64  `json:"value"`
}

// SummaryHop is the latency rollup of one fault-path hop across every
// domain and fault class that observed it.
type SummaryHop struct {
	Hop  string       `json:"hop"`
	Hist HistSnapshot `json:"hist"`
}

// SummaryDomain ranks one domain by total fault-blocked time (the sum of
// its end-to-end span latencies). ElapsedNs is the clock of the registry
// the entry came from, so shares stay exact after cross-machine merges.
type SummaryDomain struct {
	Domain    string `json:"domain"`
	Spans     int64  `json:"spans"`
	BlockedNs int64  `json:"blocked_ns"`
	ElapsedNs int64  `json:"elapsed_ns"`
}

// Share is the fraction of the domain's machine-elapsed time spent blocked
// on faults.
func (d SummaryDomain) Share() float64 {
	if d.ElapsedNs <= 0 {
		return 0
	}
	return float64(d.BlockedNs) / float64(d.ElapsedNs)
}

// Summary is a compact, deterministic, mergeable rollup of one Registry:
// cross-domain counter sums, hop-latency histograms and the top domains by
// fault-blocked time. Cluster runs build one per machine and fold them into
// a single cluster-wide report; Merge is commutative and associative (all
// slices are canonically sorted), so any fold order — including a parallel
// sweep's nondeterministic completion order — yields identical bytes.
type Summary struct {
	NowNs        int64            `json:"now_ns"`
	Spans        int64            `json:"spans"`
	SpansEvicted int64            `json:"spans_evicted,omitempty"`
	AuditEvents  int64            `json:"audit_events,omitempty"`
	AuditEvicted int64            `json:"audit_evicted,omitempty"`
	Flags        int64            `json:"crosstalk_flags,omitempty"`
	Counters     []SummaryCounter `json:"counters,omitempty"`
	Hops         []SummaryHop     `json:"hops,omitempty"`
	TopDomains   []SummaryDomain  `json:"top_domains,omitempty"`
	// TopK is the per-source truncation each contributing registry applied;
	// Merge keeps the union (bounded by sources × TopK) and Truncate cuts
	// the final report back down, so merge order cannot change the result.
	TopK int `json:"top_k,omitempty"`
}

// Summarize rolls the registry up into a Summary, keeping the topK domains
// by fault-blocked time. Nil registries summarize to the empty Summary.
func (r *Registry) Summarize(topK int) *Summary {
	s := &Summary{TopK: topK}
	if r == nil {
		return s
	}
	s.NowNs = int64(r.now())
	s.Spans = r.spanTotal
	s.SpansEvicted = r.cEvicted.Value()
	s.AuditEvents = r.auditTotal
	s.AuditEvicted = r.cAuditEvicted.Value()
	s.Flags = int64(len(r.flags))

	cidx := map[[2]string]int{}
	for _, k := range r.corder {
		key := [2]string{k.Subsystem, k.Name}
		i, ok := cidx[key]
		if !ok {
			i = len(s.Counters)
			cidx[key] = i
			s.Counters = append(s.Counters, SummaryCounter{Subsystem: k.Subsystem, Name: k.Name})
		}
		s.Counters[i].Value += r.counters[k].v
	}
	sortCounters(s.Counters)

	hidx := map[string]int{}
	for _, k := range r.hopOrder {
		i, ok := hidx[k.Hop]
		if !ok {
			i = len(s.Hops)
			hidx[k.Hop] = i
			s.Hops = append(s.Hops, SummaryHop{Hop: k.Hop})
		}
		s.Hops[i].Hist.Merge(r.hopHists[k].Snapshot())
	}
	sortHops(s.Hops)

	// Per-domain fault-blocked time: every finished span observes its e2e
	// latency into a ("span", "e2e."+class, domain) histogram, so the sums
	// survive span-ring eviction.
	didx := map[string]int{}
	for _, k := range r.horder {
		if k.Subsystem != "span" || !strings.HasPrefix(k.Name, "e2e.") {
			continue
		}
		h := r.hists[k]
		i, ok := didx[k.Domain]
		if !ok {
			i = len(s.TopDomains)
			didx[k.Domain] = i
			s.TopDomains = append(s.TopDomains, SummaryDomain{Domain: k.Domain, ElapsedNs: s.NowNs})
		}
		s.TopDomains[i].Spans += h.count
		s.TopDomains[i].BlockedNs += int64(h.sum)
	}
	sortDomains(s.TopDomains)
	s.Truncate(topK)
	return s
}

// Merge folds o into s. The zero Summary is an identity and slices stay
// canonically sorted, so merging a set of summaries in any order — or any
// association — produces identical results (pinned by test).
func (s *Summary) Merge(o *Summary) {
	if o == nil {
		return
	}
	if o.NowNs > s.NowNs {
		s.NowNs = o.NowNs
	}
	s.Spans += o.Spans
	s.SpansEvicted += o.SpansEvicted
	s.AuditEvents += o.AuditEvents
	s.AuditEvicted += o.AuditEvicted
	s.Flags += o.Flags
	if o.TopK > s.TopK {
		s.TopK = o.TopK
	}

	cidx := map[[2]string]int{}
	for i, c := range s.Counters {
		cidx[[2]string{c.Subsystem, c.Name}] = i
	}
	for _, c := range o.Counters {
		key := [2]string{c.Subsystem, c.Name}
		if i, ok := cidx[key]; ok {
			s.Counters[i].Value += c.Value
		} else {
			cidx[key] = len(s.Counters)
			s.Counters = append(s.Counters, c)
		}
	}
	sortCounters(s.Counters)

	hidx := map[string]int{}
	for i, h := range s.Hops {
		hidx[h.Hop] = i
	}
	for _, h := range o.Hops {
		if i, ok := hidx[h.Hop]; ok {
			s.Hops[i].Hist.Merge(h.Hist)
		} else {
			hidx[h.Hop] = len(s.Hops)
			nh := SummaryHop{Hop: h.Hop}
			nh.Hist.Merge(h.Hist)
			s.Hops = append(s.Hops, nh)
		}
	}
	sortHops(s.Hops)

	didx := map[string]int{}
	for i, d := range s.TopDomains {
		didx[d.Domain] = i
	}
	for _, d := range o.TopDomains {
		if i, ok := didx[d.Domain]; ok {
			s.TopDomains[i].Spans += d.Spans
			s.TopDomains[i].BlockedNs += d.BlockedNs
			if d.ElapsedNs > s.TopDomains[i].ElapsedNs {
				s.TopDomains[i].ElapsedNs = d.ElapsedNs
			}
		} else {
			didx[d.Domain] = len(s.TopDomains)
			s.TopDomains = append(s.TopDomains, d)
		}
	}
	sortDomains(s.TopDomains)
}

// Prefix qualifies every domain entry with p (e.g. "m3/"), so per-machine
// summaries stay distinguishable after a cluster merge.
func (s *Summary) Prefix(p string) {
	for i := range s.TopDomains {
		s.TopDomains[i].Domain = p + s.TopDomains[i].Domain
	}
}

// Truncate cuts the domain ranking to the top k entries (no-op for k <= 0).
// Callers truncate once, after the last Merge.
func (s *Summary) Truncate(k int) {
	if k > 0 && len(s.TopDomains) > k {
		s.TopDomains = s.TopDomains[:k]
	}
}

func sortCounters(cs []SummaryCounter) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Subsystem != cs[j].Subsystem {
			return cs[i].Subsystem < cs[j].Subsystem
		}
		return cs[i].Name < cs[j].Name
	})
}

func sortHops(hs []SummaryHop) {
	sort.Slice(hs, func(i, j int) bool { return hs[i].Hop < hs[j].Hop })
}

func sortDomains(ds []SummaryDomain) {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].BlockedNs != ds[j].BlockedNs {
			return ds[i].BlockedNs > ds[j].BlockedNs
		}
		return ds[i].Domain < ds[j].Domain
	})
}

// WriteText renders the rollup as the aligned report WriteTopTable and the
// cluster summary embed: hop latency distributions, then the top domains by
// fault-blocked share.
func (s *Summary) WriteText(w io.Writer) error {
	if s == nil {
		return nil
	}
	if _, err := fmt.Fprintf(w, "rollup: %d spans", s.Spans); err != nil {
		return err
	}
	if s.SpansEvicted > 0 {
		if _, err := fmt.Fprintf(w, " (%d evicted)", s.SpansEvicted); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "   %d audit events", s.AuditEvents); err != nil {
		return err
	}
	if s.AuditEvicted > 0 {
		if _, err := fmt.Fprintf(w, " (%d evicted)", s.AuditEvicted); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "   %d crosstalk flags\n", s.Flags); err != nil {
		return err
	}
	if len(s.Hops) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "HOP\tCOUNT\tP50us\tP95us\tP99us\tMAXus")
		for _, h := range s.Hops {
			fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\t%.1f\t%.1f\n",
				h.Hop, h.Hist.Count,
				float64(h.Hist.Quantile(0.50))/1e3,
				float64(h.Hist.Quantile(0.95))/1e3,
				float64(h.Hist.Quantile(0.99))/1e3,
				float64(h.Hist.MaxNs)/1e3)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	if len(s.TopDomains) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "TOP-DOMAIN\tSPANS\tBLOCKEDms\tSHARE%")
		for _, d := range s.TopDomains {
			fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.2f\n",
				d.Domain, d.Spans, float64(d.BlockedNs)/1e6, 100*d.Share())
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}
