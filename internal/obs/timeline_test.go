package obs

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"nemesis/internal/sim"
)

func TestAuditLogBasics(t *testing.T) {
	r, fc := newTestRegistry()
	r.Audit(AuditRevokeBegin, "hog", "", 8, "")
	fc.advance(10 * time.Millisecond)
	r.Audit(AuditRevokeComplete, "hog", "", 8, "intrusive")
	r.Audit(AuditCrosstalk, "victim", "suspect", 0, "surge")

	log := r.AuditLog()
	if len(log) != 3 {
		t.Fatalf("audit log has %d events", len(log))
	}
	if log[0].At != 0 || log[1].At != sim.Time(10*time.Millisecond) {
		t.Fatalf("timestamps = %v, %v", log[0].At, log[1].At)
	}
	if got := r.AuditByKind(AuditCrosstalk); len(got) != 1 || got[0].Other != "suspect" {
		t.Fatalf("AuditByKind(crosstalk) = %+v", got)
	}
	if got := r.AuditByKind(AuditRevokeKill); got != nil {
		t.Fatalf("AuditByKind(kill) = %+v", got)
	}

	var buf bytes.Buffer
	if err := r.WriteAuditTSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "revoke.complete\thog\t\t8\tintrusive") {
		t.Fatalf("TSV missing row:\n%s", buf.String())
	}

	// Nil registry: all no-ops.
	var nr *Registry
	nr.Audit(AuditRevokeKill, "x", "", 0, "")
	if nr.AuditLog() != nil || nr.AuditByKind(AuditRevokeKill) != nil {
		t.Fatal("nil registry audit not empty")
	}
}

func TestSpansEvictedCounter(t *testing.T) {
	r, fc := newTestRegistry()
	// Below capacity: no counter appears at all.
	for i := 0; i < DefaultSpanCap; i++ {
		sp := r.StartSpan("d", "page")
		fc.advance(time.Microsecond)
		sp.Finish("fast")
	}
	if r.SpansEvicted() != 0 {
		t.Fatalf("evicted = %d before overflow", r.SpansEvicted())
	}
	if r.LookupCounter("obs", "spans_evicted", "") != nil {
		t.Fatal("spans_evicted counter created before any eviction")
	}
	// Push past the ring.
	const extra = 137
	for i := 0; i < extra; i++ {
		sp := r.StartSpan("d", "page")
		fc.advance(time.Microsecond)
		sp.Finish("fast")
	}
	if r.SpansEvicted() != extra {
		t.Fatalf("evicted = %d, want %d", r.SpansEvicted(), extra)
	}
	if c := r.LookupCounter("obs", "spans_evicted", ""); c.Value() != extra {
		t.Fatalf("counter = %d, want %d", c.Value(), extra)
	}
	if len(r.Spans()) != DefaultSpanCap {
		t.Fatalf("retained %d spans", len(r.Spans()))
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	r, _ := newTestRegistry()

	empty := r.Histogram("t", "empty", "")
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v", q, got)
		}
	}

	single := r.Histogram("t", "single", "")
	single.Observe(3 * time.Millisecond)
	for _, q := range []float64{-1, 0, 0.001, 0.5, 0.999, 1, 2} {
		if got := single.Quantile(q); got != 3*time.Millisecond {
			t.Fatalf("single Quantile(%v) = %v", q, got)
		}
	}

	multi := r.Histogram("t", "multi", "")
	multi.Observe(time.Millisecond)
	multi.Observe(10 * time.Millisecond)
	// Out-of-range q clamps to the exact min/max, never extrapolates.
	if got := multi.Quantile(-0.5); got != time.Millisecond {
		t.Fatalf("Quantile(-0.5) = %v", got)
	}
	if got := multi.Quantile(1.5); got != 10*time.Millisecond {
		t.Fatalf("Quantile(1.5) = %v", got)
	}
	// In-range values stay within [min, max].
	for q := 0.01; q < 1; q += 0.07 {
		got := multi.Quantile(q)
		if got < time.Millisecond || got > 10*time.Millisecond {
			t.Fatalf("Quantile(%v) = %v outside observed range", q, got)
		}
	}

	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile")
	}
}

func TestRecorderSamplesAndRates(t *testing.T) {
	s := sim.New(1)
	r := NewRegistry(s.Now)
	rc := NewRecorder(r, s, RecorderConfig{Interval: 100 * time.Millisecond, Cap: 8})

	level := int64(5)
	var cum int64
	tLevel := rc.TrackGauge("g", "level", "dom", "frames", func() int64 { return level })
	tRate := rc.TrackRate("", "rate", "dom", "per_s", func() int64 { return cum })
	rc.Start()

	// Each 100 ms interval adds 50 to the cumulative source -> 500/s.
	for i := 0; i < 4; i++ {
		s.RunFor(100 * time.Millisecond)
		cum += 50 // applied after the tick at this boundary ran
	}
	// The tick at t=100ms sees cum of the first window, etc. Drive four
	// more intervals with the source advancing mid-window instead.
	level = 7
	s.RunFor(400 * time.Millisecond)

	if rc.Samples() != 8 || rc.Total() != 8 {
		t.Fatalf("samples=%d total=%d", rc.Samples(), rc.Total())
	}
	times := rc.Times()
	if len(times) != 8 || times[0] != sim.Time(100*time.Millisecond) || times[7] != sim.Time(800*time.Millisecond) {
		t.Fatalf("times = %v", times)
	}
	levels := rc.Values(tLevel)
	if levels[0] != 5 || levels[7] != 7 {
		t.Fatalf("levels = %v", levels)
	}
	rates := rc.Values(tRate)
	// Windows 2..4 each saw +50 over 0.1 s = 500/s (window 1's delta is 0:
	// the first increment landed after its tick).
	if rates[1] != 500 || rates[3] != 500 {
		t.Fatalf("rates = %v", rates)
	}

	// Ring overwrite: four more samples displace the oldest four.
	s.RunFor(400 * time.Millisecond)
	if rc.Samples() != 8 || rc.Total() != 12 {
		t.Fatalf("after wrap samples=%d total=%d", rc.Samples(), rc.Total())
	}
	times = rc.Times()
	if times[0] != sim.Time(500*time.Millisecond) || times[7] != sim.Time(1200*time.Millisecond) {
		t.Fatalf("wrapped times = %v", times)
	}

	rc.Stop()
	s.RunFor(time.Second)
	if rc.Total() != 12 {
		t.Fatal("recorder sampled after Stop")
	}
}

func TestRecorderLateTrackBackfillsZero(t *testing.T) {
	s := sim.New(1)
	r := NewRegistry(s.Now)
	rc := NewRecorder(r, s, RecorderConfig{Interval: 100 * time.Millisecond, Cap: 16})
	rc.Start()
	s.RunFor(300 * time.Millisecond)

	late := rc.TrackGauge("", "late", "dom", "frames", func() int64 { return 9 })
	s.RunFor(200 * time.Millisecond)
	vals := rc.Values(late)
	if !reflect.DeepEqual(vals, []float64{0, 0, 0, 9, 9}) {
		t.Fatalf("late track values = %v", vals)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var rc *Recorder
	if tr := rc.TrackGauge("", "x", "", "", func() int64 { return 1 }); tr != nil {
		t.Fatal("nil recorder returned a track")
	}
	rc.Start()
	rc.Stop()
	if rc.Samples() != 0 || rc.Total() != 0 || rc.Times() != nil || rc.Values(nil) != nil {
		t.Fatal("nil recorder not inert")
	}
	if NewRecorder(nil, sim.New(1), RecorderConfig{}) != nil {
		t.Fatal("nil registry should yield nil recorder")
	}
}

func TestCrosstalkFlushTrailingWindow(t *testing.T) {
	s := sim.New(1)
	r := NewRegistry(s.Now)
	// One domain collapsing, one surging. Period 1 s, baseline 2.
	cfg := CrosstalkConfig{Period: time.Second, Baseline: 2, DegradeFrac: 0.7, SurgeFrac: 1.5}
	var victimProgress, suspectFaults int64
	m := NewCrosstalkMonitor(r, s, cfg, func() ([]DomainSample, Pressure) {
		return []DomainSample{
			{Name: "victim", Progress: victimProgress},
			{Name: "suspect", Faults: suspectFaults},
		}, Pressure{FreeFrames: 1}
	})
	m.Start()

	// Build steady baselines over full windows: victim 1000/s, suspect 100/s.
	for i := 0; i < 4; i++ {
		victimProgress += 1000
		suspectFaults += 100
		s.RunFor(time.Second)
	}
	if len(m.Flags()) != 0 {
		t.Fatalf("flags during steady state: %+v", m.Flags())
	}
	ticksBefore := m.Ticks()

	// Half a window of collapse + surge, then Stop mid-window.
	victimProgress += 100 // 200/s over 0.5 s — far below 70% of 1000/s
	suspectFaults += 1000 // 2000/s — far above 150% of 100/s
	s.RunFor(500 * time.Millisecond)
	m.Stop()

	if m.Ticks() != ticksBefore+1 {
		t.Fatalf("trailing window not flushed: ticks %d -> %d", ticksBefore, m.Ticks())
	}
	flags := m.Flags()
	if len(flags) != 1 {
		t.Fatalf("flags after flush = %+v", flags)
	}
	f := flags[0]
	if f.Victim != "victim" || f.Suspect != "suspect" {
		t.Fatalf("flag = %+v", f)
	}
	if f.Window != 500*time.Millisecond {
		t.Fatalf("flag window = %v, want the partial 500ms", f.Window)
	}
	if math.Abs(f.VictimRate-200) > 1 || math.Abs(f.SuspectRate-2000) > 10 {
		t.Fatalf("partial-window rates not scaled: %+v", f)
	}
	// The flag is mirrored into the audit log.
	if au := r.AuditByKind(AuditCrosstalk); len(au) != 1 || au[0].Domain != "victim" || au[0].Other != "suspect" {
		t.Fatalf("crosstalk audit = %+v", au)
	}

	// Stop again: no double flush.
	m.Stop()
	if m.Ticks() != ticksBefore+1 {
		t.Fatal("second Stop flushed again")
	}
}

func TestCrosstalkStopAtTickBoundaryNoEmptyFlush(t *testing.T) {
	s := sim.New(1)
	r := NewRegistry(s.Now)
	m := NewCrosstalkMonitor(r, s, CrosstalkConfig{Period: time.Second}, func() ([]DomainSample, Pressure) {
		return []DomainSample{{Name: "d"}}, Pressure{}
	})
	m.Start()
	s.RunFor(3 * time.Second)
	ticks := m.Ticks()
	m.Stop() // exactly at a tick boundary: zero elapsed, nothing to flush
	if m.Ticks() != ticks {
		t.Fatalf("zero-length window flushed: %d -> %d", ticks, m.Ticks())
	}
}

// buildDump assembles a registry + recorder with one of everything.
func buildDump(t *testing.T) *TimelineDump {
	t.Helper()
	s := sim.New(1)
	r := NewRegistry(s.Now)
	rc := NewRecorder(r, s, RecorderConfig{Interval: 100 * time.Millisecond, Cap: 64})
	held := int64(3)
	rc.TrackGauge("frames", "held", "dom1", "frames", func() int64 { return held })
	rc.TrackGauge("frames", "guarantee", "dom1", "frames", func() int64 { return 2 })
	rc.TrackGauge("", "free_frames", "", "frames", func() int64 { return 100 })
	rc.Start()

	s.RunFor(50 * time.Millisecond)
	sp := r.StartSpan("dom1", "page")
	sp.SetThread("worker")
	sp.BeginHop("kernel")
	s.RunFor(time.Millisecond)
	sp.BeginHop("usd.read")
	s.RunFor(2 * time.Millisecond)
	sp.Finish("worker")

	r.Audit(AuditRevokeBegin, "dom1", "", 4, "")
	r.Audit(AuditGuaranteeViolation, "dom1", "dom2", 2, "starved")
	s.RunFor(500 * time.Millisecond)

	return Timeline{Reg: r, Rec: rc}.Dump()
}

func TestTimelineDumpShape(t *testing.T) {
	d := buildDump(t)
	if len(d.Tracks) != 3 || len(d.Spans) != 1 || len(d.Audit) != 2 {
		t.Fatalf("dump: %d tracks, %d spans, %d audit", len(d.Tracks), len(d.Spans), len(d.Audit))
	}
	if len(d.Times) != len(d.Tracks[0].Values) {
		t.Fatalf("times %d != values %d", len(d.Times), len(d.Tracks[0].Values))
	}
	sp := d.Spans[0]
	if sp.Domain != "dom1" || len(sp.Hops) != 2 || sp.Hops[1].Name != "usd.read" {
		t.Fatalf("span = %+v", sp)
	}
	if sp.Hops[0].StartNs != sp.StartNs || sp.Hops[1].EndNs != sp.EndNs {
		t.Fatalf("hops not contiguous with span: %+v", sp)
	}
	// Nil-registry timeline dumps cleanly.
	if e := (Timeline{}).Dump(); len(e.Tracks)+len(e.Spans)+len(e.Audit) != 0 {
		t.Fatal("empty timeline not empty")
	}
}

func TestWriteTraceValidatesAndIsDeterministic(t *testing.T) {
	d := buildDump(t)
	var a, b bytes.Buffer
	if err := d.WriteTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("trace output not deterministic")
	}
	if err := ValidateTrace(bytes.NewReader(a.Bytes())); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	out := a.String()
	for _, want := range []string{
		`"name":"frames"`,        // grouped counter track
		`"held":3`,               // series within the group
		`"name":"fault:page"`,    // span slice
		`"name":"usd.read"`,      // hop slice
		`"name":"revoke.begin"`,  // audit instant
		`"name":"qos.violation"`, // audit instant
		`"name":"process_name"`,  // metadata
		`"name":"thread_name"`,   // lane names
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %s", want)
		}
	}
	// No scientific notation in timestamps.
	if strings.Contains(out, "e+") || strings.Contains(out, "E+") {
		t.Fatal("trace contains scientific-notation numbers")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	d := buildDump(t)
	var jl bytes.Buffer
	if err := d.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTimelineJSONL(bytes.NewReader(jl.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, back) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", d, back)
	}
	// Converting either renders identical traces.
	var t1, t2 bytes.Buffer
	if err := d.WriteTrace(&t1); err != nil {
		t.Fatal(err)
	}
	if err := back.WriteTrace(&t2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Fatal("trace from round-tripped dump differs")
	}
}

func TestParseTimelineJSONLErrors(t *testing.T) {
	if _, err := ParseTimelineJSONL(strings.NewReader(`{"type":"bogus"}`)); err == nil {
		t.Fatal("unknown line type accepted")
	}
	if _, err := ParseTimelineJSONL(strings.NewReader(`{"type":"span"}`)); err == nil {
		t.Fatal("span line without object accepted")
	}
	if _, err := ParseTimelineJSONL(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestValidateTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":      `]`,
		"empty events":  `{"traceEvents":[]}`,
		"no name":       `{"traceEvents":[{"ph":"X","pid":1,"ts":1,"dur":1}]}`,
		"bad phase":     `{"traceEvents":[{"name":"a","ph":"Z","pid":1,"ts":1}]}`,
		"no pid":        `{"traceEvents":[{"name":"a","ph":"i","ts":1}]}`,
		"no ts":         `{"traceEvents":[{"name":"a","ph":"i","pid":1}]}`,
		"X without dur": `{"traceEvents":[{"name":"a","ph":"X","pid":1,"ts":1}]}`,
	}
	for name, doc := range cases {
		if err := ValidateTrace(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	ok := `{"traceEvents":[{"name":"m","ph":"M","pid":1},{"name":"a","ph":"X","pid":1,"ts":1,"dur":2}]}`
	if err := ValidateTrace(strings.NewReader(ok)); err != nil {
		t.Fatalf("minimal valid trace rejected: %v", err)
	}
}

func TestWriteJSONIncludesAudit(t *testing.T) {
	r, _ := newTestRegistry()
	r.Audit(AuditNetswapDegrade, "dom", "", 0, "budget")
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"net.degrade"`) {
		t.Fatalf("WriteJSON missing audit log:\n%s", buf.String())
	}
}
