package obs

import (
	"reflect"
	"testing"
	"time"

	"nemesis/internal/sim"
)

// The incremental crosstalk monitor must produce exactly the flags, gauges
// and counters of the full-scan monitor while only ever being handed the
// domains that changed. This test builds one scripted world of per-window
// activity — steady domains, an attacker, collapsing victims, a domain that
// surges from a long-idle baseline (the history-padding path), a domain
// that fades out (the cooling path) and permanently idle domains — and
// drives a full-scan monitor and an incremental monitor over separate
// simulators, comparing every observable.

const ctWindows = 60

// ctDelta returns domain name's activity during window t (1-based).
func ctDelta(name string, t int) (progress, faults, revocations int64) {
	switch name {
	case "steady":
		return 1000, 10, 0
	case "attacker":
		if t == 12 || t == 15 || t == 20 {
			return 500, 300, 0
		}
		return 500, 20, 0
	case "victim":
		if t == 15 || t == 20 {
			return 50, 10, 0
		}
		return 1000, 10, 0
	case "sleeper": // idle until a fault surge from a zero baseline
		if t == 20 || t == 21 {
			return 0, 80, 0
		}
		return 0, 0, 0
	case "fader": // active early, then silent: must cool to zero baseline
		if t <= 10 {
			return 2000, 15, 0
		}
		return 0, 0, 0
	case "revoker": // bursts of revocations with long idle gaps between
		if t == 5 || t == 25 {
			return 100, 5, 3
		}
		return 0, 0, 0
	default: // idle0..idle3: never any activity
		return 0, 0, 0
	}
}

var ctNames = []string{"steady", "attacker", "victim", "sleeper", "fader", "revoker", "idle0", "idle1", "idle2", "idle3"}

// ctWorld precomputes cumulative samples per tick.
func ctWorld() [][]DomainSample {
	world := make([][]DomainSample, ctWindows+1)
	cum := make([]DomainSample, len(ctNames))
	for i, n := range ctNames {
		cum[i] = DomainSample{Name: n, Order: int64(i)}
	}
	world[0] = append([]DomainSample(nil), cum...)
	for t := 1; t <= ctWindows; t++ {
		for i, n := range ctNames {
			p, f, r := ctDelta(n, t)
			cum[i].Progress += p
			cum[i].Faults += f
			cum[i].Revocations += r
		}
		world[t] = append([]DomainSample(nil), cum...)
	}
	return world
}

func TestIncrementalCrosstalkMatchesFullScan(t *testing.T) {
	world := ctWorld()
	cfg := CrosstalkConfig{Period: time.Second, Baseline: 4}
	runDur := time.Duration(ctWindows)*time.Second - 300*time.Millisecond // end on a partial window to cover flush

	// Full scan: every domain, every window.
	fullSim := sim.New(1)
	fullReg := NewRegistry(fullSim.Now)
	fullTick := 0
	full := NewCrosstalkMonitor(fullReg, fullSim, cfg, func() ([]DomainSample, Pressure) {
		fullTick++
		return world[fullTick], Pressure{FreeFrames: 100 - fullTick}
	})
	full.Start()
	fullSim.RunFor(runDur)
	full.Stop()

	// Incremental: first window reports everyone (fresh), then only domains
	// whose cumulative counters moved.
	incSim := sim.New(1)
	incReg := NewRegistry(incSim.Now)
	incTick := 0
	inc := NewIncrementalCrosstalkMonitor(incReg, incSim, cfg, func() ([]DomainSample, Pressure) {
		incTick++
		var changed []DomainSample
		for i, s := range world[incTick] {
			if incTick == 1 || s != world[incTick-1][i] {
				changed = append(changed, s)
			}
		}
		return changed, Pressure{FreeFrames: 100 - incTick}
	})
	inc.Start()
	incSim.RunFor(runDur)
	inc.Stop()

	if full.Ticks() != inc.Ticks() {
		t.Fatalf("ticks: full %d, incremental %d", full.Ticks(), inc.Ticks())
	}
	ff, fi := fullReg.Flags(), incReg.Flags()
	if !reflect.DeepEqual(ff, fi) {
		t.Fatalf("flags diverged:\n full: %+v\n incr: %+v", ff, fi)
	}
	if len(ff) == 0 {
		t.Fatal("script raised no flags; the comparison is vacuous")
	}
	// Both the steady-attack windows and a cooling-window collapse must be
	// represented, or the interesting paths were never exercised.
	victims := map[string]bool{}
	for _, f := range ff {
		victims[f.Victim] = true
	}
	if !victims["victim"] {
		t.Fatalf("no flag for the scripted victim: %+v", ff)
	}
	// The t=12 surge catches the fader while it is cooling (zero rate
	// against a still-positive baseline): the flag must come from the
	// synthesized cooling window, not a reported sample.
	if !victims["fader"] {
		t.Fatalf("no cooling-window flag for the fader: %+v", ff)
	}

	// Gauges and counters must agree for every domain that was ever active
	// (the incremental monitor never creates gauges for never-active ones).
	for _, name := range ctNames {
		for _, metric := range []string{"progress_rate", "fault_rate"} {
			fg := fullReg.LookupGauge("crosstalk", metric, name)
			ig := incReg.LookupGauge("crosstalk", metric, name)
			if ig == nil {
				last := world[ctWindows][0]
				for _, s := range world[ctWindows] {
					if s.Name == name {
						last = s
					}
				}
				if last.Progress != 0 || last.Faults != 0 {
					t.Fatalf("%s/%s: incremental gauge missing for active domain", metric, name)
				}
				continue
			}
			if fg.Value() != ig.Value() {
				t.Fatalf("%s/%s: full %d, incremental %d", metric, name, fg.Value(), ig.Value())
			}
		}
		fc := fullReg.LookupCounter("crosstalk", "revocations_seen", name)
		ic := incReg.LookupCounter("crosstalk", "revocations_seen", name)
		if (fc == nil) != (ic == nil) || (fc != nil && fc.Value() != ic.Value()) {
			t.Fatalf("revocations_seen/%s: full %v, incremental %v", name, fc, ic)
		}
	}
}
