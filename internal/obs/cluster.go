package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// MachineTimeline names one machine's timeline dump for merging.
type MachineTimeline struct {
	Machine string
	Dump    *TimelineDump
}

// MergeTimelines folds per-machine dumps into one cluster dump: every
// track, span and audit event is stamped with its machine lane, tracks keep
// their own sample instants (machines sample on their own clocks), and
// NowNs becomes the latest machine clock. Merge order is the lane order of
// the rendered trace, so callers pass machines in a canonical order.
func MergeTimelines(parts []MachineTimeline) *TimelineDump {
	m := &TimelineDump{}
	for _, p := range parts {
		m.Machines = append(m.Machines, p.Machine)
		d := p.Dump
		if d == nil {
			continue
		}
		if d.NowNs > m.NowNs {
			m.NowNs = d.NowNs
		}
		for _, t := range d.Tracks {
			t.Machine = p.Machine
			if t.TimesNs == nil {
				t.TimesNs = d.Times
			}
			m.Tracks = append(m.Tracks, t)
		}
		for _, s := range d.Spans {
			s.Machine = p.Machine
			m.Spans = append(m.Spans, s)
		}
		for _, e := range d.Audit {
			e.Machine = p.Machine
			m.Audit = append(m.Audit, e)
		}
	}
	return m
}

// clusterFlow records, per flow ID, where the client fault span's net.out
// hop starts and which server-side service spans answered it.
type clusterFlow struct {
	clientSpan int   // index into d.Spans, -1 until seen
	outStartNs int64 // start of the client's net.out hop
	servers    []int // indices of service spans, in dump order
}

// WriteClusterTrace renders a merged cluster dump as Chrome trace-event
// JSON: one Perfetto process per machine lane, client fault spans on
// per-domain thread lanes, server service spans on per-worker lanes, and
// flow arrows (s/t/f events bound to enclosing slices) linking each
// client's net.out hop to the server-side service slices that answered it.
func (d *TimelineDump) WriteClusterTrace(w io.Writer) error {
	// Process ids: declared machine lanes first, then any machine that
	// appears only in events (defensive; MergeTimelines declares them all).
	pids := map[string]int{}
	var order []string
	pidOf := func(machine string) int {
		if pid, ok := pids[machine]; ok {
			return pid
		}
		pid := len(pids) + 1
		pids[machine] = pid
		order = append(order, machine)
		return pid
	}
	for _, m := range d.Machines {
		pidOf(m)
	}
	for _, t := range d.Tracks {
		pidOf(t.Machine)
	}
	for _, s := range d.Spans {
		pidOf(s.Machine)
	}
	for _, e := range d.Audit {
		pidOf(e.Machine)
	}

	// Thread lanes within each machine: tid 1 is the events lane; span
	// lanes follow in first-appearance order. Server-side service spans
	// lane by worker thread (queue/store/load phases per swap worker);
	// client fault spans lane by domain.
	type threadKey struct {
		pid int
		nm  string
	}
	laneOf := func(s SpanDump) string {
		if s.Class == "service" && s.Thread != "" {
			return s.Thread
		}
		if s.Domain == "" {
			return "faults"
		}
		return s.Domain
	}
	tids := map[threadKey]int{}
	nextTid := map[int]int{}
	tidOf := func(pid int, name string) int {
		k := threadKey{pid, name}
		if tid, ok := tids[k]; ok {
			return tid
		}
		nextTid[pid]++
		tid := nextTid[pid] + 1 // events lane holds tid 1
		tids[k] = tid
		return tid
	}

	// Flow table: a flow is drawable once both sides appear — the client
	// span carrying the ID with a net.out hop, and at least one service
	// span echoing it.
	flows := map[uint64]*clusterFlow{}
	for i, s := range d.Spans {
		if s.Flow == 0 {
			continue
		}
		f := flows[s.Flow]
		if f == nil {
			f = &clusterFlow{clientSpan: -1}
			flows[s.Flow] = f
		}
		if s.Class == "service" {
			f.servers = append(f.servers, i)
			continue
		}
		for _, h := range s.Hops {
			if h.Name == "net.out" && f.clientSpan < 0 {
				f.clientSpan = i
				f.outStartNs = h.StartNs
			}
		}
	}
	linked := func(flow uint64) *clusterFlow {
		f := flows[flow]
		if f == nil || f.clientSpan < 0 || len(f.servers) == 0 {
			return nil
		}
		return f
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(ev traceEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	for _, m := range order {
		pid := pids[m]
		name := m
		if name == "" {
			name = "cluster"
		}
		if err := emit(traceEvent{Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name}}); err != nil {
			return err
		}
		if err := emit(traceEvent{Name: "process_sort_index", Ph: "M", Pid: pid,
			Args: map[string]any{"sort_index": pid}}); err != nil {
			return err
		}
	}

	// Counter tracks, grouped per (machine, domain, group) against each
	// track's own sample instants.
	type clusterCounterKey struct {
		machine string
		domain  string
		name    string
	}
	var ckeys []clusterCounterKey
	groups := map[clusterCounterKey][]TrackDump{}
	for _, t := range d.Tracks {
		name := t.Group
		if name == "" {
			name = t.Name
		}
		if t.Domain != "" {
			name = t.Domain + "/" + name
		}
		k := clusterCounterKey{t.Machine, t.Domain, name}
		if _, ok := groups[k]; !ok {
			ckeys = append(ckeys, k)
		}
		groups[k] = append(groups[k], t)
	}
	for _, k := range ckeys {
		tracks := groups[k]
		pid := pids[k.machine]
		times := tracks[0].TimesNs
		for i, at := range times {
			args := make(map[string]any, len(tracks))
			for _, t := range tracks {
				if i < len(t.Values) {
					args[t.Name] = t.Values[i]
				}
			}
			if err := emit(traceEvent{Name: k.name, Ph: "C", Ts: usec(at), Pid: pid, Args: args}); err != nil {
				return err
			}
		}
	}

	// Spans with their hop slices; flow events ride along, anchored to the
	// slice they bind to, so the emission order is a deterministic function
	// of the dump alone.
	for i, s := range d.Spans {
		pid := pids[s.Machine]
		tid := tidOf(pid, laneOf(s))
		name := "fault:" + s.Class
		if s.Class == "service" {
			name = "service"
		}
		args := map[string]any{"outcome": s.Outcome, "thread": s.Thread}
		if s.Class == "service" {
			args["client"] = s.Domain
		}
		if s.Flow != 0 {
			args["flow"] = s.Flow
		}
		dur := usec(s.EndNs - s.StartNs)
		if err := emit(traceEvent{
			Name: name, Ph: "X", Ts: usec(s.StartNs), Dur: &dur,
			Pid: pid, Tid: tid, Cat: "fault",
			Args: args,
		}); err != nil {
			return err
		}
		for _, h := range s.Hops {
			hdur := usec(h.EndNs - h.StartNs)
			if err := emit(traceEvent{
				Name: h.Name, Ph: "X", Ts: usec(h.StartNs), Dur: &hdur,
				Pid: pid, Tid: tid, Cat: "hop",
			}); err != nil {
				return err
			}
		}
		f := linked(s.Flow)
		if f == nil {
			continue
		}
		id := s.Flow
		if f.clientSpan == i {
			// Flow starts inside the client's net.out hop slice.
			if err := emit(traceEvent{
				Name: "netswap", Ph: "s", Ts: usec(f.outStartNs),
				Pid: pid, Tid: tid, Cat: "flow", ID: &id,
			}); err != nil {
				return err
			}
			continue
		}
		// Service spans: steps through all but the last (a batched write is
		// one client hop answered by several server RPCs), finish on the
		// last, bound to the enclosing service slice.
		ph, bp := "t", ""
		if i == f.servers[len(f.servers)-1] {
			ph, bp = "f", "e"
		}
		if err := emit(traceEvent{
			Name: "netswap", Ph: ph, Ts: usec(s.StartNs),
			Pid: pid, Tid: tid, Cat: "flow", ID: &id, Bp: bp,
		}); err != nil {
			return err
		}
	}

	// Audit instants on the owning machine's events lane.
	for _, e := range d.Audit {
		pid := pids[e.Machine]
		args := map[string]any{}
		if e.Domain != "" {
			args["domain"] = e.Domain
		}
		if e.Other != "" {
			args["other"] = e.Other
		}
		if e.Frames != 0 {
			args["frames"] = e.Frames
		}
		if e.Detail != "" {
			args["detail"] = e.Detail
		}
		if err := emit(traceEvent{
			Name: string(e.Kind), Ph: "i", Ts: usec(e.At), Pid: pid, Tid: 1,
			S: "p", Cat: "audit", Args: args,
		}); err != nil {
			return err
		}
	}

	// Thread-name metadata last: tids are known only after span emission.
	for _, m := range order {
		pid := pids[m]
		if err := emit(traceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: 1,
			Args: map[string]any{"name": "events"}}); err != nil {
			return err
		}
	}
	named := map[threadKey]bool{}
	for _, s := range d.Spans {
		pid := pids[s.Machine]
		lane := laneOf(s)
		k := threadKey{pid, lane}
		if named[k] {
			continue
		}
		named[k] = true
		if err := emit(traceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tids[k],
			Args: map[string]any{"name": lane}}); err != nil {
			return err
		}
	}

	if _, err := bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
