package vm

import (
	"testing"
	"testing/quick"

	"nemesis/internal/mem"
)

func TestGPTInsertLookup(t *testing.T) {
	g := NewGuardedPageTable()
	if g.Lookup(42) != nil || g.Entries() != 0 {
		t.Fatal("fresh table not empty")
	}
	g.Insert(42, 7)
	pte := g.Lookup(42)
	if pte == nil || !pte.Present || pte.SID != 7 {
		t.Fatalf("pte = %+v", pte)
	}
	if g.Entries() != 1 {
		t.Fatalf("entries = %d", g.Entries())
	}
	// Nearby key absent.
	if g.Lookup(43) != nil {
		t.Fatal("phantom entry")
	}
	// Overwrite keeps the count.
	g.Insert(42, 9)
	if g.Entries() != 1 || g.Lookup(42).SID != 9 {
		t.Fatal("overwrite broken")
	}
}

func TestGPTDelete(t *testing.T) {
	g := NewGuardedPageTable()
	g.Insert(100, 1)
	g.Insert(101, 1)
	g.Delete(100)
	if g.Lookup(100) != nil || g.Lookup(101) == nil {
		t.Fatal("delete wrong entry")
	}
	if g.Entries() != 1 {
		t.Fatalf("entries = %d", g.Entries())
	}
	g.Delete(100) // idempotent
	if g.Entries() != 1 {
		t.Fatal("double delete decremented")
	}
}

func TestGPTGuardSplitting(t *testing.T) {
	g := NewGuardedPageTable()
	// Keys sharing a long prefix force guard creation and splitting.
	keys := []VPN{0x123456789, 0x12345678A, 0x123456000, 0x999999999}
	for i, k := range keys {
		g.Insert(k, StretchID(i+1))
	}
	for i, k := range keys {
		pte := g.Lookup(k)
		if pte == nil || pte.SID != StretchID(i+1) {
			t.Fatalf("key %x -> %+v", uint64(k), pte)
		}
	}
	if g.Entries() != 4 {
		t.Fatalf("entries = %d", g.Entries())
	}
}

func TestGPTWalkDepthCompressed(t *testing.T) {
	g := NewGuardedPageTable()
	g.Insert(0x123456789, 1)
	// A lone key resolves via one guarded leaf: depth 2 (root + leaf).
	if d := g.WalkDepth(0x123456789); d != 2 {
		t.Fatalf("lone-key depth = %d, want 2", d)
	}
	// Clustered keys stay shallow thanks to guards, but deeper than the
	// linear table's single access.
	for i := VPN(0); i < 512; i++ {
		g.Insert(0x200000000+i, 2)
	}
	lin := NewPageTable()
	for i := VPN(0); i < 512; i++ {
		lin.Insert(0x200000000+i, 2)
	}
	d := g.WalkDepth(0x200000100)
	if d <= lin.WalkDepth(0x200000100) {
		t.Fatalf("GPT depth %d not deeper than linear %d", d, lin.WalkDepth(0x200000100))
	}
	if d > 6 {
		t.Fatalf("GPT depth %d — guards not compressing", d)
	}
}

// Property: the GPT agrees with a map-based reference under arbitrary
// insert/delete/lookup sequences.
func TestGPTMatchesReferenceProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		g := NewGuardedPageTable()
		ref := map[VPN]StretchID{}
		for i, op := range ops {
			// Confine keys to a small space so collisions happen.
			vpn := VPN(op % 4096)
			switch i % 3 {
			case 0, 1:
				sid := StretchID(op%7 + 1)
				g.Insert(vpn, sid)
				ref[vpn] = sid
			case 2:
				g.Delete(vpn)
				delete(ref, vpn)
			}
			if g.Entries() != len(ref) {
				return false
			}
		}
		for vpn, sid := range ref {
			pte := g.Lookup(vpn)
			if pte == nil || pte.SID != sid {
				return false
			}
		}
		// Spot-check absent keys.
		for vpn := VPN(0); vpn < 4096; vpn += 97 {
			_, present := ref[vpn]
			if (g.Lookup(vpn) != nil) != present {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestGPTBacksTranslationSystem: the full VM stack works unchanged over the
// guarded table.
func TestGPTBacksTranslationSystem(t *testing.T) {
	rt := mem.NewRamTab(16)
	ts := NewTranslationSystemWithTable(rt, NewGuardedPageTable())
	sa := NewStretchAllocator(ts, 0x10000000, 0x20000000)
	st, err := sa.New(1, 4*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	pd, _ := ts.NewProtectionDomain()
	ts.GrantInitial(pd, st.ID(), Read|Write|Meta)
	rt.Grant(3, 1, 0)
	if err := ts.Map(pd, 1, st.Base(), 3, DefaultAttr()); err != nil {
		t.Fatal(err)
	}
	if _, f := ts.Access(pd, st.Base(), AccessWrite); f != nil {
		t.Fatalf("access faulted: %v", f)
	}
	if d, _ := ts.IsDirty(st.Base()); !d {
		t.Fatal("dirty bit lost through GPT")
	}
	pfn, dirty, err := ts.Unmap(pd, 1, st.Base())
	if err != nil || pfn != 3 || !dirty {
		t.Fatalf("unmap = %d %v %v", pfn, dirty, err)
	}
	if err := sa.Destroy(st); err != nil {
		t.Fatal(err)
	}
	if ts.PageTable().Entries() != 0 {
		t.Fatal("entries leak after destroy")
	}
}

// --- superpage tests (in this file to reuse the world helper) ---

func TestMapSuperBasics(t *testing.T) {
	ts, sa, rt := world()
	st, _ := sa.New(1, 16*PageSize)
	pd, _ := ts.NewProtectionDomain()
	ts.GrantInitial(pd, st.ID(), Read|Write|Meta)
	// 8 contiguous, aligned frames.
	for i := mem.PFN(0); i < 16; i++ {
		ownedFrame(rt, i, 1)
	}
	// The stretch base VPN is aligned (0x10000000 >> 13 = 0x8000).
	if err := ts.MapSuper(pd, 1, st.Base(), 0, 3, DefaultAttr()); err != nil {
		t.Fatal(err)
	}
	// Every page translates with the right frame.
	for i := 0; i < 8; i++ {
		pfn, _, err := ts.Trans(st.PageBase(i))
		if err != nil || pfn != mem.PFN(i) {
			t.Fatalf("page %d -> %d, %v", i, pfn, err)
		}
	}
	// Width recorded in the RamTab and PTEs.
	if w, _ := rt.Width(3); w != 3 {
		t.Fatalf("ramtab width = %d", w)
	}
	// One access fills a single wide TLB entry covering all 8 pages.
	m0 := ts.TLB().Misses()
	ts.Access(pd, st.Base(), AccessRead)
	for i := 1; i < 8; i++ {
		if _, f := ts.Access(pd, st.PageBase(i), AccessRead); f != nil {
			t.Fatalf("page %d fault: %v", i, f)
		}
	}
	if ts.TLB().Misses() != m0+1 {
		t.Fatalf("misses = %d, want exactly 1 for the whole superpage", ts.TLB().Misses()-m0)
	}
	// Unmapping one member shoots down the wide entry and the page faults.
	if _, _, err := ts.Unmap(pd, 1, st.PageBase(3)); err != nil {
		t.Fatal(err)
	}
	if _, f := ts.Access(pd, st.PageBase(3), AccessRead); f == nil || f.Class != PageFault {
		t.Fatalf("fault = %+v", f)
	}
	// Other members still translate (per-page PTEs survive; refills fall
	// back to single-page entries since the block is no longer whole).
	if _, f := ts.Access(pd, st.PageBase(4), AccessRead); f != nil {
		t.Fatalf("page 4 fault after partial unmap: %v", f)
	}
}

func TestMapSuperValidation(t *testing.T) {
	ts, sa, rt := world()
	st, _ := sa.New(1, 16*PageSize)
	pd, _ := ts.NewProtectionDomain()
	ts.GrantInitial(pd, st.ID(), Read|Write|Meta)
	for i := mem.PFN(0); i < 16; i++ {
		ownedFrame(rt, i, 1)
	}
	// Misaligned VA (one page in).
	if err := ts.MapSuper(pd, 1, st.PageBase(1), 0, 3, DefaultAttr()); err == nil {
		t.Fatal("misaligned superpage accepted")
	}
	// Misaligned PFN.
	if err := ts.MapSuper(pd, 1, st.Base(), 3, 3, DefaultAttr()); err == nil {
		t.Fatal("misaligned frame run accepted")
	}
	// A frame in the run is busy: whole map rolls back.
	rt.SetState(5, 1, mem.Mapped)
	if err := ts.MapSuper(pd, 1, st.Base(), 0, 3, DefaultAttr()); err == nil {
		t.Fatal("busy frame accepted")
	}
	for i := 0; i < 8; i++ {
		if _, _, err := ts.Trans(st.PageBase(i)); err == nil {
			t.Fatalf("page %d left mapped after rollback", i)
		}
	}
	if s, _ := rt.State(2); s != mem.Unused {
		t.Fatalf("frame 2 state %v after rollback", s)
	}
}

// TestSuperpageTLBReach: a 128-page working set thrashes a 64-entry TLB
// with normal pages but fits easily as sixteen 8-page superpages.
func TestSuperpageTLBReach(t *testing.T) {
	const pages = 128
	run := func(super bool) (misses int64) {
		rt := mem.NewRamTab(pages)
		ts := NewTranslationSystemWithTable(rt, NewPageTable())
		sa := NewStretchAllocator(ts, 0x10000000, 0x80000000)
		st, _ := sa.New(1, pages*PageSize)
		pd, _ := ts.NewProtectionDomain()
		ts.GrantInitial(pd, st.ID(), Read|Write|Meta)
		for i := mem.PFN(0); i < pages; i++ {
			ownedFrame(rt, i, 1)
		}
		if super {
			for b := 0; b < pages/8; b++ {
				if err := ts.MapSuper(pd, 1, st.PageBase(b*8), mem.PFN(b*8), 3, DefaultAttr()); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			for i := 0; i < pages; i++ {
				if err := ts.Map(pd, 1, st.PageBase(i), mem.PFN(i), DefaultAttr()); err != nil {
					t.Fatal(err)
				}
			}
		}
		m0 := ts.TLB().Misses()
		for sweep := 0; sweep < 10; sweep++ {
			for i := 0; i < pages; i++ {
				if _, f := ts.Access(pd, st.PageBase(i), AccessRead); f != nil {
					t.Fatal(f)
				}
			}
		}
		return ts.TLB().Misses() - m0
	}
	normal := run(false)
	super := run(true)
	if normal < 1000 {
		t.Fatalf("normal pages missed only %d times; working set not thrashing", normal)
	}
	if super > 16 {
		t.Fatalf("superpages missed %d times, want <= 16 (one per block)", super)
	}
}
