package vm

// Table is the page-table abstraction behind the translation system. Two
// implementations exist: the linear PageTable (what the paper ships — "an
// 8Gb array in the virtual address space ... which provides efficient
// translation") and the GuardedPageTable below (the paper's earlier
// implementation, "about three times slower"). WalkDepth reports how many
// table nodes a lookup of the given page visits, which is what the cost
// model charges for.
type Table interface {
	Lookup(vpn VPN) *PTE
	Insert(vpn VPN, sid StretchID)
	Delete(vpn VPN)
	Entries() int
	WalkDepth(vpn VPN) int
}

var (
	_ Table = (*PageTable)(nil)
	_ Table = (*GuardedPageTable)(nil)
)

// WalkDepth implements Table for the linear page table: one index step.
func (pt *PageTable) WalkDepth(vpn VPN) int { return 1 }

// gptDigitBits is the radix of the guarded page table: 6 bits (64-way
// nodes) per level, as in Liedtke-style GPTs tuned for 64-bit spaces.
const gptDigitBits = 6

// gptKeyBits is the key width: VPNs fit comfortably in 48 bits.
const gptKeyBits = 48

const gptDigits = gptKeyBits / gptDigitBits

// gptNode is one node of the guarded page table: a radix-16 trie node with
// a guard — the compressed common prefix (sequence of digits) that all keys
// below this node share. Guards are what let sparse address spaces resolve
// in a few levels instead of one level per digit.
type gptNode struct {
	guard []byte // digits (each 0..15) skipped before indexing slots
	slots [1 << gptDigitBits]*gptNode
	pte   *PTE // non-nil at full depth
}

// GuardedPageTable is a guarded page table in the style of Liedtke, as used
// by the earlier Nemesis implementation the paper compares against. It has
// identical semantics to PageTable; only the lookup cost differs.
type GuardedPageTable struct {
	root    *gptNode
	entries int
}

// NewGuardedPageTable returns an empty guarded page table.
func NewGuardedPageTable() *GuardedPageTable {
	return &GuardedPageTable{root: &gptNode{}}
}

// digitsOf decomposes a VPN into gptDigits digits, most significant first.
func digitsOf(vpn VPN) []byte {
	d := make([]byte, gptDigits)
	for i := 0; i < gptDigits; i++ {
		shift := uint((gptDigits - 1 - i) * gptDigitBits)
		d[i] = byte((uint64(vpn) >> shift) & (1<<gptDigitBits - 1))
	}
	return d
}

// Entries returns the number of present entries.
func (g *GuardedPageTable) Entries() int { return g.entries }

// walk descends towards vpn. It returns the terminal node (holding the PTE
// if fully matched) and the number of nodes visited; ok reports whether the
// guard path matched exactly to full depth.
func (g *GuardedPageTable) walk(vpn VPN) (node *gptNode, depth int, ok bool) {
	d := digitsOf(vpn)
	n := g.root
	depth = 1
	i := 0
	for {
		// Match the node's guard.
		for _, gd := range n.guard {
			if i >= len(d) || d[i] != gd {
				return n, depth, false
			}
			i++
		}
		if i == len(d) {
			return n, depth, n.pte != nil
		}
		next := n.slots[d[i]]
		if next == nil {
			return n, depth, false
		}
		i++
		n = next
		depth++
	}
}

// Lookup returns the entry for vpn, or nil.
func (g *GuardedPageTable) Lookup(vpn VPN) *PTE {
	n, _, ok := g.walk(vpn)
	if !ok {
		return nil
	}
	return n.pte
}

// WalkDepth returns the number of nodes a lookup of vpn visits.
func (g *GuardedPageTable) WalkDepth(vpn VPN) int {
	_, depth, _ := g.walk(vpn)
	return depth
}

// Insert creates a NULL (present, invalid) entry for vpn belonging to sid.
// An existing entry is overwritten, matching PageTable semantics.
func (g *GuardedPageTable) Insert(vpn VPN, sid StretchID) {
	d := digitsOf(vpn)
	n := g.root
	i := 0
	for {
		// Walk the guard; split the node on first mismatch.
		for gi, gd := range n.guard {
			if i < len(d) && d[i] == gd {
				i++
				continue
			}
			// Split: the node keeps guard[:gi]; a child inherits
			// guard[gi+1:], all slots and the pte, reachable under
			// digit guard[gi].
			child := &gptNode{
				guard: append([]byte(nil), n.guard[gi+1:]...),
				slots: n.slots,
				pte:   n.pte,
			}
			n.guard = append([]byte(nil), n.guard[:gi]...)
			n.slots = [1 << gptDigitBits]*gptNode{}
			n.pte = nil
			n.slots[gd] = child
			break
		}
		if i == len(d) {
			if n.pte == nil {
				g.entries++
			}
			n.pte = &PTE{Present: true, SID: sid}
			return
		}
		next := n.slots[d[i]]
		if next == nil {
			// Fresh leaf: compress the whole remaining path into one
			// guarded node.
			leaf := &gptNode{
				guard: append([]byte(nil), d[i+1:]...),
				pte:   &PTE{Present: true, SID: sid},
			}
			n.slots[d[i]] = leaf
			g.entries++
			return
		}
		i++
		n = next
	}
}

// Delete removes the entry for vpn, if present. Nodes are not re-merged;
// the structure stays valid (and the paper's implementation would not have
// merged either on the fault path).
func (g *GuardedPageTable) Delete(vpn VPN) {
	n, _, ok := g.walk(vpn)
	if !ok {
		return
	}
	n.pte = nil
	g.entries--
}
