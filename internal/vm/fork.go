package vm

import (
	"fmt"

	"nemesis/internal/mem"
)

// ForkMaps carries the identity maps a translation-system fork produces:
// for every parent-side object, its forked twin. Higher layers use them to
// re-point their own copied state (stretch drivers hold *Stretch and *PTE,
// domains hold *ProtectionDomain) at the forked world.
type ForkMaps struct {
	PTE     map[*PTE]*PTE
	PD      map[*ProtectionDomain]*ProtectionDomain
	Stretch map[*Stretch]*Stretch
}

// Fork returns a deep copy of the translation system over the forked
// ramtab: page table (linear or guarded) with every PTE copied, TLB with
// its slots re-pointed at the copied PTEs (tags, FIFO cursor and hit/miss
// counters preserved), all protection domains with their rights maps, and
// the stretch allocator with every stretch. The returned maps let callers
// translate parent pointers to forked ones.
func (ts *TranslationSystem) Fork(ramtab *mem.RamTab) (*TranslationSystem, *ForkMaps, error) {
	m := &ForkMaps{
		PTE:     make(map[*PTE]*PTE),
		PD:      make(map[*ProtectionDomain]*ProtectionDomain, len(ts.pds.pds)),
		Stretch: make(map[*Stretch]*Stretch),
	}

	var table Table
	switch pt := ts.pt.(type) {
	case *PageTable:
		table = pt.fork(m.PTE)
	case *GuardedPageTable:
		table = pt.fork(m.PTE)
	default:
		return nil, nil, fmt.Errorf("vm: cannot fork page table of type %T", ts.pt)
	}

	nts := &TranslationSystem{
		pt:     table,
		tlb:    ts.tlb.fork(m.PTE),
		ramtab: ramtab,
	}

	// Protection domains.
	nts.pds.nextID = ts.pds.nextID
	nts.pds.nextASN = ts.pds.nextASN
	nts.pds.pds = make([]*ProtectionDomain, len(ts.pds.pds))
	for i, pd := range ts.pds.pds {
		npd := &ProtectionDomain{
			id:      pd.id,
			asn:     pd.asn,
			rights:  make(map[StretchID]Rights, len(pd.rights)),
			changes: pd.changes,
		}
		for sid, r := range pd.rights {
			npd.rights[sid] = r
		}
		nts.pds.pds[i] = npd
		m.PD[pd] = npd
	}

	// Stretch allocator.
	if sa := ts.stretches; sa != nil {
		nsa := &StretchAllocator{
			ts:     nts,
			nextID: sa.nextID,
			byBase: make([]*Stretch, len(sa.byBase)),
			low:    sa.low,
			high:   sa.high,
			next:   sa.next,
		}
		for i, st := range sa.byBase {
			nst := &Stretch{id: st.id, base: st.base, size: st.size, owner: st.owner}
			nsa.byBase[i] = nst
			m.Stretch[st] = nst
		}
		nts.stretches = nsa
	}
	return nts, m, nil
}

// fork deep-copies the linear page table, recording each copied PTE in m.
func (pt *PageTable) fork(m map[*PTE]*PTE) *PageTable {
	npt := &PageTable{entries: make(map[VPN]*PTE, len(pt.entries)), lookups: pt.lookups}
	for vpn, pte := range pt.entries {
		np := *pte
		npt.entries[vpn] = &np
		m[pte] = &np
	}
	return npt
}

// fork deep-copies the guarded page table, recording each copied PTE in m.
func (g *GuardedPageTable) fork(m map[*PTE]*PTE) *GuardedPageTable {
	return &GuardedPageTable{root: forkGPTNode(g.root, m), entries: g.entries}
}

func forkGPTNode(n *gptNode, m map[*PTE]*PTE) *gptNode {
	nn := &gptNode{guard: append([]byte(nil), n.guard...)}
	if n.pte != nil {
		np := *n.pte
		nn.pte = &np
		m[n.pte] = &np
	}
	for i, c := range n.slots {
		if c != nil {
			nn.slots[i] = forkGPTNode(c, m)
		}
	}
	return nn
}

// fork copies the TLB, re-pointing cached translations at the forked PTEs.
// Slot order, the FIFO cursor and the hit/miss counters are preserved so
// post-fork lookup behaviour (and its charged cost) is identical.
func (t *TLB) fork(m map[*PTE]*PTE) *TLB {
	nt := &TLB{cursor: t.cursor, nSuper: t.nSuper, hits: t.hits, misses: t.misses}
	if t.idx != nil {
		nt.idx = make(map[tlbKey]int, len(t.idx))
		for k, v := range t.idx {
			nt.idx[k] = v
		}
	}
	for i := range t.slots {
		e := &t.slots[i]
		ne := &nt.slots[i]
		*ne = tlbEntry{valid: e.valid, vpn: e.vpn, asn: e.asn, width: e.width}
		if !e.valid {
			continue
		}
		if e.width == 0 {
			ne.pte0[0] = m[e.ptes[0]]
			ne.ptes = ne.pte0[:1]
		} else {
			ne.ptes = make([]*PTE, len(e.ptes))
			for j, p := range e.ptes {
				ne.ptes[j] = m[p]
			}
		}
	}
	return nt
}
