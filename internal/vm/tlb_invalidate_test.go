package vm

import "testing"

// These tests pin the TLB shootdown contract through the indexed fast path:
// map/unmap, protection changes, rights revocation, and protection-domain
// destruction must never let a stale translation or stale rights survive in
// the TLB, whether the entry would be found via the (vpn, asn) index or the
// superpage scan.

// TestTLBUnmapShootdownAllASNs maps one frame into two domains, warms both
// TLB entries, then unmaps: both ASNs' cached translations must be gone, and
// a remap to a different frame must be what subsequent accesses observe.
func TestTLBUnmapShootdownAllASNs(t *testing.T) {
	ts, sa, rt := world()
	st, _ := sa.New(1, PageSize)
	pd1, _ := ts.NewProtectionDomain()
	pd2, _ := ts.NewProtectionDomain()
	ts.GrantInitial(pd1, st.ID(), Read|Write|Meta)
	ts.GrantInitial(pd2, st.ID(), Read)
	ownedFrame(rt, 1, 1)
	va := st.Base()
	if err := ts.Map(pd1, 1, va, 1, DefaultAttr()); err != nil {
		t.Fatal(err)
	}
	ts.Access(pd1, va, AccessRead)
	ts.Access(pd2, va, AccessRead)
	if ts.TLB().Lookup(PageOf(va), pd1.ASN()) == nil || ts.TLB().Lookup(PageOf(va), pd2.ASN()) == nil {
		t.Fatal("warm-up did not fill both ASNs")
	}
	if _, _, err := ts.Unmap(pd1, 1, va); err != nil {
		t.Fatal(err)
	}
	if ts.TLB().Lookup(PageOf(va), pd1.ASN()) != nil {
		t.Fatal("stale TLB entry for pd1 after unmap")
	}
	if ts.TLB().Lookup(PageOf(va), pd2.ASN()) != nil {
		t.Fatal("stale TLB entry for pd2 after unmap")
	}
	ownedFrame(rt, 2, 1)
	if err := ts.Map(pd1, 1, va, 2, DefaultAttr()); err != nil {
		t.Fatal(err)
	}
	pte, f := ts.Access(pd1, va, AccessRead)
	if f != nil || pte.PFN != 2 {
		t.Fatalf("access after remap: pte=%+v fault=%v, want PFN 2", pte, f)
	}
}

// TestTLBProtectionChangeVisibleThroughCache verifies that ProtectPages takes
// effect even for translations already cached: the TLB stores *PTE, so a
// protection override written to the page table must be observed on the very
// next (TLB-hit) access with no shootdown.
func TestTLBProtectionChangeVisibleThroughCache(t *testing.T) {
	ts, sa, rt := world()
	st, _ := sa.New(1, PageSize)
	pd, _ := ts.NewProtectionDomain()
	// The domain itself holds no rights; access works only via the per-page
	// protection override, so flipping the override must flip the outcome.
	ts.GrantInitial(pd, st.ID(), Meta)
	ownedFrame(rt, 1, 1)
	va := st.Base()
	if err := ts.Map(pd, 1, va, 1, DefaultAttr()); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.ProtectPages(pd, st, Read); err != nil {
		t.Fatal(err)
	}
	if _, f := ts.Access(pd, va, AccessRead); f != nil {
		t.Fatalf("read with page override: %v", f)
	}
	if ts.TLB().Lookup(PageOf(va), pd.ASN()) == nil {
		t.Fatal("entry not cached after access")
	}
	// Revoke the override; the cached entry must not retain the old rights.
	if _, err := ts.ProtectPages(pd, st, 0); err != nil {
		t.Fatal(err)
	}
	if _, f := ts.Access(pd, va, AccessRead); f == nil || f.Class != ProtectionFault {
		t.Fatalf("read after revoking page override: fault=%v, want protection fault", f)
	}
	// Re-grant and confirm recovery through the same cached entry.
	if _, err := ts.ProtectPages(pd, st, Read); err != nil {
		t.Fatal(err)
	}
	if _, f := ts.Access(pd, va, AccessRead); f != nil {
		t.Fatalf("read after re-granting: %v", f)
	}
}

// TestTLBRightsRevocationVisible verifies stretch-granularity revocation
// (SetRights) is enforced on TLB hits: rights live in the protection domain,
// not the cached entry, so no shootdown is needed — but the fault must still
// be raised.
func TestTLBRightsRevocationVisible(t *testing.T) {
	ts, sa, rt := world()
	st, _ := sa.New(1, PageSize)
	owner, _ := ts.NewProtectionDomain()
	victim, _ := ts.NewProtectionDomain()
	ts.GrantInitial(owner, st.ID(), Read|Write|Meta)
	ts.GrantInitial(victim, st.ID(), Read|Write)
	ownedFrame(rt, 1, 1)
	va := st.Base()
	if err := ts.Map(owner, 1, va, 1, DefaultAttr()); err != nil {
		t.Fatal(err)
	}
	if _, f := ts.Access(victim, va, AccessWrite); f != nil {
		t.Fatalf("warm-up write: %v", f)
	}
	h0 := ts.TLB().Hits()
	if changed, err := ts.SetRights(owner, victim, st.ID(), Read); err != nil || !changed {
		t.Fatalf("SetRights: changed=%v err=%v", changed, err)
	}
	if _, f := ts.Access(victim, va, AccessWrite); f == nil || f.Class != ProtectionFault {
		t.Fatalf("write after revocation: fault=%v, want protection fault", f)
	}
	if ts.TLB().Hits() != h0+1 {
		t.Fatal("revoked access bypassed the TLB (rights check should ride the hit path)")
	}
}

// TestTLBSuperpageInvalidation fills a superpage entry and invalidates one
// covered page: the whole wide entry must drop, and remaining width-0
// entries must still hit via the index afterwards (nSuper bookkeeping).
func TestTLBSuperpageInvalidation(t *testing.T) {
	var tlb TLB
	ptes := []*PTE{{PFN: 10}, {PFN: 11}, {PFN: 12}, {PFN: 13}}
	tlb.FillSuper(64, 1, 2, ptes) // covers VPNs 64..67
	narrow := &PTE{PFN: 99}
	tlb.Fill(200, 1, narrow)

	if got := tlb.Lookup(66, 1); got == nil || got.PFN != 12 {
		t.Fatalf("superpage lookup = %+v, want PFN 12", got)
	}
	tlb.InvalidateVA(66)
	for vpn := VPN(64); vpn < 68; vpn++ {
		if tlb.Lookup(vpn, 1) != nil {
			t.Fatalf("page %d of invalidated superpage still cached", vpn)
		}
	}
	if got := tlb.Lookup(200, 1); got != narrow {
		t.Fatal("width-0 entry lost by superpage invalidation")
	}
	if tlb.nSuper != 0 {
		t.Fatalf("nSuper = %d after dropping the only superpage entry", tlb.nSuper)
	}
}

// TestTLBIndexConsistencyUnderEviction churns the TLB far past its capacity
// with interleaved fills, invalidations and flushes, then checks the index
// against the slot array: every valid width-0 slot must be reachable, and no
// index entry may point at an invalid or mismatched slot.
func TestTLBIndexConsistencyUnderEviction(t *testing.T) {
	var tlb TLB
	pte := &PTE{}
	for round := 0; round < 5; round++ {
		for i := 0; i < 3*TLBSize; i++ {
			vpn := VPN(i % (2 * TLBSize)) // aliases force same-key refills
			tlb.Fill(vpn, uint16(round%2), pte)
			if i%7 == 0 {
				tlb.InvalidateVA(vpn)
			}
			if i%11 == 0 {
				tlb.FillSuper(VPN(1000+i), uint16(round%2), 1, []*PTE{pte, pte})
			}
		}
		if round == 3 {
			tlb.Flush()
		} else {
			tlb.InvalidateASN(uint16(round % 2))
		}
	}
	// A final mixed fill pass so the consistency check below sees live
	// entries of both widths.
	for i := 0; i < TLBSize/2; i++ {
		tlb.Fill(VPN(i), 3, pte)
		if i%5 == 0 {
			tlb.FillSuper(VPN(5000+4*i), 3, 2, []*PTE{pte, pte, pte, pte})
		}
	}
	valid := 0
	super := 0
	for i := range tlb.slots {
		e := &tlb.slots[i]
		if !e.valid {
			continue
		}
		valid++
		if e.width > 0 {
			super++
			continue
		}
		if j, ok := tlb.idx[tlbKey{e.vpn, e.asn}]; !ok || j != i {
			t.Fatalf("valid slot %d (vpn=%d asn=%d) not indexed (idx -> %d, %v)", i, e.vpn, e.asn, j, ok)
		}
	}
	for k, i := range tlb.idx {
		e := &tlb.slots[i]
		if !e.valid || e.width != 0 || e.vpn != k.vpn || e.asn != k.asn {
			t.Fatalf("index entry %+v -> slot %d is stale (%+v)", k, i, e)
		}
	}
	if super != tlb.nSuper {
		t.Fatalf("nSuper = %d, but %d valid superpage slots", tlb.nSuper, super)
	}
	if valid == 0 {
		t.Fatal("churn left no valid entries; test exercised nothing")
	}
}

// TestTLBStretchDestroyFlushesMappings destroys a stretch whose pages are
// cached and checks the translations are unreachable afterwards.
func TestTLBStretchDestroyFlushesMappings(t *testing.T) {
	ts, sa, rt := world()
	st, _ := sa.New(1, 2*PageSize)
	pd, _ := ts.NewProtectionDomain()
	ts.GrantInitial(pd, st.ID(), Read|Write|Meta)
	ownedFrame(rt, 1, 1)
	ownedFrame(rt, 2, 1)
	if err := ts.Map(pd, 1, st.PageBase(0), 1, DefaultAttr()); err != nil {
		t.Fatal(err)
	}
	if err := ts.Map(pd, 1, st.PageBase(1), 2, DefaultAttr()); err != nil {
		t.Fatal(err)
	}
	ts.Access(pd, st.PageBase(0), AccessRead)
	ts.Access(pd, st.PageBase(1), AccessRead)
	for i := 0; i < 2; i++ {
		if _, _, err := ts.Unmap(pd, 1, st.PageBase(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sa.Destroy(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if ts.TLB().Lookup(PageOf(VA(uint64(st.Base())+uint64(i)*PageSize)), pd.ASN()) != nil {
			t.Fatalf("page %d still cached after stretch destruction", i)
		}
	}
	if _, f := ts.Access(pd, st.Base(), AccessRead); f == nil || f.Class != UnallocatedFault {
		t.Fatalf("access to destroyed stretch: fault=%v, want unallocated", f)
	}
}
