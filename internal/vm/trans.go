package vm

import (
	"fmt"

	"nemesis/internal/mem"
)

// TranslationSystem deals with inserting, retrieving and deleting mappings
// between virtual and physical addresses. It is split, as in the paper,
// into a high-level part (private to the system domain: bootstrapping,
// NULL-mapping construction, protection-domain management, RamTab
// maintenance) and a low-level part (the map/unmap/trans operations domains
// invoke directly via system calls, validated against meta rights and the
// RamTab).
type TranslationSystem struct {
	pt        Table
	tlb       *TLB
	ramtab    *mem.RamTab
	pds       pdAllocator
	stretches *StretchAllocator
}

// NewTranslationSystem creates the translation system over a RamTab, using
// the linear page table.
func NewTranslationSystem(ramtab *mem.RamTab) *TranslationSystem {
	return NewTranslationSystemWithTable(ramtab, NewPageTable())
}

// NewTranslationSystemWithTable creates the translation system over a
// specific page-table implementation (linear or guarded).
func NewTranslationSystemWithTable(ramtab *mem.RamTab, table Table) *TranslationSystem {
	return &TranslationSystem{
		pt:     table,
		tlb:    &TLB{},
		ramtab: ramtab,
	}
}

// PageTable exposes the table (for the system domain and tests). The name
// follows the paper; the concrete implementation may be linear or guarded.
func (ts *TranslationSystem) PageTable() Table { return ts.pt }

// TLB exposes the TLB model.
func (ts *TranslationSystem) TLB() *TLB { return ts.tlb }

// Stretches returns the stretch allocator bound to this translation system.
func (ts *TranslationSystem) Stretches() *StretchAllocator { return ts.stretches }

// --- High-level part (system domain only) ---

// insertNullMappings creates present-but-invalid entries for every page of
// st, so accesses raise page faults (not unallocated faults) and protection
// information has somewhere to live.
func (ts *TranslationSystem) insertNullMappings(st *Stretch) {
	for i := 0; i < st.Pages(); i++ {
		ts.pt.Insert(PageOf(st.PageBase(i)), st.id)
	}
}

// removeNullMappings deletes st's entries on destruction.
func (ts *TranslationSystem) removeNullMappings(st *Stretch) {
	for i := 0; i < st.Pages(); i++ {
		vpn := PageOf(st.PageBase(i))
		ts.pt.Delete(vpn)
		ts.tlb.InvalidateVA(vpn)
	}
}

// NewProtectionDomain creates a protection domain with a fresh ASN.
func (ts *TranslationSystem) NewProtectionDomain() (*ProtectionDomain, error) {
	return ts.pds.new()
}

// DestroyProtectionDomain removes pd and invalidates its translations.
func (ts *TranslationSystem) DestroyProtectionDomain(pd *ProtectionDomain) {
	ts.tlb.InvalidateASN(pd.asn)
	ts.pds.remove(pd)
}

// GrantInitial is the system-domain bootstrap path: it installs rights on a
// protection domain without a meta-right check. The stretch allocator uses
// it to give a new stretch's owner its initial rights.
func (ts *TranslationSystem) GrantInitial(pd *ProtectionDomain, sid StretchID, r Rights) {
	pd.setRights(sid, r)
}

// --- Low-level part (application system calls) ---

// checkMeta performs the light-weight validation: the caller's protection
// domain must hold the meta right on the stretch containing va.
func (ts *TranslationSystem) checkMeta(caller *ProtectionDomain, sid StretchID) error {
	if caller == nil || !caller.RightsOn(sid).Has(Meta) {
		return fmt.Errorf("%w on stretch %d", ErrNoMeta, sid)
	}
	return nil
}

// Map arranges that va maps onto pfn with attributes attr, on behalf of
// domain executing in protection domain caller. Validation: va must lie in
// a stretch on which caller holds meta; the frame must be owned by domain
// and currently Unused (checked and transitioned via the RamTab).
func (ts *TranslationSystem) Map(caller *ProtectionDomain, domain mem.DomainID, va VA, pfn mem.PFN, attr Attr) error {
	pte := ts.pt.Lookup(PageOf(va))
	if pte == nil || !pte.Present {
		return fmt.Errorf("%w: %#x", ErrNotAllocated, uint64(va))
	}
	if err := ts.checkMeta(caller, pte.SID); err != nil {
		return err
	}
	if pte.Valid {
		return fmt.Errorf("%w: %#x", ErrAlreadyMapped, uint64(va))
	}
	// Frame validation via the RamTab: the frame must be owned by the
	// domain and currently neither mapped nor nailed.
	if state, err := ts.ramtab.State(pfn); err != nil {
		return err
	} else if state != mem.Unused {
		return fmt.Errorf("%w: frame %d is %s", mem.ErrFrameBusy, pfn, state)
	}
	if err := ts.ramtab.SetState(pfn, domain, mem.Mapped); err != nil {
		return err
	}
	pte.Valid = true
	pte.PFN = pfn
	pte.Attr = attr
	pte.Referenced = false
	pte.Dirty = false
	return nil
}

// Unmap removes the mapping of va. Further access will fault. It returns
// the frame that backed the page and whether it was dirty, which is what a
// paging stretch driver needs to decide about write-back.
func (ts *TranslationSystem) Unmap(caller *ProtectionDomain, domain mem.DomainID, va VA) (mem.PFN, bool, error) {
	pte := ts.pt.Lookup(PageOf(va))
	if pte == nil || !pte.Present {
		return 0, false, fmt.Errorf("%w: %#x", ErrNotAllocated, uint64(va))
	}
	if err := ts.checkMeta(caller, pte.SID); err != nil {
		return 0, false, err
	}
	if !pte.Valid {
		return 0, false, fmt.Errorf("%w: %#x", ErrNotMapped, uint64(va))
	}
	if st, _ := ts.ramtab.State(pte.PFN); st == mem.Nailed {
		return 0, false, fmt.Errorf("mem: frame %d is nailed: %w", pte.PFN, mem.ErrFrameBusy)
	}
	if err := ts.ramtab.SetState(pte.PFN, domain, mem.Unused); err != nil {
		return 0, false, err
	}
	pfn, dirty := pte.PFN, pte.Dirty
	pte.Valid = false
	pte.Referenced = false
	pte.Dirty = false
	ts.tlb.InvalidateVA(PageOf(va))
	return pfn, dirty, nil
}

// MapSuper maps an aligned block of 1<<width pages starting at va onto the
// contiguous frame run starting at basePFN — a superpage mapping the TLB
// can cover with a single wide entry. Validation is per page: the block
// must be width-aligned, lie in stretches the caller holds meta on, and
// every frame must be owned by domain and unused. On any failure the pages
// mapped so far are rolled back.
func (ts *TranslationSystem) MapSuper(caller *ProtectionDomain, domain mem.DomainID, va VA, basePFN mem.PFN, width uint8, attr Attr) error {
	n := 1 << width
	baseVPN := PageOf(va)
	if uint64(baseVPN)%uint64(n) != 0 || uint64(basePFN)%uint64(n) != 0 {
		return fmt.Errorf("%w: superpage base not aligned to %d pages", ErrBadSize, n)
	}
	for i := 0; i < n; i++ {
		pageVA := (baseVPN + VPN(i)).Base()
		if err := ts.Map(caller, domain, pageVA, basePFN+mem.PFN(i), attr); err != nil {
			for j := i - 1; j >= 0; j-- {
				ts.Unmap(caller, domain, (baseVPN + VPN(j)).Base())
			}
			return err
		}
		pte := ts.pt.Lookup(baseVPN + VPN(i))
		pte.Width = width
		ts.ramtab.SetWidth(basePFN+mem.PFN(i), width)
	}
	return nil
}

// Trans retrieves the current mapping of va, if any.
func (ts *TranslationSystem) Trans(va VA) (mem.PFN, Attr, error) {
	pte := ts.pt.Lookup(PageOf(va))
	if pte == nil || !pte.Present {
		return 0, Attr{}, fmt.Errorf("%w: %#x", ErrNotAllocated, uint64(va))
	}
	if !pte.Valid {
		return 0, Attr{}, fmt.Errorf("%w: %#x", ErrNotMapped, uint64(va))
	}
	return pte.PFN, pte.Attr, nil
}

// SetRights changes target's rights on stretch sid to r, provided caller
// holds meta on sid. It reports whether the change was effective (the
// protection scheme detects idempotent changes). This is the
// protection-domain protection path of the microbenchmarks.
func (ts *TranslationSystem) SetRights(caller, target *ProtectionDomain, sid StretchID, r Rights) (bool, error) {
	if err := ts.checkMeta(caller, sid); err != nil {
		return false, err
	}
	return target.setRights(sid, r), nil
}

// ProtectPages changes the per-page protection override bits for every page
// of st — the page-table protection path of the microbenchmarks, which
// touches each PTE individually (Nemesis has no optimised range path, as
// the paper notes). It returns the number of PTEs actually modified.
func (ts *TranslationSystem) ProtectPages(caller *ProtectionDomain, st *Stretch, r Rights) (int, error) {
	if err := ts.checkMeta(caller, st.id); err != nil {
		return 0, err
	}
	changed := 0
	for i := 0; i < st.Pages(); i++ {
		pte := ts.pt.Lookup(PageOf(st.PageBase(i)))
		if pte == nil {
			return changed, fmt.Errorf("%w: page %d of %v", ErrNotAllocated, i, st)
		}
		if pte.Prot != r {
			pte.Prot = r
			changed++
		}
	}
	return changed, nil
}

// Nail pins the frame backing va so it cannot be unmapped or revoked (used
// by nailed stretch drivers and DMA).
func (ts *TranslationSystem) Nail(caller *ProtectionDomain, domain mem.DomainID, va VA) error {
	pte := ts.pt.Lookup(PageOf(va))
	if pte == nil || !pte.Present {
		return fmt.Errorf("%w: %#x", ErrNotAllocated, uint64(va))
	}
	if err := ts.checkMeta(caller, pte.SID); err != nil {
		return err
	}
	if !pte.Valid {
		return fmt.Errorf("%w: %#x", ErrNotMapped, uint64(va))
	}
	return ts.ramtab.SetState(pte.PFN, domain, mem.Nailed)
}

// --- MMU walk (the simulated hardware/PALcode path) ---

// Access performs a memory access check as the MMU would: TLB lookup, page
// table walk on miss, stretch-granularity protection check, FOR/FOW
// referenced/dirty maintenance. On success it returns the PTE; on failure a
// Fault ready for dispatch.
func (ts *TranslationSystem) Access(pd *ProtectionDomain, va VA, acc Access) (*PTE, *Fault) {
	var f Fault
	pte, faulted := ts.AccessInto(pd, va, acc, &f)
	if faulted {
		heap := f
		return nil, &heap
	}
	return pte, nil
}

// AccessInto is Access with a caller-owned fault record: on failure it fills
// *f and reports faulted=true. Hot callers that dispatch faults synchronously
// (the thread blocks until resolution) can reuse one Fault across accesses
// instead of allocating per fault.
func (ts *TranslationSystem) AccessInto(pd *ProtectionDomain, va VA, acc Access, f *Fault) (pte *PTE, faulted bool) {
	vpn := PageOf(va)
	if pd != nil {
		pte = ts.tlb.Lookup(vpn, pd.asn)
	}
	fromTLB := pte != nil
	if pte == nil {
		pte = ts.pt.Lookup(vpn)
	}
	if pte == nil || !pte.Present {
		*f = Fault{VA: va, Class: UnallocatedFault, Access: acc}
		return nil, true
	}
	var rights Rights
	if pd != nil {
		rights = pd.RightsOn(pte.SID)
	}
	rights |= pte.Prot
	if !rights.Has(acc.need()) {
		*f = Fault{VA: va, Class: ProtectionFault, Access: acc, SID: pte.SID}
		return nil, true
	}
	if !pte.Valid {
		*f = Fault{VA: va, Class: PageFault, Access: acc, SID: pte.SID}
		return nil, true
	}
	if !fromTLB && pd != nil {
		if pte.Width > 0 {
			// Fill one wide entry for the whole superpage if every
			// member is still validly mapped; otherwise fall back to a
			// normal single-page fill.
			n := VPN(1) << pte.Width
			base := vpn &^ (n - 1)
			ptes := make([]*PTE, n)
			whole := true
			for i := VPN(0); i < n; i++ {
				m := ts.pt.Lookup(base + i)
				if m == nil || !m.Valid {
					whole = false
					break
				}
				ptes[i] = m
			}
			if whole {
				ts.tlb.FillSuper(base, pd.asn, pte.Width, ptes)
			} else {
				ts.tlb.Fill(vpn, pd.asn, pte)
			}
		} else {
			ts.tlb.Fill(vpn, pd.asn, pte)
		}
	}
	// FOR/FOW emulation: software sets the bits, the DFault path clears
	// them and records referenced/dirty.
	if acc == AccessRead && pte.Attr.FOR {
		pte.Attr.FOR = false
		pte.Referenced = true
	}
	if acc == AccessWrite {
		if pte.Attr.FOW {
			pte.Attr.FOW = false
			pte.Dirty = true
		}
		if pte.Attr.FOR {
			pte.Attr.FOR = false
		}
		pte.Referenced = true
	}
	return pte, false
}

// IsDirty reports whether the page containing va has been written since it
// was mapped (the "dirty" microbenchmark: a PTE lookup plus bit test).
func (ts *TranslationSystem) IsDirty(va VA) (bool, error) {
	pte := ts.pt.Lookup(PageOf(va))
	if pte == nil || !pte.Present {
		return false, fmt.Errorf("%w: %#x", ErrNotAllocated, uint64(va))
	}
	return pte.Dirty, nil
}

// IsReferenced reports whether the page containing va has been accessed.
func (ts *TranslationSystem) IsReferenced(va VA) (bool, error) {
	pte := ts.pt.Lookup(PageOf(va))
	if pte == nil || !pte.Present {
		return false, fmt.Errorf("%w: %#x", ErrNotAllocated, uint64(va))
	}
	return pte.Referenced, nil
}
