package vm

import (
	"math/rand"
	"testing"

	"nemesis/internal/mem"
)

// fuzzWorld is one translation world for the randomized fork test: a guarded
// page table (the satellite requirement — its guard-splitting trie is the
// structurally hardest table to copy) over 256 frames, one stretch, one PD.
type fuzzWorld struct {
	rt *mem.RamTab
	ts *TranslationSystem
	st *Stretch
	pd *ProtectionDomain
}

func newFuzzWorld() *fuzzWorld {
	rt := mem.NewRamTab(256)
	ts := NewTranslationSystemWithTable(rt, NewGuardedPageTable())
	sa := NewStretchAllocator(ts, 0x10000000, 0x80000000)
	st, err := sa.New(1, 128*PageSize)
	if err != nil {
		panic(err)
	}
	pd, err := ts.NewProtectionDomain()
	if err != nil {
		panic(err)
	}
	ts.GrantInitial(pd, st.ID(), Read|Write|Meta)
	for i := mem.PFN(0); i < 256; i++ {
		ownedFrame(rt, i, 1)
	}
	return &fuzzWorld{rt: rt, ts: ts, st: st, pd: pd}
}

// step applies one random page-table operation. Errors are expected (mapping
// an already-mapped page, unmapping a hole, misaligned superpages) — what
// matters is that parent and fork, fed the same random stream, take the same
// path.
func (w *fuzzWorld) step(r *rand.Rand) {
	switch r.Intn(5) {
	case 0: // map a random page to a random frame
		pg := r.Intn(128)
		pfn := mem.PFN(r.Intn(256))
		w.ts.Map(w.pd, 1, w.st.PageBase(pg), pfn, DefaultAttr())
	case 1: // unmap a random page
		w.ts.Unmap(w.pd, 1, w.st.PageBase(r.Intn(128)))
	case 2: // superpage: an aligned run of 2, 4 or 8 pages
		width := uint8(1 + r.Intn(3))
		n := 1 << width
		pg := r.Intn(128/n) * n
		base := mem.PFN(r.Intn(256/n) * n)
		w.ts.MapSuper(w.pd, 1, w.st.PageBase(pg), base, width, DefaultAttr())
	case 3: // access (fills the TLB, sets ref/dirty bits, may fault)
		acc := AccessRead
		if r.Intn(2) == 0 {
			acc = AccessWrite
		}
		w.ts.Access(w.pd, w.st.PageBase(r.Intn(128)), acc)
	case 4: // translate (read-only walk)
		w.ts.Trans(w.st.PageBase(r.Intn(128)))
	}
}

// diff compares every observable of two worlds: per-page translation, PTE
// flags and superpage widths, GPT walk depths, TLB counters and table size.
func diffFuzzWorlds(t *testing.T, a, b *fuzzWorld, tag string) {
	t.Helper()
	for pg := 0; pg < 128; pg++ {
		va := a.st.PageBase(pg)
		apfn, aattr, aerr := a.ts.Trans(va)
		bpfn, battr, berr := b.ts.Trans(va)
		if apfn != bpfn || aattr != battr || (aerr == nil) != (berr == nil) {
			t.Fatalf("%s: page %d trans (%d,%v,%v) vs (%d,%v,%v)", tag, pg, apfn, aattr, aerr, bpfn, battr, berr)
		}
		vpn := PageOf(va)
		ap, bp := a.ts.PageTable().Lookup(vpn), b.ts.PageTable().Lookup(vpn)
		if (ap == nil) != (bp == nil) {
			t.Fatalf("%s: page %d presence differs", tag, pg)
		}
		if ap != nil && *ap != *bp {
			t.Fatalf("%s: page %d PTE %+v vs %+v", tag, pg, *ap, *bp)
		}
		ag, aok := a.ts.PageTable().(*GuardedPageTable)
		bg, bok := b.ts.PageTable().(*GuardedPageTable)
		if aok != bok {
			t.Fatalf("%s: table kinds differ", tag)
		}
		if aok {
			if ad, bd := ag.WalkDepth(vpn), bg.WalkDepth(vpn); ad != bd {
				t.Fatalf("%s: page %d walk depth %d vs %d", tag, pg, ad, bd)
			}
		}
	}
	if a.ts.PageTable().Entries() != b.ts.PageTable().Entries() {
		t.Fatalf("%s: entries %d vs %d", tag, a.ts.PageTable().Entries(), b.ts.PageTable().Entries())
	}
	if a.ts.TLB().Hits() != b.ts.TLB().Hits() || a.ts.TLB().Misses() != b.ts.TLB().Misses() {
		t.Fatalf("%s: TLB (%d,%d) vs (%d,%d)", tag,
			a.ts.TLB().Hits(), a.ts.TLB().Misses(), b.ts.TLB().Hits(), b.ts.TLB().Misses())
	}
}

// TestForkFuzzGPT: N random operations, fork, then K more identical random
// operations on parent and fork — every observable must stay identical, and
// a divergent third stream on the fork must not leak back into the parent.
func TestForkFuzzGPT(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		w := newFuzzWorld()
		warm := rand.New(rand.NewSource(seed))
		n := 50 + warm.Intn(200)
		for i := 0; i < n; i++ {
			w.step(warm)
		}

		nts, maps, err := w.ts.Fork(w.rt.Fork())
		if err != nil {
			t.Fatal(err)
		}
		f := &fuzzWorld{rt: nts.ramtab, ts: nts, st: maps.Stretch[w.st], pd: maps.PD[w.pd]}
		if f.st == nil || f.pd == nil {
			t.Fatal("fork maps missing stretch or PD")
		}
		diffFuzzWorlds(t, w, f, "post-fork")

		ra := rand.New(rand.NewSource(seed * 7919))
		rb := rand.New(rand.NewSource(seed * 7919))
		for i := 0; i < 200; i++ {
			w.step(ra)
			f.step(rb)
		}
		diffFuzzWorlds(t, w, f, "post-replay")

		// Divergence: extra ops on the fork must leave the parent untouched.
		before := snapshotTrans(w)
		rc := rand.New(rand.NewSource(seed * 104729))
		for i := 0; i < 100; i++ {
			f.step(rc)
		}
		if after := snapshotTrans(w); before != after {
			t.Fatalf("seed %d: fork ops mutated the parent", seed)
		}
	}
}

// snapshotTrans folds the parent's translations into a comparable value.
func snapshotTrans(w *fuzzWorld) [128]mem.PFN {
	var out [128]mem.PFN
	for pg := 0; pg < 128; pg++ {
		pfn, _, err := w.ts.Trans(w.st.PageBase(pg))
		if err != nil {
			pfn = ^mem.PFN(0)
		}
		out[pg] = pfn
	}
	return out
}
