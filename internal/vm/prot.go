package vm

import "fmt"

// ProtectionDomain maps each valid stretch to a subset of {read, write,
// execute, meta}. Protection is carried out at stretch granularity; a
// domain executing in a protection domain holding the meta right on a
// stretch may modify protections and mappings on it.
type ProtectionDomain struct {
	id     uint32
	asn    uint16
	rights map[StretchID]Rights
	// changes counts rights updates (idempotent changes excluded), for
	// the microbenchmarks' idempotence check.
	changes int64
}

// ID returns the protection domain identifier.
func (pd *ProtectionDomain) ID() uint32 { return pd.id }

// ASN returns the hardware address-space number backing this protection
// domain in the TLB.
func (pd *ProtectionDomain) ASN() uint16 { return pd.asn }

// RightsOn returns the rights this protection domain holds on a stretch.
func (pd *ProtectionDomain) RightsOn(sid StretchID) Rights { return pd.rights[sid] }

// Changes returns the number of effective (non-idempotent) rights changes.
func (pd *ProtectionDomain) Changes() int64 { return pd.changes }

// setRights updates the mapping, detecting idempotent changes (the paper's
// protection scheme short-circuits them). It reports whether anything
// changed.
func (pd *ProtectionDomain) setRights(sid StretchID, r Rights) bool {
	if cur, ok := pd.rights[sid]; ok && cur == r || !ok && r == 0 {
		return false
	}
	if r == 0 {
		delete(pd.rights, sid)
	} else {
		pd.rights[sid] = r
	}
	pd.changes++
	return true
}

// pdAllocator hands out protection domains with unique ASNs.
type pdAllocator struct {
	nextID  uint32
	nextASN uint16
	pds     []*ProtectionDomain
}

func (a *pdAllocator) new() (*ProtectionDomain, error) {
	if a.nextASN == 0xFFFF {
		return nil, fmt.Errorf("vm: address space numbers exhausted")
	}
	pd := &ProtectionDomain{
		id:     a.nextID,
		asn:    a.nextASN,
		rights: make(map[StretchID]Rights),
	}
	a.nextID++
	a.nextASN++
	a.pds = append(a.pds, pd)
	return pd, nil
}

func (a *pdAllocator) remove(pd *ProtectionDomain) {
	for i := range a.pds {
		if a.pds[i] == pd {
			a.pds = append(a.pds[:i], a.pds[i+1:]...)
			return
		}
	}
}
