package vm

import (
	"fmt"
	"sort"

	"nemesis/internal/mem"
)

// StretchID identifies a stretch.
type StretchID uint32

// Stretch is a range of virtual addresses with a certain accessibility. It
// owns no physical resources: only through its binding to a stretch driver
// (maintained by the owning domain, outside this package) does it acquire
// backing.
type Stretch struct {
	id    StretchID
	base  VA
	size  uint64
	owner mem.DomainID
}

// ID returns the stretch identifier.
func (st *Stretch) ID() StretchID { return st.id }

// Base returns the starting address (always page aligned).
func (st *Stretch) Base() VA { return st.base }

// Size returns the length in bytes (always a multiple of the page size).
func (st *Stretch) Size() uint64 { return st.size }

// Owner returns the owning domain.
func (st *Stretch) Owner() mem.DomainID { return st.owner }

// Pages returns the number of pages.
func (st *Stretch) Pages() int { return int(st.size / PageSize) }

// Contains reports whether va lies inside the stretch.
func (st *Stretch) Contains(va VA) bool {
	return va >= st.base && uint64(va-st.base) < st.size
}

// PageBase returns the base address of the i'th page of the stretch.
func (st *Stretch) PageBase(i int) VA { return st.base + VA(uint64(i)*PageSize) }

func (st *Stretch) String() string {
	return fmt.Sprintf("stretch %d [%#x,+%#x) dom %d", st.id, uint64(st.base), st.size, st.owner)
}

// StretchAllocator hands out non-overlapping stretches from the single
// global virtual address space. Allocation is centralised in the system
// domain, as in the paper; protection and mapping are then per-application
// operations.
type StretchAllocator struct {
	ts     *TranslationSystem
	nextID StretchID
	// byBase holds allocated stretches sorted by base for overlap checks
	// and address lookup.
	byBase []*Stretch
	// low/high bound the allocatable VA range.
	low, high VA
	next      VA
}

// NewStretchAllocator creates an allocator over [low, high) attached to ts.
func NewStretchAllocator(ts *TranslationSystem, low, high VA) *StretchAllocator {
	sa := &StretchAllocator{ts: ts, low: low, high: high, next: low, nextID: 1}
	ts.stretches = sa
	return sa
}

// Find returns the stretch containing va, or nil.
func (sa *StretchAllocator) Find(va VA) *Stretch {
	i := sort.Search(len(sa.byBase), func(i int) bool { return sa.byBase[i].base > va })
	if i == 0 {
		return nil
	}
	st := sa.byBase[i-1]
	if st.Contains(va) {
		return st
	}
	return nil
}

// Lookup returns the stretch with the given ID, or nil.
func (sa *StretchAllocator) Lookup(id StretchID) *Stretch {
	for _, st := range sa.byBase {
		if st.id == id {
			return st
		}
	}
	return nil
}

// overlaps reports whether [base, base+size) intersects any stretch.
func (sa *StretchAllocator) overlaps(base VA, size uint64) bool {
	for _, st := range sa.byBase {
		if base < st.base+VA(st.size) && st.base < base+VA(size) {
			return true
		}
	}
	return false
}

// insert adds st keeping byBase sorted.
func (sa *StretchAllocator) insert(st *Stretch) {
	i := sort.Search(len(sa.byBase), func(i int) bool { return sa.byBase[i].base > st.base })
	sa.byBase = append(sa.byBase, nil)
	copy(sa.byBase[i+1:], sa.byBase[i:])
	sa.byBase[i] = st
}

// New allocates a stretch of size bytes (rounded up to whole pages) for
// owner, choosing the starting address. The owner's protection domain(s)
// are not touched: granting rights is a separate, explicit step — except
// that the translation system records NULL mappings so that accesses fault
// as page faults rather than unallocated-address faults.
func (sa *StretchAllocator) New(owner mem.DomainID, size uint64) (*Stretch, error) {
	if size == 0 {
		return nil, ErrBadSize
	}
	size = (size + PageSize - 1) &^ (PageSize - 1)
	base := sa.next
	for sa.overlaps(base, size) {
		// Skip past the conflicting stretch.
		st := sa.Find(base)
		if st == nil {
			base += PageSize
			continue
		}
		base = st.base + VA(st.size)
	}
	if base+VA(size) > sa.high {
		return nil, fmt.Errorf("%w: need %#x at %#x", ErrNoVAS, size, uint64(base))
	}
	return sa.create(owner, base, size)
}

// NewAt allocates a stretch at a caller-chosen base address.
func (sa *StretchAllocator) NewAt(owner mem.DomainID, base VA, size uint64) (*Stretch, error) {
	if size == 0 || base%PageSize != 0 {
		return nil, ErrBadSize
	}
	size = (size + PageSize - 1) &^ (PageSize - 1)
	if base < sa.low || base+VA(size) > sa.high {
		return nil, fmt.Errorf("%w: [%#x,+%#x) outside VAS", ErrNoVAS, uint64(base), size)
	}
	if sa.overlaps(base, size) {
		return nil, fmt.Errorf("%w at %#x", ErrOverlap, uint64(base))
	}
	return sa.create(owner, base, size)
}

func (sa *StretchAllocator) create(owner mem.DomainID, base VA, size uint64) (*Stretch, error) {
	st := &Stretch{id: sa.nextID, base: base, size: size, owner: owner}
	sa.nextID++
	sa.insert(st)
	if end := base + VA(size); end > sa.next {
		sa.next = end
	}
	// High-level translation system: set up NULL mappings so accesses to
	// the fresh stretch raise page faults, not unallocated faults.
	sa.ts.insertNullMappings(st)
	return st, nil
}

// Destroy removes a stretch. All its pages must be unmapped first; the
// caller (system domain) is trusted, but mapped pages indicate a bug, so
// they are reported.
func (sa *StretchAllocator) Destroy(st *Stretch) error {
	for i := 0; i < st.Pages(); i++ {
		if pte := sa.ts.pt.Lookup(PageOf(st.PageBase(i))); pte != nil && pte.Valid {
			return fmt.Errorf("%w: page %d of %v still mapped", ErrBadStretch, i, st)
		}
	}
	for i := range sa.byBase {
		if sa.byBase[i] == st {
			sa.byBase = append(sa.byBase[:i], sa.byBase[i+1:]...)
			sa.ts.removeNullMappings(st)
			return nil
		}
	}
	return fmt.Errorf("%w: %v not allocated", ErrBadStretch, st)
}
