package vm

import (
	"errors"
	"testing"
	"testing/quick"

	"nemesis/internal/mem"
)

// world builds a translation system with a stretch allocator over a small
// VAS and a RamTab of 64 frames.
func world() (*TranslationSystem, *StretchAllocator, *mem.RamTab) {
	rt := mem.NewRamTab(64)
	ts := NewTranslationSystem(rt)
	sa := NewStretchAllocator(ts, 0x10000000, 0x20000000)
	return ts, sa, rt
}

// ownedFrame grants pfn to domain in the ramtab (bypassing the allocator,
// which is tested in package mem).
func ownedFrame(rt *mem.RamTab, pfn mem.PFN, d mem.DomainID) { rt.Grant(pfn, d, 0) }

func TestRightsString(t *testing.T) {
	if Rights(0).String() != "-" {
		t.Fatal("zero rights string")
	}
	if got := (Read | Write | Execute | Meta).String(); got != "rwxm" {
		t.Fatalf("rights = %q", got)
	}
	if !(Read | Meta).Has(Read) || (Read | Meta).Has(Write) {
		t.Fatal("Has broken")
	}
}

func TestAccessStrings(t *testing.T) {
	if AccessRead.String() != "read" || AccessWrite.String() != "write" || AccessExecute.String() != "execute" {
		t.Fatal("access strings")
	}
	if PageFault.String() != "page" || ProtectionFault.String() != "protection" || UnallocatedFault.String() != "unallocated" {
		t.Fatal("fault strings")
	}
}

func TestStretchAllocation(t *testing.T) {
	_, sa, _ := world()
	st, err := sa.New(1, 3*PageSize+1) // rounds up to 4 pages
	if err != nil {
		t.Fatal(err)
	}
	if st.Pages() != 4 || st.Size() != 4*PageSize {
		t.Fatalf("pages=%d size=%d", st.Pages(), st.Size())
	}
	if st.Base()%PageSize != 0 {
		t.Fatal("base not page aligned")
	}
	if st.Owner() != 1 {
		t.Fatal("owner wrong")
	}
	st2, err := sa.New(2, PageSize)
	if err != nil {
		t.Fatal(err)
	}
	// Non-overlapping.
	if st2.Base() < st.Base()+VA(st.Size()) {
		t.Fatalf("stretches overlap: %v %v", st, st2)
	}
	if sa.Find(st.Base()+100) != st || sa.Find(st2.Base()) != st2 {
		t.Fatal("Find broken")
	}
	if sa.Find(0x0F000000) != nil {
		t.Fatal("Find outside stretches")
	}
	if sa.Lookup(st.ID()) != st || sa.Lookup(9999) != nil {
		t.Fatal("Lookup broken")
	}
	if _, err := sa.New(1, 0); !errors.Is(err, ErrBadSize) {
		t.Fatalf("zero size: %v", err)
	}
}

func TestStretchNewAt(t *testing.T) {
	_, sa, _ := world()
	st, err := sa.NewAt(1, 0x18000000, 2*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if st.Base() != 0x18000000 {
		t.Fatalf("base = %#x", uint64(st.Base()))
	}
	if _, err := sa.NewAt(2, 0x18000000+PageSize, PageSize); !errors.Is(err, ErrOverlap) {
		t.Fatalf("overlap: %v", err)
	}
	if _, err := sa.NewAt(2, 0x18000001, PageSize); !errors.Is(err, ErrBadSize) {
		t.Fatalf("unaligned: %v", err)
	}
	if _, err := sa.NewAt(2, 0x30000000, PageSize); !errors.Is(err, ErrNoVAS) {
		t.Fatalf("outside VAS: %v", err)
	}
	// Allocation after NewAt avoids the hole.
	st2, err := sa.New(1, PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Base() >= 0x18000000 && st2.Base() < 0x18000000+2*PageSize {
		t.Fatal("New handed out overlapping range")
	}
}

func TestVASExhaustion(t *testing.T) {
	ts := NewTranslationSystem(mem.NewRamTab(4))
	sa := NewStretchAllocator(ts, 0, 4*PageSize)
	if _, err := sa.New(1, 5*PageSize); !errors.Is(err, ErrNoVAS) {
		t.Fatalf("err = %v", err)
	}
	if _, err := sa.New(1, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := sa.New(1, PageSize); !errors.Is(err, ErrNoVAS) {
		t.Fatalf("err = %v", err)
	}
}

func TestNullMappingsCreated(t *testing.T) {
	ts, sa, _ := world()
	st, _ := sa.New(1, 2*PageSize)
	pte := ts.PageTable().Lookup(PageOf(st.Base()))
	if pte == nil || !pte.Present || pte.Valid {
		t.Fatalf("NULL mapping wrong: %+v", pte)
	}
	if pte.SID != st.ID() {
		t.Fatal("SID not recorded")
	}
	// Faults distinguish allocated-but-unmapped from unallocated.
	pd, _ := ts.NewProtectionDomain()
	ts.GrantInitial(pd, st.ID(), Read|Write|Meta)
	_, f := ts.Access(pd, st.Base(), AccessRead)
	if f == nil || f.Class != PageFault {
		t.Fatalf("fault = %+v, want page fault", f)
	}
	_, f = ts.Access(pd, 0x0F000000, AccessRead)
	if f == nil || f.Class != UnallocatedFault {
		t.Fatalf("fault = %+v, want unallocated", f)
	}
}

func TestStretchDestroy(t *testing.T) {
	ts, sa, rt := world()
	st, _ := sa.New(1, 2*PageSize)
	pd, _ := ts.NewProtectionDomain()
	ts.GrantInitial(pd, st.ID(), Meta)
	ownedFrame(rt, 3, 1)
	if err := ts.Map(pd, 1, st.Base(), 3, DefaultAttr()); err != nil {
		t.Fatal(err)
	}
	if err := sa.Destroy(st); !errors.Is(err, ErrBadStretch) {
		t.Fatalf("destroy with mapped page: %v", err)
	}
	if _, _, err := ts.Unmap(pd, 1, st.Base()); err != nil {
		t.Fatal(err)
	}
	if err := sa.Destroy(st); err != nil {
		t.Fatal(err)
	}
	if ts.PageTable().Lookup(PageOf(st.Base())) != nil {
		t.Fatal("PTEs survive destroy")
	}
	if err := sa.Destroy(st); !errors.Is(err, ErrBadStretch) {
		t.Fatalf("double destroy: %v", err)
	}
}

func TestMapValidation(t *testing.T) {
	ts, sa, rt := world()
	st, _ := sa.New(1, 2*PageSize)
	pd, _ := ts.NewProtectionDomain()
	// No meta right yet.
	ownedFrame(rt, 5, 1)
	if err := ts.Map(pd, 1, st.Base(), 5, DefaultAttr()); !errors.Is(err, ErrNoMeta) {
		t.Fatalf("map without meta: %v", err)
	}
	ts.GrantInitial(pd, st.ID(), Read|Write|Meta)
	// Mapping an address outside any stretch.
	if err := ts.Map(pd, 1, 0x0F000000, 5, DefaultAttr()); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("map unallocated: %v", err)
	}
	// Mapping a frame not owned by the domain.
	ownedFrame(rt, 6, 2)
	if err := ts.Map(pd, 1, st.Base(), 6, DefaultAttr()); !errors.Is(err, mem.ErrNotOwner) {
		t.Fatalf("map foreign frame: %v", err)
	}
	// Good map.
	if err := ts.Map(pd, 1, st.Base(), 5, DefaultAttr()); err != nil {
		t.Fatal(err)
	}
	// Double map of the VA.
	ownedFrame(rt, 7, 1)
	if err := ts.Map(pd, 1, st.Base(), 7, DefaultAttr()); !errors.Is(err, ErrAlreadyMapped) {
		t.Fatalf("double map: %v", err)
	}
	// Mapping an already-mapped frame elsewhere.
	if err := ts.Map(pd, 1, st.PageBase(1), 5, DefaultAttr()); !errors.Is(err, mem.ErrFrameBusy) {
		t.Fatalf("map busy frame: %v", err)
	}
	// RamTab state tracks.
	if s, _ := rt.State(5); s != mem.Mapped {
		t.Fatalf("frame state = %v", s)
	}
}

func TestUnmapAndTrans(t *testing.T) {
	ts, sa, rt := world()
	st, _ := sa.New(1, PageSize)
	pd, _ := ts.NewProtectionDomain()
	ts.GrantInitial(pd, st.ID(), Read|Write|Meta)
	ownedFrame(rt, 9, 1)
	va := st.Base()
	if _, _, err := ts.Trans(va); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("trans unmapped: %v", err)
	}
	ts.Map(pd, 1, va, 9, DefaultAttr())
	pfn, attr, err := ts.Trans(va)
	if err != nil || pfn != 9 || !attr.FOR || !attr.FOW {
		t.Fatalf("trans = %d %+v %v", pfn, attr, err)
	}
	// Dirty the page, then unmap: dirty reported, frame unused.
	ts.Access(pd, va, AccessWrite)
	gotPFN, dirty, err := ts.Unmap(pd, 1, va)
	if err != nil || gotPFN != 9 || !dirty {
		t.Fatalf("unmap = %d %v %v", gotPFN, dirty, err)
	}
	if s, _ := rt.State(9); s != mem.Unused {
		t.Fatalf("state = %v", s)
	}
	if _, _, err := ts.Unmap(pd, 1, va); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("double unmap: %v", err)
	}
}

func TestProtectionChecks(t *testing.T) {
	ts, sa, rt := world()
	st, _ := sa.New(1, PageSize)
	owner, _ := ts.NewProtectionDomain()
	other, _ := ts.NewProtectionDomain()
	ts.GrantInitial(owner, st.ID(), Read|Write|Meta)
	ts.GrantInitial(other, st.ID(), Read)
	ownedFrame(rt, 2, 1)
	ts.Map(owner, 1, st.Base(), 2, DefaultAttr())

	if _, f := ts.Access(owner, st.Base(), AccessWrite); f != nil {
		t.Fatalf("owner write faulted: %v", f)
	}
	if _, f := ts.Access(other, st.Base(), AccessRead); f != nil {
		t.Fatalf("other read faulted: %v", f)
	}
	_, f := ts.Access(other, st.Base(), AccessWrite)
	if f == nil || f.Class != ProtectionFault {
		t.Fatalf("other write fault = %+v", f)
	}
	_, f = ts.Access(other, st.Base(), AccessExecute)
	if f == nil || f.Class != ProtectionFault {
		t.Fatalf("execute fault = %+v", f)
	}
	// Fault error text is useful.
	if f.Error() == "" {
		t.Fatal("empty fault error")
	}
}

func TestMetaRightForProtection(t *testing.T) {
	ts, sa, _ := world()
	st, _ := sa.New(1, PageSize)
	owner, _ := ts.NewProtectionDomain()
	other, _ := ts.NewProtectionDomain()
	ts.GrantInitial(owner, st.ID(), Read|Write|Meta)
	// other lacks meta: cannot change rights.
	if _, err := ts.SetRights(other, other, st.ID(), Read|Write); !errors.Is(err, ErrNoMeta) {
		t.Fatalf("err = %v", err)
	}
	// owner grants other write access.
	changed, err := ts.SetRights(owner, other, st.ID(), Read|Write)
	if err != nil || !changed {
		t.Fatalf("SetRights = %v %v", changed, err)
	}
	// Idempotent change detected.
	changed, err = ts.SetRights(owner, other, st.ID(), Read|Write)
	if err != nil || changed {
		t.Fatalf("idempotent SetRights = %v %v", changed, err)
	}
	if other.RightsOn(st.ID()) != Read|Write {
		t.Fatal("rights not applied")
	}
	// Revoke to zero removes the entry.
	ts.SetRights(owner, other, st.ID(), 0)
	if other.RightsOn(st.ID()) != 0 {
		t.Fatal("rights not revoked")
	}
}

func TestProtectPages(t *testing.T) {
	ts, sa, _ := world()
	st, _ := sa.New(1, 100*PageSize)
	pd, _ := ts.NewProtectionDomain()
	ts.GrantInitial(pd, st.ID(), Meta)
	n, err := ts.ProtectPages(pd, st, Read)
	if err != nil || n != 100 {
		t.Fatalf("ProtectPages = %d %v", n, err)
	}
	// Idempotent: zero changes.
	n, _ = ts.ProtectPages(pd, st, Read)
	if n != 0 {
		t.Fatalf("idempotent ProtectPages = %d", n)
	}
	// Per-page override grants access without PD rights.
	other, _ := ts.NewProtectionDomain()
	_, f := ts.Access(other, st.Base(), AccessRead)
	if f == nil || f.Class != PageFault {
		// Read allowed by page bits; page unmapped so page fault.
		t.Fatalf("fault = %+v, want page fault (prot passed)", f)
	}
	// Without meta: rejected.
	if _, err := ts.ProtectPages(other, st, Write); !errors.Is(err, ErrNoMeta) {
		t.Fatalf("err = %v", err)
	}
}

func TestFORFOWDirtyReferenced(t *testing.T) {
	ts, sa, rt := world()
	st, _ := sa.New(1, PageSize)
	pd, _ := ts.NewProtectionDomain()
	ts.GrantInitial(pd, st.ID(), Read|Write|Meta)
	ownedFrame(rt, 1, 1)
	va := st.Base()
	ts.Map(pd, 1, va, 1, DefaultAttr())

	if d, _ := ts.IsDirty(va); d {
		t.Fatal("fresh page dirty")
	}
	if r, _ := ts.IsReferenced(va); r {
		t.Fatal("fresh page referenced")
	}
	ts.Access(pd, va, AccessRead)
	if r, _ := ts.IsReferenced(va); !r {
		t.Fatal("read did not set referenced")
	}
	if d, _ := ts.IsDirty(va); d {
		t.Fatal("read set dirty")
	}
	ts.Access(pd, va, AccessWrite)
	if d, _ := ts.IsDirty(va); !d {
		t.Fatal("write did not set dirty")
	}
	// FOW cleared after first write (set by software, cleared by DFault).
	pte := ts.PageTable().Lookup(PageOf(va))
	if pte.Attr.FOW || pte.Attr.FOR {
		t.Fatal("fault bits not cleared")
	}
	if _, err := ts.IsDirty(0x0F000000); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("IsDirty unallocated: %v", err)
	}
	if _, err := ts.IsReferenced(0x0F000000); !errors.Is(err, ErrNotAllocated) {
		t.Fatalf("IsReferenced unallocated: %v", err)
	}
}

func TestTLBBehaviour(t *testing.T) {
	ts, sa, rt := world()
	st, _ := sa.New(1, PageSize)
	pd, _ := ts.NewProtectionDomain()
	ts.GrantInitial(pd, st.ID(), Read|Write|Meta)
	ownedFrame(rt, 1, 1)
	va := st.Base()
	ts.Map(pd, 1, va, 1, DefaultAttr())

	m0 := ts.TLB().Misses()
	ts.Access(pd, va, AccessRead) // miss + fill
	if ts.TLB().Misses() != m0+1 {
		t.Fatal("first access not a TLB miss")
	}
	h0 := ts.TLB().Hits()
	ts.Access(pd, va, AccessRead) // hit
	if ts.TLB().Hits() != h0+1 {
		t.Fatal("second access not a TLB hit")
	}
	// A different ASN does not hit the same entry.
	pd2, _ := ts.NewProtectionDomain()
	ts.GrantInitial(pd2, st.ID(), Read)
	m1 := ts.TLB().Misses()
	ts.Access(pd2, va, AccessRead)
	if ts.TLB().Misses() != m1+1 {
		t.Fatal("cross-ASN access hit")
	}
	// Unmap shoots down all ASNs' entries.
	ts.Unmap(pd, 1, va)
	ownedFrame(rt, 2, 1)
	ts.Map(pd, 1, va, 2, DefaultAttr())
	pte, f := ts.Access(pd, va, AccessRead)
	if f != nil || pte.PFN != 2 {
		t.Fatalf("stale TLB entry after unmap: %+v %v", pte, f)
	}
}

func TestTLBEviction(t *testing.T) {
	var tlb TLB
	pte := &PTE{}
	for i := 0; i < TLBSize+1; i++ {
		tlb.Fill(VPN(i), 1, pte)
	}
	if tlb.Lookup(0, 1) != nil {
		t.Fatal("FIFO victim survived")
	}
	if tlb.Lookup(1, 1) == nil {
		t.Fatal("recent entry evicted")
	}
	tlb.Flush()
	if tlb.Lookup(1, 1) != nil {
		t.Fatal("flush incomplete")
	}
}

func TestDestroyProtectionDomainInvalidatesASN(t *testing.T) {
	ts, sa, rt := world()
	st, _ := sa.New(1, PageSize)
	pd, _ := ts.NewProtectionDomain()
	ts.GrantInitial(pd, st.ID(), Read|Meta)
	ownedFrame(rt, 1, 1)
	ts.Map(pd, 1, st.Base(), 1, DefaultAttr())
	ts.Access(pd, st.Base(), AccessRead)
	asn := pd.ASN()
	ts.DestroyProtectionDomain(pd)
	// Slots for that ASN are gone.
	if ts.TLB().Lookup(PageOf(st.Base()), asn) != nil {
		t.Fatal("ASN entries survive destruction")
	}
}

func TestNail(t *testing.T) {
	ts, sa, rt := world()
	st, _ := sa.New(1, PageSize)
	pd, _ := ts.NewProtectionDomain()
	ts.GrantInitial(pd, st.ID(), Read|Write|Meta)
	ownedFrame(rt, 1, 1)
	va := st.Base()
	if err := ts.Nail(pd, 1, va); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("nail unmapped: %v", err)
	}
	ts.Map(pd, 1, va, 1, DefaultAttr())
	if err := ts.Nail(pd, 1, va); err != nil {
		t.Fatal(err)
	}
	if s, _ := rt.State(1); s != mem.Nailed {
		t.Fatalf("state = %v", s)
	}
	// Nailed pages cannot be unmapped.
	if _, _, err := ts.Unmap(pd, 1, va); !errors.Is(err, mem.ErrFrameBusy) {
		t.Fatalf("unmapped nailed page: %v", err)
	}
}

// Property: map/unmap round trips preserve translation consistency — after
// any sequence, Trans agrees with the last successful Map.
func TestMapUnmapProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		ts, sa, rt := world()
		st, err := sa.New(1, 8*PageSize)
		if err != nil {
			return false
		}
		pd, _ := ts.NewProtectionDomain()
		ts.GrantInitial(pd, st.ID(), Read|Write|Meta)
		for i := 0; i < 16; i++ {
			ownedFrame(rt, mem.PFN(i), 1)
		}
		mapped := map[int]mem.PFN{} // page index -> pfn
		usedPFN := map[mem.PFN]bool{}
		for _, op := range ops {
			page := int(op) % 8
			pfn := mem.PFN(op) % 16
			va := st.PageBase(page)
			if op%2 == 0 {
				err := ts.Map(pd, 1, va, pfn, DefaultAttr())
				_, already := mapped[page]
				if already || usedPFN[pfn] {
					if err == nil {
						return false // must have failed
					}
				} else if err != nil {
					return false
				} else {
					mapped[page] = pfn
					usedPFN[pfn] = true
				}
			} else {
				got, _, err := ts.Unmap(pd, 1, va)
				want, was := mapped[page]
				if !was {
					if err == nil {
						return false
					}
				} else if err != nil || got != want {
					return false
				} else {
					delete(mapped, page)
					delete(usedPFN, want)
				}
			}
			// Trans must agree with the model.
			for pg := 0; pg < 8; pg++ {
				pfn, _, err := ts.Trans(st.PageBase(pg))
				want, ok := mapped[pg]
				if ok != (err == nil) {
					return false
				}
				if ok && pfn != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
