package vm

import (
	"testing"

	"nemesis/internal/mem"
)

func benchWorld(b *testing.B, pages int) (*TranslationSystem, *Stretch, *ProtectionDomain) {
	b.Helper()
	rt := mem.NewRamTab(pages + 8)
	ts := NewTranslationSystem(rt)
	sa := NewStretchAllocator(ts, 0x10000000, 0x80000000)
	st, err := sa.New(1, uint64(pages)*PageSize)
	if err != nil {
		b.Fatal(err)
	}
	pd, _ := ts.NewProtectionDomain()
	ts.GrantInitial(pd, st.ID(), Read|Write|Meta)
	for i := 0; i < pages; i++ {
		rt.Grant(mem.PFN(i), 1, 0)
		if err := ts.Map(pd, 1, st.PageBase(i), mem.PFN(i), DefaultAttr()); err != nil {
			b.Fatal(err)
		}
	}
	return ts, st, pd
}

func BenchmarkLinearTableLookup(b *testing.B) {
	ts, st, _ := benchWorld(b, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ts.PageTable().Lookup(PageOf(st.PageBase(i%128))) == nil {
			b.Fatal("missing")
		}
	}
}

func BenchmarkGuardedTableLookup(b *testing.B) {
	g := NewGuardedPageTable()
	base := VPN(0x10000000 >> PageShift)
	for i := VPN(0); i < 128; i++ {
		g.Insert(base+i, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.Lookup(base+VPN(i%128)) == nil {
			b.Fatal("missing")
		}
	}
}

func BenchmarkAccessTLBHit(b *testing.B) {
	ts, st, pd := benchWorld(b, 8)
	ts.Access(pd, st.Base(), AccessRead) // prime
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, f := ts.Access(pd, st.Base(), AccessRead); f != nil {
			b.Fatal(f)
		}
	}
}

func BenchmarkAccessTLBMiss(b *testing.B) {
	ts, st, pd := benchWorld(b, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// 128 pages > 64 TLB slots: every strided access misses.
		if _, f := ts.Access(pd, st.PageBase(i*3%128), AccessRead); f != nil {
			b.Fatal(f)
		}
	}
}

func BenchmarkMapUnmap(b *testing.B) {
	ts, st, pd := benchWorld(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pfn, _, err := ts.Unmap(pd, 1, st.Base())
		if err != nil {
			b.Fatal(err)
		}
		if err := ts.Map(pd, 1, st.Base(), pfn, DefaultAttr()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProtectPages100(b *testing.B) {
	ts, st, pd := benchWorld(b, 100)
	b.ReportAllocs()
	b.ResetTimer()
	val := Rights(Read)
	for i := 0; i < b.N; i++ {
		val ^= Write
		if _, err := ts.ProtectPages(pd, st, val); err != nil {
			b.Fatal(err)
		}
	}
}
