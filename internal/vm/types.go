// Package vm implements the virtual-memory side of the Nemesis VM system:
// stretches (ranges of the single global virtual address space with
// stretch-granularity protection), the stretch allocator, protection domains
// with explicit meta rights, the linear page table with FOR/FOW-style
// dirty/referenced emulation, a TLB model with address-space numbers, and
// the two-part translation system (high-level page-table management private
// to the system domain; low-level map/unmap/trans validated against meta
// rights and the RamTab).
//
// The package is pure logic: it consumes no simulated time itself. Callers
// (the cpu cost model, the fault dispatcher) charge the simulated costs of
// walking these structures.
package vm

import (
	"errors"
	"fmt"
	"strings"

	"nemesis/internal/mem"
	"nemesis/internal/obs"
)

// PageSize and PageShift mirror the machine page size (8 KB Alpha pages).
const (
	PageSize  = mem.PageSize
	PageShift = 13
)

// VA is a virtual address in the single global address space.
type VA uint64

// VPN is a virtual page number.
type VPN uint64

// PageOf returns the VPN containing va.
func PageOf(va VA) VPN { return VPN(va >> PageShift) }

// Base returns the first address of the page.
func (v VPN) Base() VA { return VA(v) << PageShift }

// Errors returned by the VM system.
var (
	ErrNoVAS         = errors.New("vm: virtual address space exhausted")
	ErrBadStretch    = errors.New("vm: invalid stretch")
	ErrOverlap       = errors.New("vm: requested range overlaps an existing stretch")
	ErrNoMeta        = errors.New("vm: caller lacks meta right")
	ErrNotMapped     = errors.New("vm: virtual address not mapped")
	ErrNotAllocated  = errors.New("vm: virtual address not part of any stretch")
	ErrAlreadyMapped = errors.New("vm: virtual address already mapped")
	ErrBadSize       = errors.New("vm: size must be a positive multiple of the page size")
)

// Right is a single access right.
type Right uint8

// Rights is a set of stretch-granularity access rights. Meta authorises
// changing protections and mappings on the stretch.
type Rights uint8

const (
	Read Rights = 1 << iota
	Write
	Execute
	Meta
)

// Has reports whether all rights in r are present.
func (rs Rights) Has(r Rights) bool { return rs&r == r }

func (rs Rights) String() string {
	if rs == 0 {
		return "-"
	}
	var b strings.Builder
	for _, p := range []struct {
		r Rights
		c byte
	}{{Read, 'r'}, {Write, 'w'}, {Execute, 'x'}, {Meta, 'm'}} {
		if rs.Has(p.r) {
			b.WriteByte(p.c)
		}
	}
	return b.String()
}

// Access is the kind of memory access being attempted.
type Access uint8

const (
	AccessRead Access = iota
	AccessWrite
	AccessExecute
)

func (a Access) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExecute:
		return "execute"
	default:
		return fmt.Sprintf("access(%d)", a)
	}
}

// need returns the right required for access a.
func (a Access) need() Rights {
	switch a {
	case AccessWrite:
		return Write
	case AccessExecute:
		return Execute
	default:
		return Read
	}
}

// FaultClass distinguishes the fault kinds the system domain's NULL-mapping
// scheme lets the kernel tell apart and dispatch separately.
type FaultClass uint8

const (
	// PageFault: the address is allocated and accessible but has no
	// physical frame — the stretch driver must provide one.
	PageFault FaultClass = iota
	// ProtectionFault: the protection domain lacks the needed right.
	ProtectionFault
	// UnallocatedFault: the address is not part of any stretch.
	UnallocatedFault
)

func (c FaultClass) String() string {
	switch c {
	case PageFault:
		return "page"
	case ProtectionFault:
		return "protection"
	case UnallocatedFault:
		return "unallocated"
	default:
		return fmt.Sprintf("fault(%d)", c)
	}
}

// Fault describes a memory fault to be dispatched to the faulting domain.
type Fault struct {
	VA     VA
	Class  FaultClass
	Access Access
	SID    StretchID // stretch containing VA, if any

	// Span is the causal telemetry span opened at dispatch, threaded
	// through whichever path resolves the fault. Nil when telemetry is
	// disabled; every Span method is nil-safe.
	Span *obs.Span
}

func (f *Fault) Error() string {
	return fmt.Sprintf("vm: %s fault on %s at %#x (stretch %d)", f.Class, f.Access, uint64(f.VA), f.SID)
}
