package vm

import "nemesis/internal/mem"

// Attr carries the machine-dependent PTE attribute bits exposed through the
// low-level map interface. FOR/FOW (fault-on-read / fault-on-write) are the
// Alpha bits the implementation uses to emulate referenced and dirty bits:
// they are set by software and cleared by the PALcode DFault path, which in
// this model is the page-table walker itself.
type Attr struct {
	FOR bool
	FOW bool
}

// DefaultAttr is the attribute set used for fresh mappings: both fault bits
// armed so the first read marks Referenced and the first write marks Dirty.
func DefaultAttr() Attr { return Attr{FOR: true, FOW: true} }

// PTE is one page-table entry. Present entries exist for every page of
// every allocated stretch (the "NULL mappings" holding protection
// information); Valid entries additionally carry a physical frame.
type PTE struct {
	Present    bool
	Valid      bool
	PFN        mem.PFN
	SID        StretchID
	Attr       Attr
	Referenced bool
	Dirty      bool
	// Prot holds per-page protection override bits — the page-table
	// protection path. Effective rights on a page are the union of the
	// protection domain's stretch rights and these bits.
	Prot Rights
	// Width is the superpage width: this page was mapped as part of an
	// aligned block of 1<<Width pages backed by contiguous frames, which
	// the TLB may cover with a single wide entry. 0 = a normal page.
	Width uint8
}

// PageTable is the linear page table: conceptually an array over the whole
// virtual address space (the paper uses an 8 GB linear array mapped through
// a secondary table); here a sparse map with identical semantics. All
// lookups run real code whose simulated cost the cpu package charges.
type PageTable struct {
	entries map[VPN]*PTE
	lookups int64
}

// NewPageTable returns an empty table.
func NewPageTable() *PageTable {
	return &PageTable{entries: make(map[VPN]*PTE)}
}

// Lookups returns the number of entry lookups performed (walk count).
func (pt *PageTable) Lookups() int64 { return pt.lookups }

// Lookup returns the entry for vpn, or nil if the page is unallocated.
func (pt *PageTable) Lookup(vpn VPN) *PTE {
	pt.lookups++
	return pt.entries[vpn]
}

// Insert creates a NULL (present, invalid) entry for vpn belonging to sid.
func (pt *PageTable) Insert(vpn VPN, sid StretchID) {
	pt.entries[vpn] = &PTE{Present: true, SID: sid}
}

// Delete removes the entry for vpn entirely (stretch destruction).
func (pt *PageTable) Delete(vpn VPN) {
	delete(pt.entries, vpn)
}

// Entries returns the number of present entries.
func (pt *PageTable) Entries() int { return len(pt.entries) }

// tlbEntry is one TLB slot, tagged with an address-space number so context
// switches need no flush. A slot may cover a superpage: an aligned block of
// 1<<width pages whose per-page PTEs are carried so the walker still sees
// the right frame and dirty bits ("multiple TLB page sizes" is one of the
// hardware features the paper faults other systems for hiding).
type tlbEntry struct {
	valid bool
	vpn   VPN // block base
	asn   uint16
	width uint8
	ptes  []*PTE  // 1<<width entries, indexed by vpn-base
	pte0  [1]*PTE // inline storage for width-0 entries (no fill alloc)
}

func (e *tlbEntry) covers(vpn VPN) bool {
	return e.valid && vpn >= e.vpn && vpn < e.vpn+VPN(1)<<e.width
}

// TLBSize matches the Alpha 21164 data TLB (64 entries, fully associative;
// replacement here is FIFO via a cursor, which is deterministic).
const TLBSize = 64

// TLB models the translation look-aside buffer. It exists so that the
// microbenchmarks exercise a realistic lookup path (hit/miss accounting)
// and so unmap must perform shootdown.
type TLB struct {
	slots  [TLBSize]tlbEntry
	cursor int
	// idx finds the valid width-0 slot for (vpn, asn) without scanning all
	// 64 slots; the slot array stays the ground truth. nSuper counts valid
	// superpage slots so the scan fallback runs only when one could hit.
	idx    map[tlbKey]int
	nSuper int
	hits   int64
	misses int64
}

// tlbKey indexes width-0 translations.
type tlbKey struct {
	vpn VPN
	asn uint16
}

// dropSlot invalidates slot i and unhooks it from the index bookkeeping.
func (t *TLB) dropSlot(i int) {
	e := &t.slots[i]
	if !e.valid {
		return
	}
	e.valid = false
	if e.width == 0 {
		k := tlbKey{e.vpn, e.asn}
		if j, ok := t.idx[k]; ok && j == i {
			delete(t.idx, k)
		}
	} else {
		t.nSuper--
	}
}

// Hits returns the hit count.
func (t *TLB) Hits() int64 { return t.hits }

// Misses returns the miss count.
func (t *TLB) Misses() int64 { return t.misses }

// Lookup returns the cached PTE for (vpn, asn), if any. Superpage entries
// hit for every page they cover.
func (t *TLB) Lookup(vpn VPN, asn uint16) *PTE {
	if i, ok := t.idx[tlbKey{vpn, asn}]; ok {
		t.hits++
		return t.slots[i].ptes[0]
	}
	if t.nSuper > 0 {
		for i := range t.slots {
			e := &t.slots[i]
			if e.asn == asn && e.covers(vpn) {
				t.hits++
				return e.ptes[vpn-e.vpn]
			}
		}
	}
	t.misses++
	return nil
}

// Fill installs a normal (width 0) translation, evicting FIFO.
func (t *TLB) Fill(vpn VPN, asn uint16, pte *PTE) {
	if t.idx == nil {
		t.idx = make(map[tlbKey]int, TLBSize)
	}
	t.dropSlot(t.cursor)
	e := &t.slots[t.cursor]
	*e = tlbEntry{valid: true, vpn: vpn, asn: asn}
	e.pte0[0] = pte
	e.ptes = e.pte0[:1]
	t.idx[tlbKey{vpn, asn}] = t.cursor
	t.cursor = (t.cursor + 1) % TLBSize
}

// FillSuper installs a superpage translation covering 1<<width pages from
// base. ptes must hold the per-page entries in order.
func (t *TLB) FillSuper(base VPN, asn uint16, width uint8, ptes []*PTE) {
	t.dropSlot(t.cursor)
	t.slots[t.cursor] = tlbEntry{valid: true, vpn: base, asn: asn, width: width, ptes: ptes}
	t.nSuper++
	t.cursor = (t.cursor + 1) % TLBSize
}

// InvalidateVA removes all translations covering vpn (any ASN) — the
// shootdown unmap performs. A superpage entry containing the page is
// dropped whole.
func (t *TLB) InvalidateVA(vpn VPN) {
	for i := range t.slots {
		if t.slots[i].covers(vpn) {
			t.dropSlot(i)
		}
	}
}

// InvalidateASN removes all translations for one address-space number
// (protection-domain destruction).
func (t *TLB) InvalidateASN(asn uint16) {
	for i := range t.slots {
		if t.slots[i].valid && t.slots[i].asn == asn {
			t.dropSlot(i)
		}
	}
}

// Flush empties the TLB.
func (t *TLB) Flush() {
	for i := range t.slots {
		t.dropSlot(i)
	}
}
