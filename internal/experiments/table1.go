package experiments

import (
	"fmt"
	"time"

	"nemesis/internal/atropos"
	"nemesis/internal/baseline"
	"nemesis/internal/core"
	"nemesis/internal/domain"
	"nemesis/internal/mem"
	"nemesis/internal/vm"
)

// Table1Row is one line of the comparative micro-benchmark table. Values
// are microseconds per operation. AltUS is the bracketed protection-domain
// variant where the paper reports one (0 = not applicable).
type Table1Row struct {
	Name      string
	NemesisUS float64
	AltUS     float64
	OSF1US    float64
	// PaperNemesisUS/PaperOSF1US are the paper's published values, for
	// EXPERIMENTS.md's paper-vs-measured comparison.
	PaperNemesisUS, PaperAltUS, PaperOSF1US float64
}

// Table1 runs all six micro-benchmarks on the simulated Nemesis paths and
// composes the OSF1 comparison column from the baseline cost model.
func Table1() ([]Table1Row, error) {
	const pages = 100
	const iters = 256

	cfg := core.DefaultConfig()
	cfg.MemoryFrames = 256
	sys := core.New(cfg)
	costs := cfg.Costs
	osf1 := baseline.DefaultOSF1Costs()

	dom, err := sys.NewDomain("bench", atropos.QoS{P: 100 * time.Millisecond, S: 90 * time.Millisecond, X: true}, mem.Contract{Guaranteed: pages + 8})
	if err != nil {
		return nil, err
	}
	st, _, err := sys.NewPhysicalStretch(dom, pages*vm.PageSize)
	if err != nil {
		return nil, err
	}
	// A second single-page stretch for the prot1 benchmarks.
	st1, _, err := sys.NewPhysicalStretch(dom, vm.PageSize)
	if err != nil {
		return nil, err
	}

	ts := sys.TS
	var rows []Table1Row
	done := make(chan struct{}, 1)

	dom.Go("bench", func(t *domain.Thread) {
		rng := sys.Sim.Rand()
		if err := core.PreallocateFrames(t, pages+1); err != nil {
			return
		}
		// Map everything up front (touch every page).
		if err := t.Touch(st.Base(), pages*vm.PageSize, vm.AccessWrite); err != nil {
			return
		}
		if err := t.Touch(st1.Base(), vm.PageSize, vm.AccessWrite); err != nil {
			return
		}

		perOp := func(fn func()) float64 {
			t0 := t.Now()
			for i := 0; i < iters; i++ {
				fn()
			}
			return t.Now().Sub(t0).Seconds() * 1e6 / iters
		}

		// --- dirty: look up a random PTE and examine its dirty bit.
		dirty := perOp(func() {
			va := st.PageBase(rng.Intn(pages))
			ts.IsDirty(va)
			t.Compute(costs.PTLookup)
		})
		rows = append(rows, Table1Row{
			Name: "dirty", NemesisUS: dirty, OSF1US: 0,
			PaperNemesisUS: 0.15,
		})

		// --- prot1: (un)protect a random page. Page-table path: all
		// pages of a stretch share permissions, so this is a 1-page
		// stretch protect. Alternating values so nothing is idempotent.
		val := vm.Rights(vm.Read)
		prot1 := perOp(func() {
			val ^= vm.Write
			n, _ := ts.ProtectPages(dom.PD(), st1, val)
			t.Compute(costs.SyscallOverhead + time.Duration(n)*costs.PTEUpdate)
		})
		// Protection-domain path.
		val = vm.Read
		prot1pd := perOp(func() {
			val ^= vm.Write
			changed, _ := ts.SetRights(dom.PD(), dom.PD(), st1.ID(), val|vm.Meta)
			if changed {
				t.Compute(costs.SyscallOverhead + costs.PDChange)
			} else {
				t.Compute(costs.IdempotentProt)
			}
		})
		rows = append(rows, Table1Row{
			Name: "(un)prot1", NemesisUS: prot1, AltUS: prot1pd,
			OSF1US:         osf1.Prot(1).Seconds() * 1e6,
			PaperNemesisUS: 0.42, PaperAltUS: 0.40, PaperOSF1US: 3.36,
		})

		// --- prot100: (un)protect a range of 100 pages, alternating.
		val = vm.Read
		prot100 := perOp(func() {
			val ^= vm.Write
			n, _ := ts.ProtectPages(dom.PD(), st, val)
			t.Compute(costs.SyscallOverhead + time.Duration(n)*costs.PTEUpdate)
		})
		val = vm.Read
		prot100pd := perOp(func() {
			val ^= vm.Write
			changed, _ := ts.SetRights(dom.PD(), dom.PD(), st.ID(), val|vm.Meta)
			if changed {
				t.Compute(costs.SyscallOverhead + costs.PDChange)
			} else {
				t.Compute(costs.IdempotentProt)
			}
		})
		rows = append(rows, Table1Row{
			Name: "(un)prot100", NemesisUS: prot100, AltUS: prot100pd,
			OSF1US:         osf1.Prot(100).Seconds() * 1e6,
			PaperNemesisUS: 10.78, PaperAltUS: 0.30, PaperOSF1US: 5.14,
		})
		// Restore full page access for the following benchmarks.
		ts.ProtectPages(dom.PD(), st, 0)
		ts.GrantInitial(dom.PD(), st.ID(), vm.Read|vm.Write|vm.Execute|vm.Meta)

		// --- trap: time to take a fault to a user-space handler. We
		// revoke write permission and install a protection-fault handler
		// that re-grants it; the uncharged reset keeps the loop faulting.
		dom.SetFaultHandler(vm.ProtectionFault, func(th *domain.Thread, f *vm.Fault) bool {
			ts.GrantInitial(dom.PD(), f.SID, vm.Read|vm.Write|vm.Execute|vm.Meta)
			return true
		})
		trap := perOp(func() {
			ts.GrantInitial(dom.PD(), st.ID(), vm.Read|vm.Meta) // uncharged re-arm
			t.Touch(st.PageBase(rng.Intn(pages)), 1, vm.AccessWrite)
		})
		rows = append(rows, Table1Row{
			Name: "trap", NemesisUS: trap,
			OSF1US:         osf1.Trap().Seconds() * 1e6,
			PaperNemesisUS: 4.20, PaperOSF1US: 10.33,
		})

		// --- appel1 (prot1+trap+unprot): access a random protected page;
		// the handler unprotects it and protects another. Protection here
		// uses the per-page override bits; the handler charges two
		// single-page protection operations.
		for i := 0; i < pages; i++ {
			ts.PageTable().Lookup(vm.PageOf(st.PageBase(i))).Prot = vm.Read
		}
		ts.GrantInitial(dom.PD(), st.ID(), vm.Read|vm.Meta) // PD grants read only
		prev := 0
		dom.SetFaultHandler(vm.ProtectionFault, func(th *domain.Thread, f *vm.Fault) bool {
			pte := ts.PageTable().Lookup(vm.PageOf(f.VA))
			pte.Prot = vm.Read | vm.Write
			th.Compute(costs.SyscallOverhead + costs.PTEUpdate)
			ts.PageTable().Lookup(vm.PageOf(st.PageBase(prev))).Prot = vm.Read
			th.Compute(costs.SyscallOverhead + costs.PTEUpdate)
			prev = int(vm.PageOf(f.VA) - vm.PageOf(st.Base()))
			return true
		})
		appel1 := perOp(func() {
			t.Touch(st.PageBase(rng.Intn(pages)), 1, vm.AccessWrite)
		})
		rows = append(rows, Table1Row{
			Name: "appel1", NemesisUS: appel1,
			OSF1US:         osf1.Appel1().Seconds() * 1e6,
			PaperNemesisUS: 5.33, PaperOSF1US: 24.08,
		})
		dom.SetFaultHandler(vm.ProtectionFault, nil)
		ts.GrantInitial(dom.PD(), st.ID(), vm.Read|vm.Write|vm.Execute|vm.Meta)

		// --- appel2 (protN+trap+unprot): protect 100 pages, access each
		// in random order, unprotect in the handler. The protection model
		// forbids per-page permissions within a stretch, so Nemesis
		// unmaps all pages and the handler maps the faulted one back
		// (the paper does exactly this).
		frames := make(map[vm.VPN]mem.PFN, pages)
		dom.SetFaultHandler(vm.PageFault, func(th *domain.Thread, f *vm.Fault) bool {
			vpn := vm.PageOf(f.VA)
			if err := ts.Map(dom.PD(), dom.ID(), vpn.Base(), frames[vpn], vm.DefaultAttr()); err != nil {
				return false
			}
			th.Compute(costs.SyscallOverhead + costs.MapUnmap)
			return true
		})
		order := rng.Perm(pages)
		t0 := t.Now()
		// "protN": unmap every page (one charged op each).
		for i := 0; i < pages; i++ {
			va := st.PageBase(i)
			pfn, _, err := ts.Unmap(dom.PD(), dom.ID(), va)
			if err != nil {
				return
			}
			frames[vm.PageOf(va)] = pfn
			t.Compute(costs.SyscallOverhead + costs.MapUnmap)
		}
		// trap+unprot per page, random order.
		for _, pg := range order {
			if err := t.Touch(st.PageBase(pg), 1, vm.AccessWrite); err != nil {
				return
			}
		}
		appel2 := t.Now().Sub(t0).Seconds() * 1e6 / pages
		rows = append(rows, Table1Row{
			Name: "appel2", NemesisUS: appel2,
			OSF1US:         osf1.Appel2().Seconds() * 1e6,
			PaperNemesisUS: 9.75, PaperOSF1US: 19.12,
		})
		dom.SetFaultHandler(vm.PageFault, nil)
		done <- struct{}{}
	})

	sys.Run(5 * time.Minute)
	select {
	case <-done:
	default:
		return nil, fmt.Errorf("experiments: table1 bench did not finish (sim %v)", sys.Sim.Now())
	}
	sys.Shutdown()
	return rows, nil
}

// FormatTable1 renders the rows like the paper's table.
func FormatTable1(rows []Table1Row) string {
	out := fmt.Sprintf("%-12s %12s %12s %12s   %s\n", "benchmark", "nemesis(us)", "[pd](us)", "osf1(us)", "paper: nemesis [pd] / osf1")
	for _, r := range rows {
		alt := "-"
		if r.AltUS > 0 {
			alt = fmt.Sprintf("%.2f", r.AltUS)
		}
		osf := "n/a"
		if r.OSF1US > 0 {
			osf = fmt.Sprintf("%.2f", r.OSF1US)
		}
		paperAlt := ""
		if r.PaperAltUS > 0 {
			paperAlt = fmt.Sprintf(" [%.2f]", r.PaperAltUS)
		}
		paperOSF := "n/a"
		if r.PaperOSF1US > 0 {
			paperOSF = fmt.Sprintf("%.2f", r.PaperOSF1US)
		}
		out += fmt.Sprintf("%-12s %12.2f %12s %12s   %.2f%s / %s\n",
			r.Name, r.NemesisUS, alt, osf, r.PaperNemesisUS, paperAlt, paperOSF)
	}
	return out
}
