package experiments

import (
	"fmt"
	"time"

	"nemesis/internal/atropos"
	"nemesis/internal/core"
	"nemesis/internal/domain"
	"nemesis/internal/experiments/sweep"
	"nemesis/internal/mem"
	"nemesis/internal/stretchdrv"
	"nemesis/internal/trace"
	"nemesis/internal/usd"
	"nemesis/internal/vm"
	"nemesis/internal/workload"
)

// DepthResult is the pipeline-depth sweep (extension E1): the paper's FS
// client "trades off additional buffer space against disk latency" by
// pipelining transactions; this measures that trade-off.
type DepthResult struct {
	Depths []int
	Mbps   []float64
}

// ExtensionPipelineDepth measures FS-client throughput against IO-channel
// depth under the paper's 50% contract. The client spends 2 ms of
// application processing per completed page, so a shallow pipeline leaves
// the disk idle between its transactions (charged as lax time) while a deep
// one overlaps processing with disk service.
func ExtensionPipelineDepth(depths []int, measure time.Duration) (*DepthResult, error) {
	res := &DepthResult{Depths: depths}
	for _, depth := range depths {
		cfg := core.DefaultConfig()
		cfg.MemoryFrames = 512
		sys := core.New(cfg)
		part := usd.Extent{Start: 0, Count: sys.Disk.Geom.TotalBlocks / 4}
		fcfg := workload.DefaultFSClientConfig("fs", part)
		fcfg.Depth = depth
		fcfg.ProcessTime = 2 * time.Millisecond
		fcfg.SampleEvery = time.Second
		var set trace.SeriesSet
		fc, err := workload.StartFSClient(sys, fcfg, set.New("fs"))
		if err != nil {
			return nil, err
		}
		sys.Run(measure)
		fc.Stop()
		res.Mbps = append(res.Mbps, set.Get("fs").Mean())
		sys.Shutdown()
	}
	return res, nil
}

// StreamPagingResult compares demand paging against the stream-paging
// driver (extension E4 — the paper's §8: "the current stretch driver
// implementation ... could be extended to handle additional pipe-lining via
// a 'stream-paging' scheme"). The workload models a continuous-media
// consumer: sequential reads with 1 ms of processing per page, so demand
// paging serialises disk and CPU while stream paging overlaps them.
type StreamPagingResult struct {
	DemandMbps    float64
	StreamingMbps float64
	// Prefetches / PrefetchedUsed report predictor effectiveness.
	Prefetches, PrefetchedUsed int64
}

// Speedup returns streaming/demand throughput.
func (r *StreamPagingResult) Speedup() float64 {
	if r.DemandMbps == 0 {
		return 0
	}
	return r.StreamingMbps / r.DemandMbps
}

// ExtensionStreamPaging measures both drivers on the CM-consumer workload.
func ExtensionStreamPaging(measure time.Duration) (*StreamPagingResult, error) {
	const (
		virt    = 2 << 20 // 256 pages
		frames  = 16
		window  = 8
		perPage = time.Millisecond
	)
	demandQ := atropos.QoS{P: 250 * time.Millisecond, S: 100 * time.Millisecond, X: true, L: 10 * time.Millisecond}
	prefetchQ := atropos.QoS{P: 250 * time.Millisecond, S: 100 * time.Millisecond, X: true, L: 10 * time.Millisecond}

	run := func(streaming bool) (float64, int64, int64, error) {
		cfg := core.DefaultConfig()
		cfg.MemoryFrames = 1024
		sys := core.New(cfg)
		// Slack on: the disk is otherwise idle, so the comparison is
		// about latency overlap, not slice budgets.
		sys.USD.SlackEnabled = true
		dom, err := sys.NewDomain("cm",
			atropos.QoS{P: 100 * time.Millisecond, S: 80 * time.Millisecond, X: true},
			mem.Contract{Guaranteed: frames})
		if err != nil {
			return 0, 0, 0, err
		}
		var st *vm.Stretch
		var drv *stretchdrv.Streaming
		if streaming {
			st, drv, err = sys.NewStreamingStretch(dom, virt, 2*virt, demandQ, prefetchQ, window)
		} else {
			st, _, err = sys.NewPagedStretch(dom, virt, 2*virt, demandQ)
		}
		if err != nil {
			return 0, 0, 0, err
		}
		var bytes int64
		ready := false
		dom.Go("main", func(t *domain.Thread) {
			core.PreallocateFrames(t, frames)
			// Initialise: dirty every page so it all lands in swap.
			if err := t.Touch(st.Base(), virt, vm.AccessWrite); err != nil {
				return
			}
			ready = true
			marker := t.Now()
			_ = marker
			for {
				for off := 0; off < virt; off += vm.PageSize {
					if err := t.Touch(st.Base()+vm.VA(off), vm.PageSize, vm.AccessRead); err != nil {
						return
					}
					t.Compute(perPage) // per-page CM processing
					if ready {
						bytes += int64(vm.PageSize)
					}
				}
			}
		})
		// Let initialisation finish, then measure.
		for i := 0; i < 300 && !ready; i++ {
			sys.Run(time.Second)
		}
		if !ready {
			return 0, 0, 0, fmt.Errorf("experiments: stream-paging init did not finish")
		}
		bytes = 0
		sys.Run(measure)
		mbps := float64(bytes) * 8 / 1e6 / measure.Seconds()
		var pf, used int64
		if drv != nil {
			pf, used = drv.Prefetches, drv.PrefetchedUsed
		}
		sys.Shutdown()
		return mbps, pf, used, nil
	}

	res := &StreamPagingResult{}
	var err error
	if res.DemandMbps, _, _, err = run(false); err != nil {
		return nil, err
	}
	if res.StreamingMbps, res.Prefetches, res.PrefetchedUsed, err = run(true); err != nil {
		return nil, err
	}
	return res, nil
}

// GPTResult compares dirty-bit lookup cost on the linear page table against
// the guarded page table (extension E3): the paper notes its "earlier
// implementation using guarded page tables was about three times slower".
type GPTResult struct {
	LinearUS  float64
	GuardedUS float64
}

// Slowdown returns guarded/linear.
func (r *GPTResult) Slowdown() float64 {
	if r.LinearUS == 0 {
		return 0
	}
	return r.GuardedUS / r.LinearUS
}

// ExtensionGuardedPT runs the dirty micro-benchmark over both table
// implementations, charging the per-node walk cost for each lookup.
func ExtensionGuardedPT() (*GPTResult, error) {
	const pages = 100
	const iters = 4096
	costs := core.DefaultConfig().Costs

	run := func(table vm.Table) float64 {
		// Populate like a real system: several stretches' NULL mappings
		// plus the benchmark stretch, clustered as the stretch allocator
		// would lay them out.
		base := vm.VPN(0x1000000000 >> 13)
		for i := vm.VPN(0); i < pages; i++ {
			table.Insert(base+i, 1)
		}
		for i := vm.VPN(0); i < 64; i++ { // a neighbouring stretch
			table.Insert(base+4096+i, 2)
		}
		rng := core.New(core.DefaultConfig()).Sim.Rand()
		var total time.Duration
		for i := 0; i < iters; i++ {
			vpn := base + vm.VPN(rng.Intn(pages))
			depth := table.WalkDepth(vpn)
			if pte := table.Lookup(vpn); pte == nil {
				return 0
			}
			// The terminal access costs a full PTLookup (entry fetch plus
			// the dirty-bit test); each extra trie node is a pointer
			// chase at GPTNodeVisit. The linear table has depth 1, so it
			// charges exactly PTLookup.
			total += costs.PTLookup + time.Duration(depth-1)*costs.GPTNodeVisit
		}
		return total.Seconds() * 1e6 / iters
	}
	res := &GPTResult{
		LinearUS:  run(vm.NewPageTable()),
		GuardedUS: run(vm.NewGuardedPageTable()),
	}
	return res, nil
}

// PolicyComparison is one replacement policy's showing on the E2 hot-set
// workload.
type PolicyComparison struct {
	Policy stretchdrv.PolicyKind
	// PageInsPerMB is the paging rate: page-ins per megabyte of
	// application progress.
	PageInsPerMB float64
	Mbps         float64
	// Spares counts pages the policy re-armed instead of evicting.
	Spares int64
}

// EvictionResult compares the paged driver's FIFO policy against the
// second-chance refinement (extension E2 — the paper notes its "fairly pure
// demand paged scheme ... can clearly be improved"). The metric is paging
// *rate*: page-ins per megabyte of application progress (total page-ins
// over a fixed window reward the better policy's higher progress, so the
// rate is the honest comparison).
type EvictionResult struct {
	FIFOPageInsPerMB         float64
	SecondChancePageInsPerMB float64
	FIFOMbps                 float64
	SecondChanceMbps         float64
}

// ExtensionEvictionPolicies runs the E2 hot-set workload once per
// replacement policy, selected through the pager spec: a hot page set
// re-referenced between every cold access, so reference-aware policies
// (second chance, clock) keep it resident while FIFO keeps evicting it.
func ExtensionEvictionPolicies(measure time.Duration, kinds []stretchdrv.PolicyKind) ([]PolicyComparison, error) {
	return sweep.Map(kinds, func(kind stretchdrv.PolicyKind) (PolicyComparison, error) {
		return evictionPolicyCell(measure, kind)
	})
}

// evictionPolicyCell is one policy's independent run.
func evictionPolicyCell(measure time.Duration, kind stretchdrv.PolicyKind) (PolicyComparison, error) {
	cfg := core.DefaultConfig()
	cfg.MemoryFrames = 512
	sys := core.New(cfg)
	dom, err := sys.NewDomain("app",
		atropos.QoS{P: 100 * time.Millisecond, S: 20 * time.Millisecond, X: true},
		mem.Contract{Guaranteed: 6})
	if err != nil {
		return PolicyComparison{}, err
	}
	st, gdrv, err := sys.NewStretch(dom, core.PagerSpec{
		Kind:      core.KindPaged,
		Size:      16 * vm.PageSize,
		SwapBytes: 64 * vm.PageSize,
		DiskQoS:   atropos.QoS{P: 250 * time.Millisecond, S: 200 * time.Millisecond, X: true, L: 10 * time.Millisecond},
		Policy:    kind,
	})
	if err != nil {
		return PolicyComparison{}, err
	}
	drv := gdrv.(*stretchdrv.Paged)
	dom.Go("main", func(t *domain.Thread) {
		core.PreallocateFrames(t, 6)
		// A 3-page hot set re-touched (several times) between every
		// cold access, plus a 13-page cold stream, over 6 frames.
		// FIFO evicts hot pages as they age; second chance sees their
		// referenced bits refreshed between evictions and spares
		// them. (The re-touches between consecutive evictions are
		// what distinguish the policies: under total thrash CLOCK
		// degenerates to FIFO.)
		for {
			for pg := 3; pg < 16; pg++ {
				if err := t.Touch(st.PageBase(pg), vm.PageSize, vm.AccessRead); err != nil {
					return
				}
				for rep := 0; rep < 3; rep++ {
					for h := 0; h < 3; h++ {
						if err := t.Touch(st.PageBase(h), vm.PageSize, vm.AccessRead); err != nil {
							return
						}
					}
				}
			}
		}
	})
	sys.Run(measure)
	sys.Shutdown()
	pc := PolicyComparison{Policy: kind, Spares: drv.Stats.Spares}
	if mb := float64(dom.Stats().BytesTouched) / (1 << 20); mb > 0 {
		pc.PageInsPerMB = float64(drv.Stats.PageIns) / mb
		pc.Mbps = mb * 8 / measure.Seconds()
	}
	return pc, nil
}

// ExtensionSecondChance runs the FIFO vs second-chance pair of the policy
// comparison (the historical E2 shape).
func ExtensionSecondChance(measure time.Duration) (*EvictionResult, error) {
	rows, err := ExtensionEvictionPolicies(measure,
		[]stretchdrv.PolicyKind{stretchdrv.PolicyFIFO, stretchdrv.PolicySecondChance})
	if err != nil {
		return nil, err
	}
	return &EvictionResult{
		FIFOPageInsPerMB:         rows[0].PageInsPerMB,
		SecondChancePageInsPerMB: rows[1].PageInsPerMB,
		FIFOMbps:                 rows[0].Mbps,
		SecondChanceMbps:         rows[1].Mbps,
	}, nil
}

// ClusteringResult reports the write-clustering sweep: the same forgetful
// page-out workload (Fig. 8's shape) run at several cluster sizes. A
// cleaning batch of disk-contiguous pages goes out as one USD transaction,
// so TxnsPerPageOut drops below 1 as ClusterSize grows — the rotation
// amortisation conventional VM systems get from write clustering.
type ClusteringResult struct {
	Sizes []int
	// PageOuts / WriteTxns are pages cleaned and the disk transactions
	// they merged into; TxnsPerPageOut is their ratio.
	PageOuts       []int64
	WriteTxns      []int64
	TxnsPerPageOut []float64
	Mbps           []float64
}

// ExtensionWriteClustering measures eviction-time write batching: a
// forgetful writer (never pages in, every eviction must clean) over a small
// frame grant, at each cluster size.
func ExtensionWriteClustering(measure time.Duration, sizes []int) (*ClusteringResult, error) {
	cells, err := sweep.Map(sizes, func(size int) (clusteringCell, error) {
		return writeClusteringCell(measure, size)
	})
	if err != nil {
		return nil, err
	}
	res := &ClusteringResult{Sizes: sizes}
	for _, c := range cells {
		res.PageOuts = append(res.PageOuts, c.pageOuts)
		res.WriteTxns = append(res.WriteTxns, c.writeTxns)
		res.TxnsPerPageOut = append(res.TxnsPerPageOut, c.ratio)
		res.Mbps = append(res.Mbps, c.mbps)
	}
	return res, nil
}

// clusteringCell is one cluster size's measurements.
type clusteringCell struct {
	pageOuts, writeTxns int64
	ratio, mbps         float64
}

func writeClusteringCell(measure time.Duration, size int) (clusteringCell, error) {
	const (
		frames = 8
		pages  = 64
	)
	cfg := core.DefaultConfig()
	cfg.MemoryFrames = 512
	sys := core.New(cfg)
	dom, err := sys.NewDomain("writer",
		atropos.QoS{P: 100 * time.Millisecond, S: 20 * time.Millisecond, X: true},
		mem.Contract{Guaranteed: frames})
	if err != nil {
		return clusteringCell{}, err
	}
	st, gdrv, err := sys.NewStretch(dom, core.PagerSpec{
		Kind:        core.KindPaged,
		Size:        pages * vm.PageSize,
		SwapBytes:   4 * pages * vm.PageSize,
		DiskQoS:     atropos.QoS{P: 250 * time.Millisecond, S: 200 * time.Millisecond, X: true, L: 10 * time.Millisecond},
		Writeback:   stretchdrv.WritebackForgetful,
		ClusterSize: size,
	})
	if err != nil {
		return clusteringCell{}, err
	}
	drv := gdrv.(*stretchdrv.Paged)
	var bytes int64
	dom.Go("main", func(t *domain.Thread) {
		core.PreallocateFrames(t, frames)
		for {
			for pg := 0; pg < pages; pg++ {
				if err := t.Touch(st.PageBase(pg), vm.PageSize, vm.AccessWrite); err != nil {
					return
				}
				bytes += int64(vm.PageSize)
			}
		}
	})
	sys.Run(measure)
	sys.Shutdown()
	s := drv.Stats
	cell := clusteringCell{
		pageOuts:  s.CleanedPages,
		writeTxns: s.CleanTxns,
		mbps:      float64(bytes) * 8 / 1e6 / measure.Seconds(),
	}
	if s.CleanedPages > 0 {
		cell.ratio = float64(s.CleanTxns) / float64(s.CleanedPages)
	}
	return cell, nil
}

// RebalanceResult measures the centralised global-performance policy
// (extension E5 — the paper's §8: "ongoing work is looking at both
// centralised and devolved solutions" to global performance). A worker with
// a 32-page working set but only 8 guaranteed frames thrashes while an idle
// domain sits on optimistic frames; the rebalancer moves them.
type RebalanceResult struct {
	WithoutMbps, WithMbps float64
	Moves                 int64
	WorkerFramesWithout   uint64
	WorkerFramesWith      uint64
}

// Speedup returns with/without throughput.
func (r *RebalanceResult) Speedup() float64 {
	if r.WithoutMbps == 0 {
		return 0
	}
	return r.WithMbps / r.WithoutMbps
}

// ExtensionRebalance runs the scenario with and without the rebalancer.
func ExtensionRebalance(measure time.Duration) (*RebalanceResult, error) {
	const (
		total     = 48 // frames of main memory
		workerSet = 32 // pages the worker loops over
	)
	run := func(rebalance bool) (float64, int64, uint64, error) {
		cfg := core.DefaultConfig()
		cfg.MemoryFrames = total
		sys := core.New(cfg)
		cpuQ := atropos.QoS{P: 100 * time.Millisecond, S: 30 * time.Millisecond, X: true}
		diskQ := atropos.QoS{P: 250 * time.Millisecond, S: 100 * time.Millisecond, X: true, L: 10 * time.Millisecond}

		// The idler grabs its optimistic frames and goes to sleep.
		idler, err := sys.NewDomain("idler", cpuQ, mem.Contract{Guaranteed: 8, Optimistic: 32})
		if err != nil {
			return 0, 0, 0, err
		}
		sys.NewPagedStretch(idler, 40*vm.PageSize, 128*vm.PageSize,
			atropos.QoS{P: 250 * time.Millisecond, S: 25 * time.Millisecond, L: 10 * time.Millisecond})
		idler.Go("main", func(t *domain.Thread) {
			core.PreallocateFrames(t, 40)
			t.Sleep(time.Hour)
		})
		sys.Run(time.Second)

		// The worker: 8 guaranteed + up to 24 optimistic, working set 32.
		worker, err := sys.NewDomain("worker", cpuQ, mem.Contract{Guaranteed: 8, Optimistic: 24})
		if err != nil {
			return 0, 0, 0, err
		}
		st, _, err := sys.NewPagedStretch(worker, workerSet*vm.PageSize, 128*vm.PageSize, diskQ)
		if err != nil {
			return 0, 0, 0, err
		}
		var bytes int64
		worker.Go("main", func(t *domain.Thread) {
			core.PreallocateFrames(t, 8)
			for {
				for pg := 0; pg < workerSet; pg++ {
					if err := t.Touch(st.PageBase(pg), vm.PageSize, vm.AccessRead); err != nil {
						return
					}
					bytes += int64(vm.PageSize)
				}
			}
		})
		var rb *core.Rebalancer
		if rebalance {
			rb = sys.StartRebalancer(time.Second)
		}
		sys.Run(measure)
		var moves int64
		if rb != nil {
			moves = rb.Moves
			rb.Stop()
		}
		frames := worker.MemClient().Allocated()
		sys.Shutdown()
		return float64(bytes) * 8 / 1e6 / measure.Seconds(), moves, frames, nil
	}
	res := &RebalanceResult{}
	var err error
	if res.WithoutMbps, _, res.WorkerFramesWithout, err = run(false); err != nil {
		return nil, err
	}
	if res.WithMbps, res.Moves, res.WorkerFramesWith, err = run(true); err != nil {
		return nil, err
	}
	return res, nil
}
