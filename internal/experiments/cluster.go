package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"nemesis/internal/atropos"
	"nemesis/internal/core"
	"nemesis/internal/domain"
	"nemesis/internal/experiments/sweep"
	"nemesis/internal/mem"
	"nemesis/internal/netswap"
	"nemesis/internal/obs"
	"nemesis/internal/stretchdrv"
	"nemesis/internal/vm"
)

// ClusterOptions sizes the cluster paging scenario: a set of independent
// machines, each running hundreds to thousands of self-paging domains that
// page remotely to a pool of swap servers with capacity-reserving admission.
// A small hot fraction of the domains pages continuously; the rest touch
// their resident set once and go idle, which is what the indexed scheduler,
// the indexed frames allocator and the incremental crosstalk monitor exist
// for — idle domains must cost nothing per quantum, per allocation and per
// monitoring window.
type ClusterOptions struct {
	// Machines is the number of independent machine cells (default 4).
	Machines int `json:"machines"`
	// DomainsPerMachine is the domain population per machine (default 250).
	DomainsPerMachine int `json:"domains_per_machine"`
	// Servers is the swap-server pool size per machine (default 2).
	Servers int `json:"servers"`
	// HotFraction is the share of domains that page continuously
	// (default 0.1; at least one domain per machine is hot).
	HotFraction float64 `json:"hot_fraction"`
	// HotPeriod is a hot domain's think time between page touches
	// (default 100 ms).
	HotPeriod time.Duration `json:"hot_period_ns"`
	// PagesPerDomain is each domain's virtual stretch size in pages
	// (default 8 — four times the guaranteed frames, so a hot domain's
	// cycle revisits pages it has already cleaned to the remote store).
	PagesPerDomain int `json:"pages_per_domain"`
	// PhysFrames is each domain's guaranteed physical allocation
	// (default 2, the paper's paging application). Contracts carry no
	// optimistic share, so guarantee violations are impossible by
	// construction — and the audit asserts none happen.
	PhysFrames int `json:"phys_frames"`
	// Measure is the simulated run length (default 4 s — long enough at the
	// standard scale for hot domains to wrap their page cycle and re-read
	// pages from the remote store).
	Measure time.Duration `json:"measure_ns"`
	// Seed seeds machine m with Seed+m (default 1).
	Seed int64 `json:"seed"`
	// Workers caps the sweep fan-out (0 = NEMESIS_SWEEP_WORKERS or
	// GOMAXPROCS). Results are identical for any value.
	Workers int `json:"-"`
	// Trace additionally captures every machine's timeline — client fault
	// spans tagged with cross-machine flow IDs, plus a separate registry per
	// swap server observing its service spans — and merges them into
	// ClusterResult.Trace. Tracing observes; it never schedules: the summary
	// numbers (and the result JSON) are identical traced or not, which is why
	// Trace, like Workers, is not part of the result's identity.
	Trace bool `json:"-"`
}

// DefaultClusterOptions returns the standard 1,000-domain cluster:
// 4 machines × 250 domains over 2 servers each.
func DefaultClusterOptions() ClusterOptions {
	return ClusterOptions{
		Machines:          4,
		DomainsPerMachine: 250,
		Servers:           2,
		HotFraction:       0.1,
		HotPeriod:         100 * time.Millisecond,
		PagesPerDomain:    8,
		PhysFrames:        2,
		Measure:           4 * time.Second,
		Seed:              1,
	}
}

func (o *ClusterOptions) fillDefaults() {
	d := DefaultClusterOptions()
	if o.Machines < 1 {
		o.Machines = d.Machines
	}
	if o.DomainsPerMachine < 1 {
		o.DomainsPerMachine = d.DomainsPerMachine
	}
	if o.Servers < 1 {
		o.Servers = d.Servers
	}
	if o.HotFraction <= 0 {
		o.HotFraction = d.HotFraction
	}
	if o.HotPeriod <= 0 {
		o.HotPeriod = d.HotPeriod
	}
	if o.PagesPerDomain < 2 {
		o.PagesPerDomain = d.PagesPerDomain
	}
	if o.PhysFrames < 1 {
		o.PhysFrames = d.PhysFrames
	}
	if o.Measure <= 0 {
		o.Measure = d.Measure
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
}

// ClusterMachine is one machine cell's deterministic summary. Every field
// is a function of the seed and the options alone — no wall-clock — so
// serial and parallel cluster runs are byte-identical.
type ClusterMachine struct {
	Machine      int   `json:"machine"`
	Domains      int   `json:"domains"`
	HotDomains   int   `json:"hot_domains"`
	Events       int64 `json:"sim_events"`
	Faults       int64 `json:"faults"`
	BytesTouched int64 `json:"bytes_touched"`
	RemoteReads  int64 `json:"remote_reads"`
	RemoteWrites int64 `json:"remote_writes"`
	Violations   int   `json:"guarantee_violations"`
	Kills        int   `json:"revocation_kills"`
	Flags        int   `json:"crosstalk_flags"`
	MonitorTicks int64 `json:"monitor_ticks"`

	// Summary is the machine's telemetry rollup, domains prefixed "m<N>/".
	// Carried in memory only: the result serialises one merged rollup, not
	// per-machine copies.
	Summary *obs.Summary `json:"-"`
	// Timelines are the machine's trace lanes (the client machine plus one
	// per swap server), present only on traced runs.
	Timelines []obs.MachineTimeline `json:"-"`
}

// ClusterResult is the whole cluster run.
type ClusterResult struct {
	Options  ClusterOptions   `json:"options"`
	Machines []ClusterMachine `json:"machines"`
	// Summary is the cluster-wide rollup: every machine's Summarize merged
	// in machine order (the merge is order-independent, so any order gives
	// the same bytes) and truncated to the top-K domains once at the end.
	Summary *obs.Summary `json:"summary,omitempty"`
	// Trace is the merged cluster timeline of a traced run — render it with
	// WriteTrace. Not serialised with the result: the CLI and the service
	// write traces to their own artifacts.
	Trace *obs.TimelineDump `json:"-"`
}

// clusterTopK bounds the merged rollup's domain ranking.
const clusterTopK = 10

// Totals sums the machine summaries.
func (r *ClusterResult) Totals() ClusterMachine {
	var t ClusterMachine
	t.Machine = -1
	for _, m := range r.Machines {
		t.Domains += m.Domains
		t.HotDomains += m.HotDomains
		t.Events += m.Events
		t.Faults += m.Faults
		t.BytesTouched += m.BytesTouched
		t.RemoteReads += m.RemoteReads
		t.RemoteWrites += m.RemoteWrites
		t.Violations += m.Violations
		t.Kills += m.Kills
		t.Flags += m.Flags
		t.MonitorTicks += m.MonitorTicks
	}
	return t
}

// RunCluster runs the cluster scenario: each machine is an independent
// deterministic simulation (seeded Seed+machine), fanned out across sweep
// workers and collected in machine order.
func RunCluster(opt ClusterOptions) (*ClusterResult, error) {
	return RunClusterContext(context.Background(), opt)
}

// RunClusterContext is RunCluster under a context: workers observe ctx
// between machine cells, and a sweep.WithProgress callback on ctx receives
// per-machine completion events.
func RunClusterContext(ctx context.Context, opt ClusterOptions) (*ClusterResult, error) {
	opt.fillDefaults()
	machines := make([]int, opt.Machines)
	for i := range machines {
		machines[i] = i
	}
	cells, err := sweep.MapWorkersContext(ctx, sweepWorkers(opt.Workers), machines, func(_ context.Context, m int) (*ClusterMachine, error) {
		return runClusterMachine(m, opt)
	})
	if err != nil {
		return nil, err
	}
	return assembleCluster(opt, cells), nil
}

// assembleCluster folds machine cells (in machine order) into the result:
// the per-machine rollups merge into one cluster summary, and on traced runs
// the per-machine timeline lanes merge into one cluster dump.
func assembleCluster(opt ClusterOptions, cells []*ClusterMachine) *ClusterResult {
	res := &ClusterResult{Options: opt}
	sum := &obs.Summary{}
	var lanes []obs.MachineTimeline
	for _, c := range cells {
		res.Machines = append(res.Machines, *c)
		sum.Merge(c.Summary)
		lanes = append(lanes, c.Timelines...)
	}
	sum.Truncate(sum.TopK)
	res.Summary = sum
	if opt.Trace {
		res.Trace = obs.MergeTimelines(lanes)
	}
	return res
}

func sweepWorkers(n int) int {
	if n > 0 {
		return n
	}
	return sweep.Workers()
}

// runClusterMachine builds and runs one machine: N self-paging domains,
// each placed on the machine's swap-server pool under byte-reserving
// admission, a hot minority paging continuously, and the incremental
// crosstalk monitor watching all of them.
func runClusterMachine(machine int, opt ClusterOptions) (*ClusterMachine, error) {
	n := opt.DomainsPerMachine
	pageBytes := int64(vm.PageSize)
	stretchBytes := int64(opt.PagesPerDomain) * pageBytes

	cfg := core.DefaultConfig()
	cfg.Seed = opt.Seed + int64(machine)
	cfg.Telemetry = true
	cfg.MemoryFrames = n*opt.PhysFrames + 256
	sys := core.New(cfg)

	// The pool: Servers fabrics sized so the byte-reserving admission of
	// every domain's stretch succeeds with a little headroom. The servers
	// share the machine's simulated clock but nothing else.
	ns := netswap.DefaultConfig()
	ns.Server.StoreBytes = (int64(n)*stretchBytes)/int64(opt.Servers) + 2*stretchBytes
	pool, err := netswap.NewPool(sys.Sim, sys.Obs, opt.Servers, ns)
	if err != nil {
		return nil, err
	}
	if opt.Trace {
		// Disjoint flow-ID bases keep every machine's flows unique in the
		// merged trace; each swap server gets its own registry — it is its
		// own machine, sharing only the simulated clock.
		sys.Obs.SetFlowBase(uint64(machine+1) << 32)
		for i := 0; i < pool.Servers(); i++ {
			pool.Fabric(i).Server.SetObs(obs.NewRegistry(sys.Sim.Now))
		}
	}

	hot := int(float64(n) * opt.HotFraction)
	if hot < 1 {
		hot = 1
	}
	cpuQoS := atropos.QoS{
		P: 100 * time.Millisecond,
		S: 90 * time.Millisecond / time.Duration(n),
		X: true,
	}
	if cpuQoS.S <= 0 {
		cpuQoS.S = time.Microsecond
	}
	remote := &netswap.RemoteOptions{Timeout: 2 * time.Second, MaxRetries: -1}

	cell := &ClusterMachine{Machine: machine, Domains: n, HotDomains: hot}
	var bytesTouched int64
	doms := make([]*domain.Domain, 0, n)
	for i := 0; i < n; i++ {
		// Domains are named machine-locally ("d0"…), matching the forked
		// path; the machine lane ("m0") qualifies them in merged artifacts.
		name := fmt.Sprintf("d%d", i)
		dom, err := sys.NewDomain(name, cpuQoS, mem.Contract{Guaranteed: uint64(opt.PhysFrames)})
		if err != nil {
			return nil, fmt.Errorf("cluster: admit %s: %w", name, err)
		}
		st, err := dom.NewStretch(uint64(stretchBytes))
		if err != nil {
			return nil, err
		}
		rb, err := pool.Place(name, name, stretchBytes, remote)
		if err != nil {
			return nil, fmt.Errorf("cluster: place %s: %w", name, err)
		}
		if _, err := stretchdrv.NewPagedBacking(dom, st, rb, stretchdrv.PagerOptions{}); err != nil {
			return nil, err
		}
		doms = append(doms, dom)

		base := st.Base()
		physFrames := opt.PhysFrames
		if i < hot {
			// Hot: page one page per think period forever, cycling through
			// a stretch much larger than the resident set.
			pages := opt.PagesPerDomain
			period := opt.HotPeriod
			dom.Go("hot", func(t *domain.Thread) {
				if err := core.PreallocateFrames(t, physFrames); err != nil {
					return
				}
				for off := 0; ; off = (off + 1) % pages {
					if err := t.Touch(base+vm.VA(int64(off)*pageBytes), int(pageBytes), vm.AccessWrite); err != nil {
						return
					}
					bytesTouched += pageBytes
					t.Sleep(period)
				}
			})
			continue
		}
		// Idle: fault the resident set in (plus one page, so one eviction
		// proves the remote placement works end to end), then go silent —
		// from here on the domain must cost the schedulers and the monitor
		// nothing.
		once := physFrames + 1
		dom.Go("idle", func(t *domain.Thread) {
			if err := core.PreallocateFrames(t, physFrames); err != nil {
				return
			}
			for p := 0; p < once; p++ {
				if err := t.Touch(base+vm.VA(int64(p)*pageBytes), int(pageBytes), vm.AccessWrite); err != nil {
					return
				}
				bytesTouched += pageBytes
			}
		})
	}

	mon := sys.StartIncrementalCrosstalkMonitor(obs.DefaultCrosstalkConfig())
	sys.Run(opt.Measure)
	pool.Stop()
	sys.Shutdown()

	for _, d := range doms {
		cell.Faults += d.Stats().Faults
	}
	cell.BytesTouched = bytesTouched
	cell.Events = sys.Sim.Dispatched()
	for i := 0; i < pool.Servers(); i++ {
		st := pool.Fabric(i).Server.Stats
		cell.RemoteReads += st.Reads
		cell.RemoteWrites += st.Writes
	}
	cell.Violations = len(sys.Obs.AuditByKind(obs.AuditGuaranteeViolation))
	cell.Kills = len(sys.Obs.AuditByKind(obs.AuditRevokeKill))
	cell.Flags = len(sys.Obs.Flags())
	if mon != nil {
		cell.MonitorTicks = mon.Ticks()
	}
	collectClusterObs(cell, machine, sys.Obs, pool, opt.Trace)
	return cell, nil
}

// collectClusterObs captures one finished machine's rollup and — on traced
// runs — its timeline lanes: the client machine ("m2") plus one lane per
// swap server ("m2.swap0"). Shared by the cold and forked cluster paths so
// both produce identical artifacts.
func collectClusterObs(cell *ClusterMachine, machine int, reg *obs.Registry, pool *netswap.Pool, trace bool) {
	lane := fmt.Sprintf("m%d", machine)
	sum := reg.Summarize(clusterTopK)
	sum.Prefix(lane + "/")
	cell.Summary = sum
	if !trace {
		return
	}
	cell.Timelines = append(cell.Timelines, obs.MachineTimeline{Machine: lane, Dump: obs.Timeline{Reg: reg}.Dump()})
	for i := 0; i < pool.Servers(); i++ {
		if sreg := pool.Fabric(i).Server.Obs(); sreg != nil {
			cell.Timelines = append(cell.Timelines, obs.MachineTimeline{
				Machine: fmt.Sprintf("%s.swap%d", lane, i),
				Dump:    obs.Timeline{Reg: sreg}.Dump(),
			})
		}
	}
}

// WriteSummary renders the per-machine table plus totals. The output is a
// pure function of the options and seed (serial and parallel runs agree
// byte for byte), which is what the CI smoke job diffs.
func (r *ClusterResult) WriteSummary(w io.Writer) error {
	fmt.Fprintf(w, "cluster: %d machines x %d domains (%d hot), %d swap servers/machine, measure %s, seed %d\n",
		r.Options.Machines, r.Options.DomainsPerMachine, r.Totals().HotDomains/r.Options.Machines,
		r.Options.Servers, r.Options.Measure, r.Options.Seed)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "MACHINE\tDOMAINS\tHOT\tEVENTS\tFAULTS\tKB\tRD\tWR\tVIOL\tKILL\tFLAGS\tTICKS\t\n")
	row := func(label string, m ClusterMachine) {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t\n",
			label, m.Domains, m.HotDomains, m.Events, m.Faults, m.BytesTouched/1024,
			m.RemoteReads, m.RemoteWrites, m.Violations, m.Kills, m.Flags, m.MonitorTicks)
	}
	for _, m := range r.Machines {
		row(fmt.Sprintf("m%d", m.Machine), m)
	}
	row("total", r.Totals())
	if err := tw.Flush(); err != nil {
		return err
	}
	if r.Summary != nil {
		fmt.Fprintln(w)
		if err := r.Summary.WriteText(w); err != nil {
			return err
		}
	}
	return nil
}
