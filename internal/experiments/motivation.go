package experiments

import (
	"math"
	"time"

	"nemesis/internal/atropos"
	"nemesis/internal/core"
	"nemesis/internal/disk"
	"nemesis/internal/domain"
	"nemesis/internal/mem"
	"nemesis/internal/usd"
	"nemesis/internal/vm"
)

// MotivationResult is the paper's motivating example measured (§5: "an
// application which plays a motion-JPEG video from disk should not be
// adversely affected by a compilation started in the background"). A 25 fps
// player streams 64 KB frames from disk and decodes them; a compilation
// workload pages and computes heavily in the background. With QoS contracts
// the player's deadlines hold; on a conventional (FCFS disk, free-for-all
// CPU) configuration they collapse.
type MotivationResult struct {
	// QoSMissRate / FCFSMissRate are the fraction of frames that missed
	// their 40 ms slot deadline in each configuration.
	QoSMissRate, FCFSMissRate float64
	// QoSJitterMs / FCFSJitterMs are the standard deviation of frame
	// completion offsets within their slots, in milliseconds.
	QoSJitterMs, FCFSJitterMs float64
	// Frames is the number of frames measured per configuration.
	Frames int
}

const (
	framePeriod = 40 * time.Millisecond // 25 fps
	framePages  = 8                     // 64 KB per frame
	decodeTime  = 8 * time.Millisecond
)

// MotivationMJPEG runs the player+compiler scenario in both configurations.
func MotivationMJPEG(measure time.Duration) (*MotivationResult, error) {
	res := &MotivationResult{}
	var err error
	res.QoSMissRate, res.QoSJitterMs, res.Frames, err = runMJPEG(measure, true)
	if err != nil {
		return nil, err
	}
	res.FCFSMissRate, res.FCFSJitterMs, _, err = runMJPEG(measure, false)
	if err != nil {
		return nil, err
	}
	return res, nil
}

func runMJPEG(measure time.Duration, qos bool) (missRate, jitterMs float64, frames int, err error) {
	cfg := core.DefaultConfig()
	cfg.MemoryFrames = 2048
	sys := core.New(cfg)
	sys.USD.FCFS = !qos
	sys.USD.SlackEnabled = true

	// Player: CPU 10 ms per 40 ms; disk 18 ms per 40 ms (8 reads of ~2 ms).
	playerCPU := atropos.QoS{P: framePeriod, S: 10 * time.Millisecond, X: false}
	// The disk slice must cover the 8 reads (~16 ms) plus the laxity the
	// client will be charged while idle-runnable between bursts (5 ms).
	playerDisk := atropos.QoS{P: framePeriod, S: 24 * time.Millisecond, X: false, L: 5 * time.Millisecond}
	// Compiler: a token guarantee; it lives on slack, like a batch job.
	compCPU := atropos.QoS{P: 100 * time.Millisecond, S: 5 * time.Millisecond, X: true}
	compDisk := atropos.QoS{P: 250 * time.Millisecond, S: 10 * time.Millisecond, X: true, L: 10 * time.Millisecond}
	if !qos {
		// Conventional configuration: no meaningful reservations — both
		// sides contend freely (FCFS disk; CPU handed out as slack).
		playerCPU = atropos.QoS{P: framePeriod, S: time.Millisecond, X: true}
		playerDisk = atropos.QoS{P: framePeriod, S: time.Millisecond, X: true, L: 5 * time.Millisecond}
	}

	player, err := sys.NewDomain("player", playerCPU, mem.Contract{Guaranteed: 16})
	if err != nil {
		return 0, 0, 0, err
	}
	// The player streams its video from its own partition.
	video := usd.Extent{Start: 0, Count: sys.Disk.Geom.TotalBlocks / 8}
	ch, err := sys.USD.Open("player-video", playerDisk, framePages)
	if err != nil {
		return 0, 0, 0, err
	}
	if err := sys.USD.Grant("player-video", video); err != nil {
		return 0, 0, 0, err
	}

	var offsets []time.Duration
	misses := 0
	slots := 0
	player.Go("play", func(t *domain.Thread) {
		pageBlocks := int(vm.PageSize / disk.BlockSize)
		next := video.Start
		start := t.Now()
		frame := 0
		var free []*usd.Request
		for {
			slotStart := start.Add(time.Duration(frame) * framePeriod)
			deadline := slotStart.Add(framePeriod)
			t.Proc().SleepUntil(slotStart)
			// Fetch the frame: 8 page-sized reads, pipelined. Requests (and
			// their read buffers) are recycled across frames.
			for i := 0; i < framePages; i++ {
				var req *usd.Request
				if n := len(free); n > 0 {
					req = free[n-1]
					free = free[:n-1]
					req.Block, req.Err = next, nil
				} else {
					req = &usd.Request{Op: disk.Read, Block: next, Count: pageBlocks}
				}
				if err := ch.Submit(t.Proc(), req); err != nil {
					return
				}
				next += int64(pageBlocks)
				if next+int64(pageBlocks) > video.Start+video.Count {
					next = video.Start
				}
			}
			for i := 0; i < framePages; i++ {
				done, err := ch.Await(t.Proc())
				if err != nil {
					return
				}
				free = append(free, done)
			}
			t.Compute(decodeTime)
			done := t.Now()
			offsets = append(offsets, done.Sub(slotStart))
			slots++
			if done > deadline {
				misses++
			}
			// After a miss, a real player drops frames and re-synchronises
			// to the next full slot rather than free-running out of phase;
			// each dropped slot counts as a miss.
			frame++
			if done > deadline {
				resync := int(done.Sub(start)/framePeriod) + 1
				if resync > frame {
					misses += resync - frame
					slots += resync - frame
					frame = resync
				}
			}
		}
	})

	// Compiler: heavy paging (large working set over few frames) plus CPU.
	compiler, err := sys.NewDomain("compiler", compCPU, mem.Contract{Guaranteed: 8})
	if err != nil {
		return 0, 0, 0, err
	}
	cst, _, err := sys.NewPagedStretch(compiler, 2<<20, 8<<20, compDisk)
	if err != nil {
		return 0, 0, 0, err
	}
	// It also streams source code from disk with a deep pipeline (the
	// aggressive FCFS competitor).
	src := usd.Extent{Start: sys.Disk.Geom.TotalBlocks / 4, Count: sys.Disk.Geom.TotalBlocks / 8}
	srcCh, err := sys.USD.Open("compiler-src", compDisk, 16)
	if err != nil {
		return 0, 0, 0, err
	}
	if err := sys.USD.Grant("compiler-src", src); err != nil {
		return 0, 0, 0, err
	}
	compiler.Go("compile", func(t *domain.Thread) {
		core.PreallocateFrames(t, 8)
		pageBlocks := int(vm.PageSize / disk.BlockSize)
		next := src.Start
		inflight := 0
		var free []*usd.Request
		for {
			// Keep 16 source reads in flight, recycling completed requests...
			for inflight < 16 {
				var req *usd.Request
				if n := len(free); n > 0 {
					req = free[n-1]
					free = free[:n-1]
					req.Block, req.Err = next, nil
				} else {
					req = &usd.Request{Op: disk.Read, Block: next, Count: pageBlocks}
				}
				if err := srcCh.Submit(t.Proc(), req); err != nil {
					return
				}
				inflight++
				next += int64(pageBlocks)
				if next+int64(pageBlocks) > src.Start+src.Count {
					next = src.Start
				}
			}
			done, err := srcCh.Await(t.Proc())
			if err != nil {
				return
			}
			free = append(free, done)
			inflight--
			// ...while paging over its working set and burning CPU.
			if err := t.Touch(cst.Base()+vm.VA((next*31)%int64(2<<20-vm.PageSize)), 64, vm.AccessWrite); err != nil {
				return
			}
			t.Compute(500 * time.Microsecond)
		}
	})

	sys.Run(measure)
	sys.Shutdown()

	if slots == 0 {
		return 1, 0, 0, nil
	}
	var mean, varsum float64
	for _, o := range offsets {
		mean += o.Seconds()
	}
	mean /= float64(len(offsets))
	for _, o := range offsets {
		d := o.Seconds() - mean
		varsum += d * d
	}
	jitterMs = math.Sqrt(varsum/float64(len(offsets))) * 1e3
	return float64(misses) / float64(slots), jitterMs, slots, nil
}
