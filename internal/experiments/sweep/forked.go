package sweep

// MapForked runs fn over items where each call receives its own fork of a
// shared warmed world instead of cold-booting one. The fork callback is
// invoked serially, in item order, before any cell runs: forking marks the
// parent's disk chunks copy-on-write, a parent-side mutation that must not
// race with itself. The forked worlds are then fully independent, so the
// cells fan out across workers exactly like MapWorkers, with index-ordered
// results.
func MapForked[W, I, O any](workers int, items []I, fork func(I) (W, error), fn func(W, I) (O, error)) ([]O, error) {
	worlds := make([]W, len(items))
	for i, it := range items {
		w, err := fork(it)
		if err != nil {
			return nil, err
		}
		worlds[i] = w
	}
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	return MapWorkers(workers, idx, func(i int) (O, error) {
		return fn(worlds[i], items[i])
	})
}
