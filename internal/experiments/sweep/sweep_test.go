package sweep

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResults(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	got, err := MapWorkers(8, items, func(i int) (string, error) {
		return fmt.Sprintf("cell-%d", i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range got {
		if want := fmt.Sprintf("cell-%d", i); g != want {
			t.Fatalf("result %d = %q, want %q", i, g, want)
		}
	}
}

func TestSerialEqualsParallel(t *testing.T) {
	items := make([]int, 37)
	for i := range items {
		items[i] = i * 3
	}
	fn := func(i int) (int, error) { return i*i + 1, nil }
	serial, err := MapWorkers(1, items, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 16} {
		par, err := MapWorkers(w, items, fn)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if serial[i] != par[i] {
				t.Fatalf("workers=%d: result %d = %d, want %d", w, i, par[i], serial[i])
			}
		}
	}
}

func TestMapErrorIsLowestIndex(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	// Items 3 and 6 fail; the reported error must always be item 3's,
	// regardless of which goroutine finishes first.
	for trial := 0; trial < 20; trial++ {
		_, err := MapWorkers(4, items, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, errA
			case 6:
				return 0, errB
			}
			return i, nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("trial %d: err = %v, want %v", trial, err, errA)
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	got, err := MapWorkers(4, nil, func(i int) (int, error) { return i, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty: got %v, %v", got, err)
	}
	got, err = MapWorkers(4, []int{9}, func(i int) (int, error) { return i + 1, nil })
	if err != nil || len(got) != 1 || got[0] != 10 {
		t.Fatalf("single: got %v, %v", got, err)
	}
}

func TestMapWorkersExceedItems(t *testing.T) {
	// More workers than items must not panic, leak goroutines waiting for
	// cells that never come, or disturb result order.
	items := []int{10, 20, 30}
	got, err := MapWorkers(64, items, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	want := []int{11, 21, 31}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestMapWorkersEmptyAtAnyWidth(t *testing.T) {
	for _, w := range []int{0, 1, 4, 100} {
		got, err := MapWorkers(w, []int(nil), func(i int) (int, error) {
			t.Fatal("fn called on empty sweep")
			return 0, nil
		})
		if err != nil || len(got) != 0 {
			t.Fatalf("workers=%d: got %v, %v", w, got, err)
		}
	}
}

func TestMapManyConcurrentFailures(t *testing.T) {
	// Every odd item fails with its own error; the reported error must be
	// the lowest failing index (1) on every trial at every width.
	items := make([]int, 32)
	for i := range items {
		items[i] = i
	}
	errAt := make([]error, len(items))
	for i := 1; i < len(items); i += 2 {
		errAt[i] = fmt.Errorf("cell %d failed", i)
	}
	for _, w := range []int{2, 4, 16, 32} {
		for trial := 0; trial < 10; trial++ {
			_, err := MapWorkers(w, items, func(i int) (int, error) {
				return i, errAt[i]
			})
			if !errors.Is(err, errAt[1]) {
				t.Fatalf("workers=%d trial %d: err = %v, want %v", w, trial, err, errAt[1])
			}
		}
	}
}

func TestMapWorkersContextCancelMidSweep(t *testing.T) {
	// Cancel after a prefix of cells completes: the sweep must return
	// ctx.Err(), and no cell may start after the cancellation is observed.
	ctx, cancel := context.WithCancel(context.Background())
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	var started atomic.Int64
	_, err := MapWorkersContext(ctx, 4, items, func(_ context.Context, i int) (int, error) {
		if started.Add(1) == 1 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Each worker observes ctx between items, so after the cancel at most
	// one already-claimed cell per worker still runs: nowhere near all 100.
	if n := started.Load(); n > 8 {
		t.Fatalf("%d cells started despite cancellation", n)
	}
}

func TestMapWorkersContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, w := range []int{1, 4} {
		_, err := MapWorkersContext(ctx, w, []int{1, 2, 3}, func(_ context.Context, i int) (int, error) {
			t.Fatal("fn ran under a pre-cancelled context")
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", w, err)
		}
	}
}

func TestMapWorkersContextErrorStillLowestIndex(t *testing.T) {
	// The context-aware path preserves the lowest-index-error contract of
	// MapWorkers when the context stays live.
	errA, errB := errors.New("a"), errors.New("b")
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for trial := 0; trial < 20; trial++ {
		_, err := MapWorkersContext(context.Background(), 4, items, func(_ context.Context, i int) (int, error) {
			switch i {
			case 2:
				return 0, errA
			case 5:
				return 0, errB
			}
			return i, nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("trial %d: err = %v, want %v", trial, err, errA)
		}
	}
}

func TestProgressReportsEveryCell(t *testing.T) {
	items := make([]int, 25)
	for i := range items {
		items[i] = i
	}
	for _, w := range []int{1, 4} {
		var mu sync.Mutex
		var dones []int
		ctx := WithProgress(context.Background(), func(done, total int) {
			if total != len(items) {
				t.Errorf("total = %d, want %d", total, len(items))
			}
			mu.Lock()
			dones = append(dones, done)
			mu.Unlock()
		})
		if _, err := MapWorkersContext(ctx, w, items, func(_ context.Context, i int) (int, error) {
			return i, nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(dones) != len(items) {
			t.Fatalf("workers=%d: %d progress events, want %d", w, len(dones), len(items))
		}
		sort.Ints(dones)
		for i, d := range dones {
			if d != i+1 {
				t.Fatalf("workers=%d: cumulative done values %v, want 1..%d each once", w, dones, len(items))
			}
		}
	}
}

func TestProgressStrippedFromNestedSweeps(t *testing.T) {
	// A cell that itself sweeps must not report into the outer callback:
	// done/total always describe the top-level sweep.
	outer := []int{0, 1, 2}
	var events atomic.Int64
	ctx := WithProgress(context.Background(), func(done, total int) {
		events.Add(1)
		if total != len(outer) {
			t.Errorf("total = %d, want %d (outer cells only)", total, len(outer))
		}
	})
	_, err := MapWorkersContext(ctx, 2, outer, func(ctx context.Context, i int) (int, error) {
		// Nested sweep of 10 cells through the ctx the runner handed us.
		_, err := MapWorkersContext(ctx, 2, make([]int, 10), func(_ context.Context, j int) (int, error) {
			return j, nil
		})
		return i, err
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := events.Load(); n != int64(len(outer)) {
		t.Fatalf("progress events = %d, want %d (nested sweeps must stay silent)", n, len(outer))
	}
}
