package sweep

import (
	"errors"
	"fmt"
	"testing"
)

func TestMapOrdersResults(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	got, err := MapWorkers(8, items, func(i int) (string, error) {
		return fmt.Sprintf("cell-%d", i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range got {
		if want := fmt.Sprintf("cell-%d", i); g != want {
			t.Fatalf("result %d = %q, want %q", i, g, want)
		}
	}
}

func TestSerialEqualsParallel(t *testing.T) {
	items := make([]int, 37)
	for i := range items {
		items[i] = i * 3
	}
	fn := func(i int) (int, error) { return i*i + 1, nil }
	serial, err := MapWorkers(1, items, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 16} {
		par, err := MapWorkers(w, items, fn)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if serial[i] != par[i] {
				t.Fatalf("workers=%d: result %d = %d, want %d", w, i, par[i], serial[i])
			}
		}
	}
}

func TestMapErrorIsLowestIndex(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	// Items 3 and 6 fail; the reported error must always be item 3's,
	// regardless of which goroutine finishes first.
	for trial := 0; trial < 20; trial++ {
		_, err := MapWorkers(4, items, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, errA
			case 6:
				return 0, errB
			}
			return i, nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("trial %d: err = %v, want %v", trial, err, errA)
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	got, err := MapWorkers(4, nil, func(i int) (int, error) { return i, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty: got %v, %v", got, err)
	}
	got, err = MapWorkers(4, []int{9}, func(i int) (int, error) { return i + 1, nil })
	if err != nil || len(got) != 1 || got[0] != 10 {
		t.Fatalf("single: got %v, %v", got, err)
	}
}
