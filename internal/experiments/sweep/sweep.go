// Package sweep fans independent experiment cells across worker goroutines
// with deterministic, index-ordered results.
//
// Every cell of a parameter sweep (a netswap (latency, loss) point, one
// replacement policy, one cluster size, one whole figure) builds its own
// Simulator and machine, so cells share no mutable state and can run
// concurrently. Determinism is preserved per cell — each simulation is
// single-threaded and seeded — and the runner returns results in item
// order regardless of completion order, so serial and parallel runs of the
// same sweep produce identical output.
package sweep

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvWorkers is the environment variable overriding the fan-out width.
const EnvWorkers = "NEMESIS_SWEEP_WORKERS"

// Workers returns the default fan-out width: NEMESIS_SWEEP_WORKERS if set
// to a positive integer, else GOMAXPROCS.
func Workers() int {
	if v := os.Getenv(EnvWorkers); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn over items on up to Workers() goroutines and returns the
// results in item order. See MapWorkers.
func Map[I, O any](items []I, fn func(I) (O, error)) ([]O, error) {
	return MapWorkers(Workers(), items, fn)
}

// MapWorkers runs fn over items on up to workers goroutines and returns
// the results in item order. If any invocation fails, the error of the
// lowest-index failing item is returned (a deterministic choice regardless
// of goroutine scheduling) and the results are nil. workers < 1 or a
// single-item sweep degrades to a plain serial loop on the caller's
// goroutine.
func MapWorkers[I, O any](workers int, items []I, fn func(I) (O, error)) ([]O, error) {
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		out := make([]O, len(items))
		for i, it := range items {
			o, err := fn(it)
			if err != nil {
				return nil, err
			}
			out[i] = o
		}
		return out, nil
	}

	out := make([]O, len(items))
	errs := make([]error, len(items))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				out[i], errs[i] = fn(items[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
