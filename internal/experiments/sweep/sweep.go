// Package sweep fans independent experiment cells across worker goroutines
// with deterministic, index-ordered results.
//
// Every cell of a parameter sweep (a netswap (latency, loss) point, one
// replacement policy, one cluster size, one whole figure) builds its own
// Simulator and machine, so cells share no mutable state and can run
// concurrently. Determinism is preserved per cell — each simulation is
// single-threaded and seeded — and the runner returns results in item
// order regardless of completion order, so serial and parallel runs of the
// same sweep produce identical output.
//
// MapWorkersContext is the context-aware root: workers observe ctx between
// items (a cancelled sweep stops claiming cells and returns ctx.Err()), and
// a Progress callback installed with WithProgress receives per-cell
// completion events — which is how long-running services stream sweep
// progress without touching the cell functions themselves.
package sweep

import (
	"context"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvWorkers is the environment variable overriding the fan-out width.
const EnvWorkers = "NEMESIS_SWEEP_WORKERS"

// Workers returns the default fan-out width: NEMESIS_SWEEP_WORKERS if set
// to a positive integer, else GOMAXPROCS.
func Workers() int {
	if v := os.Getenv(EnvWorkers); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Progress receives per-cell completion events: done cells finished out of
// total. Callbacks arrive from worker goroutines, possibly concurrently,
// and done is cumulative (monotonic per callback value, though delivery
// order between goroutines is unordered) — consumers should treat each
// event as "at least done/total complete".
type Progress func(done, total int)

type progressKey struct{}

// WithProgress returns a context whose outermost context-aware sweep
// reports per-cell completion into fn. Nested sweeps run with the callback
// stripped, so done/total always describe the top-level sweep's cells.
func WithProgress(ctx context.Context, fn Progress) context.Context {
	return context.WithValue(ctx, progressKey{}, fn)
}

func progressFrom(ctx context.Context) Progress {
	fn, _ := ctx.Value(progressKey{}).(Progress)
	return fn
}

// Map runs fn over items on up to Workers() goroutines and returns the
// results in item order. See MapWorkers.
func Map[I, O any](items []I, fn func(I) (O, error)) ([]O, error) {
	return MapWorkers(Workers(), items, fn)
}

// MapWorkers runs fn over items on up to workers goroutines and returns
// the results in item order. If any invocation fails, the error of the
// lowest-index failing item is returned (a deterministic choice regardless
// of goroutine scheduling) and the results are nil. workers < 1 or a
// single-item sweep degrades to a plain serial loop on the caller's
// goroutine.
func MapWorkers[I, O any](workers int, items []I, fn func(I) (O, error)) ([]O, error) {
	return MapWorkersContext(context.Background(), workers, items,
		func(_ context.Context, it I) (O, error) { return fn(it) })
}

// MapContext runs fn over items on up to Workers() goroutines under ctx.
// See MapWorkersContext.
func MapContext[I, O any](ctx context.Context, items []I, fn func(context.Context, I) (O, error)) ([]O, error) {
	return MapWorkersContext(ctx, Workers(), items, fn)
}

// MapWorkersContext is the context-aware sweep runner every other entry
// point wraps. Semantics match MapWorkers — index-ordered results,
// lowest-index error — with two additions:
//
//   - Cancellation: workers observe ctx between items. Once ctx is done no
//     further cells start, in-flight cells finish, and the call returns
//     ctx.Err() (cancellation wins over any cell error, since which cells
//     ran to completion under a cancelled sweep is scheduling-dependent).
//   - Progress: a callback installed with WithProgress is invoked after
//     each successful cell. The ctx passed to fn has the callback stripped,
//     so a cell that itself sweeps (a suite cell running a nested netswap
//     sweep) cannot double-report.
func MapWorkersContext[I, O any](ctx context.Context, workers int, items []I, fn func(context.Context, I) (O, error)) ([]O, error) {
	prog := progressFrom(ctx)
	inner := ctx
	if prog != nil {
		inner = WithProgress(ctx, nil)
	}
	total := len(items)
	var done atomic.Int64
	report := func() {
		if prog != nil {
			prog(int(done.Add(1)), total)
		}
	}

	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		out := make([]O, len(items))
		for i, it := range items {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			o, err := fn(inner, it)
			if err != nil {
				return nil, err
			}
			out[i] = o
			report()
		}
		return out, nil
	}

	out := make([]O, len(items))
	errs := make([]error, len(items))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				out[i], errs[i] = fn(inner, items[i])
				if errs[i] == nil {
					report()
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
