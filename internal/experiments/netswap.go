package experiments

import (
	"context"
	"fmt"
	"time"

	"nemesis/internal/core"
	"nemesis/internal/experiments/sweep"
	"nemesis/internal/netswap"
	"nemesis/internal/obs"
	"nemesis/internal/workload"
)

// NetswapCell is one (link latency, loss) point of the E8 sweep: the paging
// application's sustained throughput and the per-hop fault-latency
// breakdown — network out (request wire + server queue + retransmits),
// remote store (the server's own disk service) and network back (reply
// wire) — plus the client's RPC counters.
type NetswapCell struct {
	Latency time.Duration `json:"latency_ns"`
	Loss    float64       `json:"loss"`
	Mbps    float64       `json:"mbps"`
	// Per-hop p50/p95 in milliseconds, from the page-fault spans.
	NetOutP50Ms  float64 `json:"net_out_p50_ms"`
	NetOutP95Ms  float64 `json:"net_out_p95_ms"`
	StoreP50Ms   float64 `json:"store_p50_ms"`
	StoreP95Ms   float64 `json:"store_p95_ms"`
	NetBackP50Ms float64 `json:"net_back_p50_ms"`
	NetBackP95Ms float64 `json:"net_back_p95_ms"`
	RPCs         int64   `json:"rpcs"`
	Retries      int64   `json:"retries"`
	Timeouts     int64   `json:"timeouts"`
}

// NetswapSweepResult is E8a: fault latency against link latency and loss.
type NetswapSweepResult struct {
	Cells []NetswapCell `json:"cells"`
}

// RunNetswapSweep measures a remote-paging application across the cross
// product of link latencies and loss probabilities, measure of simulated
// time per cell. Every cell is an independent deterministic run; cells fan
// out across sweep workers and come back in sweep order.
func RunNetswapSweep(latencies []time.Duration, losses []float64, measure time.Duration) (*NetswapSweepResult, error) {
	return RunNetswapSweepContext(context.Background(), latencies, losses, measure)
}

// RunNetswapSweepContext is RunNetswapSweep under a context: workers
// observe ctx between (latency, loss) cells, and a sweep.WithProgress
// callback on ctx receives per-cell completion events.
func RunNetswapSweepContext(ctx context.Context, latencies []time.Duration, losses []float64, measure time.Duration) (*NetswapSweepResult, error) {
	type point struct {
		lat  time.Duration
		loss float64
	}
	var pts []point
	for _, loss := range losses {
		for _, lat := range latencies {
			pts = append(pts, point{lat, loss})
		}
	}
	cells, err := sweep.MapContext(ctx, pts, func(_ context.Context, p point) (*NetswapCell, error) {
		return runNetswapCell(p.lat, p.loss, measure)
	})
	if err != nil {
		return nil, err
	}
	res := &NetswapSweepResult{Cells: make([]NetswapCell, 0, len(cells))}
	for _, c := range cells {
		res.Cells = append(res.Cells, *c)
	}
	return res, nil
}

// runNetswapCell runs one sweep point: a single paging application (the
// paper's §7.2 workload) whose pager cleans to and faults from the remote
// swap server.
func runNetswapCell(latency time.Duration, loss float64, measure time.Duration) (*NetswapCell, error) {
	cfg := core.DefaultConfig()
	cfg.MemoryFrames = 1024
	cfg.Telemetry = true
	ns := netswap.DefaultConfig()
	ns.Link.Latency = latency
	ns.Link.DropProb = loss
	cfg.NetSwap = &ns
	sys := core.New(cfg)

	pc := workload.DefaultPagerConfig("remote", 100*time.Millisecond)
	pc.PhysFrames = 8
	pc.VirtBytes = 2 << 20
	pc.Backing = core.BackingRemote
	pc.Write = true // keep the writeback path hot, not just page-ins
	pc.SkipInit = true
	pg, err := workload.StartPager(sys, pc, nil)
	if err != nil {
		return nil, err
	}
	sys.Run(measure)
	cell := &NetswapCell{
		Latency: latency,
		Loss:    loss,
		Mbps:    float64(pg.Bytes) * 8 / 1e6 / measure.Seconds(),
	}
	for _, h := range sys.Obs.HopSummaries() {
		if h.Domain != "remote" || h.Class != "page" {
			continue
		}
		switch h.Hop {
		case "net.out":
			cell.NetOutP50Ms, cell.NetOutP95Ms = h.P50Ms, h.P95Ms
		case "remote.store":
			cell.StoreP50Ms, cell.StoreP95Ms = h.P50Ms, h.P95Ms
		case "net.back":
			cell.NetBackP50Ms, cell.NetBackP95Ms = h.P50Ms, h.P95Ms
		}
	}
	if rb, ok := pg.Drv.Backing().(*netswap.RemoteBacking); ok {
		cell.RPCs = rb.Stats.RPCs
		cell.Retries = rb.Stats.Retries
		cell.Timeouts = rb.Stats.Timeouts
	}
	sys.Shutdown()
	return cell, nil
}

// NetswapOutageResult is E8b: isolation under a remote outage. A local-swap
// domain and a remote-paging domain run side by side; mid-run the link
// blackholes for a phase, then heals. The QoS firewall holds if the local
// domain's throughput is unchanged while the remote domain alone stalls —
// and the crosstalk monitor agrees by raising no flags.
type NetswapOutageResult struct {
	// Per-phase sustained throughput (Mbit/s): before, during and after
	// the outage.
	LocalMbps  [3]float64
	RemoteMbps [3]float64
	// Flags is what the crosstalk monitor raised across the whole run.
	Flags []obs.Flag
	// Crosstalk is the qos.crosstalk audit-event slice for the run — the
	// structured form "zero crosstalk" is asserted on.
	Crosstalk []obs.AuditEvent
	// Audit is the full audit log (netswap transitions included).
	Audit []obs.AuditEvent
	// MonitorTicks > 0 proves the monitor was actually sampling.
	MonitorTicks int64
}

// RunNetswapOutage runs E8b with the given phase length (total simulated
// time = 3 × phase).
func RunNetswapOutage(phase time.Duration) (*NetswapOutageResult, error) {
	cfg := core.DefaultConfig()
	cfg.MemoryFrames = 1024
	cfg.Telemetry = true
	sys := core.New(cfg)

	local := workload.DefaultPagerConfig("local", 62500*time.Microsecond)
	local.PhysFrames = 8
	local.VirtBytes = 1 << 20
	local.Write = true
	local.SkipInit = true
	lp, err := workload.StartPager(sys, local, nil)
	if err != nil {
		return nil, err
	}

	remote := workload.DefaultPagerConfig("remote", 62500*time.Microsecond)
	remote.PhysFrames = 8
	remote.VirtBytes = 1 << 20
	remote.Backing = core.BackingRemote
	// The remote domain would rather stall than die: retry forever.
	remote.Remote = &netswap.RemoteOptions{MaxRetries: -1}
	remote.Write = true
	remote.SkipInit = true
	rp, err := workload.StartPager(sys, remote, nil)
	if err != nil {
		return nil, err
	}

	mon := sys.StartCrosstalkMonitor(obs.DefaultCrosstalkConfig())
	res := &NetswapOutageResult{}
	snap := func(i int, run time.Duration) {
		l0, r0 := lp.Bytes, rp.Bytes
		sys.Run(run)
		res.LocalMbps[i] = float64(lp.Bytes-l0) * 8 / 1e6 / run.Seconds()
		res.RemoteMbps[i] = float64(rp.Bytes-r0) * 8 / 1e6 / run.Seconds()
	}
	snap(0, phase)
	sys.NetSwap.SetOutage(true)
	snap(1, phase)
	sys.NetSwap.SetOutage(false)
	snap(2, phase)

	// Shutdown first: the monitor flushes its trailing partial window on
	// Stop, and those flags/audit events belong to the run.
	sys.Shutdown()
	res.Flags = sys.Obs.Flags()
	res.Crosstalk = sys.Obs.AuditByKind(obs.AuditCrosstalk)
	res.Audit = sys.Obs.AuditLog()
	if mon != nil {
		res.MonitorTicks = mon.Ticks()
	}
	return res, nil
}

// NetswapDegradeResult is E8c: QoS-preserving degradation. A tiered-backing
// domain keeps paging through a remote outage by falling over to its local
// tier, then resumes demoting to the remote store once the link heals.
type NetswapDegradeResult struct {
	// Per-phase sustained throughput (Mbit/s): before, during and after
	// the outage.
	Mbps [3]float64
	// Tiered backing counters at the end of the run.
	Stats netswap.TieredStats
	// DegradedDuringOutage records whether the backing was running on its
	// local tier at the end of the outage phase.
	DegradedDuringOutage bool
	// Audit is the run's audit log; the degrade → probe → restore
	// transitions appear here as net.* events.
	Audit []obs.AuditEvent
}

// RunNetswapDegrade runs E8c with the given phase length.
func RunNetswapDegrade(phase time.Duration) (*NetswapDegradeResult, error) {
	cfg := core.DefaultConfig()
	cfg.MemoryFrames = 1024
	cfg.Telemetry = true
	ns := netswap.DefaultConfig()
	// Fail over quickly relative to the phase length.
	ns.Remote.Timeout = 60 * time.Millisecond
	ns.Remote.MaxRetries = 1
	ns.Tiered.Deadline = 150 * time.Millisecond
	ns.Tiered.MissBudget = 2
	ns.Tiered.Cooldown = phase / 4
	cfg.NetSwap = &ns
	sys := core.New(cfg)

	pc := workload.DefaultPagerConfig("tiered", 100*time.Millisecond)
	pc.PhysFrames = 8
	pc.VirtBytes = 1 << 20
	pc.SwapBytes = 2 << 20 // local tier: half the remote store's role
	pc.Backing = core.BackingTiered
	pc.Write = true // dirty pages force cleaning, the path that degrades
	pc.SkipInit = true
	pg, err := workload.StartPager(sys, pc, nil)
	if err != nil {
		return nil, err
	}
	tb, ok := pg.Drv.Backing().(*netswap.TieredBacking)
	if !ok {
		return nil, fmt.Errorf("experiments: tiered pager got backing %q", pg.Drv.Backing().Name())
	}

	res := &NetswapDegradeResult{}
	snap := func(i int, run time.Duration) {
		b0 := pg.Bytes
		sys.Run(run)
		res.Mbps[i] = float64(pg.Bytes-b0) * 8 / 1e6 / run.Seconds()
	}
	snap(0, phase)
	sys.NetSwap.SetOutage(true)
	snap(1, phase)
	res.DegradedDuringOutage = tb.Degraded()
	sys.NetSwap.SetOutage(false)
	snap(2, phase)

	res.Stats = tb.Stats
	sys.Shutdown()
	res.Audit = sys.Obs.AuditLog()
	return res, nil
}
