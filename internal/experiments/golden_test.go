package experiments

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace fingerprints")

// fig7Fingerprint runs a short Fig. 7 configuration and reduces the full USD
// scheduler trace plus the bandwidth summary to a stable string. Any drift in
// simulated event order — an extra disk transaction, a reordered eviction, a
// changed lax charge — changes the hash.
func fig7Fingerprint(t *testing.T) string {
	t.Helper()
	opt := DefaultPagingOptions()
	opt.VirtBytes = 1 << 20
	opt.Measure = 5 * time.Second
	r, err := RunPaging(opt)
	if err != nil {
		t.Fatalf("RunPaging: %v", err)
	}
	h := sha256.New()
	events := r.Log.Events()
	for _, e := range events {
		fmt.Fprintf(h, "%d %s %d %d\n", e.Kind, e.Client, e.Start, e.End)
	}
	for _, m := range r.MeanMbps {
		fmt.Fprintf(h, "mbps %v\n", m)
	}
	return fmt.Sprintf("events=%d sha256=%x", len(events), h.Sum(nil))
}

// TestFig7GoldenTrace guards the pager refactor against event-order drift:
// the same seed and configuration must produce a byte-identical scheduler
// trace before and after. Regenerate with `go test -run Golden -update`
// only when a deliberate behavioural change is intended.
func TestFig7GoldenTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	got := fig7Fingerprint(t)
	path := filepath.Join("testdata", "fig7_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s: %s", path, got)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to generate): %v", err)
	}
	if got+"\n" != string(want) {
		t.Errorf("Fig. 7 trace fingerprint drifted\n got: %s\nwant: %s", got, string(want))
	}
}
