package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"nemesis/internal/experiments/sweep"
	"nemesis/internal/obs"
)

// Duration is a time.Duration that marshals as its canonical string form
// ("1.5s") and unmarshals from either a duration string or integer
// nanoseconds — so specs arriving as "1s", "1000ms" or 1000000000 all
// normalize to the same encoded bytes, and therefore the same content hash.
type Duration time.Duration

// D returns the underlying time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case string:
		td, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("experiments: bad duration %q: %w", x, err)
		}
		*d = Duration(td)
		return nil
	case float64:
		*d = Duration(time.Duration(x))
		return nil
	default:
		return fmt.Errorf("experiments: duration must be a string or nanosecond count, got %T", v)
	}
}

// Spec kinds: the experiment families a job can request.
const (
	KindSuite       = "suite"       // the full 19-cell suite
	KindFigure      = "figure"      // one paper figure: 7, 8 or 9
	KindNetswap     = "netswap"     // the E8a latency × loss sweep
	KindCluster     = "cluster"     // the N-machine cluster scenario
	KindAttribution = "attribution" // scaled fig 7/8 with exact attribution
)

// Spec is the serializable description of one experiment job — the unit
// both the CLI JSON exports and nemesis-serve accept. Every run is a
// deterministic pure function of its normalized Spec: the sweep fan-out
// width is deliberately NOT part of the spec (results are byte-identical at
// any worker count), so it is an execution detail of the runner, never of
// the result's identity.
type Spec struct {
	// Kind selects the experiment family: suite, figure, netswap, cluster
	// or attribution.
	Kind string `json:"kind"`
	// Figure is the figure number for the figure (7, 8 or 9) and
	// attribution (7 or 8) kinds.
	Figure int `json:"figure,omitempty"`
	// Measure bounds the simulated measurement window (default per kind).
	Measure Duration `json:"measure,omitempty"`
	// Seed seeds the simulation for the figure, cluster and attribution
	// kinds (default 1). The suite and netswap kinds run at their fixed
	// default seeds.
	Seed int64 `json:"seed,omitempty"`

	// Latencies and Losses span the netswap sweep's cross product
	// (defaults: 200µs/1ms/2ms × 0/0.05).
	Latencies []Duration `json:"latencies,omitempty"`
	Losses    []float64  `json:"losses,omitempty"`

	// Machines, DomainsPerMachine and Servers size the cluster kind
	// (defaults: 4 × 250 over 2).
	Machines          int `json:"machines,omitempty"`
	DomainsPerMachine int `json:"domains_per_machine,omitempty"`
	Servers           int `json:"servers,omitempty"`

	// Hog admits the 5%-slice unbounded-appetite domain (attribution kind).
	Hog bool `json:"hog,omitempty"`

	// Trace additionally captures the run's Perfetto timeline and audit log
	// (figure kind only). It enables the recorder plus the deterministic
	// revocation episode on figs 7/8, so a traced run is a different —
	// separately cached — experiment from an untraced one.
	Trace bool `json:"trace,omitempty"`
}

// Normalize validates the spec and rewrites it into canonical form: every
// applicable default becomes explicit and fields the kind ignores are
// cleared. Two specs describing the same experiment — default-vs-explicit
// values, any duration spelling, any field order on the wire — normalize to
// identical structs, which is what makes results content-addressable.
func (s *Spec) Normalize() error {
	c := Spec{Kind: s.Kind}
	switch s.Kind {
	case KindSuite:
		c.Measure = s.Measure
		if c.Measure <= 0 {
			c.Measure = Duration(15 * time.Second)
		}
	case KindFigure:
		c.Figure = s.Figure
		c.Measure = s.Measure
		c.Seed = s.Seed
		c.Trace = s.Trace
		switch c.Figure {
		case 7, 8:
			if c.Measure <= 0 {
				c.Measure = Duration(DefaultPagingOptions().Measure)
			}
		case 9:
			if c.Measure <= 0 {
				c.Measure = Duration(DefaultFig9Options().Measure)
			}
		default:
			return fmt.Errorf("experiments: figure spec wants figure 7, 8 or 9, got %d", s.Figure)
		}
		if c.Seed == 0 {
			c.Seed = 1
		}
	case KindNetswap:
		c.Latencies = append([]Duration(nil), s.Latencies...)
		if len(c.Latencies) == 0 {
			c.Latencies = []Duration{
				Duration(200 * time.Microsecond),
				Duration(time.Millisecond),
				Duration(2 * time.Millisecond),
			}
		}
		for _, l := range c.Latencies {
			if l <= 0 {
				return fmt.Errorf("experiments: netswap latency %v must be positive", l.D())
			}
		}
		c.Losses = append([]float64(nil), s.Losses...)
		if len(c.Losses) == 0 {
			c.Losses = []float64{0, 0.05}
		}
		for _, p := range c.Losses {
			if p < 0 || p >= 1 {
				return fmt.Errorf("experiments: netswap loss %v must be in [0, 1)", p)
			}
		}
		c.Measure = s.Measure
		if c.Measure <= 0 {
			c.Measure = Duration(15 * time.Second)
		}
	case KindCluster:
		opt := ClusterOptions{
			Machines:          s.Machines,
			DomainsPerMachine: s.DomainsPerMachine,
			Servers:           s.Servers,
			Measure:           s.Measure.D(),
			Seed:              s.Seed,
		}
		opt.fillDefaults()
		c.Machines, c.DomainsPerMachine, c.Servers = opt.Machines, opt.DomainsPerMachine, opt.Servers
		c.Measure, c.Seed = Duration(opt.Measure), opt.Seed
		if c.Machines > 64 || c.DomainsPerMachine > 20000 {
			return fmt.Errorf("experiments: cluster spec %d×%d exceeds the service bound (64×20000)",
				c.Machines, c.DomainsPerMachine)
		}
	case KindAttribution:
		c.Figure = s.Figure
		if c.Figure == 0 {
			c.Figure = 8
		}
		if c.Figure != 7 && c.Figure != 8 {
			return fmt.Errorf("experiments: attribution spec wants figure 7 or 8, got %d", s.Figure)
		}
		c.Measure = s.Measure
		if c.Measure <= 0 {
			c.Measure = Duration(DefaultPagingOptions().Measure)
		}
		c.Seed = s.Seed
		if c.Seed == 0 {
			c.Seed = 1
		}
		c.Hog = s.Hog
	case "":
		return fmt.Errorf("experiments: spec is missing a kind (want %s, %s, %s, %s or %s)",
			KindSuite, KindFigure, KindNetswap, KindCluster, KindAttribution)
	default:
		return fmt.Errorf("experiments: unknown spec kind %q", s.Kind)
	}
	if c.Measure > Duration(10*time.Minute) {
		return fmt.Errorf("experiments: measure %v exceeds the 10m service bound", c.Measure.D())
	}
	*s = c
	return nil
}

// FigureSummary is the JSON-serializable outcome of one figure run.
type FigureSummary struct {
	Fig int `json:"fig"`
	// Figs. 7/8: per-application sustained bandwidth and consecutive ratios.
	MeanMbps []float64 `json:"mean_mbps,omitempty"`
	Ratios   []float64 `json:"ratios,omitempty"`
	// MaxLax is the largest single lax charge per client (seconds).
	MaxLax map[string]float64 `json:"max_lax_s,omitempty"`
	// Fig. 9: the FS client's isolation under paging contention.
	AloneMbps     float64 `json:"alone_mbps,omitempty"`
	ContendedMbps float64 `json:"contended_mbps,omitempty"`
	Isolation     float64 `json:"isolation,omitempty"`
}

// AttributionSummary is the JSON-serializable outcome of an attribution run.
type AttributionSummary struct {
	Fig      int                 `json:"fig"`
	Hog      bool                `json:"hog"`
	MeanMbps []float64           `json:"mean_mbps"`
	Profiles []obs.DomainProfile `json:"profiles"`
	// Folded is the folded-stack profile (`domain;state[;hop] us` lines).
	Folded string `json:"folded"`
}

// Result is the JSON-serializable outcome of a Spec run: the normalized
// spec it answers plus exactly one kind-specific payload. Encoded with
// EncodeResult it is a pure function of the spec — byte-identical across
// runs, worker counts, and CLI-vs-server execution — which is what lets
// nemesis-serve content-address results.
type Result struct {
	Spec        Spec                `json:"spec"`
	Suite       []SuiteCell         `json:"suite,omitempty"`
	Figure      *FigureSummary      `json:"figure,omitempty"`
	Netswap     *NetswapSweepResult `json:"netswap,omitempty"`
	Cluster     *ClusterResult      `json:"cluster,omitempty"`
	Attribution *AttributionSummary `json:"attribution,omitempty"`
}

// Outcome bundles a run's Result with its side artifacts: the Perfetto
// trace and audit log captured when the spec asked for them. Artifacts are
// served verbatim by nemesis-serve's /trace and /audit endpoints.
type Outcome struct {
	Result *Result
	// Trace is the Chrome trace-event JSON timeline (figure kind with
	// Trace set), nil otherwise.
	Trace []byte
	// Audit is the audit log as JSON (figure kind with Trace set).
	Audit []byte
}

// EncodeResult renders a Result as the canonical response body: two-space
// indented JSON with a trailing newline. The CLI's -suite-json and
// -cluster-json exports and nemesis-serve's result bodies both go through
// this function, so the same spec yields byte-identical bytes everywhere.
func EncodeResult(r *Result) ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// RunSpec normalizes and executes a spec. workers caps the sweep fan-out
// (0 = NEMESIS_SWEEP_WORKERS or GOMAXPROCS); it affects wall-clock only,
// never the result bytes. Cancellation is observed between cells (a single
// cell's simulation runs to completion), and a sweep.WithProgress callback
// installed on ctx receives per-cell completion events — single-cell kinds
// report 1/1 on completion.
func RunSpec(ctx context.Context, spec Spec, workers int) (*Outcome, error) {
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	res := &Result{Spec: spec}
	out := &Outcome{Result: res}
	switch spec.Kind {
	case KindSuite:
		// The suite runs under the warm+measure protocol with world
		// forking: each heavy harness warms once and every cell measures on
		// a fork, which the fork-equivalence tests pin byte-identical to
		// cold boots. The legacy in-place suite remains available as
		// RunSuite for the trace-shaped comparisons that need it.
		cells, err := RunSuiteForked(ctx, spec.Measure.D(), workers, true)
		if err != nil {
			return nil, err
		}
		res.Suite = cells

	case KindNetswap:
		lat := make([]time.Duration, len(spec.Latencies))
		for i, l := range spec.Latencies {
			lat[i] = l.D()
		}
		r, err := RunNetswapSweepContext(ctx, lat, spec.Losses, spec.Measure.D())
		if err != nil {
			return nil, err
		}
		res.Netswap = r

	case KindCluster:
		r, err := RunClusterContext(ctx, ClusterOptions{
			Machines:          spec.Machines,
			DomainsPerMachine: spec.DomainsPerMachine,
			Servers:           spec.Servers,
			Measure:           spec.Measure.D(),
			Seed:              spec.Seed,
			Workers:           workers,
		})
		if err != nil {
			return nil, err
		}
		res.Cluster = r

	case KindFigure:
		if err := runSingleCell(ctx, workers, func() error {
			return runFigureSpec(spec, out)
		}); err != nil {
			return nil, err
		}

	case KindAttribution:
		if err := runSingleCell(ctx, workers, func() error {
			r, err := RunAttribution(AttributionOptions{
				Fig:     spec.Figure,
				Hog:     spec.Hog,
				Measure: spec.Measure.D(),
				Seed:    spec.Seed,
			})
			if err != nil {
				return err
			}
			res.Attribution = &AttributionSummary{
				Fig:      spec.Figure,
				Hog:      spec.Hog,
				MeanMbps: r.Paging.MeanMbps,
				Profiles: r.Profiles,
				Folded:   r.Folded,
			}
			return nil
		}); err != nil {
			return nil, err
		}

	default:
		// Normalize admits only the kinds above.
		return nil, fmt.Errorf("experiments: unknown spec kind %q", spec.Kind)
	}
	return out, nil
}

// runSingleCell runs one indivisible experiment through the sweep runner so
// single-cell kinds share the sweep's contract: pre-cancellation is
// observed and progress reports 1/1 on completion.
func runSingleCell(ctx context.Context, workers int, fn func() error) error {
	_, err := sweep.MapWorkersContext(ctx, workers, []int{0}, func(context.Context, int) (struct{}, error) {
		return struct{}{}, fn()
	})
	return err
}

// PagingOptionsFromSpec maps a figure 7/8 spec onto paging options. The
// warm prefix of the resulting world depends on everything here except
// Measure — which is what lets specs differing only in their measured
// window share one warmed world.
func PagingOptionsFromSpec(spec Spec) PagingOptions {
	opt := DefaultPagingOptions()
	opt.Measure = spec.Measure.D()
	opt.Seed = spec.Seed
	if spec.Figure == 8 {
		opt.Write = true
		opt.Forgetful = true
	}
	return opt
}

// WarmPagingSpec warms the Fig. 7/8 world a figure spec describes.
// nemesis-serve's warm-world pool builds its resident entries with this.
func WarmPagingSpec(spec Spec) (*PagingWarm, error) {
	return WarmPaging(PagingOptionsFromSpec(spec))
}

// FigureFromWarm measures a warmed Fig. 7/8 world (typically a fresh fork
// of a pooled one, which it consumes) and assembles the same Result a
// figure-kind RunSpec produces — so pooled and unpooled answers for one
// spec are byte-identical.
func FigureFromWarm(world *PagingWarm, spec Spec) (*Result, error) {
	r, err := world.Measure(spec.Measure.D())
	if err != nil {
		return nil, err
	}
	return &Result{Spec: spec, Figure: &FigureSummary{
		Fig:      spec.Figure,
		MeanMbps: r.MeanMbps,
		Ratios:   r.Ratios(),
		MaxLax:   r.Log.MaxLax(),
	}}, nil
}

// runFigureSpec executes one figure cell, capturing trace/audit artifacts
// when the spec asks for them. Untraced figure runs use the warm+measure
// protocol (measuring on a fork of a warmed world — the same composition
// nemesis-serve's warm pool performs); traced runs keep the legacy
// in-place harness, which the recorder requires.
func runFigureSpec(spec Spec, out *Outcome) error {
	sum := &FigureSummary{Fig: spec.Figure}
	switch spec.Figure {
	case 7, 8:
		if !spec.Trace {
			warm, err := WarmPagingSpec(spec)
			if err != nil {
				return err
			}
			world, err := warm.Fork()
			if err != nil {
				return err
			}
			warm.Sys.Shutdown()
			res, err := FigureFromWarm(world, spec)
			if err != nil {
				return err
			}
			out.Result.Figure = res.Figure
			return nil
		}
		opt := PagingOptionsFromSpec(spec)
		opt.Timeline = true
		r, err := RunPaging(opt)
		if err != nil {
			return err
		}
		sum.MeanMbps = r.MeanMbps
		sum.Ratios = r.Ratios()
		sum.MaxLax = r.Log.MaxLax()
		if err := captureArtifacts(out, r.Sys.WriteTimeline, r.Sys.Obs.WriteAuditJSON); err != nil {
			return err
		}
	case 9:
		opt := DefaultFig9Options()
		opt.Measure = spec.Measure.D()
		opt.Seed = spec.Seed
		if !spec.Trace {
			r, err := RunFig9Forked(opt, true)
			if err != nil {
				return err
			}
			sum.AloneMbps = r.AloneMbps
			sum.ContendedMbps = r.ContendedMbps
			sum.Isolation = r.Isolation()
			break
		}
		opt.Timeline = true
		r, err := RunFig9(opt)
		if err != nil {
			return err
		}
		sum.AloneMbps = r.AloneMbps
		sum.ContendedMbps = r.ContendedMbps
		sum.Isolation = r.Isolation()
		if r.ContendedSys != nil {
			if err := captureArtifacts(out, r.ContendedSys.WriteTimeline, r.ContendedSys.Obs.WriteAuditJSON); err != nil {
				return err
			}
		}
	}
	out.Result.Figure = sum
	return nil
}

func captureArtifacts(out *Outcome, trace, audit func(w io.Writer) error) error {
	var tb, ab bytes.Buffer
	if err := trace(&tb); err != nil {
		return err
	}
	if err := audit(&ab); err != nil {
		return err
	}
	out.Trace = tb.Bytes()
	out.Audit = ab.Bytes()
	return nil
}
