package experiments

import (
	"fmt"
	"testing"
	"time"

	"nemesis/internal/experiments/sweep"
	"nemesis/internal/obs"
)

func attrOpts(hog bool) AttributionOptions {
	return AttributionOptions{Fig: 8, Hog: hog, Measure: 8 * time.Second, Seed: 1}
}

// hopShare returns the fraction of a profile's lifetime spent blocked under
// one fault hop.
func hopShare(p obs.DomainProfile, hop string) float64 {
	var sum time.Duration
	for _, acc := range p.Accounts {
		if acc.State == obs.AttrFault && acc.Hop == hop {
			sum += acc.Total
		}
	}
	if p.Elapsed() <= 0 {
		return 0
	}
	return float64(sum) / float64(p.Elapsed())
}

// TestAttributionHogIsolation is the paper's QoS-isolation claim as a
// checked property of the attribution profile: adding an unconscionable hog
// leaves the contracted applications' time breakdowns flat, and the
// contention the hog creates lands in the hog's own usd.queue account.
func TestAttributionHogIsolation(t *testing.T) {
	base, err := RunAttribution(attrOpts(false))
	if err != nil {
		t.Fatal(err)
	}
	hogged, err := RunAttribution(attrOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Profiles) != 3 || len(hogged.Profiles) != 4 {
		t.Fatalf("profiles: %d and %d, want 3 and 4", len(base.Profiles), len(hogged.Profiles))
	}

	// Victims' breakdowns stay flat: every coarse state share moves by
	// less than 2 points of lifetime share when the hog appears.
	for _, p0 := range base.Profiles {
		p1, ok := hogged.ProfileFor(p0.Domain)
		if !ok {
			t.Fatalf("domain %q missing from hogged run", p0.Domain)
		}
		for _, st := range obs.AttrStates {
			d := p1.Share(st) - p0.Share(st)
			if d < -0.02 || d > 0.02 {
				t.Errorf("%s: share(%s) moved %+.4f (%.4f -> %.4f) when the hog appeared",
					p0.Domain, st, d, p0.Share(st), p1.Share(st))
			}
		}
	}

	// The hog pays for its own appetite: it is fault-blocked essentially
	// always, overwhelmingly waiting on its own exhausted disk slice.
	hog, ok := hogged.ProfileFor("hog-5%")
	if !ok {
		t.Fatal("hog profile missing")
	}
	if s := hog.Share(obs.AttrFault); s < 0.95 {
		t.Errorf("hog fault share = %.4f, want > 0.95", s)
	}
	if s := hopShare(hog, "usd.queue"); s < 0.8 {
		t.Errorf("hog usd.queue share = %.4f, want > 0.8 (contention must land in the hog's account)", s)
	}

	// And the starved contract buys it less bandwidth than the 10% app.
	mb := hogged.Paging.MeanMbps
	if len(mb) != 4 || mb[3] >= mb[0] {
		t.Errorf("hog bandwidth %v should trail app1", mb)
	}
}

// TestAttributionFoldedIdenticalAcrossWorkers pins the acceptance property
// that the folded-stack export is byte-identical at any sweep worker count.
func TestAttributionFoldedIdenticalAcrossWorkers(t *testing.T) {
	run := func(workers int) []string {
		cells, err := sweep.MapWorkers(workers, []bool{false, true}, func(hog bool) (string, error) {
			r, err := RunAttribution(attrOpts(hog))
			if err != nil {
				return "", err
			}
			return r.Folded, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return cells
	}
	serial := run(1)
	parallel := run(4)
	for i := range serial {
		if serial[i] == "" {
			t.Fatalf("cell %d: empty folded export", i)
		}
		if serial[i] != parallel[i] {
			t.Fatalf("cell %d: folded export differs between 1 and 4 workers:\n--- serial ---\n%s\n--- parallel ---\n%s",
				i, serial[i], parallel[i])
		}
	}
	// Every folded line is "frames count_us" with an integer count.
	var frames string
	var us int64
	if n, err := fmt.Sscanf(serial[0], "%s %d", &frames, &us); n != 2 || err != nil {
		t.Fatalf("folded first line unparseable: %q", serial[0])
	}
}
