package experiments

import (
	"time"

	"nemesis/internal/atropos"
	"nemesis/internal/core"
	"nemesis/internal/domain"
	"nemesis/internal/mem"
	"nemesis/internal/vm"
)

// startRevocationEpisode adds a deterministic revocation episode to a
// telemetry run: a "hog" domain acquires optimistic frames (some dirty, some
// left unused as transparent-revocation fodder), and a revocation round is
// directed at it after the given delay. The exported timeline then always
// carries the full revoke.begin → transparent → intrusive → complete audit
// sequence, whatever the main workload does.
func startRevocationEpisode(sys *core.System, after time.Duration) error {
	cpuQ := atropos.QoS{P: 100 * time.Millisecond, S: 10 * time.Millisecond, X: true}
	diskQ := atropos.QoS{P: 250 * time.Millisecond, S: 20 * time.Millisecond, L: 10 * time.Millisecond}
	hog, err := sys.NewDomain("hog", cpuQ, mem.Contract{Guaranteed: 4, Optimistic: 24})
	if err != nil {
		return err
	}
	st, _, err := sys.NewPagedStretch(hog, 24*vm.PageSize, 96*vm.PageSize, diskQ)
	if err != nil {
		return err
	}
	hog.Go("main", func(t *domain.Thread) {
		// Dirty 12 pages (optimistic frames the hog must clean to swap
		// under intrusive revocation), then park 4 unused frames on top of
		// the stack for the transparent phase.
		if err := t.Touch(st.Base(), 12*vm.PageSize, vm.AccessWrite); err != nil {
			return
		}
		_ = core.PreallocateFrames(t, 4)
	})
	hogID := hog.ID()
	sys.Sim.After(after, func() {
		// 8 frames: the 4 unused ones go transparently, the rest forces
		// the intrusive phase (notification, cleaning, completion).
		_ = sys.Frames.RequestRevocation(hogID, 8)
	})
	return nil
}
