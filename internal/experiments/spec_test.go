package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"
)

func TestDurationUnmarshalFormats(t *testing.T) {
	// One second, spelled three ways, must decode identically — that is
	// what makes duration spelling irrelevant to a spec's content hash.
	for _, raw := range []string{`"1s"`, `"1000ms"`, `1000000000`} {
		var d Duration
		if err := json.Unmarshal([]byte(raw), &d); err != nil {
			t.Fatalf("%s: %v", raw, err)
		}
		if d.D() != time.Second {
			t.Errorf("%s decoded to %v, want 1s", raw, d.D())
		}
	}
	b, err := json.Marshal(Duration(90 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"1m30s"` {
		t.Errorf("marshal = %s, want \"1m30s\" (canonical duration string)", b)
	}
	var d Duration
	if err := json.Unmarshal([]byte(`true`), &d); err == nil {
		t.Error("bool unmarshalled into a Duration without error")
	}
}

func TestNormalizeMakesDefaultsExplicit(t *testing.T) {
	implicit := Spec{Kind: KindFigure, Figure: 7}
	explicit := Spec{Kind: KindFigure, Figure: 7, Measure: Duration(40 * time.Second), Seed: 1}
	for _, s := range []*Spec{&implicit, &explicit} {
		if err := s.Normalize(); err != nil {
			t.Fatal(err)
		}
	}
	bi, _ := json.Marshal(implicit)
	be, _ := json.Marshal(explicit)
	if !bytes.Equal(bi, be) {
		t.Errorf("default-vs-explicit specs normalize differently:\n%s\n%s", bi, be)
	}

	cluster := Spec{Kind: KindCluster}
	if err := cluster.Normalize(); err != nil {
		t.Fatal(err)
	}
	d := DefaultClusterOptions()
	if cluster.Machines != d.Machines || cluster.DomainsPerMachine != d.DomainsPerMachine ||
		cluster.Servers != d.Servers || cluster.Measure.D() != d.Measure || cluster.Seed != d.Seed {
		t.Errorf("cluster normalize = %+v, want defaults %+v", cluster, d)
	}
}

func TestNormalizeClearsIrrelevantFields(t *testing.T) {
	// A suite spec carrying cluster/figure noise must canonicalize to the
	// same bytes as a clean one: the noise cannot fragment the cache.
	noisy := Spec{Kind: KindSuite, Figure: 8, Seed: 42, Machines: 9, Hog: true, Losses: []float64{0.5}}
	clean := Spec{Kind: KindSuite}
	for _, s := range []*Spec{&noisy, &clean} {
		if err := s.Normalize(); err != nil {
			t.Fatal(err)
		}
	}
	bn, _ := json.Marshal(noisy)
	bc, _ := json.Marshal(clean)
	if !bytes.Equal(bn, bc) {
		t.Errorf("irrelevant fields survived normalization:\n%s\n%s", bn, bc)
	}
}

func TestNormalizeRejectsInvalidSpecs(t *testing.T) {
	bad := []Spec{
		{},
		{Kind: "warp"},
		{Kind: KindFigure, Figure: 5},
		{Kind: KindAttribution, Figure: 9},
		{Kind: KindNetswap, Losses: []float64{1.5}},
		{Kind: KindNetswap, Latencies: []Duration{Duration(-time.Second)}},
		{Kind: KindSuite, Measure: Duration(time.Hour)},
		{Kind: KindCluster, Machines: 1000},
	}
	for _, s := range bad {
		if err := s.Normalize(); err == nil {
			t.Errorf("spec %+v normalized without error", s)
		}
	}
}

func TestRunSpecNetswapDeterministicAcrossWorkers(t *testing.T) {
	spec := Spec{
		Kind:      KindNetswap,
		Latencies: []Duration{Duration(200 * time.Microsecond), Duration(time.Millisecond)},
		Losses:    []float64{0, 0.05},
		Measure:   Duration(100 * time.Millisecond),
	}
	var bodies [][]byte
	for _, workers := range []int{1, 4} {
		out, err := RunSpec(context.Background(), spec, workers)
		if err != nil {
			t.Fatal(err)
		}
		if out.Result.Netswap == nil || len(out.Result.Netswap.Cells) != 4 {
			t.Fatalf("workers=%d: netswap result missing or wrong size: %+v", workers, out.Result.Netswap)
		}
		body, err := EncodeResult(out.Result)
		if err != nil {
			t.Fatal(err)
		}
		bodies = append(bodies, body)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Errorf("result bytes differ across worker counts:\n%s\n%s", bodies[0], bodies[1])
	}
}

func TestRunSpecFigureTraceArtifacts(t *testing.T) {
	spec := Spec{Kind: KindFigure, Figure: 8, Measure: Duration(2 * time.Second), Trace: true}
	out, err := RunSpec(context.Background(), spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Figure == nil || len(out.Result.Figure.MeanMbps) == 0 {
		t.Fatalf("figure summary missing: %+v", out.Result.Figure)
	}
	if len(out.Trace) == 0 {
		t.Error("trace artifact empty despite Trace: true")
	}
	if len(out.Audit) == 0 {
		t.Error("audit artifact empty despite Trace: true")
	}
	var events []any
	if err := json.Unmarshal(out.Audit, &events); err != nil {
		t.Errorf("audit artifact is not a JSON array: %v", err)
	}
	// The traced figs 7/8 run includes the deterministic revocation
	// episode, so the audit log cannot be empty.
	if len(events) == 0 {
		t.Error("audit artifact has no events; expected the revocation episode")
	}
}

func TestRunSpecCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSpec(ctx, Spec{Kind: KindSuite}, 2); err == nil {
		t.Error("pre-cancelled RunSpec returned no error")
	}
}
