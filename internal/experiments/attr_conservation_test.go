package experiments

import (
	"sync"
	"testing"
	"time"

	"nemesis/internal/core"
)

// TestSuiteAttributionConservation forces telemetry (and with it the
// attribution profiler) onto every system any suite cell builds, and asserts
// the conservation invariant — per-domain accounts sum exactly to elapsed
// sim time — at each system's shutdown, across all 19 suite cells.
// Attribution is purely observational, so forcing it on must not change any
// cell's output either.
func TestSuiteAttributionConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole suite")
	}

	var mu sync.Mutex
	var systems, withDomains int
	var violations []string
	core.ForceTelemetry = true
	core.ShutdownHook = func(sys *core.System) {
		err := sys.CheckAttribution()
		mu.Lock()
		defer mu.Unlock()
		systems++
		if len(sys.Obs.Attr().Domains()) > 0 {
			withDomains++
		}
		if err != nil {
			violations = append(violations, err.Error())
		}
	}
	defer func() {
		core.ForceTelemetry = false
		core.ShutdownHook = nil
	}()

	cells, err := RunSuite(2*time.Second, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 19 {
		t.Fatalf("suite ran %d cells, want 19", len(cells))
	}
	for _, v := range violations {
		t.Errorf("conservation violated: %s", v)
	}
	// Every cell builds at least one system; most build several.
	if systems < 19 {
		t.Fatalf("shutdown hook saw only %d systems across 19 cells", systems)
	}
	if withDomains < 19 {
		t.Fatalf("only %d audited systems had tracked domains", withDomains)
	}
	t.Logf("conservation held for %d systems (%d with domains)", systems, withDomains)
}
