package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"nemesis/internal/obs"
)

// tracedClusterOpts is the tests' scaled-down traced cluster: two machines
// so the merged dump has at least two client lanes, two servers each so
// server-side lanes appear too.
func tracedClusterOpts(workers int) ClusterOptions {
	opt := clusterOpts(2, 20)
	opt.Servers = 2
	opt.Workers = workers
	opt.Trace = true
	return opt
}

// TestClusterTraceDeterministicAcrossWorkers extends the serial-vs-parallel
// identity to the observability plane: the merged cross-machine trace and
// the cluster rollup must be byte-identical whether machines run on one
// worker or fan out across eight.
func TestClusterTraceDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) (trace, summary []byte) {
		t.Helper()
		res, err := RunCluster(tracedClusterOpts(workers))
		if err != nil {
			t.Fatal(err)
		}
		if res.Trace == nil || res.Summary == nil {
			t.Fatal("traced run produced no trace or no summary")
		}
		var tb bytes.Buffer
		if err := res.Trace.WriteTrace(&tb); err != nil {
			t.Fatal(err)
		}
		sb, err := json.Marshal(res.Summary)
		if err != nil {
			t.Fatal(err)
		}
		return tb.Bytes(), sb
	}
	serialTrace, serialSum := render(1)
	parallelTrace, parallelSum := render(8)
	if !bytes.Equal(serialTrace, parallelTrace) {
		t.Fatalf("merged trace differs between 1 and 8 workers (%d vs %d bytes)", len(serialTrace), len(parallelTrace))
	}
	if !bytes.Equal(serialSum, parallelSum) {
		t.Fatalf("cluster rollup differs between 1 and 8 workers:\n--- serial ---\n%s\n--- parallel ---\n%s", serialSum, parallelSum)
	}
}

// TestClusterTraceFlowsAcrossMachines validates the merged trace and pins
// what makes it a CLUSTER trace: it passes the same validator nemesis-
// timeline -check runs, renders a process lane per machine and per swap
// server, and carries flow arrows whose start (client net.out hop) and
// finish (server service slice) sit in different process lanes.
func TestClusterTraceFlowsAcrossMachines(t *testing.T) {
	res, err := RunCluster(tracedClusterOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Trace.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("merged trace fails validation: %v", err)
	}

	var doc struct {
		TraceEvents []struct {
			Ph   string          `json:"ph"`
			Pid  int             `json:"pid"`
			ID   *uint64         `json:"id"`
			Name string          `json:"name"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}

	// Lane inventory: process_name metadata must cover every machine and
	// every swap server.
	lanes := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			var args struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal(ev.Args, &args); err != nil {
				t.Fatal(err)
			}
			lanes[args.Name] = true
		}
	}
	for _, want := range []string{"m0", "m1", "m0.swap0", "m0.swap1", "m1.swap0", "m1.swap1"} {
		if !lanes[want] {
			t.Fatalf("merged trace lacks lane %q (got %v)", want, lanes)
		}
	}

	// Flow arrows: every flow ID's start and at least one step/finish must
	// live in different pids — that IS the cross-machine link.
	startPid := map[uint64]int{}
	crossed := map[uint64]bool{}
	var starts, binds int
	for _, ev := range doc.TraceEvents {
		if ev.ID == nil {
			continue
		}
		switch ev.Ph {
		case "s":
			starts++
			startPid[*ev.ID] = ev.Pid
		case "t", "f":
			binds++
			if pid, ok := startPid[*ev.ID]; ok && pid != ev.Pid {
				crossed[*ev.ID] = true
			}
		}
	}
	if starts == 0 || binds == 0 {
		t.Fatalf("no flow events in merged trace (starts=%d binds=%d)", starts, binds)
	}
	if len(crossed) == 0 {
		t.Fatal("no flow links a client lane to a server lane")
	}
	// Machine lanes (client side) must originate flows on BOTH machines.
	clientPids := map[int]bool{}
	for _, pid := range startPid {
		clientPids[pid] = true
	}
	if len(clientPids) < 2 {
		t.Fatalf("flow starts confined to one machine lane: pids %v", clientPids)
	}
}
