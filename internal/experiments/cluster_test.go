package experiments

import (
	"bytes"
	"testing"
	"time"
)

// clusterOpts is the tests' scaled-down cluster.
func clusterOpts(machines, domains int) ClusterOptions {
	opt := DefaultClusterOptions()
	opt.Machines = machines
	opt.DomainsPerMachine = domains
	opt.Measure = 2 * time.Second
	return opt
}

// TestClusterScenario runs a small cluster end to end and checks the
// guarantees the scenario is built to prove: every domain is admitted and
// placed, paging flows through the remote pool, and the audit shows zero
// guarantee violations and zero revocation kills.
func TestClusterScenario(t *testing.T) {
	res, err := RunCluster(clusterOpts(2, 60))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Machines) != 2 {
		t.Fatalf("machines = %d", len(res.Machines))
	}
	tot := res.Totals()
	if tot.Domains != 120 || tot.HotDomains != 12 {
		t.Fatalf("domains %d hot %d", tot.Domains, tot.HotDomains)
	}
	if tot.Faults == 0 || tot.BytesTouched == 0 || tot.Events == 0 {
		t.Fatalf("no activity: %+v", tot)
	}
	if tot.RemoteReads == 0 || tot.RemoteWrites == 0 {
		t.Fatalf("no remote paging: %+v", tot)
	}
	if tot.Violations != 0 || tot.Kills != 0 {
		t.Fatalf("QoS breached: %d violations, %d kills", tot.Violations, tot.Kills)
	}
	if tot.MonitorTicks == 0 {
		t.Fatal("incremental monitor never ticked")
	}
}

// TestClusterDeterministicAcrossWorkers is the serial-vs-parallel identity:
// the summary must be byte-identical whether machines run on one worker or
// fan out across eight.
func TestClusterDeterministicAcrossWorkers(t *testing.T) {
	opt := clusterOpts(4, 40)
	opt.Workers = 1
	serial, err := RunCluster(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 8
	parallel, err := RunCluster(opt)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := serial.WriteSummary(&a); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteSummary(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("serial and parallel summaries differ:\n--- serial ---\n%s--- parallel ---\n%s", a.String(), b.String())
	}
}

// TestClusterPerDomainCostSubLinear is the scaling acceptance check in
// miniature: growing the population 10× must not grow the per-domain event
// cost — the indexed scheduler and incremental monitor keep idle domains
// free, so per-domain events stay within 3× of the small cell's.
func TestClusterPerDomainCostSubLinear(t *testing.T) {
	small, err := RunCluster(clusterOpts(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunCluster(clusterOpts(1, 1000))
	if err != nil {
		t.Fatal(err)
	}
	perSmall := float64(small.Totals().Events) / 100
	perBig := float64(big.Totals().Events) / 1000
	t.Logf("events/domain: %d domains %.1f, %d domains %.1f", 100, perSmall, 1000, perBig)
	if perBig > 3*perSmall {
		t.Fatalf("per-domain cost grew superlinearly: %.1f → %.1f events/domain", perSmall, perBig)
	}
}
