package experiments

import (
	"testing"
	"time"
)

// TestSuiteSerialEqualsParallel pins the sweep runner's determinism end to
// end: the full suite, run serially and with a fan-out, must produce
// byte-identical cell output (every cell is its own seeded Simulator, so
// goroutine interleaving between cells cannot leak into results).
func TestSuiteSerialEqualsParallel(t *testing.T) {
	const measure = time.Second
	serial, err := RunSuite(measure, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSuite(measure, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("cell count: serial %d, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Name != parallel[i].Name {
			t.Errorf("cell %d name: serial %q, parallel %q", i, serial[i].Name, parallel[i].Name)
		}
		if serial[i].Output != parallel[i].Output {
			t.Errorf("cell %q output differs:\nserial:\n%s\nparallel:\n%s",
				serial[i].Name, serial[i].Output, parallel[i].Output)
		}
	}
}
