package experiments

import (
	"context"
	"reflect"
	"testing"
	"time"
)

// TestPagingForkEquivalence pins the tentpole guarantee for the Fig. 7/8
// harness: measuring on a fork of a warmed world is byte-identical to
// measuring on the warmed world itself — means, measure window and the
// full USD scheduler trace.
func TestPagingForkEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*PagingOptions)
	}{
		{"fig7", func(*PagingOptions) {}},
		{"fig8", func(o *PagingOptions) { o.Write = true; o.Forgetful = true }},
		{"telemetry+hog", func(o *PagingOptions) { o.Telemetry = true; o.Hog = true }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opt := DefaultPagingOptions()
			opt.Measure = 2 * time.Second
			tc.mut(&opt)
			cold, err := RunPagingForked(opt, false)
			if err != nil {
				t.Fatal(err)
			}
			forked, err := RunPagingForked(opt, true)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cold.MeanMbps, forked.MeanMbps) {
				t.Errorf("MeanMbps: cold %v, forked %v", cold.MeanMbps, forked.MeanMbps)
			}
			if cold.MeasureStart != forked.MeasureStart {
				t.Errorf("MeasureStart: cold %v, forked %v", cold.MeasureStart, forked.MeasureStart)
			}
			if !reflect.DeepEqual(cold.Log.Events(), forked.Log.Events()) {
				t.Errorf("USD trace differs between cold and forked runs")
			}
		})
	}
}

// TestFig9ForkEquivalence: the FS client is created after the fork, in the
// measure world — its throughput and the pagers' must not depend on
// whether the pagers' warm world was forked.
func TestFig9ForkEquivalence(t *testing.T) {
	opt := DefaultFig9Options()
	opt.Measure = 2 * time.Second
	cold, err := RunFig9Forked(opt, false)
	if err != nil {
		t.Fatal(err)
	}
	forked, err := RunFig9Forked(opt, true)
	if err != nil {
		t.Fatal(err)
	}
	if cold.AloneMbps != forked.AloneMbps || cold.ContendedMbps != forked.ContendedMbps {
		t.Errorf("means: cold (%v, %v), forked (%v, %v)",
			cold.AloneMbps, cold.ContendedMbps, forked.AloneMbps, forked.ContendedMbps)
	}
	if !reflect.DeepEqual(cold.PagerMbps, forked.PagerMbps) {
		t.Errorf("PagerMbps: cold %v, forked %v", cold.PagerMbps, forked.PagerMbps)
	}
}

// TestTable1ForkEquivalence: every row measured on a fork of the shared
// premapped world must equal the row measured on its own cold boot, at any
// worker count.
func TestTable1ForkEquivalence(t *testing.T) {
	cold, err := Table1Forked(1, false)
	if err != nil {
		t.Fatal(err)
	}
	forked, err := Table1Forked(1, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, forked) {
		t.Errorf("rows differ:\ncold   %+v\nforked %+v", cold, forked)
	}
	wide, err := Table1Forked(8, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, wide) {
		t.Errorf("rows differ at workers=8:\ncold %+v\nwide %+v", cold, wide)
	}
}

// TestClusterForkEquivalence: one warm admission prefix forked and
// reseeded per machine must reproduce each machine's cold boot exactly —
// events, faults, remote traffic, audit counts and monitor ticks.
func TestClusterForkEquivalence(t *testing.T) {
	opt := ClusterOptions{
		Machines:          2,
		DomainsPerMachine: 12,
		Servers:           2,
		Measure:           time.Second,
		Seed:              7,
	}
	cold, err := RunClusterForked(opt, false)
	if err != nil {
		t.Fatal(err)
	}
	forked, err := RunClusterForked(opt, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold.Machines, forked.Machines) {
		t.Errorf("machines differ:\ncold   %+v\nforked %+v", cold.Machines, forked.Machines)
	}
	if cold.Machines[0].Faults == 0 || cold.Machines[0].RemoteWrites == 0 {
		t.Errorf("cluster cell implausibly idle: %+v", cold.Machines[0])
	}
	// Distinct seeds must actually reach the forked machines: two cells
	// with different seeds should not be identical in every field.
	if reflect.DeepEqual(forked.Machines[0].Events, forked.Machines[1].Events) &&
		reflect.DeepEqual(forked.Machines[0].Faults, forked.Machines[1].Faults) &&
		forked.Machines[0].BytesTouched == forked.Machines[1].BytesTouched {
		t.Logf("warning: machine cells identical — per-machine reseed may not be reaching the workload")
	}
}

// TestSuiteForkedEquivalence runs the four world-reusing suite cells cold
// and forked (the other cells are the same code path in both modes and are
// covered by the full-suite CI job): outputs must match byte for byte, and
// the forked suite must also be stable under a worker fan-out.
func TestSuiteForkedEquivalence(t *testing.T) {
	const measure = time.Second
	pick := func(cells []SuiteCell) map[string]string {
		out := make(map[string]string)
		for _, c := range cells {
			switch c.Name {
			case "table1", "fig7 paging-in", "fig8 paging-out", "fig9 fs-isolation":
				out[c.Name] = c.Output
			}
		}
		return out
	}
	ctx := context.Background()
	cold, err := RunSuiteForked(ctx, measure, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	forked, err := RunSuiteForked(ctx, measure, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RunSuiteForked(ctx, measure, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	coldM, forkedM, serialM := pick(cold), pick(forked), pick(serial)
	if len(coldM) != 4 {
		t.Fatalf("expected 4 forkable cells, got %d", len(coldM))
	}
	for name, want := range coldM {
		if got := forkedM[name]; got != want {
			t.Errorf("%s: cold vs forked differ:\ncold:   %sforked: %s", name, want, got)
		}
		if got := serialM[name]; got != want {
			t.Errorf("%s: parallel vs serial forked differ:\ncold:   %sserial: %s", name, want, got)
		}
	}
}
