package experiments

import (
	"time"

	"nemesis/internal/atropos"
	"nemesis/internal/baseline"
	"nemesis/internal/core"
	"nemesis/internal/domain"
	"nemesis/internal/mem"
	"nemesis/internal/sim"
	"nemesis/internal/vm"
	"nemesis/internal/workload"
)

// LaxityResult compares the USD with and without the laxity mechanism
// (ablation A1: the "short-block problem" of early USD versions).
type LaxityResult struct {
	WithLaxityMbps    []float64
	WithoutLaxityMbps []float64
	// TxnsPerPeriodWithout is the unpipelined clients' mean transactions
	// per period without laxity (the paper predicts ~1).
	TxnsPerPeriodWithout []float64
}

// AblationLaxity runs a shortened Fig. 7 twice, toggling laxity.
func AblationLaxity(measure time.Duration) (*LaxityResult, error) {
	run := func(lax bool) (*PagingResult, error) {
		opt := DefaultPagingOptions()
		opt.LaxityEnabled = lax
		opt.Measure = measure
		// Skip the long init passes: steady-state behaviour is the point.
		opt.VirtBytes = 1 << 20
		return RunPaging(opt)
	}
	withLax, err := run(true)
	if err != nil {
		return nil, err
	}
	withoutLax, err := run(false)
	if err != nil {
		return nil, err
	}
	res := &LaxityResult{
		WithLaxityMbps:    withLax.MeanMbps,
		WithoutLaxityMbps: withoutLax.MeanMbps,
	}
	periods := measure.Seconds() / withoutLax.Opts.Period.Seconds()
	for _, pg := range withoutLax.Pagers {
		name := pg.Drv.Swap().Name()
		txns := 0
		for _, e := range withoutLax.Log.ByClient(name) {
			if e.Kind == 0 && e.Start >= sim.Time(withoutLax.MeasureStart) {
				txns++
			}
		}
		res.TxnsPerPeriodWithout = append(res.TxnsPerPeriodWithout, float64(txns)/periods)
	}
	return res, nil
}

// FCFSResult compares Atropos scheduling with an unscheduled (FCFS) disk
// (ablation A2): without QoS the contracted 4:2:1 split collapses to
// demand-driven equality.
type FCFSResult struct {
	AtroposMbps []float64
	FCFSMbps    []float64
}

// AblationFCFS runs a shortened Fig. 7 on both schedulers.
func AblationFCFS(measure time.Duration) (*FCFSResult, error) {
	run := func(fcfs bool) (*PagingResult, error) {
		opt := DefaultPagingOptions()
		opt.FCFS = fcfs
		opt.Measure = measure
		opt.VirtBytes = 1 << 20
		return RunPaging(opt)
	}
	at, err := run(false)
	if err != nil {
		return nil, err
	}
	fc, err := run(true)
	if err != nil {
		return nil, err
	}
	return &FCFSResult{AtroposMbps: at.MeanMbps, FCFSMbps: fc.MeanMbps}, nil
}

// CrosstalkResult measures the paper's central argument (ablation A3): a
// victim's paging throughput alone and alongside an aggressive faulter,
// under self-paging and under a shared external pager.
type CrosstalkResult struct {
	SelfAloneMbps, SelfContendedMbps float64
	ExtAloneMbps, ExtContendedMbps   float64
}

// SelfIsolation returns contended/alone under self-paging (want ~1).
func (r *CrosstalkResult) SelfIsolation() float64 {
	if r.SelfAloneMbps == 0 {
		return 0
	}
	return r.SelfContendedMbps / r.SelfAloneMbps
}

// ExtIsolation returns contended/alone under the external pager (want <1,
// showing crosstalk).
func (r *CrosstalkResult) ExtIsolation() float64 {
	if r.ExtAloneMbps == 0 {
		return 0
	}
	return r.ExtContendedMbps / r.ExtAloneMbps
}

// extClient starts a client of the external pager that loops sequentially
// over a stretch, returning a pointer to its progress counter.
func extClient(sys *core.System, ep *baseline.ExternalPager, name string, virt uint64) (*int64, error) {
	dom, err := sys.NewDomain(name,
		atropos.QoS{P: 100 * time.Millisecond, S: 20 * time.Millisecond, X: true},
		mem.Contract{})
	if err != nil {
		return nil, err
	}
	st, err := ep.NewClientStretch(dom, virt)
	if err != nil {
		return nil, err
	}
	bytes := new(int64)
	dom.Go("main", func(t *domain.Thread) {
		for {
			for off := uint64(0); off < virt; off += vm.PageSize {
				if err := t.Touch(st.Base()+vm.VA(off), vm.PageSize, vm.AccessRead); err != nil {
					return
				}
				*bytes += int64(vm.PageSize)
			}
		}
	})
	return bytes, nil
}

// AblationCrosstalk runs the four configurations. Both systems get the
// same total resources: 8 frames of page pool per client (or 16 shared)
// and the same disk capability.
func AblationCrosstalk(measure time.Duration) (*CrosstalkResult, error) {
	const virt = 1 << 20 // 1 MB per client
	res := &CrosstalkResult{}

	// Self-paging: per-client contracts (8 frames, 25% disk each).
	selfRun := func(withAggressor bool) (float64, error) {
		cfg := core.DefaultConfig()
		cfg.MemoryFrames = 1024
		sys := core.New(cfg)
		mk := func(name string) (*workload.Pager, error) {
			pc := workload.DefaultPagerConfig(name, 62500*time.Microsecond) // 25%
			pc.PhysFrames = 8
			pc.VirtBytes = virt
			pc.SkipInit = true
			return workload.StartPager(sys, pc, nil)
		}
		victim, err := mk("victim")
		if err != nil {
			return 0, err
		}
		if withAggressor {
			if _, err := mk("aggressor"); err != nil {
				return 0, err
			}
		}
		sys.Run(measure)
		mbps := float64(victim.Bytes) * 8 / 1e6 / measure.Seconds()
		sys.Shutdown()
		return mbps, nil
	}

	// External pager: one shared pool (16 frames), one 50% disk contract,
	// strict FCFS fault service.
	extRun := func(withAggressor bool) (float64, error) {
		cfg := core.DefaultConfig()
		cfg.MemoryFrames = 1024
		sys := core.New(cfg)
		ep, err := baseline.NewExternalPager(sys, 16, 64<<20,
			atropos.QoS{P: 250 * time.Millisecond, S: 125 * time.Millisecond, L: 10 * time.Millisecond})
		if err != nil {
			return 0, err
		}
		victimBytes, err := extClient(sys, ep, "victim", virt)
		if err != nil {
			return 0, err
		}
		if withAggressor {
			if _, err := extClient(sys, ep, "aggressor", virt); err != nil {
				return 0, err
			}
		}
		sys.Run(measure)
		mbps := float64(*victimBytes) * 8 / 1e6 / measure.Seconds()
		sys.Shutdown()
		return mbps, nil
	}

	var err error
	if res.SelfAloneMbps, err = selfRun(false); err != nil {
		return nil, err
	}
	if res.SelfContendedMbps, err = selfRun(true); err != nil {
		return nil, err
	}
	if res.ExtAloneMbps, err = extRun(false); err != nil {
		return nil, err
	}
	if res.ExtContendedMbps, err = extRun(true); err != nil {
		return nil, err
	}
	return res, nil
}

// SlackResult measures the x flag (ablation A4): the extra throughput an
// x=true client extracts from an otherwise idle disk, versus x=false.
type SlackResult struct {
	XTrueMbps, XFalseMbps float64
}

// AblationSlack runs one 10%-guaranteed pager on an idle disk, with and
// without slack eligibility.
func AblationSlack(measure time.Duration) (*SlackResult, error) {
	run := func(x bool) (float64, error) {
		cfg := core.DefaultConfig()
		cfg.MemoryFrames = 1024
		sys := core.New(cfg)
		sys.USD.SlackEnabled = true
		pc := workload.DefaultPagerConfig("app", 25*time.Millisecond)
		pc.DiskQoS.X = x
		pc.VirtBytes = 1 << 20
		pc.SkipInit = true
		pg, err := workload.StartPager(sys, pc, nil)
		if err != nil {
			return 0, err
		}
		sys.Run(measure)
		mbps := float64(pg.Bytes) * 8 / 1e6 / measure.Seconds()
		sys.Shutdown()
		return mbps, nil
	}
	xt, err := run(true)
	if err != nil {
		return nil, err
	}
	xf, err := run(false)
	if err != nil {
		return nil, err
	}
	return &SlackResult{XTrueMbps: xt, XFalseMbps: xf}, nil
}

// RevocationResult measures the latency of the two revocation paths
// (ablation A5): transparent (victim's top-of-stack frames unused) versus
// intrusive (dirty pages must be cleaned through the USD first).
type RevocationResult struct {
	TransparentMs float64
	IntrusiveMs   float64
}

// AblationRevocation measures a single AllocFrame that triggers each path.
func AblationRevocation() (*RevocationResult, error) {
	res := &RevocationResult{}
	run := func(dirty bool) (float64, error) {
		cfg := core.DefaultConfig()
		cfg.MemoryFrames = 16
		sys := core.New(cfg)
		hog, err := sys.NewDomain("hog",
			atropos.QoS{P: 100 * time.Millisecond, S: 20 * time.Millisecond, X: true},
			mem.Contract{Guaranteed: 2, Optimistic: 14})
		if err != nil {
			return 0, err
		}
		st, _, err := sys.NewPagedStretch(hog, 16*vm.PageSize, 64*vm.PageSize,
			atropos.QoS{P: 250 * time.Millisecond, S: 125 * time.Millisecond, L: 10 * time.Millisecond})
		if err != nil {
			return 0, err
		}
		hog.Go("main", func(t *domain.Thread) {
			if dirty {
				// Every frame ends up mapped and dirty: intrusive path.
				t.Touch(st.Base(), 16*vm.PageSize, vm.AccessWrite)
			} else {
				// Allocate frames but leave them unused: transparent path.
				core.PreallocateFrames(t, 16)
			}
		})
		sys.Run(2 * time.Second)

		needy, err := sys.NewDomain("needy",
			atropos.QoS{P: 100 * time.Millisecond, S: 20 * time.Millisecond, X: true},
			mem.Contract{Guaranteed: 8})
		if err != nil {
			return 0, err
		}
		var latency time.Duration
		needy.Go("main", func(t *domain.Thread) {
			t0 := t.Now()
			if _, err := needy.MemClient().AllocFrame(t.Proc()); err != nil {
				return
			}
			latency = t.Now().Sub(t0)
		})
		sys.Run(5 * time.Second)
		sys.Shutdown()
		return latency.Seconds() * 1e3, nil
	}
	var err error
	if res.TransparentMs, err = run(false); err != nil {
		return nil, err
	}
	if res.IntrusiveMs, err = run(true); err != nil {
		return nil, err
	}
	return res, nil
}
