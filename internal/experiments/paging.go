// Package experiments contains one harness per table and figure of the
// paper's evaluation (§7), plus the ablations DESIGN.md calls out. Each
// harness builds a fresh simulated machine, runs the paper's workload and
// returns the series/rows the paper plots, so cmd/ tools and benchmarks can
// regenerate every result.
package experiments

import (
	"fmt"
	"time"

	"nemesis/internal/atropos"
	"nemesis/internal/core"
	"nemesis/internal/obs"
	"nemesis/internal/stretchdrv"
	"nemesis/internal/trace"
	"nemesis/internal/usd"
	"nemesis/internal/workload"
)

// PagingOptions parameterises the Fig. 7 / Fig. 8 experiments.
type PagingOptions struct {
	// Slices are the per-application disk slices (paper: 25, 50, 100 ms).
	Slices []time.Duration
	// Period is the common period (paper: 250 ms).
	Period time.Duration
	// Laxity is the l parameter (paper: 10 ms).
	Laxity time.Duration
	// LaxityEnabled=false reproduces the pre-laxity USD (ablation A1).
	LaxityEnabled bool
	// FCFS runs the unscheduled-disk ablation (A2).
	FCFS bool
	// Write + Forgetful select the page-out experiment (Fig. 8).
	Write, Forgetful bool
	// Policy, Writeback and ClusterSize parameterise the applications'
	// pager engines (zero values: FIFO, demand — or forgetful when
	// Forgetful is set — and no write clustering).
	Policy      stretchdrv.PolicyKind
	Writeback   stretchdrv.WritebackKind
	ClusterSize int
	// VirtBytes, PhysFrames, SwapBytes size each application
	// (paper: 4 MB, 2 frames, 16 MB).
	VirtBytes  uint64
	PhysFrames int
	SwapBytes  int64
	// InitLimit bounds the initialisation phase; Measure is the measured
	// window after every application has initialised.
	InitLimit time.Duration
	Measure   time.Duration
	// SampleEvery is the watch-thread period (paper: 5 s).
	SampleEvery time.Duration
	Seed        int64
	// Telemetry enables the observability registry (fault spans, metric
	// series) and starts the QoS-crosstalk monitor on the system.
	Telemetry bool
	// Hog admits a fourth application with a small (5%) disk slice but an
	// unbounded paging appetite. Under Atropos the contention it creates
	// must land in its own attribution account while the contracted
	// applications' breakdowns stay flat — the attribution experiments
	// assert exactly that. Off for all figure/golden runs.
	Hog bool
	// Timeline (implies Telemetry) starts the time-series recorder for the
	// measured window and adds a deterministic revocation episode — a hog
	// domain holding optimistic frames is revoked from mid-measure — so the
	// exported timeline always contains revocation-phase audit events. It
	// perturbs the workload, so it is off for golden/figure runs.
	Timeline bool
	// Recorder overrides the recorder defaults when Timeline is set.
	Recorder obs.RecorderConfig
	// SnapshotEvery, with Telemetry, invokes OnSnapshot at this period of
	// simulated time during the measured window — nemesis-top uses it to
	// render periodic per-domain tables.
	SnapshotEvery time.Duration
	OnSnapshot    func(sys *core.System)
}

// DefaultPagingOptions returns the paper's parameters for Fig. 7.
func DefaultPagingOptions() PagingOptions {
	return PagingOptions{
		Slices:        []time.Duration{25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond},
		Period:        250 * time.Millisecond,
		Laxity:        10 * time.Millisecond,
		LaxityEnabled: true,
		VirtBytes:     4 << 20,
		PhysFrames:    2,
		SwapBytes:     16 << 20,
		InitLimit:     10 * time.Minute,
		Measure:       40 * time.Second,
		SampleEvery:   5 * time.Second,
		Seed:          1,
	}
}

// PagingResult is the outcome of a Fig. 7/8-style run.
type PagingResult struct {
	Opts   PagingOptions
	Sys    *core.System
	Pagers []*workload.Pager
	// Set holds one bandwidth series per application (Mbit/s, the top
	// half of the figure).
	Set *trace.SeriesSet
	// Log is the USD scheduler trace (the bottom half of the figure).
	Log *trace.Log
	// MeanMbps is each application's mean sustained bandwidth over the
	// measured window, in slice order.
	MeanMbps []float64
	// MeasureStart marks where the measured window began.
	MeasureStart time.Duration
}

// Ratios returns consecutive bandwidth ratios (app[i+1]/app[i]); for the
// paper's 10/20/40% contracts both should be ~2.
func (r *PagingResult) Ratios() []float64 {
	var out []float64
	for i := 1; i < len(r.MeanMbps); i++ {
		if r.MeanMbps[i-1] == 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, r.MeanMbps[i]/r.MeanMbps[i-1])
	}
	return out
}

// RunPaging executes a Fig. 7/8-style experiment.
func RunPaging(opt PagingOptions) (*PagingResult, error) {
	if opt.Timeline {
		opt.Telemetry = true
	}
	cfg := core.DefaultConfig()
	cfg.Seed = opt.Seed
	cfg.MemoryFrames = 2048 // 16 MB: ample, contention is per-contract
	cfg.Telemetry = opt.Telemetry
	sys := core.New(cfg)
	sys.USD.LaxityEnabled = opt.LaxityEnabled
	sys.USD.FCFS = opt.FCFS
	if opt.Telemetry {
		sys.StartCrosstalkMonitor(obs.DefaultCrosstalkConfig())
	}

	res := &PagingResult{Opts: opt, Sys: sys, Set: &trace.SeriesSet{}, Log: sys.USDLog}
	for i, slice := range opt.Slices {
		name := fmt.Sprintf("app%d-%d%%", i+1, int(100*float64(slice)/float64(opt.Period)))
		pc := workload.DefaultPagerConfig(name, slice)
		pc.DiskQoS = atropos.QoS{P: opt.Period, S: slice, X: false, L: opt.Laxity}
		pc.VirtBytes = opt.VirtBytes
		pc.PhysFrames = opt.PhysFrames
		pc.SwapBytes = opt.SwapBytes
		pc.Write = opt.Write
		pc.Forgetful = opt.Forgetful
		pc.Policy = opt.Policy
		pc.Writeback = opt.Writeback
		pc.ClusterSize = opt.ClusterSize
		pc.SampleEvery = opt.SampleEvery
		pg, err := workload.StartPager(sys, pc, res.Set.New(name))
		if err != nil {
			return nil, err
		}
		res.Pagers = append(res.Pagers, pg)
	}
	if opt.Hog {
		// 5% of the period: a starved contract, so the hog's demand piles
		// up in its own usd.queue account instead of on the victims.
		slice := opt.Period / 20
		pc := workload.DefaultPagerConfig("hog-5%", slice)
		pc.DiskQoS = atropos.QoS{P: opt.Period, S: slice, X: false, L: opt.Laxity}
		pc.VirtBytes = opt.VirtBytes
		pc.PhysFrames = opt.PhysFrames
		pc.SwapBytes = opt.SwapBytes
		pc.Write = opt.Write
		pc.Forgetful = opt.Forgetful
		pc.SampleEvery = opt.SampleEvery
		pg, err := workload.StartPager(sys, pc, res.Set.New("hog-5%"))
		if err != nil {
			return nil, err
		}
		res.Pagers = append(res.Pagers, pg)
	}

	// Initialisation: run until every application reports ready.
	deadline := sys.Sim.Now().Add(opt.InitLimit)
	for {
		ready := true
		for _, pg := range res.Pagers {
			if !pg.Initialised {
				ready = false
			}
		}
		if ready {
			break
		}
		if sys.Sim.Now() >= deadline {
			return nil, fmt.Errorf("experiments: initialisation exceeded %v", opt.InitLimit)
		}
		sys.Run(time.Second)
	}
	res.MeasureStart = sys.Sim.Now().Duration()

	if opt.Timeline {
		sys.StartRecorder(opt.Recorder)
		if err := startRevocationEpisode(sys, opt.Measure/2); err != nil {
			return nil, err
		}
	}

	if opt.Telemetry && opt.SnapshotEvery > 0 && opt.OnSnapshot != nil {
		for remaining := opt.Measure; remaining > 0; {
			step := opt.SnapshotEvery
			if step > remaining {
				step = remaining
			}
			sys.Run(step)
			remaining -= step
			opt.OnSnapshot(sys)
		}
	} else {
		sys.Run(opt.Measure)
	}

	start := sys.Sim.Now().Add(-opt.Measure)
	for _, pg := range res.Pagers {
		res.MeanMbps = append(res.MeanMbps, pg.Series.MeanAfter(start))
	}
	sys.Shutdown()
	return res, nil
}

// Fig7 runs the paging-in experiment with the paper's parameters.
func Fig7() (*PagingResult, error) {
	return RunPaging(DefaultPagingOptions())
}

// Fig8 runs the paging-out experiment: the modified ("forgetful") stretch
// driver never pages in, and the main loop writes every byte.
func Fig8() (*PagingResult, error) {
	opt := DefaultPagingOptions()
	opt.Write = true
	opt.Forgetful = true
	return RunPaging(opt)
}

// Fig9Options parameterises the file-system isolation experiment.
type Fig9Options struct {
	// FSQoS is the file-system client's contract (paper: 125/250 ms).
	FSQoS atropos.QoS
	// PagerSlices are the competing pagers' slices (paper: 10% and 20%).
	PagerSlices []time.Duration
	Period      time.Duration
	Laxity      time.Duration
	Depth       int
	Measure     time.Duration
	SampleEvery time.Duration
	Seed        int64
	// Timeline enables telemetry plus the time-series recorder on the
	// contended run, exposing it as Fig9Result.ContendedSys for export.
	Timeline bool
	// Recorder overrides the recorder defaults when Timeline is set.
	Recorder obs.RecorderConfig
}

// DefaultFig9Options returns the paper's parameters.
func DefaultFig9Options() Fig9Options {
	return Fig9Options{
		FSQoS:       atropos.QoS{P: 250 * time.Millisecond, S: 125 * time.Millisecond, X: false, L: 10 * time.Millisecond},
		PagerSlices: []time.Duration{25 * time.Millisecond, 50 * time.Millisecond},
		Period:      250 * time.Millisecond,
		Laxity:      10 * time.Millisecond,
		Depth:       8,
		Measure:     30 * time.Second,
		SampleEvery: 5 * time.Second,
		Seed:        1,
	}
}

// Fig9Result holds the isolation experiment's outcome.
type Fig9Result struct {
	Opts Fig9Options
	// AloneMbps is the FS client's sustained bandwidth with no other
	// disk activity; ContendedMbps with two heavily paging applications.
	AloneMbps, ContendedMbps float64
	// AloneSeries/ContendedSeries are the plotted series.
	AloneSeries, ContendedSeries *trace.Series
	// PagerMbps is the pagers' bandwidth in the contended run.
	PagerMbps []float64
	// ContendedSys is the contended run's system when Fig9Options.Timeline
	// is set (for timeline export), nil otherwise.
	ContendedSys *core.System
}

// Isolation returns the contended/alone throughput ratio (1.0 = perfect).
func (r *Fig9Result) Isolation() float64 {
	if r.AloneMbps == 0 {
		return 0
	}
	return r.ContendedMbps / r.AloneMbps
}

// Fig9 runs the file-system isolation experiment: the FS client alone,
// then again alongside two paging applications.
func Fig9() (*Fig9Result, error) {
	return RunFig9(DefaultFig9Options())
}

// RunFig9 executes the experiment with explicit options.
func RunFig9(opt Fig9Options) (*Fig9Result, error) {
	res := &Fig9Result{Opts: opt}

	runOnce := func(withPagers bool) (*trace.Series, float64, []float64, error) {
		cfg := core.DefaultConfig()
		cfg.Seed = opt.Seed
		cfg.MemoryFrames = 2048
		cfg.Telemetry = opt.Timeline && withPagers
		sys := core.New(cfg)
		// FS data lives on the first quarter of the disk; swap files are
		// in the second half (DefaultConfig's partition).
		part := usd.Extent{Start: 0, Count: sys.Disk.Geom.TotalBlocks / 4}
		fcfg := workload.DefaultFSClientConfig("fs", part)
		fcfg.DiskQoS = opt.FSQoS
		fcfg.Depth = opt.Depth
		fcfg.SampleEvery = opt.SampleEvery
		var set trace.SeriesSet
		fc, err := workload.StartFSClient(sys, fcfg, set.New("fs"))
		if err != nil {
			return nil, 0, nil, err
		}
		var pagers []*workload.Pager
		if withPagers {
			for i, slice := range opt.PagerSlices {
				name := fmt.Sprintf("pager%d-%d%%", i+1, int(100*float64(slice)/float64(opt.Period)))
				pc := workload.DefaultPagerConfig(name, slice)
				pc.DiskQoS = atropos.QoS{P: opt.Period, S: slice, X: false, L: opt.Laxity}
				pc.SampleEvery = opt.SampleEvery
				pg, err := workload.StartPager(sys, pc, set.New(name))
				if err != nil {
					return nil, 0, nil, err
				}
				pagers = append(pagers, pg)
			}
		}
		if opt.Timeline && withPagers {
			sys.StartRecorder(opt.Recorder)
			res.ContendedSys = sys
		}
		sys.Run(opt.Measure)
		fc.Stop()
		var pagerMbps []float64
		for _, pg := range pagers {
			pagerMbps = append(pagerMbps, pg.Series.Mean())
		}
		mean := set.Get("fs").MeanAfter(0)
		sys.Shutdown()
		return set.Get("fs"), mean, pagerMbps, nil
	}

	var err error
	res.AloneSeries, res.AloneMbps, _, err = runOnce(false)
	if err != nil {
		return nil, err
	}
	res.ContendedSeries, res.ContendedMbps, res.PagerMbps, err = runOnce(true)
	if err != nil {
		return nil, err
	}
	return res, nil
}
