package experiments

import (
	"testing"
	"time"
)

// Experiment tests use shortened measurement windows: the assertions are on
// the *shapes* the paper reports, which emerge well before the full 40 s.

func TestFig7Shape(t *testing.T) {
	opt := DefaultPagingOptions()
	opt.Measure = 15 * time.Second
	r, err := RunPaging(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MeanMbps) != 3 {
		t.Fatalf("means = %v", r.MeanMbps)
	}
	// The ratio between the three domains must be very close to 4:2:1.
	for i, ratio := range r.Ratios() {
		if ratio < 1.8 || ratio > 2.2 {
			t.Errorf("ratio[%d] = %.2f, want ~2.0 (means %v)", i, ratio, r.MeanMbps)
		}
	}
	// Every application makes real progress (Mbit/s, not noise).
	if r.MeanMbps[0] < 1 {
		t.Errorf("smallest client at %.2f Mbit/s", r.MeanMbps[0])
	}
	// No lax charge exceeds l = 10 ms.
	for client, lax := range r.Log.MaxLax() {
		if lax > 0.010+1e-6 {
			t.Errorf("%s lax span %.4fs exceeds 10ms", client, lax)
		}
	}
	// The scheduler trace contains all three event kinds the paper plots.
	var txns, laxes, allocs int
	for _, e := range r.Log.Events() {
		switch e.Kind {
		case 0:
			txns++
		case 1:
			laxes++
		case 2:
			allocs++
		}
	}
	if txns == 0 || laxes == 0 || allocs == 0 {
		t.Errorf("trace incomplete: txns=%d lax=%d allocs=%d", txns, laxes, allocs)
	}
	// The Atropos guarantee invariant holds across the entire run: no
	// client's charged time exceeds slice + one roll-over transaction in
	// any period-aligned window.
	assertGuarantees(t, r)
}

// assertGuarantees validates the trace of a paging run against every
// client's contract, allowing one maximal transaction of roll-over slop.
func assertGuarantees(t *testing.T, r *PagingResult) {
	t.Helper()
	slices := make(map[string]time.Duration)
	for _, pg := range r.Pagers {
		slices[pg.Drv.Swap().Name()] = pg.Cfg.DiskQoS.S
	}
	var maxTxn time.Duration
	for _, e := range r.Log.Events() {
		if e.Kind == 0 {
			if d := e.End.Sub(e.Start); d > maxTxn {
				maxTxn = d
			}
		}
	}
	violations := r.Log.ValidateGuarantees(slices, r.Opts.Period, maxTxn, r.Sys.Sim.Now())
	for _, v := range violations {
		t.Errorf("guarantee violated: %s busy %.4fs > %.4fs in window at %v", v.Client, v.Busy, v.Allowed, v.Window)
	}
}

func TestFig8Shape(t *testing.T) {
	opt := DefaultPagingOptions()
	opt.Write = true
	opt.Forgetful = true
	opt.Measure = 15 * time.Second
	r, err := RunPaging(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Roughly proportional progress.
	for i, ratio := range r.Ratios() {
		if ratio < 1.5 || ratio > 2.5 {
			t.Errorf("ratio[%d] = %.2f (means %v)", i, ratio, r.MeanMbps)
		}
	}
	// Overall throughput much reduced compared to paging in: the largest
	// client stays below the *smallest* Fig. 7-style client would.
	if r.MeanMbps[2] > 4 {
		t.Errorf("page-out throughput %.2f Mbit/s implausibly high", r.MeanMbps[2])
	}
	// Almost every transaction takes on the order of 10 ms.
	var n int
	var sum float64
	for _, e := range r.Log.Events() {
		if e.Kind == 0 {
			n++
			sum += e.End.Sub(e.Start).Seconds()
		}
	}
	avg := sum / float64(n) * 1e3
	if avg < 6 || avg > 16 {
		t.Errorf("mean write transaction %.2fms, want ~10ms", avg)
	}
	// The forgetful driver never paged in.
	for _, pg := range r.Pagers {
		if pg.Drv.Stats.PageIns != 0 {
			t.Errorf("%s paged in %d times", pg.Cfg.Name, pg.Drv.Stats.PageIns)
		}
	}
	// Roll-over accounting keeps even 10 ms writes within contract.
	assertGuarantees(t, r)
}

func TestFig9Isolation(t *testing.T) {
	opt := DefaultFig9Options()
	opt.Measure = 20 * time.Second
	r, err := RunFig9(opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.AloneMbps < 5 {
		t.Fatalf("FS client alone only %.2f Mbit/s", r.AloneMbps)
	}
	// Throughput remains almost exactly the same despite two heavy pagers.
	if iso := r.Isolation(); iso < 0.97 || iso > 1.03 {
		t.Errorf("isolation = %.3f (alone %.2f, contended %.2f)", iso, r.AloneMbps, r.ContendedMbps)
	}
}

func TestTable1MatchesPaperShape(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Each Nemesis measurement within 25% of the paper's value.
	for _, name := range []string{"dirty", "(un)prot1", "(un)prot100", "trap", "appel1", "appel2"} {
		r, ok := byName[name]
		if !ok {
			t.Fatalf("missing row %q", name)
		}
		if r.PaperNemesisUS > 0 {
			rel := r.NemesisUS / r.PaperNemesisUS
			if rel < 0.75 || rel > 1.25 {
				t.Errorf("%s: nemesis %.2fus vs paper %.2fus", name, r.NemesisUS, r.PaperNemesisUS)
			}
		}
	}
	// Orderings the paper's argument rests on.
	if !(byName["trap"].NemesisUS < byName["trap"].OSF1US) {
		t.Error("Nemesis trap not faster than OSF1")
	}
	if !(byName["appel1"].NemesisUS < byName["appel1"].OSF1US) {
		t.Error("Nemesis appel1 not faster than OSF1")
	}
	if !(byName["appel2"].NemesisUS < byName["appel2"].OSF1US) {
		t.Error("Nemesis appel2 not faster than OSF1")
	}
	// OSF1 wins at bulk page-table protection; the protection-domain
	// variant wins it back.
	p100 := byName["(un)prot100"]
	if !(p100.NemesisUS > p100.OSF1US) {
		t.Error("OSF1 should beat Nemesis page-table prot100")
	}
	if !(p100.AltUS < p100.OSF1US) {
		t.Error("Nemesis PD-variant should beat OSF1 prot100")
	}
	// Rendering works and includes every row.
	if s := FormatTable1(rows); len(s) == 0 {
		t.Error("empty table rendering")
	}
}

func TestAblationLaxityShortBlock(t *testing.T) {
	r, err := AblationLaxity(8 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Without laxity each unpipelined client gets ~1 transaction per
	// period (the EDF-without-laxity prediction in the paper).
	for i, tp := range r.TxnsPerPeriodWithout {
		if tp > 1.6 {
			t.Errorf("client %d: %.2f txns/period without laxity, want ~1", i, tp)
		}
	}
	// With laxity, throughput is far higher.
	for i := range r.WithLaxityMbps {
		if r.WithLaxityMbps[i] < 4*r.WithoutLaxityMbps[i] {
			t.Errorf("client %d: laxity gain only %.2f -> %.2f", i, r.WithoutLaxityMbps[i], r.WithLaxityMbps[i])
		}
	}
}

func TestAblationFCFSDestroysProportions(t *testing.T) {
	r, err := AblationFCFS(8 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Atropos: ~4:2:1. FCFS: roughly equal shares.
	if r.AtroposMbps[2] < 1.5*r.AtroposMbps[0] {
		t.Errorf("atropos lost proportionality: %v", r.AtroposMbps)
	}
	spread := r.FCFSMbps[2] / r.FCFSMbps[0]
	if spread > 1.3 || spread < 0.7 {
		t.Errorf("FCFS should equalise clients, got %v", r.FCFSMbps)
	}
}

func TestAblationCrosstalk(t *testing.T) {
	r, err := AblationCrosstalk(8 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if iso := r.SelfIsolation(); iso < 0.9 || iso > 1.1 {
		t.Errorf("self-paging isolation = %.2f, want ~1", iso)
	}
	if iso := r.ExtIsolation(); iso > 0.7 {
		t.Errorf("external pager isolation = %.2f, want well below 1 (crosstalk)", iso)
	}
}

func TestAblationSlack(t *testing.T) {
	r, err := AblationSlack(8 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if r.XTrueMbps < 3*r.XFalseMbps {
		t.Errorf("slack gain too small: x=true %.2f vs x=false %.2f", r.XTrueMbps, r.XFalseMbps)
	}
}

func TestAblationRevocation(t *testing.T) {
	r, err := AblationRevocation()
	if err != nil {
		t.Fatal(err)
	}
	if r.TransparentMs > 0.1 {
		t.Errorf("transparent revocation took %.3fms, want ~0", r.TransparentMs)
	}
	if r.IntrusiveMs < 1 {
		t.Errorf("intrusive revocation took %.3fms, expected milliseconds (disk cleaning)", r.IntrusiveMs)
	}
	if r.IntrusiveMs < 10*r.TransparentMs {
		t.Errorf("intrusive (%.3fms) not clearly slower than transparent (%.3fms)", r.IntrusiveMs, r.TransparentMs)
	}
}

// TestRunPagingDeterminism: the full experiment is replayable bit-for-bit.
func TestRunPagingDeterminism(t *testing.T) {
	run := func() []float64 {
		opt := DefaultPagingOptions()
		opt.VirtBytes = 1 << 20
		opt.Measure = 5 * time.Second
		r, err := RunPaging(opt)
		if err != nil {
			t.Fatal(err)
		}
		return r.MeanMbps
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic: %v vs %v", a, b)
		}
	}
}
