package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"nemesis/internal/experiments/sweep"
	"nemesis/internal/obs"
)

// fig8TimelineTrace runs a shortened Fig. 8 workload with the timeline on
// and returns the rendered trace-event JSON plus the audit log.
func fig8TimelineTrace(measure time.Duration) ([]byte, []obs.AuditEvent, error) {
	opt := DefaultPagingOptions()
	opt.Write = true
	opt.Forgetful = true
	opt.Measure = measure
	opt.Timeline = true
	r, err := RunPaging(opt)
	if err != nil {
		return nil, nil, err
	}
	var buf bytes.Buffer
	if err := r.Sys.WriteTimeline(&buf); err != nil {
		return nil, nil, err
	}
	return buf.Bytes(), r.Sys.Obs.AuditLog(), nil
}

// TestFig8TimelineContent is the PR's acceptance test for the trace export:
// the Fig. 8 timeline must validate against the trace-event schema and carry
// per-domain fault spans with hop slices, a resident-frames-vs-guarantee
// counter track per domain, and the revocation episode's full phase
// progression in the audit log.
func TestFig8TimelineContent(t *testing.T) {
	trace, audit, err := fig8TimelineTrace(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTrace(bytes.NewReader(trace)); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	out := string(trace)
	for _, want := range []string{
		`"name":"fault:page"`, // fault spans
		`"name":"driver"`,     // hop slices inside the spans
		`"name":"frames"`,     // frames counter group...
		`"guarantee"`,         // ...with the contract series
		`"held"`,
		`"name":"faults_per_s"`,
		`"name":"cpu_us_per_s"`,   // scheduler occupancy
		`"name":"paging"`,         // page-in/-out rate group
		`"pageouts_per_s"`,        // Fig. 8 is a paging-out workload
		`"name":"resident_pages"`, // pager working set
		`"name":"revoke.begin"`,   // revocation phase instants
		`"name":"hog"`,            // the episode's domain appears as a process
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %s", want)
		}
	}
	// Every application domain gets its own frames track and process.
	for _, dom := range []string{"app1-10%", "app2-20%", "app3-40%"} {
		if !strings.Contains(out, `"name":"`+dom+`"`) {
			t.Errorf("trace missing domain %s", dom)
		}
	}

	// The deterministic revocation episode runs begin → transparent →
	// intrusive → complete, in that order.
	var phases []obs.AuditKind
	for _, e := range audit {
		if strings.HasPrefix(string(e.Kind), "revoke.") {
			phases = append(phases, e.Kind)
		}
	}
	want := []obs.AuditKind{obs.AuditRevokeBegin, obs.AuditRevokeTransparent,
		obs.AuditRevokeIntrusive, obs.AuditRevokeComplete}
	if len(phases) != len(want) {
		t.Fatalf("revocation phases = %v, want %v", phases, want)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("revocation phases = %v, want %v", phases, want)
		}
	}
}

// TestFig8TimelineParallelByteIdentity pins the other half of the acceptance
// criteria: the exported timeline must be byte-identical whether the cell
// runs alone or inside an 8-worker parallel sweep.
func TestFig8TimelineParallelByteIdentity(t *testing.T) {
	serial, _, err := fig8TimelineTrace(6 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cells := []int{0, 1, 2, 3}
	traces, err := sweep.MapWorkers(8, cells, func(int) ([]byte, error) {
		tr, _, err := fig8TimelineTrace(6 * time.Second)
		return tr, err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range traces {
		if !bytes.Equal(tr, serial) {
			t.Fatalf("parallel cell %d trace differs from the serial run (%d vs %d bytes)",
				i, len(tr), len(serial))
		}
	}
}

// TestNetswapDegradeAuditTransitions checks E8c leaves a structured record
// of its tier transitions: the outage trips net.degrade, the cooldown expiry
// emits net.probe, and the healed link emits net.restore — in that order.
func TestNetswapDegradeAuditTransitions(t *testing.T) {
	res, err := RunNetswapDegrade(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	order := map[obs.AuditKind]int{}
	for i, e := range res.Audit {
		if _, seen := order[e.Kind]; !seen {
			order[e.Kind] = i
		}
		if strings.HasPrefix(string(e.Kind), "net.") && e.Domain != "tiered" {
			t.Errorf("net audit event for wrong domain: %+v", e)
		}
	}
	deg, okD := order[obs.AuditNetswapDegrade]
	prb, okP := order[obs.AuditNetswapProbe]
	rst, okR := order[obs.AuditNetswapRestore]
	if !okD || !okP || !okR {
		t.Fatalf("missing transitions (degrade=%v probe=%v restore=%v) in audit: %+v",
			okD, okP, okR, res.Audit)
	}
	if !(deg < prb && prb < rst) {
		t.Fatalf("transitions out of order: degrade@%d probe@%d restore@%d", deg, prb, rst)
	}
}
