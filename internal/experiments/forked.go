package experiments

import (
	"context"
	"fmt"
	"time"

	"nemesis/internal/atropos"
	"nemesis/internal/baseline"
	"nemesis/internal/core"
	"nemesis/internal/domain"
	"nemesis/internal/experiments/sweep"
	"nemesis/internal/mem"
	"nemesis/internal/netswap"
	"nemesis/internal/obs"
	"nemesis/internal/stretchdrv"
	"nemesis/internal/trace"
	"nemesis/internal/usd"
	"nemesis/internal/vm"
	"nemesis/internal/workload"
)

// This file is the fork-exploiting experiment protocol. Every harness here
// splits its legacy counterpart into two halves around a quiesced instant:
//
//	warm    — boot the machine and run the expensive initialisation
//	          (demand-zero faults, swap population, admission of hundreds
//	          of domains) in threads that EXIT when done;
//	measure — attach the steady-state workload and run the measured window.
//
// The split is what makes core.System.Fork exploitable: a warmed world can
// be checkpointed once and forked per sweep cell, per Table 1 row, per
// cluster machine or per server request, so only the measure half is ever
// re-paid. Crucially both modes of every harness — forked=false (cold: the
// warmed world itself continues into measure) and forked=true (a fork of
// it does) — run the *same* protocol, so their outputs must be identical
// to the last byte; the equivalence tests pin exactly that.
//
// The legacy entry points (RunPaging, RunFig9, Table1, RunCluster) are
// untouched: the figure goldens and the benchmark baselines pin their
// event-for-event behaviour.

// PagingWarm is a warmed Fig. 7/8-style world: applications admitted and
// initialised by threads that have exited, leaving the world quiesced and
// forkable. Fork it per measurement, or Measure it directly (consuming it).
type PagingWarm struct {
	Opts   PagingOptions
	Sys    *core.System
	Pagers []*workload.Pager
	Set    *trace.SeriesSet
}

// WarmPaging boots the Fig. 7/8 machine and runs only the initialisation
// phase. The returned world is quiesced: every application has faulted its
// working set in (and, for the paging-out variants, populated swap), and
// the init threads have exited.
func WarmPaging(opt PagingOptions) (*PagingWarm, error) {
	if opt.Timeline || opt.SnapshotEvery > 0 {
		return nil, fmt.Errorf("experiments: timeline/snapshot options are not supported by the warm+measure protocol")
	}
	cfg := core.DefaultConfig()
	cfg.Seed = opt.Seed
	cfg.MemoryFrames = 2048 // 16 MB: ample, contention is per-contract
	cfg.Telemetry = opt.Telemetry
	sys := core.New(cfg)
	sys.USD.LaxityEnabled = opt.LaxityEnabled
	sys.USD.FCFS = opt.FCFS

	w := &PagingWarm{Opts: opt, Sys: sys, Set: &trace.SeriesSet{}}
	add := func(name string, slice time.Duration, app bool) error {
		pc := workload.DefaultPagerConfig(name, slice)
		pc.DiskQoS = atropos.QoS{P: opt.Period, S: slice, X: false, L: opt.Laxity}
		pc.VirtBytes = opt.VirtBytes
		pc.PhysFrames = opt.PhysFrames
		pc.SwapBytes = opt.SwapBytes
		pc.Write = opt.Write
		pc.Forgetful = opt.Forgetful
		pc.SampleEvery = opt.SampleEvery
		if app {
			pc.Policy = opt.Policy
			pc.Writeback = opt.Writeback
			pc.ClusterSize = opt.ClusterSize
		}
		pg, err := workload.WarmPager(sys, pc, w.Set.New(name))
		if err != nil {
			return err
		}
		w.Pagers = append(w.Pagers, pg)
		return nil
	}
	for i, slice := range opt.Slices {
		name := fmt.Sprintf("app%d-%d%%", i+1, int(100*float64(slice)/float64(opt.Period)))
		if err := add(name, slice, true); err != nil {
			return nil, err
		}
	}
	if opt.Hog {
		if err := add("hog-5%", opt.Period/20, false); err != nil {
			return nil, err
		}
	}

	deadline := sys.Sim.Now().Add(opt.InitLimit)
	for {
		ready := true
		for _, pg := range w.Pagers {
			if !pg.Initialised {
				ready = false
			}
		}
		if ready {
			break
		}
		if sys.Sim.Now() >= deadline {
			return nil, fmt.Errorf("experiments: initialisation exceeded %v", opt.InitLimit)
		}
		sys.Run(time.Second)
	}
	return w, nil
}

// Fork checkpoints the warmed world and returns an independent copy with
// its own series set, ready to Measure. The parent stays warm and can be
// forked again (forks of one parent must be taken serially; measuring the
// forks may proceed in parallel).
func (w *PagingWarm) Fork() (*PagingWarm, error) {
	snap, err := w.Sys.Fork()
	if err != nil {
		return nil, err
	}
	nw := &PagingWarm{Opts: w.Opts, Sys: snap.Sys, Set: &trace.SeriesSet{}}
	for _, pg := range w.Pagers {
		np, err := pg.Remap(snap)
		if err != nil {
			return nil, err
		}
		np.Series = nw.Set.New(np.Cfg.Name)
		nw.Pagers = append(nw.Pagers, np)
	}
	return nw, nil
}

// Measure attaches the steady-state threads (and, with Telemetry, the
// crosstalk monitor) to a warmed world and runs the measured window. It
// consumes the world: the system is shut down before Measure returns.
func (w *PagingWarm) Measure(measure time.Duration) (*PagingResult, error) {
	opt := w.Opts
	opt.Measure = measure
	sys := w.Sys
	if opt.Telemetry {
		sys.StartCrosstalkMonitor(obs.DefaultCrosstalkConfig())
	}
	res := &PagingResult{Opts: opt, Sys: sys, Pagers: w.Pagers, Set: w.Set, Log: sys.USDLog}
	res.MeasureStart = sys.Sim.Now().Duration()
	for _, pg := range w.Pagers {
		pg.Resume()
	}
	sys.Run(opt.Measure)
	start := sys.Sim.Now().Add(-opt.Measure)
	for _, pg := range w.Pagers {
		res.MeanMbps = append(res.MeanMbps, pg.Series.MeanAfter(start))
	}
	sys.Shutdown()
	return res, nil
}

// RunPagingForked is RunPaging under the warm+measure protocol. With
// forked=true the measured window runs on a fork of the warmed world; with
// forked=false the warmed world itself continues into the window. The two
// must produce identical results.
func RunPagingForked(opt PagingOptions, forked bool) (*PagingResult, error) {
	warm, err := WarmPaging(opt)
	if err != nil {
		return nil, err
	}
	world := warm
	if forked {
		if world, err = warm.Fork(); err != nil {
			return nil, err
		}
		warm.Sys.Shutdown()
	}
	return world.Measure(opt.Measure)
}

// RunFig9Forked is RunFig9 under the warm+measure protocol: the competing
// pagers initialise before the window, the world forks (when forked), and
// the file-system client is created in the measure world — drivers that
// appear after the fork need no snapshot support at all.
func RunFig9Forked(opt Fig9Options, forked bool) (*Fig9Result, error) {
	if opt.Timeline {
		return nil, fmt.Errorf("experiments: timeline is not supported by the warm+measure protocol")
	}
	res := &Fig9Result{Opts: opt}

	runOnce := func(withPagers bool) (*trace.Series, float64, []float64, error) {
		cfg := core.DefaultConfig()
		cfg.Seed = opt.Seed
		cfg.MemoryFrames = 2048
		sys := core.New(cfg)
		var set trace.SeriesSet
		var pagers []*workload.Pager
		if withPagers {
			for i, slice := range opt.PagerSlices {
				name := fmt.Sprintf("pager%d-%d%%", i+1, int(100*float64(slice)/float64(opt.Period)))
				pc := workload.DefaultPagerConfig(name, slice)
				pc.DiskQoS = atropos.QoS{P: opt.Period, S: slice, X: false, L: opt.Laxity}
				pc.SampleEvery = opt.SampleEvery
				pg, err := workload.WarmPager(sys, pc, set.New(name))
				if err != nil {
					return nil, 0, nil, err
				}
				pagers = append(pagers, pg)
			}
			deadline := sys.Sim.Now().Add(10 * time.Minute)
			for {
				ready := true
				for _, pg := range pagers {
					if !pg.Initialised {
						ready = false
					}
				}
				if ready {
					break
				}
				if sys.Sim.Now() >= deadline {
					return nil, 0, nil, fmt.Errorf("experiments: fig9 pager initialisation stalled")
				}
				sys.Run(time.Second)
			}
		}
		if forked {
			snap, err := sys.Fork()
			if err != nil {
				return nil, 0, nil, err
			}
			remapped := make([]*workload.Pager, len(pagers))
			for i, pg := range pagers {
				if remapped[i], err = pg.Remap(snap); err != nil {
					return nil, 0, nil, err
				}
			}
			sys.Shutdown()
			sys = snap.Sys
			pagers = remapped
		}

		part := usd.Extent{Start: 0, Count: sys.Disk.Geom.TotalBlocks / 4}
		fcfg := workload.DefaultFSClientConfig("fs", part)
		fcfg.DiskQoS = opt.FSQoS
		fcfg.Depth = opt.Depth
		fcfg.SampleEvery = opt.SampleEvery
		fc, err := workload.StartFSClient(sys, fcfg, set.New("fs"))
		if err != nil {
			return nil, 0, nil, err
		}
		for _, pg := range pagers {
			pg.Resume()
		}
		measureStart := sys.Sim.Now()
		sys.Run(opt.Measure)
		fc.Stop()
		var pagerMbps []float64
		for _, pg := range pagers {
			pagerMbps = append(pagerMbps, pg.Series.MeanAfter(measureStart))
		}
		mean := set.Get("fs").MeanAfter(measureStart)
		sys.Shutdown()
		return set.Get("fs"), mean, pagerMbps, nil
	}

	var err error
	res.AloneSeries, res.AloneMbps, _, err = runOnce(false)
	if err != nil {
		return nil, err
	}
	res.ContendedSeries, res.ContendedMbps, res.PagerMbps, err = runOnce(true)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// table1World is one warmed Table 1 world: the bench domain admitted, both
// stretches premapped, premap thread exited.
type table1World struct {
	sys     *core.System
	dom     *domain.Domain
	st, st1 *vm.Stretch
}

// table1Rows names the six micro-benchmarks, in the paper's order.
func table1Rows() []string {
	return []string{"dirty", "(un)prot1", "(un)prot100", "trap", "appel1", "appel2"}
}

const table1Pages = 100
const table1Iters = 256

// warmTable1 boots the Table 1 machine and premaps both stretches. Unlike
// the legacy harness — which runs all six benchmarks sequentially in one
// thread sharing one random stream — the warmed world stops here, so each
// row can run on its own fork from an identical starting state.
func warmTable1() (*table1World, error) {
	cfg := core.DefaultConfig()
	cfg.MemoryFrames = 256
	sys := core.New(cfg)
	dom, err := sys.NewDomain("bench", atropos.QoS{P: 100 * time.Millisecond, S: 90 * time.Millisecond, X: true}, mem.Contract{Guaranteed: table1Pages + 8})
	if err != nil {
		return nil, err
	}
	st, _, err := sys.NewPhysicalStretch(dom, table1Pages*vm.PageSize)
	if err != nil {
		return nil, err
	}
	st1, _, err := sys.NewPhysicalStretch(dom, vm.PageSize)
	if err != nil {
		return nil, err
	}
	warmed := false
	dom.Go("premap", func(t *domain.Thread) {
		if err := core.PreallocateFrames(t, table1Pages+1); err != nil {
			return
		}
		if err := t.Touch(st.Base(), table1Pages*vm.PageSize, vm.AccessWrite); err != nil {
			return
		}
		if err := t.Touch(st1.Base(), vm.PageSize, vm.AccessWrite); err != nil {
			return
		}
		warmed = true
	})
	deadline := sys.Sim.Now().Add(5 * time.Minute)
	for !warmed {
		if sys.Sim.Now() >= deadline {
			return nil, fmt.Errorf("experiments: table1 premap stalled")
		}
		sys.Run(time.Second)
	}
	return &table1World{sys: sys, dom: dom, st: st, st1: st1}, nil
}

func (w *table1World) fork() (*table1World, error) {
	snap, err := w.sys.Fork()
	if err != nil {
		return nil, err
	}
	nw := &table1World{sys: snap.Sys, dom: snap.Dom[w.dom], st: snap.Stretch[w.st], st1: snap.Stretch[w.st1]}
	if nw.dom == nil || nw.st == nil || nw.st1 == nil {
		return nil, fmt.Errorf("experiments: table1 snapshot maps incomplete")
	}
	return nw, nil
}

// runTable1Row runs one benchmark on a warmed world, consuming it. Each
// row is self-contained — it installs its own handlers and protections —
// which is what lets the rows run on independent forks in parallel.
func runTable1Row(w *table1World, name string) (Table1Row, error) {
	sys, dom, st, st1 := w.sys, w.dom, w.st, w.st1
	const pages = table1Pages
	const iters = table1Iters
	costs := sys.Config.Costs
	osf1 := baseline.DefaultOSF1Costs()
	ts := sys.TS
	var row Table1Row
	finished := false

	dom.Go("bench", func(t *domain.Thread) {
		rng := sys.Sim.Rand()
		perOp := func(fn func()) float64 {
			t0 := t.Now()
			for i := 0; i < iters; i++ {
				fn()
			}
			return t.Now().Sub(t0).Seconds() * 1e6 / iters
		}

		switch name {
		case "dirty":
			us := perOp(func() {
				va := st.PageBase(rng.Intn(pages))
				ts.IsDirty(va)
				t.Compute(costs.PTLookup)
			})
			row = Table1Row{Name: "dirty", NemesisUS: us, PaperNemesisUS: 0.15}

		case "(un)prot1":
			val := vm.Rights(vm.Read)
			us := perOp(func() {
				val ^= vm.Write
				n, _ := ts.ProtectPages(dom.PD(), st1, val)
				t.Compute(costs.SyscallOverhead + time.Duration(n)*costs.PTEUpdate)
			})
			val = vm.Read
			pd := perOp(func() {
				val ^= vm.Write
				changed, _ := ts.SetRights(dom.PD(), dom.PD(), st1.ID(), val|vm.Meta)
				if changed {
					t.Compute(costs.SyscallOverhead + costs.PDChange)
				} else {
					t.Compute(costs.IdempotentProt)
				}
			})
			row = Table1Row{
				Name: "(un)prot1", NemesisUS: us, AltUS: pd,
				OSF1US:         osf1.Prot(1).Seconds() * 1e6,
				PaperNemesisUS: 0.42, PaperAltUS: 0.40, PaperOSF1US: 3.36,
			}

		case "(un)prot100":
			val := vm.Rights(vm.Read)
			us := perOp(func() {
				val ^= vm.Write
				n, _ := ts.ProtectPages(dom.PD(), st, val)
				t.Compute(costs.SyscallOverhead + time.Duration(n)*costs.PTEUpdate)
			})
			val = vm.Read
			pd := perOp(func() {
				val ^= vm.Write
				changed, _ := ts.SetRights(dom.PD(), dom.PD(), st.ID(), val|vm.Meta)
				if changed {
					t.Compute(costs.SyscallOverhead + costs.PDChange)
				} else {
					t.Compute(costs.IdempotentProt)
				}
			})
			row = Table1Row{
				Name: "(un)prot100", NemesisUS: us, AltUS: pd,
				OSF1US:         osf1.Prot(100).Seconds() * 1e6,
				PaperNemesisUS: 10.78, PaperAltUS: 0.30, PaperOSF1US: 5.14,
			}

		case "trap":
			ts.GrantInitial(dom.PD(), st.ID(), vm.Read|vm.Write|vm.Execute|vm.Meta)
			dom.SetFaultHandler(vm.ProtectionFault, func(th *domain.Thread, f *vm.Fault) bool {
				ts.GrantInitial(dom.PD(), f.SID, vm.Read|vm.Write|vm.Execute|vm.Meta)
				return true
			})
			us := perOp(func() {
				ts.GrantInitial(dom.PD(), st.ID(), vm.Read|vm.Meta) // uncharged re-arm
				t.Touch(st.PageBase(rng.Intn(pages)), 1, vm.AccessWrite)
			})
			dom.SetFaultHandler(vm.ProtectionFault, nil)
			row = Table1Row{
				Name: "trap", NemesisUS: us,
				OSF1US:         osf1.Trap().Seconds() * 1e6,
				PaperNemesisUS: 4.20, PaperOSF1US: 10.33,
			}

		case "appel1":
			for i := 0; i < pages; i++ {
				ts.PageTable().Lookup(vm.PageOf(st.PageBase(i))).Prot = vm.Read
			}
			ts.GrantInitial(dom.PD(), st.ID(), vm.Read|vm.Meta) // PD grants read only
			prev := 0
			dom.SetFaultHandler(vm.ProtectionFault, func(th *domain.Thread, f *vm.Fault) bool {
				pte := ts.PageTable().Lookup(vm.PageOf(f.VA))
				pte.Prot = vm.Read | vm.Write
				th.Compute(costs.SyscallOverhead + costs.PTEUpdate)
				ts.PageTable().Lookup(vm.PageOf(st.PageBase(prev))).Prot = vm.Read
				th.Compute(costs.SyscallOverhead + costs.PTEUpdate)
				prev = int(vm.PageOf(f.VA) - vm.PageOf(st.Base()))
				return true
			})
			us := perOp(func() {
				t.Touch(st.PageBase(rng.Intn(pages)), 1, vm.AccessWrite)
			})
			dom.SetFaultHandler(vm.ProtectionFault, nil)
			row = Table1Row{
				Name: "appel1", NemesisUS: us,
				OSF1US:         osf1.Appel1().Seconds() * 1e6,
				PaperNemesisUS: 5.33, PaperOSF1US: 24.08,
			}

		case "appel2":
			frames := make(map[vm.VPN]mem.PFN, pages)
			dom.SetFaultHandler(vm.PageFault, func(th *domain.Thread, f *vm.Fault) bool {
				vpn := vm.PageOf(f.VA)
				if err := ts.Map(dom.PD(), dom.ID(), vpn.Base(), frames[vpn], vm.DefaultAttr()); err != nil {
					return false
				}
				th.Compute(costs.SyscallOverhead + costs.MapUnmap)
				return true
			})
			order := rng.Perm(pages)
			t0 := t.Now()
			for i := 0; i < pages; i++ {
				va := st.PageBase(i)
				pfn, _, err := ts.Unmap(dom.PD(), dom.ID(), va)
				if err != nil {
					return
				}
				frames[vm.PageOf(va)] = pfn
				t.Compute(costs.SyscallOverhead + costs.MapUnmap)
			}
			for _, pg := range order {
				if err := t.Touch(st.PageBase(pg), 1, vm.AccessWrite); err != nil {
					return
				}
			}
			us := t.Now().Sub(t0).Seconds() * 1e6 / pages
			dom.SetFaultHandler(vm.PageFault, nil)
			row = Table1Row{
				Name: "appel2", NemesisUS: us,
				OSF1US:         osf1.Appel2().Seconds() * 1e6,
				PaperNemesisUS: 9.75, PaperOSF1US: 19.12,
			}

		default:
			return
		}
		finished = true
	})

	sys.Run(5 * time.Minute)
	if !finished {
		return Table1Row{}, fmt.Errorf("experiments: table1 row %q did not finish (sim %v)", name, sys.Sim.Now())
	}
	sys.Shutdown()
	return row, nil
}

// Table1Forked runs Table 1 under the warm+measure protocol: one premapped
// world per row, each row self-contained. With forked=true a single warm
// world is built and forked per row (the rows then fan out over workers);
// with forked=false each row cold-boots its own world. Note the rows start
// from identical machine state here, unlike the legacy Table1 where later
// rows inherit the earlier rows' random-stream position — so the two
// protocols agree with each other but differ from Table1 in the trailing
// digits.
func Table1Forked(workers int, forked bool) ([]Table1Row, error) {
	names := table1Rows()
	if forked {
		parent, err := warmTable1()
		if err != nil {
			return nil, err
		}
		rows, err := sweep.MapForked(sweepWorkers(workers), names,
			func(string) (*table1World, error) { return parent.fork() },
			runTable1Row)
		parent.sys.Shutdown()
		return rows, err
	}
	return sweep.MapWorkers(sweepWorkers(workers), names, func(name string) (Table1Row, error) {
		w, err := warmTable1()
		if err != nil {
			return Table1Row{}, err
		}
		return runTable1Row(w, name)
	})
}

// clusterWarm is a warmed cluster machine: every domain admitted and its
// stretch allocated, but no remote placements, threads or monitor yet —
// all of that is created after the fork, in the measure world. The warm
// prefix draws nothing from the random stream, which is what makes the
// per-machine Reseed after forking exact.
type clusterWarm struct {
	sys  *core.System
	doms []*domain.Domain
	sts  []*vm.Stretch
}

// warmClusterMachine admits the machine's domain population. The warm
// world is seeded with the base seed and machine-agnostic domain names;
// runWarmedClusterMachine reseeds per machine.
func warmClusterMachine(opt ClusterOptions) (*clusterWarm, error) {
	n := opt.DomainsPerMachine
	stretchBytes := int64(opt.PagesPerDomain) * int64(vm.PageSize)

	cfg := core.DefaultConfig()
	cfg.Seed = opt.Seed
	cfg.Telemetry = true
	cfg.MemoryFrames = n*opt.PhysFrames + 256
	sys := core.New(cfg)

	cpuQoS := atropos.QoS{
		P: 100 * time.Millisecond,
		S: 90 * time.Millisecond / time.Duration(n),
		X: true,
	}
	if cpuQoS.S <= 0 {
		cpuQoS.S = time.Microsecond
	}

	w := &clusterWarm{sys: sys}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("d%d", i)
		dom, err := sys.NewDomain(name, cpuQoS, mem.Contract{Guaranteed: uint64(opt.PhysFrames)})
		if err != nil {
			return nil, fmt.Errorf("cluster: admit %s: %w", name, err)
		}
		st, err := dom.NewStretch(uint64(stretchBytes))
		if err != nil {
			return nil, err
		}
		w.doms = append(w.doms, dom)
		w.sts = append(w.sts, st)
	}
	return w, nil
}

func (w *clusterWarm) fork() (*clusterWarm, error) {
	snap, err := w.sys.Fork()
	if err != nil {
		return nil, err
	}
	nw := &clusterWarm{sys: snap.Sys}
	for i, d := range w.doms {
		nd, nst := snap.Dom[d], snap.Stretch[w.sts[i]]
		if nd == nil || nst == nil {
			return nil, fmt.Errorf("cluster: snapshot maps incomplete for domain %d", i)
		}
		nw.doms = append(nw.doms, nd)
		nw.sts = append(nw.sts, nst)
	}
	return nw, nil
}

// runWarmedClusterMachine turns a warmed (possibly just-forked) machine
// into machine `machine`: reseed, build the swap-server pool, place every
// domain on it, attach the hot/idle threads and the incremental monitor,
// run the measured window and collect the summary.
func runWarmedClusterMachine(w *clusterWarm, machine int, opt ClusterOptions) (*ClusterMachine, error) {
	sys := w.sys
	sys.Sim.Reseed(opt.Seed + int64(machine))

	n := opt.DomainsPerMachine
	pageBytes := int64(vm.PageSize)
	stretchBytes := int64(opt.PagesPerDomain) * pageBytes

	ns := netswap.DefaultConfig()
	ns.Server.StoreBytes = (int64(n)*stretchBytes)/int64(opt.Servers) + 2*stretchBytes
	pool, err := netswap.NewPool(sys.Sim, sys.Obs, opt.Servers, ns)
	if err != nil {
		return nil, err
	}
	if opt.Trace {
		sys.Obs.SetFlowBase(uint64(machine+1) << 32)
		for i := 0; i < pool.Servers(); i++ {
			pool.Fabric(i).Server.SetObs(obs.NewRegistry(sys.Sim.Now))
		}
	}

	hot := int(float64(n) * opt.HotFraction)
	if hot < 1 {
		hot = 1
	}
	remote := &netswap.RemoteOptions{Timeout: 2 * time.Second, MaxRetries: -1}

	cell := &ClusterMachine{Machine: machine, Domains: n, HotDomains: hot}
	var bytesTouched int64
	for i, dom := range w.doms {
		name := fmt.Sprintf("d%d", i)
		st := w.sts[i]
		rb, err := pool.Place(name, name, stretchBytes, remote)
		if err != nil {
			return nil, fmt.Errorf("cluster: place %s: %w", name, err)
		}
		if _, err := stretchdrv.NewPagedBacking(dom, st, rb, stretchdrv.PagerOptions{}); err != nil {
			return nil, err
		}

		base := st.Base()
		physFrames := opt.PhysFrames
		if i < hot {
			pages := opt.PagesPerDomain
			period := opt.HotPeriod
			dom.Go("hot", func(t *domain.Thread) {
				if err := core.PreallocateFrames(t, physFrames); err != nil {
					return
				}
				for off := 0; ; off = (off + 1) % pages {
					if err := t.Touch(base+vm.VA(int64(off)*pageBytes), int(pageBytes), vm.AccessWrite); err != nil {
						return
					}
					bytesTouched += pageBytes
					t.Sleep(period)
				}
			})
			continue
		}
		once := physFrames + 1
		dom.Go("idle", func(t *domain.Thread) {
			if err := core.PreallocateFrames(t, physFrames); err != nil {
				return
			}
			for p := 0; p < once; p++ {
				if err := t.Touch(base+vm.VA(int64(p)*pageBytes), int(pageBytes), vm.AccessWrite); err != nil {
					return
				}
				bytesTouched += pageBytes
			}
		})
	}

	mon := sys.StartIncrementalCrosstalkMonitor(obs.DefaultCrosstalkConfig())
	sys.Run(opt.Measure)
	pool.Stop()
	sys.Shutdown()

	for _, d := range w.doms {
		cell.Faults += d.Stats().Faults
	}
	cell.BytesTouched = bytesTouched
	cell.Events = sys.Sim.Dispatched()
	for i := 0; i < pool.Servers(); i++ {
		st := pool.Fabric(i).Server.Stats
		cell.RemoteReads += st.Reads
		cell.RemoteWrites += st.Writes
	}
	cell.Violations = len(sys.Obs.AuditByKind(obs.AuditGuaranteeViolation))
	cell.Kills = len(sys.Obs.AuditByKind(obs.AuditRevokeKill))
	cell.Flags = len(sys.Obs.Flags())
	if mon != nil {
		cell.MonitorTicks = mon.Ticks()
	}
	collectClusterObs(cell, machine, sys.Obs, pool, opt.Trace)
	return cell, nil
}

// RunClusterForked is the cluster scenario under the warm+measure
// protocol. The expensive warm prefix — admitting hundreds of domains and
// their stretches — is machine-independent, so with forked=true it is paid
// once and forked per machine; each fork is then reseeded with the
// machine's own seed (exact because the prefix is draw-free) before the
// machine-specific pool, placements and workload are built on top. With
// forked=false every machine cold-boots the same prefix itself, so the two
// modes are byte-identical by construction.
func RunClusterForked(opt ClusterOptions, forked bool) (*ClusterResult, error) {
	opt.fillDefaults()
	machines := make([]int, opt.Machines)
	for i := range machines {
		machines[i] = i
	}
	var cells []*ClusterMachine
	var err error
	if forked {
		var parent *clusterWarm
		if parent, err = warmClusterMachine(opt); err != nil {
			return nil, err
		}
		cells, err = sweep.MapForked(sweepWorkers(opt.Workers), machines,
			func(int) (*clusterWarm, error) { return parent.fork() },
			func(w *clusterWarm, m int) (*ClusterMachine, error) { return runWarmedClusterMachine(w, m, opt) })
		parent.sys.Shutdown()
	} else {
		cells, err = sweep.MapWorkers(sweepWorkers(opt.Workers), machines, func(m int) (*ClusterMachine, error) {
			w, werr := warmClusterMachine(opt)
			if werr != nil {
				return nil, werr
			}
			return runWarmedClusterMachine(w, m, opt)
		})
	}
	if err != nil {
		return nil, err
	}
	return assembleCluster(opt, cells), nil
}

// RunSuiteForked runs the full suite under the warm+measure protocol: the
// four world-reusing cells (Table 1, Figs. 7–9) run their forked-protocol
// variants, every other cell is identical to RunSuite. forked selects
// whether those cells measure on forks of warmed worlds or on cold boots
// of the same protocol; the outputs must be byte-identical either way, at
// any worker count — the CI fork-equivalence job diffs exactly that.
func RunSuiteForked(ctx context.Context, measure time.Duration, workers int, forked bool) ([]SuiteCell, error) {
	if workers <= 0 {
		workers = sweep.Workers()
	}
	mode := suiteCold
	if forked {
		mode = suiteForked
	}
	return runSuiteCells(ctx, workers, suiteCellList(measure, mode))
}
