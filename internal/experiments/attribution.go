package experiments

import (
	"fmt"
	"strings"
	"time"

	"nemesis/internal/obs"
)

// AttributionOptions parameterises the attribution-profiling experiment: a
// scaled Fig. 7 or Fig. 8 run with exact sim-time attribution on, optionally
// with a hog domain contending for the disk.
type AttributionOptions struct {
	// Fig selects the workload: 7 (paging in) or 8 (paging out).
	Fig int
	// Hog admits the 5%-slice unbounded-appetite fourth application.
	Hog bool
	// VirtBytes sizes each application (0 = 2 MB, the benchmark scale).
	VirtBytes uint64
	Measure   time.Duration
	Seed      int64
}

// AttributionResult is the outcome of an attribution run.
type AttributionResult struct {
	Paging *PagingResult
	// Profiles is each domain's attribution snapshot at shutdown, in
	// admission order (the three apps, then the hog if admitted).
	Profiles []obs.DomainProfile
	// Folded is the folded-stack export (`domain;state[;hop] us` lines).
	Folded string
}

// ProfileFor returns the profile of one domain by name.
func (r *AttributionResult) ProfileFor(domain string) (obs.DomainProfile, bool) {
	for _, p := range r.Profiles {
		if p.Domain == domain {
			return p, true
		}
	}
	return obs.DomainProfile{}, false
}

// RunAttribution executes a paging experiment with attribution enabled and
// verifies the conservation invariant before returning: every domain's
// accounts must sum exactly to its elapsed sim time, or the run errors.
func RunAttribution(opt AttributionOptions) (*AttributionResult, error) {
	if opt.Fig == 0 {
		opt.Fig = 8
	}
	if opt.Fig != 7 && opt.Fig != 8 {
		return nil, fmt.Errorf("experiments: attribution supports figs 7 and 8, not %d", opt.Fig)
	}
	popt := DefaultPagingOptions()
	popt.VirtBytes = 2 << 20
	if opt.VirtBytes > 0 {
		popt.VirtBytes = opt.VirtBytes
	}
	if opt.Measure > 0 {
		popt.Measure = opt.Measure
	}
	if opt.Seed != 0 {
		popt.Seed = opt.Seed
	}
	if opt.Fig == 8 {
		popt.Write = true
		popt.Forgetful = true
	}
	popt.Telemetry = true
	popt.Hog = opt.Hog

	r, err := RunPaging(popt)
	if err != nil {
		return nil, err
	}
	if err := r.Sys.CheckAttribution(); err != nil {
		return nil, err
	}
	var folded strings.Builder
	if err := r.Sys.WriteAttributionFolded(&folded); err != nil {
		return nil, err
	}
	return &AttributionResult{
		Paging:   r,
		Profiles: r.Sys.AttributionProfiles(),
		Folded:   folded.String(),
	}, nil
}
