package experiments

import (
	"reflect"
	"testing"
	"time"
)

// e8Latencies and e8Losses are the CI-sized E8 grid: three link latencies by
// two loss settings, short enough to keep the suite fast.
var (
	e8Latencies = []time.Duration{200 * time.Microsecond, time.Millisecond, 2 * time.Millisecond}
	e8Losses    = []float64{0, 0.05}
)

func TestNetswapSweep(t *testing.T) {
	res, err := RunNetswapSweep(e8Latencies, e8Losses, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(e8Latencies)*len(e8Losses) {
		t.Fatalf("got %d cells, want %d", len(res.Cells), len(e8Latencies)*len(e8Losses))
	}
	for _, c := range res.Cells {
		if c.Mbps <= 0 {
			t.Errorf("cell %v/%.2f made no progress", c.Latency, c.Loss)
		}
		if c.RPCs == 0 {
			t.Errorf("cell %v/%.2f recorded no RPCs", c.Latency, c.Loss)
		}
		// The per-hop breakdown must be populated: every fault crosses the
		// wire out, the remote store and the wire back.
		if c.NetOutP50Ms <= 0 || c.StoreP50Ms <= 0 || c.NetBackP50Ms <= 0 {
			t.Errorf("cell %v/%.2f missing hop breakdown: %+v", c.Latency, c.Loss, c)
		}
		if c.Loss > 0 && c.Retries == 0 {
			t.Errorf("lossy cell %v/%.2f recorded no retries", c.Latency, c.Loss)
		}
		if c.Loss == 0 && c.Timeouts != 0 {
			t.Errorf("clean cell %v recorded %d timeouts", c.Latency, c.Timeouts)
		}
	}
	// More link latency must show up in the network hops, not the store hop.
	first, last := res.Cells[0], res.Cells[len(e8Latencies)-1]
	if last.NetOutP50Ms <= first.NetOutP50Ms {
		t.Errorf("net.out p50 did not grow with link latency: %.3f -> %.3f",
			first.NetOutP50Ms, last.NetOutP50Ms)
	}
}

func TestNetswapSweepDeterministic(t *testing.T) {
	a, err := RunNetswapSweep(e8Latencies, e8Losses, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunNetswapSweep(e8Latencies, e8Losses, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical sweeps diverged:\n%+v\n%+v", a, b)
	}
}

func TestNetswapOutageIsolation(t *testing.T) {
	res, err := RunNetswapOutage(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.MonitorTicks == 0 {
		t.Fatal("crosstalk monitor never sampled")
	}
	if len(res.Flags) != 0 {
		t.Fatalf("outage leaked across the QoS firewall: %+v", res.Flags)
	}
	// "Zero crosstalk" as a structured audit assertion: the audit log must
	// contain no qos.crosstalk events either (the monitor mirrors every flag
	// there, including any raised by the trailing partial window on Stop).
	if len(res.Crosstalk) != 0 {
		t.Fatalf("qos.crosstalk audit events recorded: %+v", res.Crosstalk)
	}
	// The remote domain alone stalls during the outage and recovers after.
	if res.RemoteMbps[0] <= 0 || res.RemoteMbps[2] <= 0 {
		t.Fatalf("remote domain made no progress outside the outage: %+v", res.RemoteMbps)
	}
	if res.RemoteMbps[1] > res.RemoteMbps[0]/10 {
		t.Fatalf("remote domain barely stalled during its outage: %+v", res.RemoteMbps)
	}
	// The local domain must not be dragged down by the neighbour's outage.
	if res.LocalMbps[1] < res.LocalMbps[0]*0.8 {
		t.Fatalf("local domain degraded during the remote outage: %+v", res.LocalMbps)
	}
}

func TestNetswapDegrade(t *testing.T) {
	res, err := RunNetswapDegrade(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DegradedDuringOutage {
		t.Fatal("outage did not trip degradation")
	}
	if res.Stats.DegradedEntries == 0 || res.Stats.LocalFallbacks == 0 {
		t.Fatalf("no fallover recorded: %+v", res.Stats)
	}
	if res.Stats.Demotions == 0 {
		t.Fatalf("healthy phases never demoted to the remote tier: %+v", res.Stats)
	}
	// QoS-preserving: the outage phase keeps paging at local-tier speed.
	if res.Mbps[1] < res.Mbps[0]*0.5 {
		t.Fatalf("throughput collapsed during the outage: %+v", res.Mbps)
	}
	if res.Mbps[2] <= 0 {
		t.Fatalf("no recovery after the outage: %+v", res.Mbps)
	}
}
