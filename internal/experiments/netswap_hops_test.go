package experiments

import (
	"strings"
	"testing"
	"time"

	"nemesis/internal/core"
	"nemesis/internal/netswap"
	"nemesis/internal/obs"
	"nemesis/internal/workload"
)

// TestNetswapHopBreakdownSurvivesSpanChurn is the end-to-end counterpart of
// the obs-level span pooling tests: a real remote-paging run that finishes
// far more fault spans than the span ring retains must still report the full
// per-hop breakdown — the local fault-path hops and the remote hops
// (net.out, remote.store, net.back) — and the WriteTopTable snapshot must
// render over the same telemetry without error.
func TestNetswapHopBreakdownSurvivesSpanChurn(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.MemoryFrames = 1024
	cfg.Telemetry = true
	ns := netswap.DefaultConfig()
	ns.Link.Latency = 200 * time.Microsecond
	cfg.NetSwap = &ns
	sys := core.New(cfg)

	pc := workload.DefaultPagerConfig("remote", 100*time.Millisecond)
	pc.PhysFrames = 8
	pc.VirtBytes = 2 << 20
	pc.Backing = core.BackingRemote
	pc.Write = true
	pc.SkipInit = true
	if _, err := workload.StartPager(sys, pc, nil); err != nil {
		t.Fatal(err)
	}
	sys.Run(10 * time.Second)
	defer sys.Shutdown()

	if total := sys.Obs.SpanTotal(); total <= obs.DefaultSpanCap {
		t.Fatalf("run finished only %d spans; need > %d to churn the ring", total, obs.DefaultSpanCap)
	}
	counts := map[string]int64{}
	for _, h := range sys.Obs.HopSummaries() {
		if h.Domain == "remote" && h.Class == "page" {
			counts[h.Hop] = h.Count
		}
	}
	for _, hop := range []string{"net.out", "remote.store", "net.back"} {
		if counts[hop] == 0 {
			t.Errorf("hop %q missing from summaries after span churn (got %v)", hop, counts)
		}
	}
	// Every retained (pooled, recycled) span must still carry a contiguous
	// multi-hop chain, not a truncated one.
	for _, sp := range sys.Obs.Spans() {
		if sp.Class != "page" {
			continue
		}
		hops := sp.Hops()
		if len(hops) < 2 {
			t.Fatalf("retained page span has %d hops; per-hop breakdown truncated: %+v", len(hops), hops)
		}
		if sp.HopSum() != sp.Duration() {
			t.Fatalf("retained span hop sum %v != duration %v", sp.HopSum(), sp.Duration())
		}
	}
	var top strings.Builder
	if err := sys.WriteTopTable(&top); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(top.String(), "remote") {
		t.Fatalf("WriteTopTable missing the remote domain:\n%s", top.String())
	}
}
