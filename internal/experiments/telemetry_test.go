package experiments

import (
	"strings"
	"testing"
	"time"

	"nemesis/internal/core"
)

// TestFig7Telemetry runs a shortened Fig. 7 workload with telemetry on and
// checks the acceptance criteria end to end: every domain appears in the
// nemesis-top table with fault activity, periodic snapshots fire, spans
// accumulate with USD hops, and the crosstalk monitor ticks.
func TestFig7Telemetry(t *testing.T) {
	opt := DefaultPagingOptions()
	opt.Measure = 6 * time.Second
	opt.Telemetry = true
	opt.SnapshotEvery = 2 * time.Second
	var snapshots int
	var lastTable string
	opt.OnSnapshot = func(sys *core.System) {
		snapshots++
		var sb strings.Builder
		if err := sys.WriteTopTable(&sb); err != nil {
			t.Fatal(err)
		}
		lastTable = sb.String()
	}
	r, err := RunPaging(opt)
	if err != nil {
		t.Fatal(err)
	}
	if snapshots != 3 {
		t.Fatalf("snapshots = %d, want 3", snapshots)
	}
	for _, d := range r.Sys.Domains() {
		if !strings.Contains(lastTable, d.Name()) {
			t.Fatalf("table missing domain %q:\n%s", d.Name(), lastTable)
		}
		if d.Stats().Faults == 0 {
			t.Fatalf("domain %s recorded no faults", d.Name())
		}
	}
	if r.Sys.Obs.SpanTotal() == 0 {
		t.Fatal("no spans recorded")
	}
	var sawUSD bool
	for _, hs := range r.Sys.Obs.HopSummaries() {
		if hs.Hop == "usd.read" && hs.Count > 0 {
			sawUSD = true
		}
	}
	if !sawUSD {
		t.Fatal("no usd.read hops in summaries")
	}
	if mon := r.Sys.CrosstalkMonitor(); mon == nil || mon.Ticks() == 0 {
		t.Fatal("crosstalk monitor did not run")
	}
}
