package experiments

import (
	"testing"
	"time"

	"nemesis/internal/stretchdrv"
)

func TestExtensionPipelineDepth(t *testing.T) {
	r, err := ExtensionPipelineDepth([]int{1, 4}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// A shallow pipeline wastes slice time on lax charges while the
	// client processes completed pages; depth 4 roughly doubles it.
	if r.Mbps[1] < 1.5*r.Mbps[0] {
		t.Fatalf("depth sweep flat: depth1=%.2f depth4=%.2f", r.Mbps[0], r.Mbps[1])
	}
	if r.Mbps[0] < 4 {
		t.Fatalf("depth-1 throughput %.2f implausibly low (laxity should still help)", r.Mbps[0])
	}
}

func TestExtensionSecondChance(t *testing.T) {
	r, err := ExtensionSecondChance(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Second chance keeps the hot set resident: materially fewer
	// page-ins per MB of progress, and higher throughput.
	if r.SecondChancePageInsPerMB > 0.8*r.FIFOPageInsPerMB {
		t.Fatalf("second chance did not reduce paging rate: fifo=%.1f sc=%.1f ins/MB",
			r.FIFOPageInsPerMB, r.SecondChancePageInsPerMB)
	}
	if r.SecondChanceMbps < r.FIFOMbps {
		t.Fatalf("second chance slower: %.2f vs %.2f Mbit/s", r.SecondChanceMbps, r.FIFOMbps)
	}
}

func TestExtensionEvictionPolicyClock(t *testing.T) {
	rows, err := ExtensionEvictionPolicies(10*time.Second,
		[]stretchdrv.PolicyKind{stretchdrv.PolicyFIFO, stretchdrv.PolicyClock})
	if err != nil {
		t.Fatal(err)
	}
	fifo, clock := rows[0], rows[1]
	// CLOCK sees the hot set's referenced bits refreshed between sweeps and
	// keeps it resident, like second chance.
	if clock.PageInsPerMB > 0.8*fifo.PageInsPerMB {
		t.Fatalf("clock did not reduce paging rate: fifo=%.1f clock=%.1f ins/MB",
			fifo.PageInsPerMB, clock.PageInsPerMB)
	}
	if clock.Spares == 0 {
		t.Fatal("clock never spared a referenced page")
	}
	if fifo.Spares != 0 {
		t.Fatalf("fifo spared %d pages; it must ignore reference bits", fifo.Spares)
	}
}

func TestExtensionWriteClustering(t *testing.T) {
	r, err := ExtensionWriteClustering(10*time.Second, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.PageOuts[0] == 0 || r.PageOuts[1] == 0 {
		t.Fatalf("no cleaning happened: %v", r.PageOuts)
	}
	// ClusterSize 1 degenerates to one transaction per page.
	if r.WriteTxns[0] != r.PageOuts[0] {
		t.Fatalf("unclustered run merged writes: %d txns for %d pages",
			r.WriteTxns[0], r.PageOuts[0])
	}
	// ClusterSize 4 must merge batches into fewer USD transactions — the
	// measurable improvement from batched multi-page cleaning.
	if r.WriteTxns[1] >= r.PageOuts[1] {
		t.Fatalf("clustering merged nothing: %d txns for %d pages",
			r.WriteTxns[1], r.PageOuts[1])
	}
	if r.TxnsPerPageOut[1] > 0.7 {
		t.Fatalf("clustering ratio %.2f txns/page, want <= 0.7", r.TxnsPerPageOut[1])
	}
}

func TestExtensionGuardedPT(t *testing.T) {
	r, err := ExtensionGuardedPT()
	if err != nil {
		t.Fatal(err)
	}
	if r.LinearUS != 0.15 {
		t.Fatalf("linear dirty lookup = %.3fus, want 0.15", r.LinearUS)
	}
	// "about three times slower" (measured: ~3.7x with a neighbouring
	// stretch splitting the upper trie levels).
	if s := r.Slowdown(); s < 2.5 || s > 4.5 {
		t.Fatalf("GPT slowdown = %.2fx (%.3fus), want ~3x", s, r.GuardedUS)
	}
}

func TestExtensionStreamPaging(t *testing.T) {
	r, err := ExtensionStreamPaging(12 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Overlapping per-page processing with disk service must give a
	// material speedup (media rate caps it well under 2x here).
	if s := r.Speedup(); s < 1.3 {
		t.Fatalf("stream paging speedup = %.2fx (demand %.2f, streaming %.2f)",
			s, r.DemandMbps, r.StreamingMbps)
	}
	// The sequential predictor should be essentially perfect on a
	// sequential scan.
	if r.Prefetches == 0 {
		t.Fatal("no prefetches issued")
	}
	if float64(r.PrefetchedUsed) < 0.95*float64(r.Prefetches) {
		t.Fatalf("prefetch accuracy %.1f%% (%d/%d)",
			100*float64(r.PrefetchedUsed)/float64(r.Prefetches), r.PrefetchedUsed, r.Prefetches)
	}
}

func TestExtensionRebalance(t *testing.T) {
	r, err := ExtensionRebalance(15 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if r.Moves == 0 {
		t.Fatal("rebalancer made no moves")
	}
	// The worker's optimistic quota should be substantially filled from
	// the idler's surplus...
	if r.WorkerFramesWith <= r.WorkerFramesWithout {
		t.Fatalf("worker frames %d -> %d; no memory moved", r.WorkerFramesWithout, r.WorkerFramesWith)
	}
	// ...and throughput transformed (working set becomes resident).
	if s := r.Speedup(); s < 3 {
		t.Fatalf("rebalance speedup = %.1fx (%.2f -> %.2f Mbit/s)", s, r.WithoutMbps, r.WithMbps)
	}
	// No contract was violated: the policy only moves optimistic frames.
	// (The idler is alive; only its optimistic frames went.)
}

func TestMotivationMJPEG(t *testing.T) {
	r, err := MotivationMJPEG(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if r.Frames < 400 {
		t.Fatalf("frames = %d", r.Frames)
	}
	// With contracts the player holds its deadlines...
	if r.QoSMissRate > 0.05 {
		t.Fatalf("QoS miss rate = %.1f%%", 100*r.QoSMissRate)
	}
	// ...and on the conventional configuration the compile destroys it.
	if r.FCFSMissRate < 0.3 {
		t.Fatalf("FCFS miss rate only %.1f%%", 100*r.FCFSMissRate)
	}
	if r.QoSJitterMs >= r.FCFSJitterMs {
		t.Fatalf("jitter: qos %.2fms >= fcfs %.2fms", r.QoSJitterMs, r.FCFSJitterMs)
	}
}
