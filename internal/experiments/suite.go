package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"nemesis/internal/experiments/sweep"
	"nemesis/internal/stretchdrv"
)

// SuiteCell is one experiment of the full suite: its name and rendered
// summary. Cells are independent deterministic runs, so the rendered text
// is identical whether the suite ran serially or fanned out.
type SuiteCell struct {
	Name   string `json:"name"`
	Output string `json:"output"`
}

// RunSuite runs the full experiment suite — Table 1, Figs. 7–9, the
// ablations A1–A5, the extensions E1–E7 and the netswap trio — as
// independent cells fanned out over workers goroutines (sweep.Workers()
// when workers <= 0). Results come back in suite order regardless of the
// fan-out, so serial and parallel runs produce byte-identical output.
// measure bounds each cell's simulated measurement window; cells that need
// less clamp it themselves.
func RunSuite(measure time.Duration, workers int) ([]SuiteCell, error) {
	return RunSuiteContext(context.Background(), measure, workers)
}

// RunSuiteContext is RunSuite under a context: workers observe ctx between
// cells (a cancelled suite stops scheduling cells and returns ctx.Err()),
// and a sweep.WithProgress callback on ctx receives per-cell completion
// events. In-flight cells run to completion; a single cell is not
// interruptible mid-simulation.
func RunSuiteContext(ctx context.Context, measure time.Duration, workers int) ([]SuiteCell, error) {
	if workers <= 0 {
		workers = sweep.Workers()
	}
	return runSuiteCells(ctx, workers, suiteCellList(measure, suiteLegacy))
}

// suiteMode selects how the four world-reusing cells of the suite run.
type suiteMode int

const (
	// suiteLegacy: the original in-place harnesses (RunPaging, Table1, …),
	// pinned by the figure goldens and benchmark baselines.
	suiteLegacy suiteMode = iota
	// suiteCold: the warm+measure protocol, measuring on the warmed world
	// itself (no forking).
	suiteCold
	// suiteForked: the warm+measure protocol, measuring on forks of shared
	// warmed worlds. Must match suiteCold byte for byte.
	suiteForked
)

// suiteCellDef is one experiment cell of the suite.
type suiteCellDef struct {
	name string
	run  func(ctx context.Context) (string, error)
}

func runSuiteCells(ctx context.Context, workers int, cells []suiteCellDef) ([]SuiteCell, error) {
	return sweep.MapWorkersContext(ctx, workers, cells, func(ctx context.Context, c suiteCellDef) (SuiteCell, error) {
		out, err := c.run(ctx)
		if err != nil {
			return SuiteCell{}, fmt.Errorf("%s: %w", c.name, err)
		}
		return SuiteCell{Name: c.name, Output: out}, nil
	})
}

// suiteCellList builds the suite's cells. Only the four heavyweight cells
// depend on mode; every other cell runs the same harness in every mode.
func suiteCellList(measure time.Duration, mode suiteMode) []suiteCellDef {
	short := measure
	if short > 15*time.Second {
		short = 15 * time.Second
	}

	runTable1 := Table1
	runPaging := RunPaging
	runFig9 := RunFig9
	if mode != suiteLegacy {
		forked := mode == suiteForked
		runTable1 = func() ([]Table1Row, error) { return Table1Forked(1, forked) }
		runPaging = func(opt PagingOptions) (*PagingResult, error) { return RunPagingForked(opt, forked) }
		runFig9 = func(opt Fig9Options) (*Fig9Result, error) { return RunFig9Forked(opt, forked) }
	}

	type cell = suiteCellDef
	cells := []cell{
		{"table1", func(context.Context) (string, error) {
			rows, err := runTable1()
			if err != nil {
				return "", err
			}
			var b strings.Builder
			for _, r := range rows {
				fmt.Fprintf(&b, "%s\tsim %.2fus\tOSF/1 %.2fus\n", r.Name, r.NemesisUS, r.OSF1US)
			}
			return b.String(), nil
		}},
		{"fig7 paging-in", func(context.Context) (string, error) {
			opt := DefaultPagingOptions()
			opt.Measure = measure
			r, err := runPaging(opt)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("mean Mbit/s %s  ratios %s\n", fmtFloats(r.MeanMbps), fmtFloats(r.Ratios())), nil
		}},
		{"fig8 paging-out", func(context.Context) (string, error) {
			opt := DefaultPagingOptions()
			opt.Measure = measure
			opt.Write = true
			opt.Forgetful = true
			r, err := runPaging(opt)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("mean Mbit/s %s  ratios %s\n", fmtFloats(r.MeanMbps), fmtFloats(r.Ratios())), nil
		}},
		{"fig9 fs-isolation", func(context.Context) (string, error) {
			opt := DefaultFig9Options()
			opt.Measure = measure
			r, err := runFig9(opt)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("alone %.2f  contended %.2f  isolation %.3f\n", r.AloneMbps, r.ContendedMbps, r.Isolation()), nil
		}},
		{"A1 laxity", func(context.Context) (string, error) {
			r, err := AblationLaxity(short)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("with %.2f  without %.2f\n", r.WithLaxityMbps, r.WithoutLaxityMbps), nil
		}},
		{"A2 fcfs-disk", func(context.Context) (string, error) {
			r, err := AblationFCFS(short)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("atropos %s  fcfs %s\n", fmtFloats(r.AtroposMbps), fmtFloats(r.FCFSMbps)), nil
		}},
		{"A3 crosstalk", func(context.Context) (string, error) {
			r, err := AblationCrosstalk(short)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("self iso %.2f  ext iso %.2f\n", r.SelfIsolation(), r.ExtIsolation()), nil
		}},
		{"A4 slack", func(context.Context) (string, error) {
			r, err := AblationSlack(short)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("x=true %.2f  x=false %.2f\n", r.XTrueMbps, r.XFalseMbps), nil
		}},
		{"A5 revocation", func(context.Context) (string, error) {
			r, err := AblationRevocation()
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("transparent %.3fms  intrusive %.3fms\n", r.TransparentMs, r.IntrusiveMs), nil
		}},
		{"E1 pipeline-depth", func(context.Context) (string, error) {
			r, err := ExtensionPipelineDepth([]int{1, 2, 4, 8, 16}, short)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%v -> %s Mbit/s\n", r.Depths, fmtFloats(r.Mbps)), nil
		}},
		{"E2 eviction-policies", func(context.Context) (string, error) {
			rows, err := ExtensionEvictionPolicies(short,
				[]stretchdrv.PolicyKind{stretchdrv.PolicyFIFO, stretchdrv.PolicySecondChance, stretchdrv.PolicyClock})
			if err != nil {
				return "", err
			}
			var b strings.Builder
			for _, pc := range rows {
				fmt.Fprintf(&b, "%v %.1f ins/MB (%.1f Mbit/s)\n", pc.Policy, pc.PageInsPerMB, pc.Mbps)
			}
			return b.String(), nil
		}},
		{"E3 guarded-pt", func(context.Context) (string, error) {
			r, err := ExtensionGuardedPT()
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("linear %.2fus  guarded %.2fus  %.1fx\n", r.LinearUS, r.GuardedUS, r.Slowdown()), nil
		}},
		{"E4 stream-paging", func(context.Context) (string, error) {
			r, err := ExtensionStreamPaging(short)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("demand %.2f  streaming %.2f  %.2fx\n", r.DemandMbps, r.StreamingMbps, r.Speedup()), nil
		}},
		{"E5 rebalancer", func(context.Context) (string, error) {
			r, err := ExtensionRebalance(short)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%.2f -> %.2f Mbit/s (%d moves)\n", r.WithoutMbps, r.WithMbps, r.Moves), nil
		}},
		{"E6 mjpeg", func(context.Context) (string, error) {
			r, err := MotivationMJPEG(short)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("qos miss %.1f%% jitter %.2fms  fcfs miss %.1f%% jitter %.2fms\n",
				100*r.QoSMissRate, r.QoSJitterMs, 100*r.FCFSMissRate, r.FCFSJitterMs), nil
		}},
		{"E7 write-clustering", func(context.Context) (string, error) {
			r, err := ExtensionWriteClustering(short, []int{1, 2, 4, 8})
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("sizes %v  txns/pageout %s\n", r.Sizes, fmtFloats(r.TxnsPerPageOut)), nil
		}},
		{"E8a netswap-sweep", func(ctx context.Context) (string, error) {
			latencies := []time.Duration{200 * time.Microsecond, time.Millisecond, 2 * time.Millisecond}
			losses := []float64{0, 0.05}
			r, err := RunNetswapSweepContext(ctx, latencies, losses, short)
			if err != nil {
				return "", err
			}
			var b strings.Builder
			for _, c := range r.Cells {
				fmt.Fprintf(&b, "%v loss %.2f: %.2f Mbit/s  net.out p95 %.3fms\n", c.Latency, c.Loss, c.Mbps, c.NetOutP95Ms)
			}
			return b.String(), nil
		}},
		{"E8b netswap-outage", func(context.Context) (string, error) {
			r, err := RunNetswapOutage(short / 3)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("local %s  remote %s  flags %d\n", fmtFloats(r.LocalMbps[:]), fmtFloats(r.RemoteMbps[:]), len(r.Flags)), nil
		}},
		{"E8c netswap-degrade", func(context.Context) (string, error) {
			r, err := RunNetswapDegrade(short / 3)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("mbps %s  degraded=%v\n", fmtFloats(r.Mbps[:]), r.DegradedDuringOutage), nil
		}},
	}

	return cells
}

func fmtFloats(fs []float64) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, f := range fs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.2f", f)
	}
	b.WriteByte(']')
	return b.String()
}
