package atropos

// SetExtra flips the client's slack-eligibility (x) flag in place. The flag
// does not contribute to admission (Share ignores it), so no admission-control
// re-check is needed. Forked ablation cells use it to reconfigure a warmed
// world without re-admitting the client.
func (c *Client) SetExtra(x bool) { c.qos.X = x }

// Fork returns a deep copy of the core and an identity map from each parent
// client to its forked twin. Everything that influences future decisions is
// copied exactly: client accounting, admission sequence numbers, the
// round-robin slack cursor, and the lazily-invalidated heaps — including
// their stale entries, re-pointed at the copied clients, so the forked core
// drops them at the same instants the parent would.
func (co *Core) Fork() (*Core, map[*Client]*Client) {
	m := make(map[*Client]*Client, len(co.clients))
	nc := &Core{
		clients:    make([]*Client, len(co.clients)),
		byName:     make(map[string]*Client, len(co.byName)),
		capacity:   co.capacity,
		contracted: co.contracted,
		slackIdx:   co.slackIdx,
		nextSeq:    co.nextSeq,
		MinRemain:  co.MinRemain,
	}
	clone := func(c *Client) *Client {
		if c == nil {
			return nil
		}
		if n, ok := m[c]; ok {
			return n
		}
		n := &Client{}
		*n = *c
		m[c] = n
		return n
	}
	for i, c := range co.clients {
		nc.clients[i] = clone(c)
	}
	for name, c := range co.byName {
		nc.byName[name] = clone(c)
	}
	remapHeap := func(h entryHeap) entryHeap {
		out := make(entryHeap, len(h))
		for i, e := range h {
			// Stale entries may reference removed clients absent from the
			// client list; clone keeps their snapshot state so the copied
			// heap invalidates them identically.
			out[i] = qentry{deadline: e.deadline, seq: e.seq, gen: e.gen, c: clone(e.c)}
		}
		return out
	}
	nc.runq = remapHeap(co.runq)
	nc.relq = remapHeap(co.relq)
	nc.readyq = remapHeap(co.readyq)
	nc.readyList = make([]*Client, len(co.readyList))
	for i, c := range co.readyList {
		nc.readyList[i] = clone(c)
	}
	return nc, m
}
