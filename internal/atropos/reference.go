package atropos

import (
	"fmt"
	"time"

	"nemesis/internal/sim"
)

// This file retains the original linear-scan implementation of the Atropos
// accounting core, verbatim, as ReferenceCore. It exists solely so the
// equivalence tests can co-run it against the indexed (heap-backed) Core and
// assert that every scheduling decision is identical over seeded random
// contract sets. Production code must use Core; nothing outside the package
// tests should construct a ReferenceCore.

// ReferenceClient is one contracted consumer of the resource under the
// reference (linear) core.
type ReferenceClient struct {
	name string
	qos  QoS

	state       State
	remain      time.Duration
	deadline    sim.Time
	periodStart sim.Time
	laxSpan     time.Duration
	allocations int64
	charged     time.Duration
	laxCharged  time.Duration
}

// Name returns the client's registration name.
func (c *ReferenceClient) Name() string { return c.name }

// QoS returns the client's contract.
func (c *ReferenceClient) QoS() QoS { return c.qos }

// State returns the scheduling state.
func (c *ReferenceClient) State() State { return c.state }

// Remain returns the unconsumed allocation for the current period.
func (c *ReferenceClient) Remain() time.Duration { return c.remain }

// Deadline returns the end of the client's current period.
func (c *ReferenceClient) Deadline() sim.Time { return c.deadline }

// LaxBudget returns how much longer the client may stay runnable without
// pending work before being marked idle.
func (c *ReferenceClient) LaxBudget() time.Duration {
	if b := c.qos.L - c.laxSpan; b > 0 {
		return b
	}
	return 0
}

// Allocations returns the number of periodic allocations granted so far.
func (c *ReferenceClient) Allocations() int64 { return c.allocations }

// Charged returns total time charged to the client (work plus lax).
func (c *ReferenceClient) Charged() time.Duration { return c.charged }

// LaxCharged returns total lax time charged to the client.
func (c *ReferenceClient) LaxCharged() time.Duration { return c.laxCharged }

// ReferenceCore is the original O(n)-per-operation Core: every pick and
// refresh scans the full client slice.
type ReferenceCore struct {
	clients   []*ReferenceClient
	capacity  float64
	slackIdx  int
	MinRemain time.Duration
}

// NewReferenceCore returns a ReferenceCore admitting contracts totalling at
// most capacity (1.0 = the whole resource).
func NewReferenceCore(capacity float64) *ReferenceCore {
	if capacity <= 0 {
		capacity = 1.0
	}
	return &ReferenceCore{capacity: capacity}
}

// Contracted returns the sum of admitted shares.
func (co *ReferenceCore) Contracted() float64 {
	total := 0.0
	for _, c := range co.clients {
		total += c.qos.Share()
	}
	return total
}

// Clients returns the registered clients in admission order.
func (co *ReferenceCore) Clients() []*ReferenceClient { return co.clients }

// Lookup returns the client with the given name, or nil.
func (co *ReferenceCore) Lookup(name string) *ReferenceClient {
	for _, c := range co.clients {
		if c.name == name {
			return c
		}
	}
	return nil
}

// Admit registers a client with the given contract, starting its first
// period at now.
func (co *ReferenceCore) Admit(name string, q QoS, now sim.Time) (*ReferenceClient, error) {
	if err := q.validate(); err != nil {
		return nil, err
	}
	if co.Lookup(name) != nil {
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	if co.Contracted()+q.Share() > co.capacity+1e-9 {
		return nil, fmt.Errorf("%w: %.3f + %.3f > %.3f", ErrOvercommitted, co.Contracted(), q.Share(), co.capacity)
	}
	c := &ReferenceClient{
		name:        name,
		qos:         q,
		state:       Runnable,
		remain:      q.S,
		periodStart: now,
		deadline:    now.Add(q.P),
		allocations: 1,
	}
	co.clients = append(co.clients, c)
	return c, nil
}

// Remove deregisters a client.
func (co *ReferenceCore) Remove(name string) error {
	for i, c := range co.clients {
		if c.name == name {
			co.clients = append(co.clients[:i], co.clients[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("%w: %q", ErrUnknown, name)
}

// Refresh grants periodic allocations to every client whose deadline has
// arrived, returning the clients that received one (in admission order).
func (co *ReferenceCore) Refresh(now sim.Time) []*ReferenceClient {
	var granted []*ReferenceClient
	for _, c := range co.clients {
		if c.deadline > now {
			continue
		}
		// Catch up period boundaries without stacking slices.
		for c.deadline <= now {
			c.periodStart = c.deadline
			c.deadline = c.deadline.Add(c.qos.P)
		}
		carry := time.Duration(0)
		if c.remain < 0 {
			carry = c.remain
		}
		c.remain = c.qos.S + carry
		c.laxSpan = 0
		c.allocations++
		if c.state == Waiting || c.state == Idle {
			c.state = Runnable
		}
		granted = append(granted, c)
	}
	return granted
}

// runnable reports whether c may be given service now.
func (co *ReferenceCore) runnable(c *ReferenceClient) bool {
	return c.state == Runnable && c.remain > co.MinRemain
}

// PickEDF returns the runnable client with the earliest deadline, or nil.
// Ties break by admission order, which is deterministic.
func (co *ReferenceCore) PickEDF() *ReferenceClient {
	var best *ReferenceClient
	for _, c := range co.clients {
		if !co.runnable(c) {
			continue
		}
		if best == nil || c.deadline < best.deadline {
			best = c
		}
	}
	return best
}

// PickEDFWith returns the earliest-deadline runnable client satisfying pred.
func (co *ReferenceCore) PickEDFWith(pred func(*ReferenceClient) bool) *ReferenceClient {
	var best *ReferenceClient
	for _, c := range co.clients {
		if !co.runnable(c) || !pred(c) {
			continue
		}
		if best == nil || c.deadline < best.deadline {
			best = c
		}
	}
	return best
}

// PickSlack returns the next slack-eligible (x=true) client satisfying pred,
// distributing slack round-robin regardless of remaining allocation.
func (co *ReferenceCore) PickSlack(pred func(*ReferenceClient) bool) *ReferenceClient {
	n := len(co.clients)
	for i := 0; i < n; i++ {
		c := co.clients[(co.slackIdx+i)%n]
		if c.qos.X && pred(c) {
			co.slackIdx = (co.slackIdx + i + 1) % n
			return c
		}
	}
	return nil
}

// Charge debits d of real service time from c.
func (co *ReferenceCore) Charge(c *ReferenceClient, d time.Duration) {
	c.remain -= d
	c.charged += d
	c.laxSpan = 0
	if c.remain <= 0 {
		c.state = Waiting
	}
}

// ChargeLax debits d of lax (workless runnable) time from c.
func (co *ReferenceCore) ChargeLax(c *ReferenceClient, d time.Duration) {
	c.remain -= d
	c.charged += d
	c.laxCharged += d
	c.laxSpan += d
	switch {
	case c.remain <= 0:
		c.state = Waiting
	case c.laxSpan >= c.qos.L:
		c.state = Idle
	}
}

// NoteWork resets c's continuous lax span: pending work has arrived.
func (co *ReferenceCore) NoteWork(c *ReferenceClient) { c.laxSpan = 0 }

// Idle parks a runnable client until its next allocation without charging it.
func (co *ReferenceCore) Idle(c *ReferenceClient) {
	if c.state == Runnable {
		c.state = Idle
	}
}

// NextBoundary returns the earliest deadline over all clients, or ok=false if
// there are no clients.
func (co *ReferenceCore) NextBoundary() (sim.Time, bool) {
	var best sim.Time
	found := false
	for _, c := range co.clients {
		if !found || c.deadline < best {
			best = c.deadline
			found = true
		}
	}
	return best, found
}
