package atropos

import (
	"strconv"
	"testing"
	"time"

	"nemesis/internal/sim"
)

func benchCore(b *testing.B, clients int) *Core {
	b.Helper()
	co := NewCore(1.0)
	slice := time.Duration(int64(200*time.Millisecond) / int64(clients))
	for i := 0; i < clients; i++ {
		name := "c" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if _, err := co.Admit(name, QoS{P: 250 * time.Millisecond, S: slice, L: 10 * time.Millisecond}, 0); err != nil {
			b.Fatal(err)
		}
	}
	return co
}

func BenchmarkPickEDF16(b *testing.B) {
	co := benchCore(b, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if co.PickEDF() == nil {
			b.Fatal("no pick")
		}
	}
}

// BenchmarkTick drives the per-quantum scheduler operation mix — a refresh
// (a no-op except at period boundaries, which grant the whole population), a
// pick over the ready set, and a charge — advancing simulated time 1ms per
// iteration at growing client populations. The indexed core keeps the
// common-case tick O(log n); the linear reference (BenchmarkReferenceTick)
// pays a full population scan on every refresh and every pick, including
// picks that find nothing.
func BenchmarkTick(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(strconv.Itoa(n), func(b *testing.B) {
			co := benchCore(b, n)
			for _, c := range co.Clients() {
				co.SetReady(c, true)
			}
			now := sim.Time(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now = now.Add(time.Millisecond)
				co.Refresh(now)
				if c := co.PickEDFReady(); c != nil {
					co.Charge(c, time.Millisecond)
				}
			}
		})
	}
}

// BenchmarkReferenceTick is the same quantum tick on the retained linear
// core, for side-by-side comparison of the scans the index replaces.
func BenchmarkReferenceTick(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(strconv.Itoa(n), func(b *testing.B) {
			co := NewReferenceCore(1.0)
			slice := time.Duration(int64(200*time.Millisecond) / int64(n))
			for i := 0; i < n; i++ {
				name := "c" + string(rune('a'+i%26)) + string(rune('0'+i/26))
				if _, err := co.Admit(name, QoS{P: 250 * time.Millisecond, S: slice, L: 10 * time.Millisecond}, 0); err != nil {
					b.Fatal(err)
				}
			}
			ready := func(*ReferenceClient) bool { return true }
			now := sim.Time(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now = now.Add(time.Millisecond)
				co.Refresh(now)
				if c := co.PickEDFWith(ready); c != nil {
					co.Charge(c, time.Millisecond)
				}
			}
		})
	}
}

func BenchmarkChargeRefresh(b *testing.B) {
	co := benchCore(b, 8)
	c := co.Clients()[0]
	now := sim.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		co.Charge(c, 30*time.Millisecond)
		now = now.Add(250 * time.Millisecond)
		co.Refresh(now)
	}
}
