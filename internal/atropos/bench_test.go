package atropos

import (
	"testing"
	"time"

	"nemesis/internal/sim"
)

func benchCore(b *testing.B, clients int) *Core {
	b.Helper()
	co := NewCore(1.0)
	slice := time.Duration(int64(200*time.Millisecond) / int64(clients))
	for i := 0; i < clients; i++ {
		name := "c" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if _, err := co.Admit(name, QoS{P: 250 * time.Millisecond, S: slice, L: 10 * time.Millisecond}, 0); err != nil {
			b.Fatal(err)
		}
	}
	return co
}

func BenchmarkPickEDF16(b *testing.B) {
	co := benchCore(b, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if co.PickEDF() == nil {
			b.Fatal("no pick")
		}
	}
}

func BenchmarkChargeRefresh(b *testing.B) {
	co := benchCore(b, 8)
	c := co.Clients()[0]
	now := sim.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		co.Charge(c, 30*time.Millisecond)
		now = now.Add(250 * time.Millisecond)
		co.Refresh(now)
	}
}
