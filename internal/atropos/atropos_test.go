package atropos

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"nemesis/internal/sim"
)

func ms(n int64) time.Duration { return time.Duration(n) * time.Millisecond }
func at(n int64) sim.Time      { return sim.Time(ms(n)) }

func mustAdmit(t *testing.T, co *Core, name string, q QoS, now sim.Time) *Client {
	t.Helper()
	c, err := co.Admit(name, q, now)
	if err != nil {
		t.Fatalf("Admit(%s): %v", name, err)
	}
	return c
}

func TestAdmissionControl(t *testing.T) {
	co := NewCore(1.0)
	mustAdmit(t, co, "a", QoS{P: ms(250), S: ms(100)}, 0)
	mustAdmit(t, co, "b", QoS{P: ms(250), S: ms(100)}, 0)
	// 0.4+0.4+0.4 > 1.0 must be rejected.
	if _, err := co.Admit("c", QoS{P: ms(250), S: ms(100)}, 0); !errors.Is(err, ErrOvercommitted) {
		t.Fatalf("err = %v, want ErrOvercommitted", err)
	}
	// Exactly filling capacity is allowed.
	mustAdmit(t, co, "d", QoS{P: ms(250), S: ms(50)}, 0)
	if got := co.Contracted(); got < 0.999 || got > 1.001 {
		t.Fatalf("Contracted = %v", got)
	}
}

func TestAdmitValidation(t *testing.T) {
	co := NewCore(1.0)
	bad := []QoS{
		{P: 0, S: ms(1)},
		{P: ms(10), S: 0},
		{P: ms(10), S: ms(20)}, // slice > period
		{P: ms(10), S: ms(5), L: -ms(1)},
	}
	for _, q := range bad {
		if _, err := co.Admit("x", q, 0); !errors.Is(err, ErrBadQoS) {
			t.Errorf("Admit(%+v) err = %v, want ErrBadQoS", q, err)
		}
	}
	mustAdmit(t, co, "a", QoS{P: ms(10), S: ms(1)}, 0)
	if _, err := co.Admit("a", QoS{P: ms(10), S: ms(1)}, 0); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate err = %v", err)
	}
}

func TestRemove(t *testing.T) {
	co := NewCore(1.0)
	mustAdmit(t, co, "a", QoS{P: ms(10), S: ms(5)}, 0)
	if err := co.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := co.Remove("a"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("second remove err = %v", err)
	}
	if co.Lookup("a") != nil {
		t.Fatal("removed client still found")
	}
}

func TestInitialAllocation(t *testing.T) {
	co := NewCore(1.0)
	c := mustAdmit(t, co, "a", QoS{P: ms(250), S: ms(100)}, at(5))
	if c.State() != Runnable || c.Remain() != ms(100) {
		t.Fatalf("state=%v remain=%v", c.State(), c.Remain())
	}
	if c.Deadline() != at(255) {
		t.Fatalf("deadline = %v", c.Deadline())
	}
	if c.Allocations() != 1 {
		t.Fatalf("allocations = %d", c.Allocations())
	}
}

func TestChargeExhaustsSlice(t *testing.T) {
	co := NewCore(1.0)
	c := mustAdmit(t, co, "a", QoS{P: ms(250), S: ms(25)}, 0)
	co.Charge(c, ms(10))
	if c.State() != Runnable || c.Remain() != ms(15) {
		t.Fatalf("state=%v remain=%v", c.State(), c.Remain())
	}
	co.Charge(c, ms(15))
	if c.State() != Waiting {
		t.Fatalf("state = %v, want Waiting", c.State())
	}
	if c.Charged() != ms(25) {
		t.Fatalf("Charged = %v", c.Charged())
	}
}

func TestRollOverAccounting(t *testing.T) {
	// A transaction that overruns leaves a negative balance which counts
	// against the next allocation — the paper's scheme preventing clients
	// deterministically exceeding their guarantee.
	co := NewCore(1.0)
	c := mustAdmit(t, co, "a", QoS{P: ms(250), S: ms(25)}, 0)
	co.Charge(c, ms(24)) // 1ms left: still runnable
	if co.PickEDF() != c {
		t.Fatal("client with 1ms left not picked")
	}
	co.Charge(c, ms(12)) // transaction overran: remain = -11ms
	if c.State() != Waiting || c.Remain() != -ms(11) {
		t.Fatalf("state=%v remain=%v", c.State(), c.Remain())
	}
	co.Refresh(at(250))
	if c.Remain() != ms(14) { // 25 - 11
		t.Fatalf("post-refresh remain = %v, want 14ms", c.Remain())
	}
	if c.State() != Runnable {
		t.Fatalf("state = %v", c.State())
	}
}

func TestPositiveBalanceDoesNotAccumulate(t *testing.T) {
	co := NewCore(1.0)
	c := mustAdmit(t, co, "a", QoS{P: ms(250), S: ms(25)}, 0)
	co.Charge(c, ms(5)) // uses only 5 of 25
	co.Refresh(at(250))
	if c.Remain() != ms(25) {
		t.Fatalf("remain = %v, want 25ms (no carry of unused time)", c.Remain())
	}
}

func TestRefreshCatchesUpMissedPeriods(t *testing.T) {
	co := NewCore(1.0)
	c := mustAdmit(t, co, "a", QoS{P: ms(100), S: ms(10)}, 0)
	co.Charge(c, ms(10))
	// Three periods pass unserviced; only one slice is granted.
	granted := co.Refresh(at(350))
	if len(granted) != 1 || granted[0] != c {
		t.Fatalf("granted = %v", granted)
	}
	if c.Remain() != ms(10) {
		t.Fatalf("remain = %v", c.Remain())
	}
	if c.Deadline() != at(400) {
		t.Fatalf("deadline = %v, want 400ms", c.Deadline())
	}
}

func TestRefreshSkipsFutureDeadlines(t *testing.T) {
	co := NewCore(1.0)
	c := mustAdmit(t, co, "a", QoS{P: ms(100), S: ms(10)}, 0)
	if got := co.Refresh(at(50)); got != nil {
		t.Fatalf("early refresh granted %v", got)
	}
	if c.Allocations() != 1 {
		t.Fatal("allocation count changed")
	}
}

func TestPickEDFOrdersByDeadline(t *testing.T) {
	co := NewCore(1.0)
	// b has the shorter period => earlier deadline => picked first.
	a := mustAdmit(t, co, "a", QoS{P: ms(250), S: ms(50)}, 0)
	b := mustAdmit(t, co, "b", QoS{P: ms(100), S: ms(10)}, 0)
	if got := co.PickEDF(); got != b {
		t.Fatalf("picked %v", got.Name())
	}
	co.Charge(b, ms(10)) // b exhausted
	if got := co.PickEDF(); got != a {
		t.Fatalf("picked %v after b exhausted", got.Name())
	}
	co.Charge(a, ms(50))
	if got := co.PickEDF(); got != nil {
		t.Fatalf("picked %v with all exhausted", got.Name())
	}
}

func TestPickEDFTieBreaksByAdmissionOrder(t *testing.T) {
	co := NewCore(1.0)
	a := mustAdmit(t, co, "a", QoS{P: ms(250), S: ms(25)}, 0)
	mustAdmit(t, co, "b", QoS{P: ms(250), S: ms(25)}, 0)
	if got := co.PickEDF(); got != a {
		t.Fatalf("tie broke to %v", got.Name())
	}
}

func TestPickEDFWith(t *testing.T) {
	co := NewCore(1.0)
	mustAdmit(t, co, "a", QoS{P: ms(100), S: ms(10)}, 0)
	b := mustAdmit(t, co, "b", QoS{P: ms(250), S: ms(25)}, 0)
	got := co.PickEDFWith(func(c *Client) bool { return c.Name() == "b" })
	if got != b {
		t.Fatalf("picked %v", got)
	}
	if co.PickEDFWith(func(c *Client) bool { return false }) != nil {
		t.Fatal("predicate false still picked")
	}
}

func TestLaxityCharging(t *testing.T) {
	co := NewCore(1.0)
	c := mustAdmit(t, co, "a", QoS{P: ms(250), S: ms(100), L: ms(10)}, 0)
	co.ChargeLax(c, ms(6))
	if c.State() != Runnable || c.LaxBudget() != ms(4) {
		t.Fatalf("state=%v budget=%v", c.State(), c.LaxBudget())
	}
	// Work arriving resets the continuous span.
	co.NoteWork(c)
	if c.LaxBudget() != ms(10) {
		t.Fatalf("budget after work = %v", c.LaxBudget())
	}
	// Real work charging also resets the span.
	co.ChargeLax(c, ms(7))
	co.Charge(c, ms(2))
	if c.LaxBudget() != ms(10) {
		t.Fatalf("budget after charge = %v", c.LaxBudget())
	}
	if c.LaxCharged() != ms(13) {
		t.Fatalf("LaxCharged = %v", c.LaxCharged())
	}
}

func TestLaxityExhaustionIdles(t *testing.T) {
	co := NewCore(1.0)
	c := mustAdmit(t, co, "a", QoS{P: ms(250), S: ms(100), L: ms(10)}, 0)
	co.ChargeLax(c, ms(10))
	if c.State() != Idle {
		t.Fatalf("state = %v, want Idle", c.State())
	}
	if c.LaxBudget() != 0 {
		t.Fatalf("budget = %v", c.LaxBudget())
	}
	// Idle clients are not picked.
	if co.PickEDF() != nil {
		t.Fatal("idle client picked")
	}
	// Next allocation revives it.
	co.Refresh(at(250))
	if c.State() != Runnable || c.LaxBudget() != ms(10) {
		t.Fatalf("state=%v budget=%v after refresh", c.State(), c.LaxBudget())
	}
}

func TestLaxExhaustsSliceGoesWaiting(t *testing.T) {
	co := NewCore(1.0)
	c := mustAdmit(t, co, "a", QoS{P: ms(250), S: ms(5), L: ms(10)}, 0)
	co.ChargeLax(c, ms(5))
	if c.State() != Waiting {
		t.Fatalf("state = %v, want Waiting (slice gone)", c.State())
	}
}

func TestZeroLaxityIdlesImmediately(t *testing.T) {
	// With l=0 a workless client idles at once — the short-block problem
	// the paper describes for early USD versions.
	co := NewCore(1.0)
	c := mustAdmit(t, co, "a", QoS{P: ms(250), S: ms(100), L: 0}, 0)
	co.ChargeLax(c, 0)
	if c.State() != Idle {
		t.Fatalf("state = %v, want Idle", c.State())
	}
}

func TestPickSlackRoundRobin(t *testing.T) {
	co := NewCore(1.0)
	a := mustAdmit(t, co, "a", QoS{P: ms(100), S: ms(10), X: true}, 0)
	mustAdmit(t, co, "b", QoS{P: ms(100), S: ms(10), X: false}, 0)
	c := mustAdmit(t, co, "c", QoS{P: ms(100), S: ms(10), X: true}, 0)
	all := func(*Client) bool { return true }
	if got := co.PickSlack(all); got != a {
		t.Fatalf("first slack pick = %v", got.Name())
	}
	if got := co.PickSlack(all); got != c {
		t.Fatalf("second slack pick = %v", got.Name())
	}
	if got := co.PickSlack(all); got != a {
		t.Fatalf("third slack pick = %v", got.Name())
	}
	if got := co.PickSlack(func(*Client) bool { return false }); got != nil {
		t.Fatal("slack picked with false predicate")
	}
}

func TestNextBoundary(t *testing.T) {
	co := NewCore(1.0)
	if _, ok := co.NextBoundary(); ok {
		t.Fatal("boundary with no clients")
	}
	mustAdmit(t, co, "a", QoS{P: ms(250), S: ms(10)}, 0)
	mustAdmit(t, co, "b", QoS{P: ms(100), S: ms(10)}, 0)
	b, ok := co.NextBoundary()
	if !ok || b != at(100) {
		t.Fatalf("boundary = %v, %v", b, ok)
	}
}

func TestMinRemainGate(t *testing.T) {
	co := NewCore(1.0)
	co.MinRemain = ms(2)
	c := mustAdmit(t, co, "a", QoS{P: ms(100), S: ms(10)}, 0)
	co.Charge(c, ms(9)) // 1ms left < MinRemain
	if co.PickEDF() != nil {
		t.Fatal("client below MinRemain picked")
	}
}

func TestStateString(t *testing.T) {
	if Runnable.String() != "runnable" || Waiting.String() != "waiting" || Idle.String() != "idle" {
		t.Fatal("state strings")
	}
	if State(9).String() != "state(9)" {
		t.Fatal("unknown state string")
	}
}

// Property: over any sequence of charge/refresh operations, total charged
// time within any window of k periods never exceeds (k+1) slices plus one
// roll-over transaction — i.e. the guarantee cannot be deterministically
// exceeded. We verify the weaker invariant actually used by the paper:
// after every refresh, remain <= S.
func TestRemainNeverExceedsSliceProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		co := NewCore(1.0)
		c, err := co.Admit("a", QoS{P: ms(250), S: ms(100), L: ms(10)}, 0)
		if err != nil {
			return false
		}
		now := sim.Time(0)
		for _, op := range ops {
			switch op % 4 {
			case 0:
				co.Charge(c, time.Duration(op)*time.Millisecond)
			case 1:
				co.ChargeLax(c, time.Duration(op%16)*time.Millisecond)
			case 2:
				now = now.Add(ms(250))
				co.Refresh(now)
			case 3:
				co.NoteWork(c)
			}
			if c.Remain() > ms(100) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the sum of admitted shares never exceeds capacity no matter the
// order of admissions and removals.
func TestAdmissionInvariantProperty(t *testing.T) {
	f := func(shares []uint8) bool {
		co := NewCore(1.0)
		i := 0
		for _, sh := range shares {
			s := time.Duration(sh%100+1) * time.Millisecond
			_, err := co.Admit(string(rune('a'+i%26))+string(rune('0'+i/26%10)), QoS{P: ms(100), S: s}, 0)
			if err == nil {
				i++
			}
			if co.Contracted() > 1.0+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
