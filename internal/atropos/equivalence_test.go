package atropos

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"nemesis/internal/sim"
)

// The equivalence suite co-runs the indexed Core against the retained linear
// ReferenceCore over seeded random operation sequences — admissions,
// removals, overruns, laxity churn, slack churn, readiness flips — and
// requires every observable decision and every piece of client state to be
// identical after every operation. This is the contract that makes the heap
// refactor "pure": same inputs, same scheduling, bit for bit.

// pair drives both cores in lockstep.
type pair struct {
	t     *testing.T
	seed  int64
	heap  *Core
	ref   *ReferenceCore
	ready map[string]bool // driver-side work availability, mirrored via SetReady
	now   sim.Time
	step  int
}

func newPair(t *testing.T, seed int64, capacity float64, minRemain time.Duration) *pair {
	p := &pair{
		t:     t,
		seed:  seed,
		heap:  NewCore(capacity),
		ref:   NewReferenceCore(capacity),
		ready: make(map[string]bool),
	}
	p.heap.MinRemain = minRemain
	p.ref.MinRemain = minRemain
	return p
}

func (p *pair) fatalf(format string, args ...any) {
	p.t.Helper()
	p.t.Fatalf("seed %d step %d: %s", p.seed, p.step, fmt.Sprintf(format, args...))
}

// checkState compares the full client population of both cores.
func (p *pair) checkState() {
	p.t.Helper()
	hc, rc := p.heap.Clients(), p.ref.Clients()
	if len(hc) != len(rc) {
		p.fatalf("client count: heap %d ref %d", len(hc), len(rc))
	}
	for i := range hc {
		h, r := hc[i], rc[i]
		if h.name != r.name || h.qos != r.qos || h.state != r.state ||
			h.remain != r.remain || h.deadline != r.deadline ||
			h.periodStart != r.periodStart || h.laxSpan != r.laxSpan ||
			h.allocations != r.allocations || h.charged != r.charged ||
			h.laxCharged != r.laxCharged {
			p.fatalf("client %d diverged:\n heap %q %v remain=%v dl=%v ps=%v lax=%v alloc=%d chg=%v laxchg=%v\n ref  %q %v remain=%v dl=%v ps=%v lax=%v alloc=%d chg=%v laxchg=%v",
				i,
				h.name, h.state, h.remain, h.deadline, h.periodStart, h.laxSpan, h.allocations, h.charged, h.laxCharged,
				r.name, r.state, r.remain, r.deadline, r.periodStart, r.laxSpan, r.allocations, r.charged, r.laxCharged)
		}
	}
	if p.heap.Contracted() != p.ref.Contracted() {
		p.fatalf("contracted: heap %v ref %v", p.heap.Contracted(), p.ref.Contracted())
	}
}

func cname(c *Client) string {
	if c == nil {
		return "<nil>"
	}
	return c.name
}

func rname(c *ReferenceClient) string {
	if c == nil {
		return "<nil>"
	}
	return c.name
}

// pickClient returns a random admitted client (heap view) or nil.
func (p *pair) pickClient(rng *rand.Rand) (*Client, *ReferenceClient) {
	cs := p.heap.Clients()
	if len(cs) == 0 {
		return nil, nil
	}
	c := cs[rng.Intn(len(cs))]
	return c, p.ref.Lookup(c.name)
}

func randQoS(rng *rand.Rand) QoS {
	periods := []time.Duration{10, 20, 50, 100}
	pd := periods[rng.Intn(len(periods))] * time.Millisecond
	return QoS{
		P: pd,
		S: time.Duration(1 + rng.Int63n(int64(pd))),
		X: rng.Intn(2) == 0,
		L: time.Duration(rng.Int63n(int64(5 * time.Millisecond))),
	}
}

func (p *pair) run(rng *rand.Rand, ops int) {
	p.t.Helper()
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for p.step = 0; p.step < ops; p.step++ {
		switch op := rng.Intn(16); op {
		case 0, 1: // admit (often over capacity — errors must agree)
			name := names[rng.Intn(len(names))]
			q := randQoS(rng)
			hc, herr := p.heap.Admit(name, q, p.now)
			rc, rerr := p.ref.Admit(name, q, p.now)
			if (herr == nil) != (rerr == nil) {
				p.fatalf("admit %q: heap err %v, ref err %v", name, herr, rerr)
			}
			if herr != nil {
				if !errors.Is(herr, ErrOvercommitted) && !errors.Is(herr, ErrDuplicate) && !errors.Is(herr, ErrBadQoS) {
					p.fatalf("admit %q: unexpected error %v", name, herr)
				}
				if herr.Error() != rerr.Error() {
					p.fatalf("admit %q: error text heap %q ref %q", name, herr, rerr)
				}
				continue
			}
			if hc.name != rc.name {
				p.fatalf("admit returned %q vs %q", hc.name, rc.name)
			}
		case 2: // remove
			name := names[rng.Intn(len(names))]
			herr := p.heap.Remove(name)
			rerr := p.ref.Remove(name)
			if (herr == nil) != (rerr == nil) {
				p.fatalf("remove %q: heap err %v, ref err %v", name, herr, rerr)
			}
			delete(p.ready, name)
		case 3, 4: // charge, sometimes into overrun
			hc, rc := p.pickClient(rng)
			if hc == nil {
				continue
			}
			d := time.Duration(rng.Int63n(int64(2 * hc.qos.S)))
			p.heap.Charge(hc, d)
			p.ref.Charge(rc, d)
		case 5: // lax charge
			hc, rc := p.pickClient(rng)
			if hc == nil {
				continue
			}
			d := time.Duration(rng.Int63n(int64(2 * time.Millisecond)))
			p.heap.ChargeLax(hc, d)
			p.ref.ChargeLax(rc, d)
		case 6: // note work
			hc, rc := p.pickClient(rng)
			if hc == nil {
				continue
			}
			p.heap.NoteWork(hc)
			p.ref.NoteWork(rc)
		case 7: // park idle
			hc, rc := p.pickClient(rng)
			if hc == nil {
				continue
			}
			p.heap.Idle(hc)
			p.ref.Idle(rc)
		case 8: // readiness flip
			hc, _ := p.pickClient(rng)
			if hc == nil {
				continue
			}
			r := rng.Intn(2) == 0
			p.ready[hc.name] = r
			p.heap.SetReady(hc, r)
		case 9, 10: // refresh after a time step (occasionally a long gap)
			var dt time.Duration
			if rng.Intn(8) == 0 {
				dt = time.Duration(rng.Int63n(int64(500 * time.Millisecond)))
			} else {
				dt = time.Duration(rng.Int63n(int64(30 * time.Millisecond)))
			}
			p.now = p.now.Add(dt)
			hg := p.heap.Refresh(p.now)
			rg := p.ref.Refresh(p.now)
			if len(hg) != len(rg) {
				p.fatalf("refresh granted %d vs %d", len(hg), len(rg))
			}
			for i := range hg {
				if hg[i].name != rg[i].name {
					p.fatalf("refresh grant %d: %q vs %q", i, hg[i].name, rg[i].name)
				}
			}
		case 11: // EDF pick
			if got, want := cname(p.heap.PickEDF()), rname(p.ref.PickEDF()); got != want {
				p.fatalf("PickEDF: heap %q ref %q", got, want)
			}
		case 12: // predicated EDF pick (readiness as the predicate)
			got := cname(p.heap.PickEDFWith(func(c *Client) bool { return p.ready[c.name] }))
			want := rname(p.ref.PickEDFWith(func(c *ReferenceClient) bool { return p.ready[c.name] }))
			if got != want {
				p.fatalf("PickEDFWith(ready): heap %q ref %q", got, want)
			}
			if indexed := cname(p.heap.PickEDFReady()); indexed != want {
				p.fatalf("PickEDFReady: heap %q ref-pred %q", indexed, want)
			}
		case 13: // slack round-robin over the ready set (advances both cursors)
			got := cname(p.heap.PickSlackReady())
			want := rname(p.ref.PickSlack(func(c *ReferenceClient) bool { return p.ready[c.name] }))
			if got != want {
				p.fatalf("PickSlackReady: heap %q ref %q", got, want)
			}
			if p.heap.slackIdx != p.ref.slackIdx {
				p.fatalf("slack cursor: heap %d ref %d", p.heap.slackIdx, p.ref.slackIdx)
			}
		case 14: // generic slack pick with an unconditional predicate
			got := cname(p.heap.PickSlack(func(*Client) bool { return true }))
			want := rname(p.ref.PickSlack(func(*ReferenceClient) bool { return true }))
			if got != want {
				p.fatalf("PickSlack(true): heap %q ref %q", got, want)
			}
		case 15: // next period boundary
			hb, hok := p.heap.NextBoundary()
			rb, rok := p.ref.NextBoundary()
			if hok != rok || (hok && hb != rb) {
				p.fatalf("NextBoundary: heap %v,%v ref %v,%v", hb, hok, rb, rok)
			}
		}
		p.checkState()
	}
}

// TestHeapMatchesReference is the headline equivalence property: 1,200
// seeded random contract sets, each driven through ~150 operations on both
// implementations in lockstep.
func TestHeapMatchesReference(t *testing.T) {
	seqs := 1200
	if testing.Short() {
		seqs = 200
	}
	for seed := 0; seed < seqs; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		// A quarter of the sequences exercise a non-zero roll-over
		// threshold; it must be fixed before operations begin (see the
		// package comment on lazy invalidation).
		var minRemain time.Duration
		if seed%4 == 0 {
			minRemain = 100 * time.Microsecond
		}
		capacity := 1.0
		if seed%5 == 0 {
			capacity = 3.0 // roomy admission → bigger populations
		}
		p := newPair(t, int64(seed), capacity, minRemain)
		p.run(rng, 150)
	}
}

// TestHeapMatchesReferenceLargePopulation stresses the heaps with hundreds
// of concurrent clients per core (high capacity, rare removals).
func TestHeapMatchesReferenceLargePopulation(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		p := newPair(t, seed, 1e9, 0)
		// Admit a few hundred uniquely named clients into both cores.
		for i := 0; i < 300; i++ {
			name := fmt.Sprintf("d%d", i)
			q := randQoS(rng)
			if _, err := p.heap.Admit(name, q, p.now); err != nil {
				t.Fatalf("heap admit: %v", err)
			}
			if _, err := p.ref.Admit(name, q, p.now); err != nil {
				t.Fatalf("ref admit: %v", err)
			}
		}
		p.checkState()
		p.run(rng, 400)
	}
}
