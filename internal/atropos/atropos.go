// Package atropos implements the accounting core of the Atropos scheduling
// algorithm used throughout Nemesis (the paper applies it both to CPU time
// and — in the USD — to disk time). It is an earliest-deadline-first
// algorithm with implicit deadlines: each client holds a QoS tuple
// (p, s, x, l) and is periodically allocated s time units with a deadline of
// period-start + p. Time actually consumed (including "lax" time — see
// below) is charged against the allocation; a client whose remaining time is
// exhausted waits for its next periodic allocation.
//
// Two refinements from the paper:
//
//   - Laxity (l): a client with no pending work may remain on the runnable
//     queue for up to l of continuous idleness, charged as if it were
//     working. This fixes the "short-block" problem for clients — like
//     pagers — that cannot pipeline requests.
//
//   - Roll-over accounting: a client is allowed to finish a transaction it
//     started with a reasonable amount of time remaining; if the transaction
//     overruns, the negative balance counts against the next allocation, so
//     a client cannot deterministically exceed its guarantee.
//
// The package is pure accounting: it never blocks and never reads a clock.
// Drivers (internal/usd, internal/cpu) own the event loop and tell the core
// what happened and when.
package atropos

import (
	"errors"
	"fmt"
	"time"

	"nemesis/internal/sim"
)

// Errors returned by Core.
var (
	ErrOvercommitted = errors.New("atropos: admission would exceed capacity")
	ErrBadQoS        = errors.New("atropos: invalid QoS parameters")
	ErrDuplicate     = errors.New("atropos: client name already registered")
	ErrUnknown       = errors.New("atropos: unknown client")
)

// State is a client's scheduling state.
type State uint8

const (
	// Runnable clients compete for service under EDF.
	Runnable State = iota
	// Waiting clients have exhausted their slice and await their next
	// periodic allocation.
	Waiting
	// Idle clients exhausted their laxity with no work pending; they are
	// ignored until their next periodic allocation (paper §6.7).
	Idle
)

func (s State) String() string {
	switch s {
	case Runnable:
		return "runnable"
	case Waiting:
		return "waiting"
	case Idle:
		return "idle"
	default:
		return fmt.Sprintf("state(%d)", s)
	}
}

// QoS is the (p, s, x, l) tuple from the paper: the client may perform
// transactions totalling at most S within every P, X marks eligibility for
// slack time, and L is the laxity value.
type QoS struct {
	P time.Duration // period
	S time.Duration // slice
	X bool          // eligible for slack time
	L time.Duration // laxity
}

// Share returns S/P as a fraction of the resource.
func (q QoS) Share() float64 { return float64(q.S) / float64(q.P) }

func (q QoS) validate() error {
	if q.P <= 0 || q.S <= 0 || q.S > q.P || q.L < 0 {
		return fmt.Errorf("%w: p=%v s=%v l=%v", ErrBadQoS, q.P, q.S, q.L)
	}
	return nil
}

// Client is one contracted consumer of the resource.
type Client struct {
	name string
	qos  QoS

	state       State
	remain      time.Duration // time left in the current period; may go negative
	deadline    sim.Time      // end of current period == next allocation instant
	periodStart sim.Time
	laxSpan     time.Duration // continuous workless time charged so far
	allocations int64         // periodic allocations granted
	charged     time.Duration // total time charged (work + lax)
	laxCharged  time.Duration // total lax time charged
}

// Name returns the client's registration name.
func (c *Client) Name() string { return c.name }

// QoS returns the client's contract.
func (c *Client) QoS() QoS { return c.qos }

// State returns the scheduling state.
func (c *Client) State() State { return c.state }

// Remain returns the unconsumed allocation for the current period.
func (c *Client) Remain() time.Duration { return c.remain }

// Deadline returns the end of the client's current period.
func (c *Client) Deadline() sim.Time { return c.deadline }

// LaxBudget returns how much longer the client may stay runnable without
// pending work before being marked idle.
func (c *Client) LaxBudget() time.Duration {
	if b := c.qos.L - c.laxSpan; b > 0 {
		return b
	}
	return 0
}

// Allocations returns the number of periodic allocations granted so far.
func (c *Client) Allocations() int64 { return c.allocations }

// Charged returns total time charged to the client (work plus lax).
func (c *Client) Charged() time.Duration { return c.charged }

// LaxCharged returns total lax time charged to the client.
func (c *Client) LaxCharged() time.Duration { return c.laxCharged }

// Core tracks a set of clients sharing one resource.
type Core struct {
	clients  []*Client
	capacity float64 // admissible sum of S/P, normally 1.0
	slackIdx int     // round-robin cursor for slack distribution
	// MinRemain is the "reasonable amount of time remaining" threshold of
	// the roll-over scheme: a client may start a transaction while
	// remain > MinRemain, even if the transaction may overrun. Zero means
	// any positive remainder suffices (pure roll-over as described in the
	// paper's experiments).
	MinRemain time.Duration
}

// NewCore returns a Core admitting contracts totalling at most capacity
// (1.0 = the whole resource).
func NewCore(capacity float64) *Core {
	if capacity <= 0 {
		capacity = 1.0
	}
	return &Core{capacity: capacity}
}

// Contracted returns the sum of admitted shares.
func (co *Core) Contracted() float64 {
	total := 0.0
	for _, c := range co.clients {
		total += c.qos.Share()
	}
	return total
}

// Clients returns the registered clients in admission order.
func (co *Core) Clients() []*Client { return co.clients }

// Lookup returns the client with the given name, or nil.
func (co *Core) Lookup(name string) *Client {
	for _, c := range co.clients {
		if c.name == name {
			return c
		}
	}
	return nil
}

// Admit registers a client with the given contract, starting its first
// period at now. Admission fails if the aggregate share would exceed
// capacity (the same admission test the frames allocator applies to
// guaranteed frames).
func (co *Core) Admit(name string, q QoS, now sim.Time) (*Client, error) {
	if err := q.validate(); err != nil {
		return nil, err
	}
	if co.Lookup(name) != nil {
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	if co.Contracted()+q.Share() > co.capacity+1e-9 {
		return nil, fmt.Errorf("%w: %.3f + %.3f > %.3f", ErrOvercommitted, co.Contracted(), q.Share(), co.capacity)
	}
	c := &Client{
		name:        name,
		qos:         q,
		state:       Runnable,
		remain:      q.S,
		periodStart: now,
		deadline:    now.Add(q.P),
		allocations: 1,
	}
	co.clients = append(co.clients, c)
	return c, nil
}

// Remove deregisters a client.
func (co *Core) Remove(name string) error {
	for i, c := range co.clients {
		if c.name == name {
			co.clients = append(co.clients[:i], co.clients[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("%w: %q", ErrUnknown, name)
}

// Refresh grants periodic allocations to every client whose deadline has
// arrived, returning the clients that received one (in admission order).
// Unused positive balance does not accumulate; negative balance (roll-over)
// counts against the new slice.
func (co *Core) Refresh(now sim.Time) []*Client {
	var granted []*Client
	for _, c := range co.clients {
		if c.deadline > now {
			continue
		}
		// Catch up period boundaries without stacking slices.
		for c.deadline <= now {
			c.periodStart = c.deadline
			c.deadline = c.deadline.Add(c.qos.P)
		}
		carry := time.Duration(0)
		if c.remain < 0 {
			carry = c.remain
		}
		c.remain = c.qos.S + carry
		c.laxSpan = 0
		c.allocations++
		if c.state == Waiting || c.state == Idle {
			c.state = Runnable
		}
		granted = append(granted, c)
	}
	return granted
}

// runnable reports whether c may be given service now.
func (co *Core) runnable(c *Client) bool {
	return c.state == Runnable && c.remain > co.MinRemain
}

// PickEDF returns the runnable client with the earliest deadline, or nil.
// Ties break by admission order, which is deterministic.
func (co *Core) PickEDF() *Client {
	var best *Client
	for _, c := range co.clients {
		if !co.runnable(c) {
			continue
		}
		if best == nil || c.deadline < best.deadline {
			best = c
		}
	}
	return best
}

// PickEDFWith returns the earliest-deadline runnable client satisfying pred.
func (co *Core) PickEDFWith(pred func(*Client) bool) *Client {
	var best *Client
	for _, c := range co.clients {
		if !co.runnable(c) || !pred(c) {
			continue
		}
		if best == nil || c.deadline < best.deadline {
			best = c
		}
	}
	return best
}

// PickSlack returns the next slack-eligible (x=true) client satisfying pred,
// distributing slack round-robin regardless of remaining allocation. Clients
// in any state may receive slack except those the driver filters out.
func (co *Core) PickSlack(pred func(*Client) bool) *Client {
	n := len(co.clients)
	for i := 0; i < n; i++ {
		c := co.clients[(co.slackIdx+i)%n]
		if c.qos.X && pred(c) {
			co.slackIdx = (co.slackIdx + i + 1) % n
			return c
		}
	}
	return nil
}

// Charge debits d of real service time from c. If the balance reaches zero
// or below (a roll-over overrun), the client waits for its next allocation.
func (co *Core) Charge(c *Client, d time.Duration) {
	c.remain -= d
	c.charged += d
	c.laxSpan = 0
	if c.remain <= 0 {
		c.state = Waiting
	}
}

// ChargeLax debits d of lax (workless runnable) time from c. Exhausting the
// slice sends the client to Waiting; exhausting the laxity with slice
// remaining parks it Idle until the next allocation.
func (co *Core) ChargeLax(c *Client, d time.Duration) {
	c.remain -= d
	c.charged += d
	c.laxCharged += d
	c.laxSpan += d
	switch {
	case c.remain <= 0:
		c.state = Waiting
	case c.laxSpan >= c.qos.L:
		c.state = Idle
	}
}

// NoteWork resets c's continuous lax span: pending work has arrived. An Idle
// client stays idle (the paper ignores it until its next allocation).
func (co *Core) NoteWork(c *Client) { c.laxSpan = 0 }

// Idle parks a runnable client until its next allocation without charging
// it — the behaviour of the early USD scheduler the paper describes, used
// when the laxity mechanism is disabled.
func (co *Core) Idle(c *Client) {
	if c.state == Runnable {
		c.state = Idle
	}
}

// NextBoundary returns the earliest deadline over all clients — the next
// instant at which Refresh will grant an allocation — or ok=false if there
// are no clients.
func (co *Core) NextBoundary() (sim.Time, bool) {
	var best sim.Time
	found := false
	for _, c := range co.clients {
		if !found || c.deadline < best {
			best = c.deadline
			found = true
		}
	}
	return best, found
}
