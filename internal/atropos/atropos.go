// Package atropos implements the accounting core of the Atropos scheduling
// algorithm used throughout Nemesis (the paper applies it both to CPU time
// and — in the USD — to disk time). It is an earliest-deadline-first
// algorithm with implicit deadlines: each client holds a QoS tuple
// (p, s, x, l) and is periodically allocated s time units with a deadline of
// period-start + p. Time actually consumed (including "lax" time — see
// below) is charged against the allocation; a client whose remaining time is
// exhausted waits for its next periodic allocation.
//
// Two refinements from the paper:
//
//   - Laxity (l): a client with no pending work may remain on the runnable
//     queue for up to l of continuous idleness, charged as if it were
//     working. This fixes the "short-block" problem for clients — like
//     pagers — that cannot pipeline requests.
//
//   - Roll-over accounting: a client is allowed to finish a transaction it
//     started with a reasonable amount of time remaining; if the transaction
//     overruns, the negative balance counts against the next allocation, so
//     a client cannot deterministically exceed its guarantee.
//
// The package is pure accounting: it never blocks and never reads a clock.
// Drivers (internal/usd, internal/cpu) own the event loop and tell the core
// what happened and when.
//
// # Indexed core
//
// The core scales to thousands of clients: picks and refreshes run off
// (deadline, admission) min-heaps instead of scanning the client slice.
// Heap entries are invalidated lazily — a state change never touches the
// heaps; stale entries are recognised and dropped when they surface at the
// top. Dropping is safe because, within one deadline epoch, eligibility only
// ever decreases: remain only shrinks outside Refresh, removal is permanent,
// and Refresh — the sole operation that restores a client — always advances
// its deadline and pushes a fresh entry. One consequence: MinRemain must be
// configured before the core starts operating (lowering it mid-flight could
// resurrect entries that were already dropped).
//
// Drivers that track work availability per client (internal/cpu) should
// mirror it through SetReady and pick via PickEDFReady/PickSlackReady, which
// consider only ready clients; the generic PickEDFWith/PickSlack remain for
// drivers with few clients (internal/usd).
//
// ReferenceCore (reference.go) retains the original linear implementation;
// the package tests co-run both over seeded random contract sets to pin the
// decisions of this implementation to the reference, operation by operation.
package atropos

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"nemesis/internal/sim"
)

// Errors returned by Core.
var (
	ErrOvercommitted = errors.New("atropos: admission would exceed capacity")
	ErrBadQoS        = errors.New("atropos: invalid QoS parameters")
	ErrDuplicate     = errors.New("atropos: client name already registered")
	ErrUnknown       = errors.New("atropos: unknown client")
)

// State is a client's scheduling state.
type State uint8

const (
	// Runnable clients compete for service under EDF.
	Runnable State = iota
	// Waiting clients have exhausted their slice and await their next
	// periodic allocation.
	Waiting
	// Idle clients exhausted their laxity with no work pending; they are
	// ignored until their next periodic allocation (paper §6.7).
	Idle
)

func (s State) String() string {
	switch s {
	case Runnable:
		return "runnable"
	case Waiting:
		return "waiting"
	case Idle:
		return "idle"
	default:
		return fmt.Sprintf("state(%d)", s)
	}
}

// QoS is the (p, s, x, l) tuple from the paper: the client may perform
// transactions totalling at most S within every P, X marks eligibility for
// slack time, and L is the laxity value.
type QoS struct {
	P time.Duration // period
	S time.Duration // slice
	X bool          // eligible for slack time
	L time.Duration // laxity
}

// Share returns S/P as a fraction of the resource.
func (q QoS) Share() float64 { return float64(q.S) / float64(q.P) }

func (q QoS) validate() error {
	if q.P <= 0 || q.S <= 0 || q.S > q.P || q.L < 0 {
		return fmt.Errorf("%w: p=%v s=%v l=%v", ErrBadQoS, q.P, q.S, q.L)
	}
	return nil
}

// Client is one contracted consumer of the resource.
type Client struct {
	name string
	qos  QoS

	state       State
	remain      time.Duration // time left in the current period; may go negative
	deadline    sim.Time      // end of current period == next allocation instant
	periodStart sim.Time
	laxSpan     time.Duration // continuous workless time charged so far
	allocations int64         // periodic allocations granted
	charged     time.Duration // total time charged (work + lax)
	laxCharged  time.Duration // total lax time charged

	// Index bookkeeping (owned by Core).
	seq      uint64 // admission sequence number; EDF tie-break key
	idx      int    // position in Core.clients (slack round-robin order)
	removed  bool   // invalidates any heap entries still referencing c
	ready    bool   // driver-reported work availability (SetReady)
	readyGen uint32 // bumped on every readiness flip; invalidates readyq entries
	readyPos int    // position in Core.readyList, -1 when not ready
}

// Name returns the client's registration name.
func (c *Client) Name() string { return c.name }

// QoS returns the client's contract.
func (c *Client) QoS() QoS { return c.qos }

// State returns the scheduling state.
func (c *Client) State() State { return c.state }

// Remain returns the unconsumed allocation for the current period.
func (c *Client) Remain() time.Duration { return c.remain }

// Deadline returns the end of the client's current period.
func (c *Client) Deadline() sim.Time { return c.deadline }

// LaxBudget returns how much longer the client may stay runnable without
// pending work before being marked idle.
func (c *Client) LaxBudget() time.Duration {
	if b := c.qos.L - c.laxSpan; b > 0 {
		return b
	}
	return 0
}

// Allocations returns the number of periodic allocations granted so far.
func (c *Client) Allocations() int64 { return c.allocations }

// Charged returns total time charged to the client (work plus lax).
func (c *Client) Charged() time.Duration { return c.charged }

// LaxCharged returns total lax time charged to the client.
func (c *Client) LaxCharged() time.Duration { return c.laxCharged }

// qentry is a lazily-invalidated heap entry. An entry speaks for its client
// only while the client still matches the snapshot taken at push time: the
// deadline must be unchanged (Refresh advances it and pushes a replacement)
// and, for readyq entries, the readiness generation must match.
type qentry struct {
	deadline sim.Time
	seq      uint64
	gen      uint32 // readiness generation (readyq entries only)
	c        *Client
}

// entryHeap is a binary min-heap ordered by (deadline, admission sequence) —
// the same total order the linear scans realise via strict-< with
// admission-order iteration.
type entryHeap []qentry

func entryLess(a, b qentry) bool {
	if a.deadline != b.deadline {
		return a.deadline < b.deadline
	}
	return a.seq < b.seq
}

func (h *entryHeap) push(e qentry) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(q[i], q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *entryHeap) pop() qentry {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = qentry{}
	q = q[:n]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && entryLess(q[l], q[min]) {
			min = l
		}
		if r < n && entryLess(q[r], q[min]) {
			min = r
		}
		if min == i {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}

// Core tracks a set of clients sharing one resource.
type Core struct {
	clients    []*Client
	byName     map[string]*Client
	capacity   float64 // admissible sum of S/P, normally 1.0
	contracted float64 // running sum of admitted shares
	slackIdx   int     // round-robin cursor for slack distribution
	nextSeq    uint64

	runq      entryHeap // runnable clients by (deadline, seq); lazy
	relq      entryHeap // one release-time entry per live client; lazy
	readyq    entryHeap // ready ∧ runnable clients by (deadline, seq); lazy
	readyList []*Client // unordered set of ready clients (PickSlackReady)
	scratch   []qentry  // PickEDFWith spill buffer, reused across calls

	// MinRemain is the "reasonable amount of time remaining" threshold of
	// the roll-over scheme: a client may start a transaction while
	// remain > MinRemain, even if the transaction may overrun. Zero means
	// any positive remainder suffices (pure roll-over as described in the
	// paper's experiments). Configure before the first Admit; see the
	// package comment on lazy invalidation.
	MinRemain time.Duration
}

// NewCore returns a Core admitting contracts totalling at most capacity
// (1.0 = the whole resource).
func NewCore(capacity float64) *Core {
	if capacity <= 0 {
		capacity = 1.0
	}
	return &Core{capacity: capacity, byName: make(map[string]*Client)}
}

// Contracted returns the sum of admitted shares.
func (co *Core) Contracted() float64 { return co.contracted }

// recontract recomputes the admitted-share sum by the same left fold the
// linear implementation used, keeping the float result bit-identical.
func (co *Core) recontract() {
	total := 0.0
	for _, c := range co.clients {
		total += c.qos.Share()
	}
	co.contracted = total
}

// Clients returns the registered clients in admission order.
func (co *Core) Clients() []*Client { return co.clients }

// Lookup returns the client with the given name, or nil.
func (co *Core) Lookup(name string) *Client { return co.byName[name] }

// Admit registers a client with the given contract, starting its first
// period at now. Admission fails if the aggregate share would exceed
// capacity (the same admission test the frames allocator applies to
// guaranteed frames).
func (co *Core) Admit(name string, q QoS, now sim.Time) (*Client, error) {
	if err := q.validate(); err != nil {
		return nil, err
	}
	if co.Lookup(name) != nil {
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	if co.contracted+q.Share() > co.capacity+1e-9 {
		return nil, fmt.Errorf("%w: %.3f + %.3f > %.3f", ErrOvercommitted, co.contracted, q.Share(), co.capacity)
	}
	c := &Client{
		name:        name,
		qos:         q,
		state:       Runnable,
		remain:      q.S,
		periodStart: now,
		deadline:    now.Add(q.P),
		allocations: 1,
		seq:         co.nextSeq,
		idx:         len(co.clients),
		readyPos:    -1,
	}
	co.nextSeq++
	co.clients = append(co.clients, c)
	co.byName[name] = c
	co.contracted += q.Share()
	co.relq.push(qentry{deadline: c.deadline, seq: c.seq, c: c})
	if co.runnable(c) {
		co.runq.push(qentry{deadline: c.deadline, seq: c.seq, c: c})
	}
	return c, nil
}

// Remove deregisters a client. Heap entries referencing it go stale and are
// dropped lazily.
func (co *Core) Remove(name string) error {
	c := co.byName[name]
	if c == nil {
		return fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	c.removed = true
	delete(co.byName, name)
	i := c.idx
	co.clients = append(co.clients[:i], co.clients[i+1:]...)
	for ; i < len(co.clients); i++ {
		co.clients[i].idx = i
	}
	if c.readyPos >= 0 {
		co.readyRemove(c)
	}
	co.recontract()
	return nil
}

// Refresh grants periodic allocations to every client whose deadline has
// arrived, returning the clients that received one (in admission order).
// Unused positive balance does not accumulate; negative balance (roll-over)
// counts against the new slice.
func (co *Core) Refresh(now sim.Time) []*Client {
	var granted []*Client
	for len(co.relq) > 0 {
		e := &co.relq[0]
		c := e.c
		if c.removed || c.deadline != e.deadline {
			co.relq.pop()
			continue
		}
		if e.deadline > now {
			break
		}
		co.relq.pop()
		// Catch up period boundaries without stacking slices.
		for c.deadline <= now {
			c.periodStart = c.deadline
			c.deadline = c.deadline.Add(c.qos.P)
		}
		carry := time.Duration(0)
		if c.remain < 0 {
			carry = c.remain
		}
		c.remain = c.qos.S + carry
		c.laxSpan = 0
		c.allocations++
		if c.state == Waiting || c.state == Idle {
			c.state = Runnable
		}
		co.relq.push(qentry{deadline: c.deadline, seq: c.seq, c: c})
		if co.runnable(c) {
			co.runq.push(qentry{deadline: c.deadline, seq: c.seq, c: c})
			if c.ready {
				co.readyq.push(qentry{deadline: c.deadline, seq: c.seq, gen: c.readyGen, c: c})
			}
		}
		granted = append(granted, c)
	}
	if len(granted) > 1 {
		// The heap yields (deadline, seq) order; the contract is admission
		// order. Deadlines mostly coincide, so this is a near-no-op sort.
		sort.Slice(granted, func(i, j int) bool { return granted[i].seq < granted[j].seq })
	}
	return granted
}

// runnable reports whether c may be given service now.
func (co *Core) runnable(c *Client) bool {
	return c.state == Runnable && c.remain > co.MinRemain
}

// runValid reports whether a runq/readyq entry still speaks for a
// currently-eligible client.
func (co *Core) runValid(e *qentry) bool {
	c := e.c
	return !c.removed && c.deadline == e.deadline && co.runnable(c)
}

// PickEDF returns the runnable client with the earliest deadline, or nil.
// Ties break by admission order, which is deterministic.
func (co *Core) PickEDF() *Client {
	for len(co.runq) > 0 {
		e := &co.runq[0]
		if co.runValid(e) {
			return e.c
		}
		co.runq.pop()
	}
	return nil
}

// PickEDFWith returns the earliest-deadline runnable client satisfying pred.
// Entries failing only pred are kept (pred may pass on a later call); stale
// entries are dropped. Cost grows with the number of runnable clients pred
// rejects — drivers with many clients should maintain readiness through
// SetReady and use PickEDFReady instead.
func (co *Core) PickEDFWith(pred func(*Client) bool) *Client {
	co.scratch = co.scratch[:0]
	var pick *Client
	for len(co.runq) > 0 {
		e := &co.runq[0]
		if !co.runValid(e) {
			co.runq.pop()
			continue
		}
		if pred(e.c) {
			pick = e.c
			break
		}
		co.scratch = append(co.scratch, co.runq.pop())
	}
	for _, e := range co.scratch {
		co.runq.push(e)
	}
	return pick
}

// SetReady records whether the driver has work queued for c. Readiness feeds
// PickEDFReady and PickSlackReady; it is the indexed replacement for passing
// a has-work predicate to every pick.
func (co *Core) SetReady(c *Client, ready bool) {
	if c.ready == ready || c.removed {
		return
	}
	c.ready = ready
	c.readyGen++
	if ready {
		c.readyPos = len(co.readyList)
		co.readyList = append(co.readyList, c)
		if co.runnable(c) {
			co.readyq.push(qentry{deadline: c.deadline, seq: c.seq, gen: c.readyGen, c: c})
		}
		return
	}
	co.readyRemove(c)
}

// readyRemove drops c from the unordered ready list by swap-delete.
func (co *Core) readyRemove(c *Client) {
	last := len(co.readyList) - 1
	moved := co.readyList[last]
	co.readyList[c.readyPos] = moved
	moved.readyPos = c.readyPos
	co.readyList[last] = nil
	co.readyList = co.readyList[:last]
	c.readyPos = -1
}

// PickEDFReady returns the earliest-deadline runnable client marked ready,
// equivalent to PickEDFWith with a ready predicate but O(log n).
func (co *Core) PickEDFReady() *Client {
	for len(co.readyq) > 0 {
		e := &co.readyq[0]
		if co.runValid(e) && e.c.ready && e.c.readyGen == e.gen {
			return e.c
		}
		co.readyq.pop()
	}
	return nil
}

// PickSlack returns the next slack-eligible (x=true) client satisfying pred,
// distributing slack round-robin regardless of remaining allocation. Clients
// in any state may receive slack except those the driver filters out.
func (co *Core) PickSlack(pred func(*Client) bool) *Client {
	n := len(co.clients)
	for i := 0; i < n; i++ {
		c := co.clients[(co.slackIdx+i)%n]
		if c.qos.X && pred(c) {
			co.slackIdx = (co.slackIdx + i + 1) % n
			return c
		}
	}
	return nil
}

// PickSlackReady is PickSlack with a ready predicate, scanning only the
// ready set: it returns the slack-eligible ready client closest after the
// round-robin cursor and advances the cursor past it — exactly the client
// the linear scan would have stopped at.
func (co *Core) PickSlackReady() *Client {
	n := len(co.clients)
	if n == 0 {
		return nil
	}
	var best *Client
	bestDist := n
	for _, c := range co.readyList {
		if !c.qos.X {
			continue
		}
		d := (c.idx - co.slackIdx) % n
		if d < 0 {
			d += n
		}
		if d < bestDist {
			bestDist = d
			best = c
		}
	}
	if best == nil {
		return nil
	}
	co.slackIdx = (best.idx + 1) % n
	return best
}

// Charge debits d of real service time from c. If the balance reaches zero
// or below (a roll-over overrun), the client waits for its next allocation.
func (co *Core) Charge(c *Client, d time.Duration) {
	c.remain -= d
	c.charged += d
	c.laxSpan = 0
	if c.remain <= 0 {
		c.state = Waiting
	}
}

// ChargeLax debits d of lax (workless runnable) time from c. Exhausting the
// slice sends the client to Waiting; exhausting the laxity with slice
// remaining parks it Idle until the next allocation.
func (co *Core) ChargeLax(c *Client, d time.Duration) {
	c.remain -= d
	c.charged += d
	c.laxCharged += d
	c.laxSpan += d
	switch {
	case c.remain <= 0:
		c.state = Waiting
	case c.laxSpan >= c.qos.L:
		c.state = Idle
	}
}

// NoteWork resets c's continuous lax span: pending work has arrived. An Idle
// client stays idle (the paper ignores it until its next allocation).
func (co *Core) NoteWork(c *Client) { c.laxSpan = 0 }

// Idle parks a runnable client until its next allocation without charging
// it — the behaviour of the early USD scheduler the paper describes, used
// when the laxity mechanism is disabled.
func (co *Core) Idle(c *Client) {
	if c.state == Runnable {
		c.state = Idle
	}
}

// NextBoundary returns the earliest deadline over all clients — the next
// instant at which Refresh will grant an allocation — or ok=false if there
// are no clients.
func (co *Core) NextBoundary() (sim.Time, bool) {
	for len(co.relq) > 0 {
		e := &co.relq[0]
		if !e.c.removed && e.c.deadline == e.deadline {
			return e.deadline, true
		}
		co.relq.pop()
	}
	return 0, false
}
