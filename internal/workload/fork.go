package workload

import (
	"fmt"

	"nemesis/internal/core"
	"nemesis/internal/domain"
	"nemesis/internal/mem"
	"nemesis/internal/stretchdrv"
	"nemesis/internal/trace"
	"nemesis/internal/vm"
)

// WarmPager is StartPager's forkable counterpart: it creates the same
// domain, stretch and driver, and runs the same initialisation passes
// (demand-zero read, dirtying write) — but in a thread that EXITS when the
// warm-up completes instead of rolling straight into the steady-state loop.
// Once every warm thread has finished the world is quiesced and can be
// checkpointed with core.System.Fork; Resume attaches the steady-state
// threads afterwards, on the warmed world itself or on any fork of it.
func WarmPager(sys *core.System, cfg PagerConfig, series *trace.Series) (*Pager, error) {
	dom, err := sys.NewDomain(cfg.Name, cfg.CPUQoS, mem.Contract{Guaranteed: uint64(cfg.PhysFrames)})
	if err != nil {
		return nil, err
	}
	wb := cfg.Writeback
	if wb == "" && cfg.Forgetful {
		wb = stretchdrv.WritebackForgetful
	}
	st, gdrv, err := sys.NewStretch(dom, core.PagerSpec{
		Kind:        core.KindPaged,
		Size:        cfg.VirtBytes,
		SwapBytes:   cfg.SwapBytes,
		DiskQoS:     cfg.DiskQoS,
		Policy:      cfg.Policy,
		Writeback:   wb,
		ClusterSize: cfg.ClusterSize,
		Backing:     cfg.Backing,
		Remote:      cfg.Remote,
		Tiered:      cfg.Tiered,
	})
	if err != nil {
		return nil, err
	}
	pg := &Pager{Cfg: cfg, Dom: dom, Stretch: st, Drv: gdrv.(*stretchdrv.Paged), Series: series}

	dom.Go("warm", func(t *domain.Thread) {
		if err := core.PreallocateFrames(t, cfg.PhysFrames); err != nil {
			return
		}
		if !cfg.SkipInit {
			n := int(cfg.VirtBytes)
			if err := t.Touch(st.Base(), n, vm.AccessRead); err != nil {
				return
			}
			if err := t.Touch(st.Base(), n, vm.AccessWrite); err != nil {
				return
			}
		}
		pg.Initialised = true
		pg.lastAt = t.Now()
	})
	return pg, nil
}

// Remap returns a copy of a warmed pager re-pointed at its forked twins via
// the snapshot's identity maps. The copy carries the warm-up's progress
// counters; call Resume on it to start the steady-state threads in the
// forked world.
func (pg *Pager) Remap(snap *core.Snapshot) (*Pager, error) {
	ndom := snap.Dom[pg.Dom]
	nst := snap.Stretch[pg.Stretch]
	ndrv, _ := snap.Driver[pg.Drv].(*stretchdrv.Paged)
	if ndom == nil || nst == nil || ndrv == nil {
		return nil, fmt.Errorf("workload: snapshot has no twin for pager %q", pg.Cfg.Name)
	}
	np := *pg
	np.Dom, np.Stretch, np.Drv = ndom, nst, ndrv
	return &np, nil
}

// Resume attaches the steady-state main and watch threads to a warmed
// (possibly just-forked) pager. The main loop starts at the top of the
// stretch, exactly where StartPager's would be after its initialisation; the
// frames the warm thread preallocated still belong to the domain, so the
// loop recycles them rather than allocating again.
func (pg *Pager) Resume() {
	cfg, st := pg.Cfg, pg.Stretch
	acc := vm.AccessRead
	if cfg.Write {
		acc = vm.AccessWrite
	}
	n := int(cfg.VirtBytes)
	pg.Dom.Go("main", func(t *domain.Thread) {
		pg.lastBytes = pg.Bytes
		pg.lastAt = t.Now()
		for {
			for off := 0; off < n; off += vm.PageSize {
				if err := t.Touch(st.Base()+vm.VA(off), vm.PageSize, acc); err != nil {
					return
				}
				pg.Bytes += int64(vm.PageSize)
			}
		}
	})
	pg.Dom.Go("watch", func(t *domain.Thread) {
		for {
			t.Sleep(cfg.SampleEvery)
			pg.sample(t.Now())
		}
	})
}
