package workload

import (
	"testing"
	"time"

	"nemesis/internal/atropos"
	"nemesis/internal/core"
	"nemesis/internal/trace"
	"nemesis/internal/usd"
	"nemesis/internal/vm"
)

func smallSys() *core.System {
	cfg := core.DefaultConfig()
	cfg.MemoryFrames = 1024
	return core.New(cfg)
}

func TestDefaultPagerConfig(t *testing.T) {
	pc := DefaultPagerConfig("x", 25*time.Millisecond)
	if pc.Name != "x" || pc.DiskQoS.S != 25*time.Millisecond || pc.DiskQoS.P != 250*time.Millisecond {
		t.Fatalf("cfg = %+v", pc)
	}
	if pc.PhysFrames != 2 || pc.VirtBytes != 4<<20 || pc.SwapBytes != 16<<20 {
		t.Fatalf("paper parameters wrong: %+v", pc)
	}
	if pc.DiskQoS.L != 10*time.Millisecond || pc.DiskQoS.X {
		t.Fatalf("QoS = %+v", pc.DiskQoS)
	}
}

func TestPagerInitialisesAndLoops(t *testing.T) {
	sys := smallSys()
	pc := DefaultPagerConfig("app", 100*time.Millisecond)
	pc.VirtBytes = 64 * vm.PageSize // small for test speed
	pc.SampleEvery = time.Second
	var set trace.SeriesSet
	pg, err := StartPager(sys, pc, set.New("app"))
	if err != nil {
		t.Fatal(err)
	}
	// Run until initialised plus a few sampling periods.
	for i := 0; i < 120 && !pg.Initialised; i++ {
		sys.Run(time.Second)
	}
	if !pg.Initialised {
		t.Fatal("pager never initialised")
	}
	sys.Run(5 * time.Second)
	if pg.Bytes <= 0 {
		t.Fatal("no progress after init")
	}
	if len(set.Get("app").Points) == 0 {
		t.Fatal("watch thread produced no samples")
	}
	// Samples are plausible bandwidths (positive, below disk media rate).
	for _, p := range set.Get("app").Points {
		if p.Value < 0 || p.Value > 50 {
			t.Fatalf("sample %v implausible", p)
		}
	}
	// The driver paged: a 64-page stretch over 2 frames must evict.
	if pg.Drv.Stats.Evictions == 0 || pg.Drv.Stats.PageIns == 0 {
		t.Fatalf("driver stats = %+v", pg.Drv.Stats)
	}
	sys.Shutdown()
}

func TestPagerSkipInit(t *testing.T) {
	sys := smallSys()
	pc := DefaultPagerConfig("app", 100*time.Millisecond)
	pc.VirtBytes = 32 * vm.PageSize
	pc.SkipInit = true
	pg, err := StartPager(sys, pc, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(100 * time.Millisecond)
	if !pg.Initialised {
		t.Fatal("SkipInit pager not immediately initialised")
	}
	sys.Run(5 * time.Second)
	if pg.Bytes == 0 {
		t.Fatal("no progress")
	}
	// Nil series must be safe.
	pg.sample(sys.Sim.Now())
	sys.Shutdown()
}

func TestForgetfulPagerWriteLoop(t *testing.T) {
	sys := smallSys()
	pc := DefaultPagerConfig("w", 100*time.Millisecond)
	pc.VirtBytes = 32 * vm.PageSize
	pc.Write = true
	pc.Forgetful = true
	pc.SkipInit = true
	pg, err := StartPager(sys, pc, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(10 * time.Second)
	if pg.Drv.Stats.PageIns != 0 {
		t.Fatalf("forgetful pager paged in %d", pg.Drv.Stats.PageIns)
	}
	if pg.Drv.Stats.PageOuts == 0 {
		t.Fatal("no page-outs")
	}
	sys.Shutdown()
}

func TestFSClientStreams(t *testing.T) {
	sys := smallSys()
	part := usd.Extent{Start: 0, Count: sys.Disk.Geom.TotalBlocks / 4}
	fcfg := DefaultFSClientConfig("fs", part)
	fcfg.SampleEvery = time.Second
	var set trace.SeriesSet
	fc, err := StartFSClient(sys, fcfg, set.New("fs"))
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(10 * time.Second)
	if fc.Bytes == 0 {
		t.Fatal("FS client made no progress")
	}
	// 50% guarantee over ~2ms transactions: order of 2 MB/s.
	mbps := set.Get("fs").Mean()
	if mbps < 8 || mbps > 40 {
		t.Fatalf("FS bandwidth %.2f Mbit/s outside plausible range", mbps)
	}
	// Pipelined clients accrue (almost) no lax time.
	st, _ := sys.USD.Stats("fs")
	if st.LaxCharged > 50*time.Millisecond {
		t.Fatalf("pipelined client charged %v lax", st.LaxCharged)
	}
	fc.Stop()
	sys.Run(2 * time.Second)
	b := fc.Bytes
	sys.Run(2 * time.Second)
	if fc.Bytes != b {
		t.Fatal("client kept running after Stop")
	}
	sys.Shutdown()
}

func TestFSClientBadQoSRejected(t *testing.T) {
	sys := smallSys()
	part := usd.Extent{Start: 0, Count: 1000}
	fcfg := DefaultFSClientConfig("fs", part)
	fcfg.DiskQoS = atropos.QoS{P: 100 * time.Millisecond, S: 200 * time.Millisecond}
	if _, err := StartFSClient(sys, fcfg, nil); err == nil {
		t.Fatal("invalid QoS accepted")
	}
	sys.Shutdown()
}

func TestPagerString(t *testing.T) {
	pg := &Pager{Cfg: PagerConfig{Name: "n"}, Bytes: 42}
	if pg.String() != "n: 42 bytes" {
		t.Fatalf("String = %q", pg.String())
	}
}
