// Package workload implements the applications of the paper's evaluation:
// the paging test application (§7.2 — a tiny physical allocation, a large
// virtual stretch, sequential byte access with a watch thread logging
// progress every 5 seconds) and the pipelined file-system client of the
// isolation experiment (Fig. 9).
package workload

import (
	"fmt"
	"time"

	"nemesis/internal/atropos"
	"nemesis/internal/core"
	"nemesis/internal/disk"
	"nemesis/internal/domain"
	"nemesis/internal/mem"
	"nemesis/internal/netswap"
	"nemesis/internal/sim"
	"nemesis/internal/stretchdrv"
	"nemesis/internal/trace"
	"nemesis/internal/usd"
	"nemesis/internal/vm"
)

// PagerConfig describes one paging test application.
type PagerConfig struct {
	Name string
	// CPUQoS is the domain's processor contract.
	CPUQoS atropos.QoS
	// DiskQoS is the domain's USD contract for its swap file.
	DiskQoS atropos.QoS
	// PhysFrames is the guaranteed physical allocation (the paper uses 2
	// frames = 16 KB).
	PhysFrames int
	// VirtBytes is the stretch size (paper: 4 MB).
	VirtBytes uint64
	// SwapBytes is the swap file size (paper: 16 MB).
	SwapBytes int64
	// Write makes the main loop write every byte instead of reading
	// (the page-out experiment).
	Write bool
	// Forgetful installs the modified stretch driver that never pages in
	// (shorthand for Writeback = stretchdrv.WritebackForgetful).
	Forgetful bool
	// Policy selects the replacement policy ("" = FIFO).
	Policy stretchdrv.PolicyKind
	// Writeback selects the writeback policy ("" = demand, unless
	// Forgetful is set).
	Writeback stretchdrv.WritebackKind
	// ClusterSize caps how many dirty pages one eviction cleans in a
	// single batch (<= 1 disables write clustering).
	ClusterSize int
	// Backing selects where the pager cleans to: the local swap file
	// (default), the remote swap server, or the tiered composition.
	Backing core.BackingKind
	// Remote overrides the netswap fabric's default RPC options for this
	// pager's client (nil = fabric defaults; only used with a remote or
	// tiered backing).
	Remote *netswap.RemoteOptions
	// Tiered overrides the fabric's default tiering options (nil =
	// fabric defaults; only used with a tiered backing).
	Tiered *netswap.TieredOptions
	// SkipInit skips the initialisation passes (demand-zero read and
	// dirtying write) — used by ablations that only need steady traffic.
	SkipInit bool
	// SampleEvery is the watch thread period (paper: 5 s).
	SampleEvery time.Duration
}

// DefaultPagerConfig returns the paper's application parameters.
func DefaultPagerConfig(name string, slice time.Duration) PagerConfig {
	return PagerConfig{
		Name:        name,
		CPUQoS:      atropos.QoS{P: 100 * time.Millisecond, S: 20 * time.Millisecond, X: true},
		DiskQoS:     atropos.QoS{P: 250 * time.Millisecond, S: slice, X: false, L: 10 * time.Millisecond},
		PhysFrames:  2,
		VirtBytes:   4 << 20,
		SwapBytes:   16 << 20,
		SampleEvery: 5 * time.Second,
	}
}

// Pager is a running paging application.
type Pager struct {
	Cfg     PagerConfig
	Dom     *domain.Domain
	Stretch *vm.Stretch
	Drv     *stretchdrv.Paged
	// Bytes is the progress counter the main thread increments.
	Bytes int64
	// Initialised flips once the setup passes complete; the watch thread
	// only samples after it.
	Initialised bool
	// Series receives sustained bandwidth samples (Mbit/s).
	Series *trace.Series

	lastBytes int64
	lastAt    sim.Time
}

// StartPager creates the domain, stretch, driver and threads for cfg.
// The returned Pager's threads run until the simulation stops.
func StartPager(sys *core.System, cfg PagerConfig, series *trace.Series) (*Pager, error) {
	dom, err := sys.NewDomain(cfg.Name, cfg.CPUQoS, mem.Contract{Guaranteed: uint64(cfg.PhysFrames)})
	if err != nil {
		return nil, err
	}
	wb := cfg.Writeback
	if wb == "" && cfg.Forgetful {
		wb = stretchdrv.WritebackForgetful
	}
	st, gdrv, err := sys.NewStretch(dom, core.PagerSpec{
		Kind:        core.KindPaged,
		Size:        cfg.VirtBytes,
		SwapBytes:   cfg.SwapBytes,
		DiskQoS:     cfg.DiskQoS,
		Policy:      cfg.Policy,
		Writeback:   wb,
		ClusterSize: cfg.ClusterSize,
		Backing:     cfg.Backing,
		Remote:      cfg.Remote,
		Tiered:      cfg.Tiered,
	})
	if err != nil {
		return nil, err
	}
	drv := gdrv.(*stretchdrv.Paged)
	pg := &Pager{Cfg: cfg, Dom: dom, Stretch: st, Drv: drv, Series: series}

	dom.Go("main", func(t *domain.Thread) {
		if err := core.PreallocateFrames(t, cfg.PhysFrames); err != nil {
			return
		}
		acc := vm.AccessRead
		if cfg.Write {
			acc = vm.AccessWrite
		}
		n := int(cfg.VirtBytes)
		if !cfg.SkipInit {
			// Initialisation: sequentially read every byte (every page
			// demand-zeroed), then write every byte (dirtying them all).
			if err := t.Touch(st.Base(), n, vm.AccessRead); err != nil {
				return
			}
			if err := t.Touch(st.Base(), n, vm.AccessWrite); err != nil {
				return
			}
		}
		pg.Initialised = true
		pg.lastAt = t.Now()
		// Main loop: sequentially access every byte from the start of the
		// stretch, incrementing the counter, looping around at the top.
		for {
			for off := 0; off < n; off += vm.PageSize {
				if err := t.Touch(st.Base()+vm.VA(off), vm.PageSize, acc); err != nil {
					return
				}
				pg.Bytes += int64(vm.PageSize)
			}
		}
	})

	// Watch thread: wakes every SampleEvery and logs bytes processed.
	dom.Go("watch", func(t *domain.Thread) {
		for {
			t.Sleep(cfg.SampleEvery)
			pg.sample(t.Now())
		}
	})
	return pg, nil
}

// sample records the sustained bandwidth since the previous sample.
func (pg *Pager) sample(now sim.Time) {
	if !pg.Initialised || pg.Series == nil {
		return
	}
	dt := now.Sub(pg.lastAt).Seconds()
	if dt <= 0 {
		return
	}
	mbps := float64(pg.Bytes-pg.lastBytes) * 8 / 1e6 / dt
	pg.Series.Add(now, mbps)
	pg.lastBytes = pg.Bytes
	pg.lastAt = now
}

// FSClientConfig describes the pipelined file-system client of Fig. 9.
type FSClientConfig struct {
	Name string
	// DiskQoS is the client's USD contract (paper: 125 ms per 250 ms).
	DiskQoS atropos.QoS
	// Depth is the pipeline depth (it "trades off additional buffer space
	// against disk latency").
	Depth int
	// Partition is the disk region the client streams from (a different
	// partition from the swap files).
	Partition usd.Extent
	// ProcessTime is per-completion application processing (checksum,
	// copyout, ...). With a shallow pipeline this time leaves the disk
	// idle (charged as lax); with a deep one it overlaps transactions —
	// the buffer-space/latency trade-off the paper mentions.
	ProcessTime time.Duration
	// SampleEvery is the bandwidth sampling period.
	SampleEvery time.Duration
}

// DefaultFSClientConfig returns the paper's file-system client: 50% of the
// disk, transactions each the size of a page.
func DefaultFSClientConfig(name string, partition usd.Extent) FSClientConfig {
	return FSClientConfig{
		Name:        name,
		DiskQoS:     atropos.QoS{P: 250 * time.Millisecond, S: 125 * time.Millisecond, X: false, L: 10 * time.Millisecond},
		Depth:       8,
		Partition:   partition,
		SampleEvery: 5 * time.Second,
	}
}

// FSClient is a running file-system client.
type FSClient struct {
	Cfg    FSClientConfig
	Bytes  int64
	Series *trace.Series

	lastBytes int64
	lastAt    sim.Time
	stopped   bool
}

// StartFSClient opens a USD channel with the configured QoS and streams
// page-sized sequential reads, keeping Depth requests in flight.
func StartFSClient(sys *core.System, cfg FSClientConfig, series *trace.Series) (*FSClient, error) {
	ch, err := sys.USD.Open(cfg.Name, cfg.DiskQoS, cfg.Depth)
	if err != nil {
		return nil, err
	}
	if err := sys.USD.Grant(cfg.Name, cfg.Partition); err != nil {
		return nil, err
	}
	fc := &FSClient{Cfg: cfg, Series: series}
	pageBlocks := int(vm.PageSize / disk.BlockSize)

	sys.Sim.Spawn(cfg.Name, func(p *sim.Proc) {
		fc.lastAt = p.Now()
		next := cfg.Partition.Start
		inflight := 0
		// Completed requests are resubmitted rather than reallocated; their
		// Data buffers (sized by the first Submit) ride along, so a
		// steady-state client allocates nothing per read.
		var free []*usd.Request
		for !fc.stopped {
			for inflight < cfg.Depth {
				var req *usd.Request
				if n := len(free); n > 0 {
					req = free[n-1]
					free[n-1] = nil
					free = free[:n-1]
					req.Block = next
					req.Err = nil
				} else {
					req = &usd.Request{Op: disk.Read, Block: next, Count: pageBlocks}
				}
				if err := ch.Submit(p, req); err != nil {
					return
				}
				inflight++
				next += int64(pageBlocks)
				if next+int64(pageBlocks) > cfg.Partition.Start+cfg.Partition.Count {
					next = cfg.Partition.Start
				}
			}
			done, err := ch.Await(p)
			if err != nil {
				return
			}
			free = append(free, done)
			inflight--
			fc.Bytes += int64(vm.PageSize)
			if cfg.ProcessTime > 0 {
				p.Sleep(cfg.ProcessTime)
			}
		}
	})

	sys.Sim.Spawn(cfg.Name+"/watch", func(p *sim.Proc) {
		for !fc.stopped {
			p.Sleep(cfg.SampleEvery)
			fc.sample(p.Now())
		}
	})
	return fc, nil
}

// Stop ends the client's loops at their next iteration.
func (fc *FSClient) Stop() { fc.stopped = true }

func (fc *FSClient) sample(now sim.Time) {
	if fc.Series == nil {
		return
	}
	dt := now.Sub(fc.lastAt).Seconds()
	if dt <= 0 {
		return
	}
	fc.Series.Add(now, float64(fc.Bytes-fc.lastBytes)*8/1e6/dt)
	fc.lastBytes = fc.Bytes
	fc.lastAt = now
}

// String summarises progress.
func (pg *Pager) String() string {
	return fmt.Sprintf("%s: %d bytes", pg.Cfg.Name, pg.Bytes)
}
