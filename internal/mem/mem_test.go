package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestFrameStore(t *testing.T) {
	fs := NewFrameStore(4)
	if fs.NFrames() != 4 {
		t.Fatalf("NFrames = %d", fs.NFrames())
	}
	f := fs.Frame(2)
	if len(f) != PageSize {
		t.Fatalf("frame size = %d", len(f))
	}
	f[0], f[PageSize-1] = 0xAA, 0xBB
	// Same backing storage on re-access.
	if g := fs.Frame(2); g[0] != 0xAA || g[PageSize-1] != 0xBB {
		t.Fatal("frame contents not persistent")
	}
	fs.Zero(2)
	if g := fs.Frame(2); g[0] != 0 || g[PageSize-1] != 0 {
		t.Fatal("Zero did not clear")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range frame access did not panic")
		}
	}()
	fs.Frame(4)
}

func TestRamTabLifecycle(t *testing.T) {
	rt := NewRamTab(8)
	if rt.NFrames() != 8 {
		t.Fatalf("NFrames = %d", rt.NFrames())
	}
	if s, _ := rt.State(3); s != Free {
		t.Fatalf("initial state = %v", s)
	}
	if err := rt.Grant(3, 7, 0); err != nil {
		t.Fatal(err)
	}
	if o, _ := rt.Owner(3); o != 7 {
		t.Fatalf("owner = %d", o)
	}
	if s, _ := rt.State(3); s != Unused {
		t.Fatalf("state = %v", s)
	}
	if err := rt.SetState(3, 7, Mapped); err != nil {
		t.Fatal(err)
	}
	// Mapped frames cannot be released.
	if err := rt.Release(3); !errors.Is(err, ErrFrameBusy) {
		t.Fatalf("release mapped: %v", err)
	}
	if err := rt.SetState(3, 7, Unused); err != nil {
		t.Fatal(err)
	}
	if err := rt.Release(3); err != nil {
		t.Fatal(err)
	}
	if s, _ := rt.State(3); s != Free {
		t.Fatalf("state after release = %v", s)
	}
}

func TestRamTabValidation(t *testing.T) {
	rt := NewRamTab(4)
	if _, err := rt.Owner(9); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v", err)
	}
	if _, err := rt.State(9); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v", err)
	}
	if _, err := rt.Width(9); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v", err)
	}
	rt.Grant(1, 5, 2)
	if w, _ := rt.Width(1); w != 2 {
		t.Fatalf("width = %d", w)
	}
	// Non-owner cannot transition.
	if err := rt.SetState(1, 6, Mapped); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("err = %v", err)
	}
	// Free frames belong to the allocator.
	if err := rt.SetState(2, 5, Mapped); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("err = %v", err)
	}
	// Mapped -> Nailed is allowed (nailing a mapped frame); the reverse
	// Nailed -> Mapped is not — unnail first.
	rt.SetState(1, 5, Mapped)
	if err := rt.SetState(1, 5, Nailed); err != nil {
		t.Fatalf("nail mapped frame: %v", err)
	}
	if err := rt.SetState(1, 5, Mapped); !errors.Is(err, ErrFrameBusy) {
		t.Fatalf("nailed->mapped: %v", err)
	}
	rt.SetState(1, 5, Unused)
	rt.SetState(1, 5, Mapped)
	// Idempotent transition is fine.
	if err := rt.SetState(1, 5, Mapped); err != nil {
		t.Fatal(err)
	}
}

func TestRamTabNailed(t *testing.T) {
	rt := NewRamTab(4)
	rt.Grant(0, 1, 0)
	if err := rt.SetState(0, 1, Nailed); err != nil {
		t.Fatal(err)
	}
	if err := rt.Release(0); !errors.Is(err, ErrFrameBusy) {
		t.Fatalf("released nailed frame: %v", err)
	}
	// Owner may unnail.
	if err := rt.SetState(0, 1, Unused); err != nil {
		t.Fatal(err)
	}
}

func TestRamTabOwnedBy(t *testing.T) {
	rt := NewRamTab(6)
	rt.Grant(1, 9, 0)
	rt.Grant(4, 9, 0)
	rt.Grant(2, 3, 0)
	got := rt.OwnedBy(9)
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("OwnedBy = %v", got)
	}
}

func TestFrameStackOrdering(t *testing.T) {
	var st FrameStack
	st.PushTop(1)
	st.PushTop(2) // stack: 2 1
	st.PushBottom(3)
	if st.Len() != 3 {
		t.Fatalf("Len = %d", st.Len())
	}
	top := st.Top(2)
	if top[0].PFN != 2 || top[1].PFN != 1 {
		t.Fatalf("Top = %v", top)
	}
	if err := st.MoveToTop(3); err != nil {
		t.Fatal(err)
	}
	if st.Entries()[0].PFN != 3 {
		t.Fatal("MoveToTop failed")
	}
	if err := st.MoveToBottom(3); err != nil {
		t.Fatal(err)
	}
	if st.Entries()[2].PFN != 3 {
		t.Fatal("MoveToBottom failed")
	}
	if err := st.Remove(1); err != nil {
		t.Fatal(err)
	}
	if st.Contains(1) || !st.Contains(2) {
		t.Fatal("Remove/Contains wrong")
	}
	if err := st.Remove(99); err == nil {
		t.Fatal("removed absent frame")
	}
	e, ok := st.PopTop()
	if !ok || e.PFN != 2 {
		t.Fatalf("PopTop = %v, %v", e, ok)
	}
	st.PopTop()
	if _, ok := st.PopTop(); ok {
		t.Fatal("PopTop on empty stack succeeded")
	}
}

func TestFrameStackVA(t *testing.T) {
	var st FrameStack
	st.PushTop(5)
	if err := st.SetVA(5, 0xABCD0000); err != nil {
		t.Fatal(err)
	}
	va, err := st.VA(5)
	if err != nil || va != 0xABCD0000 {
		t.Fatalf("VA = %x, %v", va, err)
	}
	if _, err := st.VA(6); err == nil {
		t.Fatal("VA of absent frame succeeded")
	}
	if err := st.SetVA(6, 1); err == nil {
		t.Fatal("SetVA of absent frame succeeded")
	}
	// Top(k) clamps.
	if got := st.Top(10); len(got) != 1 {
		t.Fatalf("Top(10) = %v", got)
	}
}

// Property: any sequence of stack operations preserves the set of frames
// (no duplication, no loss).
func TestFrameStackProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		var st FrameStack
		present := map[PFN]bool{}
		for i, op := range ops {
			pfn := PFN(op % 16)
			switch i % 4 {
			case 0:
				if !present[pfn] {
					st.PushTop(pfn)
					present[pfn] = true
				}
			case 1:
				if !present[pfn] {
					st.PushBottom(pfn)
					present[pfn] = true
				}
			case 2:
				if present[pfn] {
					if st.MoveToTop(pfn) != nil {
						return false
					}
				}
			case 3:
				if present[pfn] {
					if st.Remove(pfn) != nil {
						return false
					}
					delete(present, pfn)
				}
			}
			if st.Len() != len(present) {
				return false
			}
			seen := map[PFN]bool{}
			for _, e := range st.Entries() {
				if seen[e.PFN] || !present[e.PFN] {
					return false
				}
				seen[e.PFN] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
