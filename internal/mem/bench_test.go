package mem

import "testing"

func BenchmarkTryAllocFree(b *testing.B) {
	_, fa := newAlloc(64)
	c, err := fa.Admit(1, Contract{Guaranteed: 32}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pfn, err := c.TryAllocFrame()
		if err != nil {
			b.Fatal(err)
		}
		if err := c.FreeFrame(pfn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameStackReorder(b *testing.B) {
	var st FrameStack
	for i := 0; i < 64; i++ {
		st.PushBottom(PFN(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pfn := PFN(i % 64)
		st.MoveToTop(pfn)
		st.MoveToBottom(pfn)
	}
}

func BenchmarkRamTabTransitions(b *testing.B) {
	rt := NewRamTab(8)
	rt.Grant(3, 1, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.SetState(3, 1, Mapped)
		rt.SetState(3, 1, Unused)
	}
}
