package mem

import (
	"strconv"
	"testing"
)

func BenchmarkTryAllocFree(b *testing.B) {
	_, fa := newAlloc(64)
	c, err := fa.Admit(1, Contract{Guaranteed: 32}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pfn, err := c.TryAllocFrame()
		if err != nil {
			b.Fatal(err)
		}
		if err := c.FreeFrame(pfn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocFreeClients measures the frame alloc/free cycle with 10,
// 100 and 1,000 admitted clients over proportionally sized memory. The
// indexed free structures keep the cycle O(1) regardless of client count or
// memory size; each iteration exercises the unspecific pop-head path, the
// O(1) coloured path and the tail free.
func BenchmarkAllocFreeClients(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(strconv.Itoa(n), func(b *testing.B) {
			_, fa := newAlloc(16 * n)
			clients := make([]*Client, n)
			for i := 0; i < n; i++ {
				c, err := fa.Admit(DomainID(i+1), Contract{Guaranteed: 8}, nil)
				if err != nil {
					b.Fatal(err)
				}
				clients[i] = c
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := clients[i%n]
				pfn, err := c.TryAllocFrame()
				if err != nil {
					b.Fatal(err)
				}
				cpfn, err := c.AllocColoured(i%DefaultColours, DefaultColours)
				if err != nil {
					b.Fatal(err)
				}
				if err := c.FreeFrame(pfn); err != nil {
					b.Fatal(err)
				}
				if err := c.FreeFrame(cpfn); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFrameStackReorder(b *testing.B) {
	var st FrameStack
	for i := 0; i < 64; i++ {
		st.PushBottom(PFN(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pfn := PFN(i % 64)
		st.MoveToTop(pfn)
		st.MoveToBottom(pfn)
	}
}

func BenchmarkRamTabTransitions(b *testing.B) {
	rt := NewRamTab(8)
	rt.Grant(3, 1, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.SetState(3, 1, Mapped)
		rt.SetState(3, 1, Unused)
	}
}
