package mem

import (
	"errors"
	"math/rand"
	"testing"
)

// The model suite pins the indexed free-frame structures (FIFO queue +
// colour sublists + occupancy bitmap) to a brute-force model that replicates
// the original single-slice free list operation by operation: pop-front
// unspecific allocation, linear scans for specific/coloured/region requests,
// the aligned full scan for contiguous runs, and append-at-back frees. After
// every operation the allocator's queue walk must equal the model slice
// exactly — same frames, same order — so every future allocation decision is
// forced to agree too.

// sliceModel is the old free-list representation.
type sliceModel struct {
	freeList []PFN
	nframes  int
}

func newSliceModel(nframes int) *sliceModel {
	m := &sliceModel{nframes: nframes}
	for i := 0; i < nframes; i++ {
		m.freeList = append(m.freeList, PFN(i))
	}
	return m
}

func (m *sliceModel) take(i int) PFN {
	pfn := m.freeList[i]
	m.freeList = append(m.freeList[:i], m.freeList[i+1:]...)
	return pfn
}

func (m *sliceModel) tryAlloc() (PFN, bool) {
	if len(m.freeList) == 0 {
		return 0, false
	}
	return m.take(0), true
}

func (m *sliceModel) allocSpecific(pfn PFN) bool {
	for i, f := range m.freeList {
		if f == pfn {
			m.take(i)
			return true
		}
	}
	return false
}

func (m *sliceModel) allocColoured(colour, ncolours int) (PFN, bool) {
	for i, f := range m.freeList {
		if int(f)%ncolours == colour {
			return m.take(i), true
		}
	}
	return 0, false
}

func (m *sliceModel) allocContiguous(n int) (PFN, bool) {
	free := make(map[PFN]bool, len(m.freeList))
	for _, f := range m.freeList {
		free[f] = true
	}
	for base := PFN(0); int(base)+n <= m.nframes; base += PFN(n) {
		run := true
		for i := 0; i < n; i++ {
			if !free[base+PFN(i)] {
				run = false
				break
			}
		}
		if !run {
			continue
		}
		for i := 0; i < n; i++ {
			for j, f := range m.freeList {
				if f == base+PFN(i) {
					m.take(j)
					break
				}
			}
		}
		return base, true
	}
	return 0, false
}

func (m *sliceModel) allocInRegion(lo, hi PFN) (PFN, bool) {
	for i, f := range m.freeList {
		if f >= lo && f < hi {
			return m.take(i), true
		}
	}
	return 0, false
}

func (m *sliceModel) free(pfn PFN) {
	m.freeList = append(m.freeList, pfn)
}

// queueWalk returns the allocator's free queue in order.
func queueWalk(fa *FramesAllocator) []PFN {
	var out []PFN
	for i := fa.freeHead; i >= 0; i = fa.nodes[i].next {
		out = append(out, PFN(i))
	}
	return out
}

func checkQueues(t *testing.T, step int, fa *FramesAllocator, m *sliceModel) {
	t.Helper()
	got := queueWalk(fa)
	if len(got) != len(m.freeList) {
		t.Fatalf("step %d: queue length %d, model %d", step, len(got), len(m.freeList))
	}
	for i := range got {
		if got[i] != m.freeList[i] {
			t.Fatalf("step %d: queue[%d] = %d, model %d", step, i, got[i], m.freeList[i])
		}
	}
	if fa.FreeFrames() != len(m.freeList) {
		t.Fatalf("step %d: FreeFrames %d, model %d", step, fa.FreeFrames(), len(m.freeList))
	}
}

// TestAllocatorMatchesSliceModel churns the indexed allocator and the slice
// model through the same random allocation mix and requires identical
// decisions and identical queue state throughout.
func TestAllocatorMatchesSliceModel(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const nframes = 96
		_, fa := newAlloc(nframes)
		c, err := fa.Admit(1, Contract{Guaranteed: nframes}, nil)
		if err != nil {
			t.Fatal(err)
		}
		m := newSliceModel(nframes)
		var held []PFN

		for step := 0; step < 400; step++ {
			switch rng.Intn(6) {
			case 0: // unspecific
				pfn, err := c.TryAllocFrame()
				mp, ok := m.tryAlloc()
				if (err == nil) != ok {
					t.Fatalf("seed %d step %d: tryAlloc err %v, model ok %v", seed, step, err, ok)
				}
				if err == nil {
					if pfn != mp {
						t.Fatalf("seed %d step %d: tryAlloc %d, model %d", seed, step, pfn, mp)
					}
					held = append(held, pfn)
				}
			case 1: // specific
				pfn := PFN(rng.Intn(nframes))
				err := c.AllocSpecific(pfn)
				ok := m.allocSpecific(pfn)
				if (err == nil) != ok {
					t.Fatalf("seed %d step %d: allocSpecific(%d) err %v, model ok %v", seed, step, pfn, err, ok)
				}
				if err == nil {
					held = append(held, pfn)
				}
			case 2: // coloured; alternate the indexed count and a fallback count
				nc := DefaultColours
				if rng.Intn(2) == 0 {
					nc = 3
				}
				colour := rng.Intn(nc)
				pfn, err := c.AllocColoured(colour, nc)
				mp, ok := m.allocColoured(colour, nc)
				if (err == nil) != ok {
					t.Fatalf("seed %d step %d: allocColoured(%d/%d) err %v, model ok %v", seed, step, colour, nc, err, ok)
				}
				if err == nil {
					if pfn != mp {
						t.Fatalf("seed %d step %d: allocColoured(%d/%d) %d, model %d", seed, step, colour, nc, pfn, mp)
					}
					held = append(held, pfn)
				}
			case 3: // contiguous
				n := 1 << rng.Intn(4)
				base, err := c.AllocContiguous(n)
				mb, ok := m.allocContiguous(n)
				if (err == nil) != ok {
					t.Fatalf("seed %d step %d: allocContiguous(%d) err %v, model ok %v", seed, step, n, err, ok)
				}
				if err == nil {
					if base != mb {
						t.Fatalf("seed %d step %d: allocContiguous(%d) base %d, model %d", seed, step, n, base, mb)
					}
					for i := 0; i < n; i++ {
						held = append(held, base+PFN(i))
					}
				}
			case 4: // region
				lo := PFN(rng.Intn(nframes))
				hi := lo + PFN(1+rng.Intn(nframes-int(lo)))
				pfn, err := c.AllocInRegion(lo, hi)
				mp, ok := m.allocInRegion(lo, hi)
				if (err == nil) != ok {
					t.Fatalf("seed %d step %d: allocInRegion[%d,%d) err %v, model ok %v", seed, step, lo, hi, err, ok)
				}
				if err == nil {
					if pfn != mp {
						t.Fatalf("seed %d step %d: allocInRegion[%d,%d) %d, model %d", seed, step, lo, hi, pfn, mp)
					}
					held = append(held, pfn)
				}
			case 5: // free a random held frame
				if len(held) == 0 {
					continue
				}
				i := rng.Intn(len(held))
				pfn := held[i]
				held = append(held[:i], held[i+1:]...)
				if err := c.FreeFrame(pfn); err != nil {
					t.Fatalf("seed %d step %d: free(%d): %v", seed, step, pfn, err)
				}
				m.free(pfn)
			}
			checkQueues(t, step, fa, m)
		}
	}
}

// TestSetColourCount re-indexes the sublists and verifies the indexed path
// serves the re-coloured lists.
func TestSetColourCount(t *testing.T) {
	_, fa := newAlloc(16)
	if err := fa.SetColourCount(4); err != nil {
		t.Fatal(err)
	}
	c, _ := fa.Admit(1, Contract{Guaranteed: 16}, nil)
	pfn, err := c.AllocColoured(3, 4)
	if err != nil || pfn != 3 {
		t.Fatalf("AllocColoured(3,4) = %d, %v", pfn, err)
	}
	// Rebuild requires all frames free.
	if err := fa.SetColourCount(2); err == nil {
		t.Fatal("SetColourCount succeeded with a frame allocated")
	}
	if err := fa.SetColourCount(0); err == nil {
		t.Fatal("SetColourCount(0) succeeded")
	}
}

// TestAllocContiguousFragmentedFastPath is the AllocContiguous worst-case
// regression: with memory fragmented so no run can exist, the request must
// fail via the exhaustion fast path (free count below the run length)
// instead of rescanning the whole frame space, and a fragmented-but-ample
// free list must still fail cleanly after probing.
func TestAllocContiguousFragmentedFastPath(t *testing.T) {
	const nframes = 256
	_, fa := newAlloc(nframes)
	c, _ := fa.Admit(1, Contract{Guaranteed: nframes, Optimistic: 8}, nil)

	// Take everything, then free three scattered frames: a request for 8
	// must fail before probing (nfree < n).
	for i := 0; i < nframes; i++ {
		if _, err := c.TryAllocFrame(); err != nil {
			t.Fatal(err)
		}
	}
	for _, pfn := range []PFN{6, 130, 254} {
		if err := c.FreeFrame(pfn); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.AllocContiguous(8); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("err = %v", err)
	}

	// Now free every second frame: half of memory is free, yet no aligned
	// pair exists; the bitmap probe must reject every base and fail.
	for i := 0; i < nframes; i += 2 {
		if fa.nodes[i].free {
			continue
		}
		if err := c.FreeFrame(PFN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.AllocContiguous(2); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("err = %v", err)
	}
	// Odd neighbours complete runs again: the lowest aligned pair wins.
	if err := c.FreeFrame(PFN(131)); err != nil {
		t.Fatal(err)
	}
	base, err := c.AllocContiguous(2)
	if err != nil || base != 130 {
		t.Fatalf("AllocContiguous(2) = %d, %v", base, err)
	}
}
