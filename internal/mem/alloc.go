package mem

import (
	"errors"
	"fmt"
	"time"

	"nemesis/internal/obs"
	"nemesis/internal/sim"
)

// RevocationHandler is implemented by domains that use optimistically
// allocated frames: the frames allocator calls RevokeNotification when it
// needs k frames back by deadline. The domain must arrange for the top k
// frames of its frame stack to be Unused (cleaning dirty pages if needed)
// and then call Client.RevocationComplete. Failure to do so in time kills
// the domain.
type RevocationHandler interface {
	RevokeNotification(k int, deadline sim.Time)
}

// Contract is a client's (g, o) service contract: g frames guaranteed
// (immune from revocation in the short term) and up to o further frames
// allocated optimistically when memory is otherwise idle.
type Contract struct {
	Guaranteed uint64
	Optimistic uint64
}

// DefaultColours is the number of cache colours the allocator indexes by
// default (SetColourCount rebuilds for other platforms).
const DefaultColours = 8

// freeNode is one slot of the PFN-indexed free-frame table. Free frames are
// threaded onto two intrusive doubly-linked lists: the global FIFO queue
// (whose order is exactly the order of the old free-list slice — ascending at
// init, freed frames appended at the tail) and the sublist of their cache
// colour. Links are PFNs; -1 terminates.
type freeNode struct {
	prev, next   int32 // global FIFO queue
	cprev, cnext int32 // per-colour sublist
	free         bool
}

// FramesAllocator is the central physical-memory allocator. Unlike a
// general-purpose OS it performs no system-wide load balancing: each domain
// has a contract, and contention is resolved by revoking optimistically
// allocated frames — with the *selection* of which frames to lose under the
// control of the losing application (via its frame stack).
//
// The free set is indexed three ways so the allocation paths scale with the
// request, not with memory size: the FIFO queue gives O(1) unspecific
// allocation and O(1) removal by PFN (AllocSpecific), the colour sublists
// give O(1) AllocColoured for the indexed colour count, and an occupancy
// bitmap backs AllocContiguous with word-at-a-time aligned-run probes plus
// an exhaustion fast path. All three stay exactly consistent with the old
// single-slice semantics: same allocation order, same selections.
type FramesAllocator struct {
	sim    *sim.Simulator
	store  *FrameStore
	ramtab *RamTab

	nodes      []freeNode
	freeHead   int32
	freeTail   int32
	colourHead []int32
	colourTail []int32
	ncolours   int
	nfree      int
	freeBits   []uint64 // bit set = frame free
	guaranteed uint64   // running sum of admitted guarantees

	clients map[DomainID]*Client
	freed   *sim.Cond

	// RevocationTimeout is the deadline T granted to intrusive
	// revocations (the paper suggests ~100 ms, "relatively far in the
	// future" to allow cleaning dirty pages).
	RevocationTimeout time.Duration

	// OnKill, when non-nil, is invoked when a domain fails revocation.
	// The system uses it to tear the domain down; the allocator reclaims
	// the frames itself.
	OnKill func(DomainID)

	revoking bool

	// Telemetry (all handles nil when disabled; every use is a no-op).
	obs          *obs.Registry
	gFree        *obs.Gauge
	cTransparent *obs.Counter
	cIntrusive   *obs.Counter
	cTimeouts    *obs.Counter
	hRevoke      *obs.Histogram
}

// SetObs attaches a telemetry registry. Call before admitting clients so
// per-client handles are created with it; a nil registry disables telemetry.
func (fa *FramesAllocator) SetObs(r *obs.Registry) {
	fa.obs = r
	fa.gFree = r.Gauge("frames", "free", "")
	fa.cTransparent = r.Counter("frames", "revocations_transparent", "")
	fa.cIntrusive = r.Counter("frames", "revocations_intrusive", "")
	fa.cTimeouts = r.Counter("frames", "revocation_timeouts", "")
	fa.hRevoke = r.Histogram("frames", "revocation_latency", "")
	fa.gFree.Set(int64(fa.nfree))
}

// NewFramesAllocator creates an allocator over store/ramtab (which must
// cover the same number of frames).
func NewFramesAllocator(s *sim.Simulator, store *FrameStore, ramtab *RamTab) *FramesAllocator {
	fa := &FramesAllocator{
		sim:               s,
		store:             store,
		ramtab:            ramtab,
		clients:           make(map[DomainID]*Client),
		freed:             sim.NewCond(s),
		RevocationTimeout: 100 * time.Millisecond,
	}
	fa.initIndex(DefaultColours)
	return fa
}

// initIndex (re)builds the free-frame index with every frame free, in
// ascending queue order.
func (fa *FramesAllocator) initIndex(ncolours int) {
	n := fa.store.NFrames()
	fa.nodes = make([]freeNode, n)
	fa.freeBits = make([]uint64, (n+63)/64)
	fa.ncolours = ncolours
	fa.colourHead = make([]int32, ncolours)
	fa.colourTail = make([]int32, ncolours)
	fa.freeHead, fa.freeTail = -1, -1
	for i := range fa.colourHead {
		fa.colourHead[i], fa.colourTail[i] = -1, -1
	}
	fa.nfree = 0
	for i := 0; i < n; i++ {
		fa.pushTail(PFN(i))
	}
}

// SetColourCount re-indexes the colour sublists for a platform with n cache
// colours. Call before any allocation: the rebuild requires every frame
// free. AllocColoured requests for a different colour count fall back to the
// queue walk.
func (fa *FramesAllocator) SetColourCount(n int) error {
	if n <= 0 {
		return fmt.Errorf("mem: bad colour count %d", n)
	}
	if fa.nfree != fa.store.NFrames() {
		return fmt.Errorf("mem: cannot re-colour with %d frames allocated",
			fa.store.NFrames()-fa.nfree)
	}
	fa.initIndex(n)
	return nil
}

// pushTail appends a free frame at the tail of the FIFO queue and its colour
// sublist — the same position a freed PFN took in the old append-to-slice
// scheme.
func (fa *FramesAllocator) pushTail(pfn PFN) {
	nd := &fa.nodes[pfn]
	if nd.free {
		panic(fmt.Sprintf("mem: frame %d freed twice", pfn))
	}
	nd.free = true
	nd.next, nd.prev = -1, fa.freeTail
	if fa.freeTail >= 0 {
		fa.nodes[fa.freeTail].next = int32(pfn)
	} else {
		fa.freeHead = int32(pfn)
	}
	fa.freeTail = int32(pfn)
	colour := int(pfn) % fa.ncolours
	nd.cnext, nd.cprev = -1, fa.colourTail[colour]
	if fa.colourTail[colour] >= 0 {
		fa.nodes[fa.colourTail[colour]].cnext = int32(pfn)
	} else {
		fa.colourHead[colour] = int32(pfn)
	}
	fa.colourTail[colour] = int32(pfn)
	fa.freeBits[pfn>>6] |= 1 << (uint(pfn) & 63)
	fa.nfree++
}

// unlink removes a free frame from the queue, its colour sublist and the
// bitmap, by PFN, in O(1).
func (fa *FramesAllocator) unlink(pfn PFN) {
	nd := &fa.nodes[pfn]
	if !nd.free {
		panic(fmt.Sprintf("mem: frame %d taken while not free", pfn))
	}
	nd.free = false
	if nd.prev >= 0 {
		fa.nodes[nd.prev].next = nd.next
	} else {
		fa.freeHead = nd.next
	}
	if nd.next >= 0 {
		fa.nodes[nd.next].prev = nd.prev
	} else {
		fa.freeTail = nd.prev
	}
	colour := int(pfn) % fa.ncolours
	if nd.cprev >= 0 {
		fa.nodes[nd.cprev].cnext = nd.cnext
	} else {
		fa.colourHead[colour] = nd.cnext
	}
	if nd.cnext >= 0 {
		fa.nodes[nd.cnext].cprev = nd.cprev
	} else {
		fa.colourTail[colour] = nd.cprev
	}
	fa.freeBits[pfn>>6] &^= 1 << (uint(pfn) & 63)
	fa.nfree--
}

// popHead takes the frame at the head of the FIFO queue (the frame the old
// slice scheme served first).
func (fa *FramesAllocator) popHead() PFN {
	pfn := PFN(fa.freeHead)
	fa.unlink(pfn)
	return pfn
}

// Store returns the frame store.
func (fa *FramesAllocator) Store() *FrameStore { return fa.store }

// RamTab returns the frame-state table.
func (fa *FramesAllocator) RamTab() *RamTab { return fa.ramtab }

// FreeFrames returns the number of frames on the free list.
func (fa *FramesAllocator) FreeFrames() int { return fa.nfree }

// GuaranteedTotal returns the sum of admitted guarantees.
func (fa *FramesAllocator) GuaranteedTotal() uint64 { return fa.guaranteed }

// Client is one domain's view of the frames allocator: its contract, its
// allocation count and its frame stack. The allocator maintains the tuple
// (g, o, n) for each client.
type Client struct {
	fa       *FramesAllocator
	domain   DomainID
	contract Contract
	n        uint64
	stack    FrameStack
	handler  RevocationHandler

	pendingK        int
	pendingDeadline sim.Time
	pendingSince    sim.Time
	pendingTimer    sim.Timer
	killed          bool

	// label names this client in telemetry and the audit log ("dom<id>"
	// until the system facade renames it to the domain's name).
	label string

	// Telemetry handles (nil when disabled).
	gHeld      *obs.Gauge
	gStack     *obs.Gauge
	hAllocWait *obs.Histogram
}

// initTelemetry (re)creates the client's cached metric handles under label.
func (c *Client) initTelemetry(label string) {
	c.gHeld = c.fa.obs.Gauge("frames", "held", label)
	c.gStack = c.fa.obs.Gauge("frames", "stack_depth", label)
	c.hAllocWait = c.fa.obs.Histogram("frames", "alloc_wait", label)
}

// SetTelemetryName relabels the client's metrics and audit-log entries (the
// allocator only knows domain IDs; the system facade knows names).
func (c *Client) SetTelemetryName(name string) {
	c.label = name
	if c.fa.obs == nil {
		return
	}
	c.initTelemetry(name)
	c.updateGauges()
}

// updateGauges refreshes the client's level gauges and the allocator's
// free-frames gauge.
func (c *Client) updateGauges() {
	c.gHeld.Set(int64(c.n))
	c.gStack.Set(int64(len(c.stack.Entries())))
	c.fa.gFree.Set(int64(c.fa.nfree))
}

// Admit registers a domain with contract ct. Admission control ensures the
// sum of all guarantees never exceeds main memory, so every guarantee can be
// met simultaneously.
func (fa *FramesAllocator) Admit(domain DomainID, ct Contract, h RevocationHandler) (*Client, error) {
	if _, dup := fa.clients[domain]; dup {
		return nil, fmt.Errorf("%w: %d", ErrAlreadyAdmitted, domain)
	}
	if fa.guaranteed+ct.Guaranteed > uint64(fa.store.NFrames()) {
		return nil, fmt.Errorf("%w: %d + %d > %d frames", ErrOverbooked,
			fa.guaranteed, ct.Guaranteed, fa.store.NFrames())
	}
	c := &Client{fa: fa, domain: domain, contract: ct, handler: h,
		label: fmt.Sprintf("dom%d", domain)}
	if fa.obs != nil {
		c.initTelemetry(c.label)
	}
	fa.clients[domain] = c
	fa.guaranteed += ct.Guaranteed
	return c, nil
}

// Lookup returns the client for a domain, or nil.
func (fa *FramesAllocator) Lookup(domain DomainID) *Client { return fa.clients[domain] }

// Remove releases a departed domain's registration. All its frames must
// already have been returned.
func (fa *FramesAllocator) Remove(domain DomainID) error {
	c, ok := fa.clients[domain]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownClient, domain)
	}
	if c.n != 0 {
		return fmt.Errorf("mem: domain %d still holds %d frames", domain, c.n)
	}
	delete(fa.clients, domain)
	fa.guaranteed -= c.contract.Guaranteed
	return nil
}

// Domain returns the owning domain.
func (c *Client) Domain() DomainID { return c.domain }

// Contract returns the client's (g, o) contract.
func (c *Client) Contract() Contract { return c.contract }

// Allocated returns n, the number of frames currently held.
func (c *Client) Allocated() uint64 { return c.n }

// HoldsOptimistic reports whether the client holds frames beyond its
// guarantee.
func (c *Client) HoldsOptimistic() bool { return c.n > c.contract.Guaranteed }

// Stack returns the client's frame stack.
func (c *Client) Stack() *FrameStack { return &c.stack }

// Killed reports whether the allocator killed this domain for failing a
// revocation.
func (c *Client) Killed() bool { return c.killed }

// grant hands pfn to c.
func (fa *FramesAllocator) grant(c *Client, pfn PFN) {
	fa.ramtab.Grant(pfn, c.domain, 0)
	c.stack.PushTop(pfn)
	c.n++
	c.updateGauges()
}

// TryAllocFrame allocates one frame without blocking and without triggering
// revocation. As long as n < g the request is guaranteed to succeed when any
// frame is free; beyond g it succeeds optimistically while memory is
// available, up to g+o.
func (c *Client) TryAllocFrame() (PFN, error) {
	if c.killed {
		return 0, ErrKilledByAlloc
	}
	if c.n >= c.contract.Guaranteed+c.contract.Optimistic {
		// Sentinel, unwrapped: the try path runs on every fault once a
		// domain is at quota, and formatting a fresh error there dominates.
		return 0, ErrQuota
	}
	if c.fa.nfree == 0 {
		return 0, ErrNoMemory
	}
	pfn := c.fa.popHead()
	c.fa.grant(c, pfn)
	return pfn, nil
}

// AllocFrame allocates one frame, blocking p while a revocation runs if the
// request is within the guarantee and memory is exhausted. Optimistic
// requests (n >= g) never trigger revocation and fail immediately when
// memory is tight.
func (c *Client) AllocFrame(p *sim.Proc) (PFN, error) {
	start := c.fa.sim.Now()
	for {
		pfn, err := c.TryAllocFrame()
		if err == nil {
			if waited := c.fa.sim.Now().Sub(start); waited > 0 {
				c.hAllocWait.Observe(waited)
			}
			return pfn, nil
		}
		if !errors.Is(err, ErrNoMemory) {
			return 0, err
		}
		if c.n >= c.contract.Guaranteed {
			return 0, err // optimistic request: no safety net
		}
		c.fa.ensureRevocation(c)
		// Transparent revocation frees frames synchronously — retry
		// before sleeping so the wakeup is not lost.
		if pfn, err := c.TryAllocFrame(); err == nil {
			if waited := c.fa.sim.Now().Sub(start); waited > 0 {
				c.hAllocWait.Observe(waited)
			}
			return pfn, nil
		}
		c.fa.freed.Wait(p)
		if c.killed {
			return 0, ErrKilledByAlloc
		}
	}
}

// AllocSpecific allocates a particular frame if it is free — the hook for
// applications with platform knowledge (page colouring, superpages, DMA
// regions).
func (c *Client) AllocSpecific(pfn PFN) error {
	if c.killed {
		return ErrKilledByAlloc
	}
	if c.n >= c.contract.Guaranteed+c.contract.Optimistic {
		return fmt.Errorf("%w: n=%d", ErrQuota, c.n)
	}
	fa := c.fa
	if int(pfn) < len(fa.nodes) && fa.nodes[pfn].free {
		fa.unlink(pfn)
		fa.grant(c, pfn)
		return nil
	}
	return fmt.Errorf("%w: frame %d not free", ErrNoMemory, pfn)
}

// AllocColoured allocates a free frame of the given cache colour
// (pfn mod ncolours == colour) — the page-colouring hook the paper cites
// for avoiding conflict misses in large direct-mapped caches. Applications
// with platform knowledge choose colours; everyone else takes the default
// policy.
func (c *Client) AllocColoured(colour, ncolours int) (PFN, error) {
	if c.killed {
		return 0, ErrKilledByAlloc
	}
	if ncolours <= 0 || colour < 0 || colour >= ncolours {
		return 0, fmt.Errorf("mem: bad colour %d of %d", colour, ncolours)
	}
	if c.n >= c.contract.Guaranteed+c.contract.Optimistic {
		return 0, fmt.Errorf("%w: n=%d", ErrQuota, c.n)
	}
	fa := c.fa
	if ncolours == fa.ncolours {
		// Indexed colour: the sublist head is the first frame of this
		// colour in queue order — the frame the old slice scan found.
		if head := fa.colourHead[colour]; head >= 0 {
			pfn := PFN(head)
			fa.unlink(pfn)
			fa.grant(c, pfn)
			return pfn, nil
		}
		return 0, fmt.Errorf("%w: no free frame of colour %d/%d", ErrNoMemory, colour, ncolours)
	}
	// Unindexed colour count: walk the queue in allocation order.
	for i := fa.freeHead; i >= 0; i = fa.nodes[i].next {
		if int(i)%ncolours == colour {
			pfn := PFN(i)
			fa.unlink(pfn)
			fa.grant(c, pfn)
			return pfn, nil
		}
	}
	return 0, fmt.Errorf("%w: no free frame of colour %d/%d", ErrNoMemory, colour, ncolours)
}

// AllocContiguous allocates n physically contiguous frames whose base is
// aligned to n (which must be a power of two) — the building block for
// superpage TLB mappings. All frames are granted to the client; the base
// PFN is returned.
func (c *Client) AllocContiguous(n int) (PFN, error) {
	if c.killed {
		return 0, ErrKilledByAlloc
	}
	if n <= 0 || n&(n-1) != 0 {
		return 0, fmt.Errorf("mem: contiguous run of %d is not a power of two", n)
	}
	if c.n+uint64(n) > c.contract.Guaranteed+c.contract.Optimistic {
		return 0, fmt.Errorf("%w: n=%d + %d", ErrQuota, c.n, n)
	}
	fa := c.fa
	// Exhaustion fast path: fewer free frames than the run needs means no
	// scan can succeed — fragmented memory used to pay a full rescan here.
	if fa.nfree < n {
		return 0, fmt.Errorf("%w: no aligned free run of %d frames", ErrNoMemory, n)
	}
	// Probe aligned bases in the occupancy bitmap, lowest first — the same
	// base selection as the old full scan, without materialising a set.
	for base := PFN(0); int(base)+n <= fa.store.NFrames(); base += PFN(n) {
		if !fa.runFree(base, n) {
			continue
		}
		for i := 0; i < n; i++ {
			fa.unlink(base + PFN(i))
			fa.grant(c, base+PFN(i))
		}
		return base, nil
	}
	return 0, fmt.Errorf("%w: no aligned free run of %d frames", ErrNoMemory, n)
}

// runFree reports whether frames [base, base+n) are all free. n is a power
// of two and base is n-aligned, so runs of 64+ frames cover whole bitmap
// words and shorter runs sit within one word.
func (fa *FramesAllocator) runFree(base PFN, n int) bool {
	if n >= 64 {
		w := int(base) >> 6
		for k := 0; k < n>>6; k++ {
			if fa.freeBits[w+k] != ^uint64(0) {
				return false
			}
		}
		return true
	}
	mask := (uint64(1)<<uint(n) - 1) << (uint(base) & 63)
	return fa.freeBits[base>>6]&mask == mask
}

// AllocInRegion allocates a free frame with lo <= pfn < hi (e.g. a
// DMA-accessible region).
func (c *Client) AllocInRegion(lo, hi PFN) (PFN, error) {
	if c.killed {
		return 0, ErrKilledByAlloc
	}
	if c.n >= c.contract.Guaranteed+c.contract.Optimistic {
		return 0, fmt.Errorf("%w: n=%d", ErrQuota, c.n)
	}
	fa := c.fa
	for i := fa.freeHead; i >= 0; i = fa.nodes[i].next {
		if f := PFN(i); f >= lo && f < hi {
			fa.unlink(f)
			fa.grant(c, f)
			return f, nil
		}
	}
	return 0, fmt.Errorf("%w: no free frame in [%d,%d)", ErrNoMemory, lo, hi)
}

// FreeFrame voluntarily returns an Unused frame to the allocator.
func (c *Client) FreeFrame(pfn PFN) error {
	owner, err := c.fa.ramtab.Owner(pfn)
	if err != nil {
		return err
	}
	state, _ := c.fa.ramtab.State(pfn)
	if state == Free || owner != c.domain {
		return fmt.Errorf("%w: frame %d", ErrNotOwner, pfn)
	}
	if state != Unused {
		return fmt.Errorf("%w: frame %d is %s", ErrFrameBusy, pfn, state)
	}
	if err := c.fa.ramtab.Release(pfn); err != nil {
		return err
	}
	c.stack.Remove(pfn)
	c.n--
	c.fa.pushTail(pfn)
	c.updateGauges()
	c.fa.freed.Broadcast()
	return nil
}

// pickVictim selects the domain to revoke from: the one holding the most
// optimistic frames. Only domains with optimistically allocated frames are
// candidates.
func (fa *FramesAllocator) pickVictim() *Client {
	var victim *Client
	var victimExcess uint64
	for _, c := range fa.clients {
		if c.killed || c.n <= c.contract.Guaranteed {
			continue
		}
		excess := c.n - c.contract.Guaranteed
		if victim == nil || excess > victimExcess ||
			(excess == victimExcess && c.domain < victim.domain) {
			victim, victimExcess = c, excess
		}
	}
	return victim
}

// ensureRevocation starts a revocation round if none is running. requester
// is the within-guarantee client whose allocation found memory exhausted —
// a guarantee violation the audit log records against the over-guarantee
// holder about to be revoked from.
func (fa *FramesAllocator) ensureRevocation(requester *Client) {
	victim := fa.pickVictim()
	if victim == nil {
		return // nothing revocable; guarantees invariant says this cannot
		// happen for a within-guarantee request, but be safe
	}
	if requester != nil && victim != requester {
		fa.obs.Audit(obs.AuditGuaranteeViolation, victim.label, requester.label,
			int(victim.n-victim.contract.Guaranteed),
			"within-guarantee allocation found memory exhausted")
	}
	// Revoke a single frame per round; rounds repeat as needed.
	fa.revokeFrom(victim, 1)
}

// RequestRevocation directs a revocation round of k frames at a specific
// client — the hook a global-performance policy (rebalancer) uses to move
// optimistic frames from idle domains to thrashing ones. Only frames above
// the victim's guarantee may be taken.
func (fa *FramesAllocator) RequestRevocation(victim DomainID, k int) error {
	c, ok := fa.clients[victim]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownClient, victim)
	}
	if c.killed || c.n <= c.contract.Guaranteed {
		return fmt.Errorf("mem: domain %d has no optimistic frames", victim)
	}
	if excess := int(c.n - c.contract.Guaranteed); k > excess {
		k = excess
	}
	fa.revokeFrom(c, k)
	return nil
}

// revokeFrom runs one revocation round (transparent, else intrusive)
// against victim for k frames. A no-op while another round is in flight.
func (fa *FramesAllocator) revokeFrom(victim *Client, k int) {
	if fa.revoking {
		return
	}
	fa.revoking = true
	fa.obs.Audit(obs.AuditRevokeBegin, victim.label, "", k, "")

	// Transparent revocation: if the top of the victim's stack is unused,
	// reclaim it without troubling the application.
	if got := fa.reclaimTopUnused(victim, k); got > 0 {
		fa.obs.Audit(obs.AuditRevokeTransparent, victim.label, "", got, "")
		if got >= k {
			fa.cTransparent.Inc()
			fa.obs.Audit(obs.AuditRevokeComplete, victim.label, "", got, "transparent")
			fa.revoking = false
			return
		}
		k -= got
	}

	// Intrusive revocation: notify and give the victim until T.
	deadline := fa.sim.Now().Add(fa.RevocationTimeout)
	victim.pendingK = k
	victim.pendingDeadline = deadline
	victim.pendingSince = fa.sim.Now()
	victim.pendingTimer = fa.sim.At(deadline, func() { fa.revocationTimeout(victim) })
	fa.obs.Audit(obs.AuditRevokeIntrusive, victim.label, "", k,
		fmt.Sprintf("deadline %.1fms", deadline.Milliseconds()))
	if victim.handler != nil {
		victim.handler.RevokeNotification(k, deadline)
	}
	// No handler: the timeout will kill the domain — using optimistic
	// frames without handling revocation is a contract violation.
}

// reclaimTopUnused reclaims up to k unused frames from the top of the
// victim's stack, returning how many it got.
func (fa *FramesAllocator) reclaimTopUnused(victim *Client, k int) int {
	got := 0
	for got < k {
		top := victim.stack.Top(1)
		if len(top) == 0 {
			break
		}
		state, err := fa.ramtab.State(top[0].PFN)
		if err != nil || state != Unused {
			break
		}
		pfn := top[0].PFN
		fa.ramtab.Release(pfn)
		victim.stack.Remove(pfn)
		victim.n--
		fa.pushTail(pfn)
		got++
	}
	if got > 0 {
		victim.updateGauges()
		fa.freed.Broadcast()
	}
	return got
}

// RevocationComplete is called by the victim domain once it has arranged
// for the top k frames of its stack to be unused. The allocator verifies
// and reclaims; non-compliance kills the domain.
func (c *Client) RevocationComplete() {
	fa := c.fa
	if c.pendingK == 0 {
		return
	}
	k := c.pendingK
	c.pendingTimer.Stop()
	c.pendingK = 0
	fa.cIntrusive.Inc()
	fa.hRevoke.Observe(fa.sim.Now().Sub(c.pendingSince))
	if fa.reclaimTopUnused(c, k) < k {
		fa.kill(c)
	} else {
		fa.obs.Audit(obs.AuditRevokeComplete, c.label, "", k, "intrusive")
	}
	fa.revoking = false
}

// revocationTimeout fires when the victim failed to comply by T.
func (fa *FramesAllocator) revocationTimeout(victim *Client) {
	if victim.pendingK == 0 || victim.killed {
		return
	}
	victim.pendingK = 0
	fa.cTimeouts.Inc()
	fa.obs.Audit(obs.AuditRevokeTimeout, victim.label, "", 0, "revocation deadline passed")
	fa.kill(victim)
	fa.revoking = false
}

// kill reclaims every frame of a non-compliant domain and notifies the
// system so the domain itself can be destroyed.
func (fa *FramesAllocator) kill(c *Client) {
	c.killed = true
	fa.obs.Audit(obs.AuditRevokeKill, c.label, "", int(c.n), "non-compliant revocation")
	for _, pfn := range fa.ramtab.OwnedBy(c.domain) {
		// Force release regardless of state: the domain is dead.
		fa.ramtab.entries[pfn] = ramtabEntry{}
		fa.pushTail(pfn)
	}
	c.stack.entries = nil
	c.n = 0
	c.updateGauges()
	if fa.OnKill != nil {
		fa.OnKill(c.domain)
	}
	fa.freed.Broadcast()
}
