package mem

import "fmt"

// FrameState is the RamTab's record of how a frame of main memory is
// currently used. The low-level translation system refuses to map a frame
// that is not Unused, and refuses to unmap one that is Nailed.
type FrameState uint8

const (
	// Free frames belong to the frames allocator.
	Free FrameState = iota
	// Unused frames are owned by a domain but not mapped; they are what
	// transparent revocation can reclaim.
	Unused
	// Mapped frames back at least one virtual page.
	Mapped
	// Nailed frames are pinned (nailed stretch drivers, DMA) and cannot
	// be unmapped or revoked.
	Nailed
)

func (s FrameState) String() string {
	switch s {
	case Free:
		return "free"
	case Unused:
		return "unused"
	case Mapped:
		return "mapped"
	case Nailed:
		return "nailed"
	default:
		return fmt.Sprintf("state(%d)", s)
	}
}

// ramtabEntry is one frame's record: owner, state and logical frame width
// (log2 of the frame size in pages — 0 for normal pages, >0 for superpage
// candidates).
type ramtabEntry struct {
	owner DomainID
	state FrameState
	width uint8
}

// RamTab is the simple data structure the paper describes: it records the
// owner and logical frame width of allocated frames and the current use of
// each frame. It is deliberately simple enough to be consulted by low-level
// (translation system) code.
type RamTab struct {
	entries []ramtabEntry
}

// NewRamTab creates a RamTab covering nframes frames, all Free.
func NewRamTab(nframes int) *RamTab {
	return &RamTab{entries: make([]ramtabEntry, nframes)}
}

// NFrames returns the number of frames covered.
func (rt *RamTab) NFrames() int { return len(rt.entries) }

// valid reports whether pfn is in range.
func (rt *RamTab) valid(pfn PFN) bool { return int(pfn) < len(rt.entries) }

// Owner returns the owning domain of pfn (meaningless for Free frames).
func (rt *RamTab) Owner(pfn PFN) (DomainID, error) {
	if !rt.valid(pfn) {
		return 0, fmt.Errorf("%w: %d", ErrBadFrame, pfn)
	}
	return rt.entries[pfn].owner, nil
}

// State returns the frame's state.
func (rt *RamTab) State(pfn PFN) (FrameState, error) {
	if !rt.valid(pfn) {
		return 0, fmt.Errorf("%w: %d", ErrBadFrame, pfn)
	}
	return rt.entries[pfn].state, nil
}

// Width returns the logical frame width.
func (rt *RamTab) Width(pfn PFN) (uint8, error) {
	if !rt.valid(pfn) {
		return 0, fmt.Errorf("%w: %d", ErrBadFrame, pfn)
	}
	return rt.entries[pfn].width, nil
}

// SetWidth records the logical frame width of pfn (log2 pages of the
// superpage block it participates in).
func (rt *RamTab) SetWidth(pfn PFN, width uint8) error {
	if !rt.valid(pfn) {
		return fmt.Errorf("%w: %d", ErrBadFrame, pfn)
	}
	rt.entries[pfn].width = width
	return nil
}

// Grant records a frame's transfer from the allocator to a domain.
func (rt *RamTab) Grant(pfn PFN, owner DomainID, width uint8) error {
	if !rt.valid(pfn) {
		return fmt.Errorf("%w: %d", ErrBadFrame, pfn)
	}
	rt.entries[pfn] = ramtabEntry{owner: owner, state: Unused, width: width}
	return nil
}

// Release returns a frame to the allocator. Mapped or nailed frames cannot
// be released.
func (rt *RamTab) Release(pfn PFN) error {
	if !rt.valid(pfn) {
		return fmt.Errorf("%w: %d", ErrBadFrame, pfn)
	}
	if s := rt.entries[pfn].state; s == Mapped || s == Nailed {
		return fmt.Errorf("%w: %d is %s", ErrFrameBusy, pfn, s)
	}
	rt.entries[pfn] = ramtabEntry{}
	return nil
}

// SetState transitions a frame's usage state on behalf of owner. The
// transition rules encode the validation the low-level translation system
// performs: only the owner may transition its frames; a Mapped/Nailed frame
// must pass through Unused via an explicit unmap; Free frames belong to the
// allocator and cannot be touched.
func (rt *RamTab) SetState(pfn PFN, owner DomainID, to FrameState) error {
	if !rt.valid(pfn) {
		return fmt.Errorf("%w: %d", ErrBadFrame, pfn)
	}
	e := &rt.entries[pfn]
	if e.state == Free {
		return fmt.Errorf("%w: frame %d is free", ErrNotOwner, pfn)
	}
	if e.owner != owner {
		return fmt.Errorf("%w: frame %d owned by domain %d, caller %d", ErrNotOwner, pfn, e.owner, owner)
	}
	switch {
	case e.state == to:
		return nil // idempotent
	case e.state == Unused && (to == Mapped || to == Nailed):
		// Fresh mapping or pinning an unused frame.
	case e.state == Mapped && (to == Unused || to == Nailed):
		// Unmapping, or pinning an already-mapped frame (nailed stretch
		// drivers nail after mapping).
	case e.state == Nailed && to == Unused:
		// Unnailing is permitted only for the owner and is how a nailed
		// driver winds down; mapping state is the caller's problem.
	default:
		return fmt.Errorf("%w: frame %d %s -> %s", ErrFrameBusy, pfn, e.state, to)
	}
	e.state = to
	return nil
}

// OwnedBy returns all frames owned by domain, ascending.
func (rt *RamTab) OwnedBy(domain DomainID) []PFN {
	var out []PFN
	for i, e := range rt.entries {
		if e.state != Free && e.owner == domain {
			out = append(out, PFN(i))
		}
	}
	return out
}
