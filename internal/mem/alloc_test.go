package mem

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"nemesis/internal/sim"
)

func newAlloc(nframes int) (*sim.Simulator, *FramesAllocator) {
	s := sim.New(1)
	store := NewFrameStore(nframes)
	return s, NewFramesAllocator(s, store, NewRamTab(nframes))
}

func TestAdmissionControlFrames(t *testing.T) {
	_, fa := newAlloc(10)
	if _, err := fa.Admit(1, Contract{Guaranteed: 6}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := fa.Admit(2, Contract{Guaranteed: 5}, nil); !errors.Is(err, ErrOverbooked) {
		t.Fatalf("err = %v", err)
	}
	// Optimistic quota is not admission-controlled.
	if _, err := fa.Admit(3, Contract{Guaranteed: 4, Optimistic: 100}, nil); err != nil {
		t.Fatal(err)
	}
	if fa.GuaranteedTotal() != 10 {
		t.Fatalf("GuaranteedTotal = %d", fa.GuaranteedTotal())
	}
	if _, err := fa.Admit(1, Contract{}, nil); err == nil {
		t.Fatal("duplicate admit")
	}
}

// TestSentinelErrors: the canonical sentinel names are reachable via
// errors.Is, and the historical ErrQuota alias still matches.
func TestSentinelErrors(t *testing.T) {
	_, fa := newAlloc(4)
	c, _ := fa.Admit(1, Contract{Guaranteed: 2}, nil)
	c.TryAllocFrame()
	c.TryAllocFrame()
	_, err := c.TryAllocFrame()
	if !errors.Is(err, ErrContractExhausted) {
		t.Fatalf("not ErrContractExhausted: %v", err)
	}
	if !errors.Is(err, ErrQuota) {
		t.Fatalf("ErrQuota alias broken: %v", err)
	}
	if _, err := fa.Admit(1, Contract{}, nil); !errors.Is(err, ErrAlreadyAdmitted) {
		t.Fatalf("not ErrAlreadyAdmitted: %v", err)
	}
}

func TestGuaranteedAllocationAlwaysSucceeds(t *testing.T) {
	_, fa := newAlloc(8)
	c, _ := fa.Admit(1, Contract{Guaranteed: 5}, nil)
	for i := 0; i < 5; i++ {
		if _, err := c.TryAllocFrame(); err != nil {
			t.Fatalf("guaranteed alloc %d failed: %v", i, err)
		}
	}
	if c.Allocated() != 5 {
		t.Fatalf("n = %d", c.Allocated())
	}
	// Beyond g+o: quota error.
	if _, err := c.TryAllocFrame(); !errors.Is(err, ErrQuota) {
		t.Fatalf("err = %v", err)
	}
	if fa.FreeFrames() != 3 {
		t.Fatalf("free = %d", fa.FreeFrames())
	}
}

func TestOptimisticAllocation(t *testing.T) {
	_, fa := newAlloc(8)
	c, _ := fa.Admit(1, Contract{Guaranteed: 2, Optimistic: 4}, nil)
	for i := 0; i < 6; i++ {
		if _, err := c.TryAllocFrame(); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if !c.HoldsOptimistic() {
		t.Fatal("HoldsOptimistic = false")
	}
	if _, err := c.TryAllocFrame(); !errors.Is(err, ErrQuota) {
		t.Fatalf("err = %v", err)
	}
}

func TestOptimisticFailsWhenMemoryTight(t *testing.T) {
	s, fa := newAlloc(4)
	a, _ := fa.Admit(1, Contract{Guaranteed: 4}, nil)
	b, _ := fa.Admit(2, Contract{Guaranteed: 0, Optimistic: 4}, nil)
	for i := 0; i < 4; i++ {
		a.TryAllocFrame()
	}
	// b's optimistic request must fail immediately, with no revocation.
	if _, err := b.TryAllocFrame(); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("err = %v", err)
	}
	var blockErr error
	s.Spawn("b", func(p *sim.Proc) {
		_, blockErr = b.AllocFrame(p)
	})
	s.RunFor(time.Second)
	if !errors.Is(blockErr, ErrNoMemory) {
		t.Fatalf("AllocFrame err = %v", blockErr)
	}
}

func TestAllocSpecificAndRegion(t *testing.T) {
	_, fa := newAlloc(16)
	c, _ := fa.Admit(1, Contract{Guaranteed: 8}, nil)
	if err := c.AllocSpecific(7); err != nil {
		t.Fatal(err)
	}
	if err := c.AllocSpecific(7); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("double specific alloc: %v", err)
	}
	pfn, err := c.AllocInRegion(10, 12)
	if err != nil || pfn < 10 || pfn >= 12 {
		t.Fatalf("AllocInRegion = %d, %v", pfn, err)
	}
	if _, err := c.AllocInRegion(100, 200); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("out-of-range region: %v", err)
	}
	if owner, _ := fa.RamTab().Owner(7); owner != 1 {
		t.Fatal("ramtab owner not set")
	}
	if !c.Stack().Contains(7) || !c.Stack().Contains(pfn) {
		t.Fatal("allocated frames not on stack")
	}
}

func TestFreeFrame(t *testing.T) {
	_, fa := newAlloc(4)
	c, _ := fa.Admit(1, Contract{Guaranteed: 2}, nil)
	pfn, _ := c.TryAllocFrame()
	if err := c.FreeFrame(pfn); err != nil {
		t.Fatal(err)
	}
	if c.Allocated() != 0 || fa.FreeFrames() != 4 {
		t.Fatalf("n=%d free=%d", c.Allocated(), fa.FreeFrames())
	}
	// Double free fails.
	if err := c.FreeFrame(pfn); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("double free: %v", err)
	}
	// Mapped frames cannot be freed.
	pfn2, _ := c.TryAllocFrame()
	fa.RamTab().SetState(pfn2, 1, Mapped)
	if err := c.FreeFrame(pfn2); !errors.Is(err, ErrFrameBusy) {
		t.Fatalf("freed mapped frame: %v", err)
	}
}

func TestFreeFrameOfOtherDomain(t *testing.T) {
	_, fa := newAlloc(4)
	a, _ := fa.Admit(1, Contract{Guaranteed: 2}, nil)
	b, _ := fa.Admit(2, Contract{Guaranteed: 2}, nil)
	pfn, _ := a.TryAllocFrame()
	if err := b.FreeFrame(pfn); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("cross-domain free: %v", err)
	}
}

// TestTransparentRevocation: a guaranteed request reclaims an unused
// optimistic frame from another domain without involving it.
func TestTransparentRevocation(t *testing.T) {
	s, fa := newAlloc(4)
	hog, _ := fa.Admit(1, Contract{Guaranteed: 1, Optimistic: 3}, nil)
	needy, _ := fa.Admit(2, Contract{Guaranteed: 3}, nil)
	for i := 0; i < 4; i++ {
		hog.TryAllocFrame() // all memory, 3 optimistic, all Unused
	}
	var got []PFN
	s.Spawn("needy", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			pfn, err := needy.AllocFrame(p)
			if err != nil {
				t.Errorf("alloc %d: %v", i, err)
				return
			}
			got = append(got, pfn)
		}
	})
	s.RunFor(time.Second)
	if len(got) != 3 {
		t.Fatalf("got %d frames", len(got))
	}
	if hog.Allocated() != 1 {
		t.Fatalf("hog retains %d frames, want 1 (its guarantee)", hog.Allocated())
	}
	if hog.Killed() {
		t.Fatal("transparent revocation killed the victim")
	}
}

// revocableApp models a cooperative domain: on notification it unmaps (after
// a cleaning delay) the top k frames and completes the protocol.
type revocableApp struct {
	s        *sim.Simulator
	fa       *FramesAllocator
	c        *Client
	cleaning time.Duration
	notified int
}

func (r *revocableApp) RevokeNotification(k int, deadline sim.Time) {
	r.notified++
	r.s.Spawn("revoke-worker", func(p *sim.Proc) {
		p.Sleep(r.cleaning) // "clean some dirty pages"
		for _, e := range r.c.Stack().Top(k) {
			r.fa.RamTab().SetState(e.PFN, r.c.Domain(), Unused)
		}
		r.c.RevocationComplete()
	})
}

// TestIntrusiveRevocation: the victim's frames are mapped, so the allocator
// must notify and wait; the victim cleans and completes in time.
func TestIntrusiveRevocation(t *testing.T) {
	s, fa := newAlloc(4)
	hog, _ := fa.Admit(1, Contract{Guaranteed: 1, Optimistic: 3}, nil)
	app := &revocableApp{s: s, fa: fa, cleaning: 20 * time.Millisecond}
	app.c = hog
	hog.handler = app
	needy, _ := fa.Admit(2, Contract{Guaranteed: 2}, nil)
	for i := 0; i < 4; i++ {
		pfn, _ := hog.TryAllocFrame()
		fa.RamTab().SetState(pfn, 1, Mapped) // dirty: transparent impossible
	}
	var got []PFN
	var allocAt sim.Time
	s.Spawn("needy", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			pfn, err := needy.AllocFrame(p)
			if err != nil {
				t.Errorf("alloc: %v", err)
				return
			}
			got = append(got, pfn)
		}
		allocAt = p.Now()
	})
	s.RunFor(time.Second)
	if len(got) != 2 {
		t.Fatalf("got %d frames", len(got))
	}
	if app.notified != 2 {
		t.Fatalf("notified %d times, want 2 (one per frame)", app.notified)
	}
	if hog.Killed() {
		t.Fatal("cooperative victim was killed")
	}
	if hog.Allocated() != 2 {
		t.Fatalf("hog holds %d", hog.Allocated())
	}
	// Both rounds each took ~20ms of cleaning.
	if allocAt < sim.Time(40*time.Millisecond) {
		t.Fatalf("allocation completed too early: %v", allocAt)
	}
}

// TestRevocationTimeoutKills: a victim that ignores the notification is
// killed at the deadline and all its frames reclaimed.
func TestRevocationTimeoutKills(t *testing.T) {
	s, fa := newAlloc(4)
	var killed []DomainID
	fa.OnKill = func(d DomainID) { killed = append(killed, d) }
	hog, _ := fa.Admit(1, Contract{Guaranteed: 1, Optimistic: 3}, nil) // no handler
	needy, _ := fa.Admit(2, Contract{Guaranteed: 2}, nil)
	for i := 0; i < 4; i++ {
		pfn, _ := hog.TryAllocFrame()
		fa.RamTab().SetState(pfn, 1, Mapped)
	}
	var got []PFN
	s.Spawn("needy", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			pfn, err := needy.AllocFrame(p)
			if err != nil {
				t.Errorf("alloc: %v", err)
				return
			}
			got = append(got, pfn)
		}
	})
	s.RunFor(time.Second)
	if len(got) != 2 {
		t.Fatalf("got %d frames", len(got))
	}
	if !hog.Killed() {
		t.Fatal("non-compliant victim not killed")
	}
	if len(killed) != 1 || killed[0] != 1 {
		t.Fatalf("killed = %v", killed)
	}
	if hog.Allocated() != 0 {
		t.Fatalf("dead domain holds %d frames", hog.Allocated())
	}
	// Dead domains cannot allocate.
	if _, err := hog.TryAllocFrame(); !errors.Is(err, ErrKilledByAlloc) {
		t.Fatalf("err = %v", err)
	}
}

// TestNonCompliantCompletionKills: replying without actually unmapping the
// frames also kills the domain.
func TestNonCompliantCompletionKills(t *testing.T) {
	s, fa := newAlloc(4)
	hog, _ := fa.Admit(1, Contract{Guaranteed: 1, Optimistic: 3}, nil)
	lazy := &lazyApp{c: nil}
	hog.handler = lazy
	lazy.c = hog
	needy, _ := fa.Admit(2, Contract{Guaranteed: 2}, nil)
	for i := 0; i < 4; i++ {
		pfn, _ := hog.TryAllocFrame()
		fa.RamTab().SetState(pfn, 1, Mapped)
	}
	s.Spawn("needy", func(p *sim.Proc) { needy.AllocFrame(p) })
	s.RunFor(time.Second)
	if !hog.Killed() {
		t.Fatal("lying victim not killed")
	}
}

type lazyApp struct{ c *Client }

func (l *lazyApp) RevokeNotification(k int, deadline sim.Time) {
	// Reply immediately without making any frames unused.
	l.c.RevocationComplete()
}

func TestRemoveClient(t *testing.T) {
	_, fa := newAlloc(4)
	c, _ := fa.Admit(1, Contract{Guaranteed: 2}, nil)
	pfn, _ := c.TryAllocFrame()
	if err := fa.Remove(1); err == nil {
		t.Fatal("removed client holding frames")
	}
	c.FreeFrame(pfn)
	if err := fa.Remove(1); err != nil {
		t.Fatal(err)
	}
	if err := fa.Remove(1); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("err = %v", err)
	}
	if fa.Lookup(1) != nil {
		t.Fatal("Lookup after remove")
	}
}

// Property: frame conservation — free + sum(allocated) == total under any
// interleaving of allocations and frees.
func TestFrameConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		_, fa := newAlloc(32)
		a, _ := fa.Admit(1, Contract{Guaranteed: 8, Optimistic: 8}, nil)
		b, _ := fa.Admit(2, Contract{Guaranteed: 8, Optimistic: 8}, nil)
		var held []struct {
			c   *Client
			pfn PFN
		}
		for i, op := range ops {
			c := a
			if op%2 == 1 {
				c = b
			}
			if i%3 != 2 {
				if pfn, err := c.TryAllocFrame(); err == nil {
					held = append(held, struct {
						c   *Client
						pfn PFN
					}{c, pfn})
				}
			} else if len(held) > 0 {
				h := held[0]
				held = held[1:]
				if h.c.FreeFrame(h.pfn) != nil {
					return false
				}
			}
			if uint64(fa.FreeFrames())+a.Allocated()+b.Allocated() != 32 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocColoured(t *testing.T) {
	_, fa := newAlloc(16)
	c, _ := fa.Admit(1, Contract{Guaranteed: 8}, nil)
	for colour := 0; colour < 4; colour++ {
		pfn, err := c.AllocColoured(colour, 4)
		if err != nil {
			t.Fatalf("colour %d: %v", colour, err)
		}
		if int(pfn)%4 != colour {
			t.Fatalf("pfn %d has colour %d, want %d", pfn, int(pfn)%4, colour)
		}
	}
	if _, err := c.AllocColoured(4, 4); err == nil {
		t.Fatal("bad colour accepted")
	}
	if _, err := c.AllocColoured(-1, 4); err == nil {
		t.Fatal("negative colour accepted")
	}
	// Exhaust one colour: 16 frames / 4 colours = 4 of colour 0; one taken.
	c.AllocColoured(0, 4)
	c.AllocColoured(0, 4)
	c.AllocColoured(0, 4)
	if _, err := c.AllocColoured(0, 4); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("err = %v", err)
	}
}

func TestAllocContiguous(t *testing.T) {
	_, fa := newAlloc(32)
	c, _ := fa.Admit(1, Contract{Guaranteed: 16, Optimistic: 100}, nil)
	base, err := c.AllocContiguous(8)
	if err != nil {
		t.Fatal(err)
	}
	if base%8 != 0 {
		t.Fatalf("base %d not aligned to 8", base)
	}
	if c.Allocated() != 8 {
		t.Fatalf("allocated = %d", c.Allocated())
	}
	for i := PFN(0); i < 8; i++ {
		if o, _ := fa.RamTab().Owner(base + i); o != 1 {
			t.Fatalf("frame %d not owned", base+i)
		}
	}
	// Non-power-of-two rejected.
	if _, err := c.AllocContiguous(6); err == nil {
		t.Fatal("n=6 accepted")
	}
	if _, err := c.AllocContiguous(0); err == nil {
		t.Fatal("n=0 accepted")
	}
	// Fragment memory, then ask for a run that cannot exist.
	for i := 0; i < 3; i++ {
		c.AllocContiguous(8)
	}
	if _, err := c.AllocContiguous(8); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("err = %v", err)
	}
}

func TestAllocContiguousFindsHoleAfterFrees(t *testing.T) {
	_, fa := newAlloc(16)
	c, _ := fa.Admit(1, Contract{Guaranteed: 16}, nil)
	base, _ := c.AllocContiguous(8) // [0,8)
	// Free the run out of order; a fresh aligned request must find it.
	for _, off := range []PFN{3, 0, 7, 1, 2, 6, 5, 4} {
		if err := c.FreeFrame(base + off); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.AllocContiguous(8)
	if err != nil {
		t.Fatal(err)
	}
	if got != base {
		t.Fatalf("got %d, want %d", got, base)
	}
}
