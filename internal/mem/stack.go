package mem

import "fmt"

// StackEntry is one frame on a domain's frame stack, together with the
// local information stretch drivers store there (the paper notes the frame
// stack "provides a useful place for stretch drivers to store local
// information about mappings"): the virtual address the frame currently
// backs, if any.
type StackEntry struct {
	PFN PFN
	VA  uint64 // 0 when unmapped
}

// FrameStack is the system-allocated, application-writable structure
// recording a domain's physical frames ordered by revocation preference:
// index 0 is the top — the frame the domain is most prepared to lose. The
// frames allocator always revokes from the top, so applications keep their
// preferred revocation order by reordering the stack.
type FrameStack struct {
	entries []StackEntry
}

// Len returns the number of frames on the stack.
func (st *FrameStack) Len() int { return len(st.entries) }

// Entries returns the stack contents, top first. The slice is the live
// backing store — the stack is application-writable by design.
func (st *FrameStack) Entries() []StackEntry { return st.entries }

// Top returns the top k entries (fewer if the stack is shorter).
func (st *FrameStack) Top(k int) []StackEntry {
	if k > len(st.entries) {
		k = len(st.entries)
	}
	return st.entries[:k]
}

// index returns the position of pfn, or -1.
func (st *FrameStack) index(pfn PFN) int {
	for i, e := range st.entries {
		if e.PFN == pfn {
			return i
		}
	}
	return -1
}

// Contains reports whether pfn is on the stack.
func (st *FrameStack) Contains(pfn PFN) bool { return st.index(pfn) >= 0 }

// PushTop adds a frame at the top (most revocable). Freshly allocated,
// still-unused frames belong here.
func (st *FrameStack) PushTop(pfn PFN) {
	st.entries = append(st.entries, StackEntry{})
	copy(st.entries[1:], st.entries)
	st.entries[0] = StackEntry{PFN: pfn}
}

// PushBottom adds a frame at the bottom (least revocable).
func (st *FrameStack) PushBottom(pfn PFN) {
	st.entries = append(st.entries, StackEntry{PFN: pfn})
}

// Remove deletes pfn from the stack.
func (st *FrameStack) Remove(pfn PFN) error {
	i := st.index(pfn)
	if i < 0 {
		return fmt.Errorf("%w: %d not on stack", ErrBadFrame, pfn)
	}
	copy(st.entries[i:], st.entries[i+1:])
	st.entries = st.entries[:len(st.entries)-1]
	return nil
}

// MoveToTop makes pfn the most revocable frame. The move shifts entries in
// place: the stack sits on every fault's map path, so it must not allocate.
func (st *FrameStack) MoveToTop(pfn PFN) error {
	i := st.index(pfn)
	if i < 0 {
		return fmt.Errorf("%w: %d not on stack", ErrBadFrame, pfn)
	}
	e := st.entries[i]
	copy(st.entries[1:i+1], st.entries[:i])
	st.entries[0] = e
	return nil
}

// MoveToBottom makes pfn the least revocable frame (e.g. just mapped hot).
func (st *FrameStack) MoveToBottom(pfn PFN) error {
	i := st.index(pfn)
	if i < 0 {
		return fmt.Errorf("%w: %d not on stack", ErrBadFrame, pfn)
	}
	e := st.entries[i]
	copy(st.entries[i:], st.entries[i+1:])
	st.entries[len(st.entries)-1] = e
	return nil
}

// SetVA records the virtual address pfn currently backs (0 = none). This is
// the stretch-driver bookkeeping slot.
func (st *FrameStack) SetVA(pfn PFN, va uint64) error {
	i := st.index(pfn)
	if i < 0 {
		return fmt.Errorf("%w: %d not on stack", ErrBadFrame, pfn)
	}
	st.entries[i].VA = va
	return nil
}

// VA returns the recorded virtual address for pfn.
func (st *FrameStack) VA(pfn PFN) (uint64, error) {
	i := st.index(pfn)
	if i < 0 {
		return 0, fmt.Errorf("%w: %d not on stack", ErrBadFrame, pfn)
	}
	return st.entries[i].VA, nil
}

// PopTop removes and returns the top entry.
func (st *FrameStack) PopTop() (StackEntry, bool) {
	if len(st.entries) == 0 {
		return StackEntry{}, false
	}
	e := st.entries[0]
	copy(st.entries, st.entries[1:])
	st.entries = st.entries[:len(st.entries)-1]
	return e, true
}
