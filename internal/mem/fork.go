package mem

import (
	"fmt"

	"nemesis/internal/obs"
	"nemesis/internal/sim"
)

// Fork returns a deep copy of the frame store. Touched frames are copied
// outright — frame contents are live mutable memory on both sides of a fork,
// so unlike disk chunks they cannot be shared copy-on-write without putting
// a check on every byte access. bytes reports how much was copied.
func (fs *FrameStore) Fork() (nfs *FrameStore, bytes int64) {
	nfs = &FrameStore{nframes: fs.nframes, data: make([][]byte, fs.nframes)}
	for i, f := range fs.data {
		if f != nil {
			nf := make([]byte, PageSize)
			copy(nf, f)
			nfs.data[i] = nf
			bytes += PageSize
		}
	}
	return nfs, bytes
}

// Fork returns a deep copy of the frame-state table.
func (rt *RamTab) Fork() *RamTab {
	return &RamTab{entries: append([]ramtabEntry(nil), rt.entries...)}
}

// SetHandler rebinds the client's revocation handler. Forks use it to point
// a copied client at the forked domain's handler instead of the parent's.
func (c *Client) SetHandler(h RevocationHandler) { c.handler = h }

// FreeOrder returns the PFNs of the global free list in FIFO order. A fork
// must preserve the list exactly — future allocations pop the same frames in
// the same order on both sides — and snapshot tests compare it element-wise.
func (fa *FramesAllocator) FreeOrder() []PFN {
	out := make([]PFN, 0, fa.nfree)
	for i := fa.freeHead; i >= 0; i = fa.nodes[i].next {
		out = append(out, PFN(i))
	}
	return out
}

// Fork returns a deep copy of the allocator over the forked store/ramtab,
// attached to the forked simulator and registry. Every client is copied —
// contract, allocation count, frame stack (including the stretch-driver VA
// bookkeeping) — and registered under the same domain ID, so
// fa.Fork(...).Lookup(id) finds the forked twin of fa.Lookup(id).
//
// Preconditions: no revocation round may be in flight (the fork point is a
// quiesced instant; a pending intrusive revocation holds a timer and an
// obligation on a specific victim, which cannot be replayed faithfully).
// The copied clients keep the parent's RevocationHandler pointers; the
// caller must SetHandler each one to its forked domain, and must rebind
// OnKill to the forked system.
func (fa *FramesAllocator) Fork(s *sim.Simulator, store *FrameStore, ramtab *RamTab, r *obs.Registry) (*FramesAllocator, error) {
	if fa.revoking {
		return nil, fmt.Errorf("mem: cannot fork with a revocation in flight")
	}
	for _, c := range fa.clients {
		if c.pendingK != 0 {
			return nil, fmt.Errorf("mem: cannot fork with a pending revocation against domain %d", c.domain)
		}
	}
	nfa := &FramesAllocator{
		sim:               s,
		store:             store,
		ramtab:            ramtab,
		nodes:             append([]freeNode(nil), fa.nodes...),
		freeHead:          fa.freeHead,
		freeTail:          fa.freeTail,
		colourHead:        append([]int32(nil), fa.colourHead...),
		colourTail:        append([]int32(nil), fa.colourTail...),
		ncolours:          fa.ncolours,
		nfree:             fa.nfree,
		freeBits:          append([]uint64(nil), fa.freeBits...),
		guaranteed:        fa.guaranteed,
		clients:           make(map[DomainID]*Client, len(fa.clients)),
		freed:             sim.NewCond(s),
		RevocationTimeout: fa.RevocationTimeout,
	}
	if r != nil {
		nfa.SetObs(r)
	}
	for id, c := range fa.clients {
		nc := &Client{
			fa:       nfa,
			domain:   c.domain,
			contract: c.contract,
			n:        c.n,
			stack:    FrameStack{entries: append([]StackEntry(nil), c.stack.entries...)},
			handler:  c.handler,
			killed:   c.killed,
			label:    c.label,
		}
		if nfa.obs != nil {
			nc.initTelemetry(nc.label)
		}
		nfa.clients[id] = nc
	}
	return nfa, nil
}
