// Package mem implements the physical-memory side of the Nemesis VM system:
// the frame store (simulated RAM with real contents), the RamTab recording
// per-frame ownership and state, per-domain frame stacks ordered by
// revocation preference, and the frames allocator with guaranteed/optimistic
// contracts and the two-phase (transparent/intrusive) revocation protocol.
package mem

import (
	"errors"
	"fmt"
)

// PageSize is the machine page size: 8 KB, as on the Alpha 21164 the paper
// evaluates on. Frames and pages share this size (logical frame width 0).
const PageSize = 8192

// PFN is a physical frame number.
type PFN uint64

// DomainID identifies a Nemesis domain (the analogue of a process). Domain
// 0 is the system domain.
type DomainID uint32

// SystemDomain is the distinguished system domain.
const SystemDomain DomainID = 0

// Errors returned by the physical memory subsystem. All are sentinels:
// callers match with errors.Is, never by string.
var (
	ErrNoMemory = errors.New("mem: out of physical memory")
	// ErrContractExhausted reports an allocation beyond the client's
	// contracted g+o frames.
	ErrContractExhausted = errors.New("mem: allocation would exceed contracted quota")
	ErrOverbooked        = errors.New("mem: admission would overcommit guaranteed frames")
	ErrNotOwner          = errors.New("mem: frame not owned by caller")
	ErrBadFrame          = errors.New("mem: frame number out of range")
	ErrFrameBusy         = errors.New("mem: frame is mapped or nailed")
	ErrUnknownClient     = errors.New("mem: unknown client domain")
	ErrAlreadyAdmitted   = errors.New("mem: domain already admitted")
	ErrKilledByAlloc     = errors.New("mem: domain killed for failing revocation")
)

// ErrQuota is the historical name for ErrContractExhausted; errors.Is
// matches either.
var ErrQuota = ErrContractExhausted

// FrameStore is the simulated physical memory: nframes frames of PageSize
// bytes, allocated lazily so large memories cost only what is touched.
type FrameStore struct {
	nframes int
	data    [][]byte
}

// NewFrameStore creates a store of nframes frames.
func NewFrameStore(nframes int) *FrameStore {
	return &FrameStore{nframes: nframes, data: make([][]byte, nframes)}
}

// NFrames returns the number of frames of main memory.
func (fs *FrameStore) NFrames() int { return fs.nframes }

// Frame returns the backing bytes of pfn, allocating them on first touch.
func (fs *FrameStore) Frame(pfn PFN) []byte {
	if int(pfn) >= fs.nframes {
		panic(fmt.Sprintf("mem: frame %d out of range (%d frames)", pfn, fs.nframes))
	}
	if fs.data[pfn] == nil {
		fs.data[pfn] = make([]byte, PageSize)
	}
	return fs.data[pfn]
}

// Zero clears a frame (hardware-assist page zeroing).
func (fs *FrameStore) Zero(pfn PFN) {
	f := fs.Frame(pfn)
	for i := range f {
		f[i] = 0
	}
}
