// Package sim provides the deterministic discrete-event simulation engine
// that underpins the Nemesis reproduction. All "hardware" time in the system
// (CPU costs, disk mechanics, scheduler periods) advances on the simulated
// clock, never on the wall clock, so every experiment is exactly repeatable.
//
// The engine offers two layers:
//
//   - A time-ordered event queue (Simulator.At / Simulator.After) with FIFO
//     ordering among simultaneous events.
//   - A cooperative process model (Simulator.Spawn) in which each process is
//     a goroutine, but exactly one process runs at any instant; control is
//     handed between the scheduler and processes over unbuffered channels.
//     This keeps application-style code (threads that block on page faults,
//     worker threads, schedulers) natural to write while preserving strict
//     determinism.
package sim

import (
	"fmt"
	"time"
)

// Time is an absolute instant on the simulated clock, in nanoseconds since
// the start of the simulation.
type Time int64

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Milliseconds returns t expressed in milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / 1e6 }

// Microseconds returns t expressed in microseconds.
func (t Time) Microseconds() float64 { return float64(t) / 1e3 }

// Duration converts t to a time.Duration measured from the simulation start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string {
	return fmt.Sprintf("%.6fms", t.Milliseconds())
}
