package sim

import (
	"testing"
	"time"
)

func BenchmarkEventDispatch(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, func() {})
		s.Run(s.Now().Add(time.Microsecond))
	}
}

func BenchmarkProcContextSwitch(b *testing.B) {
	s := New(1)
	n := 0
	s.Spawn("switcher", func(p *Proc) {
		for n < b.N {
			p.Sleep(time.Microsecond)
			n++
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	s.RunUntilIdle(b.N + 10)
}

func BenchmarkCondSignalWait(b *testing.B) {
	s := New(1)
	c := NewCond(s)
	n := 0
	s.Spawn("waiter", func(p *Proc) {
		for n < b.N {
			c.Wait(p)
			n++
		}
	})
	s.Spawn("signaller", func(p *Proc) {
		for n < b.N {
			c.Signal()
			p.Sleep(time.Nanosecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	s.RunUntilIdle(4*b.N + 100)
}

func BenchmarkQueueSendRecv(b *testing.B) {
	s := New(1)
	q := NewQueue[int](s, 64)
	n := 0
	s.Spawn("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Send(p, i)
		}
		q.Close()
	})
	s.Spawn("consumer", func(p *Proc) {
		for {
			if _, ok := q.Recv(p); !ok {
				return
			}
			n++
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	s.RunUntilIdle(8*b.N + 100)
}
