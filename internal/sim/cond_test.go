package sim

import (
	"testing"
	"time"
)

func TestCondSignalFIFO(t *testing.T) {
	s := New(1)
	c := NewCond(s)
	var order []string
	for _, name := range []string{"first", "second", "third"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			c.Wait(p)
			order = append(order, name)
		})
	}
	s.At(Time(time.Millisecond), func() {
		c.Signal()
		c.Signal()
		c.Signal()
	})
	s.RunUntilIdle(100)
	want := []string{"first", "second", "third"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestCondSignalNoWaiters(t *testing.T) {
	s := New(1)
	c := NewCond(s)
	if c.Signal() {
		t.Fatal("Signal with no waiters reported true")
	}
}

func TestCondBroadcast(t *testing.T) {
	s := New(1)
	c := NewCond(s)
	woken := 0
	for i := 0; i < 5; i++ {
		s.Spawn("w", func(p *Proc) {
			c.Wait(p)
			woken++
		})
	}
	var n int
	s.At(Time(time.Millisecond), func() { n = c.Broadcast() })
	s.RunUntilIdle(100)
	if n != 5 || woken != 5 {
		t.Fatalf("broadcast woke n=%d, ran=%d", n, woken)
	}
}

func TestCondWaitTimeout(t *testing.T) {
	s := New(1)
	c := NewCond(s)
	var signalled bool
	var at Time
	s.Spawn("w", func(p *Proc) {
		signalled = c.WaitTimeout(p, 5*time.Millisecond)
		at = p.Now()
	})
	s.RunUntilIdle(100)
	if signalled {
		t.Fatal("expected timeout")
	}
	if at != Time(5*time.Millisecond) {
		t.Fatalf("timed out at %v", at)
	}
}

func TestCondWaitTimeoutSignalledFirst(t *testing.T) {
	s := New(1)
	c := NewCond(s)
	var signalled bool
	s.Spawn("w", func(p *Proc) {
		signalled = c.WaitTimeout(p, 5*time.Millisecond)
	})
	s.At(Time(time.Millisecond), func() { c.Signal() })
	s.RunUntilIdle(100)
	if !signalled {
		t.Fatal("expected signal before timeout")
	}
}

func TestCondTimedOutWaiterNotCounted(t *testing.T) {
	s := New(1)
	c := NewCond(s)
	s.Spawn("w", func(p *Proc) {
		c.WaitTimeout(p, time.Millisecond)
		p.Sleep(time.Hour) // stays alive, but no longer waiting on c
	})
	s.Run(Time(10 * time.Millisecond))
	if c.Waiting() != 0 {
		t.Fatalf("Waiting = %d after timeout", c.Waiting())
	}
	// Signalling now must not wake the sleeper early.
	if c.Signal() {
		t.Fatal("Signal woke a stale waiter")
	}
}

func TestCondSignalSkipsKilled(t *testing.T) {
	s := New(1)
	c := NewCond(s)
	var ran []string
	a := s.Spawn("a", func(p *Proc) { c.Wait(p); ran = append(ran, "a") })
	s.Spawn("b", func(p *Proc) { c.Wait(p); ran = append(ran, "b") })
	s.At(Time(time.Millisecond), func() { a.Kill() })
	s.At(Time(2*time.Millisecond), func() { c.Signal() })
	s.RunUntilIdle(100)
	if len(ran) != 1 || ran[0] != "b" {
		t.Fatalf("ran = %v, want [b]", ran)
	}
}

func TestCondWaiting(t *testing.T) {
	s := New(1)
	c := NewCond(s)
	for i := 0; i < 3; i++ {
		s.Spawn("w", func(p *Proc) { c.Wait(p) })
	}
	s.Run(Time(time.Millisecond))
	if c.Waiting() != 3 {
		t.Fatalf("Waiting = %d, want 3", c.Waiting())
	}
	c.Broadcast()
	s.RunUntilIdle(100)
}
