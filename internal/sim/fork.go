package sim

import (
	"fmt"
	"math/rand"
	"sort"
)

// countingSource wraps the stdlib random source and counts draws. The count
// makes the source cloneable without access to rand's unexported state: a
// clone is the same seed fast-forwarded the same number of steps. Every
// rand.Rand derivation (Int63, Uint64, Intn, Float64, ...) consumes whole
// source steps, so step count fully determines the stream position.
type countingSource struct {
	src  rand.Source64
	seed int64
	n    uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64), seed: seed}
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.seed = seed
	c.n = 0
}

// clone returns an independent source at the same stream position.
func (c *countingSource) clone() *countingSource {
	cl := newCountingSource(c.seed)
	for i := uint64(0); i < c.n; i++ {
		cl.src.Uint64()
	}
	cl.n = c.n
	return cl
}

// Fork returns a new simulator whose clock, sequence counter, dispatch count
// and random stream are copies of s's at this instant. The event queue and
// process set start empty: the owning subsystems re-arm their pending timers
// (RestoreAt) and respawn their service processes, which is the only faithful
// way to checkpoint a Go-goroutine-backed process — stacks cannot be cloned,
// so a fork point must be an instant where every live process is a service
// loop that can be respawned equivalently.
//
// Forked simulators are fully independent: Shutdown or Kill on one never
// touches the other's processes, and their random streams diverge from the
// shared position without interference.
func (s *Simulator) Fork() *Simulator {
	src := s.src.clone()
	return &Simulator{
		now:        s.now,
		seq:        s.seq,
		dispatched: s.dispatched,
		src:        src,
		rng:        rand.New(src),
	}
}

// RandDraws reports how many steps of the random stream have been consumed.
// A fork is only exact if the child reproduces the same position, which
// Fork does automatically; this accessor exists for tests and snapshots.
func (s *Simulator) RandDraws() uint64 { return s.src.n }

// Reseed restarts the random stream from seed. It is only legal while the
// stream is untouched: forked sweeps use it to give each cell of a shared
// warm world its own per-cell seed, which is exact precisely because the
// warm prefix made no draws. Reseeding a consumed stream would silently
// desynchronise the fork from the cold-boot world it must reproduce, so
// that case panics instead.
func (s *Simulator) Reseed(seed int64) {
	if s.src.n != 0 {
		panic(fmt.Sprintf("sim: Reseed after %d random draws — the warm prefix must be draw-free", s.src.n))
	}
	s.src.Seed(seed)
}

// When reports a pending timer's scheduled instant and sequence number.
// ok is false if the timer already fired, was stopped, or was recycled.
// Snapshots use (t, seq) to re-arm the timer in a forked world with its
// original position in the same-instant tie order.
func (t Timer) When() (at Time, seq uint64, ok bool) {
	if t.ev == nil || t.ev.gen != t.gen || t.ev.dead {
		return 0, 0, false
	}
	return t.ev.t, t.ev.seq, true
}

// RestoreAt schedules fn at instant t with an explicit sequence number taken
// from a snapshot of another simulator. It exists only for rebuilding a
// forked world's pending timers: re-armed events keep their original
// same-instant ordering relative to each other and sort before anything the
// child schedules afresh (which draws sequence numbers above the copied
// counter). seq must come from Timer.When on the parent.
func (s *Simulator) RestoreAt(t Time, seq uint64, fn func()) Timer {
	if seq > s.seq {
		panic(fmt.Sprintf("sim: RestoreAt seq %d above counter %d — not from a snapshot", seq, s.seq))
	}
	if t < s.now {
		t = s.now
	}
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.t = t
	ev.seq = seq
	ev.fn = fn
	s.events.push(ev)
	return Timer{ev, ev.gen}
}

// donatedWake is a wake-event sequence number reserved for a respawned
// service process (see DonateWakeSeq).
type donatedWake struct {
	t   Time
	seq uint64
}

// ParkedWake reports the live timed wakeup pending for parked process p: the
// instant and sequence number of the event WaitTimeout (or Sleep) queued for
// it. ok is false when p has no pending timed wakeup — parked on a plain
// Wait, running, or finished. Snapshots use it to donate the parent loop's
// park position to the respawned twin.
func (s *Simulator) ParkedWake(p *Proc) (Time, uint64, bool) {
	for _, ev := range s.events {
		if !ev.dead && ev.p == p && ev.tok == p.wakeSeq {
			return ev.t, ev.seq, true
		}
	}
	return 0, 0, false
}

// DonateWakeSeq arranges for the next timed park of p at exactly instant t to
// reuse seq — a sequence number recorded from the parent world's equivalent
// park event via ParkedWake — instead of drawing a fresh one. Respawned
// service loops re-derive their park from scratch, which would otherwise give
// the park event a fresh (higher) seq than the parent's; at same-instant ties
// with other timers that difference flips dispatch order and the fork stops
// being byte-identical. The donation is consumed on first matching use and is
// harmless if never used (the loop may re-park via a plain Wait instead).
// seq must come from a snapshot: it must lie at or below the copied counter.
func (s *Simulator) DonateWakeSeq(p *Proc, t Time, seq uint64) {
	if seq > s.seq {
		panic(fmt.Sprintf("sim: DonateWakeSeq seq %d above counter %d — not from a snapshot", seq, s.seq))
	}
	if s.donations == nil {
		s.donations = make(map[*Proc]donatedWake)
	}
	s.donations[p] = donatedWake{t: t, seq: seq}
}

// PendingSeqs returns the sequence numbers of every live (non-cancelled)
// pending callback event, sorted. Process wakeups (parked Sleep/Cond waits)
// are excluded: forks respawn service processes rather than cloning their
// stacks, so their park events are re-created by the respawned loops.
// Snapshots assert that the subsystems' claimed timers account for exactly
// the live callback queue — a forgotten timer would otherwise silently
// vanish from the forked world.
func (s *Simulator) PendingSeqs() []uint64 {
	out := make([]uint64, 0, len(s.events))
	for _, ev := range s.events {
		if !ev.dead && ev.fn != nil {
			out = append(out, ev.seq)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LiveProcNames returns the names of processes that have not terminated,
// in spawn order. Snapshot preconditions use it to report which workload
// processes are still running at an attempted fork point.
func (s *Simulator) LiveProcNames() []string {
	var out []string
	for _, p := range s.procs {
		if !p.done {
			out = append(out, p.name)
		}
	}
	return out
}
