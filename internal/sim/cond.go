package sim

import "time"

// waiter pairs a parked process with the wake token it is expecting.
type waiter struct {
	p   *Proc
	tok uint64
}

// Cond is a FIFO condition variable on the simulated timeline. Unlike
// sync.Cond there is no associated lock: the process model guarantees mutual
// exclusion already. The waiter queue is head-indexed so that steady-state
// signal/wait traffic reuses one backing array instead of reslicing (and
// eventually reallocating) on every Signal.
type Cond struct {
	sim     *Simulator
	waiters []waiter
	head    int
}

// NewCond returns a condition variable bound to s.
func NewCond(s *Simulator) *Cond { return &Cond{sim: s} }

// Waiting reports the number of processes currently parked on the condition.
// Stale entries (woken by a timeout, killed) are excluded.
func (c *Cond) Waiting() int {
	n := 0
	for _, w := range c.waiters[c.head:] {
		if !w.p.done && w.tok == w.p.wakeSeq {
			n++
		}
	}
	return n
}

// enqueue appends a waiter, compacting the consumed head space when the
// queue is empty so the backing array is reused rather than regrown.
func (c *Cond) enqueue(w waiter) {
	if c.head > 0 && c.head == len(c.waiters) {
		c.waiters = c.waiters[:0]
		c.head = 0
	}
	c.waiters = append(c.waiters, w)
}

// Wait parks p until Signal or Broadcast wakes it.
func (c *Cond) Wait(p *Proc) {
	c.enqueue(waiter{p, p.prepare()})
	p.park()
}

// WaitTimeout parks p until it is signalled or d elapses. It reports true if
// the process was signalled, false on timeout.
func (c *Cond) WaitTimeout(p *Proc, d time.Duration) bool {
	tok := p.prepare()
	c.enqueue(waiter{p, tok})
	timer := p.sim.atWake(p.sim.now.Add(d), p, tok)
	p.park()
	// If the timer is still pending we were woken by Signal before the
	// deadline: cancel it and report success. A fired (or recycled) timer
	// means the timeout won the race.
	return timer.Stop()
}

// Signal wakes the longest-waiting live process, if any. The wakeup is
// scheduled at the current instant so the signaller continues first (Mesa
// semantics). It reports whether a process was woken.
func (c *Cond) Signal() bool {
	for c.head < len(c.waiters) {
		w := c.waiters[c.head]
		c.waiters[c.head] = waiter{}
		c.head++
		if w.p.done || w.tok != w.p.wakeSeq {
			continue // stale: timed out, killed, or rewoken elsewhere
		}
		c.sim.atWake(c.sim.now, w.p, w.tok)
		return true
	}
	if c.head > 0 {
		c.waiters = c.waiters[:0]
		c.head = 0
	}
	return false
}

// Broadcast wakes every waiting process in FIFO order.
func (c *Cond) Broadcast() int {
	n := 0
	for c.Signal() {
		n++
	}
	return n
}
