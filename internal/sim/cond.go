package sim

import "time"

// waiter pairs a parked process with the wake token it is expecting.
type waiter struct {
	p   *Proc
	tok uint64
}

// Cond is a FIFO condition variable on the simulated timeline. Unlike
// sync.Cond there is no associated lock: the process model guarantees mutual
// exclusion already.
type Cond struct {
	sim     *Simulator
	waiters []waiter
}

// NewCond returns a condition variable bound to s.
func NewCond(s *Simulator) *Cond { return &Cond{sim: s} }

// Waiting reports the number of processes currently parked on the condition.
// Stale entries (woken by a timeout, killed) are excluded.
func (c *Cond) Waiting() int {
	n := 0
	for _, w := range c.waiters {
		if !w.p.done && w.tok == w.p.wakeSeq {
			n++
		}
	}
	return n
}

// Wait parks p until Signal or Broadcast wakes it.
func (c *Cond) Wait(p *Proc) {
	tok := p.prepare()
	c.waiters = append(c.waiters, waiter{p, tok})
	p.park()
}

// WaitTimeout parks p until it is signalled or d elapses. It reports true if
// the process was signalled, false on timeout.
func (c *Cond) WaitTimeout(p *Proc, d time.Duration) bool {
	tok := p.prepare()
	c.waiters = append(c.waiters, waiter{p, tok})
	signalled := true
	timer := p.sim.At(p.sim.now.Add(d), func() {
		if tok == p.wakeSeq && !p.done {
			signalled = false
			p.wake(tok)
		}
	})
	p.park()
	timer.Stop()
	return signalled
}

// Signal wakes the longest-waiting live process, if any. The wakeup is
// scheduled at the current instant so the signaller continues first (Mesa
// semantics). It reports whether a process was woken.
func (c *Cond) Signal() bool {
	for len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		if w.p.done || w.tok != w.p.wakeSeq {
			continue // stale: timed out, killed, or rewoken elsewhere
		}
		tok := w.tok
		proc := w.p
		c.sim.At(c.sim.now, func() { proc.wake(tok) })
		return true
	}
	return false
}

// Broadcast wakes every waiting process in FIFO order.
func (c *Cond) Broadcast() int {
	n := 0
	for c.Signal() {
		n++
	}
	return n
}
