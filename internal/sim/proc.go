package sim

import (
	"fmt"
	"time"
)

// killSentinel is the panic value used to unwind a killed process. It never
// escapes the package: the process trampoline recovers it.
type killSentinel struct{ name string }

// ErrKilled is returned by blocking operations that can observe their own
// process being killed (none currently do — kill unwinds the stack — but the
// sentinel is exported as an error for tests that inspect termination).
var ErrKilled = fmt.Errorf("sim: process killed")

// Proc is a simulated process: a goroutine that runs only when the simulator
// dispatches it and that returns control by blocking on one of the Proc
// primitives (Sleep, Yield, Cond.Wait, ...). At most one Proc executes at any
// moment.
type Proc struct {
	sim    *Simulator
	name   string
	sched  chan struct{} // scheduler -> process: run now
	parked chan struct{} // process -> scheduler: parked (or exited)
	done   bool
	killed bool
	// wakeSeq invalidates stale wakeups: every park increments it and a
	// wakeup only dispatches if it carries the current value. This makes
	// patterns like "wait with timeout" safe — the losing waker is a no-op.
	wakeSeq uint64
}

// Spawn creates a process executing fn and schedules its first dispatch at
// the current instant. fn runs entirely on the simulated timeline.
func (s *Simulator) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		sim:    s,
		name:   name,
		sched:  make(chan struct{}),
		parked: make(chan struct{}),
	}
	s.live++
	s.procs = append(s.procs, p)
	go func() {
		<-p.sched // wait for first dispatch
		defer func() {
			r := recover()
			if r != nil {
				if _, ok := r.(killSentinel); !ok {
					// Re-panic genuine failures after marking the
					// process dead so the scheduler is not wedged.
					p.done = true
					s.live--
					close(p.parked)
					panic(r)
				}
			}
			p.done = true
			s.live--
			p.parked <- struct{}{}
		}()
		if p.killed {
			// Killed (e.g. by Shutdown) before ever running: unwind without
			// starting fn.
			panic(killSentinel{p.name})
		}
		fn(p)
	}()
	s.atWake(s.now, p, p.prepare())
	return p
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Sim returns the owning simulator.
func (p *Proc) Sim() *Simulator { return p.sim }

// Now returns the current simulated instant.
func (p *Proc) Now() Time { return p.sim.now }

// Done reports whether the process has terminated.
func (p *Proc) Done() bool { return p.done }

// Killed reports whether the process was terminated by Kill.
func (p *Proc) Killed() bool { return p.killed }

// prepare arms the process for one wakeup and returns the token the waker
// must present.
func (p *Proc) prepare() uint64 {
	p.wakeSeq++
	return p.wakeSeq
}

// wake dispatches the process if tok is still current. Stale or post-mortem
// wakeups are ignored. wake must be called from scheduler context (inside an
// event callback), never from process context.
func (p *Proc) wake(tok uint64) {
	if p.done || tok != p.wakeSeq {
		return
	}
	p.dispatch()
}

// dispatch hands the CPU to the process and blocks until it parks again.
func (p *Proc) dispatch() {
	prev := p.sim.current
	p.sim.current = p
	p.sched <- struct{}{}
	<-p.parked
	p.sim.current = prev
}

// park returns control to the scheduler. The caller must already have
// arranged a wakeup (via prepare + some event calling wake).
func (p *Proc) park() {
	p.parked <- struct{}{}
	<-p.sched
	if p.killed {
		panic(killSentinel{p.name})
	}
}

// Sleep suspends the process for d of simulated time.
func (p *Proc) Sleep(d time.Duration) {
	if d <= 0 {
		// Yield semantics: run again after everything already queued for
		// this instant. When nothing is queued at the current instant the
		// park/wake round-trip is an observable no-op (the wake would be the
		// very next event dispatched, at the same time), so skip it. Any
		// pending same-time event must still run first, hence the strict
		// ev.t > now check.
		if ev := p.sim.peekLive(); ev == nil || ev.t > p.sim.now {
			return
		}
		p.sim.atWake(p.sim.now, p, p.prepare())
		p.park()
		return
	}
	p.sim.atWake(p.sim.now.Add(d), p, p.prepare())
	p.park()
}

// SleepUntil suspends the process until instant t (or returns immediately if
// t is not in the future).
func (p *Proc) SleepUntil(t Time) {
	if t <= p.sim.now {
		return
	}
	p.Sleep(t.Sub(p.sim.now))
}

// Yield reschedules the process after all events already queued for the
// current instant.
func (p *Proc) Yield() { p.Sleep(0) }

// Kill terminates the process: the next time it would run it unwinds
// instead. Killing an already-finished process is a no-op. A process may
// kill itself, in which case it unwinds immediately.
func (p *Proc) Kill() {
	if p.done || p.killed {
		return
	}
	p.killed = true
	if p.sim.current == p {
		panic(killSentinel{p.name})
	}
	// Invalidate whatever wakeup the process was waiting for and dispatch
	// it so park() observes the kill.
	p.sim.atWake(p.sim.now, p, p.prepare())
}
