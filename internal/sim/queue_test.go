package sim

import (
	"testing"
	"time"
)

func TestQueueSendRecv(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s, 4)
	var got []int
	s.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 6; i++ {
			q.Send(p, i)
			p.Sleep(time.Millisecond)
		}
		q.Close()
	})
	s.Spawn("consumer", func(p *Proc) {
		for {
			v, ok := q.Recv(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	s.RunUntilIdle(10000)
	if len(got) != 6 {
		t.Fatalf("got %v", got)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got %v", got)
		}
	}
}

func TestQueueBlocksWhenFull(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s, 2)
	var sendDone Time = -1
	s.Spawn("producer", func(p *Proc) {
		q.Send(p, 1)
		q.Send(p, 2)
		q.Send(p, 3) // blocks until consumer drains
		sendDone = p.Now()
	})
	s.Spawn("consumer", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		q.Recv(p)
	})
	s.RunUntilIdle(1000)
	if sendDone != Time(5*time.Millisecond) {
		t.Fatalf("third send completed at %v, want 5ms", sendDone)
	}
}

func TestQueueRecvBlocksWhenEmpty(t *testing.T) {
	s := New(1)
	q := NewQueue[string](s, 2)
	var recvAt Time = -1
	s.Spawn("consumer", func(p *Proc) {
		v, ok := q.Recv(p)
		if !ok || v != "x" {
			t.Errorf("recv = %q, %v", v, ok)
		}
		recvAt = p.Now()
	})
	s.Spawn("producer", func(p *Proc) {
		p.Sleep(7 * time.Millisecond)
		q.Send(p, "x")
	})
	s.RunUntilIdle(1000)
	if recvAt != Time(7*time.Millisecond) {
		t.Fatalf("recv at %v", recvAt)
	}
}

func TestQueueTryOps(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s, 1)
	if _, ok := q.TryRecv(); ok {
		t.Fatal("TryRecv on empty queue succeeded")
	}
	if !q.TrySend(1) {
		t.Fatal("TrySend on empty queue failed")
	}
	if q.TrySend(2) {
		t.Fatal("TrySend on full queue succeeded")
	}
	if v, ok := q.Peek(); !ok || v != 1 {
		t.Fatalf("Peek = %v, %v", v, ok)
	}
	if v, ok := q.TryRecv(); !ok || v != 1 {
		t.Fatalf("TryRecv = %v, %v", v, ok)
	}
	if q.Len() != 0 || q.Cap() != 1 {
		t.Fatalf("Len=%d Cap=%d", q.Len(), q.Cap())
	}
}

func TestQueueCloseUnblocksWaiters(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s, 1)
	var recvOK, sendOK = true, true
	s.Spawn("consumer", func(p *Proc) {
		_, recvOK = q.Recv(p)
	})
	s.Spawn("filler", func(p *Proc) {
		// Fill queue then block on the next send.
		q.Send(p, 1)
		q.Send(p, 2) // consumer takes 1... actually consumer is waiting; ordering below
		sendOK = q.Send(p, 3)
	})
	s.At(Time(time.Millisecond), func() { q.Close() })
	s.RunUntilIdle(1000)
	if sendOK {
		t.Fatal("send after close succeeded")
	}
	_ = recvOK // consumer may have received a value before close; both outcomes valid
	if !q.Closed() {
		t.Fatal("queue not closed")
	}
}

func TestQueueMinCapacity(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s, 0)
	if q.Cap() != 1 {
		t.Fatalf("Cap = %d, want clamped to 1", q.Cap())
	}
}
