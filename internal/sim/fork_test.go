package sim

import (
	"math/rand"
	"testing"
	"time"
)

// The counting source must be invisible: the stream a seeded Simulator hands
// out has to match rand.New(rand.NewSource(seed)) exactly, or every golden
// trace and bench baseline in the repo would shift.
func TestRandStreamMatchesStdlib(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, -3} {
		s := New(seed)
		ref := rand.New(rand.NewSource(seed))
		for i := 0; i < 1000; i++ {
			switch i % 4 {
			case 0:
				if got, want := s.Rand().Int63(), ref.Int63(); got != want {
					t.Fatalf("seed %d draw %d: Int63 %d != %d", seed, i, got, want)
				}
			case 1:
				if got, want := s.Rand().Intn(97), ref.Intn(97); got != want {
					t.Fatalf("seed %d draw %d: Intn %d != %d", seed, i, got, want)
				}
			case 2:
				if got, want := s.Rand().Float64(), ref.Float64(); got != want {
					t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, got, want)
				}
			case 3:
				if got, want := s.Rand().Uint64(), ref.Uint64(); got != want {
					t.Fatalf("seed %d draw %d: Uint64 %d != %d", seed, i, got, want)
				}
			}
		}
	}
}

// A fork must resume the random stream at the parent's exact position, and
// the two streams must then be independent.
func TestForkRandStream(t *testing.T) {
	s := New(99)
	for i := 0; i < 137; i++ {
		s.Rand().Int63()
	}
	if s.RandDraws() != 137 {
		t.Fatalf("RandDraws = %d, want 137", s.RandDraws())
	}
	child := s.Fork()
	if child.RandDraws() != 137 {
		t.Fatalf("child RandDraws = %d, want 137", child.RandDraws())
	}
	// Same next values.
	for i := 0; i < 64; i++ {
		a, b := s.Rand().Int63(), child.Rand().Int63()
		if a != b {
			t.Fatalf("draw %d after fork: parent %d != child %d", i, a, b)
		}
	}
	// Independence: burning draws on the child leaves the parent untouched.
	for i := 0; i < 10; i++ {
		child.Rand().Int63()
	}
	s2 := New(99)
	for i := 0; i < 137+64; i++ {
		s2.Rand().Int63()
	}
	if got, want := s.Rand().Int63(), s2.Rand().Int63(); got != want {
		t.Fatalf("parent stream perturbed by child draws: %d != %d", got, want)
	}
}

// A fork copies clock and sequence counter but starts with an empty queue,
// and events scheduled on one never run on the other.
func TestForkClockAndQueueIndependence(t *testing.T) {
	s := New(1)
	s.After(5*time.Millisecond, func() {})
	s.RunFor(10 * time.Millisecond)

	child := s.Fork()
	if child.Now() != s.Now() {
		t.Fatalf("child clock %v != parent %v", child.Now(), s.Now())
	}
	if child.Pending() != 0 {
		t.Fatalf("child queue not empty: %d", child.Pending())
	}
	ranOnChild := 0
	ranOnParent := 0
	child.After(time.Millisecond, func() { ranOnChild++ })
	s.After(time.Millisecond, func() { ranOnParent++ })
	child.RunFor(2 * time.Millisecond)
	if ranOnChild != 1 || ranOnParent != 0 {
		t.Fatalf("child run fired child=%d parent=%d, want 1, 0", ranOnChild, ranOnParent)
	}
	s.RunFor(2 * time.Millisecond)
	if ranOnParent != 1 {
		t.Fatalf("parent event did not fire: %d", ranOnParent)
	}
}

// RestoreAt re-arms snapshot timers with their original sequence numbers so
// same-instant events keep the parent's tie order, even when re-armed in a
// different order; fresh events sort after every restored one.
func TestRestoreAtPreservesTieOrder(t *testing.T) {
	s := New(1)
	at := s.Now().Add(3 * time.Millisecond)
	t1 := s.At(at, func() {})
	t2 := s.At(at, func() {})
	_, seq1, ok1 := t1.When()
	_, seq2, ok2 := t2.When()
	if !ok1 || !ok2 || seq1 >= seq2 {
		t.Fatalf("bad timer introspection: %d %v, %d %v", seq1, ok1, seq2, ok2)
	}

	child := s.Fork()
	var order []string
	// Re-arm in reverse order; dispatch must still follow original seq.
	child.RestoreAt(at, seq2, func() { order = append(order, "b") })
	child.RestoreAt(at, seq1, func() { order = append(order, "a") })
	child.At(at, func() { order = append(order, "fresh") })
	child.RunFor(5 * time.Millisecond)
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "fresh" {
		t.Fatalf("dispatch order = %v, want [a b fresh]", order)
	}

	defer func() {
		if recover() == nil {
			t.Fatalf("RestoreAt above the copied counter must panic")
		}
	}()
	child.RestoreAt(at, child.seq+100, func() {})
}

// Regression for the Shutdown+fork interaction: a forked world's processes
// are independently killable, and the parent survives a child's Shutdown
// with its own processes running on.
func TestForkShutdownIndependence(t *testing.T) {
	parent := New(1)
	parentTicks := 0
	parent.Spawn("svc", func(p *Proc) {
		for {
			p.Sleep(time.Millisecond)
			parentTicks++
		}
	})
	parent.RunFor(5 * time.Millisecond)
	if parentTicks == 0 {
		t.Fatalf("parent service never ran")
	}

	child := parent.Fork()
	childTicks := 0
	child.Spawn("svc", func(p *Proc) {
		for {
			p.Sleep(time.Millisecond)
			childTicks++
		}
	})
	child.RunFor(5 * time.Millisecond)
	if childTicks == 0 {
		t.Fatalf("child service never ran")
	}

	// Shutting the child down must not touch the parent's process.
	child.Shutdown()
	if child.Live() != 0 {
		t.Fatalf("child still has %d live procs after Shutdown", child.Live())
	}
	before := parentTicks
	parent.RunFor(5 * time.Millisecond)
	if parentTicks <= before {
		t.Fatalf("parent service died with the child's shutdown (ticks stuck at %d)", parentTicks)
	}
	if parent.Live() != 1 {
		t.Fatalf("parent Live = %d, want 1", parent.Live())
	}
	parent.Shutdown()
	if parent.Live() != 0 {
		t.Fatalf("parent still has %d live procs after Shutdown", parent.Live())
	}
}
