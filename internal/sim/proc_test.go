package sim

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestProcSleep(t *testing.T) {
	s := New(1)
	var woke Time = -1
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(3 * time.Millisecond)
		woke = p.Now()
	})
	s.RunUntilIdle(100)
	if woke != Time(3*time.Millisecond) {
		t.Fatalf("woke at %v, want 3ms", woke)
	}
	if s.Live() != 0 {
		t.Fatalf("Live = %d, want 0", s.Live())
	}
}

func TestProcInterleaving(t *testing.T) {
	s := New(1)
	var log []string
	mk := func(name string, d time.Duration) {
		s.Spawn(name, func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(d)
				log = append(log, name)
			}
		})
	}
	mk("a", 2*time.Millisecond)
	mk("b", 3*time.Millisecond)
	s.RunUntilIdle(1000)
	// a wakes at 2,4,6; b at 3,6,9. At t=6 b's timer was scheduled
	// earlier (at t=3, vs a's at t=4) so b fires first: a2 b3 a4 b6 a6 b9.
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestProcYieldRunsAfterQueuedEvents(t *testing.T) {
	s := New(1)
	var log []string
	s.Spawn("y", func(p *Proc) {
		s.At(p.Now(), func() { log = append(log, "event") })
		p.Yield()
		log = append(log, "proc")
	})
	s.RunUntilIdle(100)
	if len(log) != 2 || log[0] != "event" || log[1] != "proc" {
		t.Fatalf("log = %v", log)
	}
}

func TestSleepUntil(t *testing.T) {
	s := New(1)
	var at Time
	s.Spawn("u", func(p *Proc) {
		p.SleepUntil(Time(5 * time.Millisecond))
		p.SleepUntil(Time(time.Millisecond)) // in the past: no-op
		at = p.Now()
	})
	s.RunUntilIdle(100)
	if at != Time(5*time.Millisecond) {
		t.Fatalf("at = %v", at)
	}
}

func TestKillParkedProc(t *testing.T) {
	s := New(1)
	reached := false
	p := s.Spawn("victim", func(p *Proc) {
		p.Sleep(time.Hour)
		reached = true
	})
	s.At(Time(time.Millisecond), func() { p.Kill() })
	s.RunUntilIdle(100)
	if reached {
		t.Fatal("killed process continued past Sleep")
	}
	if !p.Done() || !p.Killed() {
		t.Fatalf("Done=%v Killed=%v", p.Done(), p.Killed())
	}
	if s.Live() != 0 {
		t.Fatalf("Live = %d", s.Live())
	}
}

func TestKillSelf(t *testing.T) {
	s := New(1)
	after := false
	var p *Proc
	p = s.Spawn("suicide", func(q *Proc) {
		q.Kill()
		after = true
	})
	s.RunUntilIdle(100)
	if after {
		t.Fatal("self-kill did not unwind immediately")
	}
	if !p.Done() {
		t.Fatal("not done")
	}
}

func TestKillFinishedProcIsNoop(t *testing.T) {
	s := New(1)
	p := s.Spawn("quick", func(p *Proc) {})
	s.RunUntilIdle(100)
	p.Kill() // must not panic or wedge
	s.RunUntilIdle(100)
}

func TestStaleWakeupIgnored(t *testing.T) {
	// A process that sleeps twice must not be woken early by the first
	// timer if an external event re-dispatches it in between. The token
	// scheme guarantees this; simulate the hazard via Cond timeout.
	s := New(1)
	c := NewCond(s)
	var woke []Time
	s.Spawn("w", func(p *Proc) {
		// Wait with a 10ms timeout, get signalled at 2ms.
		if !c.WaitTimeout(p, 10*time.Millisecond) {
			t.Error("expected signal, got timeout")
		}
		woke = append(woke, p.Now())
		// Then sleep past the original timeout; the stale timer at
		// 10ms must not cut this short.
		p.Sleep(20 * time.Millisecond)
		woke = append(woke, p.Now())
	})
	s.At(Time(2*time.Millisecond), func() { c.Signal() })
	s.RunUntilIdle(1000)
	if len(woke) != 2 || woke[0] != Time(2*time.Millisecond) || woke[1] != Time(22*time.Millisecond) {
		t.Fatalf("woke = %v", woke)
	}
}

func TestProcDeterminism(t *testing.T) {
	run := func() []string {
		s := New(99)
		var log []string
		for i := 0; i < 5; i++ {
			name := string(rune('a' + i))
			s.Spawn(name, func(p *Proc) {
				for j := 0; j < 4; j++ {
					p.Sleep(time.Duration(s.Rand().Intn(500)+1) * time.Microsecond)
					log = append(log, name)
				}
			})
		}
		s.RunUntilIdle(10000)
		return log
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d: %v vs %v", i, a, b)
		}
	}
}

func TestSpawnFromProc(t *testing.T) {
	s := New(1)
	var childRan Time = -1
	s.Spawn("parent", func(p *Proc) {
		p.Sleep(time.Millisecond)
		s.Spawn("child", func(c *Proc) {
			c.Sleep(time.Millisecond)
			childRan = c.Now()
		})
		p.Sleep(5 * time.Millisecond)
	})
	s.RunUntilIdle(100)
	if childRan != Time(2*time.Millisecond) {
		t.Fatalf("child ran at %v, want 2ms", childRan)
	}
}

func TestNegativeSleepIsImmediate(t *testing.T) {
	s := New(1)
	done := false
	s.Spawn("n", func(p *Proc) {
		p.Sleep(-time.Second)
		done = true
	})
	s.RunUntilIdle(10)
	if !done || s.Now() != 0 {
		t.Fatalf("done=%v now=%v", done, s.Now())
	}
}

func TestShutdownReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(1)
	var defers atomic.Int32
	// A mix of states at shutdown: parked mid-sleep, never dispatched, and
	// already finished.
	for i := 0; i < 50; i++ {
		s.Spawn("sleeper", func(p *Proc) {
			defer defers.Add(1)
			p.Sleep(time.Hour)
			t.Error("killed process ran past its park point")
		})
	}
	s.Spawn("quick", func(p *Proc) {})
	s.RunFor(time.Millisecond)
	started := false
	s.Spawn("late", func(p *Proc) { started = true }) // scheduled, never run
	s.Shutdown()
	if started {
		t.Error("process spawned after the run executed during Shutdown")
	}
	if s.Live() != 0 {
		t.Fatalf("Live = %d after Shutdown", s.Live())
	}
	if n := defers.Load(); n != 50 {
		t.Errorf("%d deferred cleanups ran, want 50 (kill must unwind the stack)", n)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines = %d, baseline %d: Shutdown leaked", n, before)
	}
}

func TestShutdownIdempotentOnFinishedSim(t *testing.T) {
	s := New(1)
	s.Spawn("quick", func(p *Proc) {})
	s.RunUntilIdle(100)
	s.Shutdown()
	s.Shutdown() // second call is a no-op
}
