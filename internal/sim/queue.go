package sim

// Queue is a bounded FIFO on the simulated timeline, analogous to a Go
// channel but synchronised through the simulator. It backs the Nemesis "IO
// channels" (the rbufs-like FIFO buffering between USD clients and the USD).
type Queue[T any] struct {
	sim      *Simulator
	cap      int
	items    []T
	notEmpty *Cond
	notFull  *Cond
	closed   bool
}

// NewQueue returns a queue holding at most capacity items. capacity must be
// at least 1.
func NewQueue[T any](s *Simulator, capacity int) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue[T]{
		sim:      s,
		cap:      capacity,
		notEmpty: NewCond(s),
		notFull:  NewCond(s),
	}
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() int { return q.cap }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// Close marks the queue closed and wakes all waiters. Sends to a closed
// queue report failure; receives drain remaining items then report failure.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}

// Send enqueues v, blocking p while the queue is full. It reports false if
// the queue was closed before the item could be enqueued.
func (q *Queue[T]) Send(p *Proc, v T) bool {
	for len(q.items) >= q.cap && !q.closed {
		q.notFull.Wait(p)
	}
	if q.closed {
		return false
	}
	q.items = append(q.items, v)
	q.notEmpty.Signal()
	return true
}

// TrySend enqueues v without blocking; it reports whether the item was
// accepted.
func (q *Queue[T]) TrySend(v T) bool {
	if q.closed || len(q.items) >= q.cap {
		return false
	}
	q.items = append(q.items, v)
	q.notEmpty.Signal()
	return true
}

// Recv dequeues the oldest item, blocking p while the queue is empty. It
// reports false when the queue is closed and drained.
func (q *Queue[T]) Recv(p *Proc) (T, bool) {
	for len(q.items) == 0 && !q.closed {
		q.notEmpty.Wait(p)
	}
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items[0] = zero
	q.items = q.items[1:]
	q.notFull.Signal()
	return v, true
}

// TryRecv dequeues without blocking; ok reports whether an item was present.
func (q *Queue[T]) TryRecv() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items[0] = zero
	q.items = q.items[1:]
	q.notFull.Signal()
	return v, true
}

// Peek returns the oldest item without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	return q.items[0], true
}
