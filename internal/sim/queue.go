package sim

// Queue is a bounded FIFO on the simulated timeline, analogous to a Go
// channel but synchronised through the simulator. It backs the Nemesis "IO
// channels" (the rbufs-like FIFO buffering between USD clients and the USD).
// Items live in a fixed ring buffer sized at construction, so steady-state
// send/recv traffic never allocates.
type Queue[T any] struct {
	sim      *Simulator
	buf      []T
	head     int // index of the oldest item
	n        int // buffered item count
	notEmpty *Cond
	notFull  *Cond
	closed   bool
}

// NewQueue returns a queue holding at most capacity items. capacity must be
// at least 1.
func NewQueue[T any](s *Simulator, capacity int) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue[T]{
		sim:      s,
		buf:      make([]T, capacity),
		notEmpty: NewCond(s),
		notFull:  NewCond(s),
	}
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return q.n }

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() int { return len(q.buf) }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// Close marks the queue closed and wakes all waiters. Sends to a closed
// queue report failure; receives drain remaining items then report failure.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}

// push appends v to the ring. The caller has checked there is room.
func (q *Queue[T]) push(v T) {
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
}

// pop removes and returns the oldest item. The caller has checked q.n > 0.
func (q *Queue[T]) pop() T {
	var zero T
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return v
}

// Send enqueues v, blocking p while the queue is full. It reports false if
// the queue was closed before the item could be enqueued.
func (q *Queue[T]) Send(p *Proc, v T) bool {
	for q.n >= len(q.buf) && !q.closed {
		q.notFull.Wait(p)
	}
	if q.closed {
		return false
	}
	q.push(v)
	q.notEmpty.Signal()
	return true
}

// TrySend enqueues v without blocking; it reports whether the item was
// accepted.
func (q *Queue[T]) TrySend(v T) bool {
	if q.closed || q.n >= len(q.buf) {
		return false
	}
	q.push(v)
	q.notEmpty.Signal()
	return true
}

// Recv dequeues the oldest item, blocking p while the queue is empty. It
// reports false when the queue is closed and drained.
func (q *Queue[T]) Recv(p *Proc) (T, bool) {
	for q.n == 0 && !q.closed {
		q.notEmpty.Wait(p)
	}
	if q.n == 0 {
		var zero T
		return zero, false
	}
	v := q.pop()
	q.notFull.Signal()
	return v, true
}

// TryRecv dequeues without blocking; ok reports whether an item was present.
func (q *Queue[T]) TryRecv() (T, bool) {
	if q.n == 0 {
		var zero T
		return zero, false
	}
	v := q.pop()
	q.notFull.Signal()
	return v, true
}

// Peek returns the oldest item without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	if q.n == 0 {
		var zero T
		return zero, false
	}
	return q.buf[q.head], true
}
