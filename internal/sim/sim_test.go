package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.RunUntilIdle(100)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Fatalf("Now = %v, want 30", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.RunUntilIdle(100)
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("simultaneous events out of FIFO order: %v", got)
		}
	}
}

func TestEventScheduledInPastClampsToNow(t *testing.T) {
	s := New(1)
	var at Time = -1
	s.At(100, func() {
		s.At(50, func() { at = s.Now() })
	})
	s.RunUntilIdle(100)
	if at != 100 {
		t.Fatalf("past event ran at %v, want clamped to 100", at)
	}
}

func TestRunStopsAtLimit(t *testing.T) {
	s := New(1)
	fired := 0
	s.At(10, func() { fired++ })
	s.At(20, func() { fired++ })
	s.Run(15)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if s.Now() != 15 {
		t.Fatalf("Now = %v, want 15 (clock advances to limit)", s.Now())
	}
	s.Run(25)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	s := New(1)
	s.RunFor(5 * time.Millisecond)
	if s.Now() != Time(5*time.Millisecond) {
		t.Fatalf("Now = %v", s.Now())
	}
	s.RunFor(5 * time.Millisecond)
	if s.Now() != Time(10*time.Millisecond) {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.At(10, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer reported false")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported true")
	}
	s.RunUntilIdle(10)
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 5 {
			s.After(time.Microsecond, recurse)
		}
	}
	s.After(time.Microsecond, recurse)
	s.RunUntilIdle(100)
	if depth != 5 {
		t.Fatalf("depth = %d, want 5", depth)
	}
	if s.Now() != Time(5*time.Microsecond) {
		t.Fatalf("Now = %v, want 5us", s.Now())
	}
}

func TestRunUntilIdlePanicsOnRunaway(t *testing.T) {
	s := New(1)
	var loop func()
	loop = func() { s.At(s.Now(), loop) }
	s.At(0, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on runaway event loop")
		}
	}()
	s.RunUntilIdle(1000)
}

// TestDeterminism runs the same random scenario twice and requires identical
// event interleavings.
func TestDeterminism(t *testing.T) {
	run := func() []Time {
		s := New(42)
		var log []Time
		for i := 0; i < 200; i++ {
			d := time.Duration(s.Rand().Intn(1000)) * time.Microsecond
			s.After(d, func() { log = append(log, s.Now()) })
		}
		s.RunUntilIdle(10000)
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("timeline diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any set of offsets, events fire in non-decreasing time order
// and the clock never runs backwards.
func TestEventOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := New(7)
		var times []Time
		for _, o := range offsets {
			s.At(Time(o), func() { times = append(times, s.Now()) })
		}
		s.RunUntilIdle(len(offsets) + 10)
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeArithmetic(t *testing.T) {
	var tt Time = Time(1500 * time.Microsecond)
	if tt.Milliseconds() != 1.5 {
		t.Fatalf("Milliseconds = %v", tt.Milliseconds())
	}
	if tt.Microseconds() != 1500 {
		t.Fatalf("Microseconds = %v", tt.Microseconds())
	}
	if tt.Add(500*time.Microsecond) != Time(2*time.Millisecond) {
		t.Fatalf("Add wrong")
	}
	if tt.Sub(Time(500*time.Microsecond)) != time.Millisecond {
		t.Fatalf("Sub wrong")
	}
	if tt.Seconds() != 0.0015 {
		t.Fatalf("Seconds = %v", tt.Seconds())
	}
	if tt.String() != "1.500000ms" {
		t.Fatalf("String = %q", tt.String())
	}
}

// TestSameTimestampFIFOUnderChurn pins the tie-break contract under
// adversarial heap state: events sharing a timestamp must dispatch in the
// exact order they were scheduled, even after the heap's internal layout and
// the event free list have been churned by a seeded-random schedule/cancel/
// fire workload. A shuffled insertion stream goes in; the per-timestamp
// dispatch sequence must reproduce that stream, and the whole run must be
// bit-stable across repetitions.
func TestSameTimestampFIFOUnderChurn(t *testing.T) {
	run := func(seed int64) []int {
		s := New(seed)
		rng := s.Rand()

		// Phase 1: churn. Random events at random times, a third of them
		// cancelled, so the heap's sibling layout and the free list are in a
		// non-trivial seeded-random state before the batch under test.
		var timers []Timer
		for i := 0; i < 300; i++ {
			tm := s.At(Time(rng.Intn(50)), func() {})
			if rng.Intn(3) == 0 {
				timers = append(timers, tm)
			}
		}
		for _, tm := range timers {
			tm.Stop()
		}
		s.Run(50)

		// Phase 2: a shuffled stream of (timestamp, id) pairs. Several ids
		// share each timestamp; insertion order within a timestamp is the
		// shuffled stream order.
		const nTimes, perTime = 7, 20
		type slot struct{ t, id int }
		var stream []slot
		for ts := 0; ts < nTimes; ts++ {
			for k := 0; k < perTime; k++ {
				stream = append(stream, slot{t: 100 + ts*10, id: ts*perTime + k})
			}
		}
		rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })

		insertion := make(map[int][]int) // timestamp -> ids in insertion order
		var dispatched []int
		for _, sl := range stream {
			sl := sl
			insertion[sl.t] = append(insertion[sl.t], sl.id)
			s.At(Time(sl.t), func() { dispatched = append(dispatched, sl.id) })
		}
		s.RunUntilIdle(10000)

		// Per-timestamp dispatch order must equal per-timestamp insertion
		// order: walk the dispatch log grouped by the id's timestamp.
		pos := make(map[int]int) // timestamp -> next expected index
		for _, id := range dispatched {
			ts := 100 + (id/perTime)*10
			want := insertion[ts][pos[ts]]
			if id != want {
				t.Fatalf("seed %d: at t=%d dispatched id %d, want %d (FIFO among same-time events broken)",
					seed, ts, id, want)
			}
			pos[ts]++
		}
		if len(dispatched) != nTimes*perTime {
			t.Fatalf("seed %d: dispatched %d events, want %d", seed, len(dispatched), nTimes*perTime)
		}
		return dispatched
	}

	for _, seed := range []int64{1, 7, 42, 12345} {
		a, b := run(seed), run(seed)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: dispatch sequence not stable across runs (index %d: %d vs %d)",
					seed, i, a[i], b[i])
			}
		}
	}
}
