package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// event is a scheduled callback. Events with equal time fire in the order
// they were scheduled (seq breaks ties), which makes the whole simulation
// deterministic.
type event struct {
	t    Time
	seq  uint64
	fn   func()
	dead bool // cancelled
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return
}

// Simulator owns the simulated clock and the event queue. It is not safe for
// use from multiple goroutines except through the process model, which
// guarantees only one goroutine touches it at a time.
type Simulator struct {
	now     Time
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	current *Proc // process currently executing, if any
	live    int   // spawned processes that have not yet finished

	// Trace, when non-nil, receives a line for every dispatched event.
	// Used only by tests and debugging tools.
	Trace func(t Time, what string)
}

// New returns a simulator whose random source is seeded with seed. The same
// seed always yields the same execution.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated instant.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Live reports the number of spawned processes that have not terminated.
func (s *Simulator) Live() int { return s.live }

// Current returns the process currently executing, or nil when the
// scheduler (an event callback) is running.
func (s *Simulator) Current() *Proc { return s.current }

// Pending reports the number of events still queued (including cancelled
// placeholders not yet popped).
func (s *Simulator) Pending() int { return len(s.events) }

// Timer identifies a scheduled event and allows cancellation.
type Timer struct{ ev *event }

// Stop cancels the timer if it has not fired. It reports whether the timer
// was still pending.
func (t Timer) Stop() bool {
	if t.ev == nil || t.ev.dead {
		return false
	}
	t.ev.dead = true
	return true
}

// At schedules fn to run at instant t. Scheduling in the past is an error in
// the caller; the event is clamped to "now" to keep time monotonic.
func (s *Simulator) At(t Time, fn func()) Timer {
	if t < s.now {
		t = s.now
	}
	s.seq++
	ev := &event{t: t, seq: s.seq, fn: fn}
	heap.Push(&s.events, ev)
	return Timer{ev}
}

// After schedules fn to run d after the current instant.
func (s *Simulator) After(d time.Duration, fn func()) Timer {
	return s.At(s.now.Add(d), fn)
}

// step pops and runs the next event. It reports false when the queue is
// empty or the next event lies beyond limit.
func (s *Simulator) step(limit Time) bool {
	for len(s.events) > 0 {
		next := s.events[0]
		if next.dead {
			heap.Pop(&s.events)
			continue
		}
		if next.t > limit {
			return false
		}
		heap.Pop(&s.events)
		if next.t > s.now {
			s.now = next.t
		}
		next.fn()
		return true
	}
	return false
}

// Run executes events until the queue is exhausted or the clock would pass
// until. On return the clock reads min(until, time of last event run), and
// is advanced to until if the queue drained earlier.
func (s *Simulator) Run(until Time) {
	for s.step(until) {
	}
	if s.now < until {
		s.now = until
	}
}

// RunFor runs the simulation for duration d from the current instant.
func (s *Simulator) RunFor(d time.Duration) { s.Run(s.now.Add(d)) }

// RunUntilIdle executes events until none remain. It panics if the
// simulation exceeds maxEvents dispatches, which indicates a runaway loop.
func (s *Simulator) RunUntilIdle(maxEvents int) {
	for i := 0; ; i++ {
		if i > maxEvents {
			panic(fmt.Sprintf("sim: RunUntilIdle exceeded %d events at t=%v", maxEvents, s.now))
		}
		if !s.step(Time(1<<62 - 1)) {
			return
		}
	}
}
