package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// event is a scheduled callback. Events with equal time fire in the order
// they were scheduled (seq breaks ties), which makes the whole simulation
// deterministic.
//
// An event either runs a callback (fn != nil) or wakes a parked process
// (p != nil): process wakeups are frequent enough on the fault path that
// dedicating fields to them avoids a closure allocation per Sleep, Signal
// and Spawn. Fired and cancelled events return to the simulator's free list;
// gen guards Timers against recycled events (a Timer only refers to the
// incarnation it was issued for).
type event struct {
	t    Time
	seq  uint64
	fn   func()
	p    *Proc  // wake target when fn == nil
	tok  uint64 // wake token for p
	dead bool   // cancelled
	gen  uint32 // incarnation; bumped every recycle
}

// eventHeap is a concrete 4-ary min-heap ordered by (time, seq). A 4-ary
// layout halves the tree depth of a binary heap (fewer cache misses on
// sift-down) and the concrete element type removes the container/heap
// interface dispatch and interface{} boxing from the per-event hot path.
// The (time, seq) key is a total order — no two live events compare equal —
// so heap dispatch order is exactly FIFO among same-time events regardless
// of internal sibling layout.
type eventHeap []*event

func eventLess(a, b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// push inserts ev, sifting up.
func (h *eventHeap) push(ev *event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !eventLess(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// pop removes and returns the minimum, sifting down.
func (h *eventHeap) pop() *event {
	s := *h
	n := len(s)
	top := s[0]
	last := s[n-1]
	s[n-1] = nil
	s = s[:n-1]
	*h = s
	n--
	if n > 0 {
		s[0] = last
		i := 0
		for {
			first := 4*i + 1
			if first >= n {
				break
			}
			min := first
			end := first + 4
			if end > n {
				end = n
			}
			for c := first + 1; c < end; c++ {
				if eventLess(s[c], s[min]) {
					min = c
				}
			}
			if !eventLess(s[min], s[i]) {
				break
			}
			s[i], s[min] = s[min], s[i]
			i = min
		}
	}
	return top
}

// Simulator owns the simulated clock and the event queue. It is not safe for
// use from multiple goroutines except through the process model, which
// guarantees only one goroutine touches it at a time.
type Simulator struct {
	now     Time
	events  eventHeap
	seq     uint64
	free    []*event // recycled events
	src     *countingSource
	rng     *rand.Rand
	current *Proc   // process currently executing, if any
	live    int     // spawned processes that have not yet finished
	procs   []*Proc // every spawned process, for Shutdown

	// dispatched counts events run since construction; a deterministic
	// measure of how much simulated work a run performed.
	dispatched int64

	// donations maps a process to a wake-event sequence number reserved for
	// it by a snapshot (see DonateWakeSeq): a respawned service loop's next
	// timed park at the recorded instant reuses the parent event's seq, so
	// same-instant tie order is identical on both sides of a fork.
	donations map[*Proc]donatedWake

	// Trace, when non-nil, receives a line for every dispatched event.
	// Used only by tests and debugging tools.
	Trace func(t Time, what string)
}

// New returns a simulator whose random source is seeded with seed. The same
// seed always yields the same execution. The source is the stdlib one behind
// a draw counter, so the stream is identical to rand.New(rand.NewSource(seed))
// and a Fork can clone the position exactly.
func New(seed int64) *Simulator {
	src := newCountingSource(seed)
	return &Simulator{src: src, rng: rand.New(src)}
}

// Now returns the current simulated instant.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Live reports the number of spawned processes that have not terminated.
func (s *Simulator) Live() int { return s.live }

// Current returns the process currently executing, or nil when the
// scheduler (an event callback) is running.
func (s *Simulator) Current() *Proc { return s.current }

// Pending reports the number of events still queued (including cancelled
// placeholders not yet popped).
func (s *Simulator) Pending() int { return len(s.events) }

// Dispatched reports how many events have been run so far. It depends only
// on the seed and the workload, never on wall-clock, so identical runs
// report identical counts.
func (s *Simulator) Dispatched() int64 { return s.dispatched }

// Timer identifies a scheduled event and allows cancellation.
type Timer struct {
	ev  *event
	gen uint32
}

// Stop cancels the timer if it has not fired. It reports whether the timer
// was still pending.
func (t Timer) Stop() bool {
	if t.ev == nil || t.ev.gen != t.gen || t.ev.dead {
		return false
	}
	t.ev.dead = true
	return true
}

// alloc takes an event from the free list (or the heap allocator), stamping
// it with the next sequence number and time t.
func (s *Simulator) alloc(t Time) *event {
	if t < s.now {
		t = s.now
	}
	s.seq++
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.t = t
	ev.seq = s.seq
	return ev
}

// recycle returns a popped event to the free list, invalidating any Timer
// still referring to it.
func (s *Simulator) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.p = nil
	ev.tok = 0
	ev.dead = false
	s.free = append(s.free, ev)
}

// At schedules fn to run at instant t. Scheduling in the past is an error in
// the caller; the event is clamped to "now" to keep time monotonic.
func (s *Simulator) At(t Time, fn func()) Timer {
	ev := s.alloc(t)
	ev.fn = fn
	s.events.push(ev)
	return Timer{ev, ev.gen}
}

// atWake schedules a wakeup of p with token tok at instant t, without
// allocating a closure. A pending seq donation for (p, t) — registered by a
// snapshot via DonateWakeSeq — replaces the freshly drawn seq so the park
// event sorts exactly where the parent world's did.
func (s *Simulator) atWake(t Time, p *Proc, tok uint64) Timer {
	ev := s.alloc(t)
	if d, ok := s.donations[p]; ok && d.t == ev.t {
		ev.seq = d.seq
		delete(s.donations, p)
	}
	ev.p = p
	ev.tok = tok
	s.events.push(ev)
	return Timer{ev, ev.gen}
}

// After schedules fn to run d after the current instant.
func (s *Simulator) After(d time.Duration, fn func()) Timer {
	return s.At(s.now.Add(d), fn)
}

// peekLive returns the earliest pending live event, discarding cancelled
// ones, or nil when the queue is (effectively) empty.
func (s *Simulator) peekLive() *event {
	for len(s.events) > 0 {
		next := s.events[0]
		if !next.dead {
			return next
		}
		s.events.pop()
		s.recycle(next)
	}
	return nil
}

// step pops and runs the next event. It reports false when the queue is
// empty or the next event lies beyond limit.
func (s *Simulator) step(limit Time) bool {
	next := s.peekLive()
	if next == nil || next.t > limit {
		return false
	}
	s.events.pop()
	s.dispatched++
	if next.t > s.now {
		s.now = next.t
	}
	fn, p, tok := next.fn, next.p, next.tok
	s.recycle(next)
	if p != nil {
		p.wake(tok)
	} else {
		fn()
	}
	return true
}

// Run executes events until the queue is exhausted or the clock would pass
// until. On return the clock reads min(until, time of last event run), and
// is advanced to until if the queue drained earlier.
func (s *Simulator) Run(until Time) {
	for s.step(until) {
	}
	if s.now < until {
		s.now = until
	}
}

// RunFor runs the simulation for duration d from the current instant.
func (s *Simulator) RunFor(d time.Duration) { s.Run(s.now.Add(d)) }

// Shutdown unwinds every live process, releasing the goroutine backing each
// one. Without it a finished simulation leaks one parked goroutine per live
// process — invisible in a run-once CLI, fatal in a long-lived daemon. Each
// process is dispatched exactly once with its kill flag set, so it panics out
// of its park point (running its defers) without executing further workload.
// The simulator must not be used afterwards. Must be called from scheduler
// context (never from inside a process).
func (s *Simulator) Shutdown() {
	for _, p := range s.procs {
		if p.done {
			continue
		}
		p.killed = true
		p.prepare() // invalidate any queued wakeup so only this dispatch lands
		p.dispatch()
	}
	s.procs = nil
}

// RunUntilIdle executes events until none remain. It panics if the
// simulation exceeds maxEvents dispatches, which indicates a runaway loop.
func (s *Simulator) RunUntilIdle(maxEvents int) {
	for i := 0; ; i++ {
		if i > maxEvents {
			panic(fmt.Sprintf("sim: RunUntilIdle exceeded %d events at t=%v", maxEvents, s.now))
		}
		if !s.step(Time(1<<62 - 1)) {
			return
		}
	}
}
