package usd

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"nemesis/internal/atropos"
	"nemesis/internal/disk"
	"nemesis/internal/sim"
	"nemesis/internal/trace"
)

func ms(n int64) time.Duration { return time.Duration(n) * time.Millisecond }

func newUSD() (*sim.Simulator, *USD) {
	s := sim.New(1)
	d := disk.New(s, disk.VP3221())
	u := New(s, d)
	u.Log = &trace.Log{}
	return s, u
}

func wholeDisk(u *USD) Extent { return Extent{0, u.Disk().Geom.TotalBlocks} }

func TestExtentContains(t *testing.T) {
	e := Extent{100, 50}
	if !e.Contains(100, 50) || !e.Contains(120, 1) {
		t.Fatal("containment false negative")
	}
	if e.Contains(99, 1) || e.Contains(149, 2) || e.Contains(200, 1) {
		t.Fatal("containment false positive")
	}
	if e.String() != "[100,+50)" {
		t.Fatalf("String = %q", e.String())
	}
}

// TestUnknownClientSentinel: Close and Grant on an unadmitted name report
// ErrUnknownClient via errors.Is.
func TestUnknownClientSentinel(t *testing.T) {
	_, u := newUSD()
	if err := u.Close("ghost"); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("Close err = %v", err)
	}
	if err := u.Grant("ghost", Extent{0, 10}); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("Grant err = %v", err)
	}
}

func TestOpenAdmissionControl(t *testing.T) {
	_, u := newUSD()
	if _, err := u.Open("a", atropos.QoS{P: ms(250), S: ms(200)}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Open("b", atropos.QoS{P: ms(250), S: ms(100)}, 1); !errors.Is(err, atropos.ErrOvercommitted) {
		t.Fatalf("err = %v", err)
	}
	if got := u.Contracted(); got != 0.8 {
		t.Fatalf("Contracted = %v", got)
	}
}

func TestSimpleReadWrite(t *testing.T) {
	s, u := newUSD()
	ch, err := u.Open("a", atropos.QoS{P: ms(250), S: ms(100), L: ms(10)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	u.Grant("a", wholeDisk(u))
	var readBack []byte
	s.Spawn("app", func(p *sim.Proc) {
		data := bytes.Repeat([]byte{0x5A}, 16*disk.BlockSize)
		if _, err := ch.Do(p, &Request{Op: disk.Write, Block: 4096, Count: 16, Data: data}); err != nil {
			t.Error(err)
			return
		}
		r, err := ch.Do(p, &Request{Op: disk.Read, Block: 4096, Count: 16})
		if err != nil {
			t.Error(err)
			return
		}
		readBack = r.Data
	})
	s.RunFor(2 * time.Second)
	u.Stop()
	s.RunUntilIdle(100000)
	if len(readBack) != 16*disk.BlockSize || readBack[0] != 0x5A || readBack[len(readBack)-1] != 0x5A {
		t.Fatal("read back wrong data")
	}
	st, ok := u.Stats("a")
	if !ok || st.Txns != 2 || st.Bytes != 2*16*disk.BlockSize {
		t.Fatalf("stats = %+v", st)
	}
	if st.Charged <= 0 {
		t.Fatal("no time charged")
	}
}

func TestExtentProtection(t *testing.T) {
	s, u := newUSD()
	ch, _ := u.Open("a", atropos.QoS{P: ms(250), S: ms(100), L: ms(10)}, 1)
	u.Grant("a", Extent{1000, 100})
	var inErr, outErr error
	s.Spawn("app", func(p *sim.Proc) {
		_, inErr = ch.Do(p, &Request{Op: disk.Read, Block: 1000, Count: 16})
		_, outErr = ch.Do(p, &Request{Op: disk.Read, Block: 2000, Count: 16})
	})
	s.RunFor(time.Second)
	if inErr != nil {
		t.Fatalf("in-extent request failed: %v", inErr)
	}
	if !errors.Is(outErr, ErrNoSuchExtent) {
		t.Fatalf("out-of-extent err = %v", outErr)
	}
}

func TestSubmitValidation(t *testing.T) {
	s, u := newUSD()
	ch, _ := u.Open("a", atropos.QoS{P: ms(250), S: ms(100)}, 1)
	s.Spawn("app", func(p *sim.Proc) {
		if err := ch.Submit(p, &Request{Op: disk.Read, Block: 0, Count: 0}); !errors.Is(err, ErrBadRequest) {
			t.Errorf("zero count err = %v", err)
		}
		if err := ch.Submit(p, &Request{Op: disk.Write, Block: 0, Count: 2, Data: make([]byte, 10)}); !errors.Is(err, ErrBadRequest) {
			t.Errorf("short write err = %v", err)
		}
		if err := ch.Submit(p, &Request{Op: disk.Read, Block: 0, Count: 1, Data: make([]byte, 10)}); !errors.Is(err, ErrBadRequest) {
			t.Errorf("short read buf err = %v", err)
		}
	})
	s.RunFor(100 * time.Millisecond)
}

func TestChannelClose(t *testing.T) {
	s, u := newUSD()
	ch, _ := u.Open("a", atropos.QoS{P: ms(250), S: ms(100)}, 1)
	u.Close("a")
	s.Spawn("app", func(p *sim.Proc) {
		if err := ch.Submit(p, &Request{Op: disk.Read, Block: 0, Count: 1}); !errors.Is(err, ErrClosed) {
			t.Errorf("submit after close err = %v", err)
		}
	})
	s.RunFor(100 * time.Millisecond)
	// Contract released: full disk admissible again.
	if _, err := u.Open("b", atropos.QoS{P: ms(250), S: ms(250)}, 1); err != nil {
		t.Fatalf("readmission failed: %v", err)
	}
}

// TestProportionalSharing is the heart of Fig. 7: three clients with 10%,
// 20% and 40% guarantees hammering the disk must make progress ~4:2:1.
func TestProportionalSharing(t *testing.T) {
	s, u := newUSD()
	type app struct {
		name  string
		slice time.Duration
		pages int64
	}
	apps := []*app{
		{name: "a10", slice: ms(25)},
		{name: "b20", slice: ms(50)},
		{name: "c40", slice: ms(100)},
	}
	for i, a := range apps {
		ch, err := u.Open(a.name, atropos.QoS{P: ms(250), S: a.slice, L: ms(10)}, 1)
		if err != nil {
			t.Fatal(err)
		}
		u.Grant(a.name, wholeDisk(u))
		base := int64(200000 * (i + 1)) // separate disk regions
		a := a
		s.Spawn(a.name, func(p *sim.Proc) {
			buf := make([]byte, 16*disk.BlockSize)
			for n := int64(0); ; n++ {
				req := &Request{Op: disk.Read, Block: base + (n%2000)*16, Count: 16, Data: buf}
				if _, err := ch.Do(p, req); err != nil {
					return
				}
				a.pages++
				p.Sleep(150 * time.Microsecond) // per-page "compute"
			}
		})
	}
	s.RunFor(10 * time.Second)
	r1 := float64(apps[1].pages) / float64(apps[0].pages)
	r2 := float64(apps[2].pages) / float64(apps[1].pages)
	if r1 < 1.6 || r1 > 2.4 || r2 < 1.6 || r2 > 2.4 {
		t.Fatalf("progress %d:%d:%d, ratios %.2f %.2f want ~2.0 each",
			apps[0].pages, apps[1].pages, apps[2].pages, r1, r2)
	}
	u.Stop()
	s.RunUntilIdle(1 << 20)
}

// TestLaxityBoundsRespected: no single lax charge may exceed l, and with
// laxity on, an unpipelined client achieves more than one transaction per
// period.
func TestLaxityBoundsRespected(t *testing.T) {
	s, u := newUSD()
	ch, _ := u.Open("a", atropos.QoS{P: ms(250), S: ms(100), L: ms(10)}, 1)
	u.Grant("a", wholeDisk(u))
	pages := 0
	s.Spawn("a", func(p *sim.Proc) {
		buf := make([]byte, 16*disk.BlockSize)
		for n := int64(0); ; n++ {
			if _, err := ch.Do(p, &Request{Op: disk.Read, Block: n * 16 % 100000, Count: 16, Data: buf}); err != nil {
				return
			}
			pages++
			p.Sleep(200 * time.Microsecond)
		}
	})
	s.RunFor(3 * time.Second)
	maxLax := u.Log.MaxLax()["a"]
	if maxLax > 0.010+1e-6 {
		t.Fatalf("lax span %.4fs exceeds l=10ms", maxLax)
	}
	if maxLax == 0 {
		t.Fatal("no lax time recorded for an unpipelined client")
	}
	// 3s = 12 periods; without laxity it would be ~12 transactions.
	if pages < 50 {
		t.Fatalf("pages = %d; laxity not keeping client runnable", pages)
	}
}

// TestShortBlockProblem: with laxity disabled, an unpipelined client gets
// roughly one transaction per period (the paper's motivation for laxity).
func TestShortBlockProblem(t *testing.T) {
	s, u := newUSD()
	u.LaxityEnabled = false
	ch, _ := u.Open("a", atropos.QoS{P: ms(250), S: ms(100), L: ms(10)}, 1)
	u.Grant("a", wholeDisk(u))
	pages := 0
	s.Spawn("a", func(p *sim.Proc) {
		buf := make([]byte, 16*disk.BlockSize)
		for n := int64(0); ; n++ {
			if _, err := ch.Do(p, &Request{Op: disk.Read, Block: n * 16 % 100000, Count: 16, Data: buf}); err != nil {
				return
			}
			pages++
			p.Sleep(200 * time.Microsecond)
		}
	})
	s.RunFor(3 * time.Second) // 12 periods
	if pages > 16 {
		t.Fatalf("pages = %d; expected ~1 per 250ms period without laxity", pages)
	}
	if pages < 8 {
		t.Fatalf("pages = %d; client starved entirely", pages)
	}
}

// TestPipelinedClientUnaffectedByLaxity: a client that always has work
// queued should accrue no lax time.
func TestPipelinedClientNoLax(t *testing.T) {
	s, u := newUSD()
	ch, _ := u.Open("fs", atropos.QoS{P: ms(250), S: ms(125), L: ms(10)}, 8)
	u.Grant("fs", wholeDisk(u))
	s.Spawn("fs", func(p *sim.Proc) {
		next := int64(0)
		inflight := 0
		for {
			for inflight < 8 {
				if err := ch.Submit(p, &Request{Op: disk.Read, Block: next, Count: 16}); err != nil {
					return
				}
				next += 16
				inflight++
			}
			if _, err := ch.Await(p); err != nil {
				return
			}
			inflight--
		}
	})
	s.RunFor(2 * time.Second)
	st, _ := u.Stats("fs")
	if st.LaxCharged > ms(15) {
		t.Fatalf("pipelined client charged %v lax", st.LaxCharged)
	}
	if st.Txns < 100 {
		t.Fatalf("Txns = %d, pipeline not flowing", st.Txns)
	}
	u.Stop()
	s.RunUntilIdle(1 << 20)
}

// TestGuaranteeNotExceeded: over a long run, busy time per period must not
// deterministically exceed the slice (roll-over keeps the long-run average
// at or below the guarantee, within one transaction of slop per period).
func TestGuaranteeNotExceeded(t *testing.T) {
	s, u := newUSD()
	ch, _ := u.Open("a", atropos.QoS{P: ms(250), S: ms(25), L: ms(10)}, 1)
	u.Grant("a", wholeDisk(u))
	s.Spawn("a", func(p *sim.Proc) {
		buf := make([]byte, 16*disk.BlockSize)
		for n := int64(0); ; n++ {
			// Writes: ~10ms each, uncachable.
			if _, err := ch.Do(p, &Request{Op: disk.Write, Block: (n % 5000) * 16, Count: 16, Data: buf}); err != nil {
				return
			}
		}
	})
	s.RunFor(5 * time.Second)
	busy := u.Log.TotalBusy(0, s.Now())["a"]
	// 20 periods x 25ms = 0.5s guarantee; allow one txn of roll-over slop.
	if busy > 0.5+0.035 {
		t.Fatalf("busy %.3fs exceeds guarantee 0.5s", busy)
	}
	if busy < 0.35 {
		t.Fatalf("busy %.3fs far below guarantee — scheduler underserving", busy)
	}
}

// TestSlackScheduling: an x=true client may consume otherwise-idle disk time
// beyond its guarantee; an x=false client may not.
func TestSlackScheduling(t *testing.T) {
	run := func(slackOn bool, x bool) int64 {
		s, u := newUSD()
		u.SlackEnabled = slackOn
		ch, _ := u.Open("a", atropos.QoS{P: ms(250), S: ms(25), X: x, L: ms(10)}, 4)
		u.Grant("a", wholeDisk(u))
		s.Spawn("a", func(p *sim.Proc) {
			next := int64(0)
			inflight := 0
			for {
				for inflight < 4 {
					if err := ch.Submit(p, &Request{Op: disk.Read, Block: next % 800000, Count: 16}); err != nil {
						return
					}
					next += 16
					inflight++
				}
				if _, err := ch.Await(p); err != nil {
					return
				}
				inflight--
			}
		})
		s.RunFor(3 * time.Second)
		st, _ := u.Stats("a")
		u.Stop()
		s.RunUntilIdle(1 << 20)
		return st.Txns
	}
	base := run(false, true)
	slacked := run(true, true)
	notEligible := run(true, false)
	if slacked < base*3 {
		t.Fatalf("slack gave little benefit: base=%d slacked=%d", base, slacked)
	}
	if notEligible > base*3/2 {
		t.Fatalf("x=false client received slack: base=%d got=%d", base, notEligible)
	}
}

// TestAllocationEventsLogged: period boundaries appear in the trace.
func TestAllocationEventsLogged(t *testing.T) {
	s, u := newUSD()
	ch, _ := u.Open("a", atropos.QoS{P: ms(250), S: ms(25), L: ms(10)}, 1)
	u.Grant("a", wholeDisk(u))
	s.Spawn("a", func(p *sim.Proc) {
		buf := make([]byte, 16*disk.BlockSize)
		for n := int64(0); ; n++ {
			if _, err := ch.Do(p, &Request{Op: disk.Write, Block: n % 1000 * 16, Count: 16, Data: buf}); err != nil {
				return
			}
		}
	})
	s.RunFor(2 * time.Second)
	allocs := 0
	for _, e := range u.Log.Events() {
		if e.Kind == trace.Allocation && e.Client == "a" {
			allocs++
		}
	}
	if allocs < 6 || allocs > 8 { // ~7 boundaries in 2s after the initial one
		t.Fatalf("allocation events = %d", allocs)
	}
}

func TestStatsUnknownClient(t *testing.T) {
	_, u := newUSD()
	if _, ok := u.Stats("ghost"); ok {
		t.Fatal("stats for unknown client")
	}
	if err := u.Grant("ghost", Extent{}); err == nil {
		t.Fatal("grant to unknown client succeeded")
	}
	if err := u.Close("ghost"); err == nil {
		t.Fatal("close of unknown client succeeded")
	}
}

func TestOpenAfterStop(t *testing.T) {
	s, u := newUSD()
	u.Stop()
	s.RunUntilIdle(1000)
	if _, err := u.Open("a", atropos.QoS{P: ms(250), S: ms(25)}, 1); !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v", err)
	}
}

func TestRequestTimestamps(t *testing.T) {
	s, u := newUSD()
	ch, _ := u.Open("a", atropos.QoS{P: ms(250), S: ms(100), L: ms(10)}, 1)
	u.Grant("a", wholeDisk(u))
	s.Spawn("a", func(p *sim.Proc) {
		r, err := ch.Do(p, &Request{Op: disk.Read, Block: 0, Count: 16})
		if err != nil {
			t.Error(err)
			return
		}
		if !(r.Submitted() <= r.Started() && r.Started() < r.Completed()) {
			t.Errorf("timestamps out of order: %v %v %v", r.Submitted(), r.Started(), r.Completed())
		}
	})
	s.RunFor(time.Second)
}

// TestFCFSMode: with FCFS scheduling, service order follows submission
// time, not deadlines, and nothing is charged.
func TestFCFSMode(t *testing.T) {
	s, u := newUSD()
	u.FCFS = true
	chA, _ := u.Open("a", atropos.QoS{P: ms(250), S: ms(10)}, 4)
	chB, _ := u.Open("b", atropos.QoS{P: ms(250), S: ms(200)}, 4)
	u.Grant("a", wholeDisk(u))
	u.Grant("b", wholeDisk(u))
	var order []string
	s.Spawn("a", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			if _, err := chA.Do(p, &Request{Op: disk.Read, Block: int64(i) * 16, Count: 16}); err != nil {
				return
			}
			order = append(order, "a")
		}
	})
	s.Spawn("b", func(p *sim.Proc) {
		p.Sleep(time.Microsecond) // submit strictly after a's first
		for i := 0; i < 4; i++ {
			if _, err := chB.Do(p, &Request{Op: disk.Read, Block: 100000 + int64(i)*16, Count: 16}); err != nil {
				return
			}
			order = append(order, "b")
		}
	})
	s.RunFor(2 * time.Second)
	// Strict alternation by submission time, despite b's 20x contract.
	want := []string{"a", "b", "a", "b", "a", "b", "a", "b"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want alternation", order)
		}
	}
	// Nothing charged in FCFS mode.
	stA, _ := u.Stats("a")
	if stA.Charged != 0 {
		t.Fatalf("charged %v in FCFS mode", stA.Charged)
	}
	u.Stop()
	s.RunUntilIdle(1 << 20)
}

// TestRollOverVisibleInTrace reproduces the paper's Fig. 8 observation: a
// client with a small slice completes a transaction that overruns its
// remaining time, then receives less in the following period.
func TestRollOverVisibleInTrace(t *testing.T) {
	s, u := newUSD()
	ch, _ := u.Open("a", atropos.QoS{P: ms(250), S: ms(25), L: ms(10)}, 1)
	u.Grant("a", wholeDisk(u))
	s.Spawn("a", func(p *sim.Proc) {
		buf := make([]byte, 16*disk.BlockSize)
		for n := int64(0); ; n++ {
			if _, err := ch.Do(p, &Request{Op: disk.Write, Block: (n % 4000) * 16, Count: 16, Data: buf}); err != nil {
				return
			}
		}
	})
	s.RunFor(5 * time.Second)
	// Count transactions per period: with ~10ms writes against a 25ms
	// slice, some periods see 3 txns (>25ms, via roll-over) and the
	// following period then sees fewer.
	periods := make(map[int64]int)
	for _, e := range u.Log.ByClient("a") {
		if e.Kind == trace.Transaction {
			periods[int64(e.Start)/int64(ms(250))]++
		}
	}
	three, lean := 0, 0
	for pd, n := range periods {
		if n >= 3 {
			three++
			if periods[pd+1] > 0 && periods[pd+1] < 3 {
				lean++
			}
		}
	}
	if three == 0 {
		t.Fatal("no period completed 3 transactions (roll-over never exercised)")
	}
	if lean == 0 {
		t.Fatal("no lean period followed an overrun period")
	}
	u.Stop()
	s.RunUntilIdle(1 << 20)
}
