package usd

import (
	"fmt"

	"nemesis/internal/disk"
	"nemesis/internal/obs"
	"nemesis/internal/sim"
)

// Fork returns a deep copy of the USD on the forked simulator, disk and
// registry, plus a channel identity map (parent channel → forked channel) so
// holders of IO channels (swap files, pagers) can re-point themselves, and
// the sequence numbers of re-armed lax timers for the snapshot's event
// accounting.
//
// The service process cannot have its stack cloned, so the fork point must be
// an instant at which the loop is parked with nothing to do: no transaction
// in service and every request and completion FIFO empty. The forked USD
// respawns its loop, whose bootstrap pass re-derives the identical parked
// state — refresh at the fork instant is a no-op (the parent already granted
// any due allocation) and it re-parks on the same absolute period boundary.
// Lax accrual spans in progress are carried over exactly: the accrual start
// is copied and the settle timer is re-armed at its original (instant, seq).
func (u *USD) Fork(ns *sim.Simulator, nd *disk.Disk, r *obs.Registry) (*USD, map[*Channel]*Channel, []uint64, error) {
	if u.stopped {
		return nil, nil, nil, fmt.Errorf("usd: cannot fork a stopped USD")
	}
	core, am := u.core.Fork()
	nu := &USD{
		sim:           ns,
		disk:          nd,
		core:          core,
		clients:       make(map[string]*client, len(u.clients)),
		order:         append([]string(nil), u.order...),
		wake:          sim.NewCond(ns),
		Log:           u.Log.Clone(),
		Obs:           r,
		SlackEnabled:  u.SlackEnabled,
		LaxityEnabled: u.LaxityEnabled,
		FCFS:          u.FCFS,
	}
	chans := make(map[*Channel]*Channel, len(u.clients))
	var claimed []uint64
	for _, name := range u.order {
		cl := u.clients[name]
		if cl.inService {
			return nil, nil, nil, fmt.Errorf("usd: cannot fork with client %q in service", name)
		}
		if n := cl.ch.reqs.Len(); n != 0 {
			return nil, nil, nil, fmt.Errorf("usd: cannot fork with %d pending requests on %q", n, name)
		}
		if n := cl.ch.comps.Len(); n != 0 {
			return nil, nil, nil, fmt.Errorf("usd: cannot fork with %d undrained completions on %q", n, name)
		}
		nch := &Channel{
			name:   name,
			usd:    nu,
			reqs:   sim.NewQueue[*Request](ns, cl.ch.reqs.Cap()),
			comps:  sim.NewQueue[*Request](ns, cl.ch.comps.Cap()),
			closed: cl.ch.closed,
		}
		ncl := &client{
			ac:         am[cl.ac],
			ch:         nch,
			extents:    append([]Extent(nil), cl.extents...),
			accruing:   cl.accruing,
			worklessAt: cl.worklessAt,
			txns:       cl.txns,
			bytes:      cl.bytes,
			dropped:    cl.dropped,
		}
		ncl.settleFn = func() { nu.settleLax(ncl) }
		if ncl.accruing {
			at, seq, ok := cl.laxTimer.When()
			if !ok {
				return nil, nil, nil, fmt.Errorf("usd: client %q accruing lax with no live settle timer", name)
			}
			ncl.laxTimer = ns.RestoreAt(at, seq, ncl.settleFn)
			claimed = append(claimed, seq)
		}
		if nu.Obs != nil {
			ncl.hQueueWait = nu.Obs.Histogram("usd", "queue_wait", name)
			ncl.hService = nu.Obs.Histogram("usd", "service", name)
			ncl.cTxns = nu.Obs.Counter("usd", "txns", name)
			ncl.cBytes = nu.Obs.Counter("usd", "bytes", name)
		}
		nu.clients[name] = ncl
		chans[cl.ch] = nch
	}
	nu.proc = ns.Spawn("usd", nu.run)
	// If the parent loop is parked on a period boundary (WaitTimeout), the
	// respawned loop will re-derive the identical park — but its park event
	// would draw a fresh seq, flipping same-instant tie order against other
	// timers. Donate the parent park event's seq so the forked park sorts
	// exactly where the parent's does.
	if at, seq, ok := u.sim.ParkedWake(u.proc); ok {
		ns.DonateWakeSeq(nu.proc, at, seq)
	}
	return nu, chans, claimed, nil
}

// SetClientX flips the extra-time (x) flag of one client's contract in
// place. Ablation cells use it to reconfigure a forked world after the warm
// phase without re-admitting the client.
func (u *USD) SetClientX(name string, x bool) error {
	cl, ok := u.clients[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownClient, name)
	}
	cl.ac.SetExtra(x)
	return nil
}
