package usd

import (
	"errors"

	"nemesis/internal/disk"
	"nemesis/internal/sim"
)

// Errors returned by channel operations.
var (
	ErrClosed       = errors.New("usd: channel closed")
	ErrBadRequest   = errors.New("usd: malformed request")
	ErrNoSuchExtent = errors.New("usd: request outside granted extents")
)

// Request is one disk transaction travelling over an IO channel. For writes
// the caller supplies Data; for reads the USD fills Data (allocating it if
// nil). Err carries the outcome back on the completion FIFO.
type Request struct {
	Op    disk.Op
	Block int64 // absolute disk block
	Count int   // number of blocks
	Data  []byte
	Err   error

	// Tag is opaque to the USD; clients use it to match completions when
	// pipelining.
	Tag any

	submitted sim.Time
	started   sim.Time
	completed sim.Time
}

// Submitted returns when the request entered the IO channel.
func (r *Request) Submitted() sim.Time { return r.submitted }

// Started returns when the USD began servicing the request.
func (r *Request) Started() sim.Time { return r.started }

// Completed returns when servicing finished.
func (r *Request) Completed() sim.Time { return r.completed }

// Channel is the FIFO-pair IO channel between one client and the USD (the
// paper's rbufs-like scheme): requests flow in on one FIFO, completions
// return on another. The channel depth bounds how far a client may pipeline.
type Channel struct {
	name   string
	usd    *USD
	reqs   *sim.Queue[*Request]
	comps  *sim.Queue[*Request]
	closed bool
}

// Name returns the owning client's name.
func (ch *Channel) Name() string { return ch.name }

// Depth returns the pipeline depth.
func (ch *Channel) Depth() int { return ch.reqs.Cap() }

// Pending returns the number of submitted-but-unserviced requests.
func (ch *Channel) Pending() int { return ch.reqs.Len() }

// Submit enqueues a request, blocking p while the FIFO is full. The USD is
// woken and, if the client was accruing lax time, the span is settled.
func (ch *Channel) Submit(p *sim.Proc, r *Request) error {
	if ch.closed {
		return ErrClosed
	}
	if r.Count <= 0 {
		return ErrBadRequest
	}
	if r.Op == disk.Write && len(r.Data) != r.Count*disk.BlockSize {
		return ErrBadRequest
	}
	if r.Op == disk.Read && r.Data == nil {
		r.Data = make([]byte, r.Count*disk.BlockSize)
	}
	if r.Op == disk.Read && len(r.Data) != r.Count*disk.BlockSize {
		return ErrBadRequest
	}
	r.submitted = p.Now()
	if !ch.reqs.Send(p, r) {
		return ErrClosed
	}
	ch.usd.onArrival(ch.name)
	return nil
}

// Await blocks p until the oldest completion is available.
func (ch *Channel) Await(p *sim.Proc) (*Request, error) {
	r, ok := ch.comps.Recv(p)
	if !ok {
		return nil, ErrClosed
	}
	return r, nil
}

// Do submits r and waits for its completion — the convenience path for
// unpipelined clients such as pagers. The returned request is r itself.
func (ch *Channel) Do(p *sim.Proc, r *Request) (*Request, error) {
	if err := ch.Submit(p, r); err != nil {
		return nil, err
	}
	done, err := ch.Await(p)
	if err != nil {
		return nil, err
	}
	return done, done.Err
}

// Close tears the channel down. In-flight requests complete; subsequent
// submissions fail.
func (ch *Channel) Close() {
	if ch.closed {
		return
	}
	ch.closed = true
	ch.reqs.Close()
	ch.comps.Close()
}
