// Package usd implements the User-Safe Disk: the data-path half of the
// paper's User-Safe Backing Store. Clients hold QoS contracts (p, s, x, l)
// and communicate over FIFO IO channels; a single service thread in the USD
// domain picks, per transaction, the client with the earliest deadline
// (Atropos), charges actual transaction time against the client's slice,
// charges "lax" time to runnable clients with no work pending, and
// optionally hands schedule slack to x=true clients.
//
// The USD is safe in the exokernel sense the paper contrasts with: a client
// may only touch disk extents explicitly granted to it (by the SFS or
// another control-path entity), so no client can read or corrupt another's
// swap.
package usd

import (
	"errors"
	"fmt"
	"time"

	"nemesis/internal/atropos"
	"nemesis/internal/disk"
	"nemesis/internal/obs"
	"nemesis/internal/sim"
	"nemesis/internal/trace"
)

// Errors returned by the USD control path.
var (
	ErrStopped       = errors.New("usd: stopped")
	ErrUnknownClient = errors.New("usd: unknown client")
)

// Extent is a contiguous range of disk blocks [Start, Start+Count).
type Extent struct {
	Start int64
	Count int64
}

// Contains reports whether [block, block+n) lies inside the extent.
func (e Extent) Contains(block int64, n int) bool {
	return block >= e.Start && block+int64(n) <= e.Start+e.Count
}

func (e Extent) String() string {
	return fmt.Sprintf("[%d,+%d)", e.Start, e.Count)
}

// client is the USD's view of one contracted consumer.
type client struct {
	ac      *atropos.Client
	ch      *Channel
	extents []Extent

	// Lax accrual: a Runnable client with no pending work accrues lax
	// time from worklessAt until work arrives or the budget (or slice)
	// runs out.
	accruing   bool
	worklessAt sim.Time
	laxTimer   sim.Timer
	settleFn   func() // pre-bound settleLax, re-armed on every idle span
	inService  bool

	// Counters.
	txns    int64
	bytes   int64
	dropped int64 // completions lost to a full completion FIFO

	// Telemetry handles, cached at Open (nil when telemetry is off).
	hQueueWait *obs.Histogram
	hService   *obs.Histogram
	cTxns      *obs.Counter
	cBytes     *obs.Counter
}

// Stats is a snapshot of one client's activity.
type Stats struct {
	Txns        int64
	Bytes       int64
	Charged     time.Duration
	LaxCharged  time.Duration
	Allocations int64
	Remain      time.Duration
	State       atropos.State
	// Dropped counts completions discarded because the client let its
	// completion FIFO fill.
	Dropped int64
}

// USD is the user-safe disk domain.
type USD struct {
	sim  *sim.Simulator
	disk *disk.Disk
	core *atropos.Core

	clients map[string]*client
	order   []string // deterministic iteration
	wake    *sim.Cond
	proc    *sim.Proc
	stopped bool

	// Log, when non-nil, receives scheduler trace events (transactions,
	// lax charges, allocations, slack grants).
	Log *trace.Log
	// Obs, when non-nil, receives per-client queue-wait/service latency
	// histograms and transaction counters. Set before opening clients.
	Obs *obs.Registry
	// SlackEnabled turns on optimistic scheduling for x=true clients.
	SlackEnabled bool
	// LaxityEnabled turns the laxity mechanism on (the paper's fix for
	// the short-block problem). When false, a runnable client with no
	// pending work is immediately marked idle until its next allocation —
	// the behaviour of "early versions of the USD scheduler".
	LaxityEnabled bool
	// FCFS disables QoS scheduling entirely: requests are served oldest
	// first and nothing is charged. This models the unscheduled disk of
	// conventional systems, for the ablation experiments.
	FCFS bool
}

// New creates a USD over d and starts its service process on s.
func New(s *sim.Simulator, d *disk.Disk) *USD {
	u := &USD{
		sim:           s,
		disk:          d,
		core:          atropos.NewCore(1.0),
		clients:       make(map[string]*client),
		wake:          sim.NewCond(s),
		LaxityEnabled: true,
	}
	u.proc = s.Spawn("usd", u.run)
	return u
}

// Disk returns the underlying drive (for tools and tests).
func (u *USD) Disk() *disk.Disk { return u.disk }

// Contracted returns the admitted fraction of disk time.
func (u *USD) Contracted() float64 { return u.core.Contracted() }

// QueuedRequests returns the total number of requests pending across every
// client channel — the USD queue depth the timeline recorder samples.
func (u *USD) QueuedRequests() int {
	total := 0
	for _, name := range u.order {
		total += u.clients[name].ch.Pending()
	}
	return total
}

// Open admits a client with contract q and returns its IO channel with the
// given pipeline depth. Admission control rejects aggregate guarantees
// exceeding the whole disk.
func (u *USD) Open(name string, q atropos.QoS, depth int) (*Channel, error) {
	if u.stopped {
		return nil, ErrStopped
	}
	ac, err := u.core.Admit(name, q, u.sim.Now())
	if err != nil {
		return nil, err
	}
	if depth < 1 {
		depth = 1
	}
	ch := &Channel{
		name: name,
		usd:  u,
		reqs: sim.NewQueue[*Request](u.sim, depth),
		// The completion FIFO holds twice the pipeline depth: a client
		// draining completions no slower than it submits can never lose
		// one. A client that ignores its completion ring loses them —
		// its own problem, never the USD's (it must not block the
		// service thread).
		comps: sim.NewQueue[*Request](u.sim, 2*depth),
	}
	cl := &client{ac: ac, ch: ch}
	cl.settleFn = func() { u.settleLax(cl) }
	if u.Obs != nil {
		cl.hQueueWait = u.Obs.Histogram("usd", "queue_wait", name)
		cl.hService = u.Obs.Histogram("usd", "service", name)
		cl.cTxns = u.Obs.Counter("usd", "txns", name)
		cl.cBytes = u.Obs.Counter("usd", "bytes", name)
	}
	u.clients[name] = cl
	u.order = append(u.order, name)
	u.startLax(cl)
	return ch, nil
}

// Close removes a client and releases its contract.
func (u *USD) Close(name string) error {
	cl, ok := u.clients[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownClient, name)
	}
	cl.laxTimer.Stop()
	cl.ch.Close()
	delete(u.clients, name)
	for i, n := range u.order {
		if n == name {
			u.order = append(u.order[:i], u.order[i+1:]...)
			break
		}
	}
	return u.core.Remove(name)
}

// Grant adds a disk extent the named client may access.
func (u *USD) Grant(name string, e Extent) error {
	cl, ok := u.clients[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownClient, name)
	}
	cl.extents = append(cl.extents, e)
	return nil
}

// Stats returns a snapshot for the named client.
func (u *USD) Stats(name string) (Stats, bool) {
	cl, ok := u.clients[name]
	if !ok {
		return Stats{}, false
	}
	return Stats{
		Txns:        cl.txns,
		Bytes:       cl.bytes,
		Charged:     cl.ac.Charged(),
		LaxCharged:  cl.ac.LaxCharged(),
		Allocations: cl.ac.Allocations(),
		Remain:      cl.ac.Remain(),
		State:       cl.ac.State(),
		Dropped:     cl.dropped,
	}, true
}

// Stop terminates the USD service process.
func (u *USD) Stop() {
	if u.stopped {
		return
	}
	u.stopped = true
	u.wake.Broadcast()
	if u.proc != nil && !u.proc.Done() {
		u.proc.Kill()
	}
}

// onArrival is called by Channel.Submit: settle any lax span, mark work and
// wake the service loop.
func (u *USD) onArrival(name string) {
	cl, ok := u.clients[name]
	if !ok {
		return
	}
	u.settleLax(cl)
	u.core.NoteWork(cl.ac)
	u.wake.Signal()
}

// permitted checks a request against the client's granted extents.
func (u *USD) permitted(cl *client, r *Request) bool {
	for _, e := range cl.extents {
		if e.Contains(r.Block, r.Count) {
			return true
		}
	}
	return false
}

// startLax begins lax accrual for cl if it is runnable with no pending work.
// With laxity disabled the client is idled immediately (short-block
// behaviour).
func (u *USD) startLax(cl *client) {
	if cl.accruing || cl.inService || cl.ch.Pending() > 0 {
		return
	}
	if cl.ac.State() != atropos.Runnable {
		return
	}
	if !u.LaxityEnabled || cl.ac.LaxBudget() == 0 {
		// No laxity: the client is ignored until its next periodic
		// allocation — the short-block behaviour of the early USD.
		u.core.Idle(cl.ac)
		return
	}
	cl.accruing = true
	cl.worklessAt = u.sim.Now()
	// The span ends no later than the lax budget or slice exhaustion.
	limit := cl.ac.LaxBudget()
	if r := cl.ac.Remain(); r < limit {
		limit = r
	}
	cl.laxTimer = u.sim.After(limit, cl.settleFn)
}

// settleLax charges the lax span accrued so far, if any, and logs it.
func (u *USD) settleLax(cl *client) {
	if !cl.accruing {
		return
	}
	cl.accruing = false
	cl.laxTimer.Stop()
	now := u.sim.Now()
	d := now.Sub(cl.worklessAt)
	if d < 0 {
		d = 0
	}
	if max := cl.ac.LaxBudget(); d > max {
		d = max
	}
	u.core.ChargeLax(cl.ac, d)
	if d > 0 {
		u.Log.Add(trace.Event{Kind: trace.Lax, Client: cl.ac.Name(), Start: cl.worklessAt, End: cl.worklessAt.Add(d)})
	}
}

// refresh grants due allocations, logging them and restarting lax accrual
// for clients that come back runnable with no work.
func (u *USD) refresh(now sim.Time) {
	// Settle lax for clients whose boundary has arrived so the span does
	// not leak across periods.
	for _, name := range u.order {
		cl := u.clients[name]
		if cl.accruing && cl.ac.Deadline() <= now {
			u.settleLax(cl)
		}
	}
	for _, ac := range u.core.Refresh(now) {
		u.Log.Add(trace.Event{Kind: trace.Allocation, Client: ac.Name(), Start: now, End: now})
		if cl, ok := u.clients[ac.Name()]; ok {
			u.startLax(cl)
		}
	}
}

// oldestPending returns the client whose oldest queued request was
// submitted earliest (FCFS mode).
func (u *USD) oldestPending() *client {
	var best *client
	var bestAt sim.Time
	for _, name := range u.order {
		cl := u.clients[name]
		req, ok := cl.ch.reqs.Peek()
		if !ok {
			continue
		}
		if best == nil || req.submitted < bestAt {
			best, bestAt = cl, req.submitted
		}
	}
	return best
}

// hasWork reports whether the atropos client has a submitted request.
func (u *USD) hasWork(ac *atropos.Client) bool {
	cl, ok := u.clients[ac.Name()]
	return ok && cl.ch.Pending() > 0
}

// serve performs one transaction for cl, charging it unless slack is true.
func (u *USD) serve(p *sim.Proc, cl *client, slack bool) {
	req, ok := cl.ch.reqs.TryRecv()
	if !ok {
		return
	}
	cl.inService = true
	t0 := p.Now()
	req.started = t0
	if !u.permitted(cl, req) {
		req.Err = fmt.Errorf("%w: %s %d+%d for %q", ErrNoSuchExtent, req.Op, req.Block, req.Count, cl.ac.Name())
	} else {
		switch req.Op {
		case disk.Read:
			req.Err = u.disk.ReadAt(p, req.Block, req.Count, req.Data)
		case disk.Write:
			req.Err = u.disk.WriteAt(p, req.Block, req.Count, req.Data)
		default:
			req.Err = ErrBadRequest
		}
	}
	t1 := p.Now()
	req.completed = t1
	cl.inService = false
	cl.txns++
	cl.cTxns.Inc()
	cl.hQueueWait.Observe(t0.Sub(req.submitted))
	cl.hService.Observe(t1.Sub(t0))
	if req.Err == nil {
		cl.bytes += int64(req.Count) * disk.BlockSize
		cl.cBytes.Add(int64(req.Count) * disk.BlockSize)
	}
	kind := trace.Transaction
	if slack {
		kind = trace.Slack
	} else {
		u.core.Charge(cl.ac, t1.Sub(t0))
	}
	u.Log.Add(trace.Event{Kind: kind, Client: cl.ac.Name(), Start: t0, End: t1})
	// Hand the completion back without ever blocking the service thread;
	// a client that lets its completion ring fill loses completions (and
	// the drop is counted).
	if !cl.ch.comps.TrySend(req) {
		cl.dropped++
	}
	u.startLax(cl)
}

// run is the USD service loop.
func (u *USD) run(p *sim.Proc) {
	for !u.stopped {
		now := p.Now()
		if u.FCFS {
			if cl := u.oldestPending(); cl != nil {
				u.serve(p, cl, true) // uncharged: no QoS
				continue
			}
			u.wake.Wait(p)
			continue
		}
		u.refresh(now)

		if pick := u.core.PickEDFWith(u.hasWork); pick != nil {
			u.serve(p, u.clients[pick.Name()], false)
			continue
		}

		if u.SlackEnabled {
			slackPick := u.core.PickSlack(func(ac *atropos.Client) bool { return u.hasWork(ac) })
			if slackPick != nil {
				u.serve(p, u.clients[slackPick.Name()], true)
				continue
			}
		}

		// Nothing serviceable: sleep until a request arrives or the next
		// period boundary.
		if boundary, ok := u.core.NextBoundary(); ok && boundary > now {
			u.wake.WaitTimeout(p, boundary.Sub(now))
		} else if !ok {
			u.wake.Wait(p)
		} else {
			// A boundary is due right now; loop to refresh.
			p.Yield()
		}
	}
}
