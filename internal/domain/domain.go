// Package domain implements the application side of self-paging: domains
// (the Nemesis analogue of processes), their user-level threads, the
// memory-management entry (MMEntry: a notification handler plus worker
// threads), custom fault handlers, and the revocation protocol's
// application half. Every domain deals with all of its own memory faults
// using its own CPU guarantee, its own physical frames and its own backing
// store — the kernel's only involvement is the dispatch.
package domain

import (
	"errors"
	"fmt"

	"nemesis/internal/cpu"
	"nemesis/internal/fault"
	"nemesis/internal/mem"
	"nemesis/internal/obs"
	"nemesis/internal/sim"
	"nemesis/internal/vm"
)

// Errors returned by domain operations.
var (
	ErrKilled   = errors.New("domain: killed")
	ErrNoDriver = errors.New("domain: no stretch driver bound")
	ErrFaulted  = errors.New("domain: unresolvable fault")
	ErrNotBound = errors.New("domain: address not in any stretch")
)

// Result is a stretch driver's verdict on a fault-resolution attempt.
type Result uint8

const (
	// Success: the fault is resolved; the faulting thread may continue.
	Success Result = iota
	// Retry: the fast path could not proceed (it would need IDC); a
	// worker thread must retry with activations on.
	Retry
	// Failure: the fault cannot be resolved; the thread (and domain)
	// have no safety net.
	Failure
)

func (r Result) String() string {
	switch r {
	case Success:
		return "success"
	case Retry:
		return "retry"
	case Failure:
		return "failure"
	default:
		return fmt.Sprintf("result(%d)", r)
	}
}

// Driver is a stretch driver: the unprivileged, application-level object
// responsible for providing backing for the stretches bound to it.
type Driver interface {
	// SatisfyFault attempts to resolve f. canIDC distinguishes the
	// limited notification-handler environment (false: no inter-domain
	// communication) from worker-thread context (true).
	SatisfyFault(p *sim.Proc, f *vm.Fault, canIDC bool) Result
	// Relinquish releases up to k frames back to the domain's unused
	// pool (cleaning dirty pages as needed), returning how many were
	// freed. Used when handling a revocation notification.
	Relinquish(p *sim.Proc, k int) int
	// DriverName identifies the driver for diagnostics.
	DriverName() string
}

// FaultHandler is an application-installed override for one fault class
// (the appel benchmarks override the access-violation fault type). It runs
// in activation-handler context; returning true marks the fault resolved.
type FaultHandler func(t *Thread, f *vm.Fault) bool

// Env carries the system-wide pieces a domain needs.
type Env struct {
	Sim    *sim.Simulator
	TS     *vm.TranslationSystem
	SA     *vm.StretchAllocator
	Store  *mem.FrameStore
	RamTab *mem.RamTab
	Costs  cpu.Costs
	// Obs is the telemetry registry; nil disables all instrumentation at
	// zero cost (every obs handle method is nil-safe).
	Obs *obs.Registry
}

// Stats counts a domain's memory-system activity.
type Stats struct {
	Faults        int64
	PageFaults    int64
	ProtFaults    int64
	UnallocFaults int64
	FastPath      int64 // faults resolved in the notification handler
	WorkerPath    int64 // faults needing a worker thread
	Revocations   int64
	BytesTouched  int64
}

// Domain is one application: a protection domain, a CPU contract, a frames
// allocator client, a set of stretch-driver bindings and some threads.
type Domain struct {
	env  Env
	id   mem.DomainID
	name string

	pd   *vm.ProtectionDomain
	cpu  *cpu.DomainCPU
	memc *mem.Client

	drivers  map[vm.StretchID]Driver
	handlers map[vm.FaultClass]FaultHandler

	faultEvent  fault.Event
	revokeEvent fault.Event

	mm      *MMEntry
	threads []*Thread
	killed  bool
	stats   Stats

	// lastFault is the most recent fault record the kernel made available
	// to this domain at dispatch.
	lastFault fault.Record

	// Cached telemetry handles (nil when Env.Obs is nil → no-ops, and the
	// fault fast path stays allocation-free).
	cFaults      *obs.Counter
	cFast        *obs.Counter
	cWorker      *obs.Counter
	cRevocations *obs.Counter

	// Activity tracking for the incremental crosstalk monitor (nil tracker
	// → markActive is a no-op).
	tracker    *ActivityTracker
	trackOrder int64
	trackFresh bool
	trackDirty bool
}

// New creates a domain. pd/cpuDom/memc come from the system facade, which
// admitted the domain with the system-wide allocators.
func New(env Env, id mem.DomainID, name string, pd *vm.ProtectionDomain, cpuDom *cpu.DomainCPU, memc *mem.Client) *Domain {
	d := &Domain{
		env:      env,
		id:       id,
		name:     name,
		pd:       pd,
		cpu:      cpuDom,
		memc:     memc,
		drivers:  make(map[vm.StretchID]Driver),
		handlers: make(map[vm.FaultClass]FaultHandler),
	}
	if env.Obs != nil {
		d.cFaults = env.Obs.Counter("domain", "faults", name)
		d.cFast = env.Obs.Counter("domain", "faults_fast", name)
		d.cWorker = env.Obs.Counter("domain", "faults_worker", name)
		d.cRevocations = env.Obs.Counter("domain", "revocations", name)
	}
	d.mm = newMMEntry(d)
	return d
}

// ID returns the domain identifier.
func (d *Domain) ID() mem.DomainID { return d.id }

// Name returns the domain's name.
func (d *Domain) Name() string { return d.name }

// PD returns the domain's protection domain.
func (d *Domain) PD() *vm.ProtectionDomain { return d.pd }

// CPU returns the domain's processor handle.
func (d *Domain) CPU() *cpu.DomainCPU { return d.cpu }

// MemClient returns the domain's frames-allocator client.
func (d *Domain) MemClient() *mem.Client { return d.memc }

// SetMemClient installs the frames-allocator client. Construction order
// requires the domain to exist (it is the revocation handler) before the
// allocator admits it, so the facade wires this in after admission.
func (d *Domain) SetMemClient(c *mem.Client) { d.memc = c }

// Env returns the system environment.
func (d *Domain) Env() Env { return d.env }

// Stats returns a copy of the counters.
func (d *Domain) Stats() Stats { return d.stats }

// Killed reports whether the domain has been destroyed.
func (d *Domain) Killed() bool { return d.killed }

// FaultEventValue returns the fault endpoint's event count.
func (d *Domain) FaultEventValue() uint64 { return d.faultEvent.Value() }

// NewStretch allocates a stretch owned by this domain and grants the
// domain's protection domain full rights (including meta) on it.
func (d *Domain) NewStretch(size uint64) (*vm.Stretch, error) {
	st, err := d.env.SA.New(d.id, size)
	if err != nil {
		return nil, err
	}
	d.env.TS.GrantInitial(d.pd, st.ID(), vm.Read|vm.Write|vm.Execute|vm.Meta)
	return st, nil
}

// Bind associates a stretch with a stretch driver: only then is it
// meaningful to talk about the stretch's contents.
func (d *Domain) Bind(st *vm.Stretch, drv Driver) {
	d.drivers[st.ID()] = drv
}

// DriverFor returns the driver bound to a stretch, or nil.
func (d *Domain) DriverFor(sid vm.StretchID) Driver { return d.drivers[sid] }

// ResidentPages sums the resident page counts of every bound stretch driver
// that reports one (the pager engines do). The timeline recorder samples it
// as the domain's paging working set.
func (d *Domain) ResidentPages() int {
	total := 0
	for _, drv := range d.drivers {
		if rp, ok := drv.(interface{ ResidentPages() int }); ok {
			total += rp.ResidentPages()
		}
	}
	return total
}

// SetFaultHandler installs a custom handler for one fault class,
// overriding the default dispatch (kill for protection/unallocated faults,
// stretch-driver resolution for page faults).
func (d *Domain) SetFaultHandler(c vm.FaultClass, h FaultHandler) {
	if h == nil {
		delete(d.handlers, c)
		return
	}
	d.handlers[c] = h
}

// Kill destroys the domain: all threads and workers unwind, and no further
// faults are serviceable. Frames are reclaimed by the frames allocator
// (whose kill path invokes this).
func (d *Domain) Kill() {
	if d.killed {
		return
	}
	d.killed = true
	// A killed domain's faulting threads unwind without finishing their
	// spans and its CPU waiters never report back; close its attribution
	// accounting at the kill instant so time stays conserved.
	d.env.Obs.Attr().DomainKilled(d.name)
	d.mm.kill()
	// Kill the calling thread (if any) last: Proc.Kill on the running
	// process unwinds immediately, which would skip the remaining ones.
	var self *Thread
	for _, t := range d.threads {
		if t.proc == nil {
			continue
		}
		if t.proc == d.env.Sim.Current() {
			self = t
			continue
		}
		t.proc.Kill()
	}
	if self != nil {
		self.proc.Kill()
	}
}

// Go spawns a user-level thread executing fn.
func (d *Domain) Go(name string, fn func(t *Thread)) *Thread {
	t := &Thread{dom: d, name: name}
	t.done = sim.NewCond(d.env.Sim)
	d.threads = append(d.threads, t)
	t.proc = d.env.Sim.Spawn(d.name+"/"+name, func(p *sim.Proc) {
		t.proc = p
		defer t.done.Broadcast()
		fn(t)
	})
	return t
}

// RevokeNotification implements mem.RevocationHandler: the frames allocator
// needs k frames from the top of our stack by deadline. The notification
// handler cannot do the cleaning itself (it may require IDC to the USD), so
// it unblocks the MMEntry's worker.
func (d *Domain) RevokeNotification(k int, deadline sim.Time) {
	if d.killed {
		return
	}
	d.revokeEvent.Send()
	d.stats.Revocations++
	d.markActive()
	d.cRevocations.Inc()
	d.mm.enqueueRevocation(k)
}

// LastFaultRecord returns the fault record of the most recent dispatch.
func (d *Domain) LastFaultRecord() fault.Record { return d.lastFault }

// dispatchFault is the kernel + activation path for a fault raised by t.
// It blocks t until the fault is resolved, and returns an error if the
// domain has no way to resolve it.
func (d *Domain) dispatchFault(t *Thread, f *vm.Fault) error {
	if d.killed {
		return ErrKilled
	}
	d.stats.Faults++
	d.markActive()
	switch f.Class {
	case vm.PageFault:
		d.stats.PageFaults++
	case vm.ProtectionFault:
		d.stats.ProtFaults++
	case vm.UnallocatedFault:
		d.stats.UnallocFaults++
	}
	d.cFaults.Inc()

	// Kernel part: save the activation context, record the fault for the
	// application and send an event to the faulting domain — then the
	// kernel is done. The span opens here: hop "dispatch" covers the trap
	// and activation delivery.
	d.lastFault = fault.Record{Fault: f, Thread: t.name, At: d.env.Sim.Now()}
	sp := d.env.Obs.StartSpan(d.name, f.Class.String())
	sp.SetThread(t.name)
	sp.BeginHop("dispatch")
	f.Span = sp
	d.faultEvent.Send()
	t.Compute(d.env.Costs.TrapCost())

	// The domain is activated and its notification handler demultiplexes
	// the event (charged as part of the user fault path below). Hop
	// "mmentry" covers the handler up to driver (or handler) entry.
	sp.BeginHop("mmentry")
	if h, ok := d.handlers[f.Class]; ok {
		t.Compute(d.env.Costs.UserFaultPath)
		if h(t, f) {
			sp.Finish("handler")
			return nil
		}
		sp.Finish("fatal")
		return fmt.Errorf("%w: handler declined %v", ErrFaulted, f)
	}

	if f.Class != vm.PageFault {
		// No safety net: an unhandled protection or unallocated fault is
		// fatal to the domain.
		sp.Finish("fatal")
		d.Kill()
		return fmt.Errorf("%w: %v", ErrFaulted, f)
	}

	drv := d.drivers[f.SID]
	if drv == nil {
		sp.Finish("fatal")
		d.Kill()
		return fmt.Errorf("%w: stretch %d", ErrNoDriver, f.SID)
	}

	// Fast path: the notification handler invokes the stretch driver in
	// its limited environment (no IDC).
	t.Compute(d.env.Costs.UserFaultPath)
	switch drv.SatisfyFault(t.proc, f, false) {
	case Success:
		d.stats.FastPath++
		d.cFast.Inc()
		sp.Finish("fast")
		return nil
	case Failure:
		sp.Finish("fatal")
		d.Kill()
		return fmt.Errorf("%w: %v", ErrFaulted, f)
	}

	// Retry: block the faulting thread and let a worker, with
	// activations on, resolve the fault (IDC permitted). Hop "queue"
	// covers the wait until the worker invokes the driver.
	d.stats.WorkerPath++
	d.cWorker.Inc()
	sp.BeginHop("queue")
	ok := d.mm.resolve(t.proc, f)
	if !ok {
		sp.Finish("fatal")
		d.Kill()
		return fmt.Errorf("%w: worker failed on %v", ErrFaulted, f)
	}
	sp.Finish("worker")
	return nil
}
