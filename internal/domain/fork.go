package domain

import (
	"fmt"
	"sort"

	"nemesis/internal/cpu"
	"nemesis/internal/mem"
	"nemesis/internal/vm"
)

// Fork returns a deep copy of the domain shell re-pointed at a forked world:
// env is the forked environment, npd/ncpu/memc the domain's twins in the
// forked translation system, CPU scheduler and frames allocator. Stretch
// drivers are NOT carried over — the caller forks each driver against the
// returned domain (drivers need the new domain for their base) and Bind
// re-populates the map. The MMEntry's worker is respawned; at a valid fork
// point it is parked on an empty queue, so the respawned worker parks
// identically.
//
// Threads are not carried: a fork point requires every workload thread to
// have exited (goroutine stacks cannot be cloned). Custom fault handlers are
// closures over parent-world objects and must be re-installed post-fork; the
// fork refuses a domain that still has any.
func (d *Domain) Fork(env Env, npd *vm.ProtectionDomain, ncpu *cpu.DomainCPU, memc *mem.Client) (*Domain, error) {
	if len(d.handlers) != 0 {
		return nil, fmt.Errorf("domain: cannot fork %q with %d custom fault handlers installed", d.name, len(d.handlers))
	}
	if !d.killed && d.mm != nil {
		if d.mm.stopped {
			return nil, fmt.Errorf("domain: cannot fork %q: mm-worker stopped but domain not killed", d.name)
		}
		if n := d.mm.QueueLen(); n != 0 {
			return nil, fmt.Errorf("domain: cannot fork %q with %d outstanding mm jobs", d.name, n)
		}
	}
	nd := &Domain{
		env:         env,
		id:          d.id,
		name:        d.name,
		pd:          npd,
		cpu:         ncpu,
		memc:        memc,
		drivers:     make(map[vm.StretchID]Driver, len(d.drivers)),
		handlers:    make(map[vm.FaultClass]FaultHandler),
		faultEvent:  d.faultEvent,
		revokeEvent: d.revokeEvent,
		killed:      d.killed,
		stats:       d.stats,
		trackOrder:  d.trackOrder,
		trackFresh:  d.trackFresh,
		trackDirty:  d.trackDirty,
	}
	// The record's *vm.Fault points into a parent thread's fault buffer and
	// its span into the parent registry; carry the scalar copy only.
	nd.lastFault = d.lastFault
	if d.lastFault.Fault != nil {
		f := *d.lastFault.Fault
		f.Span = nil
		nd.lastFault.Fault = &f
	}
	if env.Obs != nil {
		nd.cFaults = env.Obs.Counter("domain", "faults", nd.name)
		nd.cFast = env.Obs.Counter("domain", "faults_fast", nd.name)
		nd.cWorker = env.Obs.Counter("domain", "faults_worker", nd.name)
		nd.cRevocations = env.Obs.Counter("domain", "revocations", nd.name)
	}
	if memc != nil {
		memc.SetHandler(nd)
	}
	if nd.killed {
		nd.mm = &MMEntry{dom: nd, stopped: true}
	} else {
		nd.mm = newMMEntry(nd)
	}
	return nd, nil
}

// Binding pairs a stretch id with the driver bound to it.
type Binding struct {
	SID    vm.StretchID
	Driver Driver
}

// Bindings returns the domain's stretch-driver bindings in stretch-id order.
// The snapshot orchestrator walks them to fork each driver exactly once.
func (d *Domain) Bindings() []Binding {
	out := make([]Binding, 0, len(d.drivers))
	for sid, drv := range d.drivers {
		out = append(out, Binding{SID: sid, Driver: drv})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SID < out[j].SID })
	return out
}

// Fork returns a copy of the tracker with its pending fresh/dirty sets
// re-pointed at the forked domains via dm (parent domain → forked twin). The
// forked domains adopt the tracker; their per-domain order and flags were
// already copied by Domain.Fork, so the next Drain on either side returns
// the same named set in the same order.
func (tr *ActivityTracker) Fork(dm map[*Domain]*Domain) (*ActivityTracker, error) {
	if tr == nil {
		return nil, nil
	}
	ntr := &ActivityTracker{nextOrder: tr.nextOrder}
	remap := func(list []*Domain) ([]*Domain, error) {
		out := make([]*Domain, 0, len(list))
		for _, d := range list {
			nd := dm[d]
			if nd == nil {
				return nil, fmt.Errorf("domain: tracker holds unforked domain %q", d.name)
			}
			nd.tracker = ntr
			out = append(out, nd)
		}
		return out, nil
	}
	var err error
	if ntr.fresh, err = remap(tr.fresh); err != nil {
		return nil, err
	}
	if ntr.dirty, err = remap(tr.dirty); err != nil {
		return nil, err
	}
	for _, nd := range dm {
		nd.tracker = ntr
	}
	return ntr, nil
}
