package domain

import "sort"

// ActivityTracker accumulates the set of domains whose crosstalk-visible
// counters (faults, bytes touched, revocations) moved since the last drain,
// plus domains registered since the last drain. The incremental crosstalk
// monitor drains it once per sampling window and so touches only domains
// that actually did something — an idle domain costs nothing per window,
// which is what lets monitoring scale to thousands of mostly-quiet domains.
//
// The tracker is not a sampling source by itself: the monitor still reads
// each drained domain's cumulative Stats. It only answers "who changed?".
type ActivityTracker struct {
	nextOrder int64
	fresh     []*Domain // registered since last drain
	dirty     []*Domain // active since last drain (disjoint from fresh)
}

// NewActivityTracker returns an empty tracker.
func NewActivityTracker() *ActivityTracker { return &ActivityTracker{} }

// Register enrols a domain. The monitor sees it in the next drain (seeding
// its baseline exactly as a full scan's first window would). Registration
// order is the domain's stable processing order, mirroring the registration
// order a full scan iterates in.
func (tr *ActivityTracker) Register(d *Domain) {
	if tr == nil || d.tracker != nil {
		return
	}
	d.tracker = tr
	d.trackOrder = tr.nextOrder
	d.trackFresh = true
	tr.nextOrder++
	tr.fresh = append(tr.fresh, d)
}

// Drain returns the changed set — fresh and dirty domains, in registration
// order — and resets the tracker for the next window.
func (tr *ActivityTracker) Drain() []*Domain {
	out := make([]*Domain, 0, len(tr.fresh)+len(tr.dirty))
	for _, d := range tr.fresh {
		d.trackFresh = false
		out = append(out, d)
	}
	for _, d := range tr.dirty {
		d.trackDirty = false
		out = append(out, d)
	}
	tr.fresh = tr.fresh[:0]
	tr.dirty = tr.dirty[:0]
	sort.Slice(out, func(i, j int) bool { return out[i].trackOrder < out[j].trackOrder })
	return out
}

// ActivityOrder returns the domain's registration order in its tracker
// (meaningful only after Register).
func (d *Domain) ActivityOrder() int64 { return d.trackOrder }

// markActive notes counter movement since the last drain. One branchy
// nil/flag check on the fault and touch hot paths; appends at most once per
// window per domain.
func (d *Domain) markActive() {
	if d.tracker == nil || d.trackDirty || d.trackFresh {
		return
	}
	d.trackDirty = true
	d.tracker.dirty = append(d.tracker.dirty, d)
}
