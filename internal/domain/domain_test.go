package domain

import (
	"errors"
	"testing"
	"time"

	"nemesis/internal/atropos"
	"nemesis/internal/cpu"
	"nemesis/internal/mem"
	"nemesis/internal/sim"
	"nemesis/internal/vm"
)

// rig is a minimal world for domain tests: simulator, translation system,
// stretch allocator, frames allocator and CPU scheduler.
type rig struct {
	s      *sim.Simulator
	env    Env
	frames *mem.FramesAllocator
	sched  *cpu.Scheduler
}

func newRig() *rig {
	s := sim.New(1)
	store := mem.NewFrameStore(64)
	rt := mem.NewRamTab(64)
	ts := vm.NewTranslationSystem(rt)
	sa := vm.NewStretchAllocator(ts, 0x1000000, 0x9000000)
	sched := cpu.NewScheduler(s)
	return &rig{
		s:      s,
		env:    Env{Sim: s, TS: ts, SA: sa, Store: store, RamTab: rt, Costs: cpu.DefaultCosts()},
		frames: mem.NewFramesAllocator(s, store, rt),
		sched:  sched,
	}
}

// domain builds a domain with generous contracts.
func (r *rig) domain(t *testing.T, name string, frames uint64) *Domain {
	t.Helper()
	pd, err := r.env.TS.NewProtectionDomain()
	if err != nil {
		t.Fatal(err)
	}
	cpuDom, err := r.sched.Admit(name, atropos.QoS{P: 100 * time.Millisecond, S: 20 * time.Millisecond, X: true})
	if err != nil {
		t.Fatal(err)
	}
	d := New(r.env, r.nextID(), name, pd, cpuDom, nil)
	memc, err := r.frames.Admit(d.ID(), mem.Contract{Guaranteed: frames}, d)
	if err != nil {
		t.Fatal(err)
	}
	d.SetMemClient(memc)
	return d
}

var rigIDs mem.DomainID

func (r *rig) nextID() mem.DomainID {
	rigIDs++
	return rigIDs
}

// fixedDriver maps the faulted page to a pre-granted frame.
type fixedDriver struct {
	rig    *rig
	dom    *Domain
	st     *vm.Stretch
	result Result // forced result, or Success-path when 0
	calls  int
	idc    []bool
}

func (f *fixedDriver) DriverName() string { return "fixed" }

func (f *fixedDriver) SatisfyFault(p *sim.Proc, fault *vm.Fault, canIDC bool) Result {
	f.calls++
	f.idc = append(f.idc, canIDC)
	if f.result != Success {
		return f.result
	}
	pfn, err := f.dom.MemClient().TryAllocFrame()
	if err != nil {
		return Failure
	}
	va := vm.PageOf(fault.VA).Base()
	if err := f.rig.env.TS.Map(f.dom.PD(), f.dom.ID(), va, pfn, vm.DefaultAttr()); err != nil {
		return Failure
	}
	return Success
}

func (f *fixedDriver) Relinquish(p *sim.Proc, k int) int { return 0 }

func TestResultString(t *testing.T) {
	if Success.String() != "success" || Retry.String() != "retry" || Failure.String() != "failure" {
		t.Fatal("result strings")
	}
	if Result(7).String() != "result(7)" {
		t.Fatal("unknown result string")
	}
}

func TestNewStretchGrantsRights(t *testing.T) {
	r := newRig()
	d := r.domain(t, "a", 8)
	st, err := d.NewStretch(2 * vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	rights := d.PD().RightsOn(st.ID())
	if !rights.Has(vm.Read | vm.Write | vm.Execute | vm.Meta) {
		t.Fatalf("rights = %v", rights)
	}
}

func TestFaultDispatchFastPath(t *testing.T) {
	r := newRig()
	d := r.domain(t, "a", 8)
	st, _ := d.NewStretch(4 * vm.PageSize)
	drv := &fixedDriver{rig: r, dom: d, st: st}
	d.Bind(st, drv)
	if d.DriverFor(st.ID()) != drv {
		t.Fatal("DriverFor")
	}
	var done bool
	d.Go("main", func(th *Thread) {
		if err := th.Touch(st.Base(), 4*vm.PageSize, vm.AccessWrite); err != nil {
			t.Error(err)
			return
		}
		done = true
	})
	r.s.RunFor(time.Second)
	if !done {
		t.Fatal("thread incomplete")
	}
	stats := d.Stats()
	if stats.PageFaults != 4 || stats.FastPath != 4 || stats.WorkerPath != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// The driver was always called without IDC (fast path succeeded).
	for _, idc := range drv.idc {
		if idc {
			t.Fatal("fast path saw canIDC=true")
		}
	}
	if d.FaultEventValue() != 4 {
		t.Fatalf("fault events = %d", d.FaultEventValue())
	}
	if stats.BytesTouched != 4*vm.PageSize {
		t.Fatalf("BytesTouched = %d", stats.BytesTouched)
	}
}

// retryOnceDriver forces the first attempt (per fault) to Retry so the
// worker path runs.
type retryOnceDriver struct {
	fixedDriver
}

func (rd *retryOnceDriver) SatisfyFault(p *sim.Proc, f *vm.Fault, canIDC bool) Result {
	if !canIDC {
		rd.calls++
		return Retry
	}
	return rd.fixedDriver.SatisfyFault(p, f, canIDC)
}

func TestFaultDispatchWorkerPath(t *testing.T) {
	r := newRig()
	d := r.domain(t, "a", 8)
	st, _ := d.NewStretch(2 * vm.PageSize)
	drv := &retryOnceDriver{fixedDriver{rig: r, dom: d, st: st}}
	d.Bind(st, drv)
	var done bool
	d.Go("main", func(th *Thread) {
		if err := th.Touch(st.Base(), 2*vm.PageSize, vm.AccessRead); err != nil {
			t.Error(err)
			return
		}
		done = true
	})
	r.s.RunFor(time.Second)
	if !done {
		t.Fatal("thread incomplete")
	}
	stats := d.Stats()
	if stats.WorkerPath != 2 || stats.FastPath != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestFaultNoDriverKills(t *testing.T) {
	r := newRig()
	d := r.domain(t, "a", 8)
	st, _ := d.NewStretch(vm.PageSize)
	// No Bind.
	after := false
	d.Go("main", func(th *Thread) {
		th.Touch(st.Base(), 1, vm.AccessRead)
		after = true
	})
	r.s.RunFor(time.Second)
	if after {
		t.Fatal("thread survived unresolvable fault")
	}
	if !d.Killed() {
		t.Fatal("domain not killed")
	}
}

func TestDriverFailureKills(t *testing.T) {
	r := newRig()
	d := r.domain(t, "a", 8)
	st, _ := d.NewStretch(vm.PageSize)
	d.Bind(st, &fixedDriver{rig: r, dom: d, st: st, result: Failure})
	d.Go("main", func(th *Thread) {
		th.Touch(st.Base(), 1, vm.AccessRead)
	})
	r.s.RunFor(time.Second)
	if !d.Killed() {
		t.Fatal("domain not killed on driver failure")
	}
}

func TestUnallocatedFaultKills(t *testing.T) {
	r := newRig()
	d := r.domain(t, "a", 8)
	d.Go("main", func(th *Thread) {
		th.Touch(vm.VA(0x8f00000), 1, vm.AccessRead) // no stretch there
	})
	r.s.RunFor(time.Second)
	if !d.Killed() {
		t.Fatal("unallocated access did not kill")
	}
	if d.Stats().UnallocFaults != 1 {
		t.Fatalf("stats = %+v", d.Stats())
	}
}

func TestCustomHandlerOverride(t *testing.T) {
	r := newRig()
	d := r.domain(t, "a", 8)
	st, _ := d.NewStretch(vm.PageSize)
	drv := &fixedDriver{rig: r, dom: d, st: st}
	d.Bind(st, drv)
	handled := 0
	d.SetFaultHandler(vm.PageFault, func(th *Thread, f *vm.Fault) bool {
		handled++
		// Resolve by mapping through the driver logic manually.
		return drv.SatisfyFault(th.Proc(), f, true) == Success
	})
	done := false
	d.Go("main", func(th *Thread) {
		if err := th.Touch(st.Base(), 1, vm.AccessRead); err != nil {
			t.Error(err)
			return
		}
		done = true
	})
	r.s.RunFor(time.Second)
	if !done || handled != 1 {
		t.Fatalf("done=%v handled=%d", done, handled)
	}
	// Clearing the handler restores the default path.
	d.SetFaultHandler(vm.PageFault, nil)
	if len(d.handlers) != 0 {
		t.Fatal("handler not removed")
	}
}

func TestHandlerDeclineFails(t *testing.T) {
	r := newRig()
	d := r.domain(t, "a", 8)
	st, _ := d.NewStretch(vm.PageSize)
	d.Bind(st, &fixedDriver{rig: r, dom: d, st: st})
	d.SetFaultHandler(vm.PageFault, func(th *Thread, f *vm.Fault) bool { return false })
	var got error
	d.Go("main", func(th *Thread) {
		got = th.Touch(st.Base(), 1, vm.AccessRead)
	})
	r.s.RunFor(time.Second)
	if !errors.Is(got, ErrFaulted) {
		t.Fatalf("err = %v", got)
	}
}

func TestThreadJoinAndSleep(t *testing.T) {
	r := newRig()
	d := r.domain(t, "a", 8)
	worker := d.Go("worker", func(th *Thread) {
		th.Sleep(5 * time.Millisecond)
	})
	var joinedAt sim.Time
	d.Go("joiner", func(th *Thread) {
		worker.Join(th.Proc())
		joinedAt = th.Now()
	})
	r.s.RunFor(time.Second)
	if joinedAt != sim.Time(5*time.Millisecond) {
		t.Fatalf("joined at %v", joinedAt)
	}
	// Join on a finished thread returns immediately.
	var second sim.Time = -1
	d.Go("late", func(th *Thread) {
		worker.Join(th.Proc())
		second = th.Now()
	})
	r.s.RunFor(time.Second)
	if second < 0 {
		t.Fatal("late joiner never returned")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	r := newRig()
	d := r.domain(t, "a", 8)
	st, _ := d.NewStretch(3 * vm.PageSize)
	d.Bind(st, &fixedDriver{rig: r, dom: d, st: st})
	ok := false
	d.Go("main", func(th *Thread) {
		// Write a pattern spanning page boundaries.
		data := make([]byte, 2*vm.PageSize+100)
		for i := range data {
			data[i] = byte(i % 179)
		}
		base := st.Base() + 50
		if err := th.WriteAt(base, data); err != nil {
			t.Error(err)
			return
		}
		got := make([]byte, len(data))
		if err := th.ReadAt(base, got); err != nil {
			t.Error(err)
			return
		}
		for i := range got {
			if got[i] != data[i] {
				t.Errorf("byte %d = %d, want %d", i, got[i], data[i])
				return
			}
		}
		if b, err := th.ReadByteAt(base + 7); err != nil || b != byte(7%179) {
			t.Errorf("ReadByteAt = %d, %v", b, err)
		}
		if err := th.WriteByteAt(base, 0xFF); err != nil {
			t.Error(err)
		}
		if b, _ := th.ReadByteAt(base); b != 0xFF {
			t.Error("WriteByteAt lost")
		}
		ok = true
	})
	r.s.RunFor(time.Second)
	if !ok {
		t.Fatal("round trip incomplete")
	}
}

func TestRevocationNotificationQueued(t *testing.T) {
	r := newRig()
	d := r.domain(t, "a", 8)
	st, _ := d.NewStretch(vm.PageSize)
	d.Bind(st, &fixedDriver{rig: r, dom: d, st: st})
	d.RevokeNotification(1, r.s.Now().Add(100*time.Millisecond))
	r.s.RunFor(10 * time.Millisecond)
	if d.Stats().Revocations != 1 {
		t.Fatalf("revocations = %d", d.Stats().Revocations)
	}
	// The worker consumed the job (driver relinquishes 0, completion is
	// still signalled to the allocator — covered by core tests).
	if d.mm.QueueLen() != 0 {
		t.Fatalf("queue = %d", d.mm.QueueLen())
	}
}

func TestKillIsIdempotentAndStopsWork(t *testing.T) {
	r := newRig()
	d := r.domain(t, "a", 8)
	st, _ := d.NewStretch(vm.PageSize)
	d.Bind(st, &fixedDriver{rig: r, dom: d, st: st})
	loops := 0
	d.Go("spinner", func(th *Thread) {
		for {
			th.Sleep(time.Millisecond)
			loops++
		}
	})
	r.s.RunFor(10 * time.Millisecond)
	before := loops
	d.Kill()
	d.Kill() // idempotent
	r.s.RunFor(50 * time.Millisecond)
	if loops > before+1 {
		t.Fatalf("spinner kept running after kill: %d -> %d", before, loops)
	}
	// Faults after kill fail immediately.
	var err error
	other := d.Go("late", func(th *Thread) {
		err = th.Touch(st.Base(), 1, vm.AccessRead)
	})
	_ = other
	r.s.RunFor(10 * time.Millisecond)
	if !errors.Is(err, ErrKilled) {
		t.Fatalf("post-kill touch err = %v", err)
	}
}

func TestDriverListDeterministicOrder(t *testing.T) {
	r := newRig()
	d := r.domain(t, "a", 8)
	var sts []*vm.Stretch
	for i := 0; i < 5; i++ {
		st, _ := d.NewStretch(vm.PageSize)
		d.Bind(st, &fixedDriver{rig: r, dom: d, st: st})
		sts = append(sts, st)
	}
	// Bind one driver to two stretches: it must appear once.
	shared := &fixedDriver{rig: r, dom: d}
	st6, _ := d.NewStretch(vm.PageSize)
	st7, _ := d.NewStretch(vm.PageSize)
	d.Bind(st6, shared)
	d.Bind(st7, shared)

	l1 := d.driverList()
	l2 := d.driverList()
	if len(l1) != 6 {
		t.Fatalf("len = %d, want 6 (dedup)", len(l1))
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("driverList order nondeterministic")
		}
	}
}

func TestEnvAccessors(t *testing.T) {
	r := newRig()
	d := r.domain(t, "acc", 2)
	if d.Env().Sim != r.s || d.CPU() == nil || d.PD() == nil {
		t.Fatal("accessors")
	}
	th := d.Go("t", func(th *Thread) {})
	if th.Name() != "t" || th.Domain() != d {
		t.Fatal("thread accessors")
	}
	r.s.RunFor(time.Millisecond)
}
