package domain

import (
	"time"

	"nemesis/internal/sim"
	"nemesis/internal/vm"
)

// Thread is a user-level thread within a domain. Its memory accessors run
// the full simulated MMU path: TLB/page-table walk, protection check, fault
// dispatch to the domain's own machinery, and real data movement through
// the frame store.
type Thread struct {
	dom  *Domain
	name string
	proc *sim.Proc
	done *sim.Cond
	// fbuf is the thread's reusable fault record. Fault dispatch is
	// synchronous (the thread blocks until resolution) and nothing retains
	// the record past the next fault, so one per thread suffices.
	fbuf vm.Fault
}

// Name returns the thread name.
func (t *Thread) Name() string { return t.name }

// Proc returns the underlying simulated process.
func (t *Thread) Proc() *sim.Proc { return t.proc }

// Domain returns the owning domain.
func (t *Thread) Domain() *Domain { return t.dom }

// Join blocks p until the thread's function returns.
func (t *Thread) Join(p *sim.Proc) {
	if t.proc != nil && t.proc.Done() {
		return
	}
	t.done.Wait(p)
}

// Sleep suspends the thread (without consuming CPU guarantee).
func (t *Thread) Sleep(d time.Duration) { t.proc.Sleep(d) }

// Now returns the current simulated time.
func (t *Thread) Now() sim.Time { return t.proc.Now() }

// Compute consumes CPU time under the domain's contract.
func (t *Thread) Compute(d time.Duration) {
	t.dom.cpu.Compute(t.proc, d)
}

// access performs one page access, dispatching and waiting out faults.
func (t *Thread) access(va vm.VA, acc vm.Access) (*vm.PTE, error) {
	for {
		if t.dom.killed {
			return nil, ErrKilled
		}
		pte, faulted := t.dom.env.TS.AccessInto(t.dom.pd, va, acc, &t.fbuf)
		if !faulted {
			return pte, nil
		}
		if err := t.dom.dispatchFault(t, &t.fbuf); err != nil {
			return nil, err
		}
	}
}

// Touch accesses every byte in [va, va+n) with the given access kind,
// page at a time, charging the per-byte compute cost. This is the paging
// experiments' workload primitive ("each byte is read/written but no other
// substantial work is performed").
func (t *Thread) Touch(va vm.VA, n int, acc vm.Access) error {
	for n > 0 {
		pageEnd := (va | (vm.PageSize - 1)) + 1
		chunk := int(uint64(pageEnd) - uint64(va))
		if chunk > n {
			chunk = n
		}
		if _, err := t.access(va, acc); err != nil {
			return err
		}
		t.Compute(time.Duration(chunk) * t.dom.env.Costs.ComputePerByte)
		t.dom.stats.BytesTouched += int64(chunk)
		t.dom.markActive()
		va += vm.VA(chunk)
		n -= chunk
	}
	return nil
}

// WriteAt copies data into the domain's memory at va, faulting pages in as
// needed and moving real bytes into the backing frames.
func (t *Thread) WriteAt(va vm.VA, data []byte) error {
	for len(data) > 0 {
		pte, err := t.access(va, vm.AccessWrite)
		if err != nil {
			return err
		}
		off := int(uint64(va) & (vm.PageSize - 1))
		chunk := vm.PageSize - off
		if chunk > len(data) {
			chunk = len(data)
		}
		frame := t.dom.env.Store.Frame(pte.PFN)
		copy(frame[off:off+chunk], data[:chunk])
		t.Compute(time.Duration(chunk) * t.dom.env.Costs.ComputePerByte)
		t.dom.stats.BytesTouched += int64(chunk)
		t.dom.markActive()
		va += vm.VA(chunk)
		data = data[chunk:]
	}
	return nil
}

// ReadAt copies from the domain's memory at va into buf.
func (t *Thread) ReadAt(va vm.VA, buf []byte) error {
	for len(buf) > 0 {
		pte, err := t.access(va, vm.AccessRead)
		if err != nil {
			return err
		}
		off := int(uint64(va) & (vm.PageSize - 1))
		chunk := vm.PageSize - off
		if chunk > len(buf) {
			chunk = len(buf)
		}
		frame := t.dom.env.Store.Frame(pte.PFN)
		copy(buf[:chunk], frame[off:off+chunk])
		t.Compute(time.Duration(chunk) * t.dom.env.Costs.ComputePerByte)
		t.dom.stats.BytesTouched += int64(chunk)
		t.dom.markActive()
		va += vm.VA(chunk)
		buf = buf[chunk:]
	}
	return nil
}

// ReadByteAt reads a single byte (convenience for tests and examples).
func (t *Thread) ReadByteAt(va vm.VA) (byte, error) {
	var b [1]byte
	if err := t.ReadAt(va, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

// WriteByteAt writes a single byte.
func (t *Thread) WriteByteAt(va vm.VA, v byte) error {
	return t.WriteAt(va, []byte{v})
}
