package domain

import (
	"nemesis/internal/obs"
	"nemesis/internal/sim"
	"nemesis/internal/vm"
)

// job is one unit of work for the MMEntry's worker: either a fault whose
// fast-path resolution returned Retry, or a revocation notification.
type job struct {
	fault  *vm.Fault // nil for revocation jobs
	k      int       // frames to free, for revocation jobs
	done   *sim.Cond
	ok     bool
	isDone bool
}

// MMEntry is the memory-management entry: the notification handler attached
// to the kernel's fault endpoint, plus worker threads that carry out the
// operations the handler cannot (anything requiring IDC). It does not
// resolve faults itself: it coordinates the domain's stretch drivers.
type MMEntry struct {
	dom     *Domain
	queue   []*job
	qhead   int
	free    []*job // recycled jobs (each keeps its done Cond)
	wake    *sim.Cond
	worker  *sim.Proc
	stopped bool

	// gQueue tracks the outstanding-job depth (nil when telemetry is off).
	gQueue *obs.Gauge
}

func newMMEntry(d *Domain) *MMEntry {
	mm := &MMEntry{dom: d, wake: sim.NewCond(d.env.Sim)}
	if d.env.Obs != nil {
		mm.gQueue = d.env.Obs.Gauge("domain", "mm_queue", d.name)
	}
	mm.worker = d.env.Sim.Spawn(d.name+"/mm-worker", mm.run)
	return mm
}

// QueueLen returns the number of outstanding jobs (for tests).
func (mm *MMEntry) QueueLen() int { return len(mm.queue) - mm.qhead }

// getJob checks a job out of the free list. The done Cond is created once
// per job and survives recycling; every other field is reset.
func (mm *MMEntry) getJob() *job {
	if n := len(mm.free); n > 0 {
		j := mm.free[n-1]
		mm.free[n-1] = nil
		mm.free = mm.free[:n-1]
		j.fault, j.k, j.ok, j.isDone = nil, 0, false, false
		return j
	}
	return &job{done: sim.NewCond(mm.dom.env.Sim)}
}

// putJob recycles a finished job. Fault jobs are returned by the resolver
// (which reads the result last); revocation jobs by the worker.
func (mm *MMEntry) putJob(j *job) { mm.free = append(mm.free, j) }

// enqueue appends a job, compacting consumed head space when drained.
func (mm *MMEntry) enqueue(j *job) {
	if mm.qhead > 0 && mm.qhead == len(mm.queue) {
		mm.queue = mm.queue[:0]
		mm.qhead = 0
	}
	mm.queue = append(mm.queue, j)
	mm.gQueue.Set(int64(mm.QueueLen()))
	mm.wake.Signal()
}

// resolve blocks p until a worker has processed fault f, reporting success.
func (mm *MMEntry) resolve(p *sim.Proc, f *vm.Fault) bool {
	j := mm.getJob()
	j.fault = f
	mm.enqueue(j)
	for !j.isDone {
		j.done.Wait(p)
	}
	ok := j.ok
	mm.putJob(j)
	return ok
}

// enqueueRevocation queues an asynchronous revocation job.
func (mm *MMEntry) enqueueRevocation(k int) {
	j := mm.getJob()
	j.k = k
	mm.enqueue(j)
}

// kill stops the worker.
func (mm *MMEntry) kill() {
	mm.stopped = true
	if mm.worker != nil && !mm.worker.Done() {
		mm.worker.Kill()
	}
	// Fail outstanding jobs so blocked threads unwind via their own kill.
	for _, j := range mm.queue[mm.qhead:] {
		j.isDone = true
		if j.done != nil {
			j.done.Broadcast()
		}
	}
	mm.queue, mm.qhead = nil, 0
}

// run is the worker thread: it pops jobs and invokes stretch drivers with
// IDC allowed.
func (mm *MMEntry) run(p *sim.Proc) {
	d := mm.dom
	for !mm.stopped {
		if mm.QueueLen() == 0 {
			mm.wake.Wait(p)
			continue
		}
		j := mm.queue[mm.qhead]
		mm.queue[mm.qhead] = nil
		mm.qhead++
		mm.gQueue.Set(int64(mm.QueueLen()))

		// The worker runs on the domain's own CPU guarantee.
		d.cpu.Compute(p, d.env.Costs.IDCRoundTrip)

		if j.fault != nil {
			drv := d.drivers[j.fault.SID]
			if drv == nil {
				j.ok = false
			} else {
				j.ok = drv.SatisfyFault(p, j.fault, true) == Success
			}
			j.isDone = true
			j.done.Broadcast()
			continue
		}

		// Revocation: cycle through the stretch drivers requesting that
		// they relinquish frames until enough have been freed, then
		// complete the protocol with the frames allocator.
		need := j.k
		for _, drv := range d.driverList() {
			if need <= 0 {
				break
			}
			need -= drv.Relinquish(p, need)
		}
		// Cleaning dirty pages takes time; the Relinquish calls above
		// block as required. Completion hands the frames back.
		d.memc.RevocationComplete()
		mm.putJob(j)
	}
}

// driverList returns the bound drivers in deterministic (stretch id) order,
// without duplicates.
func (d *Domain) driverList() []Driver {
	seen := make(map[Driver]bool)
	var ids []vm.StretchID
	for id := range d.drivers {
		ids = append(ids, id)
	}
	// Insertion order of map iteration is random; sort ids.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	var out []Driver
	for _, id := range ids {
		drv := d.drivers[id]
		if !seen[drv] {
			seen[drv] = true
			out = append(out, drv)
		}
	}
	return out
}
