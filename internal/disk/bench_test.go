package disk

import (
	"testing"

	"nemesis/internal/sim"
)

func BenchmarkServiceTimeStreamHit(b *testing.B) {
	s := sim.New(1)
	d := New(s, VP3221())
	d.ServiceTime(0, Read, 0, 16) // establish the stream
	b.ReportAllocs()
	b.ResetTimer()
	block := int64(16)
	for i := 0; i < b.N; i++ {
		d.ServiceTime(sim.Time(i), Read, block, 16)
		block += 16
		if block > d.Geom.TotalBlocks-64 {
			block = 16
			d.ServiceTime(0, Read, 0, 16)
		}
	}
}

func BenchmarkServiceTimeRandom(b *testing.B) {
	s := sim.New(1)
	d := New(s, VP3221())
	rng := s.Rand()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ServiceTime(sim.Time(i), Read, rng.Int63n(d.Geom.TotalBlocks-64), 16)
	}
}

func BenchmarkWriteAt8K(b *testing.B) {
	s := sim.New(1)
	d := New(s, VP3221())
	buf := make([]byte, 16*BlockSize)
	done := 0
	s.Spawn("w", func(p *sim.Proc) {
		for done < b.N {
			if err := d.WriteAt(p, int64(done%1000)*16, 16, buf); err != nil {
				b.Error(err)
				return
			}
			done++
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	s.RunUntilIdle(4*b.N + 100)
}
