package disk

import (
	"nemesis/internal/obs"
	"nemesis/internal/sim"
)

// Fork returns an independent copy of the drive attached to s (the forked
// simulator) and r (the forked registry, nil if the parent had no telemetry).
//
// Mechanical state — head cylinder, read-ahead segments, stats — is copied
// outright; it is tiny. The block store is not: a warmed world has tens of
// megabytes of swap-file data on disk, almost all of which the fork will
// never overwrite. Chunks are therefore shared copy-on-write: the fork gets
// a copy of the chunk *index*, every populated chunk is marked shared on
// both sides, and whichever side writes a shared chunk first copies it
// privately. Shared chunks are immutable from the instant of the fork, so
// parent and children can run on different goroutines without touching each
// other's data.
func (d *Disk) Fork(s *sim.Simulator, r *obs.Registry) *Disk {
	if d.shared == nil {
		d.shared = make([]bool, len(d.data))
	}
	nd := &Disk{
		Geom:   d.Geom,
		sim:    s,
		data:   make([][]byte, len(d.data)),
		shared: make([]bool, len(d.data)),
		segs:   append([]segment(nil), d.segs...),
		tick:   d.tick,
		head:   d.head,
		stats:  d.stats,
	}
	copy(nd.data, d.data)
	for i, c := range d.data {
		if c != nil {
			d.shared[i] = true
			nd.shared[i] = true
		}
	}
	nd.SetObs(r)
	return nd
}

// SharedChunks reports how many block-store chunks are currently marked
// copy-on-write, and how many chunks are populated at all. Exposed for fork
// metrics and tests.
func (d *Disk) SharedChunks() (shared, populated int) {
	for i, c := range d.data {
		if c == nil {
			continue
		}
		populated++
		if d.shared != nil && d.shared[i] {
			shared++
		}
	}
	return shared, populated
}

// ChunkBytes is the size of one block-store chunk in bytes, exposed so fork
// metrics can report how much data CoW sharing avoided copying.
const ChunkBytes = chunkBlocks * BlockSize
