package disk

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"nemesis/internal/sim"
)

func newDisk() (*sim.Simulator, *Disk) {
	s := sim.New(1)
	return s, New(s, VP3221())
}

func TestGeometryBasics(t *testing.T) {
	g := VP3221()
	// 5400 rpm => 11.11ms.
	if got := g.RotationTime().Round(10 * time.Microsecond); got != 11110*time.Microsecond {
		t.Fatalf("RotationTime = %v", got)
	}
	if g.Cylinders() != (4304536+863)/864 {
		t.Fatalf("Cylinders = %d", g.Cylinders())
	}
	if g.SeekTime(5, 5) != 0 {
		t.Fatal("zero-distance seek nonzero")
	}
	if g.SeekTime(0, 1) < g.MinSeek {
		t.Fatal("short seek below MinSeek")
	}
	full := g.SeekTime(0, g.Cylinders())
	if full < g.MaxSeek-time.Millisecond || full > g.MaxSeek+time.Millisecond {
		t.Fatalf("full-stroke seek = %v, want ~%v", full, g.MaxSeek)
	}
	// Seek monotonic in distance.
	if g.SeekTime(0, 10) > g.SeekTime(0, 1000) {
		t.Fatal("seek not monotonic")
	}
}

func TestTransferTimes(t *testing.T) {
	g := VP3221()
	// One full track takes one rotation (within integer-division error).
	got, want := g.MediaTransferTime(g.SectorsPerTrack), g.RotationTime()
	if diff := got - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("full-track transfer = %v, want ~%v", got, want)
	}
	// 16 blocks (one 8 KB page) at 10 MB/s interface = 819.2us.
	if got := g.InterfaceTransferTime(16); got != time.Duration(819200) {
		t.Fatalf("interface transfer = %v", got)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	s, d := newDisk()
	done := false
	s.Spawn("io", func(p *sim.Proc) {
		buf := make([]byte, 16*BlockSize)
		for i := range buf {
			buf[i] = byte(i % 251)
		}
		if err := d.WriteAt(p, 1000, 16, buf); err != nil {
			t.Error(err)
		}
		got := make([]byte, 16*BlockSize)
		if err := d.ReadAt(p, 1000, 16, got); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(buf, got) {
			t.Error("round trip corrupted data")
		}
		done = true
	})
	s.RunUntilIdle(1000)
	if !done {
		t.Fatal("io proc did not finish")
	}
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.BlocksRead != 16 || st.BlocksWritten != 16 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUnwrittenBlocksReadZero(t *testing.T) {
	s, d := newDisk()
	s.Spawn("io", func(p *sim.Proc) {
		buf := []byte{1, 2, 3}
		got := make([]byte, BlockSize)
		copy(got, buf)
		if err := d.ReadAt(p, 42, 1, got); err != nil {
			t.Error(err)
		}
		for _, b := range got {
			if b != 0 {
				t.Error("unwritten block nonzero")
				break
			}
		}
	})
	s.RunUntilIdle(100)
}

func TestRequestValidation(t *testing.T) {
	s, d := newDisk()
	s.Spawn("io", func(p *sim.Proc) {
		if err := d.ReadAt(p, -1, 1, make([]byte, BlockSize)); err == nil {
			t.Error("negative block accepted")
		}
		if err := d.ReadAt(p, d.Geom.TotalBlocks-1, 2, make([]byte, 2*BlockSize)); err == nil {
			t.Error("overrun accepted")
		}
		if err := d.ReadAt(p, 0, 0, nil); err == nil {
			t.Error("zero count accepted")
		}
		if err := d.WriteAt(p, 0, 2, make([]byte, BlockSize)); err == nil {
			t.Error("short buffer accepted")
		}
	})
	s.RunUntilIdle(100)
}

func TestSequentialReadsHitCache(t *testing.T) {
	s, d := newDisk()
	s.Spawn("io", func(p *sim.Proc) {
		buf := make([]byte, 16*BlockSize)
		// First read: mechanical miss, fills a 128-block segment.
		d.ReadAt(p, 0, 16, buf)
		missStats := d.Stats()
		// Next reads within the segment: cache hits.
		d.ReadAt(p, 16, 16, buf)
		d.ReadAt(p, 32, 16, buf)
		st := d.Stats()
		if st.CacheHits != 2 {
			t.Errorf("CacheHits = %d, want 2", st.CacheHits)
		}
		if st.SeekTime != missStats.SeekTime || st.RotTime != missStats.RotTime {
			t.Error("cache hit paid mechanical cost")
		}
	})
	s.RunUntilIdle(1000)
}

func TestCacheHitMuchFasterThanMiss(t *testing.T) {
	s, d := newDisk()
	now := s.Now()
	miss := d.ServiceTime(now, Read, 0, 16)
	hit := d.ServiceTime(now, Read, 16, 16)
	if hit*3 > miss {
		t.Fatalf("hit %v not much faster than miss %v", hit, miss)
	}
}

func TestStreamAdvancesOnHit(t *testing.T) {
	_, d := newDisk()
	d.ServiceTime(0, Read, 0, 16) // mechanical; stream tail = 16
	if !d.cacheLookup(16, 16) {   // continuation; tail -> 32
		t.Fatal("continuation not detected")
	}
	// Backward read is not a continuation.
	if d.cacheLookup(0, 16) {
		t.Fatal("backward read treated as stream continuation")
	}
	// Short forward hop within the look-ahead window continues the stream.
	if !d.cacheLookup(64, 16) {
		t.Fatal("forward hop inside window missed")
	}
	// A hop past the window is a miss.
	if d.cacheLookup(80+int64(d.Geom.CacheSegmentBlocks)+1, 16) {
		t.Fatal("hop beyond window treated as hit")
	}
}

func TestWriteInvalidatesStream(t *testing.T) {
	_, d := newDisk()
	d.ServiceTime(0, Read, 0, 16) // stream tail = 16
	// Write into the stream's read-ahead window aborts it.
	d.ServiceTime(0, Write, 32, 16)
	if d.cacheLookup(16, 16) {
		t.Fatal("write inside look-ahead window did not kill stream")
	}
	// A stream far from the write survives.
	d.ServiceTime(0, Read, 10000, 16) // tail = 10016
	d.ServiceTime(0, Write, 500, 16)
	if !d.cacheLookup(10016, 16) {
		t.Fatal("unrelated stream killed by distant write")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	_, d := newDisk()
	g := d.Geom
	stride := int64(g.CacheSegmentBlocks) * 100
	for i := 0; i <= g.CacheSegments; i++ { // one more stream than slots
		d.ServiceTime(0, Read, int64(i)*stride, 16)
	}
	// The first stream (tail 16) must have been evicted.
	if d.cacheLookup(16, 16) {
		t.Fatal("LRU stream not evicted")
	}
	// The second stream survives.
	if !d.cacheLookup(stride+16, 16) {
		t.Fatal("recently used stream evicted")
	}
}

func TestWritesUncachedAndSlow(t *testing.T) {
	_, d := newDisk()
	// Two writes to the same place: the second must still pay mechanical
	// cost (write cache disabled).
	w1 := d.ServiceTime(0, Write, 5000, 16)
	w2 := d.ServiceTime(sim.Time(w1), Write, 5000, 16)
	if w2 < d.Geom.MinSeek {
		t.Fatalf("repeat write too fast: %v", w2)
	}
	// A write landing just after its sector passed pays nearly a full
	// rotation; on average writes take several ms. Check a spread of
	// positions stays in the plausible 2..25ms envelope.
	for i := int64(0); i < 20; i++ {
		dur := d.ServiceTime(sim.Time(i*7919*1000), Write, 100000+i*864, 16)
		if dur < 2*time.Millisecond || dur > 35*time.Millisecond {
			t.Fatalf("write %d cost %v outside envelope", i, dur)
		}
	}
}

func TestDistantSeeksCostMoreThanNear(t *testing.T) {
	_, d := newDisk()
	d.ServiceTime(0, Read, 0, 16)
	near := d.Geom.SeekTime(d.head, d.Geom.cylinderOf(2000))
	far := d.Geom.SeekTime(d.head, d.Geom.cylinderOf(4000000))
	if near >= far {
		t.Fatalf("near %v >= far %v", near, far)
	}
}

func TestPeekBlock(t *testing.T) {
	s, d := newDisk()
	s.Spawn("io", func(p *sim.Proc) {
		buf := bytes.Repeat([]byte{0xAB}, BlockSize)
		d.WriteAt(p, 7, 1, buf)
	})
	s.RunUntilIdle(100)
	if got := d.PeekBlock(7); got[0] != 0xAB || got[BlockSize-1] != 0xAB {
		t.Fatal("PeekBlock wrong data")
	}
	if got := d.PeekBlock(8); got[0] != 0 {
		t.Fatal("PeekBlock of unwritten block nonzero")
	}
}

// Property: data written then read back over arbitrary (block, pattern)
// pairs is preserved, and service time is always positive and bounded.
func TestDiskRoundTripProperty(t *testing.T) {
	f := func(blockSeed uint32, pattern byte, countSeed uint8) bool {
		s, d := newDisk()
		block := int64(blockSeed) % (d.Geom.TotalBlocks - 256)
		count := int(countSeed)%16 + 1
		ok := true
		s.Spawn("io", func(p *sim.Proc) {
			buf := bytes.Repeat([]byte{pattern}, count*BlockSize)
			if err := d.WriteAt(p, block, count, buf); err != nil {
				ok = false
				return
			}
			got := make([]byte, count*BlockSize)
			if err := d.ReadAt(p, block, count, got); err != nil {
				ok = false
				return
			}
			ok = bytes.Equal(buf, got)
		})
		s.RunUntilIdle(1000)
		st := d.Stats()
		return ok && st.BusyTime > 0 && st.BusyTime < time.Second
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("Op strings wrong")
	}
}
