// Package disk models the drive used in the paper's evaluation: a Quantum
// VP3221 (5400 rpm, 2.1 GB, 4,304,536 × 512-byte blocks) behind an NCR53c810
// Fast SCSI-2 controller, with read caching enabled and write caching
// disabled (the paper's default configuration).
//
// The model is mechanical, not statistical: requests pay a seek that depends
// on cylinder distance, a rotational delay that depends on the angular
// position of the platter at the simulated instant the seek completes, and a
// media-rate transfer. A segmented read-ahead cache serves sequential reads
// at interface speed. Blocks carry real data so paging correctness is
// end-to-end testable.
package disk

import (
	"errors"
	"fmt"
	"math"
	"time"

	"nemesis/internal/obs"
	"nemesis/internal/sim"
)

// BlockSize is the sector size in bytes.
const BlockSize = 512

// Errors returned by disk operations.
var (
	ErrOutOfRange = errors.New("disk: block out of range")
	ErrBadCount   = errors.New("disk: non-positive block count")
	ErrShortData  = errors.New("disk: data length does not match block count")
)

// Op distinguishes request directions.
type Op uint8

const (
	Read Op = iota
	Write
)

func (o Op) String() string {
	if o == Write {
		return "write"
	}
	return "read"
}

// Geometry describes the mechanical layout and timing of a drive.
type Geometry struct {
	TotalBlocks     int64
	SectorsPerTrack int
	Heads           int
	RPM             int
	// MinSeek is the single-cylinder seek time; MaxSeek the full stroke.
	// Seek time for distance d cylinders is
	// MinSeek + (MaxSeek-MinSeek)*sqrt(d/cylinders).
	MinSeek, MaxSeek time.Duration
	// InterfaceRate is the host transfer rate (bytes/second) used for
	// cache hits.
	InterfaceRate float64
	// Overhead is fixed per-request controller/command time.
	Overhead time.Duration
	// CacheSegments and CacheSegmentBlocks size the segmented read-ahead
	// cache. Zero segments disables read caching.
	CacheSegments      int
	CacheSegmentBlocks int
}

// VP3221 returns the paper's drive.
func VP3221() Geometry {
	return Geometry{
		TotalBlocks:        4304536,
		SectorsPerTrack:    108,
		Heads:              8,
		RPM:                5400,
		MinSeek:            2500 * time.Microsecond,
		MaxSeek:            19 * time.Millisecond,
		InterfaceRate:      10e6, // Fast SCSI-2
		Overhead:           300 * time.Microsecond,
		CacheSegments:      8,
		CacheSegmentBlocks: 128, // 64 KB read-ahead segments
	}
}

// RotationTime returns the time for one platter revolution.
func (g Geometry) RotationTime() time.Duration {
	return time.Duration(float64(time.Minute) / float64(g.RPM))
}

// blocksPerCylinder returns sectors×heads.
func (g Geometry) blocksPerCylinder() int64 {
	return int64(g.SectorsPerTrack) * int64(g.Heads)
}

// Cylinders returns the cylinder count implied by the geometry.
func (g Geometry) Cylinders() int64 {
	bpc := g.blocksPerCylinder()
	return (g.TotalBlocks + bpc - 1) / bpc
}

// cylinderOf maps a block to its cylinder.
func (g Geometry) cylinderOf(block int64) int64 {
	return block / g.blocksPerCylinder()
}

// sectorAngle returns the angular position (0..1) of a block on its track.
func (g Geometry) sectorAngle(block int64) float64 {
	return float64(block%int64(g.SectorsPerTrack)) / float64(g.SectorsPerTrack)
}

// SeekTime returns the seek cost between two cylinders.
func (g Geometry) SeekTime(from, to int64) time.Duration {
	if from == to {
		return 0
	}
	d := from - to
	if d < 0 {
		d = -d
	}
	frac := math.Sqrt(float64(d) / float64(g.Cylinders()))
	return g.MinSeek + time.Duration(frac*float64(g.MaxSeek-g.MinSeek))
}

// MediaTransferTime returns the media-rate time to transfer n blocks.
func (g Geometry) MediaTransferTime(n int) time.Duration {
	perSector := g.RotationTime() / time.Duration(g.SectorsPerTrack)
	return time.Duration(n) * perSector
}

// InterfaceTransferTime returns the host-rate time to transfer n blocks.
func (g Geometry) InterfaceTransferTime(n int) time.Duration {
	return time.Duration(float64(n*BlockSize) / g.InterfaceRate * float64(time.Second))
}

// segment is one read-ahead stream: the drive has detected a sequential
// read stream and keeps its read-ahead running, so continuation reads within
// the look-ahead window are served from the segment buffer. tail is the
// first block not yet requested by the host; the drive is assumed to have
// read ahead up to tail+window in the background (charged as media-rate
// transfer time on each continuation, which keeps aggregate throughput
// bounded by the spindle's media rate).
type segment struct {
	tail    int64
	lastUse uint64
}

// Stats accumulates disk activity counters.
type Stats struct {
	Reads, Writes   int64
	BlocksRead      int64
	BlocksWritten   int64
	CacheHits       int64
	BusyTime        time.Duration
	SeekTime        time.Duration
	RotTime         time.Duration
	TransferTime    time.Duration
	FullRotStalls   int64 // writes that had to wait more than 90% of a revolution
	CoalescedWrites int64 // writes that paid no seek and <10% rotation
}

// Disk is a simulated drive. All methods must be called from simulator
// context (an event callback or a process); the USD serialises access, which
// matches a single-spindle device.
type Disk struct {
	Geom Geometry
	sim  *sim.Simulator
	// data is a two-level block store: chunk index -> chunkBlocks*BlockSize
	// bytes, allocated on first write. A nil chunk reads as zeros. Indexing
	// is two array derefs instead of a per-block map hash, and contiguous
	// chunks let multi-block transfers copy in one run.
	data [][]byte
	// shared marks chunks frozen by a Fork: both sides of a fork see the
	// same backing array until one of them writes, at which point the writer
	// copies the chunk privately. nil until the first Fork, so an unforked
	// drive pays one nil check per write.
	shared []bool
	segs   []segment
	tick   uint64
	head   int64 // current cylinder
	stats  Stats

	// Telemetry handles, nil unless SetObs was called.
	hRead, hWrite *obs.Histogram
	cCacheHits    *obs.Counter
}

// SetObs attaches a telemetry registry: per-request service-time
// histograms and a cache-hit counter.
func (d *Disk) SetObs(r *obs.Registry) {
	if r == nil {
		return
	}
	d.hRead = r.Histogram("disk", "service.read", "")
	d.hWrite = r.Histogram("disk", "service.write", "")
	d.cCacheHits = r.Counter("disk", "cache_hits", "")
}

// chunkShift sizes the block-store chunks: 512 blocks (256 KB) each.
const (
	chunkShift  = 9
	chunkBlocks = 1 << chunkShift
)

// New returns a drive with the given geometry attached to s.
func New(s *sim.Simulator, g Geometry) *Disk {
	nChunks := (g.TotalBlocks + chunkBlocks - 1) >> chunkShift
	return &Disk{Geom: g, sim: s, data: make([][]byte, nChunks)}
}

// Stats returns a copy of the accumulated counters.
func (d *Disk) Stats() Stats { return d.stats }

// check validates a request envelope.
func (d *Disk) check(block int64, count int) error {
	if count <= 0 {
		return ErrBadCount
	}
	if block < 0 || block+int64(count) > d.Geom.TotalBlocks {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfRange, block, block+int64(count), d.Geom.TotalBlocks)
	}
	return nil
}

// cacheLookup reports whether a read of [block, block+count) continues an
// established sequential stream: at or a short forward hop from a stream
// tail, within the look-ahead window. On hit the stream tail advances.
func (d *Disk) cacheLookup(block int64, count int) bool {
	for i := range d.segs {
		s := &d.segs[i]
		if block >= s.tail && block+int64(count) <= s.tail+int64(d.Geom.CacheSegmentBlocks) {
			d.tick++
			s.lastUse = d.tick
			s.tail = block + int64(count)
			return true
		}
	}
	return false
}

// cacheFill registers a new stream after a mechanical read ending just
// before tail, evicting the least-recently-used stream slot if necessary.
func (d *Disk) cacheFill(tail int64) {
	if d.Geom.CacheSegments == 0 {
		return
	}
	d.tick++
	seg := segment{tail: tail, lastUse: d.tick}
	if len(d.segs) < d.Geom.CacheSegments {
		d.segs = append(d.segs, seg)
		return
	}
	victim := 0
	for i := range d.segs {
		if d.segs[i].lastUse < d.segs[victim].lastUse {
			victim = i
		}
	}
	d.segs[victim] = seg
}

// cacheInvalidate drops streams whose read-ahead window overlaps a written
// range: the drive aborts read-ahead on an intervening write (write caching
// is off).
func (d *Disk) cacheInvalidate(block int64, count int) {
	lo, hi := block, block+int64(count)
	kept := d.segs[:0]
	for _, s := range d.segs {
		if s.tail+int64(d.Geom.CacheSegmentBlocks) <= lo || s.tail >= hi {
			kept = append(kept, s)
		}
	}
	d.segs = kept
}

// ServiceTime computes the duration a request will occupy the drive,
// updating head position, cache and stats, but without sleeping. now is the
// instant service starts.
func (d *Disk) ServiceTime(now sim.Time, op Op, block int64, count int) time.Duration {
	g := d.Geom
	if op == Read && d.cacheLookup(block, count) {
		// Stream continuation: the background read-ahead hides seek and
		// rotation, but the spindle still pays media-rate transfer, so a
		// continuation read is charged overhead plus the larger of the
		// media and interface transfer times. This bounds aggregate
		// streaming throughput by the media rate.
		d.stats.CacheHits++
		d.cCacheHits.Inc()
		xfer := g.MediaTransferTime(count)
		if ifx := g.InterfaceTransferTime(count); ifx > xfer {
			xfer = ifx
		}
		t := g.Overhead + xfer
		d.head = g.cylinderOf(block + int64(count) - 1)
		d.stats.TransferTime += xfer
		d.stats.BusyTime += t
		return t
	}

	seek := g.SeekTime(d.head, g.cylinderOf(block))
	afterSeek := now.Add(g.Overhead + seek)

	// Rotational delay: wait for the target sector to come under the head.
	rot := g.RotationTime()
	headAngle := math.Mod(float64(afterSeek)/float64(rot), 1.0)
	target := g.sectorAngle(block)
	wait := target - headAngle
	if wait < 0 {
		wait++
	}
	rotDelay := time.Duration(wait * float64(rot))

	xfer := g.MediaTransferTime(count)
	total := g.Overhead + seek + rotDelay + xfer

	d.head = g.cylinderOf(block + int64(count) - 1)
	d.stats.SeekTime += seek
	d.stats.RotTime += rotDelay
	d.stats.TransferTime += xfer
	d.stats.BusyTime += total
	if op == Write {
		if wait > 0.9 {
			d.stats.FullRotStalls++
		}
		if seek == 0 && wait < 0.1 {
			d.stats.CoalescedWrites++
		}
	}
	if op == Read {
		d.cacheFill(block + int64(count))
	} else {
		d.cacheInvalidate(block, count)
	}
	return total
}

// ReadAt copies count blocks starting at block into buf (which must be
// count×BlockSize long), charging p the simulated service time.
func (d *Disk) ReadAt(p *sim.Proc, block int64, count int, buf []byte) error {
	if err := d.check(block, count); err != nil {
		return err
	}
	if len(buf) != count*BlockSize {
		return ErrShortData
	}
	dur := d.ServiceTime(d.sim.Now(), Read, block, count)
	d.stats.Reads++
	d.stats.BlocksRead += int64(count)
	d.hRead.Observe(dur)
	p.Sleep(dur)
	for i := 0; i < count; {
		b := block + int64(i)
		off := int(b & (chunkBlocks - 1))
		run := chunkBlocks - off
		if rem := count - i; run > rem {
			run = rem
		}
		dst := buf[i*BlockSize : (i+run)*BlockSize]
		if c := d.data[b>>chunkShift]; c != nil {
			copy(dst, c[off*BlockSize:])
		} else {
			clear(dst)
		}
		i += run
	}
	return nil
}

// WriteAt stores count blocks from buf at block, charging p the simulated
// service time.
func (d *Disk) WriteAt(p *sim.Proc, block int64, count int, buf []byte) error {
	if err := d.check(block, count); err != nil {
		return err
	}
	if len(buf) != count*BlockSize {
		return ErrShortData
	}
	dur := d.ServiceTime(d.sim.Now(), Write, block, count)
	d.stats.Writes++
	d.stats.BlocksWritten += int64(count)
	d.hWrite.Observe(dur)
	p.Sleep(dur)
	for i := 0; i < count; {
		b := block + int64(i)
		off := int(b & (chunkBlocks - 1))
		run := chunkBlocks - off
		if rem := count - i; run > rem {
			run = rem
		}
		idx := b >> chunkShift
		c := d.data[idx]
		if c == nil {
			c = make([]byte, chunkBlocks*BlockSize)
			d.data[idx] = c
		} else if d.shared != nil && d.shared[idx] {
			// Copy-on-write: this chunk is frozen by a fork.
			nc := make([]byte, chunkBlocks*BlockSize)
			copy(nc, c)
			d.data[idx] = nc
			d.shared[idx] = false
			c = nc
		}
		copy(c[off*BlockSize:], buf[i*BlockSize:(i+run)*BlockSize])
		i += run
	}
	return nil
}

// PeekBlock returns the stored contents of one block without charging any
// time. Unwritten blocks read as zeros. Intended for tests and tools.
func (d *Disk) PeekBlock(block int64) []byte {
	out := make([]byte, BlockSize)
	if c := d.data[block>>chunkShift]; c != nil {
		copy(out, c[(block&(chunkBlocks-1))*BlockSize:])
	}
	return out
}
