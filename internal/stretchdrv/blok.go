// Package stretchdrv implements the paper's stretch drivers — nailed,
// physical, paged, memory-mapped-file and streaming — as thin compositions
// over a shared pager Engine parameterised by a ReplacementPolicy (FIFO,
// second chance, clock), a Backing (swap-via-blok, mapped file, none) and a
// WritebackPolicy (demand, forgetful, sync-on-request), plus the blok-based
// swap-space allocator the swap backing keeps its on-disk state in. Stretch
// drivers are unprivileged, application-level objects: they acquire and
// manage their own physical frames and set up virtual-to-physical mappings
// by invoking the (validated) low-level translation system.
package stretchdrv

import (
	"errors"
	"math/bits"
)

// ErrNoBloks is returned when the swap space is exhausted.
var ErrNoBloks = errors.New("stretchdrv: no free bloks")

// bitmapNode is one element of the singly linked list of bitmap structures
// the paged driver tracks swap space with. Each node covers a contiguous
// range of bloks; a set bit means free.
type bitmapNode struct {
	base  int64 // first blok index covered
	bits  []uint64
	nfree int
	next  *bitmapNode
}

// BlokAllocator allocates bloks — contiguous sets of disk blocks, each a
// multiple of the page size — first fit, with a hint pointer to the
// earliest structure known to have free bloks (exactly the paper's scheme).
type BlokAllocator struct {
	blokBlocks int64 // disk blocks per blok
	total      int64
	head       *bitmapNode
	hint       *bitmapNode
}

// nodeBloks is how many bloks each bitmap structure covers.
const nodeBloks = 512

// NewBlokAllocator manages total bloks of blokBlocks disk blocks each.
func NewBlokAllocator(total, blokBlocks int64) *BlokAllocator {
	a := &BlokAllocator{blokBlocks: blokBlocks, total: total}
	var tail *bitmapNode
	for base := int64(0); base < total; base += nodeBloks {
		n := int64(nodeBloks)
		if base+n > total {
			n = total - base
		}
		node := &bitmapNode{base: base, bits: make([]uint64, (n+63)/64), nfree: int(n)}
		for i := int64(0); i < n; i++ {
			node.bits[i/64] |= 1 << (i % 64)
		}
		if tail == nil {
			a.head = node
		} else {
			tail.next = node
		}
		tail = node
	}
	a.hint = a.head
	return a
}

// BlokBlocks returns the number of disk blocks per blok.
func (a *BlokAllocator) BlokBlocks() int64 { return a.blokBlocks }

// Total returns the number of bloks managed.
func (a *BlokAllocator) Total() int64 { return a.total }

// Free returns the number of free bloks.
func (a *BlokAllocator) Free() int64 {
	var n int64
	for node := a.head; node != nil; node = node.next {
		n += int64(node.nfree)
	}
	return n
}

// Alloc returns the index of a free blok, first fit starting from the hint
// structure.
func (a *BlokAllocator) Alloc() (int64, error) {
	for node := a.hint; node != nil; node = node.next {
		if node.nfree == 0 {
			continue
		}
		for w, word := range node.bits {
			if word == 0 {
				continue
			}
			bit := bits.TrailingZeros64(word)
			node.bits[w] &^= 1 << bit
			node.nfree--
			a.hint = node
			return node.base + int64(w*64+bit), nil
		}
	}
	// The hint may have skipped earlier structures freed since; rescan
	// from the head once before giving up.
	if a.hint != a.head {
		a.hint = a.head
		return a.Alloc()
	}
	return 0, ErrNoBloks
}

// AllocRun allocates n contiguous bloks first fit and returns the index of
// the first, so a batched page-out can land as one multi-block disk
// transaction. Runs never span bitmap structures. n == 1 delegates to Alloc
// (preserving its hint behaviour exactly); if no structure holds n
// consecutive free bloks the call fails and the caller should fall back to
// single allocations.
func (a *BlokAllocator) AllocRun(n int) (int64, error) {
	if n <= 1 {
		return a.Alloc()
	}
	for node := a.head; node != nil; node = node.next {
		if node.nfree < n {
			continue
		}
		limit := int64(len(node.bits) * 64)
		if node.base+limit > a.total {
			limit = a.total - node.base
		}
		run := int64(0)
		for i := int64(0); i < limit; i++ {
			if node.bits[i/64]&(1<<(i%64)) == 0 {
				run = 0
				continue
			}
			run++
			if run == int64(n) {
				start := i - run + 1
				for j := start; j <= i; j++ {
					node.bits[j/64] &^= 1 << (j % 64)
				}
				node.nfree -= n
				return node.base + start, nil
			}
		}
	}
	return 0, ErrNoBloks
}

// FreeBlok returns blok idx to the allocator and moves the hint back if
// this structure now precedes it.
func (a *BlokAllocator) FreeBlok(idx int64) {
	for node := a.head; node != nil; node = node.next {
		if idx < node.base || idx >= node.base+int64(len(node.bits)*64) {
			continue
		}
		off := idx - node.base
		mask := uint64(1) << (off % 64)
		if node.bits[off/64]&mask != 0 {
			return // already free
		}
		node.bits[off/64] |= mask
		node.nfree++
		if node.base < a.hint.base {
			a.hint = node
		}
		return
	}
}

// BlockOffset converts a blok index to its first disk block within the
// swap file.
func (a *BlokAllocator) BlockOffset(idx int64) int64 { return idx * a.blokBlocks }
