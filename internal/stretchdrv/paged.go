package stretchdrv

import (
	"nemesis/internal/domain"
	"nemesis/internal/sfs"
	"nemesis/internal/vm"
)

// PagerOptions selects the composable pieces of a pager engine. The zero
// value is the paper's driver: FIFO replacement, demand writeback, no write
// clustering.
type PagerOptions struct {
	// Policy picks the replacement policy ("" = FIFO).
	Policy PolicyKind
	// Writeback picks when dirty data reaches the backing store
	// ("" = demand).
	Writeback WritebackKind
	// ClusterSize caps how many dirty pages one eviction gathers into a
	// single cleaning batch (<= 1 disables clustering).
	ClusterSize int
}

// Paged extends the physical driver with a binding to the User-Safe Backing
// Store: it may swap pages out to its swap file and page them back in on
// demand. Swap space is tracked as a bitmap of bloks. The default scheme is
// fairly pure demand paging — no pre-paging, eviction only when a fault
// finds no free frame — with replacement, writeback and clustering pluggable
// via PagerOptions.
type Paged struct {
	*Engine
	swap *SwapBacking
}

// NewPaged creates a paged stretch driver for st with the default options
// (the paper's driver), swapping to swap, and binds it. Each blok holds
// exactly one page.
func NewPaged(dom *domain.Domain, st *vm.Stretch, swap *sfs.SwapFile) *Paged {
	d, err := NewPagedOpts(dom, st, swap, PagerOptions{})
	if err != nil {
		panic(err) // zero options cannot fail
	}
	return d
}

// NewPagedOpts is NewPaged with explicit policy choices.
func NewPagedOpts(dom *domain.Domain, st *vm.Stretch, swap *sfs.SwapFile, opt PagerOptions) (*Paged, error) {
	return NewPagedBacking(dom, st, NewSwapBacking(swap), opt)
}

// NewPagedBacking builds a paged driver over an arbitrary Backing (a local
// swap file, a remote store, a tiered composition...) and binds it. The
// engine is identical in every case; only where cleaned pages go differs.
func NewPagedBacking(dom *domain.Domain, st *vm.Stretch, backing Backing, opt PagerOptions) (*Paged, error) {
	policy, err := NewPolicy(opt.Policy)
	if err != nil {
		return nil, err
	}
	wb, err := NewWriteback(opt.Writeback)
	if err != nil {
		return nil, err
	}
	swap, _ := backing.(*SwapBacking) // nil for non-swap backings
	d := &Paged{
		Engine: newEngine(dom, st, "paged", policy, backing, wb, opt.ClusterSize),
		swap:   swap,
	}
	dom.Bind(st, d)
	return d, nil
}

// Backing exposes the driver's backing store.
func (d *Paged) Backing() Backing { return d.Engine.backing }

// Swap exposes the backing swap file, or nil when the driver pages to a
// non-swap backing (remote, tiered).
func (d *Paged) Swap() *sfs.SwapFile {
	if d.swap == nil {
		return nil
	}
	return d.swap.File()
}

// SwapFreeBloks returns the unallocated swap capacity in bloks (0 for
// non-swap backings).
func (d *Paged) SwapFreeBloks() int64 {
	if d.swap == nil {
		return 0
	}
	return d.swap.FreeBloks()
}
