package stretchdrv

import (
	"nemesis/internal/disk"
	"nemesis/internal/domain"
	"nemesis/internal/mem"
	"nemesis/internal/obs"
	"nemesis/internal/sfs"
	"nemesis/internal/sim"
	"nemesis/internal/vm"
)

// pageInfo is the paged driver's per-page record.
type pageInfo struct {
	blok   int64 // allocated swap blok, or -1
	onDisk bool  // swap copy is current
}

// PagedStats counts paging activity.
type PagedStats struct {
	Faults     int64
	FastFaults int64
	PageIns    int64
	PageOuts   int64
	Evictions  int64
	ZeroFills  int64
	// Spares counts pages the second-chance policy re-queued instead of
	// evicting.
	Spares int64
}

// Paged extends the physical driver with a binding to the User-Safe
// Backing Store: it may swap pages out to its swap file and page them back
// in on demand. Swap space is tracked as a bitmap of bloks. The scheme is
// fairly pure demand paging: no pre-paging, eviction only when a fault
// finds no free frame.
type Paged struct {
	base
	st   *vm.Stretch
	swap *sfs.SwapFile
	blok *BlokAllocator

	pages map[vm.VPN]*pageInfo
	// fifo orders mapped pages for eviction, oldest first.
	fifo []vm.VA

	// SecondChance, when set, skips (and re-queues) referenced pages once
	// before evicting — the classic improvement the paper leaves open.
	SecondChance bool
	// Forgetful makes the driver "forget" that pages have a copy on disk,
	// so it never pages in — the modified driver of the paper's page-out
	// experiment (Fig. 8).
	Forgetful bool

	Stats PagedStats

	// Cached telemetry handles (nil when the domain has no registry).
	cPageIns   *obs.Counter
	cPageOuts  *obs.Counter
	cEvictions *obs.Counter
}

// NewPaged creates a paged stretch driver for st, swapping to swap, and
// binds it. Each blok holds exactly one page.
func NewPaged(dom *domain.Domain, st *vm.Stretch, swap *sfs.SwapFile) *Paged {
	blokBlocks := int64(vm.PageSize / disk.BlockSize)
	d := &Paged{
		base:  base{dom: dom},
		st:    st,
		swap:  swap,
		blok:  NewBlokAllocator(swap.Blocks()/blokBlocks, blokBlocks),
		pages: make(map[vm.VPN]*pageInfo),
	}
	if r := dom.Env().Obs; r != nil {
		d.cPageIns = r.Counter("driver", "pageins", dom.Name())
		d.cPageOuts = r.Counter("driver", "pageouts", dom.Name())
		d.cEvictions = r.Counter("driver", "evictions", dom.Name())
	}
	dom.Bind(st, d)
	return d
}

// DriverName implements domain.Driver.
func (d *Paged) DriverName() string { return "paged" }

// Swap exposes the backing swap file.
func (d *Paged) Swap() *sfs.SwapFile { return d.swap }

// info returns (creating if needed) the record for the page at va.
func (d *Paged) info(va vm.VA) *pageInfo {
	vpn := vm.PageOf(va)
	pi, ok := d.pages[vpn]
	if !ok {
		pi = &pageInfo{blok: -1}
		d.pages[vpn] = pi
	}
	return pi
}

// SatisfyFault implements domain.Driver. The fast path handles only
// demand-zero faults with a free frame in hand; anything touching the disk
// (eviction write-back, page-in) needs a worker thread, since IDC to the
// USD is impossible inside a notification handler.
func (d *Paged) SatisfyFault(p *sim.Proc, f *vm.Fault, canIDC bool) domain.Result {
	d.Stats.Faults++
	if f.Class != vm.PageFault || !d.st.Contains(f.VA) {
		return domain.Failure
	}
	f.Span.BeginHop("driver")
	va := vm.PageOf(f.VA).Base()
	pi := d.info(va)
	needsPageIn := pi.onDisk && !d.Forgetful

	pfn, haveFrame := d.findUnusedFrame()
	if !canIDC {
		if !haveFrame || needsPageIn {
			return domain.Retry
		}
		d.Stats.FastFaults++
	}

	if !haveFrame {
		// Try the allocator first (it may have optimistic frames for
		// us); fall back to evicting one of our own pages.
		if newPFN, err := d.memc().TryAllocFrame(); err == nil {
			pfn, haveFrame = newPFN, true
		} else {
			f.Span.BeginHop("evict")
			evicted, err := d.evictOne(p, f.Span)
			if err != nil {
				return domain.Failure
			}
			pfn, haveFrame = evicted, true
		}
	}

	if needsPageIn {
		buf := make([]byte, vm.PageSize)
		off := d.blok.BlockOffset(pi.blok)
		if err := d.swap.ReadSpanned(p, off, int(d.blok.BlokBlocks()), buf, f.Span); err != nil {
			return domain.Failure
		}
		copy(d.env().Store.Frame(pfn), buf)
		d.Stats.PageIns++
		d.cPageIns.Inc()
	} else {
		d.env().Store.Zero(pfn)
		d.Stats.ZeroFills++
	}

	f.Span.BeginHop("map")
	if err := d.mapFrame(va, pfn); err != nil {
		return domain.Failure
	}
	d.fifo = append(d.fifo, va)
	// The mapping is fresh: the in-memory copy will diverge on first
	// write (FOW bit tracks that); the disk copy remains valid until
	// then, but we keep it simple and treat memory as authoritative:
	// onDisk stays true so an unmodified page needs no write-back.
	return domain.Success
}

// pickVictim removes and returns the next eviction victim from the FIFO,
// honouring second chance if enabled.
func (d *Paged) pickVictim() (vm.VA, bool) {
	passes := 0
	for len(d.fifo) > 0 && passes < 2*len(d.fifo)+2 {
		va := d.fifo[0]
		d.fifo = d.fifo[1:]
		if d.SecondChance {
			if ref, err := d.env().TS.IsReferenced(va); err == nil && ref {
				// Give it a second chance: clear by re-arming FOR via
				// the paged driver's own bookkeeping and re-queue.
				if pte := d.env().TS.PageTable().Lookup(vm.PageOf(va)); pte != nil {
					pte.Referenced = false
					pte.Attr.FOR = true
				}
				d.fifo = append(d.fifo, va)
				d.Stats.Spares++
				passes++
				continue
			}
		}
		return va, true
	}
	if len(d.fifo) > 0 {
		va := d.fifo[0]
		d.fifo = d.fifo[1:]
		return va, true
	}
	return 0, false
}

// evictOne unmaps a victim page, writing it to swap if dirty, and returns
// the freed frame. Runs only in worker context (disk IDC). sp, when
// non-nil, receives the write-back's USD hops (eviction on behalf of a
// demand fault is part of that fault's causal chain).
func (d *Paged) evictOne(p *sim.Proc, sp *obs.Span) (mem.PFN, error) {
	va, ok := d.pickVictim()
	if !ok {
		return 0, ErrNoBloks // no pages to evict: cannot proceed
	}
	pfn, dirty, err := d.unmapVA(va)
	if err != nil {
		return 0, err
	}
	pi := d.info(va)
	if dirty || !pi.onDisk {
		if pi.blok < 0 {
			blok, err := d.blok.Alloc()
			if err != nil {
				return 0, err
			}
			pi.blok = blok
		}
		buf := make([]byte, vm.PageSize)
		copy(buf, d.env().Store.Frame(pfn))
		off := d.blok.BlockOffset(pi.blok)
		if err := d.swap.WriteSpanned(p, off, int(d.blok.BlokBlocks()), buf, sp); err != nil {
			return 0, err
		}
		pi.onDisk = true
		d.Stats.PageOuts++
		d.cPageOuts.Inc()
	}
	d.Stats.Evictions++
	d.cEvictions.Inc()
	return pfn, nil
}

// Relinquish implements domain.Driver: free unused frames first, then clean
// and evict mapped pages, leaving the freed frames at the top of the stack
// for the allocator to reclaim.
func (d *Paged) Relinquish(p *sim.Proc, k int) int {
	claimed := make(map[mem.PFN]bool)
	for len(claimed) < k {
		if pfn, ok := d.findUnusedFrameExcept(claimed); ok {
			claimed[pfn] = true
			d.stack().MoveToTop(pfn)
			continue
		}
		pfn, err := d.evictOne(p, nil)
		if err != nil {
			break
		}
		claimed[pfn] = true
		d.stack().MoveToTop(pfn)
	}
	return len(claimed)
}

// ResidentPages returns the number of currently mapped pages.
func (d *Paged) ResidentPages() int { return len(d.fifo) }

// SwapFreeBloks returns the unallocated swap capacity in bloks.
func (d *Paged) SwapFreeBloks() int64 { return d.blok.Free() }
