package stretchdrv

import (
	"nemesis/internal/disk"
	"nemesis/internal/domain"
	"nemesis/internal/mem"
	"nemesis/internal/obs"
	"nemesis/internal/sim"
	"nemesis/internal/usd"
	"nemesis/internal/vm"
)

// pfEntry tracks one in-flight prefetch so a demand fault on the same page
// waits for it instead of issuing a duplicate read.
type pfEntry struct {
	done      *sim.Cond
	completed bool
	ok        bool
}

// Streaming is the "stream-paging" stretch driver the paper sketches as
// future work (§8, after Mapp's object-oriented VM): a paged driver that
// detects sequential fault patterns and pipelines read-ahead of the next
// Window pages through a dedicated IO channel, overlapping the
// application's per-page processing with its own disk service. Prefetch is
// opportunistic: it only uses frames that are free at the time, so eviction
// pressure stays on the demand path and a mis-predicted stream costs at
// most Window frames of churn.
type Streaming struct {
	*Paged
	// Window is the read-ahead depth in pages.
	Window int

	pfCh     *usd.Channel
	inflight map[vm.VPN]*pfEntry
	kick     *sim.Cond
	freeReqs []*usd.Request // completed prefetch requests, for resubmission

	lastVPN  vm.VPN
	runLen   int
	wantFrom vm.VPN // desired prefetch window [wantFrom, wantTo)
	wantTo   vm.VPN

	// Prefetches counts pages fetched ahead; PrefetchedUsed counts those
	// later claimed by a demand access before eviction.
	Prefetches     int64
	PrefetchedUsed int64

	cPrefetches *obs.Counter
	cPFUsed     *obs.Counter
}

// NewStreaming wraps a paged driver with stream prefetching. pfCh must be a
// channel onto the same swap extent (see sfs.OpenAlias) with depth >= window.
// The driver re-binds the stretch to itself.
func NewStreaming(dom *domain.Domain, paged *Paged, pfCh *usd.Channel, window int) *Streaming {
	if window < 1 {
		window = 1
	}
	s := &Streaming{
		Paged:    paged,
		Window:   window,
		pfCh:     pfCh,
		inflight: make(map[vm.VPN]*pfEntry),
		kick:     sim.NewCond(dom.Env().Sim),
	}
	if r := dom.Env().Obs; r != nil {
		s.cPrefetches = r.Counter("driver", "prefetches", dom.Name())
		s.cPFUsed = r.Counter("driver", "prefetched_used", dom.Name())
	}
	dom.Bind(paged.st, s)
	dom.Go("prefetcher", s.prefetchLoop)
	return s
}

// DriverName implements domain.Driver.
func (s *Streaming) DriverName() string { return "streaming" }

// SatisfyFault implements domain.Driver: wait for an in-flight prefetch of
// the faulted page if there is one, otherwise fall back to demand paging,
// and in either case update the sequential-run detector.
func (s *Streaming) SatisfyFault(p *sim.Proc, f *vm.Fault, canIDC bool) domain.Result {
	vpn := vm.PageOf(f.VA)
	if e, busy := s.inflight[vpn]; busy {
		if !canIDC {
			return domain.Retry
		}
		f.Span.BeginHop("prefetch.wait")
		for !e.completed {
			e.done.Wait(p)
		}
		if e.ok {
			s.PrefetchedUsed++
			s.cPFUsed.Inc()
			s.noteAccess(vpn)
			return domain.Success
		}
		// Prefetch failed; fall through to the demand path.
	}
	res := s.Engine.SatisfyFault(p, f, canIDC)
	if res == domain.Success {
		s.noteAccess(vpn)
	}
	return res
}

// noteAccess feeds the sequential detector and retargets the prefetcher.
func (s *Streaming) noteAccess(vpn vm.VPN) {
	if vpn == s.lastVPN+1 {
		s.runLen++
	} else {
		s.runLen = 0
	}
	s.lastVPN = vpn
	if s.runLen >= 2 {
		s.wantFrom = vpn + 1
		s.wantTo = vpn + 1 + vm.VPN(s.Window)
		limit := vm.PageOf(s.st.Base() + vm.VA(s.st.Size()-1))
		if s.wantTo > limit+1 {
			s.wantTo = limit + 1
		}
		s.kick.Signal()
	}
}

// nextTarget returns the lowest wanted page that is worth prefetching:
// on disk, recallable, not resident, not already in flight.
func (s *Streaming) nextTarget() (vm.VPN, bool) {
	for vpn := s.wantFrom; vpn < s.wantTo; vpn++ {
		if _, busy := s.inflight[vpn]; busy {
			continue
		}
		if !s.swap.HasCopy(vpn.Base()) || !s.writeback.RecallDiskCopy() {
			continue // demand-zero pages are not worth a disk read
		}
		if pte := s.env().TS.PageTable().Lookup(vpn); pte != nil && pte.Valid {
			continue // already resident
		}
		return vpn, true
	}
	return 0, false
}

// prefetchLoop runs as a thread of the owning domain: it claims free frames,
// pipelines reads on the dedicated channel, and maps pages as they land.
func (s *Streaming) prefetchLoop(t *domain.Thread) {
	p := t.Proc()
	type flight struct {
		vpn vm.VPN
		pfn mem.PFN
		e   *pfEntry
	}
	for {
		vpn, ok := s.nextTarget()
		if !ok {
			s.kick.Wait(p)
			continue
		}
		// Claim frames and submit as many window targets as possible.
		var batch []flight
		for len(batch) < s.Window {
			pfn, free := s.findUnusedFrame()
			if !free {
				if newPFN, err := s.memc().TryAllocFrame(); err == nil {
					pfn, free = newPFN, true
				}
			}
			if !free && s.ResidentPages() > s.Window+2 {
				// Recycle the oldest resident page (normally one the
				// stream already consumed) rather than stalling until
				// the demand path frees a frame.
				if evicted, err := s.evictOne(p, nil); err == nil {
					pfn, free = evicted, true
				}
			}
			if !free {
				break // opportunistic: no frames to spare, no prefetch
			}
			block, onDisk := s.swap.DiskBlock(vpn.Base())
			if !onDisk {
				break // raced with a forgetful discard; nothing to read
			}
			e := &pfEntry{done: sim.NewCond(s.env().Sim)}
			s.inflight[vpn] = e
			var req *usd.Request
			if n := len(s.freeReqs); n > 0 {
				req = s.freeReqs[n-1]
				s.freeReqs[n-1] = nil
				s.freeReqs = s.freeReqs[:n-1]
				req.Block = block
				req.Tag = vpn
				req.Err = nil
			} else {
				req = &usd.Request{
					Op:    disk.Read,
					Block: block,
					Count: int(s.swap.BlokBlocks()),
					Tag:   vpn,
				}
			}
			// Reserve the frame against concurrent claims: mark its
			// stack slot with the target VA now.
			s.stack().SetVA(pfn, uint64(vpn.Base()))
			if err := s.pfCh.Submit(p, req); err != nil {
				s.stack().SetVA(pfn, 0)
				e.completed = true
				delete(s.inflight, vpn)
				e.done.Broadcast()
				return
			}
			batch = append(batch, flight{vpn, pfn, e})
			next, more := s.nextTarget()
			if !more {
				break
			}
			vpn = next
		}
		if len(batch) == 0 {
			s.kick.Wait(p)
			continue
		}
		// Completions arrive in submission order on this channel.
		for _, fl := range batch {
			req, err := s.pfCh.Await(p)
			if err != nil {
				fl.e.completed = true
				delete(s.inflight, fl.vpn)
				fl.e.done.Broadcast()
				return
			}
			ok := req.Err == nil
			if ok {
				copy(s.env().Store.Frame(fl.pfn), req.Data)
				s.stack().SetVA(fl.pfn, 0) // mapFrame re-sets it
				if err := s.mapFrame(fl.vpn.Base(), fl.pfn); err != nil {
					ok = false
				} else {
					s.policy.NoteMapped(fl.vpn.Base())
					s.Prefetches++
					s.cPrefetches.Inc()
					s.Stats.PageIns++
					s.cPageIns.Inc()
				}
			}
			if !ok {
				s.stack().SetVA(fl.pfn, 0)
			}
			fl.e.completed = true
			fl.e.ok = ok
			delete(s.inflight, fl.vpn)
			fl.e.done.Broadcast()
			s.freeReqs = append(s.freeReqs, req)
		}
	}
}
