package stretchdrv

import (
	"fmt"

	"nemesis/internal/disk"
	"nemesis/internal/domain"
	"nemesis/internal/sfs"
	"nemesis/internal/vm"
)

// Mapped is a memory-mapped-file stretch driver: the stretch's contents are
// an on-disk file (an SFS extent), demand-read on fault and written back on
// eviction or Sync. The paper's introduction names memory-mapped files as
// one of the VM techniques a multi-service OS must keep supporting; this
// driver provides them with the same self-paged resource story as the paged
// driver — the file's disk traffic runs under the owning domain's own QoS
// contract.
//
// Unlike the paged driver there is no blok allocator: page i of the stretch
// corresponds to the i'th page-sized run of file blocks, and the file is
// always authoritative for non-resident pages.
type Mapped struct {
	*Engine
	backing *MappedBacking
}

// NewMapped binds st to file with default options. The file must be at
// least as large as the stretch.
func NewMapped(dom *domain.Domain, st *vm.Stretch, file *sfs.SwapFile) (*Mapped, error) {
	return NewMappedOpts(dom, st, file, PagerOptions{})
}

// NewMappedOpts is NewMapped with explicit policy choices.
func NewMappedOpts(dom *domain.Domain, st *vm.Stretch, file *sfs.SwapFile, opt PagerOptions) (*Mapped, error) {
	pageBlocks := int64(vm.PageSize / int64(disk.BlockSize))
	if file.Blocks() < int64(st.Pages())*pageBlocks {
		return nil, fmt.Errorf("stretchdrv: file %q (%d blocks) smaller than %v", file.Name(), file.Blocks(), st)
	}
	policy, err := NewPolicy(opt.Policy)
	if err != nil {
		return nil, err
	}
	wb, err := NewWriteback(opt.Writeback)
	if err != nil {
		return nil, err
	}
	backing := NewMappedBacking(file, st.Base())
	d := &Mapped{
		Engine:  newEngine(dom, st, "mapped-file", policy, backing, wb, opt.ClusterSize),
		backing: backing,
	}
	dom.Bind(st, d)
	return d, nil
}

// File returns the backing file.
func (d *Mapped) File() *sfs.SwapFile { return d.backing.File() }
