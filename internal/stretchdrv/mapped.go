package stretchdrv

import (
	"fmt"

	"nemesis/internal/disk"
	"nemesis/internal/domain"
	"nemesis/internal/mem"
	"nemesis/internal/sfs"
	"nemesis/internal/sim"
	"nemesis/internal/vm"
)

// MappedStats counts mapped-file activity.
type MappedStats struct {
	Faults     int64
	FileReads  int64
	WriteBacks int64
	Evictions  int64
	Syncs      int64
}

// Mapped is a memory-mapped-file stretch driver: the stretch's contents are
// an on-disk file (an SFS extent), demand-read on fault and written back on
// eviction or Sync. The paper's introduction names memory-mapped files as
// one of the VM techniques a multi-service OS must keep supporting; this
// driver provides them with the same self-paged resource story as the paged
// driver — the file's disk traffic runs under the owning domain's own QoS
// contract.
//
// Unlike the paged driver there is no blok allocator: page i of the stretch
// corresponds to the i'th page-sized run of file blocks, and the file is
// always authoritative for non-resident pages.
type Mapped struct {
	base
	st   *vm.Stretch
	file *sfs.SwapFile
	fifo []vm.VA

	Stats MappedStats
}

// NewMapped binds st to file. The file must be at least as large as the
// stretch.
func NewMapped(dom *domain.Domain, st *vm.Stretch, file *sfs.SwapFile) (*Mapped, error) {
	pageBlocks := int64(vm.PageSize / int64(disk.BlockSize))
	if file.Blocks() < int64(st.Pages())*pageBlocks {
		return nil, fmt.Errorf("stretchdrv: file %q (%d blocks) smaller than %v", file.Name(), file.Blocks(), st)
	}
	d := &Mapped{base: base{dom: dom}, st: st, file: file}
	dom.Bind(st, d)
	return d, nil
}

// DriverName implements domain.Driver.
func (d *Mapped) DriverName() string { return "mapped-file" }

// File returns the backing file.
func (d *Mapped) File() *sfs.SwapFile { return d.file }

// fileOffset returns the file-relative block offset backing va.
func (d *Mapped) fileOffset(va vm.VA) int64 {
	page := int64(uint64(va-d.st.Base()) / vm.PageSize)
	return page * int64(vm.PageSize/int64(disk.BlockSize))
}

// SatisfyFault implements domain.Driver. Every fault needs a file read, so
// the notification-handler fast path always returns Retry.
func (d *Mapped) SatisfyFault(p *sim.Proc, f *vm.Fault, canIDC bool) domain.Result {
	d.Stats.Faults++
	if f.Class != vm.PageFault || !d.st.Contains(f.VA) {
		return domain.Failure
	}
	if !canIDC {
		return domain.Retry
	}
	va := vm.PageOf(f.VA).Base()
	pfn, ok := d.findUnusedFrame()
	if !ok {
		if newPFN, err := d.memc().TryAllocFrame(); err == nil {
			pfn, ok = newPFN, true
		} else {
			evicted, err := d.evictOne(p)
			if err != nil {
				return domain.Failure
			}
			pfn, ok = evicted, true
		}
	}
	buf := make([]byte, vm.PageSize)
	if err := d.file.Read(p, d.fileOffset(va), int(vm.PageSize/int64(disk.BlockSize)), buf); err != nil {
		return domain.Failure
	}
	copy(d.env().Store.Frame(pfn), buf)
	d.Stats.FileReads++
	if err := d.mapFrame(va, pfn); err != nil {
		return domain.Failure
	}
	d.fifo = append(d.fifo, va)
	return domain.Success
}

// evictOne unmaps the oldest resident page, writing it back if dirty.
func (d *Mapped) evictOne(p *sim.Proc) (mem.PFN, error) {
	if len(d.fifo) == 0 {
		return 0, fmt.Errorf("stretchdrv: mapped driver has no pages to evict")
	}
	va := d.fifo[0]
	d.fifo = d.fifo[1:]
	pfn, dirty, err := d.unmapVA(va)
	if err != nil {
		return 0, err
	}
	d.Stats.Evictions++
	if dirty {
		if err := d.writeBack(p, va, pfn); err != nil {
			return 0, err
		}
	}
	return pfn, nil
}

// writeBack flushes a frame's contents to the file.
func (d *Mapped) writeBack(p *sim.Proc, va vm.VA, pfn mem.PFN) error {
	buf := make([]byte, vm.PageSize)
	copy(buf, d.env().Store.Frame(pfn))
	if err := d.file.Write(p, d.fileOffset(va), int(vm.PageSize/int64(disk.BlockSize)), buf); err != nil {
		return err
	}
	d.Stats.WriteBacks++
	return nil
}

// Sync writes every dirty resident page back to the file (msync). Pages
// stay mapped; their dirty state is reset and fault-on-write re-armed so
// future writes dirty them again.
func (d *Mapped) Sync(p *sim.Proc) error {
	d.Stats.Syncs++
	ts := d.env().TS
	for _, va := range d.fifo {
		pte := ts.PageTable().Lookup(vm.PageOf(va))
		if pte == nil || !pte.Valid || !pte.Dirty {
			continue
		}
		if err := d.writeBack(p, va, pte.PFN); err != nil {
			return err
		}
		pte.Dirty = false
		pte.Attr.FOW = true
	}
	return nil
}

// Relinquish implements domain.Driver: unused frames first, then clean
// evictions.
func (d *Mapped) Relinquish(p *sim.Proc, k int) int {
	claimed := make(map[mem.PFN]bool)
	for len(claimed) < k {
		if pfn, ok := d.findUnusedFrameExcept(claimed); ok {
			claimed[pfn] = true
			d.stack().MoveToTop(pfn)
			continue
		}
		pfn, err := d.evictOne(p)
		if err != nil {
			break
		}
		claimed[pfn] = true
		d.stack().MoveToTop(pfn)
	}
	return len(claimed)
}

// ResidentPages returns the number of mapped pages.
func (d *Mapped) ResidentPages() int { return len(d.fifo) }
