package stretchdrv_test

// Property-based checks (testing/quick) of the replacement policies against
// a reference model: residency tracked in a plain set, referenced bits in a
// map. The policies are pure data structures, so they can be driven directly
// without a simulator.

import (
	"testing"
	"testing/quick"

	"nemesis/internal/stretchdrv"
	"nemesis/internal/vm"
)

// fakePageState is an in-memory referenced-bit table standing in for the
// engine's translation-system view.
type fakePageState map[vm.VA]bool

func (f fakePageState) Referenced(va vm.VA) bool { return f[va] }
func (f fakePageState) ClearReferenced(va vm.VA) { f[va] = false }

var allPolicies = []stretchdrv.PolicyKind{
	stretchdrv.PolicyFIFO, stretchdrv.PolicySecondChance, stretchdrv.PolicyClock,
}

// TestPolicyModelQuick drives each policy with random access traces under a
// random capacity and checks the structural invariants: the tracked resident
// set never exceeds the capacity, every evicted page was resident, and
// Resident() always matches the model set exactly.
func TestPolicyModelQuick(t *testing.T) {
	for _, kind := range allPolicies {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			prop := func(accesses []uint8, capRaw uint8) bool {
				capacity := int(capRaw%6) + 1
				pol, err := stretchdrv.NewPolicy(kind)
				if err != nil {
					return false
				}
				ps := fakePageState{}
				resident := map[vm.VA]bool{}
				for _, b := range accesses {
					va := vm.VA(int(b%16) * vm.PageSize)
					if resident[va] {
						ps[va] = true // re-access sets the referenced bit
						continue
					}
					if len(resident) == capacity {
						victim, _, ok := pol.Victim(ps)
						if !ok || !resident[victim] {
							return false // evicted a non-resident page
						}
						delete(resident, victim)
						delete(ps, victim)
					}
					pol.NoteMapped(va)
					resident[va] = true
					ps[va] = true
					if pol.Len() != len(resident) || pol.Len() > capacity {
						return false
					}
					view := pol.Resident()
					if len(view) != len(resident) {
						return false
					}
					for _, r := range view {
						if !resident[r] {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(prop, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPolicySparesReferencedQuick: for random referenced-bit assignments with
// at least one unreferenced resident page, second chance and CLOCK must never
// pick a referenced page as the victim (clearing a bit never sets another, so
// the victim must be one of the initially-unreferenced pages).
func TestPolicySparesReferencedQuick(t *testing.T) {
	for _, kind := range []stretchdrv.PolicyKind{stretchdrv.PolicySecondChance, stretchdrv.PolicyClock} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			prop := func(refBits []bool) bool {
				if len(refBits) == 0 {
					return true
				}
				pol, err := stretchdrv.NewPolicy(kind)
				if err != nil {
					return false
				}
				ps := fakePageState{}
				unref := map[vm.VA]bool{}
				any := false
				for i, r := range refBits {
					va := vm.VA(i * vm.PageSize)
					pol.NoteMapped(va)
					ps[va] = r
					if !r {
						unref[va] = true
						any = true
					}
				}
				victim, spared, ok := pol.Victim(ps)
				if !ok {
					return false
				}
				if any && !unref[victim] {
					return false // evicted a just-referenced page over an idle one
				}
				if !any && spared < len(refBits) {
					return false // a full sweep must have cleared every bit
				}
				return true
			}
			if err := quick.Check(prop, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPolicyVictimExhaustion: draining a policy yields each page exactly once
// and then reports ok=false.
func TestPolicyVictimExhaustion(t *testing.T) {
	for _, kind := range allPolicies {
		pol, err := stretchdrv.NewPolicy(kind)
		if err != nil {
			t.Fatal(err)
		}
		ps := fakePageState{}
		const n = 9
		for i := 0; i < n; i++ {
			pol.NoteMapped(vm.VA(i * vm.PageSize))
		}
		seen := map[vm.VA]bool{}
		for i := 0; i < n; i++ {
			va, _, ok := pol.Victim(ps)
			if !ok {
				t.Fatalf("%s: exhausted after %d of %d", kind, i, n)
			}
			if seen[va] {
				t.Fatalf("%s: evicted %#x twice", kind, va)
			}
			seen[va] = true
		}
		if _, _, ok := pol.Victim(ps); ok {
			t.Fatalf("%s: victim from an empty policy", kind)
		}
	}
}

// BenchmarkPolicyVictim measures steady-state victim selection + remap for
// each policy over a 64-page resident set with a referenced hot half.
func BenchmarkPolicyVictim(b *testing.B) {
	for _, kind := range allPolicies {
		kind := kind
		b.Run(string(kind), func(b *testing.B) {
			pol, err := stretchdrv.NewPolicy(kind)
			if err != nil {
				b.Fatal(err)
			}
			ps := fakePageState{}
			const n = 64
			for i := 0; i < n; i++ {
				va := vm.VA(i * vm.PageSize)
				pol.NoteMapped(va)
				ps[va] = i%2 == 0
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				va, _, ok := pol.Victim(ps)
				if !ok {
					b.Fatal("no victim")
				}
				pol.NoteMapped(va)
				ps[va] = i%2 == 0
			}
		})
	}
}
