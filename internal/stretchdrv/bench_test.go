package stretchdrv

import "testing"

func BenchmarkBlokAllocFree(b *testing.B) {
	a := NewBlokAllocator(2048, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		idx, err := a.Alloc()
		if err != nil {
			b.Fatal(err)
		}
		a.FreeBlok(idx)
	}
}

func BenchmarkBlokAllocChurn(b *testing.B) {
	// Fill, then churn the middle: exercises the hint pointer.
	a := NewBlokAllocator(2048, 16)
	for i := 0; i < 2048; i++ {
		a.Alloc()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := int64(1024 + i%512)
		a.FreeBlok(idx)
		got, err := a.Alloc()
		if err != nil || got != idx {
			b.Fatalf("alloc = %d, %v", got, err)
		}
	}
}
