package stretchdrv_test

// Driver behaviour tests, in an external test package so the rig can use
// the core facade (core imports stretchdrv; external test packages may
// close that loop).

import (
	"testing"
	"time"

	"nemesis/internal/atropos"
	"nemesis/internal/core"
	"nemesis/internal/domain"
	"nemesis/internal/mem"
	"nemesis/internal/stretchdrv"
	"nemesis/internal/vm"
)

func cpuQ() atropos.QoS {
	return atropos.QoS{P: 100 * time.Millisecond, S: 30 * time.Millisecond, X: true}
}

func diskQ() atropos.QoS {
	return atropos.QoS{P: 250 * time.Millisecond, S: 150 * time.Millisecond, X: true, L: 10 * time.Millisecond}
}

func rig(frames int) *core.System {
	cfg := core.DefaultConfig()
	cfg.MemoryFrames = 256
	return core.New(cfg)
}

func TestPagedDriverStatesAndCounters(t *testing.T) {
	sys := rig(256)
	d, _ := sys.NewDomain("app", cpuQ(), mem.Contract{Guaranteed: 2})
	st, drv, err := sys.NewPagedStretch(d, 8*vm.PageSize, 32*vm.PageSize, diskQ())
	if err != nil {
		t.Fatal(err)
	}
	if drv.DriverName() != "paged" {
		t.Fatalf("name = %q", drv.DriverName())
	}
	if drv.SwapFreeBloks() != 32 {
		t.Fatalf("free bloks = %d", drv.SwapFreeBloks())
	}
	d.Go("main", func(th *domain.Thread) {
		core.PreallocateFrames(th, 2)
		// Two passes: first writes (dirty), second reads (page-ins).
		th.Touch(st.Base(), 8*vm.PageSize, vm.AccessWrite)
		th.Touch(st.Base(), 8*vm.PageSize, vm.AccessRead)
	})
	sys.Run(30 * time.Second)
	s := drv.Stats
	if s.ZeroFills != 8 {
		t.Fatalf("zero fills = %d, want 8 (one per fresh page)", s.ZeroFills)
	}
	if s.PageOuts < 6 || s.PageIns < 6 {
		t.Fatalf("outs=%d ins=%d", s.PageOuts, s.PageIns)
	}
	if s.Evictions < s.PageOuts {
		t.Fatalf("evictions=%d < pageouts=%d", s.Evictions, s.PageOuts)
	}
	if drv.ResidentPages() != 2 {
		t.Fatalf("resident = %d with 2 frames", drv.ResidentPages())
	}
	// Swap bloks were allocated lazily, only for evicted pages.
	if free := drv.SwapFreeBloks(); free != 32-8 {
		t.Fatalf("free bloks = %d, want 24", free)
	}
	sys.Shutdown()
	sys.RunUntilIdle(1 << 22)
}

func TestPagedFaultOutsideStretchFails(t *testing.T) {
	sys := rig(64)
	d, _ := sys.NewDomain("app", cpuQ(), mem.Contract{Guaranteed: 2})
	st, drv, _ := sys.NewPagedStretch(d, 2*vm.PageSize, 8*vm.PageSize, diskQ())
	other, _ := d.NewStretch(vm.PageSize)
	done := false
	// Direct driver invocation with a foreign fault.
	d.Go("probe", func(th *domain.Thread) {
		res := drv.SatisfyFault(th.Proc(), &vm.Fault{VA: other.Base(), Class: vm.PageFault, SID: other.ID()}, true)
		if res != domain.Failure {
			t.Errorf("foreign fault result = %v", res)
		}
		res = drv.SatisfyFault(th.Proc(), &vm.Fault{VA: st.Base(), Class: vm.ProtectionFault, SID: st.ID()}, true)
		if res != domain.Failure {
			t.Errorf("protection fault result = %v", res)
		}
		done = true
	})
	sys.Run(time.Second)
	if !done {
		t.Fatal("probe incomplete")
	}
	sys.Shutdown()
	sys.RunUntilIdle(1 << 20)
}

func TestPagedRelinquishCleansAndFrees(t *testing.T) {
	sys := rig(64)
	d, _ := sys.NewDomain("app", cpuQ(), mem.Contract{Guaranteed: 8})
	st, drv, _ := sys.NewPagedStretch(d, 8*vm.PageSize, 32*vm.PageSize, diskQ())
	freed := -1
	d.Go("main", func(th *domain.Thread) {
		core.PreallocateFrames(th, 8)
		th.Touch(st.Base(), 6*vm.PageSize, vm.AccessWrite) // 6 dirty, 2 unused
		freed = drv.Relinquish(th.Proc(), 4)
	})
	sys.Run(20 * time.Second)
	if freed != 4 {
		t.Fatalf("relinquished %d, want 4", freed)
	}
	// 2 came from the unused pool; 2 required cleaning dirty pages.
	if drv.Stats.PageOuts < 2 {
		t.Fatalf("pageouts = %d", drv.Stats.PageOuts)
	}
	// The freed frames sit unused at the top of the stack.
	top := d.MemClient().Stack().Top(4)
	for _, e := range top {
		if s, _ := sys.RamTab.State(e.PFN); s != mem.Unused {
			t.Fatalf("top-of-stack frame %d is %v", e.PFN, s)
		}
	}
	sys.Shutdown()
	sys.RunUntilIdle(1 << 22)
}

func TestSecondChanceSparesCounter(t *testing.T) {
	sys := rig(64)
	d, _ := sys.NewDomain("app", cpuQ(), mem.Contract{Guaranteed: 2})
	st, gdrv, err := sys.NewStretch(d, core.PagerSpec{
		Kind:      core.KindPaged,
		Size:      6 * vm.PageSize,
		SwapBytes: 32 * vm.PageSize,
		DiskQoS:   diskQ(),
		Policy:    stretchdrv.PolicySecondChance,
	})
	if err != nil {
		t.Fatal(err)
	}
	drv := gdrv.(*stretchdrv.Paged)
	d.Go("main", func(th *domain.Thread) {
		core.PreallocateFrames(th, 2)
		for pass := 0; pass < 4; pass++ {
			th.Touch(st.Base(), 6*vm.PageSize, vm.AccessRead)
		}
	})
	sys.Run(30 * time.Second)
	if drv.Stats.Spares == 0 {
		t.Fatal("second chance never spared a page")
	}
	sys.Shutdown()
	sys.RunUntilIdle(1 << 22)
}

func TestNailedDriverBehaviour(t *testing.T) {
	sys := rig(64)
	d, _ := sys.NewDomain("app", cpuQ(), mem.Contract{Guaranteed: 4})
	var drv *stretchdrv.Nailed
	d.Go("main", func(th *domain.Thread) {
		var err error
		_, drv, err = sys.NewNailedStretch(th, 2*vm.PageSize)
		if err != nil {
			t.Error(err)
			return
		}
		if drv.DriverName() != "nailed" {
			t.Errorf("name = %q", drv.DriverName())
		}
		// Nailed frames are immune to relinquish.
		if got := drv.Relinquish(th.Proc(), 2); got != 0 {
			t.Errorf("relinquish = %d", got)
		}
		// A fault reaching a nailed driver is unresolvable.
		if res := drv.SatisfyFault(th.Proc(), &vm.Fault{Class: vm.PageFault}, true); res != domain.Failure {
			t.Errorf("fault result = %v", res)
		}
	})
	sys.Run(5 * time.Second)
	if drv == nil {
		t.Fatal("driver not created")
	}
	sys.Shutdown()
	sys.RunUntilIdle(1 << 20)
}

func TestPhysicalDriverRelinquishOnlyUnused(t *testing.T) {
	sys := rig(64)
	d, _ := sys.NewDomain("app", cpuQ(), mem.Contract{Guaranteed: 6})
	st, drv, _ := sys.NewPhysicalStretch(d, 4*vm.PageSize)
	var got int
	d.Go("main", func(th *domain.Thread) {
		core.PreallocateFrames(th, 6)
		th.Touch(st.Base(), 4*vm.PageSize, vm.AccessWrite) // 4 mapped, 2 unused
		got = drv.Relinquish(th.Proc(), 6)
	})
	sys.Run(5 * time.Second)
	// Physical drivers have no backing store: only the 2 unused frames can
	// be given up; mapped data would be lost.
	if got != 2 {
		t.Fatalf("relinquish = %d, want 2", got)
	}
	sys.Shutdown()
	sys.RunUntilIdle(1 << 20)
}

func TestStreamingDriverBasics(t *testing.T) {
	sys := rig(256)
	d, _ := sys.NewDomain("app", cpuQ(), mem.Contract{Guaranteed: 12})
	st, drv, err := sys.NewStreamingStretch(d, 32*vm.PageSize, 64*vm.PageSize,
		diskQ(), atropos.QoS{P: 250 * time.Millisecond, S: 50 * time.Millisecond, X: true, L: 10 * time.Millisecond}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if drv.DriverName() != "streaming" {
		t.Fatalf("name = %q", drv.DriverName())
	}
	verified := false
	d.Go("main", func(th *domain.Thread) {
		core.PreallocateFrames(th, 12)
		// Write all pages out, then stream them back twice.
		buf := make([]byte, vm.PageSize)
		for pg := 0; pg < 32; pg++ {
			for i := range buf {
				buf[i] = byte(pg ^ i)
			}
			if err := th.WriteAt(st.PageBase(pg), buf); err != nil {
				t.Error(err)
				return
			}
		}
		for pass := 0; pass < 2; pass++ {
			for pg := 0; pg < 32; pg++ {
				if err := th.ReadAt(st.PageBase(pg), buf); err != nil {
					t.Error(err)
					return
				}
				for i := range buf {
					if buf[i] != byte(pg^i) {
						t.Errorf("pass %d page %d corrupted", pass, pg)
						return
					}
				}
			}
		}
		verified = true
	})
	sys.Run(60 * time.Second)
	if !verified {
		t.Fatal("stream verification incomplete")
	}
	if drv.Prefetches == 0 {
		t.Fatal("no prefetches on a sequential scan")
	}
	sys.Shutdown()
	sys.RunUntilIdle(1 << 22)
}
