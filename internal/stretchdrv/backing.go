package stretchdrv

import (
	"errors"
	"fmt"
	"sort"

	"nemesis/internal/disk"
	"nemesis/internal/obs"
	"nemesis/internal/sfs"
	"nemesis/internal/sim"
	"nemesis/internal/vm"
)

// DirtyPage is one page of a cleaning batch: the page's base address and a
// snapshot of its contents taken before the write was issued.
type DirtyPage struct {
	VA   vm.VA
	Data []byte
}

// Backing is a pager's persistent store. The engine asks it whether a page
// has a current on-disk copy, reads single pages in on demand, and hands it
// batches of dirty pages to clean; the backing owns the page-to-disk layout
// (blok map or fixed file offsets) and is free to merge a batch into fewer
// disk transactions.
type Backing interface {
	// Name identifies the backing in metrics and traces.
	Name() string
	// HasCopy reports whether the store holds a current copy of va's page.
	HasCopy(va vm.VA) bool
	// ReadPage fills buf with va's page, blocking p on the disk.
	ReadPage(p *sim.Proc, va vm.VA, buf []byte, sp *obs.Span) error
	// WritePages cleans a batch, returning how many disk transactions it
	// took. On return every written page has a current copy (HasCopy true).
	WritePages(p *sim.Proc, pages []DirtyPage, sp *obs.Span) (txns int, err error)
}

// ErrNoCopy is returned by a Backing's ReadPage when the store holds no
// current copy of the requested page (HasCopy would report false). Engines
// check HasCopy first, so seeing it indicates a pager bug or a raced drop.
var ErrNoCopy = errors.New("stretchdrv: no backing copy of page")

// writeScratch is the per-WritePages working set: the merged write buffer
// and the batch-ordering slices. Scratches are pooled per backing and
// checked out for the duration of a call, so overlapping WritePages calls
// (worker eviction racing a user-thread Sync) each hold their own.
type writeScratch struct {
	buf   []byte
	infos []*pageInfo
	order []int
}

// scratchPool is a free list of writeScratch, embedded in each backing.
type scratchPool struct{ free []*writeScratch }

func (p *scratchPool) get() *writeScratch {
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return s
	}
	return &writeScratch{}
}

func (p *scratchPool) put(s *writeScratch) {
	s.buf = s.buf[:0]
	for i := range s.infos {
		s.infos[i] = nil
	}
	s.infos = s.infos[:0]
	s.order = s.order[:0]
	p.free = append(p.free, s)
}

// pageInfo is the swap backing's per-page record.
type pageInfo struct {
	blok   int64 // allocated swap blok, or -1
	onDisk bool  // swap copy is current
}

// SwapBacking stores pages in a swap file, tracking space as a bitmap of
// bloks (each exactly one page) allocated lazily at first clean — the
// paper's User-Safe Backing Store scheme.
type SwapBacking struct {
	swap    *sfs.SwapFile
	blok    *BlokAllocator
	pages   map[vm.VPN]*pageInfo
	scratch scratchPool
}

// NewSwapBacking wraps swap in a blok-managed page store.
func NewSwapBacking(swap *sfs.SwapFile) *SwapBacking {
	blokBlocks := int64(vm.PageSize / disk.BlockSize)
	return &SwapBacking{
		swap:  swap,
		blok:  NewBlokAllocator(swap.Blocks()/blokBlocks, blokBlocks),
		pages: make(map[vm.VPN]*pageInfo),
	}
}

// Name implements Backing.
func (b *SwapBacking) Name() string { return "swap" }

// File returns the underlying swap file.
func (b *SwapBacking) File() *sfs.SwapFile { return b.swap }

// FreeBloks returns the unallocated swap capacity in bloks.
func (b *SwapBacking) FreeBloks() int64 { return b.blok.Free() }

// BlokBlocks returns the disk blocks per blok (= per page).
func (b *SwapBacking) BlokBlocks() int64 { return b.blok.BlokBlocks() }

// info returns (creating if needed) the record for the page at va.
func (b *SwapBacking) info(va vm.VA) *pageInfo {
	vpn := vm.PageOf(va)
	pi, ok := b.pages[vpn]
	if !ok {
		pi = &pageInfo{blok: -1}
		b.pages[vpn] = pi
	}
	return pi
}

// HasCopy implements Backing.
func (b *SwapBacking) HasCopy(va vm.VA) bool {
	pi, ok := b.pages[vm.PageOf(va)]
	return ok && pi.onDisk
}

// DiskBlock returns the absolute disk block of va's swap copy, for clients
// (the stream prefetcher) that pipeline raw USD reads past the engine.
func (b *SwapBacking) DiskBlock(va vm.VA) (int64, bool) {
	pi, ok := b.pages[vm.PageOf(va)]
	if !ok || !pi.onDisk {
		return 0, false
	}
	return b.swap.Extent().Start + b.blok.BlockOffset(pi.blok), true
}

// ReadPage implements Backing. A page that was never cleaned (or was
// dropped) has no swap copy to read; that is ErrNoCopy, not a read of a
// bogus disk offset.
func (b *SwapBacking) ReadPage(p *sim.Proc, va vm.VA, buf []byte, sp *obs.Span) error {
	pi, ok := b.pages[vm.PageOf(va)]
	if !ok || pi.blok < 0 || !pi.onDisk {
		return fmt.Errorf("%w: va %#x", ErrNoCopy, uint64(va))
	}
	off := b.blok.BlockOffset(pi.blok)
	return b.swap.ReadSpanned(p, off, int(b.blok.BlokBlocks()), buf, sp)
}

// Drop forgets va's swap copy and frees its blok (the tiered backing demotes
// pages this way after they reach the remote store). Unknown pages are a
// no-op.
func (b *SwapBacking) Drop(va vm.VA) {
	vpn := vm.PageOf(va)
	pi, ok := b.pages[vpn]
	if !ok {
		return
	}
	if pi.blok >= 0 {
		b.blok.FreeBlok(pi.blok)
	}
	delete(b.pages, vpn)
}

// WritePages implements Backing. Pages without a blok get one allocated
// lazily — as a contiguous run when the batch needs several, so the batch
// can merge into few transactions — then disk-adjacent pages are written as
// single multi-block spanned writes: one USD request, one seek.
func (b *SwapBacking) WritePages(p *sim.Proc, pages []DirtyPage, sp *obs.Span) (int, error) {
	sc := b.scratch.get()
	defer b.scratch.put(sc)
	infos := sc.infos
	var need []*pageInfo
	for _, pg := range pages {
		pi := b.info(pg.VA)
		infos = append(infos, pi)
		if pi.blok < 0 {
			need = append(need, pi)
		}
	}
	sc.infos = infos
	if len(need) > 0 {
		if start, err := b.blok.AllocRun(len(need)); err == nil {
			for i, pi := range need {
				pi.blok = start + int64(i)
			}
		} else {
			// No contiguous run left: fall back to singles. If the swap
			// fills mid-batch, put the partial allocation back — leaving
			// bloks assigned to pages that were never written would leak
			// them and make HasCopy lie on retry.
			for i, pi := range need {
				blok, err := b.blok.Alloc()
				if err != nil {
					for _, prev := range need[:i] {
						b.blok.FreeBlok(prev.blok)
						prev.blok = -1
					}
					return 0, err
				}
				pi.blok = blok
			}
		}
	}

	order := sc.order
	for i := range pages {
		order = append(order, i)
	}
	sc.order = order
	sort.Slice(order, func(i, j int) bool { return infos[order[i]].blok < infos[order[j]].blok })

	txns := 0
	for at := 0; at < len(order); {
		run := 1
		for at+run < len(order) && infos[order[at+run]].blok == infos[order[at+run-1]].blok+1 {
			run++
		}
		blocks := int(b.blok.BlokBlocks())
		buf := sc.buf[:0]
		for k := 0; k < run; k++ {
			buf = append(buf, pages[order[at+k]].Data...)
		}
		sc.buf = buf
		off := b.blok.BlockOffset(infos[order[at]].blok)
		if err := b.swap.WriteSpanned(p, off, run*blocks, buf, sp); err != nil {
			return txns, err
		}
		txns++
		for k := 0; k < run; k++ {
			infos[order[at+k]].onDisk = true
		}
		at += run
	}
	return txns, nil
}

// MappedBacking stores pages at fixed offsets of an SFS file: page i of the
// stretch is the i'th page-sized run of file blocks. The file is always
// authoritative for non-resident pages, so HasCopy is always true and no
// blok allocator is needed.
type MappedBacking struct {
	file    *sfs.SwapFile
	base    vm.VA
	scratch scratchPool
}

// NewMappedBacking maps the stretch starting at base onto file.
func NewMappedBacking(file *sfs.SwapFile, base vm.VA) *MappedBacking {
	return &MappedBacking{file: file, base: base}
}

// Name implements Backing.
func (b *MappedBacking) Name() string { return "mapped-file" }

// File returns the backing file.
func (b *MappedBacking) File() *sfs.SwapFile { return b.file }

// HasCopy implements Backing: the file always holds every page.
func (b *MappedBacking) HasCopy(vm.VA) bool { return true }

// fileOffset returns the file-relative block offset backing va.
func (b *MappedBacking) fileOffset(va vm.VA) int64 {
	page := int64(uint64(va-b.base) / vm.PageSize)
	return page * int64(vm.PageSize/int64(disk.BlockSize))
}

// ReadPage implements Backing.
func (b *MappedBacking) ReadPage(p *sim.Proc, va vm.VA, buf []byte, sp *obs.Span) error {
	return b.file.ReadSpanned(p, b.fileOffset(va), int(vm.PageSize/int64(disk.BlockSize)), buf, sp)
}

// WritePages implements Backing, merging file-adjacent pages into single
// spanned writes.
func (b *MappedBacking) WritePages(p *sim.Proc, pages []DirtyPage, sp *obs.Span) (int, error) {
	sc := b.scratch.get()
	defer b.scratch.put(sc)
	order := sc.order
	for i := range pages {
		order = append(order, i)
	}
	sc.order = order
	sort.Slice(order, func(i, j int) bool { return pages[order[i]].VA < pages[order[j]].VA })

	pageBlocks := int(vm.PageSize / int64(disk.BlockSize))
	txns := 0
	for at := 0; at < len(order); {
		run := 1
		for at+run < len(order) && pages[order[at+run]].VA == pages[order[at+run-1]].VA+vm.VA(vm.PageSize) {
			run++
		}
		buf := sc.buf[:0]
		for k := 0; k < run; k++ {
			buf = append(buf, pages[order[at+k]].Data...)
		}
		sc.buf = buf
		off := b.fileOffset(pages[order[at]].VA)
		if err := b.file.WriteSpanned(p, off, run*pageBlocks, buf, sp); err != nil {
			return txns, err
		}
		txns++
		at += run
	}
	return txns, nil
}
