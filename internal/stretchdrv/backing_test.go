package stretchdrv

import (
	"errors"
	"testing"

	"nemesis/internal/vm"
)

// bareSwapBacking builds a SwapBacking with the given blok capacity and no
// swap file. Both paths under test fail before any disk IO, so the nil file
// is never touched.
func bareSwapBacking(bloks int64) *SwapBacking {
	return &SwapBacking{
		blok:  NewBlokAllocator(bloks, 16),
		pages: make(map[vm.VPN]*pageInfo),
	}
}

func TestSwapReadPageNoCopy(t *testing.T) {
	b := bareSwapBacking(4)
	buf := make([]byte, vm.PageSize)
	// Never-written page: must fail with the sentinel, not read blok -1.
	err := b.ReadPage(nil, vm.VA(0x1000), buf, nil)
	if !errors.Is(err, ErrNoCopy) {
		t.Fatalf("ReadPage of unwritten page = %v, want ErrNoCopy", err)
	}
	// The probe must not have materialised a bogus page record either.
	if len(b.pages) != 0 {
		t.Fatalf("ReadPage created %d page records", len(b.pages))
	}
	if b.HasCopy(vm.VA(0x1000)) {
		t.Fatal("HasCopy true after failed read")
	}
}

func TestSwapWritePagesFallbackLeak(t *testing.T) {
	// 2 free bloks, 3-page batch: AllocRun(3) fails, the singles fallback
	// allocates 2 and then hits exhaustion. The partial allocation must be
	// returned — before the fix those two bloks leaked and the pages kept
	// blok assignments for data that never reached disk.
	b := bareSwapBacking(2)
	batch := []DirtyPage{
		{VA: vm.VA(0x10000), Data: make([]byte, vm.PageSize)},
		{VA: vm.VA(0x20000), Data: make([]byte, vm.PageSize)},
		{VA: vm.VA(0x30000), Data: make([]byte, vm.PageSize)},
	}
	txns, err := b.WritePages(nil, batch, nil)
	if !errors.Is(err, ErrNoBloks) {
		t.Fatalf("WritePages = %d, %v; want ErrNoBloks", txns, err)
	}
	if free := b.FreeBloks(); free != 2 {
		t.Fatalf("leaked bloks: %d free after failed batch, want 2", free)
	}
	for _, pg := range batch {
		if pi, ok := b.pages[vm.PageOf(pg.VA)]; ok && pi.blok >= 0 {
			t.Fatalf("page %#x kept blok %d after failed batch", uint64(pg.VA), pi.blok)
		}
		if b.HasCopy(pg.VA) {
			t.Fatalf("HasCopy true for %#x after failed batch", uint64(pg.VA))
		}
	}
	// A smaller batch must now succeed in allocating (it will fail at the
	// nil swap file, but only after both bloks were assignable).
	if start, err := b.blok.AllocRun(2); err != nil || start != 0 {
		t.Fatalf("AllocRun after cleanup = %d, %v", start, err)
	}
}

func TestSwapDrop(t *testing.T) {
	b := bareSwapBacking(2)
	va := vm.VA(0x10000)
	blok, err := b.blok.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	b.pages[vm.PageOf(va)] = &pageInfo{blok: blok, onDisk: true}
	if !b.HasCopy(va) {
		t.Fatal("setup: HasCopy false")
	}
	b.Drop(va)
	if b.HasCopy(va) {
		t.Fatal("HasCopy true after Drop")
	}
	if free := b.FreeBloks(); free != 2 {
		t.Fatalf("Drop did not free the blok: %d free", free)
	}
	b.Drop(va) // unknown page: no-op
	if free := b.FreeBloks(); free != 2 {
		t.Fatalf("double Drop changed free count: %d", free)
	}
}
