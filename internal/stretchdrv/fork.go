package stretchdrv

import (
	"fmt"

	"nemesis/internal/domain"
	"nemesis/internal/sfs"
	"nemesis/internal/vm"
)

// This file implements driver forking: deep copies of the pager machinery
// re-pointed at a forked world. Drivers are forked after the domain shell
// exists (they need the forked *domain.Domain for their base) and before the
// forked domain runs; the core snapshot orchestrator drives the order. All
// pure data structures — policies, the blok bitmap, the per-page swap records
// — are copied exactly, so a forked pager makes the same victim choices, the
// same blok allocations and the same disk transactions the parent would.
// Transient free lists (page buffers, cleaning batches, write scratches) fork
// empty: they are allocation caches with no simulation-visible state.

// clonePolicy deep-copies a replacement policy, preserving its exact
// eviction order (and for clock, the hand position).
func clonePolicy(p ReplacementPolicy) (ReplacementPolicy, error) {
	switch pol := p.(type) {
	case *fifoPolicy:
		return &fifoPolicy{q: append([]vm.VA(nil), pol.q...)}, nil
	case *secondChancePolicy:
		return &secondChancePolicy{q: append([]vm.VA(nil), pol.q...)}, nil
	case *clockPolicy:
		return &clockPolicy{ring: append([]vm.VA(nil), pol.ring...), hand: pol.hand}, nil
	default:
		return nil, fmt.Errorf("stretchdrv: cannot fork replacement policy %T", p)
	}
}

// fork deep-copies the blok bitmap: every node of the linked list, with the
// hint re-pointed at the copied node covering the same range.
func (a *BlokAllocator) fork() *BlokAllocator {
	na := &BlokAllocator{blokBlocks: a.blokBlocks, total: a.total}
	var tail *bitmapNode
	for node := a.head; node != nil; node = node.next {
		nn := &bitmapNode{base: node.base, bits: append([]uint64(nil), node.bits...), nfree: node.nfree}
		if tail == nil {
			na.head = nn
		} else {
			tail.next = nn
		}
		tail = nn
		if a.hint == node {
			na.hint = nn
		}
	}
	if na.hint == nil {
		na.hint = na.head
	}
	return na
}

// Fork returns a deep copy of the swap backing over the forked swap file.
// files is the identity map sfs.Fork produced.
func (b *SwapBacking) Fork(files map[*sfs.SwapFile]*sfs.SwapFile) (*SwapBacking, error) {
	nf := files[b.swap]
	if nf == nil {
		return nil, fmt.Errorf("stretchdrv: no forked twin of swap file %q", b.swap.Name())
	}
	nb := &SwapBacking{
		swap:  nf,
		blok:  b.blok.fork(),
		pages: make(map[vm.VPN]*pageInfo, len(b.pages)),
	}
	for vpn, pi := range b.pages {
		nb.pages[vpn] = &pageInfo{blok: pi.blok, onDisk: pi.onDisk}
	}
	return nb, nil
}

// Fork returns a copy of the mapped-file backing over the forked file.
func (b *MappedBacking) Fork(files map[*sfs.SwapFile]*sfs.SwapFile) (*MappedBacking, error) {
	nf := files[b.file]
	if nf == nil {
		return nil, fmt.Errorf("stretchdrv: no forked twin of mapped file %q", b.file.Name())
	}
	return &MappedBacking{file: nf, base: b.base}, nil
}

// fork builds the engine copy for a forked driver: forked domain, remapped
// stretch, cloned policy, the given (already forked) backing, the same
// writeback policy value (writeback policies are stateless), copied stats,
// and telemetry handles re-derived from the forked registry — Counter is
// get-or-create, so the handles attach to the copied counter values.
func (e *Engine) fork(ndom *domain.Domain, m *vm.ForkMaps, backing Backing) (*Engine, error) {
	nst := m.Stretch[e.st]
	if nst == nil {
		return nil, fmt.Errorf("stretchdrv: no forked twin of stretch %d", e.st.ID())
	}
	policy, err := clonePolicy(e.policy)
	if err != nil {
		return nil, err
	}
	ne := &Engine{
		base:      base{dom: ndom},
		name:      e.name,
		st:        nst,
		policy:    policy,
		backing:   backing,
		writeback: e.writeback,
		cluster:   e.cluster,
		Stats:     e.Stats,
	}
	if r := ndom.Env().Obs; r != nil {
		ne.cPageIns = r.Counter("driver", "pageins", ndom.Name())
		ne.cPageOuts = r.Counter("driver", "pageouts", ndom.Name())
		ne.cEvictions = r.Counter("driver", "evictions", ndom.Name())
		ne.cPolicyEvict = r.Counter("pager", "evictions_"+policy.Name(), ndom.Name())
		ne.cVictimClean = r.Counter("pager", "victims_clean", ndom.Name())
		ne.cVictimDirty = r.Counter("pager", "victims_dirty", ndom.Name())
		ne.cCleanedPages = r.Counter("pager", "cleaned_pages", ndom.Name())
		ne.cCleanBatches = r.Counter("pager", "clean_batches", ndom.Name())
		ne.cSpares = r.Counter("pager", "spares_"+policy.Name(), ndom.Name())
	}
	return ne, nil
}

// Fork returns a deep copy of the paged driver bound into the forked domain.
// Only the local swap backing is forkable; remote and tiered backings hold
// netswap machinery (link procs, RPC windows) that a snapshot does not carry
// — create those stretches after forking instead.
func (d *Paged) Fork(ndom *domain.Domain, m *vm.ForkMaps, files map[*sfs.SwapFile]*sfs.SwapFile) (*Paged, error) {
	if d.swap == nil {
		return nil, fmt.Errorf("stretchdrv: cannot fork paged driver with %s backing", d.Engine.backing.Name())
	}
	nb, err := d.swap.Fork(files)
	if err != nil {
		return nil, err
	}
	ne, err := d.Engine.fork(ndom, m, nb)
	if err != nil {
		return nil, err
	}
	nd := &Paged{Engine: ne, swap: nb}
	ndom.Bind(ne.st, nd)
	return nd, nil
}

// Fork returns a deep copy of the mapped-file driver bound into the forked
// domain.
func (d *Mapped) Fork(ndom *domain.Domain, m *vm.ForkMaps, files map[*sfs.SwapFile]*sfs.SwapFile) (*Mapped, error) {
	nb, err := d.backing.Fork(files)
	if err != nil {
		return nil, err
	}
	ne, err := d.Engine.fork(ndom, m, nb)
	if err != nil {
		return nil, err
	}
	nd := &Mapped{Engine: ne, backing: nb}
	ndom.Bind(ne.st, nd)
	return nd, nil
}

// Fork returns a deep copy of the physical driver bound into the forked
// domain.
func (d *Physical) Fork(ndom *domain.Domain, m *vm.ForkMaps) (*Physical, error) {
	ne, err := d.Engine.fork(ndom, m, nil)
	if err != nil {
		return nil, err
	}
	nd := &Physical{Engine: ne}
	ndom.Bind(ne.st, nd)
	return nd, nil
}

// Fork returns a copy of the nailed driver bound into the forked domain.
// Nailed frames are pinned mappings with no mutable driver state; the page
// tables and frame stacks carry everything.
func (n *Nailed) Fork(ndom *domain.Domain, m *vm.ForkMaps) (*Nailed, error) {
	nst := m.Stretch[n.st]
	if nst == nil {
		return nil, fmt.Errorf("stretchdrv: no forked twin of stretch %d", n.st.ID())
	}
	nd := &Nailed{base: base{dom: ndom}, st: nst}
	ndom.Bind(nst, nd)
	return nd, nil
}

// SetPolicy replaces the engine's replacement policy in place, migrating the
// resident set in its current eviction order (soonest victim first), so a
// warmed world can be re-parameterised after a fork without re-faulting its
// pages. The clock policy seeds its ring in that order with the hand at the
// front, the closest fresh-start equivalent of the carried set.
func (e *Engine) SetPolicy(kind PolicyKind) error {
	np, err := NewPolicy(kind)
	if err != nil {
		return err
	}
	for _, va := range e.policy.Resident() {
		np.NoteMapped(va)
	}
	e.policy = np
	if r := e.dom.Env().Obs; r != nil {
		e.cPolicyEvict = r.Counter("pager", "evictions_"+np.Name(), e.dom.Name())
		e.cSpares = r.Counter("pager", "spares_"+np.Name(), e.dom.Name())
	}
	return nil
}
