package stretchdrv

import (
	"fmt"

	"nemesis/internal/vm"
)

// PageState is the view of per-page hardware state a replacement policy may
// consult when choosing a victim. The pager engine implements it over the
// translation system: Referenced reflects the simulated referenced bit, and
// ClearReferenced re-arms fault-on-reference so the bit is set again on the
// page's next access.
type PageState interface {
	Referenced(va vm.VA) bool
	ClearReferenced(va vm.VA)
}

// ReplacementPolicy decides which resident page a pager evicts next. The
// engine owns the resident-page ground truth (page tables, frame stack); the
// policy only orders candidates. Implementations are plain data structures —
// they must not touch the simulator, so victim selection never perturbs
// event order.
type ReplacementPolicy interface {
	// Name identifies the policy in metrics and traces.
	Name() string
	// NoteMapped records that va just became resident.
	NoteMapped(va vm.VA)
	// Victim removes and returns the next page to evict. spared counts
	// pages the policy skipped (and re-armed) because they were referenced;
	// ok is false when no page is resident.
	Victim(ps PageState) (va vm.VA, spared int, ok bool)
	// Len returns the number of tracked resident pages.
	Len() int
	// Resident returns the tracked pages in eviction order (soonest victim
	// first). The returned slice is a read-only view.
	Resident() []vm.VA
}

// PolicyKind names a replacement policy for spec-based construction. The
// empty string means PolicyFIFO.
type PolicyKind string

const (
	// PolicyFIFO is the paper's scheme: evict the oldest mapping.
	PolicyFIFO PolicyKind = "fifo"
	// PolicySecondChance re-queues referenced pages once before evicting —
	// the classic improvement the paper leaves open (§6.6).
	PolicySecondChance PolicyKind = "second-chance"
	// PolicyClock is an LRU approximation: a circular scan that clears
	// referenced bits in place and evicts at the first unreferenced page.
	PolicyClock PolicyKind = "clock"
)

// NewPolicy builds a fresh policy instance of the given kind. Unknown kinds
// return an error so a bad spec fails loudly at construction.
func NewPolicy(kind PolicyKind) (ReplacementPolicy, error) {
	switch kind {
	case "", PolicyFIFO:
		return &fifoPolicy{}, nil
	case PolicySecondChance:
		return &secondChancePolicy{}, nil
	case PolicyClock:
		return &clockPolicy{}, nil
	default:
		return nil, fmt.Errorf("stretchdrv: unknown replacement policy %q", kind)
	}
}

// fifoPolicy evicts in mapping order, ignoring reference state.
type fifoPolicy struct {
	q []vm.VA
}

func (f *fifoPolicy) Name() string        { return string(PolicyFIFO) }
func (f *fifoPolicy) NoteMapped(va vm.VA) { f.q = append(f.q, va) }
func (f *fifoPolicy) Len() int            { return len(f.q) }
func (f *fifoPolicy) Resident() []vm.VA   { return f.q }

func (f *fifoPolicy) Victim(PageState) (vm.VA, int, bool) {
	if len(f.q) == 0 {
		return 0, 0, false
	}
	va := f.q[0]
	f.q = f.q[1:]
	return va, 0, true
}

// secondChancePolicy is FIFO with one reprieve: a referenced page is re-armed
// and re-queued instead of evicted, bounded so a fully referenced set still
// yields a victim.
type secondChancePolicy struct {
	q []vm.VA
}

func (s *secondChancePolicy) Name() string        { return string(PolicySecondChance) }
func (s *secondChancePolicy) NoteMapped(va vm.VA) { s.q = append(s.q, va) }
func (s *secondChancePolicy) Len() int            { return len(s.q) }
func (s *secondChancePolicy) Resident() []vm.VA   { return s.q }

func (s *secondChancePolicy) Victim(ps PageState) (vm.VA, int, bool) {
	spared, passes := 0, 0
	for len(s.q) > 0 && passes < 2*len(s.q)+2 {
		va := s.q[0]
		s.q = s.q[1:]
		if ps.Referenced(va) {
			ps.ClearReferenced(va)
			s.q = append(s.q, va)
			spared++
			passes++
			continue
		}
		return va, spared, true
	}
	if len(s.q) > 0 {
		va := s.q[0]
		s.q = s.q[1:]
		return va, spared, true
	}
	return 0, spared, false
}

// clockPolicy keeps resident pages on a ring with a sweep hand: the hand
// clears referenced bits as it passes and evicts at the first unreferenced
// page, approximating LRU at FIFO cost. New pages are inserted just behind
// the hand so a full sweep passes them last.
type clockPolicy struct {
	ring []vm.VA
	hand int
}

func (c *clockPolicy) Name() string { return string(PolicyClock) }
func (c *clockPolicy) Len() int     { return len(c.ring) }

func (c *clockPolicy) NoteMapped(va vm.VA) {
	if len(c.ring) == 0 || c.hand >= len(c.ring) {
		c.ring = append(c.ring, va)
		c.hand = 0
		return
	}
	c.ring = append(c.ring, 0)
	copy(c.ring[c.hand+1:], c.ring[c.hand:])
	c.ring[c.hand] = va
	c.hand++
}

func (c *clockPolicy) Resident() []vm.VA {
	out := make([]vm.VA, 0, len(c.ring))
	out = append(out, c.ring[c.hand:]...)
	out = append(out, c.ring[:c.hand]...)
	return out
}

func (c *clockPolicy) Victim(ps PageState) (vm.VA, int, bool) {
	if len(c.ring) == 0 {
		return 0, 0, false
	}
	spared := 0
	for sweep := 0; sweep < 2*len(c.ring)+2; sweep++ {
		if c.hand >= len(c.ring) {
			c.hand = 0
		}
		va := c.ring[c.hand]
		if ps.Referenced(va) {
			ps.ClearReferenced(va)
			spared++
			c.hand++
			continue
		}
		return c.remove(), spared, true
	}
	// Every page stayed referenced across two sweeps (cannot happen with a
	// well-behaved PageState, whose ClearReferenced sticks until the next
	// access): force-evict at the hand.
	if c.hand >= len(c.ring) {
		c.hand = 0
	}
	return c.remove(), spared, true
}

// remove evicts the page under the hand, leaving the hand on its successor.
func (c *clockPolicy) remove() vm.VA {
	va := c.ring[c.hand]
	c.ring = append(c.ring[:c.hand], c.ring[c.hand+1:]...)
	if c.hand >= len(c.ring) {
		c.hand = 0
	}
	return va
}
