package stretchdrv

import (
	"nemesis/internal/domain"
	"nemesis/internal/mem"
	"nemesis/internal/sim"
	"nemesis/internal/vm"
)

// base carries what every driver needs: the owning domain and its handles.
type base struct {
	dom *domain.Domain
}

func (b *base) env() domain.Env        { return b.dom.Env() }
func (b *base) memc() *mem.Client      { return b.dom.MemClient() }
func (b *base) stack() *mem.FrameStack { return b.dom.MemClient().Stack() }

// findUnusedFrame returns a frame from the domain's unused pool: on the
// frame stack, not currently backing any VA, and Unused in the RamTab.
func (b *base) findUnusedFrame() (mem.PFN, bool) {
	return b.findUnusedFrameExcept(nil)
}

// findUnusedFrameExcept is findUnusedFrame skipping frames already claimed
// by the caller (a Relinquish loop must not count one frame twice).
func (b *base) findUnusedFrameExcept(skip map[mem.PFN]bool) (mem.PFN, bool) {
	ramtab := b.env().RamTab
	for _, e := range b.stack().Entries() {
		if e.VA != 0 || skip[e.PFN] {
			continue
		}
		if s, err := ramtab.State(e.PFN); err == nil && s == mem.Unused {
			return e.PFN, true
		}
	}
	return 0, false
}

// mapFrame installs va -> pfn and updates the frame-stack bookkeeping.
func (b *base) mapFrame(va vm.VA, pfn mem.PFN) error {
	env := b.env()
	if err := env.TS.Map(b.dom.PD(), b.dom.ID(), va, pfn, vm.DefaultAttr()); err != nil {
		return err
	}
	st := b.stack()
	st.SetVA(pfn, uint64(va))
	st.MoveToBottom(pfn) // mapped frames are the last we want revoked
	return nil
}

// unmapVA removes the mapping at va, marks the stack slot unused and
// returns the frame and its dirty state.
func (b *base) unmapVA(va vm.VA) (mem.PFN, bool, error) {
	env := b.env()
	pfn, dirty, err := env.TS.Unmap(b.dom.PD(), b.dom.ID(), va)
	if err != nil {
		return 0, false, err
	}
	st := b.stack()
	st.SetVA(pfn, 0)
	st.MoveToTop(pfn) // unused frames are the first to give up
	return pfn, dirty, nil
}

// Nailed is the simplest stretch driver: it provides physical frames to
// back a stretch at bind time and hence never deals with page faults.
type Nailed struct {
	base
	st *vm.Stretch
}

// BindNailed allocates, maps and nails frames for every page of st. It
// must run with activations on (it allocates frames), i.e. from a thread.
func BindNailed(p *sim.Proc, dom *domain.Domain, st *vm.Stretch) (*Nailed, error) {
	n := &Nailed{base: base{dom: dom}, st: st}
	env := dom.Env()
	for i := 0; i < st.Pages(); i++ {
		pfn, err := dom.MemClient().AllocFrame(p)
		if err != nil {
			return nil, err
		}
		va := st.PageBase(i)
		if err := n.mapFrame(va, pfn); err != nil {
			return nil, err
		}
		if err := env.TS.Nail(dom.PD(), dom.ID(), va); err != nil {
			return nil, err
		}
	}
	dom.Bind(st, n)
	return n, nil
}

// DriverName implements domain.Driver.
func (n *Nailed) DriverName() string { return "nailed" }

// SatisfyFault implements domain.Driver: a nailed stretch never faults, so
// any fault reaching here is unresolvable.
func (n *Nailed) SatisfyFault(p *sim.Proc, f *vm.Fault, canIDC bool) domain.Result {
	return domain.Failure
}

// Relinquish implements domain.Driver: nailed frames are immune.
func (n *Nailed) Relinquish(p *sim.Proc, k int) int { return 0 }

// Physical provides no backing initially; the first authorised access to
// any page faults and the driver maps a frame from the domain's resources.
// It is the engine with no backing store: pages never leave memory once
// mapped, Relinquish can only give up unused frames, and the worker fault
// path may block in the frames allocator.
type Physical struct {
	*Engine
}

// NewPhysical creates a physical stretch driver for st and binds it.
func NewPhysical(dom *domain.Domain, st *vm.Stretch) *Physical {
	d := &Physical{Engine: newEngine(dom, st, "physical", nil, nil, nil, 1)}
	dom.Bind(st, d)
	return d
}
