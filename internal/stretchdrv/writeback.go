package stretchdrv

import "fmt"

// WritebackPolicy decides when a pager's dirty data reaches its backing
// store, and whether existing backing copies are honoured on fault.
type WritebackPolicy interface {
	// Name identifies the policy in metrics and traces.
	Name() string
	// RecallDiskCopy reports whether a fault on a page with a current
	// backing copy should page it in. The forgetful driver of the paper's
	// page-out experiment (Fig. 8) returns false: it "forgets" disk copies
	// and zero-fills instead, so the workload is pure page-out traffic.
	RecallDiskCopy() bool
	// CleanOnEvict reports whether eviction writes dirty victims back.
	// When false, dirty victims are discarded and only an explicit Sync
	// persists data (sync-on-request).
	CleanOnEvict() bool
}

// WritebackKind names a writeback policy for spec-based construction. The
// empty string means WritebackDemand.
type WritebackKind string

const (
	// WritebackDemand cleans dirty victims at eviction and pages disk
	// copies back in on fault — ordinary demand paging.
	WritebackDemand WritebackKind = "demand"
	// WritebackForgetful is Fig. 8's modified driver: evictions still
	// clean, but disk copies are never recalled, so the driver never
	// pages in.
	WritebackForgetful WritebackKind = "forgetful"
	// WritebackSync discards dirty victims at eviction; data reaches the
	// backing store only through an explicit Sync.
	WritebackSync WritebackKind = "sync-on-request"
)

// NewWriteback builds the writeback policy of the given kind.
func NewWriteback(kind WritebackKind) (WritebackPolicy, error) {
	switch kind {
	case "", WritebackDemand:
		return demandWriteback{}, nil
	case WritebackForgetful:
		return forgetfulWriteback{}, nil
	case WritebackSync:
		return syncWriteback{}, nil
	default:
		return nil, fmt.Errorf("stretchdrv: unknown writeback policy %q", kind)
	}
}

type demandWriteback struct{}

func (demandWriteback) Name() string         { return string(WritebackDemand) }
func (demandWriteback) RecallDiskCopy() bool { return true }
func (demandWriteback) CleanOnEvict() bool   { return true }

type forgetfulWriteback struct{}

func (forgetfulWriteback) Name() string         { return string(WritebackForgetful) }
func (forgetfulWriteback) RecallDiskCopy() bool { return false }
func (forgetfulWriteback) CleanOnEvict() bool   { return true }

type syncWriteback struct{}

func (syncWriteback) Name() string         { return string(WritebackSync) }
func (syncWriteback) RecallDiskCopy() bool { return true }
func (syncWriteback) CleanOnEvict() bool   { return false }
