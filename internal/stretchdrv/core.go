package stretchdrv

import (
	"errors"

	"nemesis/internal/domain"
	"nemesis/internal/mem"
	"nemesis/internal/obs"
	"nemesis/internal/sim"
	"nemesis/internal/vm"
)

// ErrNoVictim is returned when eviction is needed but no page is resident.
var ErrNoVictim = errors.New("stretchdrv: no pages to evict")

// PagerStats counts a pager engine's activity. One struct serves every
// driver; fields that a configuration cannot produce simply stay zero.
type PagerStats struct {
	Faults     int64
	FastFaults int64
	PageIns    int64
	PageOuts   int64
	Evictions  int64
	ZeroFills  int64
	// Spares counts pages the replacement policy re-armed and skipped
	// instead of evicting (second chance, clock).
	Spares int64
	Syncs  int64
	// CleanVictims/DirtyVictims split evictions by whether the victim
	// needed a write-back.
	CleanVictims int64
	DirtyVictims int64
	// CleanedPages/CleanBatches/CleanTxns describe eviction-time cleaning:
	// pages written, gather batches issued, and disk transactions those
	// batches merged into. CleanTxns < CleanedPages means write clustering
	// amortised rotations.
	CleanedPages int64
	CleanBatches int64
	CleanTxns    int64
}

// Engine is the shared pager core: it owns the resident-page ground truth
// (page tables, frame stack, RamTab interaction), fault dispatch, eviction
// and Relinquish, parameterised by a ReplacementPolicy (which page goes), a
// Backing (where it goes) and a WritebackPolicy (when it goes). The concrete
// drivers — Paged, Mapped, Physical, Streaming — are thin compositions over
// it.
type Engine struct {
	base
	name      string
	st        *vm.Stretch
	policy    ReplacementPolicy
	backing   Backing // nil: no backing store (physical driver)
	writeback WritebackPolicy
	cluster   int

	Stats PagerStats

	// bufs and batches are free lists of page-sized buffers and cleaning
	// batches. Page contents only live in them transiently (page-in reads,
	// write-back snapshots); every backing copies payloads into its own
	// buffers before its blocking call returns, so a checked-out buffer can
	// be recycled as soon as the read or write completes. The cooperative
	// process model makes get/put pairs atomic between blocking points, so
	// concurrent checkouts (worker eviction vs. a user-thread Sync) simply
	// draw different buffers.
	bufs    [][]byte
	batches [][]DirtyPage

	// Cached telemetry handles (nil when the domain has no registry).
	cPageIns      *obs.Counter
	cPageOuts     *obs.Counter
	cEvictions    *obs.Counter
	cPolicyEvict  *obs.Counter
	cVictimClean  *obs.Counter
	cVictimDirty  *obs.Counter
	cCleanedPages *obs.Counter
	cCleanBatches *obs.Counter
	cSpares       *obs.Counter
}

// newEngine builds the core for a driver. policy and wb may be nil for the
// defaults (FIFO, demand); cluster < 1 means no write clustering.
func newEngine(dom *domain.Domain, st *vm.Stretch, name string, policy ReplacementPolicy, backing Backing, wb WritebackPolicy, cluster int) *Engine {
	if policy == nil {
		policy = &fifoPolicy{}
	}
	if wb == nil {
		wb = demandWriteback{}
	}
	if cluster < 1 {
		cluster = 1
	}
	e := &Engine{
		base:      base{dom: dom},
		name:      name,
		st:        st,
		policy:    policy,
		backing:   backing,
		writeback: wb,
		cluster:   cluster,
	}
	if r := dom.Env().Obs; r != nil {
		e.cPageIns = r.Counter("driver", "pageins", dom.Name())
		e.cPageOuts = r.Counter("driver", "pageouts", dom.Name())
		e.cEvictions = r.Counter("driver", "evictions", dom.Name())
		e.cPolicyEvict = r.Counter("pager", "evictions_"+policy.Name(), dom.Name())
		e.cVictimClean = r.Counter("pager", "victims_clean", dom.Name())
		e.cVictimDirty = r.Counter("pager", "victims_dirty", dom.Name())
		e.cCleanedPages = r.Counter("pager", "cleaned_pages", dom.Name())
		e.cCleanBatches = r.Counter("pager", "clean_batches", dom.Name())
		e.cSpares = r.Counter("pager", "spares_"+policy.Name(), dom.Name())
	}
	return e
}

// getPageBuf checks a page-sized buffer out of the free list.
func (e *Engine) getPageBuf() []byte {
	if n := len(e.bufs); n > 0 {
		b := e.bufs[n-1]
		e.bufs[n-1] = nil
		e.bufs = e.bufs[:n-1]
		return b
	}
	return make([]byte, vm.PageSize)
}

// putPageBuf returns a buffer to the free list.
func (e *Engine) putPageBuf(b []byte) { e.bufs = append(e.bufs, b) }

// getBatch checks an empty cleaning batch out of the free list.
func (e *Engine) getBatch() []DirtyPage {
	if n := len(e.batches); n > 0 {
		b := e.batches[n-1]
		e.batches[n-1] = nil
		e.batches = e.batches[:n-1]
		return b
	}
	return nil
}

// putBatch recycles a finished cleaning batch and every page buffer in it.
func (e *Engine) putBatch(b []DirtyPage) {
	for i := range b {
		if b[i].Data != nil {
			e.putPageBuf(b[i].Data)
		}
		b[i] = DirtyPage{}
	}
	e.batches = append(e.batches, b[:0])
}

// DriverName implements domain.Driver.
func (e *Engine) DriverName() string { return e.name }

// Policy exposes the replacement policy (read-only use).
func (e *Engine) Policy() ReplacementPolicy { return e.policy }

// Writeback exposes the writeback policy.
func (e *Engine) Writeback() WritebackPolicy { return e.writeback }

// ClusterSize returns the maximum pages gathered per cleaning batch.
func (e *Engine) ClusterSize() int { return e.cluster }

// ResidentPages returns the number of policy-tracked mapped pages.
func (e *Engine) ResidentPages() int { return e.policy.Len() }

// Referenced implements PageState over the translation system.
func (e *Engine) Referenced(va vm.VA) bool {
	ref, err := e.env().TS.IsReferenced(va)
	return err == nil && ref
}

// ClearReferenced implements PageState: clear the bit and re-arm
// fault-on-reference so the next access sets it again.
func (e *Engine) ClearReferenced(va vm.VA) {
	if pte := e.env().TS.PageTable().Lookup(vm.PageOf(va)); pte != nil {
		pte.Referenced = false
		pte.Attr.FOR = true
	}
}

// SatisfyFault implements domain.Driver for every engine-backed driver. The
// fast path (notification handler; no IDC) resolves only faults that need no
// disk work and have a free frame in hand; everything else Retries to a
// worker thread. With no backing store the worker may block in the frames
// allocator; with one, it prefers TryAllocFrame and falls back to evicting
// one of the domain's own pages.
func (e *Engine) SatisfyFault(p *sim.Proc, f *vm.Fault, canIDC bool) domain.Result {
	e.Stats.Faults++
	if f.Class != vm.PageFault || !e.st.Contains(f.VA) {
		return domain.Failure
	}
	f.Span.BeginHop("driver")
	va := vm.PageOf(f.VA).Base()
	needsPageIn := e.backing != nil && e.backing.HasCopy(va) && e.writeback.RecallDiskCopy()

	pfn, haveFrame := e.findUnusedFrame()
	if !canIDC {
		if !haveFrame || needsPageIn {
			return domain.Retry
		}
		e.Stats.FastFaults++
	}

	if !haveFrame {
		if e.backing == nil {
			// No backing store: nothing to evict, so block on the
			// allocator (which may revoke from other domains).
			newPFN, err := e.memc().AllocFrame(p)
			if err != nil {
				return domain.Failure
			}
			pfn = newPFN
		} else if newPFN, err := e.memc().TryAllocFrame(); err == nil {
			// The allocator may have optimistic frames for us.
			pfn = newPFN
		} else {
			f.Span.BeginHop("evict")
			evicted, err := e.evictOne(p, f.Span)
			if err != nil {
				return domain.Failure
			}
			pfn = evicted
		}
	}

	if needsPageIn {
		// The read lands in a pooled buffer rather than the frame itself:
		// another process could claim the unused frame while this one blocks
		// on the disk, and every backing fills (or copies into) buf before
		// returning, so recycling it immediately after the copy is safe.
		buf := e.getPageBuf()
		err := e.backing.ReadPage(p, va, buf, f.Span)
		if err == nil {
			copy(e.env().Store.Frame(pfn), buf)
		}
		e.putPageBuf(buf)
		if err != nil {
			return domain.Failure
		}
		e.Stats.PageIns++
		e.cPageIns.Inc()
	} else {
		e.env().Store.Zero(pfn)
		e.Stats.ZeroFills++
	}

	f.Span.BeginHop("map")
	if err := e.mapFrame(va, pfn); err != nil {
		return domain.Failure
	}
	if e.backing != nil {
		e.policy.NoteMapped(va)
	}
	// The mapping is fresh: the in-memory copy will diverge on first write
	// (FOW tracks that); until then any disk copy stays valid, so an
	// unmodified page needs no write-back.
	return domain.Success
}

// evictOne unmaps a policy-chosen victim, cleaning it (and, with clustering,
// up to ClusterSize-1 further dirty resident pages in one batch) if the
// writeback policy says so, and returns the freed frame. Runs only in worker
// context (disk IDC). sp, when non-nil, receives the write-back's USD hops —
// eviction on behalf of a demand fault is part of that fault's causal chain.
func (e *Engine) evictOne(p *sim.Proc, sp *obs.Span) (mem.PFN, error) {
	va, spared, ok := e.policy.Victim(e)
	if spared > 0 {
		e.Stats.Spares += int64(spared)
		e.cSpares.Add(int64(spared))
	}
	if !ok {
		return 0, ErrNoVictim
	}
	pfn, dirty, err := e.unmapVA(va)
	if err != nil {
		return 0, err
	}
	if dirty || !e.backing.HasCopy(va) {
		e.Stats.DirtyVictims++
		e.cVictimDirty.Inc()
		if e.writeback.CleanOnEvict() {
			batch := e.gatherCluster(va, pfn)
			txns, err := e.backing.WritePages(p, batch, sp)
			if err != nil {
				e.putBatch(batch)
				return 0, err
			}
			e.Stats.PageOuts += int64(len(batch))
			e.cPageOuts.Add(int64(len(batch)))
			e.Stats.CleanedPages += int64(len(batch))
			e.cCleanedPages.Add(int64(len(batch)))
			e.Stats.CleanBatches++
			e.cCleanBatches.Inc()
			e.Stats.CleanTxns += int64(txns)
			// The extra pages stay mapped but are now clean on disk:
			// reset their dirty state and re-arm fault-on-write.
			ts := e.env().TS
			for _, extra := range batch[1:] {
				if pte := ts.PageTable().Lookup(vm.PageOf(extra.VA)); pte != nil {
					pte.Dirty = false
					pte.Attr.FOW = true
				}
			}
			e.putBatch(batch)
		}
	} else {
		e.Stats.CleanVictims++
		e.cVictimClean.Inc()
	}
	e.Stats.Evictions++
	e.cEvictions.Inc()
	e.cPolicyEvict.Inc()
	return pfn, nil
}

// gatherCluster snapshots the victim page plus up to ClusterSize-1 further
// dirty resident pages (in eviction order, so the pages cleaned early are
// the ones leaving soonest anyway) into one cleaning batch.
func (e *Engine) gatherCluster(va vm.VA, pfn mem.PFN) []DirtyPage {
	buf := e.getPageBuf()
	copy(buf, e.env().Store.Frame(pfn))
	batch := append(e.getBatch(), DirtyPage{VA: va, Data: buf})
	if e.cluster <= 1 {
		return batch
	}
	ts := e.env().TS
	for _, other := range e.policy.Resident() {
		if len(batch) >= e.cluster {
			break
		}
		pte := ts.PageTable().Lookup(vm.PageOf(other))
		if pte == nil || !pte.Valid || !pte.Dirty {
			continue
		}
		data := e.getPageBuf()
		copy(data, e.env().Store.Frame(pte.PFN))
		batch = append(batch, DirtyPage{VA: other, Data: data})
	}
	return batch
}

// Sync writes every dirty resident page to the backing store (msync), in
// cleaning batches of up to ClusterSize. Pages stay mapped; their dirty
// state is reset and fault-on-write re-armed so future writes dirty them
// again.
func (e *Engine) Sync(p *sim.Proc) error {
	e.Stats.Syncs++
	if e.backing == nil {
		return nil
	}
	ts := e.env().TS
	batch := e.getBatch()
	defer func() { e.putBatch(batch) }()
	var ptes []*vm.PTE
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if _, err := e.backing.WritePages(p, batch, nil); err != nil {
			return err
		}
		e.Stats.PageOuts += int64(len(batch))
		e.cPageOuts.Add(int64(len(batch)))
		for _, pte := range ptes {
			pte.Dirty = false
			pte.Attr.FOW = true
		}
		for i := range batch {
			e.putPageBuf(batch[i].Data)
			batch[i] = DirtyPage{}
		}
		batch, ptes = batch[:0], ptes[:0]
		return nil
	}
	for _, va := range e.policy.Resident() {
		pte := ts.PageTable().Lookup(vm.PageOf(va))
		if pte == nil || !pte.Valid || !pte.Dirty {
			continue
		}
		data := e.getPageBuf()
		copy(data, e.env().Store.Frame(pte.PFN))
		batch = append(batch, DirtyPage{VA: va, Data: data})
		ptes = append(ptes, pte)
		if len(batch) >= e.cluster {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// Relinquish implements domain.Driver: free unused frames first, then clean
// and evict mapped pages (when there is a backing store to evict into),
// leaving the freed frames at the top of the stack for the allocator to
// reclaim.
func (e *Engine) Relinquish(p *sim.Proc, k int) int {
	claimed := make(map[mem.PFN]bool)
	for len(claimed) < k {
		if pfn, ok := e.findUnusedFrameExcept(claimed); ok {
			claimed[pfn] = true
			e.stack().MoveToTop(pfn)
			continue
		}
		if e.backing == nil {
			break // nowhere to save page contents
		}
		pfn, err := e.evictOne(p, nil)
		if err != nil {
			break
		}
		claimed[pfn] = true
		e.stack().MoveToTop(pfn)
	}
	return len(claimed)
}
