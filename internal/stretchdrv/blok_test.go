package stretchdrv

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestBlokAllocBasics(t *testing.T) {
	a := NewBlokAllocator(100, 16)
	if a.Total() != 100 || a.Free() != 100 || a.BlokBlocks() != 16 {
		t.Fatalf("total=%d free=%d bb=%d", a.Total(), a.Free(), a.BlokBlocks())
	}
	// First fit: sequential allocation from zero.
	for i := int64(0); i < 5; i++ {
		got, err := a.Alloc()
		if err != nil || got != i {
			t.Fatalf("alloc %d = %d, %v", i, got, err)
		}
	}
	if a.Free() != 95 {
		t.Fatalf("free = %d", a.Free())
	}
	if a.BlockOffset(3) != 48 {
		t.Fatalf("BlockOffset = %d", a.BlockOffset(3))
	}
}

func TestBlokFreeAndReuse(t *testing.T) {
	a := NewBlokAllocator(10, 16)
	for i := 0; i < 10; i++ {
		a.Alloc()
	}
	if _, err := a.Alloc(); !errors.Is(err, ErrNoBloks) {
		t.Fatalf("err = %v", err)
	}
	a.FreeBlok(4)
	a.FreeBlok(2)
	// First fit: earliest free blok is 2.
	got, err := a.Alloc()
	if err != nil || got != 2 {
		t.Fatalf("alloc after free = %d, %v", got, err)
	}
	got, _ = a.Alloc()
	if got != 4 {
		t.Fatalf("second alloc = %d", got)
	}
	// Double free is a no-op.
	a.FreeBlok(4)
	first, _ := a.Alloc()
	if first != 4 {
		t.Fatalf("alloc = %d", first)
	}
	if _, err := a.Alloc(); !errors.Is(err, ErrNoBloks) {
		t.Fatal("allocator double-counted a freed blok")
	}
}

func TestBlokMultipleNodes(t *testing.T) {
	// More bloks than one bitmap structure covers: the linked list and
	// hint pointer come into play.
	total := int64(nodeBloks*2 + 37)
	a := NewBlokAllocator(total, 16)
	seen := make(map[int64]bool)
	for i := int64(0); i < total; i++ {
		got, err := a.Alloc()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if seen[got] {
			t.Fatalf("duplicate blok %d", got)
		}
		seen[got] = true
	}
	if _, err := a.Alloc(); !errors.Is(err, ErrNoBloks) {
		t.Fatal("over-allocation")
	}
	// Free one in the first structure; hint must move back.
	a.FreeBlok(7)
	got, err := a.Alloc()
	if err != nil || got != 7 {
		t.Fatalf("alloc = %d, %v", got, err)
	}
}

func TestBlokHintRescan(t *testing.T) {
	a := NewBlokAllocator(nodeBloks*2, 16)
	// Drain the first node so hint advances.
	for i := 0; i < nodeBloks+1; i++ {
		a.Alloc()
	}
	// Free an early blok; alloc must find it even though hint is ahead.
	a.FreeBlok(0)
	got, err := a.Alloc()
	if err != nil || got != 0 {
		t.Fatalf("alloc = %d, %v (hint rescan failed)", got, err)
	}
}

// Property: alloc/free sequences conserve bloks: no double allocation, free
// count always total - live.
func TestBlokAllocatorProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		a := NewBlokAllocator(257, 16) // spans non-word-aligned tail
		live := map[int64]bool{}
		for _, op := range ops {
			if op%3 != 0 {
				idx, err := a.Alloc()
				if err != nil {
					if int64(len(live)) != 257 {
						return false
					}
					continue
				}
				if live[idx] || idx < 0 || idx >= 257 {
					return false
				}
				live[idx] = true
			} else {
				for idx := range live {
					a.FreeBlok(idx)
					delete(live, idx)
					break
				}
			}
			if a.Free() != 257-int64(len(live)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBlokAllocRunAtNodeBoundary(t *testing.T) {
	// Two full structures. A run that ends exactly at the first
	// structure's last blok must succeed; one that would have to cross
	// into the next structure must land entirely in the second.
	a := NewBlokAllocator(2*nodeBloks, 16)
	if start, err := a.AllocRun(nodeBloks - 4); err != nil || start != 0 {
		t.Fatalf("run to near-boundary = %d, %v", start, err)
	}
	// 4 bloks remain free at the end of structure 0; a run of 8 cannot
	// span structures, so it starts at the second structure's base.
	if start, err := a.AllocRun(8); err != nil || start != nodeBloks {
		t.Fatalf("boundary-crossing run = %d, %v; want %d", start, err, nodeBloks)
	}
	// The 4-blok tail of structure 0 is still allocatable as an exact fit.
	if start, err := a.AllocRun(4); err != nil || start != nodeBloks-4 {
		t.Fatalf("exact-fit tail run = %d, %v; want %d", start, err, nodeBloks-4)
	}
}

func TestBlokAllocRunWholeNode(t *testing.T) {
	// A run equal to the structure limit fills one structure exactly.
	a := NewBlokAllocator(2*nodeBloks, 16)
	if start, err := a.AllocRun(nodeBloks); err != nil || start != 0 {
		t.Fatalf("whole-structure run = %d, %v", start, err)
	}
	if start, err := a.AllocRun(nodeBloks); err != nil || start != nodeBloks {
		t.Fatalf("second whole-structure run = %d, %v", start, err)
	}
	if _, err := a.AllocRun(2); !errors.Is(err, ErrNoBloks) {
		t.Fatalf("run on full allocator = %v", err)
	}
	if a.Free() != 0 {
		t.Fatalf("free = %d", a.Free())
	}
}

func TestBlokAllocRunOverNodeLimit(t *testing.T) {
	// A run longer than any one structure can never succeed (runs do not
	// span structures), even on an empty allocator with enough total
	// bloks spread across structures.
	a := NewBlokAllocator(2*nodeBloks, 16)
	if _, err := a.AllocRun(nodeBloks + 1); !errors.Is(err, ErrNoBloks) {
		t.Fatalf("over-limit run = %v, want ErrNoBloks", err)
	}
	if a.Free() != 2*nodeBloks {
		t.Fatalf("failed run consumed bloks: free = %d", a.Free())
	}
}

func TestBlokAllocRunShortLastNode(t *testing.T) {
	// A partial last structure: its limit is the remaining blok count,
	// not the bitmap's rounded-up word capacity.
	a := NewBlokAllocator(nodeBloks+10, 16)
	if start, err := a.AllocRun(nodeBloks); err != nil || start != 0 {
		t.Fatalf("first run = %d, %v", start, err)
	}
	if start, err := a.AllocRun(10); err != nil || start != nodeBloks {
		t.Fatalf("short-node run = %d, %v", start, err)
	}
	// The short node holds only 10 bloks; asking for 11 after freeing
	// them must fail rather than run into phantom bitmap bits.
	for i := int64(0); i < 10; i++ {
		a.FreeBlok(nodeBloks + i)
	}
	if _, err := a.AllocRun(11); !errors.Is(err, ErrNoBloks) {
		t.Fatalf("phantom-bit run = %v, want ErrNoBloks", err)
	}
}

func TestBlokExhaustionThenSinglesFallback(t *testing.T) {
	// Fragment the space so no 3-run exists but singles still do — the
	// swap backing's fallback path.
	a := NewBlokAllocator(8, 16)
	for i := 0; i < 8; i++ {
		a.Alloc()
	}
	a.FreeBlok(1)
	a.FreeBlok(3)
	a.FreeBlok(5)
	if _, err := a.AllocRun(3); !errors.Is(err, ErrNoBloks) {
		t.Fatalf("fragmented run = %v, want ErrNoBloks", err)
	}
	for _, want := range []int64{1, 3, 5} {
		got, err := a.Alloc()
		if err != nil || got != want {
			t.Fatalf("single fallback = %d, %v; want %d", got, err, want)
		}
	}
	if _, err := a.Alloc(); !errors.Is(err, ErrNoBloks) {
		t.Fatalf("exhausted alloc = %v", err)
	}
	// Double free stays idempotent after exhaustion.
	a.FreeBlok(3)
	a.FreeBlok(3)
	if a.Free() != 1 {
		t.Fatalf("double free counted twice: free = %d", a.Free())
	}
}
