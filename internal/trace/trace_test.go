package trace

import (
	"strings"
	"testing"
	"time"

	"nemesis/internal/sim"
)

func ms(n int64) sim.Time { return sim.Time(time.Duration(n) * time.Millisecond) }

func TestLogAddAndQuery(t *testing.T) {
	var l Log
	l.Add(Event{Transaction, "a", ms(0), ms(10)})
	l.Add(Event{Lax, "a", ms(10), ms(15)})
	l.Add(Event{Transaction, "b", ms(15), ms(25)})
	l.Add(Event{Allocation, "a", ms(250), ms(250)})

	if len(l.Events()) != 4 {
		t.Fatalf("Events = %d", len(l.Events()))
	}
	if got := l.ByClient("a"); len(got) != 3 {
		t.Fatalf("ByClient(a) = %d", len(got))
	}
	if got := l.Between(ms(12), ms(20)); len(got) != 2 {
		t.Fatalf("Between = %d (%v)", len(got), got)
	}
}

func TestNilLogIsDiscard(t *testing.T) {
	var l *Log
	l.Add(Event{Transaction, "x", 0, 1}) // must not panic
	if l.Events() != nil || l.ByClient("x") != nil || l.Between(0, 1) != nil {
		t.Fatal("nil log returned data")
	}
	if len(l.TotalBusy(0, 1)) != 0 || len(l.MaxLax()) != 0 {
		t.Fatal("nil log returned stats")
	}
}

func TestTotalBusyClipsWindow(t *testing.T) {
	var l Log
	l.Add(Event{Transaction, "a", ms(0), ms(10)})
	l.Add(Event{Transaction, "a", ms(20), ms(40)})
	l.Add(Event{Lax, "a", ms(10), ms(20)}) // lax not counted as busy
	busy := l.TotalBusy(ms(5), ms(30))
	want := 0.005 + 0.010 // [5,10) + [20,30)
	if got := busy["a"]; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("busy = %v, want %v", got, want)
	}
}

func TestMaxLax(t *testing.T) {
	var l Log
	l.Add(Event{Lax, "a", ms(0), ms(3)})
	l.Add(Event{Lax, "a", ms(10), ms(18)})
	l.Add(Event{Lax, "b", ms(0), ms(1)})
	m := l.MaxLax()
	if m["a"] != 0.008 || m["b"] != 0.001 {
		t.Fatalf("MaxLax = %v", m)
	}
}

func TestLogWriteTSV(t *testing.T) {
	var l Log
	l.Add(Event{Transaction, "cl", ms(1), ms(2)})
	var b strings.Builder
	if err := l.WriteTSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "txn\tcl\t1.000\t2.000\t1.000") {
		t.Fatalf("TSV output:\n%s", out)
	}
}

func TestEventKindString(t *testing.T) {
	cases := map[EventKind]string{Transaction: "txn", Lax: "lax", Allocation: "alloc", Slack: "slack", EventKind(9): "kind(9)"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestSeriesStats(t *testing.T) {
	var s Series
	if s.Last() != 0 || s.Mean() != 0 {
		t.Fatal("empty series stats nonzero")
	}
	s.Add(ms(1000), 2)
	s.Add(ms(2000), 4)
	s.Add(ms(3000), 6)
	if s.Last() != 6 {
		t.Fatalf("Last = %v", s.Last())
	}
	if s.Mean() != 4 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if got := s.MeanAfter(ms(1500)); got != 5 {
		t.Fatalf("MeanAfter = %v", got)
	}
	if got := s.MeanAfter(ms(9000)); got != 0 {
		t.Fatalf("MeanAfter past end = %v", got)
	}
}

func TestSeriesSet(t *testing.T) {
	var ss SeriesSet
	a := ss.New("a")
	b := ss.New("b")
	a.Add(ms(1000), 1)
	a.Add(ms(2000), 2)
	b.Add(ms(2000), 20)
	if ss.Get("a") != a || ss.Get("missing") != nil {
		t.Fatal("Get broken")
	}
	var buf strings.Builder
	if err := ss.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != "time_s\ta\tb" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1.00\t1.0000\t") {
		t.Fatalf("row1 = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "2.00\t2.0000\t20.0000") {
		t.Fatalf("row2 = %q", lines[2])
	}
}

func TestValidateGuarantees(t *testing.T) {
	var l Log
	// Client "a" (slice 25ms/250ms): window 0 fine, window 1 overruns.
	l.Add(Event{Transaction, "a", ms(0), ms(20)})
	l.Add(Event{Lax, "a", ms(20), ms(24)})
	l.Add(Event{Transaction, "a", ms(250), ms(300)}) // 50ms > 25+10
	// Slack is never counted.
	l.Add(Event{Slack, "a", ms(300), ms(400)})
	slices := map[string]time.Duration{"a": 25 * time.Millisecond}
	v := l.ValidateGuarantees(slices, 250*time.Millisecond, 10*time.Millisecond, ms(500))
	if len(v) != 1 {
		t.Fatalf("violations = %v", v)
	}
	if v[0].Client != "a" || v[0].Window != ms(250) {
		t.Fatalf("violation = %+v", v[0])
	}
	if v[0].Busy != 0.050 {
		t.Fatalf("busy = %v", v[0].Busy)
	}
	// Nil log: no violations.
	var nilLog *Log
	if nilLog.ValidateGuarantees(slices, time.Second, 0, ms(500)) != nil {
		t.Fatal("nil log produced violations")
	}
}

// TestBetweenBoundaries pins the half-open window semantics: an event
// that ended exactly at the window start is outside it, while an
// instantaneous event landing exactly on the start is inside.
func TestBetweenBoundaries(t *testing.T) {
	var l Log
	ended := Event{Transaction, "a", ms(0), ms(10)}
	instant := Event{Allocation, "a", ms(10), ms(10)}
	spanning := Event{Transaction, "a", ms(5), ms(15)}
	startsAtEnd := Event{Transaction, "a", ms(20), ms(30)}
	l.Add(ended)
	l.Add(instant)
	l.Add(spanning)
	l.Add(startsAtEnd)

	got := l.Between(ms(10), ms(20))
	if len(got) != 2 {
		t.Fatalf("Between(10,20) = %v", got)
	}
	if got[0] != instant || got[1] != spanning {
		t.Fatalf("Between(10,20) = %v; want instantaneous + spanning", got)
	}
	// The excluded event still overlaps an earlier window.
	if got := l.Between(ms(0), ms(10)); len(got) != 2 || got[0] != ended || got[1] != spanning {
		t.Fatalf("Between(0,10) = %v", got)
	}
	// An event starting exactly at `to` is outside (half-open on the right).
	if got := l.Between(ms(10), ms(20)); len(got) == 3 {
		t.Fatalf("event starting at to included: %v", got)
	}
	// Instantaneous event exactly at `to` is outside.
	if got := l.Between(ms(0), ms(10)); len(got) != 2 {
		t.Fatalf("instantaneous event at to included: %v", got)
	}
}

// TestValidateGuaranteesSlopBoundary: charged time of exactly slice+slop
// is permitted; one more transaction's worth is not.
func TestValidateGuaranteesSlopBoundary(t *testing.T) {
	slices := map[string]time.Duration{"a": 25 * time.Millisecond}
	var atLimit Log
	atLimit.Add(Event{Transaction, "a", ms(0), ms(35)}) // exactly 25+10
	if v := atLimit.ValidateGuarantees(slices, 250*time.Millisecond, 10*time.Millisecond, ms(250)); len(v) != 0 {
		t.Fatalf("busy == allowed flagged: %v", v)
	}
	var over Log
	over.Add(Event{Transaction, "a", ms(0), ms(36)})
	v := over.ValidateGuarantees(slices, 250*time.Millisecond, 10*time.Millisecond, ms(250))
	if len(v) != 1 {
		t.Fatalf("busy > allowed not flagged: %v", v)
	}
	if v[0].Allowed != 0.035 {
		t.Fatalf("allowed = %v", v[0].Allowed)
	}
}

// TestSeriesSetMissingSamples: a series without a sample at a unioned time
// renders a blank cell, and column alignment is preserved.
func TestSeriesSetMissingSamples(t *testing.T) {
	var ss SeriesSet
	a := ss.New("a")
	b := ss.New("b")
	a.Add(ms(1000), 1)
	b.Add(ms(2000), 20)
	a.Add(ms(3000), 3)
	var buf strings.Builder
	if err := ss.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[1] != "1.00\t1.0000\t" {
		t.Fatalf("row1 = %q; want blank b cell", lines[1])
	}
	if lines[2] != "2.00\t\t20.0000" {
		t.Fatalf("row2 = %q; want blank a cell", lines[2])
	}
	if lines[3] != "3.00\t3.0000\t" {
		t.Fatalf("row3 = %q", lines[3])
	}
}

func TestValidateGuaranteesClipsEdges(t *testing.T) {
	var l Log
	// A transaction spanning a window boundary is split across windows.
	l.Add(Event{Transaction, "a", ms(240), ms(270)})
	slices := map[string]time.Duration{"a": 25 * time.Millisecond}
	v := l.ValidateGuarantees(slices, 250*time.Millisecond, 0, ms(500))
	if len(v) != 0 {
		t.Fatalf("split transaction flagged: %v", v)
	}
}
