// Package trace collects the structured logs the paper's figures are built
// from: USD scheduler traces (Figs. 7–8 bottom), bandwidth progress series
// (Figs. 7–9 top), and summary statistics. Rendering is plain TSV so the
// output of the cmd/ tools can be dropped straight into a plotting pipeline.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"nemesis/internal/sim"
)

// EventKind classifies a scheduler trace record.
type EventKind uint8

const (
	// Transaction records one disk transaction performed on behalf of a
	// client; Start..End spans the transaction (the filled boxes in the
	// paper's trace plots).
	Transaction EventKind = iota
	// Lax records time a client spent on the runnable queue with no work
	// pending that was nonetheless charged to it (the solid lines between
	// transactions in the paper's plots).
	Lax
	// Allocation records a period boundary at which the client received a
	// fresh slice allocation (the small arrows in the paper's plots).
	Allocation
	// Slack records transaction time granted out of schedule slack to an
	// x=true client (optimistic time, not charged against the guarantee).
	Slack
)

func (k EventKind) String() string {
	switch k {
	case Transaction:
		return "txn"
	case Lax:
		return "lax"
	case Allocation:
		return "alloc"
	case Slack:
		return "slack"
	default:
		return fmt.Sprintf("kind(%d)", k)
	}
}

// Event is one scheduler trace record.
type Event struct {
	Kind   EventKind
	Client string
	Start  sim.Time
	End    sim.Time // == Start for instantaneous records (Allocation)
}

// Log accumulates scheduler events. The zero value is ready to use; a nil
// *Log discards everything, so instrumented code does not need nil checks.
type Log struct {
	events []Event
}

// Add appends an event. Safe on a nil receiver.
func (l *Log) Add(e Event) {
	if l == nil {
		return
	}
	l.events = append(l.events, e)
}

// Events returns the recorded events in insertion order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	return l.events
}

// Between returns events overlapping [from, to). An event that merely
// ended at the window's start does not overlap it; an instantaneous event
// (Start == End, e.g. an Allocation) landing exactly on from does.
func (l *Log) Between(from, to sim.Time) []Event {
	if l == nil {
		return nil
	}
	var out []Event
	for _, e := range l.events {
		if (e.End > from || e.Start >= from) && e.Start < to {
			out = append(out, e)
		}
	}
	return out
}

// ByClient returns events for one client in insertion order.
func (l *Log) ByClient(name string) []Event {
	if l == nil {
		return nil
	}
	var out []Event
	for _, e := range l.events {
		if e.Client == name {
			out = append(out, e)
		}
	}
	return out
}

// TotalBusy sums transaction time per client over [from, to), clipping
// events at the window edges.
func (l *Log) TotalBusy(from, to sim.Time) map[string]float64 {
	out := make(map[string]float64)
	if l == nil {
		return out
	}
	for _, e := range l.events {
		if e.Kind != Transaction && e.Kind != Slack {
			continue
		}
		s, t := e.Start, e.End
		if s < from {
			s = from
		}
		if t > to {
			t = to
		}
		if t > s {
			out[e.Client] += t.Sub(s).Seconds()
		}
	}
	return out
}

// MaxLax returns the longest single lax charge per client, in seconds. The
// paper's invariant is that no lax line exceeds the client's l parameter.
func (l *Log) MaxLax() map[string]float64 {
	out := make(map[string]float64)
	if l == nil {
		return out
	}
	for _, e := range l.events {
		if e.Kind != Lax {
			continue
		}
		if d := e.End.Sub(e.Start).Seconds(); d > out[e.Client] {
			out[e.Client] = d
		}
	}
	return out
}

// GuaranteeViolation reports a window in which a client's charged time
// deterministically exceeded its contract.
type GuaranteeViolation struct {
	Client  string
	Window  sim.Time // window start
	Busy    float64  // seconds charged in the window
	Allowed float64  // slice plus roll-over slop, seconds
}

// ValidateGuarantees checks the Atropos invariant over a scheduler trace:
// within every aligned window of length period, each client's charged time
// (transactions plus lax; slack excluded) must not exceed its slice by more
// than slop — the one roll-over transaction the accounting permits. It
// returns all violations found.
func (l *Log) ValidateGuarantees(slices map[string]time.Duration, period, slop time.Duration, until sim.Time) []GuaranteeViolation {
	var out []GuaranteeViolation
	if l == nil {
		return nil
	}
	for client, slice := range slices {
		allowed := (slice + slop).Seconds()
		for w := sim.Time(0); w < until; w = w.Add(period) {
			end := w.Add(period)
			busy := 0.0
			for _, e := range l.events {
				if e.Client != client || (e.Kind != Transaction && e.Kind != Lax) {
					continue
				}
				s, t := e.Start, e.End
				if s < w {
					s = w
				}
				if t > end {
					t = end
				}
				if t > s {
					busy += t.Sub(s).Seconds()
				}
			}
			if busy > allowed {
				out = append(out, GuaranteeViolation{Client: client, Window: w, Busy: busy, Allowed: allowed})
			}
		}
	}
	return out
}

// WriteTSV renders the log as tab-separated values: kind, client, start_ms,
// end_ms, duration_ms.
func (l *Log) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "kind\tclient\tstart_ms\tend_ms\tdur_ms"); err != nil {
		return err
	}
	for _, e := range l.Events() {
		_, err := fmt.Fprintf(w, "%s\t%s\t%.3f\t%.3f\t%.3f\n",
			e.Kind, e.Client, e.Start.Milliseconds(), e.End.Milliseconds(),
			e.End.Sub(e.Start).Seconds()*1e3)
		if err != nil {
			return err
		}
	}
	return nil
}

// Point is one sample of a progress series.
type Point struct {
	T     sim.Time
	Value float64
}

// Series is a named sequence of samples, e.g. sustained bandwidth of one
// application over time.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(t sim.Time, v float64) { s.Points = append(s.Points, Point{t, v}) }

// Last returns the most recent sample value, or 0 if empty.
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].Value
}

// Mean returns the mean of all sample values, or 0 if empty.
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.Value
	}
	return sum / float64(len(s.Points))
}

// MeanAfter returns the mean of samples at or after t — useful for skipping
// a warm-up transient.
func (s *Series) MeanAfter(t sim.Time) float64 {
	sum, n := 0.0, 0
	for _, p := range s.Points {
		if p.T >= t {
			sum += p.Value
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// SeriesSet groups several series sampled on a common schedule.
type SeriesSet struct {
	Series []*Series
}

// New adds and returns a fresh named series.
func (ss *SeriesSet) New(name string) *Series {
	s := &Series{Name: name}
	ss.Series = append(ss.Series, s)
	return s
}

// Get returns the series with the given name, or nil.
func (ss *SeriesSet) Get(name string) *Series {
	for _, s := range ss.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// WriteTSV renders all series as a wide table: time_s followed by one column
// per series. Sample times are unioned; missing samples render as blanks.
func (ss *SeriesSet) WriteTSV(w io.Writer) error {
	times := map[sim.Time]bool{}
	for _, s := range ss.Series {
		for _, p := range s.Points {
			times[p.T] = true
		}
	}
	sorted := make([]sim.Time, 0, len(times))
	for t := range times {
		sorted = append(sorted, t)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	header := []string{"time_s"}
	for _, s := range ss.Series {
		header = append(header, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, "\t")); err != nil {
		return err
	}
	idx := make([]int, len(ss.Series))
	for _, t := range sorted {
		row := []string{fmt.Sprintf("%.2f", t.Seconds())}
		for i, s := range ss.Series {
			cell := ""
			if idx[i] < len(s.Points) && s.Points[idx[i]].T == t {
				cell = fmt.Sprintf("%.4f", s.Points[idx[i]].Value)
				idx[i]++
			}
			row = append(row, cell)
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}
