package trace

// Clone returns an independent copy of the log. Nil clones to nil, matching
// the nil-safe accessors: a world without tracing forks to a world without
// tracing.
func (l *Log) Clone() *Log {
	if l == nil {
		return nil
	}
	return &Log{events: append([]Event(nil), l.events...)}
}

// Clone returns an independent copy of the series.
func (s *Series) Clone() *Series {
	if s == nil {
		return nil
	}
	return &Series{Name: s.Name, Points: append([]Point(nil), s.Points...)}
}
