package netswap

import (
	"fmt"

	"nemesis/internal/obs"
	"nemesis/internal/sim"
)

// Config bundles the whole remote-paging fabric: one link, one server, and
// the default client/tiering options new backings inherit.
type Config struct {
	Link   LinkConfig
	Server ServerConfig
	Remote RemoteOptions
	Tiered TieredOptions
}

// DefaultConfig returns a healthy fabric on the defaults of each layer.
func DefaultConfig() Config {
	return Config{
		Link:   DefaultLinkConfig(),
		Server: DefaultServerConfig(),
		Remote: DefaultRemoteOptions(),
		Tiered: DefaultTieredOptions(),
	}
}

// Fabric owns the remote-paging plumbing: it routes client requests over the
// link to the server and server replies back to the issuing client. One
// fabric serves any number of RemoteBackings (one per paged stretch), all
// sharing the link and the server while keeping disjoint server-side blok
// maps.
type Fabric struct {
	s   *sim.Simulator
	reg *obs.Registry
	cfg Config

	Link   *Link
	Server *Server

	clients map[string]*RemoteBacking
}

// New builds the fabric: link, server, and reply routing. reg may be nil.
func New(s *sim.Simulator, reg *obs.Registry, cfg Config) (*Fabric, error) {
	f := &Fabric{
		s:       s,
		reg:     reg,
		cfg:     cfg,
		Link:    NewLink(s, reg, cfg.Link),
		clients: make(map[string]*RemoteBacking),
	}
	srv, err := NewServer(s, cfg.Server)
	if err != nil {
		return nil, err
	}
	f.Server = srv
	srv.reply = func(rep *reply) {
		f.Link.SendToClient(rep.wireSize(), func() {
			if c, ok := f.clients[rep.Client]; ok {
				c.deliver(rep)
			}
		})
	}
	return f, nil
}

// Config returns the fabric's configuration.
func (f *Fabric) Config() Config { return f.cfg }

// toServer offers one request frame to the link.
func (f *Fabric) toServer(req *request) {
	f.Link.SendToServer(req.wireSize(), func() { f.Server.handle(req) })
}

// NewRemoteBacking registers a client endpoint named client (which keys the
// server-side blok map) for telemetry domain domName. opt nil = the fabric's
// default remote options.
func (f *Fabric) NewRemoteBacking(client, domName string, opt *RemoteOptions) (*RemoteBacking, error) {
	if _, ok := f.clients[client]; ok {
		return nil, fmt.Errorf("netswap: client %q already registered", client)
	}
	o := f.cfg.Remote
	if opt != nil {
		o = *opt
	}
	r := newRemoteBacking(f, client, domName, o)
	f.clients[client] = r
	return r, nil
}

// SetOutage blackholes (or restores) the fabric's link.
func (f *Fabric) SetOutage(down bool) { f.Link.SetOutage(down) }

// Stop shuts the server down so an idle-drain run terminates.
func (f *Fabric) Stop() { f.Server.Stop() }
