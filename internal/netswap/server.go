package netswap

import (
	"fmt"
	"time"

	"nemesis/internal/atropos"
	"nemesis/internal/disk"
	"nemesis/internal/obs"
	"nemesis/internal/sfs"
	"nemesis/internal/sim"
	"nemesis/internal/stretchdrv"
	"nemesis/internal/usd"
	"nemesis/internal/vm"
)

// ServerConfig sizes the remote swap server: a separate simulated machine
// with its own disk, USD and swap store, sharing only the simulated clock.
type ServerConfig struct {
	// Geometry describes the server's drive (zero = disk.VP3221()).
	Geometry disk.Geometry
	// StoreBytes is the capacity of the remote swap store (default 64 MB).
	StoreBytes int64
	// QoS is the store's contract on the server's own USD.
	QoS atropos.QoS
	// Workers is the number of concurrent service processes (default 1:
	// strictly serial disk service; more overlap queueing with service).
	Workers int
}

// DefaultServerConfig returns a 64 MB store on the paper's drive, serviced
// serially under a 90% contract on the otherwise idle server disk.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		StoreBytes: 64 << 20,
		QoS:        atropos.QoS{P: 100 * time.Millisecond, S: 90 * time.Millisecond, X: true, L: 10 * time.Millisecond},
		Workers:    1,
	}
}

func (c *ServerConfig) fillDefaults() {
	d := DefaultServerConfig()
	if c.Geometry.TotalBlocks == 0 {
		c.Geometry = disk.VP3221()
	}
	if c.StoreBytes <= 0 {
		c.StoreBytes = d.StoreBytes
	}
	if c.QoS.P == 0 {
		c.QoS = d.QoS
	}
	if c.Workers < 1 {
		c.Workers = d.Workers
	}
}

// ServerStats counts remote-store activity.
type ServerStats struct {
	Reads, Writes int64 // RPCs serviced by kind
	PagesRead     int64
	PagesWritten  int64
	Txns          int64 // disk transactions issued
	Errors        int64 // definitive error replies
}

// Server is the remote swap server: a simulated process (or several) that
// drains an RPC queue, services page reads and batched page writes against
// its own disk through its own USD contract, and replies over the link. It
// keeps one blok map per client, so clients never see each other's pages.
type Server struct {
	s     *sim.Simulator
	cfg   ServerConfig
	disk  *disk.Disk
	usd   *usd.USD
	store *sfs.SwapFile
	blok  *stretchdrv.BlokAllocator

	clients map[string]map[vm.VPN]int64 // per-client page -> blok
	queue   []*request
	work    *sim.Cond
	procs   []*sim.Proc
	reply   func(*reply) // installed by the Fabric

	// obs, when set via SetObs, is the server machine's own registry: every
	// delivered RPC opens a "service" span there (hops queue → load/store)
	// carrying the client's flow ID, which is what a merged cluster trace
	// draws the cross-machine arrow to. Nil (the default) costs nothing.
	obs *obs.Registry

	Stats ServerStats
}

// NewServer builds and starts the server's machine: disk, USD, store and
// service workers.
func NewServer(s *sim.Simulator, cfg ServerConfig) (*Server, error) {
	cfg.fillDefaults()
	d := disk.New(s, cfg.Geometry)
	u := usd.New(s, d)
	u.SlackEnabled = true // the server disk serves only the store
	fs := sfs.New(u, usd.Extent{Start: 0, Count: cfg.Geometry.TotalBlocks})
	store, err := fs.CreateSwapFile("netswap-store", cfg.StoreBytes, cfg.QoS, cfg.Workers)
	if err != nil {
		u.Stop()
		return nil, fmt.Errorf("netswap: creating remote store: %w", err)
	}
	blokBlocks := int64(vm.PageSize / disk.BlockSize)
	srv := &Server{
		s:       s,
		cfg:     cfg,
		disk:    d,
		usd:     u,
		store:   store,
		blok:    stretchdrv.NewBlokAllocator(store.Blocks()/blokBlocks, blokBlocks),
		clients: make(map[string]map[vm.VPN]int64),
		work:    sim.NewCond(s),
	}
	for i := 0; i < cfg.Workers; i++ {
		name := fmt.Sprintf("netswap-server-%d", i)
		srv.procs = append(srv.procs, s.Spawn(name, srv.serve))
	}
	return srv, nil
}

// SetObs installs the server machine's telemetry registry. Call before
// traffic arrives; a nil registry (the default) keeps service unobserved.
func (srv *Server) SetObs(reg *obs.Registry) { srv.obs = reg }

// Obs returns the server machine's registry (nil unless SetObs was called).
func (srv *Server) Obs() *obs.Registry { return srv.obs }

// FreeBloks returns the unallocated store capacity in bloks (pages).
func (srv *Server) FreeBloks() int64 { return srv.blok.Free() }

// QueueLen returns the number of RPCs awaiting service.
func (srv *Server) QueueLen() int { return len(srv.queue) }

// Stop kills the service workers and the server's USD so an idle-drain run
// terminates.
func (srv *Server) Stop() {
	for _, p := range srv.procs {
		p.Kill()
	}
	srv.usd.Stop()
}

// handle enqueues one arrived request. Called from scheduler context (a link
// delivery event). With a registry installed this is where the server-side
// span opens: the "queue" hop runs from arrival to worker pickup.
func (srv *Server) handle(req *request) {
	if srv.obs != nil {
		req.ssp = srv.obs.StartSpan(req.Client, "service")
		req.ssp.SetFlow(req.Flow)
		req.ssp.BeginHop("queue")
	}
	srv.queue = append(srv.queue, req)
	srv.work.Signal()
}

// serve is one worker's loop: pop a request, service it against the store,
// send the reply back through the link.
func (srv *Server) serve(p *sim.Proc) {
	for {
		for len(srv.queue) == 0 {
			srv.work.Wait(p)
		}
		req := srv.queue[0]
		srv.queue = srv.queue[1:]
		req.ssp.SetThread(p.Name())
		rep := srv.service(p, req)
		if req.ssp != nil {
			outcome := "ok"
			if rep.Err != "" {
				outcome = "error"
			}
			req.ssp.Finish(outcome)
		}
		if srv.reply != nil {
			srv.reply(rep)
		}
	}
}

// pages returns (creating if needed) the blok map for a client.
func (srv *Server) pages(client string) map[vm.VPN]int64 {
	m, ok := srv.clients[client]
	if !ok {
		m = make(map[vm.VPN]int64)
		srv.clients[client] = m
	}
	return m
}

// service runs one RPC against the store, blocking p on the server's USD.
func (srv *Server) service(p *sim.Proc, req *request) *reply {
	rep := &reply{ID: req.ID, Client: req.Client, Flow: req.Flow}
	switch req.Op {
	case opRead:
		srv.Stats.Reads++
		if len(req.VPNs) != 1 {
			srv.Stats.Errors++
			rep.Err = "malformed read"
			return rep
		}
		blok, ok := srv.pages(req.Client)[req.VPNs[0]]
		if !ok {
			srv.Stats.Errors++
			rep.Err = "no remote copy"
			return rep
		}
		buf := make([]byte, vm.PageSize)
		req.ssp.BeginHop("load")
		rep.ServiceStart = srv.s.Now()
		if err := srv.store.Read(p, srv.blok.BlockOffset(blok), int(srv.blok.BlokBlocks()), buf); err != nil {
			srv.Stats.Errors++
			rep.Err = err.Error()
			return rep
		}
		rep.ServiceEnd = srv.s.Now()
		rep.Data = buf
		rep.Txns = 1
		srv.Stats.Txns++
		srv.Stats.PagesRead++
		return rep

	case opWrite:
		srv.Stats.Writes++
		if len(req.Data) != len(req.VPNs)*int(vm.PageSize) {
			srv.Stats.Errors++
			rep.Err = "malformed write"
			return rep
		}
		req.ssp.BeginHop("store")
		rep.ServiceStart = srv.s.Now()
		txns, err := srv.writeBatch(p, req)
		rep.ServiceEnd = srv.s.Now()
		rep.Txns = txns
		srv.Stats.Txns += int64(txns)
		if err != nil {
			srv.Stats.Errors++
			rep.Err = err.Error()
			return rep
		}
		srv.Stats.PagesWritten += int64(len(req.VPNs))
		return rep

	default:
		srv.Stats.Errors++
		rep.Err = "unknown op"
		return rep
	}
}

// writeBatch allocates bloks for new pages (as a contiguous run when
// possible, falling back to singles, freeing the partial allocation on
// exhaustion) and writes disk-adjacent pages as merged spanned transactions.
// ServiceStart/ServiceEnd on the eventual reply bracket the disk work.
func (srv *Server) writeBatch(p *sim.Proc, req *request) (int, error) {
	m := srv.pages(req.Client)
	bloks := make([]int64, len(req.VPNs))
	var need []int
	for i, vpn := range req.VPNs {
		if b, ok := m[vpn]; ok {
			bloks[i] = b
		} else {
			bloks[i] = -1
			need = append(need, i)
		}
	}
	if len(need) > 0 {
		if start, err := srv.blok.AllocRun(len(need)); err == nil {
			for k, i := range need {
				bloks[i] = start + int64(k)
			}
		} else {
			var got []int64
			for _, i := range need {
				b, err := srv.blok.Alloc()
				if err != nil {
					for _, g := range got {
						srv.blok.FreeBlok(g)
					}
					return 0, fmt.Errorf("remote store full: %d pages, %d bloks free", len(need), srv.blok.Free())
				}
				bloks[i] = b
				got = append(got, b)
			}
		}
		for _, i := range need {
			m[req.VPNs[i]] = bloks[i]
		}
	}

	// Sort page indices by blok and merge adjacent runs into single writes.
	order := make([]int, len(req.VPNs))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ { // insertion sort: batches are small
		for j := i; j > 0 && bloks[order[j]] < bloks[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	blocks := int(srv.blok.BlokBlocks())
	txns := 0
	for at := 0; at < len(order); {
		run := 1
		for at+run < len(order) && bloks[order[at+run]] == bloks[order[at+run-1]]+1 {
			run++
		}
		buf := make([]byte, 0, run*int(vm.PageSize))
		for k := 0; k < run; k++ {
			i := order[at+k]
			buf = append(buf, req.Data[i*int(vm.PageSize):(i+1)*int(vm.PageSize)]...)
		}
		if err := srv.store.Write(p, srv.blok.BlockOffset(bloks[order[at]]), run*blocks, buf); err != nil {
			return txns, err
		}
		txns++
		at += run
	}
	return txns, nil
}
