// Package netswap implements remote paging over a simulated network: a link
// model (latency, bandwidth, jitter, loss, duplication — all driven by the
// deterministic simulated clock), a remote swap server that services page
// read/write RPCs against its own disk and per-client blok maps, a
// RemoteBacking that speaks that protocol through a bounded in-flight request
// window with per-request timeouts and exponential-backoff retries, and a
// TieredBacking that composes a fast local swap tier with the large remote
// tier (demote-on-clean / promote-on-fault) and degrades to the local tier
// when the remote misses its deadline budget.
//
// Everything stays inside the paper's QoS firewall: every remote stall is
// taken on the faulting domain's own simulated process, so an outage or a
// lossy link slows only the domain that pages remotely.
package netswap

import (
	"math/rand"
	"time"

	"nemesis/internal/obs"
	"nemesis/internal/sim"
)

// LinkConfig describes one simulated network link between the paging client
// machine and the remote swap server. Both directions share the parameters
// but serialise independently (full duplex).
type LinkConfig struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// BandwidthBps is the wire rate in bytes per second (0 = infinite).
	// Frames serialise through each direction at this rate.
	BandwidthBps int64
	// Jitter is the maximum extra per-frame delay, drawn uniformly from
	// [0, Jitter) by the link's own seeded RNG.
	Jitter time.Duration
	// DropProb and DupProb are per-frame loss and duplication
	// probabilities.
	DropProb, DupProb float64
	// Seed drives the link's private RNG; identical seeds give identical
	// delivery schedules.
	Seed int64
}

// DefaultLinkConfig returns a healthy datacentre-ish link: 200 us one way,
// 1 Gbit/s, 20 us jitter, no loss.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{
		Latency:      200 * time.Microsecond,
		BandwidthBps: 125_000_000, // 1 Gbit/s
		Jitter:       20 * time.Microsecond,
		Seed:         1,
	}
}

// LinkStats counts link-level activity (both directions combined).
type LinkStats struct {
	Frames     int64 // frames offered to the link
	Drops      int64 // frames lost (including all frames during an outage)
	Dups       int64 // frames duplicated
	BytesSent  int64 // bytes accepted onto the wire
	OutageDrop int64 // drops attributable to SetOutage(true)
}

// wire is one direction of the link; frames serialise through its busy time.
type wire struct {
	busyUntil sim.Time
}

// Link is the simulated network connecting paging clients to the remote swap
// server. It is not a Backing itself — the Fabric wires RemoteBacking and
// Server endpoints through it.
type Link struct {
	s      *sim.Simulator
	cfg    LinkConfig
	rng    *rand.Rand
	up     wire // client -> server
	down   wire // server -> client
	outage bool

	Stats LinkStats

	cDrops, cDups, cFrames *obs.Counter
}

// NewLink builds a link on s. reg may be nil (no telemetry).
func NewLink(s *sim.Simulator, reg *obs.Registry, cfg LinkConfig) *Link {
	return &Link{
		s:       s,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		cDrops:  reg.Counter("netswap", "link_drops", ""),
		cDups:   reg.Counter("netswap", "link_dups", ""),
		cFrames: reg.Counter("netswap", "link_frames", ""),
	}
}

// Config returns the link parameters.
func (l *Link) Config() LinkConfig { return l.cfg }

// SetOutage blackholes the link (both directions) while down is true —
// every offered frame is dropped, modelling a dead switch or partition.
func (l *Link) SetOutage(down bool) { l.outage = down }

// Outage reports whether the link is currently blackholed.
func (l *Link) Outage() bool { return l.outage }

// delay computes the scheduling delay for a frame of size bytes on w:
// residual serialisation backlog + transmission time + propagation + jitter.
func (l *Link) delay(w *wire, size int) time.Duration {
	now := l.s.Now()
	var tx time.Duration
	if l.cfg.BandwidthBps > 0 {
		tx = time.Duration(float64(size) / float64(l.cfg.BandwidthBps) * 1e9)
	}
	start := now
	if w.busyUntil > start {
		start = w.busyUntil
	}
	w.busyUntil = start.Add(tx)
	d := w.busyUntil.Sub(now) + l.cfg.Latency
	if l.cfg.Jitter > 0 {
		d += time.Duration(l.rng.Int63n(int64(l.cfg.Jitter)))
	}
	return d
}

// send offers one frame of size bytes to direction w; deliver runs when (and
// if) the frame arrives. Loss and duplication are decided here, so a dropped
// frame still consumed RNG state deterministically.
func (l *Link) send(w *wire, size int, deliver func()) {
	l.Stats.Frames++
	l.cFrames.Inc()
	drop := l.rng.Float64() < l.cfg.DropProb
	dup := l.rng.Float64() < l.cfg.DupProb
	if l.outage {
		l.Stats.Drops++
		l.Stats.OutageDrop++
		l.cDrops.Inc()
		return
	}
	if drop {
		l.Stats.Drops++
		l.cDrops.Inc()
		return
	}
	l.Stats.BytesSent += int64(size)
	l.s.After(l.delay(w, size), deliver)
	if dup {
		l.Stats.Dups++
		l.cDups.Inc()
		l.s.After(l.delay(w, size), deliver)
	}
}

// SendToServer offers a client->server frame.
func (l *Link) SendToServer(size int, deliver func()) { l.send(&l.up, size, deliver) }

// SendToClient offers a server->client frame.
func (l *Link) SendToClient(size int, deliver func()) { l.send(&l.down, size, deliver) }
