package netswap

import (
	"errors"
	"testing"

	"nemesis/internal/sim"
)

// TestPoolPlacement pins the deterministic least-reserved placement and the
// capacity-reserving admission control.
func TestPoolPlacement(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig()
	cfg.Server.StoreBytes = 1 << 20 // 1 MB per server
	p, err := NewPool(s, nil, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Equal reservations alternate servers: ties go to the lowest index.
	for i, want := range []int{0, 1, 0, 1} {
		name := string(rune('a' + i))
		if _, err := p.Place(name, name, 256<<10, nil); err != nil {
			t.Fatalf("place %d: %v", i, err)
		}
		other := 1 - want
		if p.Reserved(want) < p.Reserved(other) {
			t.Fatalf("place %d: reserved %d/%d", i, p.Reserved(0), p.Reserved(1))
		}
	}
	if p.Reserved(0) != 512<<10 || p.Reserved(1) != 512<<10 || p.Clients() != 4 {
		t.Fatalf("reserved %d/%d clients %d", p.Reserved(0), p.Reserved(1), p.Clients())
	}

	// A large reservation still fits one server; the next copy fits the
	// other; the third fits nowhere.
	if _, err := p.Place("big1", "big1", 512<<10, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Place("big2", "big2", 512<<10, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Place("big3", "big3", 512<<10, nil); !errors.Is(err, ErrPoolAdmission) {
		t.Fatalf("err = %v", err)
	}
	// A refused placement reserves nothing.
	if p.Reserved(0)+p.Reserved(1) != 2<<20 {
		t.Fatalf("reserved %d/%d after refusal", p.Reserved(0), p.Reserved(1))
	}

	// Bad reservations and duplicate client names are refused.
	if _, err := p.Place("zero", "zero", 0, nil); err == nil {
		t.Fatal("zero reservation admitted")
	}
	p2, err := NewPool(s, nil, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Place("dup", "dup", 1<<10, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Place("dup", "dup", 1<<10, nil); err == nil {
		t.Fatal("duplicate client admitted")
	}

	if _, err := NewPool(s, nil, 0, cfg); err == nil {
		t.Fatal("empty pool built")
	}
	p.Stop()
	p2.Stop()
}
