package netswap

import (
	"math"
	"time"

	"nemesis/internal/obs"
	"nemesis/internal/sim"
	"nemesis/internal/stretchdrv"
	"nemesis/internal/vm"
)

// RemoteOptions tunes one client's RPC behaviour.
type RemoteOptions struct {
	// Window bounds the client's in-flight RPCs (pipelining): further
	// sends wait for a slot. Default 4.
	Window int
	// Timeout is the per-attempt reply deadline. It must comfortably
	// cover the server's disk service for a full write batch, or healthy
	// calls retransmit and the server does the work twice. Default 250 ms.
	Timeout time.Duration
	// MaxRetries bounds retransmissions per call; a negative value retries
	// forever (a domain that would rather stall than die). Default 8.
	// The zero value means the default; use a pointer-free sentinel of
	// 0 via DefaultRemoteOptions if 0 retries are really wanted.
	MaxRetries int
	// Backoff is the base retransmission delay, doubled per attempt
	// (capped at 64x). Default 10 ms.
	Backoff time.Duration
	// MaxBatch caps pages per write RPC; larger cleaning batches split
	// into multiple pipelined RPCs. Default 16.
	MaxBatch int
}

// DefaultRemoteOptions returns the defaults documented on RemoteOptions.
func DefaultRemoteOptions() RemoteOptions {
	return RemoteOptions{
		Window:     4,
		Timeout:    250 * time.Millisecond,
		MaxRetries: 8,
		Backoff:    10 * time.Millisecond,
		MaxBatch:   16,
	}
}

func (o *RemoteOptions) fillDefaults() {
	d := DefaultRemoteOptions()
	if o.Window < 1 {
		o.Window = d.Window
	}
	if o.Timeout <= 0 {
		o.Timeout = d.Timeout
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = d.MaxRetries
	}
	if o.Backoff <= 0 {
		o.Backoff = d.Backoff
	}
	if o.MaxBatch < 1 {
		o.MaxBatch = d.MaxBatch
	}
}

// RemoteStats counts one client's RPC activity.
type RemoteStats struct {
	RPCs        int64 // completed calls (reply received)
	Retries     int64 // retransmissions after a timeout
	Timeouts    int64 // attempt deadlines that expired
	LateReplies int64 // replies for attempts already given up on
	Failures    int64 // calls that exhausted their retry budget
	PagesRead   int64
	PagesSent   int64
	MaxInflight int // high-water mark of the request window
}

// call tracks one RPC through timeouts and retries.
type call struct {
	req      *request
	rep      *reply
	err      error
	id       uint64   // current attempt's ID; 0 = not in flight
	attempt  int      // attempts so far
	deadline sim.Time // current attempt's timeout instant
	resendAt sim.Time // backoff gate for the next attempt
	sentAt   sim.Time // current attempt's send instant
}

// RemoteBacking pages to the remote swap server over the fabric's link. It
// implements stretchdrv.Backing: reads are single-page RPCs, cleaning batches
// are merged into multi-page write RPCs (split at MaxBatch and pipelined
// through the in-flight window). Every wait happens on the calling domain's
// own simulated process, so remote stalls never leak across the QoS
// firewall.
type RemoteBacking struct {
	fab    *Fabric
	client string
	opt    RemoteOptions

	nextID   uint64
	pending  map[uint64]*call
	inflight int
	wake     *sim.Cond

	remote map[vm.VPN]bool // pages with a current remote copy

	Stats RemoteStats

	cRPCs, cRetries, cTimeouts, cLate *obs.Counter
	gInflight                         *obs.Gauge
	hRTT                              *obs.Histogram
}

const timeNever = sim.Time(math.MaxInt64)

// newRemoteBacking is called by the Fabric, which owns routing.
func newRemoteBacking(fab *Fabric, client, domName string, opt RemoteOptions) *RemoteBacking {
	opt.fillDefaults()
	reg := fab.reg
	return &RemoteBacking{
		fab:       fab,
		client:    client,
		opt:       opt,
		pending:   make(map[uint64]*call),
		wake:      sim.NewCond(fab.s),
		remote:    make(map[vm.VPN]bool),
		cRPCs:     reg.Counter("netswap", "rpcs", domName),
		cRetries:  reg.Counter("netswap", "retries", domName),
		cTimeouts: reg.Counter("netswap", "timeouts", domName),
		cLate:     reg.Counter("netswap", "late_replies", domName),
		gInflight: reg.Gauge("netswap", "inflight", domName),
		hRTT:      reg.Histogram("netswap", "rtt", domName),
	}
}

// Name implements stretchdrv.Backing.
func (r *RemoteBacking) Name() string { return "remote" }

// Options returns the client's effective RPC options.
func (r *RemoteBacking) Options() RemoteOptions { return r.opt }

// HasCopy implements stretchdrv.Backing.
func (r *RemoteBacking) HasCopy(va vm.VA) bool { return r.remote[vm.PageOf(va)] }

// Invalidate marks va's remote copy stale (a newer copy lives elsewhere —
// the tiered backing's local fallback path). The server-side blok stays
// allocated and is reused on the next write of the same page.
func (r *RemoteBacking) Invalidate(va vm.VA) { delete(r.remote, vm.PageOf(va)) }

// RemotePages returns the number of pages with current remote copies.
func (r *RemoteBacking) RemotePages() int { return len(r.remote) }

// deliver routes one arrived reply. Runs in scheduler context (link event).
func (r *RemoteBacking) deliver(rep *reply) {
	c, ok := r.pending[rep.ID]
	if !ok {
		r.Stats.LateReplies++ // timed-out attempt, or a duplicated frame
		r.cLate.Inc()
		return
	}
	delete(r.pending, rep.ID)
	c.id = 0
	r.inflight--
	r.gInflight.Set(int64(r.inflight))
	r.Stats.RPCs++
	r.cRPCs.Inc()
	r.hRTT.Observe(r.fab.s.Now().Sub(c.sentAt))
	if err := rep.err(); err != nil {
		c.err = err
	} else {
		c.rep = rep
	}
	r.wake.Broadcast()
}

// sendAttempt transmits the current attempt of c and arms its timeout.
func (r *RemoteBacking) sendAttempt(c *call) {
	r.nextID++
	c.id = r.nextID
	c.attempt++
	c.sentAt = r.fab.s.Now()
	c.deadline = c.sentAt.Add(r.opt.Timeout)
	req := *c.req // shallow copy so the retransmit carries its own ID
	req.ID = c.id
	r.pending[c.id] = c
	r.inflight++
	if r.inflight > r.Stats.MaxInflight {
		r.Stats.MaxInflight = r.inflight
	}
	r.gInflight.Set(int64(r.inflight))
	r.fab.toServer(&req)
}

// do drives a group of calls to completion from process p: it keeps up to
// Window attempts in flight (sharing the window with any concurrent calls on
// the same client), expires attempts at their deadlines, backs off
// exponentially between retries, and parks p whenever there is nothing to do
// but wait.
func (r *RemoteBacking) do(p *sim.Proc, calls []*call) error {
	for {
		now := r.fab.s.Now()
		live := 0
		next := timeNever
		for _, c := range calls {
			if c.rep != nil || c.err != nil {
				continue
			}
			live++
			if c.id != 0 && now >= c.deadline {
				// Attempt timed out: free the slot, decide on a retry.
				delete(r.pending, c.id)
				c.id = 0
				r.inflight--
				r.gInflight.Set(int64(r.inflight))
				r.Stats.Timeouts++
				r.cTimeouts.Inc()
				r.wake.Broadcast() // the freed slot may unblock a peer
				if r.opt.MaxRetries >= 0 && c.attempt > r.opt.MaxRetries {
					c.err = ErrRemoteTimeout
					r.Stats.Failures++
					live--
					continue
				}
				r.Stats.Retries++
				r.cRetries.Inc()
				shift := c.attempt - 1
				if shift > 6 {
					shift = 6
				}
				c.resendAt = now.Add(r.opt.Backoff << uint(shift))
			}
			if c.id == 0 && now >= c.resendAt && r.inflight < r.opt.Window {
				r.sendAttempt(c)
			}
			switch {
			case c.id != 0:
				if c.deadline < next {
					next = c.deadline
				}
			case c.resendAt > now:
				if c.resendAt < next {
					next = c.resendAt
				}
				// else: waiting for a window slot; a slot release
				// broadcasts the cond, no timer needed.
			}
		}
		if live == 0 {
			for _, c := range calls {
				if c.err != nil {
					return c.err
				}
			}
			return nil
		}
		if next == timeNever {
			r.wake.Wait(p)
		} else if d := next.Sub(r.fab.s.Now()); d > 0 {
			r.wake.WaitTimeout(p, d)
		}
	}
}

// ReadPage implements stretchdrv.Backing: one read RPC with retries. The
// fault span gains hops "net.out" (request wire + server queue, including
// any retries), "remote.store" (the server's disk service) and "net.back"
// (the reply wire) — net RTT versus remote disk service, exactly.
func (r *RemoteBacking) ReadPage(p *sim.Proc, va vm.VA, buf []byte, sp *obs.Span) error {
	sp.BeginHop("net.out")
	c := &call{req: &request{Client: r.client, Op: opRead, Flow: sp.EnsureFlow(), VPNs: []vm.VPN{vm.PageOf(va)}}}
	if err := r.do(p, []*call{c}); err != nil {
		return err
	}
	copy(buf, c.rep.Data)
	sp.SplitHop(c.rep.ServiceStart, "remote.store")
	sp.SplitHop(c.rep.ServiceEnd, "net.back")
	r.Stats.PagesRead++
	return nil
}

// WritePages implements stretchdrv.Backing: the batch is merged into
// multi-page write RPCs of up to MaxBatch pages each, pipelined through the
// in-flight window, and the pages are marked remote-current only when their
// RPC is acknowledged. Returns the server-side disk transaction count.
func (r *RemoteBacking) WritePages(p *sim.Proc, pages []stretchdrv.DirtyPage, sp *obs.Span) (int, error) {
	sp.BeginHop("net.out")
	flow := sp.EnsureFlow()
	var calls []*call
	for at := 0; at < len(pages); at += r.opt.MaxBatch {
		end := at + r.opt.MaxBatch
		if end > len(pages) {
			end = len(pages)
		}
		req := &request{Client: r.client, Op: opWrite, Flow: flow}
		for _, pg := range pages[at:end] {
			req.VPNs = append(req.VPNs, vm.PageOf(pg.VA))
			req.Data = append(req.Data, pg.Data...)
		}
		calls = append(calls, &call{req: req})
	}
	err := r.do(p, calls)
	txns := 0
	var last *reply
	for _, c := range calls {
		if c.rep == nil {
			continue
		}
		txns += c.rep.Txns
		for _, vpn := range c.req.VPNs {
			r.remote[vpn] = true
		}
		r.Stats.PagesSent += int64(len(c.req.VPNs))
		if last == nil || c.rep.ServiceEnd > last.ServiceEnd {
			last = c.rep
		}
	}
	if err != nil {
		return txns, err
	}
	if last != nil {
		sp.SplitHop(last.ServiceStart, "remote.store")
		sp.SplitHop(last.ServiceEnd, "net.back")
	}
	return txns, nil
}
