package netswap_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"nemesis/internal/netswap"
	"nemesis/internal/sim"
	"nemesis/internal/stretchdrv"
	"nemesis/internal/vm"
)

// page builds a page-sized buffer with a recognisable fill.
func page(fill byte) []byte {
	buf := make([]byte, vm.PageSize)
	for i := range buf {
		buf[i] = fill
	}
	return buf
}

// newFabric builds a fabric for tests, failing the test on error.
func newFabric(t *testing.T, s *sim.Simulator, cfg netswap.Config) *netswap.Fabric {
	t.Helper()
	fab, err := netswap.New(s, nil, cfg)
	if err != nil {
		t.Fatalf("netswap.New: %v", err)
	}
	return fab
}

// drive runs fn on a fresh simulated process, advancing the clock in bounded
// steps (the server's USD loop never idles, so draining the queue would spin
// forever), and fails the test if fn never finished.
func drive(t *testing.T, s *sim.Simulator, fn func(p *sim.Proc)) {
	t.Helper()
	done := false
	s.Spawn("test", func(p *sim.Proc) {
		fn(p)
		done = true
	})
	for i := 0; i < 1000 && !done; i++ {
		s.RunFor(time.Second)
	}
	if !done {
		t.Fatal("test process did not finish")
	}
}

func TestRemoteWriteReadRoundTrip(t *testing.T) {
	s := sim.New(1)
	fab := newFabric(t, s, netswap.DefaultConfig())
	defer fab.Stop()
	rb, err := fab.NewRemoteBacking("c1", "dom", nil)
	if err != nil {
		t.Fatalf("NewRemoteBacking: %v", err)
	}

	const pages = 40 // > MaxBatch, so the batch splits and pipelines
	var batch []stretchdrv.DirtyPage
	for i := 0; i < pages; i++ {
		va := vm.VA(0x1000000000 + i*vm.PageSize)
		batch = append(batch, stretchdrv.DirtyPage{VA: va, Data: page(byte(i + 1))})
	}
	drive(t, s, func(p *sim.Proc) {
		if rb.HasCopy(batch[0].VA) {
			t.Error("HasCopy true before any write")
		}
		txns, err := rb.WritePages(p, batch, nil)
		if err != nil {
			t.Fatalf("WritePages: %v", err)
		}
		if txns < 1 {
			t.Fatalf("WritePages reported %d txns", txns)
		}
		for i, pg := range batch {
			if !rb.HasCopy(pg.VA) {
				t.Fatalf("page %d missing after write", i)
			}
			buf := make([]byte, vm.PageSize)
			if err := rb.ReadPage(p, pg.VA, buf, nil); err != nil {
				t.Fatalf("ReadPage %d: %v", i, err)
			}
			if !bytes.Equal(buf, pg.Data) {
				t.Fatalf("page %d corrupted on round trip", i)
			}
		}
	})
	if rb.Stats.RPCs == 0 || rb.Stats.PagesSent != pages || rb.Stats.PagesRead != pages {
		t.Fatalf("stats off: %+v", rb.Stats)
	}
	// Retransmitted RPCs (a timeout racing a slow disk) may be serviced
	// twice; the server must have written at least every page once.
	if got := fab.Server.Stats.PagesWritten; got < pages {
		t.Fatalf("server wrote %d pages, want >= %d", got, pages)
	}
}

func TestRemoteWindowBound(t *testing.T) {
	s := sim.New(1)
	cfg := netswap.DefaultConfig()
	cfg.Remote.Window = 2
	cfg.Remote.MaxBatch = 2
	fab := newFabric(t, s, cfg)
	defer fab.Stop()
	rb, err := fab.NewRemoteBacking("c1", "dom", nil)
	if err != nil {
		t.Fatal(err)
	}
	var batch []stretchdrv.DirtyPage
	for i := 0; i < 32; i++ { // 16 RPCs through a window of 2
		va := vm.VA(0x1000000000 + i*vm.PageSize)
		batch = append(batch, stretchdrv.DirtyPage{VA: va, Data: page(byte(i))})
	}
	drive(t, s, func(p *sim.Proc) {
		if _, err := rb.WritePages(p, batch, nil); err != nil {
			t.Fatalf("WritePages: %v", err)
		}
	})
	if rb.Stats.MaxInflight > 2 {
		t.Fatalf("window of 2 reached %d in flight", rb.Stats.MaxInflight)
	}
	if rb.Stats.RPCs != 16 {
		t.Fatalf("RPCs = %d, want 16", rb.Stats.RPCs)
	}
}

func TestRemoteRetriesUnderLoss(t *testing.T) {
	s := sim.New(1)
	cfg := netswap.DefaultConfig()
	cfg.Link.DropProb = 0.3
	cfg.Remote.Timeout = 60 * time.Millisecond // > healthy RTT, so only drops retry
	cfg.Remote.Backoff = 5 * time.Millisecond
	fab := newFabric(t, s, cfg)
	defer fab.Stop()
	rb, err := fab.NewRemoteBacking("c1", "dom", nil)
	if err != nil {
		t.Fatal(err)
	}
	const pages = 64
	drive(t, s, func(p *sim.Proc) {
		for i := 0; i < pages; i++ {
			va := vm.VA(0x1000000000 + i*vm.PageSize)
			if _, err := rb.WritePages(p, []stretchdrv.DirtyPage{{VA: va, Data: page(byte(i))}}, nil); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
			buf := make([]byte, vm.PageSize)
			if err := rb.ReadPage(p, va, buf, nil); err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
			if buf[0] != byte(i) {
				t.Fatalf("read %d returned wrong page", i)
			}
		}
	})
	if rb.Stats.Retries == 0 {
		t.Fatal("30% loss produced no retries")
	}
	if rb.Stats.Failures != 0 {
		t.Fatalf("%d calls failed despite retry budget", rb.Stats.Failures)
	}
}

func TestRemoteTimeoutExhaustsBudget(t *testing.T) {
	s := sim.New(1)
	cfg := netswap.DefaultConfig()
	cfg.Remote.Timeout = 10 * time.Millisecond
	cfg.Remote.Backoff = time.Millisecond
	cfg.Remote.MaxRetries = 2
	fab := newFabric(t, s, cfg)
	defer fab.Stop()
	rb, err := fab.NewRemoteBacking("c1", "dom", nil)
	if err != nil {
		t.Fatal(err)
	}
	fab.SetOutage(true)
	drive(t, s, func(p *sim.Proc) {
		buf := make([]byte, vm.PageSize)
		err := rb.ReadPage(p, vm.VA(0x1000000000), buf, nil)
		if !errors.Is(err, netswap.ErrRemoteTimeout) {
			t.Fatalf("outage read returned %v, want ErrRemoteTimeout", err)
		}
	})
	if rb.Stats.Failures != 1 {
		t.Fatalf("Failures = %d, want 1", rb.Stats.Failures)
	}
}

func TestRemoteErrNoCopy(t *testing.T) {
	s := sim.New(1)
	fab := newFabric(t, s, netswap.DefaultConfig())
	defer fab.Stop()
	rb, err := fab.NewRemoteBacking("c1", "dom", nil)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, s, func(p *sim.Proc) {
		buf := make([]byte, vm.PageSize)
		err := rb.ReadPage(p, vm.VA(0x1000000000), buf, nil)
		if !errors.Is(err, netswap.ErrRemote) {
			t.Fatalf("read of unwritten page returned %v, want ErrRemote", err)
		}
	})
}

func TestRemoteClientsIsolated(t *testing.T) {
	s := sim.New(1)
	fab := newFabric(t, s, netswap.DefaultConfig())
	defer fab.Stop()
	a, err := fab.NewRemoteBacking("a", "doma", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fab.NewRemoteBacking("b", "domb", nil)
	if err != nil {
		t.Fatal(err)
	}
	va := vm.VA(0x1000000000)
	drive(t, s, func(p *sim.Proc) {
		if _, err := a.WritePages(p, []stretchdrv.DirtyPage{{VA: va, Data: page(0xAA)}}, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := b.WritePages(p, []stretchdrv.DirtyPage{{VA: va, Data: page(0xBB)}}, nil); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, vm.PageSize)
		if err := a.ReadPage(p, va, buf, nil); err != nil {
			t.Fatal(err)
		}
		if buf[0] != 0xAA {
			t.Fatalf("client a read %#x, want 0xAA: blok maps leaked across clients", buf[0])
		}
	})
}

func TestRemoteDeterministicUnderLoss(t *testing.T) {
	run := func() (netswap.RemoteStats, sim.Time) {
		s := sim.New(7)
		cfg := netswap.DefaultConfig()
		cfg.Link.DropProb = 0.2
		cfg.Link.DupProb = 0.05
		cfg.Remote.Timeout = 60 * time.Millisecond
		fab, err := netswap.New(s, nil, cfg)
		if err != nil {
			panic(err)
		}
		defer fab.Stop()
		rb, err := fab.NewRemoteBacking("c1", "dom", nil)
		if err != nil {
			panic(err)
		}
		var end sim.Time
		s.Spawn("t", func(p *sim.Proc) {
			for i := 0; i < 32; i++ {
				va := vm.VA(0x1000000000 + i*vm.PageSize)
				if _, err := rb.WritePages(p, []stretchdrv.DirtyPage{{VA: va, Data: page(byte(i))}}, nil); err != nil {
					panic(fmt.Sprintf("write %d: %v", i, err))
				}
			}
			end = s.Now()
		})
		for i := 0; i < 1000 && end == 0; i++ {
			s.RunFor(time.Second)
		}
		return rb.Stats, end
	}
	s1, e1 := run()
	s2, e2 := run()
	if s1 != s2 || e1 != e2 {
		t.Fatalf("identical seeds diverged:\n%+v @ %v\n%+v @ %v", s1, e1, s2, e2)
	}
	if s1.Retries == 0 {
		t.Fatal("lossy run recorded no retries")
	}
}
