package netswap_test

import (
	"testing"
	"time"

	"nemesis/internal/netswap"
	"nemesis/internal/sim"
)

// runLink drives n frames of size bytes through a fresh link with cfg and
// returns the delivery times.
func runLink(cfg netswap.LinkConfig, n, size int) []sim.Time {
	s := sim.New(1)
	l := netswap.NewLink(s, nil, cfg)
	var arrivals []sim.Time
	for i := 0; i < n; i++ {
		l.SendToServer(size, func() { arrivals = append(arrivals, s.Now()) })
	}
	s.RunUntilIdle(1 << 20)
	return arrivals
}

func TestLinkDeterminism(t *testing.T) {
	cfg := netswap.DefaultLinkConfig()
	cfg.Jitter = 50 * time.Microsecond
	cfg.DropProb = 0.2
	cfg.DupProb = 0.1
	a := runLink(cfg, 200, 4096)
	b := runLink(cfg, 200, 4096)
	if len(a) != len(b) {
		t.Fatalf("delivery counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	cfg.Seed = 99
	c := runLink(cfg, 200, 4096)
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical delivery schedules")
		}
	}
}

func TestLinkLatencyAndBandwidth(t *testing.T) {
	cfg := netswap.LinkConfig{Latency: time.Millisecond, BandwidthBps: 1_000_000, Seed: 1}
	// One 1000-byte frame: 1 ms transmission + 1 ms propagation.
	got := runLink(cfg, 1, 1000)
	if len(got) != 1 {
		t.Fatalf("want 1 delivery, got %d", len(got))
	}
	if want := sim.Time(2 * time.Millisecond); got[0] != want {
		t.Fatalf("delivery at %v, want %v", got[0], want)
	}
	// Two back-to-back frames serialise: the second arrives one
	// transmission time after the first.
	got = runLink(cfg, 2, 1000)
	if len(got) != 2 {
		t.Fatalf("want 2 deliveries, got %d", len(got))
	}
	if d := got[1].Sub(got[0]); d != time.Millisecond {
		t.Fatalf("serialisation gap %v, want 1ms", d)
	}
}

func TestLinkLossDupOutage(t *testing.T) {
	cfg := netswap.LinkConfig{Latency: time.Millisecond, DropProb: 1, Seed: 1}
	if got := runLink(cfg, 10, 100); len(got) != 0 {
		t.Fatalf("DropProb=1 delivered %d frames", len(got))
	}
	cfg = netswap.LinkConfig{Latency: time.Millisecond, DupProb: 1, Seed: 1}
	if got := runLink(cfg, 10, 100); len(got) != 20 {
		t.Fatalf("DupProb=1 delivered %d frames, want 20", len(got))
	}

	s := sim.New(1)
	l := netswap.NewLink(s, nil, netswap.LinkConfig{Latency: time.Millisecond, Seed: 1})
	delivered := 0
	l.SetOutage(true)
	l.SendToServer(100, func() { delivered++ })
	l.SetOutage(false)
	l.SendToServer(100, func() { delivered++ })
	s.RunUntilIdle(1000)
	if delivered != 1 {
		t.Fatalf("outage delivered %d frames, want 1", delivered)
	}
	if l.Stats.OutageDrop != 1 {
		t.Fatalf("OutageDrop = %d, want 1", l.Stats.OutageDrop)
	}
}
