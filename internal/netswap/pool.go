package netswap

import (
	"errors"
	"fmt"

	"nemesis/internal/obs"
	"nemesis/internal/sim"
)

// ErrPoolAdmission is returned when no server in a pool has enough
// unreserved store capacity for a new client's reservation.
var ErrPoolAdmission = errors.New("netswap: pool admission failed")

// Pool is a small cluster of independent swap servers (one fabric — link +
// server — each) with capacity-reserving admission: every client placement
// reserves a fixed number of store bytes on its server, and placements that
// would oversubscribe any server are refused outright. Under admission the
// servers can never thrash against promises they cannot keep, which is the
// property the cluster scenario audits.
type Pool struct {
	fabrics  []*Fabric
	reserved []int64
	clients  int
}

// NewPool builds n fabrics, each from its own copy of cfg. reg may be nil.
func NewPool(s *sim.Simulator, reg *obs.Registry, n int, cfg Config) (*Pool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("netswap: pool needs at least one server, got %d", n)
	}
	cfg.Server.fillDefaults() // so admission sees the real store capacity
	p := &Pool{reserved: make([]int64, n)}
	for i := 0; i < n; i++ {
		f, err := New(s, reg, cfg)
		if err != nil {
			return nil, err
		}
		p.fabrics = append(p.fabrics, f)
	}
	return p, nil
}

// Servers returns the number of fabrics in the pool.
func (p *Pool) Servers() int { return len(p.fabrics) }

// Fabric returns the i-th fabric (for tests and outage injection).
func (p *Pool) Fabric(i int) *Fabric { return p.fabrics[i] }

// Reserved returns the bytes reserved on the i-th server.
func (p *Pool) Reserved(i int) int64 { return p.reserved[i] }

// Clients returns how many placements have been admitted.
func (p *Pool) Clients() int { return p.clients }

// Place admits a client reserving reserveBytes of store on the
// least-reserved server (ties to the lowest index, so placement is
// deterministic) and returns its remote backing. It fails if every server
// would be oversubscribed, or if the client name is already taken on the
// chosen server.
func (p *Pool) Place(client, domName string, reserveBytes int64, opt *RemoteOptions) (*RemoteBacking, error) {
	if reserveBytes <= 0 {
		return nil, fmt.Errorf("netswap: placement of %q needs a positive reservation, got %d", client, reserveBytes)
	}
	best := -1
	for i := range p.fabrics {
		if p.reserved[i]+reserveBytes > p.fabrics[i].Config().Server.StoreBytes {
			continue
		}
		if best < 0 || p.reserved[i] < p.reserved[best] {
			best = i
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("%w: %q needs %d bytes but every server is full", ErrPoolAdmission, client, reserveBytes)
	}
	rb, err := p.fabrics[best].NewRemoteBacking(client, domName, opt)
	if err != nil {
		return nil, err
	}
	p.reserved[best] += reserveBytes
	p.clients++
	return rb, nil
}

// SetOutage blackholes (or restores) every link in the pool.
func (p *Pool) SetOutage(down bool) {
	for _, f := range p.fabrics {
		f.SetOutage(down)
	}
}

// Stop shuts every server down so an idle-drain run terminates.
func (p *Pool) Stop() {
	for _, f := range p.fabrics {
		f.Stop()
	}
}
