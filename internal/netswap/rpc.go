package netswap

import (
	"errors"
	"fmt"

	"nemesis/internal/obs"
	"nemesis/internal/sim"
	"nemesis/internal/vm"
)

// Errors surfaced by the remote paging protocol.
var (
	// ErrRemoteTimeout is returned when a call exhausts its retry budget
	// without a reply (a dead or partitioned server).
	ErrRemoteTimeout = errors.New("netswap: remote call timed out")
	// ErrRemote wraps a definitive error reply from the server (store
	// full, no copy); retrying cannot help.
	ErrRemote = errors.New("netswap: server error")
)

// op distinguishes RPC directions.
type op uint8

const (
	opRead op = iota
	opWrite
)

// request is one page-service RPC travelling client -> server. Reads carry a
// single VPN; writes carry a batch of VPNs with their page images
// concatenated in Data (the "batched multi-page write merged into a single
// RPC" of the design).
type request struct {
	ID     uint64
	Client string
	Op     op
	// Flow is the originating fault span's cross-machine flow ID (zero when
	// the client fault is untraced). The server echoes it into its own
	// service span, so a merged cluster trace can link the two sides.
	Flow uint64
	VPNs []vm.VPN
	Data []byte

	// ssp is the server-side service span, attached by Server.handle when
	// the server has a registry. It never crosses the wire: each delivered
	// attempt is its own copy of the request, so a retransmitted RPC opens
	// its own span — the server honestly does the work twice.
	ssp *obs.Span
}

// reply is the server's answer. ServiceStart/ServiceEnd bracket the remote
// store's disk service (on the shared simulated timeline), so the client can
// split its fault span into network RTT versus remote disk service exactly.
type reply struct {
	ID     uint64
	Client string
	Flow   uint64 // echoed from the request
	Err    string // "" = ok; definitive server-side failure otherwise
	Data   []byte // read payload
	Txns   int    // disk transactions the server merged the batch into

	ServiceStart, ServiceEnd sim.Time
}

// rpcHeaderBytes approximates the on-wire framing overhead per message.
const rpcHeaderBytes = 64

// wireSize returns the simulated frame size of a request.
func (r *request) wireSize() int { return rpcHeaderBytes + 8*len(r.VPNs) + len(r.Data) }

// wireSize returns the simulated frame size of a reply.
func (r *reply) wireSize() int { return rpcHeaderBytes + len(r.Data) }

// err converts a reply's error string into a wrapped Go error.
func (r *reply) err() error {
	if r.Err == "" {
		return nil
	}
	return fmt.Errorf("%w: %s", ErrRemote, r.Err)
}
