package netswap

import (
	"errors"
	"time"

	"nemesis/internal/obs"
	"nemesis/internal/sim"
	"nemesis/internal/stretchdrv"
	"nemesis/internal/vm"
)

// TieredOptions tunes the local/remote composition and its degradation
// behaviour.
type TieredOptions struct {
	// Deadline is the per-remote-operation latency budget; an operation
	// that errors or overruns it counts as a miss. Default 100 ms.
	Deadline time.Duration
	// MissBudget is how many consecutive misses trip degradation.
	// Default 3.
	MissBudget int
	// Cooldown is how long the backing stays on the local tier before
	// probing the remote again. Default 2 s.
	Cooldown time.Duration
	// RetryEvery paces re-attempts of remote reads that have no local
	// copy to fall back on (only the faulting domain sleeps). Default
	// 100 ms.
	RetryEvery time.Duration
	// NoPromote disables promote-on-fault (writing a remote-read page
	// into the local tier so the next fault on it is fast).
	NoPromote bool
}

// DefaultTieredOptions returns the defaults documented on TieredOptions.
func DefaultTieredOptions() TieredOptions {
	return TieredOptions{
		Deadline:   100 * time.Millisecond,
		MissBudget: 3,
		Cooldown:   2 * time.Second,
		RetryEvery: 100 * time.Millisecond,
	}
}

func (o *TieredOptions) fillDefaults() {
	d := DefaultTieredOptions()
	if o.Deadline <= 0 {
		o.Deadline = d.Deadline
	}
	if o.MissBudget < 1 {
		o.MissBudget = d.MissBudget
	}
	if o.Cooldown <= 0 {
		o.Cooldown = d.Cooldown
	}
	if o.RetryEvery <= 0 {
		o.RetryEvery = d.RetryEvery
	}
}

// TieredStats counts tier traffic and degradation events.
type TieredStats struct {
	LocalHits       int64 // reads served by the local tier
	RemoteReads     int64 // reads served by the remote tier
	Promotions      int64 // remote-read pages copied into the local tier
	PromoteSkips    int64 // promotions skipped (local tier full)
	Demotions       int64 // cleaned pages demoted to the remote tier
	LocalFallbacks  int64 // pages cleaned to the local tier while degraded
	DeadlineMisses  int64 // remote operations that errored or overran
	DegradedEntries int64 // times the backing fell over to the local tier
	ReadRetryWaits  int64 // sleeps waiting for a remote-only page
}

// TieredBacking composes a small fast local swap tier with the large remote
// tier. Cleaning demotes pages to the remote store (demote-on-clean) while
// the local tier caches a copy for as long as it has room; a fault that must
// read remotely promotes the page
// into the local tier so re-faults stay fast (promote-on-fault). When the
// remote misses its deadline budget the backing degrades: cleaning falls
// over to the local tier until a cooldown expires, so the domain keeps its
// paging QoS through a remote outage — and only a fault on a page whose sole
// copy is remote ever stalls, on the faulting domain's own process.
type TieredBacking struct {
	s       *sim.Simulator
	reg     *obs.Registry
	domName string
	local   *stretchdrv.SwapBacking
	remote  *RemoteBacking
	opt     TieredOptions

	misses        int
	degraded      bool
	degradedUntil sim.Time
	probing       bool // cooldown expired; next remote success restores

	Stats TieredStats

	cLocalHits, cRemoteReads, cPromotions *obs.Counter
	cDemotions, cFallbacks, cDegraded     *obs.Counter
	gDegraded                             *obs.Gauge
}

// NewTieredBacking composes local and remote. reg may be nil.
func NewTieredBacking(s *sim.Simulator, reg *obs.Registry, local *stretchdrv.SwapBacking, remote *RemoteBacking, domName string, opt TieredOptions) *TieredBacking {
	opt.fillDefaults()
	return &TieredBacking{
		s:            s,
		reg:          reg,
		domName:      domName,
		local:        local,
		remote:       remote,
		opt:          opt,
		cLocalHits:   reg.Counter("tier", "local_hits", domName),
		cRemoteReads: reg.Counter("tier", "remote_reads", domName),
		cPromotions:  reg.Counter("tier", "promotions", domName),
		cDemotions:   reg.Counter("tier", "demotions", domName),
		cFallbacks:   reg.Counter("tier", "local_fallbacks", domName),
		cDegraded:    reg.Counter("tier", "degraded_entries", domName),
		gDegraded:    reg.Gauge("tier", "degraded", domName),
	}
}

// Name implements stretchdrv.Backing.
func (t *TieredBacking) Name() string { return "tiered" }

// Local exposes the local tier.
func (t *TieredBacking) Local() *stretchdrv.SwapBacking { return t.local }

// Remote exposes the remote tier's client.
func (t *TieredBacking) Remote() *RemoteBacking { return t.remote }

// Degraded reports whether the backing is currently running on the local
// tier only.
func (t *TieredBacking) Degraded() bool { return t.degradedNow() }

// HasCopy implements stretchdrv.Backing.
func (t *TieredBacking) HasCopy(va vm.VA) bool {
	return t.local.HasCopy(va) || t.remote.HasCopy(va)
}

// degradedNow evaluates (and expires) the degradation state.
func (t *TieredBacking) degradedNow() bool {
	if t.degraded && t.s.Now() >= t.degradedUntil {
		// Cooldown over: probe the remote again.
		t.degraded = false
		t.misses = 0
		t.probing = true
		t.gDegraded.Set(0)
		t.reg.Audit(obs.AuditNetswapProbe, t.domName, "", 0, "cooldown expired")
	}
	return t.degraded
}

// noteRemote folds one remote operation's outcome into the deadline budget.
func (t *TieredBacking) noteRemote(start sim.Time, err error) {
	miss := err != nil || t.s.Now().Sub(start) > t.opt.Deadline
	if !miss {
		t.misses = 0
		if t.probing {
			t.probing = false
			t.reg.Audit(obs.AuditNetswapRestore, t.domName, "", 0, "remote healthy again")
		}
		return
	}
	t.Stats.DeadlineMisses++
	t.misses++
	if t.misses >= t.opt.MissBudget && !t.degraded {
		t.degraded = true
		t.degradedUntil = t.s.Now().Add(t.opt.Cooldown)
		t.Stats.DegradedEntries++
		t.cDegraded.Inc()
		t.gDegraded.Set(1)
		t.reg.Audit(obs.AuditNetswapDegrade, t.domName, "", 0, "deadline budget exhausted")
	}
}

// ReadPage implements stretchdrv.Backing: local tier first (fast), remote
// otherwise — retrying forever, because the page exists nowhere else. Only
// the faulting domain's process waits.
func (t *TieredBacking) ReadPage(p *sim.Proc, va vm.VA, buf []byte, sp *obs.Span) error {
	if t.local.HasCopy(va) {
		t.Stats.LocalHits++
		t.cLocalHits.Inc()
		return t.local.ReadPage(p, va, buf, sp)
	}
	for {
		start := t.s.Now()
		err := t.remote.ReadPage(p, va, buf, sp)
		t.noteRemote(start, err)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrRemoteTimeout) {
			return err // definitive server error; retrying cannot help
		}
		t.Stats.ReadRetryWaits++
		p.Sleep(t.opt.RetryEvery)
	}
	t.Stats.RemoteReads++
	t.cRemoteReads.Inc()
	if !t.opt.NoPromote {
		t.promote(p, va, buf)
	}
	return nil
}

// promote writes a remote-read page into the local tier so the next fault on
// it stays off the network. A full local tier just skips the promotion.
func (t *TieredBacking) promote(p *sim.Proc, va vm.VA, buf []byte) {
	data := make([]byte, len(buf))
	copy(data, buf)
	if _, err := t.local.WritePages(p, []stretchdrv.DirtyPage{{VA: va, Data: data}}, nil); err != nil {
		t.Stats.PromoteSkips++
		return
	}
	t.Stats.Promotions++
	t.cPromotions.Inc()
}

// WritePages implements stretchdrv.Backing. Healthy: the batch demotes to
// the remote tier (one merged RPC chain), and the local tier keeps a
// refreshed cache copy while it has room — so reads, and any later remote
// outage, stay local. Degraded (or on a remote failure): the batch falls
// over to the local tier and the remote copies are invalidated. A full
// local tier falls back to the remote as a last resort.
func (t *TieredBacking) WritePages(p *sim.Proc, pages []stretchdrv.DirtyPage, sp *obs.Span) (int, error) {
	if !t.degradedNow() {
		start := t.s.Now()
		txns, err := t.remote.WritePages(p, pages, sp)
		t.noteRemote(start, err)
		if err == nil {
			t.Stats.Demotions += int64(len(pages))
			t.cDemotions.Add(int64(len(pages)))
			// Refresh the local cache copies. If the small tier is full the
			// whole batch must be dropped locally — a stale local copy would
			// otherwise shadow the newer remote one on the next fault.
			if _, lerr := t.local.WritePages(p, pages, nil); lerr != nil {
				for _, pg := range pages {
					t.local.Drop(pg.VA)
				}
			}
			return txns, nil
		}
	}
	txns, err := t.local.WritePages(p, pages, sp)
	if err == nil {
		for _, pg := range pages {
			t.remote.Invalidate(pg.VA)
		}
		t.Stats.LocalFallbacks += int64(len(pages))
		t.cFallbacks.Add(int64(len(pages)))
		return txns, nil
	}
	// Local tier exhausted: the remote is the only store left, degraded or
	// not — block (with retries) on the faulting domain's own process.
	txns2, err2 := t.remote.WritePages(p, pages, sp)
	if err2 == nil {
		for _, pg := range pages {
			t.local.Drop(pg.VA)
		}
		t.Stats.Demotions += int64(len(pages))
		t.cDemotions.Add(int64(len(pages)))
	}
	return txns + txns2, err2
}
