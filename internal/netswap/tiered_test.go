package netswap_test

import (
	"errors"
	"testing"
	"time"

	"nemesis/internal/atropos"
	"nemesis/internal/disk"
	"nemesis/internal/netswap"
	"nemesis/internal/sfs"
	"nemesis/internal/sim"
	"nemesis/internal/stretchdrv"
	"nemesis/internal/usd"
	"nemesis/internal/vm"
)

// tieredRig is a fabric + local swap tier + tiered backing on one simulator,
// built without the full core.System so tests can poke the tiers directly.
type tieredRig struct {
	s     *sim.Simulator
	fab   *netswap.Fabric
	local *stretchdrv.SwapBacking
	tb    *netswap.TieredBacking
	stop  func()
}

// newLocalTier builds a SwapBacking of the given page capacity on its own
// disk + USD machine (the client machine's local swap device). The returned
// stop function halts that USD so idle-drain runs terminate.
func newLocalTier(t *testing.T, s *sim.Simulator, pages int64) (*stretchdrv.SwapBacking, func()) {
	t.Helper()
	d := disk.New(s, disk.VP3221())
	u := usd.New(s, d)
	u.SlackEnabled = true
	fs := sfs.New(u, usd.Extent{Start: 0, Count: d.Geom.TotalBlocks})
	q := atropos.QoS{P: 100 * time.Millisecond, S: 90 * time.Millisecond, X: true, L: 10 * time.Millisecond}
	file, err := fs.CreateSwapFile("local-tier", pages*vm.PageSize, q, 1)
	if err != nil {
		t.Fatalf("local tier: %v", err)
	}
	return stretchdrv.NewSwapBacking(file), u.Stop
}

func newTieredRig(t *testing.T, cfg netswap.Config, localPages int64, topt netswap.TieredOptions) *tieredRig {
	t.Helper()
	s := sim.New(1)
	fab := newFabric(t, s, cfg)
	local, stopLocal := newLocalTier(t, s, localPages)
	rb, err := fab.NewRemoteBacking("c1", "dom", nil)
	if err != nil {
		t.Fatal(err)
	}
	tb := netswap.NewTieredBacking(s, nil, local, rb, "dom", topt)
	return &tieredRig{s: s, fab: fab, local: local, tb: tb, stop: func() {
		stopLocal()
		fab.Stop()
	}}
}

func TestTieredDemoteOnCleanPromoteOnFault(t *testing.T) {
	rig := newTieredRig(t, netswap.DefaultConfig(), 64, netswap.TieredOptions{})
	defer rig.stop()
	va := vm.VA(0x1000000000)
	drive(t, rig.s, func(p *sim.Proc) {
		// Clean a page: healthy path demotes it to the remote tier while the
		// local tier keeps a cache copy.
		if _, err := rig.tb.WritePages(p, []stretchdrv.DirtyPage{{VA: va, Data: page(0x5A)}}, nil); err != nil {
			t.Fatalf("WritePages: %v", err)
		}
		if !rig.local.HasCopy(va) {
			t.Fatal("demoted page lost its local cache copy")
		}
		if !rig.tb.Remote().HasCopy(va) {
			t.Fatal("demoted page missing from the remote tier")
		}
		// Fault it back: a local hit, no network.
		buf := make([]byte, vm.PageSize)
		if err := rig.tb.ReadPage(p, va, buf, nil); err != nil {
			t.Fatalf("ReadPage: %v", err)
		}
		if buf[0] != 0x5A {
			t.Fatalf("round trip returned %#x", buf[0])
		}
		// Discard the local cache copy (what a full tier does): the next
		// fault reads remotely and promotes the page back into the tier.
		rig.local.Drop(va)
		if err := rig.tb.ReadPage(p, va, buf, nil); err != nil {
			t.Fatalf("remote ReadPage: %v", err)
		}
		if buf[0] != 0x5A {
			t.Fatalf("remote round trip returned %#x", buf[0])
		}
		if !rig.local.HasCopy(va) {
			t.Fatal("remote read did not promote the page locally")
		}
		// Re-fault: a local hit again.
		if err := rig.tb.ReadPage(p, va, buf, nil); err != nil {
			t.Fatalf("local re-read: %v", err)
		}
	})
	st := rig.tb.Stats
	if st.Demotions != 1 || st.RemoteReads != 1 || st.Promotions != 1 || st.LocalHits != 2 {
		t.Fatalf("stats off: %+v", st)
	}
}

func TestTieredDegradesAndRecovers(t *testing.T) {
	cfg := netswap.DefaultConfig()
	cfg.Remote.Timeout = 60 * time.Millisecond // > healthy RTT; outage fails in ~120 ms
	cfg.Remote.Backoff = time.Millisecond
	cfg.Remote.MaxRetries = 1
	topt := netswap.TieredOptions{
		Deadline:   100 * time.Millisecond, // healthy ops (~12-40 ms) stay inside
		MissBudget: 2,
		Cooldown:   500 * time.Millisecond,
	}
	rig := newTieredRig(t, cfg, 64, topt)
	defer rig.stop()
	drive(t, rig.s, func(p *sim.Proc) {
		write := func(i int) error {
			va := vm.VA(0x1000000000 + i*vm.PageSize)
			_, err := rig.tb.WritePages(p, []stretchdrv.DirtyPage{{VA: va, Data: page(byte(i))}}, nil)
			return err
		}
		if err := write(0); err != nil {
			t.Fatalf("healthy write: %v", err)
		}
		if rig.tb.Degraded() {
			t.Fatal("degraded after a healthy write")
		}

		// Outage: writes keep succeeding by falling over to the local
		// tier, and the backing trips into degraded mode.
		rig.fab.SetOutage(true)
		for i := 1; i <= 4; i++ {
			if err := write(i); err != nil {
				t.Fatalf("outage write %d: %v", i, err)
			}
		}
		if !rig.tb.Degraded() {
			t.Fatal("outage did not trip degradation")
		}
		if rig.tb.Stats.DegradedEntries == 0 || rig.tb.Stats.LocalFallbacks == 0 {
			t.Fatalf("stats off: %+v", rig.tb.Stats)
		}
		// Degraded pages must read back from the local tier during the
		// outage.
		buf := make([]byte, vm.PageSize)
		if err := rig.tb.ReadPage(p, vm.VA(0x1000000000+2*vm.PageSize), buf, nil); err != nil {
			t.Fatalf("degraded read: %v", err)
		}
		if buf[0] != 2 {
			t.Fatalf("degraded read returned %#x", buf[0])
		}

		// Heal the link, wait out the cooldown: the next clean probes the
		// remote again and demotes normally.
		rig.fab.SetOutage(false)
		p.Sleep(time.Second)
		if rig.tb.Degraded() {
			t.Fatal("still degraded after cooldown")
		}
		if err := write(9); err != nil {
			t.Fatalf("recovered write: %v", err)
		}
		if !rig.tb.Remote().HasCopy(vm.VA(0x1000000000 + 9*vm.PageSize)) {
			t.Fatal("recovered write did not reach the remote tier")
		}
	})
}

func TestTieredRemoteOnlyReadRetriesThroughOutage(t *testing.T) {
	cfg := netswap.DefaultConfig()
	cfg.Remote.Timeout = 20 * time.Millisecond
	cfg.Remote.MaxRetries = 1
	topt := netswap.TieredOptions{RetryEvery: 20 * time.Millisecond}
	rig := newTieredRig(t, cfg, 64, topt)
	defer rig.stop()
	va := vm.VA(0x1000000000)
	drive(t, rig.s, func(p *sim.Proc) {
		if _, err := rig.tb.WritePages(p, []stretchdrv.DirtyPage{{VA: va, Data: page(0x77)}}, nil); err != nil {
			t.Fatal(err)
		}
		// Discard the local cache copy so the sole copy is remote, then take
		// the link down and read: the faulting process must retry (stalling
		// only itself) until the link heals.
		rig.local.Drop(va)
		rig.fab.SetOutage(true)
		rig.s.After(300*time.Millisecond, func() { rig.fab.SetOutage(false) })
		start := rig.s.Now()
		buf := make([]byte, vm.PageSize)
		if err := rig.tb.ReadPage(p, va, buf, nil); err != nil {
			t.Fatalf("read through outage: %v", err)
		}
		if buf[0] != 0x77 {
			t.Fatalf("read returned %#x", buf[0])
		}
		if waited := rig.s.Now().Sub(start); waited < 300*time.Millisecond {
			t.Fatalf("read finished in %v, before the outage ended", waited)
		}
	})
	if rig.tb.Stats.ReadRetryWaits == 0 {
		t.Fatal("no retry waits recorded")
	}
}

func TestTieredDefinitiveRemoteError(t *testing.T) {
	rig := newTieredRig(t, netswap.DefaultConfig(), 64, netswap.TieredOptions{})
	defer rig.stop()
	drive(t, rig.s, func(p *sim.Proc) {
		buf := make([]byte, vm.PageSize)
		err := rig.tb.ReadPage(p, vm.VA(0x1000000000), buf, nil)
		if !errors.Is(err, netswap.ErrRemote) {
			t.Fatalf("read of nonexistent page returned %v, want ErrRemote", err)
		}
	})
}
