package baseline

import (
	"fmt"
	"time"

	"nemesis/internal/atropos"
	"nemesis/internal/core"
	"nemesis/internal/disk"
	"nemesis/internal/domain"
	"nemesis/internal/mem"
	"nemesis/internal/sim"
	"nemesis/internal/stretchdrv"
	"nemesis/internal/usd"
	"nemesis/internal/vm"
)

// ExternalPager models the microkernel arrangement on the left of the
// paper's Fig. 2: a single shared pager domain services every client's
// faults first-come first-served, from one global frame pool with global
// FIFO replacement, over one disk contract. It exists to *measure* the QoS
// crosstalk the paper argues self-paging eliminates: a client's paging
// performance depends on every other client's behaviour.
type ExternalPager struct {
	sys *core.System
	dom *domain.Domain
	ch  *usd.Channel

	blok  *stretchdrv.BlokAllocator
	base  int64 // swap extent base block
	pages map[pageKey]*extPage
	fifo  []*extPage
	queue []*pageReq
	wake  *sim.Cond

	// Reusable transfer requests: handle runs serially on the pager
	// thread and Do is synchronous, so one of each suffices.
	wreq, rreq *usd.Request

	// ServiceCost is the pager's per-request CPU cost.
	ServiceCost time.Duration
	// Stats
	Faults, PageIns, PageOuts, Evictions int64
}

type pageKey struct {
	sid vm.StretchID
	vpn vm.VPN
}

type extPage struct {
	key    pageKey
	va     vm.VA
	pfn    mem.PFN
	mapped bool
	blok   int64
	onDisk bool
}

type pageReq struct {
	f    *vm.Fault
	done *sim.Cond
	ok   bool
	fin  bool
}

// NewExternalPager creates the pager domain with a pool of poolFrames
// frames, a swap file of swapBytes and one aggregate disk contract.
func NewExternalPager(sys *core.System, poolFrames int, swapBytes int64, diskQoS atropos.QoS) (*ExternalPager, error) {
	dom, err := sys.NewDomain("extpager",
		atropos.QoS{P: 100 * time.Millisecond, S: 30 * time.Millisecond, X: true},
		mem.Contract{Guaranteed: uint64(poolFrames)})
	if err != nil {
		return nil, err
	}
	swap, err := sys.SFS.CreateSwapFile("extpager-swap", swapBytes, diskQoS, 1)
	if err != nil {
		return nil, err
	}
	blokBlocks := int64(vm.PageSize / disk.BlockSize)
	ep := &ExternalPager{
		sys:         sys,
		dom:         dom,
		ch:          swap.Channel(),
		blok:        stretchdrv.NewBlokAllocator(swap.Blocks()/blokBlocks, blokBlocks),
		base:        swap.Extent().Start,
		pages:       make(map[pageKey]*extPage),
		wake:        sim.NewCond(sys.Sim),
		ServiceCost: 20 * time.Microsecond,
	}
	dom.Go("server", func(t *domain.Thread) {
		if err := core.PreallocateFrames(t, poolFrames); err != nil {
			return
		}
		ep.serve(t)
	})
	return ep, nil
}

// Domain returns the pager's domain.
func (ep *ExternalPager) Domain() *domain.Domain { return ep.dom }

// QueueLen returns the number of queued fault requests.
func (ep *ExternalPager) QueueLen() int { return len(ep.queue) }

// NewClientStretch allocates a stretch for client dom, backed by the
// external pager (the pager's protection domain receives the meta right so
// it can install mappings on the client's behalf).
func (ep *ExternalPager) NewClientStretch(client *domain.Domain, size uint64) (*vm.Stretch, error) {
	st, err := client.NewStretch(size)
	if err != nil {
		return nil, err
	}
	ep.sys.TS.GrantInitial(ep.dom.PD(), st.ID(), vm.Read|vm.Write|vm.Meta)
	client.Bind(st, &extDriver{ep: ep})
	return st, nil
}

// extDriver is the client-side stub: every fault is forwarded to the
// external pager (there is nothing the client can do locally — it owns no
// frames).
type extDriver struct {
	ep *ExternalPager
}

func (d *extDriver) DriverName() string { return "external-pager-stub" }

func (d *extDriver) SatisfyFault(p *sim.Proc, f *vm.Fault, canIDC bool) domain.Result {
	if f.Class != vm.PageFault {
		return domain.Failure
	}
	if !canIDC {
		return domain.Retry // IPC to the pager needs a worker thread
	}
	req := &pageReq{f: f, done: sim.NewCond(d.ep.sys.Sim)}
	d.ep.queue = append(d.ep.queue, req)
	d.ep.wake.Signal()
	for !req.fin {
		req.done.Wait(p)
	}
	if req.ok {
		return domain.Success
	}
	return domain.Failure
}

func (d *extDriver) Relinquish(p *sim.Proc, k int) int { return 0 }

// serve is the pager's main loop: strict FCFS over all clients' faults.
func (ep *ExternalPager) serve(t *domain.Thread) {
	for {
		if len(ep.queue) == 0 {
			ep.wake.Wait(t.Proc())
			continue
		}
		req := ep.queue[0]
		ep.queue = ep.queue[1:]
		t.Compute(ep.ServiceCost)
		req.ok = ep.handle(t, req.f)
		req.fin = true
		req.done.Broadcast()
	}
}

// handle resolves one fault from the global pool.
func (ep *ExternalPager) handle(t *domain.Thread, f *vm.Fault) bool {
	ep.Faults++
	sys := ep.sys
	key := pageKey{f.SID, vm.PageOf(f.VA)}
	pg, known := ep.pages[key]
	if !known {
		pg = &extPage{key: key, va: vm.PageOf(f.VA).Base(), blok: -1}
		ep.pages[key] = pg
	}

	// Get a frame: pool first, then global FIFO eviction (any client's
	// page may be the victim — crosstalk by design).
	pfn, ok := ep.freeFrame()
	if !ok {
		victim := ep.fifo[0]
		ep.fifo = ep.fifo[1:]
		vpfn, dirty, err := sys.TS.Unmap(ep.dom.PD(), ep.dom.ID(), victim.va)
		if err != nil {
			return false
		}
		ep.Evictions++
		if dirty || !victim.onDisk {
			if victim.blok < 0 {
				b, err := ep.blok.Alloc()
				if err != nil {
					return false
				}
				victim.blok = b
			}
			if ep.wreq == nil {
				ep.wreq = &usd.Request{Op: disk.Write, Count: int(ep.blok.BlokBlocks()), Data: make([]byte, vm.PageSize)}
			}
			r := ep.wreq
			r.Block, r.Err = ep.base+ep.blok.BlockOffset(victim.blok), nil
			copy(r.Data, sys.Store.Frame(vpfn))
			if _, err := ep.ch.Do(t.Proc(), r); err != nil {
				return false
			}
			victim.onDisk = true
			ep.PageOuts++
		}
		victim.mapped = false
		pfn = vpfn
	}

	if pg.onDisk {
		if ep.rreq == nil {
			ep.rreq = &usd.Request{Op: disk.Read, Count: int(ep.blok.BlokBlocks())}
		}
		r := ep.rreq
		r.Block, r.Err = ep.base+ep.blok.BlockOffset(pg.blok), nil
		done, err := ep.ch.Do(t.Proc(), r)
		if err != nil {
			return false
		}
		copy(sys.Store.Frame(pfn), done.Data)
		ep.PageIns++
	} else {
		sys.Store.Zero(pfn)
	}
	if err := sys.TS.Map(ep.dom.PD(), ep.dom.ID(), pg.va, pfn, vm.DefaultAttr()); err != nil {
		return false
	}
	pg.pfn = pfn
	pg.mapped = true
	ep.fifo = append(ep.fifo, pg)
	return true
}

// freeFrame returns an unmapped frame from the pager's pool.
func (ep *ExternalPager) freeFrame() (mem.PFN, bool) {
	for _, e := range ep.dom.MemClient().Stack().Entries() {
		if s, err := ep.sys.RamTab.State(e.PFN); err == nil && s == mem.Unused {
			return e.PFN, true
		}
	}
	return 0, false
}

// String summarises pager activity.
func (ep *ExternalPager) String() string {
	return fmt.Sprintf("extpager: faults=%d ins=%d outs=%d evict=%d", ep.Faults, ep.PageIns, ep.PageOuts, ep.Evictions)
}
