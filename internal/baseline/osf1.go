// Package baseline implements the systems the paper compares against or
// argues about: a cost model of the monolithic OSF1 V4.0 VM paths (the
// comparison column of Table 1), and an external-pager system in the
// microkernel style of Fig. 2 (one shared pager domain, FCFS fault service)
// used to measure the QoS crosstalk self-paging eliminates.
package baseline

import "time"

// OSF1Costs models the monolithic-kernel VM operation paths of OSF1 V4.0 on
// the same PC164 hardware and linear page-table structure. Components are
// calibrated so that composed operations land on the paper's measured
// values; the *composition* (what each benchmark path executes) is what the
// model encodes.
type OSF1Costs struct {
	// SyscallFixed is the fixed cost of an mprotect-style system call
	// (trap, argument validation, VM map lookup).
	SyscallFixed time.Duration
	// PerPage is the marginal per-page cost inside one range operation —
	// OSF1 has an optimised range path, so this is small.
	PerPage time.Duration
	// SignalDeliver is kernel signal delivery to a user handler (the
	// "trap" benchmark).
	SignalDeliver time.Duration
	// SignalReturn is sigreturn back into the faulted context.
	SignalReturn time.Duration
	// AlternatePenalty is the extra cost per page when protections
	// actually change back and forth ("if OSF1 is benchmarked using the
	// Nemesis semantics of alternate protections, the cost increases to
	// ~75 us"): TLB/PTE invalidation work the same-value path skips.
	AlternatePenalty time.Duration
}

// DefaultOSF1Costs returns the calibration used for Table 1.
func DefaultOSF1Costs() OSF1Costs {
	return OSF1Costs{
		SyscallFixed:     3342 * time.Nanosecond,
		PerPage:          18 * time.Nanosecond,
		SignalDeliver:    10330 * time.Nanosecond,
		SignalReturn:     7000 * time.Nanosecond,
		AlternatePenalty: 700 * time.Nanosecond,
	}
}

// Prot returns the cost of (un)protecting n contiguous pages with the
// same-value fast path the paper's default benchmark hits.
func (c OSF1Costs) Prot(n int) time.Duration {
	return c.SyscallFixed + time.Duration(n)*c.PerPage
}

// ProtAlternate returns the cost when protections genuinely alternate
// (Nemesis semantics), paying per-page invalidation work.
func (c OSF1Costs) ProtAlternate(n int) time.Duration {
	return c.SyscallFixed + time.Duration(n)*(c.PerPage+c.AlternatePenalty)
}

// Trap returns the user-space fault-handling round trip (signal delivery;
// the handler body is the benchmark's own).
func (c OSF1Costs) Trap() time.Duration { return c.SignalDeliver }

// Appel1 is prot1 + trap + unprot: access a protected page, and in the
// handler unprotect it and protect another, then sigreturn.
func (c OSF1Costs) Appel1() time.Duration {
	return c.SignalDeliver + 2*c.Prot(1) + c.SignalReturn
}

// Appel2 is protN + trap + unprot per page over 100 pages: the initial
// range protect amortises, then each page pays a fault, an unprotect and a
// return.
func (c OSF1Costs) Appel2() time.Duration {
	perPageProt := c.Prot(100) / 100
	return perPageProt + c.SignalDeliver + c.Prot(1) + c.SignalReturn/2
}
