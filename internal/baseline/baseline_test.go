package baseline

import (
	"testing"
	"time"

	"nemesis/internal/atropos"
	"nemesis/internal/core"
	"nemesis/internal/domain"
	"nemesis/internal/mem"
	"nemesis/internal/sim"
	"nemesis/internal/vm"
)

func TestOSF1CostsMatchPaper(t *testing.T) {
	c := DefaultOSF1Costs()
	us := func(d time.Duration) float64 { return d.Seconds() * 1e6 }
	if got := us(c.Prot(1)); got < 3.30 || got > 3.42 {
		t.Errorf("prot1 = %.2f, want ~3.36", got)
	}
	if got := us(c.Prot(100)); got < 5.08 || got > 5.20 {
		t.Errorf("prot100 = %.2f, want ~5.14", got)
	}
	if got := us(c.Trap()); got != 10.33 {
		t.Errorf("trap = %.2f, want 10.33", got)
	}
	if got := us(c.Appel1()); got < 23 || got > 25 {
		t.Errorf("appel1 = %.2f, want ~24.08", got)
	}
	if got := us(c.Appel2()); got < 16 || got > 20 {
		t.Errorf("appel2 = %.2f, want ~19.12", got)
	}
	// "the cost increases to ~75us" with alternate protections.
	if got := us(c.ProtAlternate(100)); got < 70 || got > 80 {
		t.Errorf("alternate prot100 = %.2f, want ~75", got)
	}
	// Range path scales gently; alternate path scales steeply.
	if c.Prot(100)-c.Prot(1) > time.Duration(2)*time.Microsecond {
		t.Error("range path not optimised")
	}
	if c.ProtAlternate(100) < 10*c.Prot(100) {
		t.Error("alternate semantics should be an order of magnitude worse")
	}
}

func newExtSys(t *testing.T) (*core.System, *ExternalPager) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.MemoryFrames = 256
	sys := core.New(cfg)
	ep, err := NewExternalPager(sys, 8, 16<<20,
		atropos.QoS{P: 250 * time.Millisecond, S: 125 * time.Millisecond, L: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return sys, ep
}

func TestExternalPagerServesClients(t *testing.T) {
	sys, ep := newExtSys(t)
	client, err := sys.NewDomain("client",
		atropos.QoS{P: 100 * time.Millisecond, S: 20 * time.Millisecond, X: true},
		mem.Contract{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := ep.NewClientStretch(client, 16*vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	verified := false
	client.Go("main", func(th *domain.Thread) {
		data := make([]byte, vm.PageSize)
		for pg := 0; pg < 16; pg++ {
			for i := range data {
				data[i] = byte(pg + i)
			}
			if err := th.WriteAt(st.PageBase(pg), data); err != nil {
				t.Error(err)
				return
			}
		}
		for pg := 0; pg < 16; pg++ {
			if err := th.ReadAt(st.PageBase(pg), data); err != nil {
				t.Error(err)
				return
			}
			for i := range data {
				if data[i] != byte(pg+i) {
					t.Errorf("page %d corrupted", pg)
					return
				}
			}
		}
		verified = true
	})
	sys.Run(30 * time.Second)
	if !verified {
		t.Fatal("client did not verify")
	}
	// 16 pages through an 8-frame pool: evictions and page-ins happened.
	if ep.Evictions == 0 || ep.PageIns == 0 || ep.PageOuts == 0 {
		t.Fatalf("pager stats: %s", ep.String())
	}
	if ep.Faults < 16 {
		t.Fatalf("faults = %d", ep.Faults)
	}
	sys.Shutdown()
}

func TestExternalPagerSharedPoolCrosstalk(t *testing.T) {
	// Two clients; the second floods the pool; the first's pages get
	// evicted by the global FIFO even though it did nothing wrong.
	sys, ep := newExtSys(t)
	mk := func(name string) (*domain.Domain, *vm.Stretch) {
		d, err := sys.NewDomain(name,
			atropos.QoS{P: 100 * time.Millisecond, S: 20 * time.Millisecond, X: true},
			mem.Contract{})
		if err != nil {
			t.Fatal(err)
		}
		st, err := ep.NewClientStretch(d, 16*vm.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		return d, st
	}
	victim, vst := mk("victim")
	aggressor, ast := mk("aggressor")

	victim.Go("main", func(th *domain.Thread) {
		// Touch 4 pages once, then wait.
		th.Touch(vst.Base(), 4*vm.PageSize, vm.AccessWrite)
		th.Sleep(20 * time.Second)
	})
	aggressor.Go("main", func(th *domain.Thread) {
		th.Sleep(2 * time.Second) // let the victim settle first
		for {
			if err := th.Touch(ast.Base(), 16*vm.PageSize, vm.AccessWrite); err != nil {
				return
			}
		}
	})
	sys.Run(15 * time.Second)
	// The victim's pages were evicted by the aggressor's flood: its VAs
	// are no longer mapped.
	stillMapped := 0
	for pg := 0; pg < 4; pg++ {
		if _, _, err := sys.TS.Trans(vst.PageBase(pg)); err == nil {
			stillMapped++
		}
	}
	if stillMapped > 0 {
		t.Fatalf("%d victim pages survived the shared-pool flood; expected global FIFO to evict them all", stillMapped)
	}
	sys.Shutdown()
}

func TestExternalPagerStubRejectsNonPageFaults(t *testing.T) {
	sys, ep := newExtSys(t)
	client, _ := sys.NewDomain("c",
		atropos.QoS{P: 100 * time.Millisecond, S: 20 * time.Millisecond, X: true},
		mem.Contract{})
	st, _ := ep.NewClientStretch(client, vm.PageSize)
	drv := client.DriverFor(st.ID())
	var res domain.Result
	sys.Sim.Spawn("probe", func(p *sim.Proc) {
		res = drv.SatisfyFault(p, &vm.Fault{VA: st.Base(), Class: vm.ProtectionFault, SID: st.ID()}, true)
	})
	sys.Run(time.Second)
	if res != domain.Failure {
		t.Fatalf("result = %v, want failure", res)
	}
	if drv.Relinquish(nil, 3) != 0 {
		t.Fatal("stub relinquished frames it does not own")
	}
	if drv.DriverName() == "" {
		t.Fatal("empty driver name")
	}
	sys.Shutdown()
}
