package core

import (
	"reflect"
	"testing"
	"time"

	"nemesis/internal/domain"
	"nemesis/internal/mem"
	"nemesis/internal/stretchdrv"
	"nemesis/internal/vm"
)

// warmPattern is the byte written to page pg offset i during the warm phase.
func warmPattern(pg, i int) byte { return byte((pg*31 + i*7) % 251) }

// warmWorld boots a small system with a 2-frame paged domain and warms it:
// a thread writes a distinctive pattern across 32 pages (forcing dozens of
// evictions to swap) and exits, leaving the world quiesced and forkable.
func warmWorld(t *testing.T) (*System, *domain.Domain, *vm.Stretch, *stretchdrv.Paged) {
	t.Helper()
	sys := smallSystem()
	d, err := sys.NewDomain("app", cpuShare(), mem.Contract{Guaranteed: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, drv, err := sys.NewPagedStretch(d, 32*vm.PageSize, 64*vm.PageSize, diskShare())
	if err != nil {
		t.Fatal(err)
	}
	d.Go("warm", func(th *domain.Thread) {
		if err := PreallocateFrames(th, 2); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, vm.PageSize)
		for pg := 0; pg < 32; pg++ {
			for i := range buf {
				buf[i] = warmPattern(pg, i)
			}
			if err := th.WriteAt(st.PageBase(pg), buf); err != nil {
				t.Errorf("warm write page %d: %v", pg, err)
				return
			}
		}
	})
	sys.Run(30 * time.Second)
	if drv.Stats.PageOuts == 0 {
		t.Fatal("warm phase did not exercise eviction")
	}
	return sys, d, st, drv
}

// measure runs the identical post-warm workload on a world: read every warm
// page back (verifying the pattern survived the fork), then overwrite half of
// them, forcing further paging traffic.
func measure(t *testing.T, sys *System, d *domain.Domain, st *vm.Stretch) {
	t.Helper()
	var verified bool
	d.Go("measure", func(th *domain.Thread) {
		buf := make([]byte, vm.PageSize)
		for pg := 0; pg < 32; pg++ {
			if err := th.ReadAt(st.PageBase(pg), buf); err != nil {
				t.Errorf("measure read page %d: %v", pg, err)
				return
			}
			for i := range buf {
				if buf[i] != warmPattern(pg, i) {
					t.Errorf("page %d byte %d = %d, want %d", pg, i, buf[i], warmPattern(pg, i))
					return
				}
			}
		}
		for pg := 0; pg < 16; pg++ {
			for i := range buf {
				buf[i] = warmPattern(pg, i) ^ 0xFF
			}
			if err := th.WriteAt(st.PageBase(pg), buf); err != nil {
				t.Errorf("measure write page %d: %v", pg, err)
				return
			}
		}
		verified = true
	})
	sys.Run(30 * time.Second)
	if !verified {
		t.Fatal("measure thread did not finish")
	}
}

// worldOutcome is everything the measure phase observed about one world.
type worldOutcome struct {
	now        int64
	delta      int64 // events dispatched during the measure phase
	domStats   domain.Stats
	drvStats   stretchdrv.PagerStats
	usdEventsN int
}

func outcome(sys *System, d *domain.Domain, drv *stretchdrv.Paged, base int64) worldOutcome {
	return worldOutcome{
		now:        int64(sys.Sim.Now()),
		delta:      sys.Sim.Dispatched() - base,
		domStats:   d.Stats(),
		drvStats:   drv.Stats,
		usdEventsN: len(sys.USDLog.Events()),
	}
}

// TestForkByteIdentity is the core fidelity test: a forked warm world's
// future must be byte-identical to the future the same world would have had
// without forking, and the parent must be unperturbed by the fork.
func TestForkByteIdentity(t *testing.T) {
	// Control: warm then measure, no fork anywhere.
	ctl, ctlD, ctlSt, ctlDrv := warmWorld(t)
	ctlBase := ctl.Sim.Dispatched()
	measure(t, ctl, ctlD, ctlSt)
	want := outcome(ctl, ctlD, ctlDrv, ctlBase)

	// Fork a second, identically warmed world; measure the fork AND the
	// parent.
	sys, d, st, drv := warmWorld(t)
	snap, err := sys.Fork()
	if err != nil {
		t.Fatal(err)
	}
	fd := snap.Dom[d]
	fst := snap.Stretch[st]
	fdrv, ok := snap.Driver[drv].(*stretchdrv.Paged)
	if fd == nil || fst == nil || !ok {
		t.Fatalf("snapshot maps incomplete: dom=%v stretch=%v drv=%v", fd, fst, snap.Driver[drv])
	}
	if snap.Stats.FrameBytes == 0 || snap.Stats.SharedChunks == 0 {
		t.Fatalf("fork stats implausible: %+v", snap.Stats)
	}

	forkBase := snap.Sys.Sim.Dispatched()
	measure(t, snap.Sys, fd, fst)
	got := outcome(snap.Sys, fd, fdrv, forkBase)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("forked world diverged from cold world:\n got %+v\nwant %+v", got, want)
	}
	if !reflect.DeepEqual(snap.Sys.USDLog.Events(), ctl.USDLog.Events()) {
		t.Error("forked USD trace differs from cold trace")
	}

	parentBase := sys.Sim.Dispatched()
	measure(t, sys, d, st)
	got = outcome(sys, d, drv, parentBase)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parent world perturbed by fork:\n got %+v\nwant %+v", got, want)
	}
	if !reflect.DeepEqual(sys.USDLog.Events(), ctl.USDLog.Events()) {
		t.Error("parent USD trace differs from cold trace")
	}

	ctl.Shutdown()
	sys.Shutdown()
	snap.Sys.Shutdown()
}

// TestForkIsolation: after a fork, writes in the child must never be visible
// in the parent and vice versa, including data that round-trips through the
// copy-on-write disk.
func TestForkIsolation(t *testing.T) {
	sys, d, st, _ := warmWorld(t)
	snap, err := sys.Fork()
	if err != nil {
		t.Fatal(err)
	}
	fd, fst := snap.Dom[d], snap.Stretch[st]

	// Child overwrites every page (dirtying swap blocks via eviction), then
	// reads them back; the parent then re-reads the original pattern.
	var childOK bool
	fd.Go("scribble", func(th *domain.Thread) {
		buf := make([]byte, vm.PageSize)
		for pg := 0; pg < 32; pg++ {
			for i := range buf {
				buf[i] = byte((pg + i) % 253)
			}
			if err := th.WriteAt(fst.PageBase(pg), buf); err != nil {
				t.Errorf("child write page %d: %v", pg, err)
				return
			}
		}
		for pg := 0; pg < 32; pg++ {
			if err := th.ReadAt(fst.PageBase(pg), buf); err != nil {
				t.Errorf("child read page %d: %v", pg, err)
				return
			}
			for i := range buf {
				if buf[i] != byte((pg+i)%253) {
					t.Errorf("child page %d byte %d corrupted", pg, i)
					return
				}
			}
		}
		childOK = true
	})
	snap.Sys.Run(60 * time.Second)
	if !childOK {
		t.Fatal("child thread did not finish")
	}

	var parentOK bool
	d.Go("verify", func(th *domain.Thread) {
		buf := make([]byte, vm.PageSize)
		for pg := 0; pg < 32; pg++ {
			if err := th.ReadAt(st.PageBase(pg), buf); err != nil {
				t.Errorf("parent read page %d: %v", pg, err)
				return
			}
			for i := range buf {
				if buf[i] != warmPattern(pg, i) {
					t.Errorf("parent page %d byte %d = %d, want %d — child write leaked", pg, i, buf[i], warmPattern(pg, i))
					return
				}
			}
		}
		parentOK = true
	})
	sys.Run(60 * time.Second)
	if !parentOK {
		t.Fatal("parent thread did not finish")
	}

	sys.Shutdown()
	snap.Sys.Shutdown()
}

// TestForkPreconditions: forking with live workload threads or mid-simulation
// must fail loudly, and the world must stay usable afterwards.
func TestForkPreconditions(t *testing.T) {
	sys := smallSystem()
	d, _ := sys.NewDomain("app", cpuShare(), mem.Contract{Guaranteed: 4})
	st, _, _ := sys.NewPhysicalStretch(d, 4*vm.PageSize)
	d.Go("spin", func(th *domain.Thread) {
		for i := 0; i < 1000; i++ {
			if err := th.Touch(st.Base(), vm.PageSize, vm.AccessWrite); err != nil {
				return
			}
		}
	})
	// The spin thread is still live: fork must refuse.
	if _, err := sys.Fork(); err == nil {
		t.Fatal("Fork succeeded with a live workload thread")
	}
	sys.Run(10 * time.Second)
	// Quiesced now: fork must succeed.
	snap, err := sys.Fork()
	if err != nil {
		t.Fatal(err)
	}
	snap.Sys.Shutdown()
	sys.Shutdown()
}
