package core

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nemesis/internal/domain"
	"nemesis/internal/mem"
	"nemesis/internal/vm"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// startChurn launches a paged domain writing then reading `pages` pages, but
// does not run the simulator — the caller starts all domains first so they
// interleave deterministically.
func startChurn(t *testing.T, sys *System, name string, pages int, done *bool) {
	t.Helper()
	d, err := sys.NewDomain(name, cpuShare(), mem.Contract{Guaranteed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Half the usual disk share so two domains fit under admission.
	dq := diskShare()
	dq.S /= 2
	st, _, err := sys.NewPagedStretch(d, uint64(pages)*vm.PageSize, int64(4*pages)*vm.PageSize, dq)
	if err != nil {
		t.Fatal(err)
	}
	d.Go("main", func(th *domain.Thread) {
		if err := PreallocateFrames(th, 2); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, vm.PageSize)
		for pg := 0; pg < pages; pg++ {
			buf[0] = byte(pg)
			if err := th.WriteAt(st.PageBase(pg), buf); err != nil {
				t.Errorf("%s write page %d: %v", name, pg, err)
				return
			}
		}
		for pg := 0; pg < pages; pg++ {
			if err := th.ReadAt(st.PageBase(pg), buf); err != nil {
				t.Errorf("%s read page %d: %v", name, pg, err)
				return
			}
		}
		*done = true
	})
}

// TestTopTableGolden pins the exact WriteTopTable rendering for a seeded
// two-domain run. Any drift in fault counts, paging traffic, latency
// quantiles, span accounting or the footer format shows up as a diff.
// Regenerate with `go test -run TopTableGolden -update` only when a
// deliberate behavioural or format change is intended.
func TestTopTableGolden(t *testing.T) {
	sys := telemetrySystem()
	var doneA, doneB bool
	startChurn(t, sys, "alpha", 12, &doneA)
	startChurn(t, sys, "beta", 8, &doneB)
	sys.Run(60 * time.Second)
	if !doneA || !doneB {
		t.Fatalf("workloads incomplete: alpha=%v beta=%v", doneA, doneB)
	}

	var sb strings.Builder
	if err := sys.WriteTopTable(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	sys.Shutdown()
	sys.RunUntilIdle(1 << 22)

	checkGolden(t, filepath.Join("testdata", "toptable.golden"), got)
}

// TestTopJSONGolden pins the machine-readable top dump (nemesis-top -json)
// for the same seeded two-domain run as the table golden: rows, histogram
// snapshots and the embedded rollup all drift visibly.
func TestTopJSONGolden(t *testing.T) {
	sys := telemetrySystem()
	var doneA, doneB bool
	startChurn(t, sys, "alpha", 12, &doneA)
	startChurn(t, sys, "beta", 8, &doneB)
	sys.Run(60 * time.Second)
	if !doneA || !doneB {
		t.Fatalf("workloads incomplete: alpha=%v beta=%v", doneA, doneB)
	}

	var sb strings.Builder
	if err := sys.WriteTopJSON(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	sys.Shutdown()
	sys.RunUntilIdle(1 << 22)

	checkGolden(t, filepath.Join("testdata", "topjson.golden"), got)
}

// checkGolden compares got against the golden file, rewriting it under
// -update.
func checkGolden(t *testing.T, path, got string) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s:\n%s", path, got)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to generate): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s\n got:\n%s\nwant:\n%s", path, got, string(want))
	}
}
