package core

import (
	"errors"
	"testing"
	"time"

	"nemesis/internal/atropos"
	"nemesis/internal/domain"
	"nemesis/internal/mem"
	"nemesis/internal/stretchdrv"
	"nemesis/internal/vm"
)

func ms(n int64) time.Duration { return time.Duration(n) * time.Millisecond }

// smallSystem returns a system with a modest memory so tests run fast.
func smallSystem() *System {
	cfg := DefaultConfig()
	cfg.MemoryFrames = 64 // 512 KB
	return New(cfg)
}

func cpuShare() atropos.QoS {
	return atropos.QoS{P: ms(100), S: ms(20), X: true, L: 0}
}

func diskShare() atropos.QoS {
	return atropos.QoS{P: ms(250), S: ms(200), L: ms(10)}
}

func TestNewDomainAdmission(t *testing.T) {
	sys := smallSystem()
	d, err := sys.NewDomain("app", cpuShare(), mem.Contract{Guaranteed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if d.ID() != 1 || d.Name() != "app" {
		t.Fatalf("id=%d name=%q", d.ID(), d.Name())
	}
	if sys.Domain(1) != d || sys.Domain(99) != nil {
		t.Fatal("Domain lookup")
	}
	if len(sys.Domains()) != 1 {
		t.Fatal("Domains")
	}
	// Overcommitted guarantee rejected, and partial registrations undone.
	if _, err := sys.NewDomain("hog", cpuShare(), mem.Contract{Guaranteed: 100}); !errors.Is(err, mem.ErrOverbooked) {
		t.Fatalf("err = %v", err)
	}
	// CPU name was released on rollback: re-admission works.
	if _, err := sys.NewDomain("hog", cpuShare(), mem.Contract{Guaranteed: 8}); err != nil {
		t.Fatalf("rollback leaked CPU admission: %v", err)
	}
}

// TestPhysicalStretchDemandZero exercises the whole fast path: allocate,
// bind, touch, verify zero-fill and frame accounting.
func TestPhysicalStretchDemandZero(t *testing.T) {
	sys := smallSystem()
	d, _ := sys.NewDomain("app", cpuShare(), mem.Contract{Guaranteed: 8})
	st, drv, err := sys.NewPhysicalStretch(d, 4*vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	var checked bool
	d.Go("main", func(th *domain.Thread) {
		if err := PreallocateFrames(th, 4); err != nil {
			t.Error(err)
			return
		}
		if err := th.Touch(st.Base(), 4*vm.PageSize, vm.AccessRead); err != nil {
			t.Error(err)
			return
		}
		b, err := th.ReadByteAt(st.Base() + 12345)
		if err != nil || b != 0 {
			t.Errorf("demand-zero byte = %d, %v", b, err)
			return
		}
		checked = true
	})
	sys.Run(5 * time.Second)
	if !checked {
		t.Fatal("thread did not finish")
	}
	if got := d.MemClient().Allocated(); got != 4 {
		t.Fatalf("frames = %d", got)
	}
	stats := d.Stats()
	if stats.PageFaults != 4 {
		t.Fatalf("page faults = %d, want 4", stats.PageFaults)
	}
	if stats.FastPath != 4 || stats.WorkerPath != 0 {
		t.Fatalf("fast=%d worker=%d; preallocated frames should all fast-path", stats.FastPath, stats.WorkerPath)
	}
	if drv.Stats.Faults != 4 {
		t.Fatalf("driver faults = %d", drv.Stats.Faults)
	}
	sys.Shutdown()
	sys.RunUntilIdle(1 << 20)
}

// TestPhysicalStretchWorkerPath: with no preallocated frames the fast path
// must Retry and the worker must fetch frames from the allocator.
func TestPhysicalStretchWorkerPath(t *testing.T) {
	sys := smallSystem()
	d, _ := sys.NewDomain("app", cpuShare(), mem.Contract{Guaranteed: 8})
	st, _, _ := sys.NewPhysicalStretch(d, 2*vm.PageSize)
	d.Go("main", func(th *domain.Thread) {
		th.Touch(st.Base(), 2*vm.PageSize, vm.AccessWrite)
	})
	sys.Run(time.Second)
	stats := d.Stats()
	if stats.WorkerPath != 2 || stats.FastPath != 0 {
		t.Fatalf("fast=%d worker=%d", stats.FastPath, stats.WorkerPath)
	}
	sys.Shutdown()
	sys.RunUntilIdle(1 << 20)
}

// TestPagedStretchSwapIntegrity is the core correctness test of the whole
// reproduction: a domain with 2 physical frames writes a distinctive
// pattern across a 64-page stretch (forcing dozens of evictions to swap),
// then reads everything back and verifies every byte survived the round
// trips through the USD and the simulated disk.
func TestPagedStretchSwapIntegrity(t *testing.T) {
	sys := smallSystem()
	d, _ := sys.NewDomain("app", cpuShare(), mem.Contract{Guaranteed: 2})
	st, drv, err := sys.NewPagedStretch(d, 64*vm.PageSize, 128*vm.PageSize, diskShare())
	if err != nil {
		t.Fatal(err)
	}
	pattern := func(i int) byte { return byte((i*7 + i/vm.PageSize) % 251) }
	var verified bool
	d.Go("main", func(th *domain.Thread) {
		if err := PreallocateFrames(th, 2); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, vm.PageSize)
		for pg := 0; pg < 64; pg++ {
			for i := range buf {
				buf[i] = pattern(pg*vm.PageSize + i)
			}
			if err := th.WriteAt(st.PageBase(pg), buf); err != nil {
				t.Errorf("write page %d: %v", pg, err)
				return
			}
		}
		for pg := 0; pg < 64; pg++ {
			if err := th.ReadAt(st.PageBase(pg), buf); err != nil {
				t.Errorf("read page %d: %v", pg, err)
				return
			}
			for i := range buf {
				if buf[i] != pattern(pg*vm.PageSize+i) {
					t.Errorf("page %d byte %d = %d, want %d", pg, i, buf[i], pattern(pg*vm.PageSize+i))
					return
				}
			}
		}
		verified = true
	})
	sys.Run(60 * time.Second)
	if !verified {
		t.Fatal("verification did not complete")
	}
	if drv.Stats.PageOuts < 60 {
		t.Fatalf("PageOuts = %d; eviction barely exercised", drv.Stats.PageOuts)
	}
	if drv.Stats.PageIns < 60 {
		t.Fatalf("PageIns = %d", drv.Stats.PageIns)
	}
	if d.MemClient().Allocated() != 2 {
		t.Fatalf("domain holds %d frames, contracted 2", d.MemClient().Allocated())
	}
	if drv.ResidentPages() > 2 {
		t.Fatalf("resident = %d with 2 frames", drv.ResidentPages())
	}
	sys.Shutdown()
	sys.RunUntilIdle(1 << 22)
}

// TestForgetfulDriverNeverPagesIn: the Fig. 8 stretch driver writes out
// but never reads back.
func TestForgetfulDriverNeverPagesIn(t *testing.T) {
	sys := smallSystem()
	d, _ := sys.NewDomain("app", cpuShare(), mem.Contract{Guaranteed: 2})
	st, gdrv, err := sys.NewStretch(d, PagerSpec{
		Kind:      KindPaged,
		Size:      16 * vm.PageSize,
		SwapBytes: 64 * vm.PageSize,
		DiskQoS:   diskShare(),
		Writeback: stretchdrv.WritebackForgetful,
	})
	if err != nil {
		t.Fatal(err)
	}
	drv := gdrv.(*stretchdrv.Paged)
	d.Go("main", func(th *domain.Thread) {
		PreallocateFrames(th, 2)
		for pass := 0; pass < 3; pass++ {
			if err := th.Touch(st.Base(), 16*vm.PageSize, vm.AccessWrite); err != nil {
				t.Error(err)
				return
			}
		}
	})
	sys.Run(30 * time.Second)
	if drv.Stats.PageIns != 0 {
		t.Fatalf("forgetful driver paged in %d times", drv.Stats.PageIns)
	}
	if drv.Stats.PageOuts < 30 {
		t.Fatalf("PageOuts = %d", drv.Stats.PageOuts)
	}
	sys.Shutdown()
	sys.RunUntilIdle(1 << 22)
}

// TestNailedStretchNeverFaults: after binding, accesses are fault-free.
func TestNailedStretchNeverFaults(t *testing.T) {
	sys := smallSystem()
	d, _ := sys.NewDomain("app", cpuShare(), mem.Contract{Guaranteed: 8})
	var st *vm.Stretch
	d.Go("main", func(th *domain.Thread) {
		var err error
		st, _, err = sys.NewNailedStretch(th, 4*vm.PageSize)
		if err != nil {
			t.Error(err)
			return
		}
		base := d.Stats().Faults
		if err := th.Touch(st.Base(), 4*vm.PageSize, vm.AccessWrite); err != nil {
			t.Error(err)
			return
		}
		if d.Stats().Faults != base {
			t.Errorf("nailed stretch faulted %d times", d.Stats().Faults-base)
		}
	})
	sys.Run(5 * time.Second)
	if st == nil {
		t.Fatal("stretch not created")
	}
	// Frames are nailed in the RamTab.
	pfn, _, err := sys.TS.Trans(st.Base())
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := sys.RamTab.State(pfn); s != mem.Nailed {
		t.Fatalf("state = %v", s)
	}
	sys.Shutdown()
	sys.RunUntilIdle(1 << 20)
}

// TestProtectionFaultKillsDomain: no safety net.
func TestProtectionFaultKillsDomain(t *testing.T) {
	sys := smallSystem()
	victim, _ := sys.NewDomain("victim", cpuShare(), mem.Contract{Guaranteed: 4})
	other, _ := sys.NewDomain("other", cpuShare(), mem.Contract{Guaranteed: 4})
	st, _, _ := sys.NewPhysicalStretch(victim, vm.PageSize)
	reachedAfter := false
	// other's protection domain has no rights on victim's stretch. The
	// kill unwinds the intruding thread mid-call, so code after the touch
	// never runs.
	other.Go("intruder", func(th *domain.Thread) {
		th.Touch(st.Base(), 1, vm.AccessRead)
		reachedAfter = true
	})
	sys.Run(time.Second)
	if reachedAfter {
		t.Fatal("intruding thread survived the fault")
	}
	if !other.Killed() {
		t.Fatal("intruder survived an unhandled protection fault")
	}
	if victim.Killed() {
		t.Fatal("victim killed")
	}
	sys.Shutdown()
	sys.RunUntilIdle(1 << 20)
}

// TestCustomFaultHandler: overriding the protection fault type (the appel
// benchmark pattern) rescues the thread.
func TestCustomFaultHandler(t *testing.T) {
	sys := smallSystem()
	d, _ := sys.NewDomain("app", cpuShare(), mem.Contract{Guaranteed: 4})
	st, _, _ := sys.NewPhysicalStretch(d, vm.PageSize)
	// Remove write permission via the PD path, install a handler that
	// regrants it on fault.
	handled := 0
	d.SetFaultHandler(vm.ProtectionFault, func(th *domain.Thread, f *vm.Fault) bool {
		handled++
		sys.TS.GrantInitial(d.PD(), st.ID(), vm.Read|vm.Write|vm.Meta)
		return true
	})
	var err2 error
	d.Go("main", func(th *domain.Thread) {
		PreallocateFrames(th, 1)
		th.Touch(st.Base(), 1, vm.AccessWrite) // map the page first
		sys.TS.GrantInitial(d.PD(), st.ID(), vm.Read|vm.Meta)
		err2 = th.Touch(st.Base(), 1, vm.AccessWrite)
	})
	sys.Run(time.Second)
	if err2 != nil {
		t.Fatalf("touch with handler: %v", err2)
	}
	if handled != 1 {
		t.Fatalf("handler ran %d times", handled)
	}
	if d.Killed() {
		t.Fatal("domain killed despite handler")
	}
	sys.Shutdown()
	sys.RunUntilIdle(1 << 20)
}

// TestRevocationEndToEnd: a hog with optimistic frames gets them revoked
// through the full domain/MMEntry/driver path, cleaning dirty pages to swap.
func TestRevocationEndToEnd(t *testing.T) {
	sys := smallSystem() // 64 frames
	hog, _ := sys.NewDomain("hog", cpuShare(), mem.Contract{Guaranteed: 4, Optimistic: 60})
	hogSt, hogDrv, _ := sys.NewPagedStretch(hog, 60*vm.PageSize, 128*vm.PageSize, atropos.QoS{P: ms(250), S: ms(100), L: ms(10)})
	hog.Go("main", func(th *domain.Thread) {
		// Touch 30 pages: allocates ~30 frames (4 guaranteed + optimistic).
		if err := th.Touch(hogSt.Base(), 30*vm.PageSize, vm.AccessWrite); err != nil {
			t.Error(err)
		}
	})
	sys.Run(5 * time.Second)
	if hog.MemClient().Allocated() < 20 {
		t.Fatalf("hog only got %d frames", hog.MemClient().Allocated())
	}

	// Now a needy domain claims its guarantee; free memory is 64-30-...
	// enough pressure comes from a large guarantee.
	needy, _ := sys.NewDomain("needy", cpuShare(), mem.Contract{Guaranteed: 50})
	var got int
	needy.Go("main", func(th *domain.Thread) {
		for i := 0; i < 50; i++ {
			if _, err := needy.MemClient().AllocFrame(th.Proc()); err != nil {
				t.Errorf("needy alloc %d: %v", i, err)
				return
			}
			got++
		}
	})
	sys.Run(30 * time.Second)
	if got != 50 {
		t.Fatalf("needy got %d frames", got)
	}
	if hog.Killed() {
		t.Fatal("cooperative hog was killed")
	}
	if hog.MemClient().Allocated() > 14 {
		t.Fatalf("hog still holds %d frames", hog.MemClient().Allocated())
	}
	if hog.Stats().Revocations == 0 {
		t.Fatal("no revocation notifications delivered")
	}
	if hogDrv.Stats.PageOuts == 0 {
		t.Fatal("revocation cleaned no dirty pages")
	}
	sys.Shutdown()
	sys.RunUntilIdle(1 << 22)
}

// TestSystemDeterminism: identical configs and workloads produce identical
// timelines and stats.
func TestSystemDeterminism(t *testing.T) {
	run := func() (sim int64, faults int64) {
		sys := smallSystem()
		d, _ := sys.NewDomain("app", cpuShare(), mem.Contract{Guaranteed: 2})
		st, _, _ := sys.NewPagedStretch(d, 16*vm.PageSize, 64*vm.PageSize, diskShare())
		d.Go("main", func(th *domain.Thread) {
			PreallocateFrames(th, 2)
			th.Touch(st.Base(), 16*vm.PageSize, vm.AccessWrite)
			th.Touch(st.Base(), 16*vm.PageSize, vm.AccessRead)
		})
		sys.Run(20 * time.Second)
		sys.Shutdown()
		return int64(sys.Sim.Now()), d.Stats().Faults
	}
	t1, f1 := run()
	t2, f2 := run()
	if t1 != t2 || f1 != f2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", t1, f1, t2, f2)
	}
}
