package core

import (
	"strings"
	"testing"
	"time"

	"nemesis/internal/domain"
	"nemesis/internal/mem"
	"nemesis/internal/obs"
	"nemesis/internal/vm"
)

// telemetrySystem is smallSystem with the observability registry on.
func telemetrySystem() *System {
	cfg := DefaultConfig()
	cfg.MemoryFrames = 64
	cfg.Telemetry = true
	return New(cfg)
}

// runPagedChurn drives a 2-frame domain across enough pages to force
// evictions, write-backs and page-ins — the full fault path.
func runPagedChurn(t *testing.T, sys *System, pages int) *domain.Domain {
	t.Helper()
	d, err := sys.NewDomain("app", cpuShare(), mem.Contract{Guaranteed: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := sys.NewPagedStretch(d, uint64(pages)*vm.PageSize, int64(4*pages)*vm.PageSize, diskShare())
	if err != nil {
		t.Fatal(err)
	}
	var done bool
	d.Go("main", func(th *domain.Thread) {
		if err := PreallocateFrames(th, 2); err != nil {
			t.Error(err)
			return
		}
		buf := make([]byte, vm.PageSize)
		for pg := 0; pg < pages; pg++ {
			buf[0] = byte(pg)
			if err := th.WriteAt(st.PageBase(pg), buf); err != nil {
				t.Errorf("write page %d: %v", pg, err)
				return
			}
		}
		for pg := 0; pg < pages; pg++ {
			if err := th.ReadAt(st.PageBase(pg), buf); err != nil {
				t.Errorf("read page %d: %v", pg, err)
				return
			}
		}
		done = true
	})
	sys.Run(60 * time.Second)
	if !done {
		t.Fatal("workload did not complete")
	}
	return d
}

// TestFaultSpanHopBreakdown is the PR's central acceptance test: a paged
// fault that goes through the worker, the USD and the disk must yield a
// span of at least 4 hops whose per-hop latencies sum to the end-to-end
// latency within 1%.
func TestFaultSpanHopBreakdown(t *testing.T) {
	sys := telemetrySystem()
	runPagedChurn(t, sys, 16)

	spans := sys.Obs.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	var best *obs.Span
	for _, sp := range spans {
		if sp.Outcome == "worker" && len(sp.Hops()) >= 4 {
			best = sp
			break
		}
	}
	if best == nil {
		t.Fatalf("no worker-path span with >=4 hops among %d spans", len(spans))
	}
	hops := best.Hops()
	names := make(map[string]bool)
	var prevEnd = best.Start
	for _, h := range hops {
		names[h.Name] = true
		if h.Start != prevEnd {
			t.Fatalf("hop %q starts at %d, previous ended at %d (gap)", h.Name, h.Start, prevEnd)
		}
		prevEnd = h.End
	}
	if prevEnd != best.End {
		t.Fatalf("last hop ends at %d, span ends at %d", prevEnd, best.End)
	}
	for _, want := range []string{"dispatch", "mmentry", "driver", "map"} {
		if !names[want] {
			t.Errorf("span missing hop %q (has %v)", want, hopNames(hops))
		}
	}
	e2e := best.Duration()
	sum := best.HopSum()
	if e2e <= 0 {
		t.Fatalf("span duration %v", e2e)
	}
	diff := sum - e2e
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.01*float64(e2e) {
		t.Fatalf("hop sum %v vs end-to-end %v: off by more than 1%%", sum, e2e)
	}

	// A span that actually hit the disk carries the USD hops.
	var sawUSD bool
	for _, sp := range spans {
		for _, h := range sp.Hops() {
			if h.Name == "usd.read" || h.Name == "usd.write" {
				sawUSD = true
			}
		}
	}
	if !sawUSD {
		t.Error("no span recorded USD service hops")
	}

	sys.Shutdown()
	sys.RunUntilIdle(1 << 22)
}

func hopNames(hops []obs.Hop) []string {
	out := make([]string, len(hops))
	for i, h := range hops {
		out[i] = h.Name
	}
	return out
}

// TestTopTable checks the per-domain snapshot table renders every domain
// with non-zero fault activity, and that exports carry the same data.
func TestTopTable(t *testing.T) {
	sys := telemetrySystem()
	d := runPagedChurn(t, sys, 8)

	var sb strings.Builder
	if err := sys.WriteTopTable(&sb); err != nil {
		t.Fatal(err)
	}
	table := sb.String()
	if !strings.Contains(table, "app") {
		t.Fatalf("table missing domain row:\n%s", table)
	}
	if st := d.Stats(); st.Faults == 0 {
		t.Fatal("workload produced no faults")
	}
	if !strings.Contains(table, "DOMAIN") || !strings.Contains(table, "free frames:") {
		t.Fatalf("table malformed:\n%s", table)
	}

	sb.Reset()
	if err := sys.Obs.WriteMetricsTSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "domain\tfaults\tapp") {
		t.Fatalf("metrics TSV missing domain fault counter:\n%s", sb.String())
	}

	sb.Reset()
	if err := sys.Obs.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"subsystem"`) {
		t.Fatal("JSON export empty")
	}

	// Telemetry off: WriteTopTable must refuse rather than render nothing.
	off := smallSystem()
	if err := off.WriteTopTable(&sb); err == nil {
		t.Fatal("expected error with telemetry disabled")
	}

	sys.Shutdown()
	sys.RunUntilIdle(1 << 22)
}

// TestCrosstalkMonitorTicksInSystem is a smoke test that the monitor wired
// through core samples real domains on the simulated clock.
func TestCrosstalkMonitorTicksInSystem(t *testing.T) {
	sys := telemetrySystem()
	cfg := obs.DefaultCrosstalkConfig()
	cfg.Period = 500 * time.Millisecond
	mon := sys.StartCrosstalkMonitor(cfg)
	if mon == nil {
		t.Fatal("monitor not started")
	}
	runPagedChurn(t, sys, 8)
	if mon.Ticks() == 0 {
		t.Fatal("monitor never ticked")
	}
	sys.Shutdown()
	sys.RunUntilIdle(1 << 22)

	// Telemetry off: monitor refuses to start.
	if smallSystem().StartCrosstalkMonitor(cfg) != nil {
		t.Fatal("monitor started without telemetry")
	}
}
