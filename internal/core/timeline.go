package core

import (
	"io"

	"nemesis/internal/domain"
	"nemesis/internal/obs"
)

// StartRecorder begins periodic time-series sampling of the system: free
// frames and USD queue depth system-wide, and per domain the fault and
// progress rates, scheduler occupancy, page-in/-out rates, resident pages,
// resident frames against the (g, o) contract, and the netswap in-flight
// window where one exists. Domains admitted later are
// tracked automatically (their earlier samples read zero). Requires
// Config.Telemetry; returns nil with telemetry off. The recorder is stopped
// by Shutdown; calling StartRecorder twice returns the first recorder.
func (sys *System) StartRecorder(cfg obs.RecorderConfig) *obs.Recorder {
	if sys.Obs == nil || sys.recorder != nil {
		return sys.recorder
	}
	rc := obs.NewRecorder(sys.Obs, sys.Sim, cfg)
	rc.TrackGauge("", "free_frames", "", "frames", func() int64 {
		return int64(sys.Frames.FreeFrames())
	})
	rc.TrackGauge("", "usd_queue_depth", "", "requests", func() int64 {
		return int64(sys.USD.QueuedRequests())
	})
	for _, d := range sys.Domains() {
		sys.trackDomain(rc, d)
	}
	sys.recorder = rc
	rc.Start()
	return rc
}

// trackDomain registers one domain's standard timeline tracks.
func (sys *System) trackDomain(rc *obs.Recorder, d *domain.Domain) {
	name := d.Name()
	rc.TrackRate("", "faults_per_s", name, "per_s", func() int64 {
		return d.Stats().Faults
	})
	rc.TrackRate("", "progress_bytes_per_s", name, "per_s", func() int64 {
		return d.Stats().BytesTouched
	})
	// Scheduler occupancy: CPU time charged per second of simulated time
	// (1e6 = the whole processor).
	if c := d.CPU(); c != nil {
		rc.TrackRate("", "cpu_us_per_s", name, "us_per_s", func() int64 {
			return c.Charged().Microseconds()
		})
	}
	// Paging activity over time (Fig. 8's subject): page-in/-out rates from
	// the pager engines' counters, and the resident working set. The
	// counters appear when the domain's first paged stretch is created, so
	// re-resolve per sample.
	rc.TrackRate("paging", "pageins_per_s", name, "per_s", func() int64 {
		return sys.Obs.LookupCounter("driver", "pageins", name).Value()
	})
	rc.TrackRate("paging", "pageouts_per_s", name, "per_s", func() int64 {
		return sys.Obs.LookupCounter("driver", "pageouts", name).Value()
	})
	rc.TrackGauge("", "resident_pages", name, "pages", func() int64 {
		return int64(d.ResidentPages())
	})
	if c := d.MemClient(); c != nil {
		ct := c.Contract()
		g, o := int64(ct.Guaranteed), int64(ct.Guaranteed+ct.Optimistic)
		rc.TrackGauge("frames", "held", name, "frames", func() int64 {
			return int64(c.Allocated())
		})
		rc.TrackGauge("frames", "guarantee", name, "frames", func() int64 { return g })
		rc.TrackGauge("frames", "optimistic", name, "frames", func() int64 { return o })
	}
	// Attribution breakdown over time: microseconds per second of sim time
	// accrued in each coarse state. Together the four series sum to ~1e6,
	// so a stacked view shows the whole processor-second accounted for.
	if attr := sys.Obs.Attr(); attr != nil {
		da := attr.Track(name)
		for _, st := range obs.AttrStates {
			st := st
			rc.TrackRate("attr", st.String(), name, "us_per_s", func() int64 {
				return da.StateTotal(st).Microseconds()
			})
		}
	}
	// Only netswap systems carry in-flight tracks. The gauge itself may
	// appear after the domain is tracked, so re-resolve per sample.
	if sys.NetSwap != nil {
		rc.TrackGauge("", "netswap_inflight", name, "requests", func() int64 {
			return sys.Obs.LookupGauge("netswap", "inflight", name).Value()
		})
	}
}

// Recorder returns the running time-series recorder, or nil.
func (sys *System) Recorder() *obs.Recorder { return sys.recorder }

// Timeline bundles the registry and recorder for export.
func (sys *System) Timeline() obs.Timeline {
	return obs.Timeline{Reg: sys.Obs, Rec: sys.recorder}
}

// WriteTimeline renders the run's timeline as Chrome trace-event JSON,
// loadable in ui.perfetto.dev.
func (sys *System) WriteTimeline(w io.Writer) error {
	return sys.Timeline().Dump().WriteTrace(w)
}

// WriteTimelineJSONL renders the run's timeline in the compact line format
// cmd/nemesis-timeline converts and validates.
func (sys *System) WriteTimelineJSONL(w io.Writer) error {
	return sys.Timeline().Dump().WriteJSONL(w)
}
