package core

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"nemesis/internal/domain"
	"nemesis/internal/mem"
	"nemesis/internal/vm"
)

// fuzzSys is one randomized world: two paged domains under memory pressure
// and a frame-burst domain that triggers revocations (and so audit-log
// traffic), with telemetry on.
type fuzzSys struct {
	sys    *System
	a, b   *domain.Domain
	c      *domain.Domain
	stA    *vm.Stretch
	stB    *vm.Stretch
	failed bool
}

func newFuzzSys(t *testing.T, seed int64) *fuzzSys {
	t.Helper()
	cfg := DefaultConfig()
	cfg.MemoryFrames = 96
	cfg.Seed = seed
	cfg.Telemetry = true
	sys := New(cfg)
	f := &fuzzSys{sys: sys}
	var err error
	if f.a, err = sys.NewDomain("a", cpuShare(), mem.Contract{Guaranteed: 2, Optimistic: 40}); err != nil {
		t.Fatal(err)
	}
	if f.b, err = sys.NewDomain("b", cpuShare(), mem.Contract{Guaranteed: 2, Optimistic: 40}); err != nil {
		t.Fatal(err)
	}
	if f.c, err = sys.NewDomain("c", cpuShare(), mem.Contract{Guaranteed: 40}); err != nil {
		t.Fatal(err)
	}
	half := diskShare()
	half.S = 100 * time.Millisecond
	if f.stA, _, err = sys.NewPagedStretch(f.a, 32*vm.PageSize, 64*vm.PageSize, half); err != nil {
		t.Fatal(err)
	}
	if f.stB, _, err = sys.NewPagedStretch(f.b, 32*vm.PageSize, 64*vm.PageSize, half); err != nil {
		t.Fatal(err)
	}
	return f
}

// step spawns one bounded random workload and runs the world until it exits,
// leaving the system quiesced (forkable) again.
func (f *fuzzSys) step(t *testing.T, r *rand.Rand) {
	switch r.Intn(3) {
	case 0, 1: // paging traffic on a random pager domain
		dom, st := f.a, f.stA
		if r.Intn(2) == 1 {
			dom, st = f.b, f.stB
		}
		start, count := r.Intn(24), 1+r.Intn(8)
		acc := vm.AccessRead
		if r.Intn(2) == 0 {
			acc = vm.AccessWrite
		}
		dom.Go("work", func(th *domain.Thread) {
			if err := th.Touch(st.PageBase(start), count*vm.PageSize, acc); err != nil {
				t.Errorf("touch: %v", err)
				f.failed = true
			}
		})
	case 2: // frame burst: claims guaranteed frames, forcing revocations
		n := 5 + r.Intn(20)
		f.c.Go("burst", func(th *domain.Thread) {
			cl := f.c.MemClient()
			var got []mem.PFN
			for i := 0; i < n; i++ {
				pfn, err := cl.AllocFrame(th.Proc())
				if err != nil {
					t.Errorf("burst alloc: %v", err)
					f.failed = true
					return
				}
				got = append(got, pfn)
			}
			for _, pfn := range got {
				if err := cl.FreeFrame(pfn); err != nil {
					t.Errorf("burst free: %v", err)
					f.failed = true
					return
				}
			}
		})
	}
	f.sys.Run(30 * time.Second)
}

// observe folds every comparable observable into one struct.
type fuzzObs struct {
	now       int64
	transA    [32]mem.PFN
	transB    [32]mem.PFN
	freeOrder []mem.PFN
	statsA    domain.Stats
	statsB    domain.Stats
	audit     string
	usdEvents int
	allocated [3]uint64
}

func (f *fuzzSys) observe() fuzzObs {
	o := fuzzObs{
		now:       int64(f.sys.Sim.Now()),
		freeOrder: f.sys.Frames.FreeOrder(),
		statsA:    f.a.Stats(),
		statsB:    f.b.Stats(),
		usdEvents: len(f.sys.USDLog.Events()),
		allocated: [3]uint64{f.a.MemClient().Allocated(), f.b.MemClient().Allocated(), f.c.MemClient().Allocated()},
	}
	for pg := 0; pg < 32; pg++ {
		if pfn, _, err := f.sys.TS.Trans(f.stA.PageBase(pg)); err == nil {
			o.transA[pg] = pfn
		} else {
			o.transA[pg] = ^mem.PFN(0)
		}
		if pfn, _, err := f.sys.TS.Trans(f.stB.PageBase(pg)); err == nil {
			o.transB[pg] = pfn
		} else {
			o.transB[pg] = ^mem.PFN(0)
		}
	}
	for _, e := range f.sys.Obs.AuditLog() {
		o.audit += string(e.Kind) + "/" + e.Domain + "/" + e.Other + "\n"
	}
	return o
}

// remap re-points the fuzz handles at a fork via the snapshot's identity maps.
func (f *fuzzSys) remap(t *testing.T, snap *Snapshot) *fuzzSys {
	t.Helper()
	nf := &fuzzSys{
		sys: snap.Sys,
		a:   snap.Dom[f.a], b: snap.Dom[f.b], c: snap.Dom[f.c],
		stA: snap.Stretch[f.stA], stB: snap.Stretch[f.stB],
	}
	if nf.a == nil || nf.b == nil || nf.c == nil || nf.stA == nil || nf.stB == nil {
		t.Fatal("snapshot identity maps incomplete")
	}
	return nf
}

// TestForkFuzzSystem: random warmups, fork, identical random continuations —
// page tables, frame free-list order, audit logs, USD trace and allocation
// state must all match a never-forked control world, on both the fork and
// the parent.
func TestForkFuzzSystem(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		warmSteps := 3 + int(seed)%3
		measureSteps := 4

		runWarm := func() *fuzzSys {
			f := newFuzzSys(t, seed)
			r := rand.New(rand.NewSource(seed * 31))
			for i := 0; i < warmSteps; i++ {
				f.step(t, r)
			}
			return f
		}
		measure := func(f *fuzzSys) {
			r := rand.New(rand.NewSource(seed * 131))
			for i := 0; i < measureSteps; i++ {
				f.step(t, r)
			}
		}

		ctl := runWarm()
		measure(ctl)
		want := ctl.observe()

		f := runWarm()
		snap, err := f.sys.Fork()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		child := f.remap(t, snap)
		measure(child)
		if got := child.observe(); !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d: forked world diverged:\n got %+v\nwant %+v", seed, got, want)
		}

		measure(f)
		if got := f.observe(); !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d: parent perturbed by fork:\n got %+v\nwant %+v", seed, got, want)
		}
		if ctl.failed || f.failed || child.failed {
			t.Fatalf("seed %d: workload errors", seed)
		}

		ctl.sys.Shutdown()
		f.sys.Shutdown()
		child.sys.Shutdown()
	}
}
