package core

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"

	"nemesis/internal/obs"
)

// StartCrosstalkMonitor begins periodic QoS-crosstalk sampling over all
// currently admitted domains, flagging windows in which one domain's
// paging activity surges while another's progress collapses. It requires
// Config.Telemetry; with telemetry off it returns nil. The monitor is
// stopped by Shutdown.
func (sys *System) StartCrosstalkMonitor(cfg obs.CrosstalkConfig) *obs.CrosstalkMonitor {
	if sys.Obs == nil {
		return nil
	}
	sample := func() ([]obs.DomainSample, obs.Pressure) {
		doms := sys.Domains()
		out := make([]obs.DomainSample, 0, len(doms))
		for _, d := range doms {
			st := d.Stats()
			out = append(out, obs.DomainSample{
				Name:        d.Name(),
				Faults:      st.Faults,
				Progress:    st.BytesTouched,
				Revocations: st.Revocations,
			})
		}
		return out, obs.Pressure{FreeFrames: sys.Frames.FreeFrames()}
	}
	sys.monitor = obs.NewCrosstalkMonitor(sys.Obs, sys.Sim, cfg, sample)
	sys.monitor.Start()
	return sys.monitor
}

// StartIncrementalCrosstalkMonitor is StartCrosstalkMonitor with the
// changed-domains-only sampling source: per window the monitor touches only
// domains whose fault/progress/revocation counters actually moved (plus
// domains still cooling off), so thousands of idle domains cost nothing.
// Detection is equivalent to the full scan; see
// obs.NewIncrementalCrosstalkMonitor for the precise contract.
func (sys *System) StartIncrementalCrosstalkMonitor(cfg obs.CrosstalkConfig) *obs.CrosstalkMonitor {
	if sys.Obs == nil {
		return nil
	}
	sample := func() ([]obs.DomainSample, obs.Pressure) {
		changed := sys.tracker.Drain()
		out := make([]obs.DomainSample, 0, len(changed))
		for _, d := range changed {
			st := d.Stats()
			out = append(out, obs.DomainSample{
				Name:        d.Name(),
				Faults:      st.Faults,
				Progress:    st.BytesTouched,
				Revocations: st.Revocations,
				Order:       d.ActivityOrder(),
			})
		}
		return out, obs.Pressure{FreeFrames: sys.Frames.FreeFrames()}
	}
	sys.monitor = obs.NewIncrementalCrosstalkMonitor(sys.Obs, sys.Sim, cfg, sample)
	sys.monitor.Start()
	return sys.monitor
}

// CrosstalkMonitor returns the running monitor, or nil.
func (sys *System) CrosstalkMonitor() *obs.CrosstalkMonitor { return sys.monitor }

// WriteTopTable renders a per-domain snapshot table (the heart of
// nemesis-top): fault counters split by path, paging traffic, revocations,
// frames held, and the end-to-end page-fault latency distribution. Returns
// an error if telemetry is disabled.
func (sys *System) WriteTopTable(w io.Writer) error {
	if sys.Obs == nil {
		return fmt.Errorf("core: telemetry disabled (Config.Telemetry)")
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "DOMAIN\tFAULTS\tFAST\tWORKER\tPGIN\tPGOUT\tREVOKE\tFRAMES\tP50ms\tP95ms\tP99ms\tMAXms\t\n")
	for _, d := range sys.Domains() {
		st := d.Stats()
		name := d.Name()
		pgin := sys.Obs.LookupCounter("driver", "pageins", name)
		pgout := sys.Obs.LookupCounter("driver", "pageouts", name)
		e2e := sys.Obs.LookupHistogram("span", "e2e.page", name)
		frames := uint64(0)
		if c := d.MemClient(); c != nil {
			frames = c.Allocated()
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\t%s\t%s\t%s\t\n",
			name, st.Faults, st.FastPath, st.WorkerPath,
			pgin.Value(), pgout.Value(), st.Revocations, frames,
			quantMs(e2e, 0.50), quantMs(e2e, 0.95), quantMs(e2e, 0.99), maxMs(e2e))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "free frames: %d   spans recorded: %d   spans evicted: %d   crosstalk flags: %d   t=%.0fms\n",
		sys.Frames.FreeFrames(), sys.Obs.SpanTotal(), sys.Obs.SpansEvicted(),
		len(sys.Obs.Flags()), sys.Obs.Now().Milliseconds())
	fmt.Fprintln(w)
	if err := sys.Obs.Summarize(topTableTopK).WriteText(w); err != nil {
		return err
	}
	return sys.writeAttributionTable(w)
}

// topTableTopK bounds the top table's rollup to the worst offenders; the
// per-domain rows above it stay exhaustive.
const topTableTopK = 10

// TopDomain is one row of the top table in machine-readable form. The
// end-to-end fault latency comes as the full histogram snapshot, so readers
// can derive any quantile (and snapshots from several machines merge).
type TopDomain struct {
	Domain      string           `json:"domain"`
	Faults      int64            `json:"faults"`
	FastPath    int64            `json:"fast_path"`
	WorkerPath  int64            `json:"worker_path"`
	PageIns     int64            `json:"pageins"`
	PageOuts    int64            `json:"pageouts"`
	Revocations int64            `json:"revocations"`
	Frames      uint64           `json:"frames"`
	E2E         obs.HistSnapshot `json:"e2e"`
}

// TopDump is nemesis-top's machine-readable snapshot: every WriteTopTable
// row plus the registry rollup the rendered table embeds.
type TopDump struct {
	FreeFrames int          `json:"free_frames"`
	Domains    []TopDomain  `json:"domains"`
	Summary    *obs.Summary `json:"summary"`
}

// TopDump snapshots the top table. Returns an error if telemetry is
// disabled.
func (sys *System) TopDump() (*TopDump, error) {
	if sys.Obs == nil {
		return nil, fmt.Errorf("core: telemetry disabled (Config.Telemetry)")
	}
	d := &TopDump{
		FreeFrames: sys.Frames.FreeFrames(),
		Summary:    sys.Obs.Summarize(topTableTopK),
	}
	for _, dom := range sys.Domains() {
		st := dom.Stats()
		name := dom.Name()
		row := TopDomain{
			Domain:      name,
			Faults:      st.Faults,
			FastPath:    st.FastPath,
			WorkerPath:  st.WorkerPath,
			PageIns:     sys.Obs.LookupCounter("driver", "pageins", name).Value(),
			PageOuts:    sys.Obs.LookupCounter("driver", "pageouts", name).Value(),
			Revocations: st.Revocations,
			E2E:         sys.Obs.LookupHistogram("span", "e2e.page", name).Snapshot(),
		}
		if c := dom.MemClient(); c != nil {
			row.Frames = c.Allocated()
		}
		d.Domains = append(d.Domains, row)
	}
	return d, nil
}

// WriteTopJSON renders the machine-readable top table as two-space indented
// JSON with a trailing newline — byte-deterministic for a given run, like
// every other export.
func (sys *System) WriteTopJSON(w io.Writer) error {
	d, err := sys.TopDump()
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// writeAttributionTable renders the exact sim-time attribution — where every
// microsecond of each domain's lifetime went — with per-hop latency
// quantiles for the fault states (from the page-fault hop histograms). A
// no-op when attribution is not enabled.
func (sys *System) writeAttributionTable(w io.Writer) error {
	attr := sys.Obs.Attr()
	if attr == nil {
		return nil
	}
	fmt.Fprintln(w)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "DOMAIN\tSTATE\tTOTALms\tSHARE%%\tP50ms\tP95ms\tP99ms\t\n")
	for _, p := range attr.Profiles() {
		for _, acc := range p.Accounts {
			label := acc.State.String()
			if acc.Hop != "" {
				label += ";" + acc.Hop
			}
			share := 0.0
			if p.Elapsed() > 0 {
				share = 100 * float64(acc.Total) / float64(p.Elapsed())
			}
			q50, q95, q99 := "-", "-", "-"
			if acc.State == obs.AttrFault {
				if h := sys.Obs.HopHistogram(p.Domain, "page", acc.Hop); h.Count() > 0 {
					q50, q95, q99 = quantMs(h, 0.50), quantMs(h, 0.95), quantMs(h, 0.99)
				}
			}
			fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.1f\t%s\t%s\t%s\t\n",
				p.Domain, label, float64(acc.Total)/1e6, share, q50, q95, q99)
		}
	}
	return tw.Flush()
}

func quantMs(h *obs.Histogram, q float64) string {
	if h == nil || h.Count() == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", h.Quantile(q).Seconds()*1e3)
}

func maxMs(h *obs.Histogram) string {
	if h == nil || h.Count() == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", h.Max().Seconds()*1e3)
}
